package repro

// One benchmark per table/figure of the paper's evaluation (the mapping is
// DESIGN.md §4). Benchmarks that exercise the performance model are fast;
// those that run the real kernels use CPU-enumerable gene universes.

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/combinat"
	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/gene"
	"repro/internal/mpisim"
	"repro/internal/mutlevel"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// BenchmarkFig2Workload (E1): per-thread workload evaluation under the
// triangular and tetrahedral mappings.
func BenchmarkFig2Workload(b *testing.B) {
	for _, bench := range []struct {
		name  string
		curve sched.Curve
	}{
		{"2x2", sched.NewTri2x2(19411)},
		{"3x1", sched.NewTetra3x1(19411)},
	} {
		b.Run(bench.name, func(b *testing.B) {
			n := bench.curve.Threads()
			var sink uint64
			for i := 0; i < b.N; i++ {
				sink += bench.curve.WorkAt(uint64(i) % n)
			}
			_ = sink
		})
	}
}

// BenchmarkFig3Scheduling (E2): partitioning the paper's example workload
// (and the paper-scale one) under ED and EA.
func BenchmarkFig3Scheduling(b *testing.B) {
	curve := sched.NewTetra3x1(50)
	b.Run("ED/G=50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sched.EquiDistance(curve, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("EA/G=50", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sched.EquiArea(curve, 30); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig4aStrongScaling (E3): the full 100→1000-node strong-scaling
// study on the cluster model.
func BenchmarkFig4aStrongScaling(b *testing.B) {
	w := cluster.BRCA4Hit(cover.Scheme3x1)
	for i := 0; i < b.N; i++ {
		pts, err := cluster.StrongScaling(w, []int{100, 500, 1000})
		if err != nil {
			b.Fatal(err)
		}
		if pts[2].Efficiency < 0.7 {
			b.Fatal("efficiency collapsed")
		}
	}
}

// BenchmarkFig4bWeakScaling (E4): the weak-scaling study.
func BenchmarkFig4bWeakScaling(b *testing.B) {
	w := cluster.BRCA4Hit(cover.Scheme3x1)
	for i := 0; i < b.N; i++ {
		if _, err := cluster.WeakScaling(w, []int{100, 300, 500}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig5MemOpts (E5): real wall-clock of the 3-hit kernel under the
// memory-optimization ablation (one iteration, G=200).
func BenchmarkFig5MemOpts(b *testing.B) {
	spec := dataset.BRCA().Scaled(200)
	spec.Hits = 3
	cohort, err := dataset.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, bench := range []struct {
		name string
		opt  cover.Options
	}{
		{"none", cover.Options{Hits: 3}},
		{"MemOpt1", cover.Options{Hits: 3, MemOpt1: true}},
		{"MemOpt1+2", cover.Options{Hits: 3, MemOpt1: true, MemOpt2: true}},
	} {
		b.Run(bench.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := cover.FindBest(cohort.Tumor, cohort.Normal, nil, bench.opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEDvsEA (E6): simulating the full 2x2 BRCA run at 100 nodes under
// both schedulers.
func BenchmarkEDvsEA(b *testing.B) {
	for _, s := range []cover.Scheduler{cover.EquiArea, cover.EquiDistance} {
		b.Run(s.String(), func(b *testing.B) {
			w := cluster.BRCA4Hit(cover.Scheme2x2)
			w.Scheduler = s
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Simulate(cluster.Summit(100), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6Utilization (E7): the 600-GPU ACC 2x2 profile.
func BenchmarkFig6Utilization(b *testing.B) {
	w := cluster.ACC4Hit(cover.Scheme2x2)
	for i := 0; i < b.N; i++ {
		rep, err := cluster.Simulate(cluster.Summit(100), w)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.GPUMetrics) != 600 {
			b.Fatal("wrong GPU count")
		}
	}
}

// BenchmarkFig7Utilization (E8): the 600-GPU BRCA 3x1 profile.
func BenchmarkFig7Utilization(b *testing.B) {
	w := cluster.BRCA4Hit(cover.Scheme3x1)
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Simulate(cluster.Summit(100), w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig8CommOverlap (E9): a 1000-rank virtual-time reduction round.
func BenchmarkFig8CommOverlap(b *testing.B) {
	for i := 0; i < b.N; i++ {
		world := mpisim.NewWorld(1000, mpisim.Summit())
		err := world.Run(func(r *mpisim.Rank) error {
			r.Compute(1)
			r.Reduce(reduce.NewCombo(float64(r.ID()), r.ID()+1, r.ID()+2),
				reduce.BytesPerRecord, func(a, c any) any {
					ca, cb := a.(reduce.Combo), c.(reduce.Combo)
					if cb.Better(ca) {
						return cb
					}
					return ca
				})
			r.Bcast(reduce.None, reduce.BytesPerRecord)
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Classification (E10): one cancer type's full train/test
// pipeline at a small gene universe.
func BenchmarkFig9Classification(b *testing.B) {
	spec := dataset.LGG().Scaled(40)
	for i := 0; i < b.N; i++ {
		cohort, err := dataset.Generate(spec, 42)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.TrainTest(cohort, 0.75, 1, cover.Options{Hits: 4}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10Histogram (E11): generating the LGG cohort with MAF records
// and binning the IDH1/MUC6 position histograms.
func BenchmarkFig10Histogram(b *testing.B) {
	spec := dataset.LGG().Scaled(70)
	for i := 0; i < b.N; i++ {
		cohort, err := dataset.Generate(spec, 42)
		if err != nil {
			b.Fatal(err)
		}
		for _, sym := range []string{"IDH1", "MUC6"} {
			gene.HistogramPositions(cohort.Mutations, sym, gene.Tumor)
			gene.HistogramPositions(cohort.Mutations, sym, gene.Normal)
		}
	}
}

// BenchmarkSingleGPUEstimate (E12): pricing the whole 4-hit workload on one
// device.
func BenchmarkSingleGPUEstimate(b *testing.B) {
	w := cluster.BRCA4Hit(cover.Scheme3x1)
	for i := 0; i < b.N; i++ {
		if _, err := cluster.SingleGPUSeconds(cluster.Summit(1), w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTetraMap (E13): the λ→(i,j,k) decode, exact vs the paper's
// closed form.
func BenchmarkTetraMap(b *testing.B) {
	lambda := combinat.TripleCount(19411) - 7
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			combinat.LinearToTriple(lambda)
		}
	})
	b.Run("paper-closed-form", func(b *testing.B) {
		var sink uint64
		for i := 0; i < b.N; i++ {
			sink += combinat.PaperTripleK(lambda)
		}
		_ = sink
	})
}

// BenchmarkScheduleCost (E14): computing the full paper-scale EA schedule
// (G = 19411, 6000 GPUs).
func BenchmarkScheduleCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curve := sched.NewTetra3x1(19411)
		parts, err := sched.EquiArea(curve, 6000)
		if err != nil {
			b.Fatal(err)
		}
		if len(parts) != 6000 {
			b.Fatal("bad partition count")
		}
	}
}

// BenchmarkKernel3x1 measures the production 4-hit kernel's throughput in
// combinations per second (reported as ns/op over one full enumeration).
func BenchmarkKernel3x1(b *testing.B) {
	spec := dataset.BRCA().Scaled(60)
	cohort, err := dataset.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	opt := cover.Options{Hits: 4, Scheme: cover.Scheme3x1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := cover.FindBest(cohort.Tumor, cohort.Normal, nil, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistributedDiscover measures the functional multi-rank pipeline.
func BenchmarkDistributedDiscover(b *testing.B) {
	spec := dataset.BRCA().Scaled(30)
	cohort, err := dataset.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	opt := cover.Options{Hits: 4, MaxIterations: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Discover(cluster.Summit(2), cohort.Tumor, cohort.Normal, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlockSizeAblation probes the in-block reduction width around the
// paper's 512: smaller blocks shed less intermediate state per flush but
// reduce more often.
func BenchmarkBlockSizeAblation(b *testing.B) {
	spec := dataset.BRCA().Scaled(50)
	cohort, err := dataset.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, bs := range []int{32, 128, 512, 2048} {
		b.Run(fmt.Sprintf("block=%d", bs), func(b *testing.B) {
			opt := cover.Options{Hits: 4, BlockSize: bs}
			for i := 0; i < b.N; i++ {
				if _, _, err := cover.FindBest(cohort.Tumor, cohort.Normal, nil, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSchemeAblation measures all four 4-hit parallelization schemes
// on identical input (E15).
func BenchmarkSchemeAblation(b *testing.B) {
	spec := dataset.BRCA().Scaled(40)
	cohort, err := dataset.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, scheme := range []cover.Scheme{cover.Scheme1x3, cover.Scheme2x2,
		cover.Scheme3x1, cover.Scheme4x1} {
		b.Run(scheme.String(), func(b *testing.B) {
			opt := cover.Options{Hits: 4, Scheme: scheme}
			for i := 0; i < b.N; i++ {
				if _, _, err := cover.FindBest(cohort.Tumor, cohort.Normal, nil, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLatencyAwareScheduling compares plain EA with the cost-weighted
// scheduler at paper scale (E16).
func BenchmarkLatencyAwareScheduling(b *testing.B) {
	for _, aware := range []bool{false, true} {
		name := "equi-area"
		if aware {
			name = "latency-aware"
		}
		b.Run(name, func(b *testing.B) {
			w := cluster.ACC4Hit(cover.Scheme2x2)
			w.LatencyAware = aware
			for i := 0; i < b.N; i++ {
				if _, err := cluster.Simulate(cluster.Summit(100), w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMutationLevelExpand measures the Sec. V mutation-level expansion
// (E17).
func BenchmarkMutationLevelExpand(b *testing.B) {
	spec := dataset.LGG().Scaled(60)
	spec.ProfileAll = true
	cohort, err := dataset.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mutlevel.Expand(cohort, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMAFPipeline measures the ingestion path: export a cohort to MAF
// text and summarize it back into matrices.
func BenchmarkMAFPipeline(b *testing.B) {
	spec := dataset.LGG().Scaled(60)
	cohort, err := dataset.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	var tumorMAF, normalMAF bytes.Buffer
	if err := cohort.ExportMAF(&tumorMAF, gene.Tumor); err != nil {
		b.Fatal(err)
	}
	if err := cohort.ExportMAF(&normalMAF, gene.Normal); err != nil {
		b.Fatal(err)
	}
	tb, nb := tumorMAF.Bytes(), normalMAF.Bytes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.FromMAF("LGG", bytes.NewReader(tb), bytes.NewReader(nb)); err != nil {
			b.Fatal(err)
		}
	}
}
