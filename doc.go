// Package repro reproduces "Scaling Out a Combinatorial Algorithm for
// Discovering Carcinogenic Gene Combinations to Thousands of GPUs"
// (Dash et al., IPDPS 2021) as a pure-Go library.
//
// The public surface lives under internal/ (this module is a research
// reproduction, not a semver-stable API): internal/core ties the pipeline
// together, internal/cover holds the weighted-set-cover engine, and
// internal/cluster holds the Summit-scale performance model. See README.md
// for the architecture overview, DESIGN.md for the system inventory and
// per-experiment index, and EXPERIMENTS.md for paper-vs-measured results.
//
// The root package exists to host the benchmark suite (bench_test.go): one
// benchmark per table and figure of the paper's evaluation.
package repro
