// Package service is the multi-tenant discovery service: the long-running
// serving layer that turns the durable supervised runner
// (internal/harness) into an execution backend. Cohort discovery jobs are
// submitted over HTTP (see http.go and cmd/multihitd), queued with
// per-tenant fair-share scheduling and priority classes, admitted against
// the simulated cluster's capacity via the gpusim cost model, executed by
// harness.Run with a per-job crash-safe checkpoint store, observed live
// through per-partition progress events (SSE and polling), and answered
// from a fingerprint-keyed result cache when an identical submission has
// already completed.
//
// Durability contract: a killed daemon loses at most the work since each
// in-flight job's last checkpointed greedy step. On restart every
// non-terminal job is re-enqueued and resumes from its own generational
// store, completing bit-identically to an uninterrupted run (the harness
// crash-invariance guarantee lifted to the serving layer).
// docs/SERVICE.md specifies the API and the scheduling, admission,
// caching, and resume semantics.
package service

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"repro/internal/ckptstore"
	"repro/internal/gpusim"
	"repro/internal/harness"
)

// Config sizes the daemon.
type Config struct {
	// DataDir is the root of the durable state (job specs, results,
	// per-job checkpoint stores).
	DataDir string
	// Device is the simulated device model admission prices against;
	// zero value means gpusim.V100().
	Device gpusim.DeviceSpec
	// ClusterGPUs is the simulated cluster capacity in devices; 0 means
	// DefaultClusterGPUs.
	ClusterGPUs int
	// MaxQueued bounds the queue depth across tenants; 0 means
	// DefaultMaxQueued.
	MaxQueued int
	// CacheEntries sizes the result cache; 0 means DefaultCacheEntries,
	// negative disables caching.
	CacheEntries int
	// JobWorkers is the per-job engine worker count resolved into
	// submissions that leave Workers unset; 0 means GOMAXPROCS. It is
	// resolved at submission and persisted so a restarted daemon re-runs
	// the job with the identical partition plan.
	JobWorkers int
	// CheckpointEvery is the per-job persistence cadence in greedy
	// steps; 0 means 1 (every step — the tightest resume bound).
	CheckpointEvery int
	// Retain is the per-job checkpoint-store retention; 0 means the
	// ckptstore default.
	Retain int

	// ShedBatchAt is the queue depth at which batch-class submissions
	// are shed with 503 + Retry-After, preserving headroom for
	// interactive work; 0 means 3/4 of MaxQueued, negative disables
	// shedding (only the hard MaxQueued limit applies).
	ShedBatchAt int
	// TenantRatePerSec and TenantBurst shape the per-tenant submission
	// token bucket; a zero rate disables rate limiting.
	TenantRatePerSec float64
	TenantBurst      int
	// BreakerThreshold is how many consecutive backend failures trip
	// the circuit breaker; 0 means DefaultBreakerThreshold, negative
	// disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is the open → half-open delay; 0 means
	// DefaultBreakerCooldown.
	BreakerCooldown time.Duration
	// DiskBudgetBytes caps the jobs directory footprint; over budget
	// the background GC reclaims checkpoints (terminal jobs first) and
	// the service degrades until usage is back under. 0 disables the
	// budget (ENOSPC handling stays active regardless).
	DiskBudgetBytes int64
	// DiskPoll is the disk accountant cadence and the ENOSPC write
	// retry interval; 0 means DefaultDiskPoll.
	DiskPoll time.Duration

	// Logf, when non-nil, receives operational log lines.
	Logf func(format string, args ...any)
}

// Defaults for Config zero values.
const (
	DefaultClusterGPUs      = 6 // one Summit node
	DefaultMaxQueued        = 1024
	DefaultCacheEntries     = 128
	DefaultBreakerThreshold = 5
	DefaultBreakerCooldown  = 5 * time.Second
)

func (c Config) withDefaults() Config {
	if c.Device.SMs == 0 {
		c.Device = gpusim.V100()
	}
	if c.ClusterGPUs == 0 {
		c.ClusterGPUs = DefaultClusterGPUs
	}
	if c.MaxQueued == 0 {
		c.MaxQueued = DefaultMaxQueued
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = DefaultCacheEntries
	}
	if c.JobWorkers == 0 {
		c.JobWorkers = runtime.GOMAXPROCS(0)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1
	}
	if c.ShedBatchAt == 0 {
		c.ShedBatchAt = c.MaxQueued * 3 / 4
		if c.ShedBatchAt < 1 {
			c.ShedBatchAt = c.MaxQueued
		}
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = DefaultBreakerThreshold
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = DefaultBreakerCooldown
	}
	if c.DiskPoll <= 0 {
		c.DiskPoll = DefaultDiskPoll
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Service is the daemon state. Open, then serve its Handler (http.go);
// Close checkpoints and parks every running job.
type Service struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	limiter *rateLimiter
	drain   *drainEstimator
	brk     *breaker
	gcKick  chan struct{}

	mu     sync.Mutex
	cond   *sync.Cond
	closed bool
	jobs   map[string]*job
	queue  *fairQueue
	adm    admission
	cache  *resultCache
	keys   map[string]string // idempotency key → job id
	nextID uint64
	shed   ShedStats
	disk   DiskStats
}

// Open validates the config, restores persisted jobs from DataDir —
// terminal results repopulate the cache, in-flight jobs re-enter the
// queue to resume from their checkpoint stores — and starts the dispatch
// loop.
func Open(cfg Config) (*Service, error) {
	cfg = cfg.withDefaults()
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("service: Config.DataDir is required")
	}
	if err := cfg.Device.Validate(); err != nil {
		return nil, err
	}
	if cfg.ClusterGPUs < 1 {
		return nil, fmt.Errorf("service: ClusterGPUs must be positive, got %d", cfg.ClusterGPUs)
	}
	if err := os.MkdirAll(filepath.Join(cfg.DataDir, jobsDirName), 0o755); err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Service{
		cfg:     cfg,
		ctx:     ctx,
		cancel:  cancel,
		jobs:    map[string]*job{},
		queue:   newFairQueue(),
		adm:     admission{capacity: cfg.ClusterGPUs},
		cache:   newResultCache(cfg.CacheEntries),
		keys:    map[string]string{},
		gcKick:  make(chan struct{}, 1),
		limiter: newRateLimiter(cfg.TenantRatePerSec, cfg.TenantBurst, time.Now),
		drain:   newDrainEstimator(time.Now),
		disk:    DiskStats{BudgetBytes: cfg.DiskBudgetBytes},
	}
	s.cond = sync.NewCond(&s.mu)
	s.brk = &breaker{
		threshold: cfg.BreakerThreshold,
		cooldown:  cfg.BreakerCooldown,
		now:       time.Now,
		// Waking the dispatch loop shortly after the cooldown elapses
		// lets the half-open probe start without another trigger.
		onOpen: func(cd time.Duration) {
			time.AfterFunc(cd+50*time.Millisecond, s.cond.Broadcast)
		},
	}
	if err := s.restore(); err != nil {
		cancel()
		return nil, err
	}
	s.wg.Add(2)
	go func() {
		defer s.wg.Done()
		s.dispatch()
	}()
	go func() {
		defer s.wg.Done()
		s.diskMonitor()
	}()
	return s, nil
}

// restore rebuilds the job table from DataDir.
func (s *Service) restore() error {
	ids, next, err := scanJobDirs(s.cfg.DataDir)
	if err != nil {
		return err
	}
	s.nextID = next
	for _, id := range ids {
		dir := s.jobDir(id)
		var pj persistedJob
		if err := readJSONBounded(filepath.Join(dir, specFileName), &pj); err != nil {
			s.cfg.Logf("service: skipping job %s: unreadable spec: %v", id, err)
			continue
		}
		j, err := s.buildJob(id, pj.Spec)
		if err != nil {
			s.cfg.Logf("service: skipping job %s: %v", id, err)
			continue
		}
		j.idemKey = pj.IdempotencyKey
		// Idempotency keys survive restarts: a retried POST lands on the
		// restored job instead of executing a second time.
		if j.idemKey != "" {
			s.keys[j.idemKey] = id
		}
		var pr persistedResult
		switch rerr := readJSONBounded(filepath.Join(dir, resultFileName), &pr); {
		case rerr == nil:
			// Terminal: restore the outcome; successes re-seed the cache.
			j.state = pr.terminalState()
			j.result = pr.Result
			close(j.done)
			if j.state == StateSucceeded {
				s.cache.Put(pr.Key, id, pr.Result)
			}
			s.jobs[id] = j
		case os.IsNotExist(rerr):
			if pj.Canceled {
				// The cancel was observed but the terminal write never
				// landed; finish the transition instead of resurrecting.
				j.state = StateCanceled
				j.result = &JobResult{Error: "canceled before completion"}
				close(j.done)
				s.jobs[id] = j
				s.persistTerminal(j, StateCanceled, CacheKey{})
				continue
			}
			// In flight when the previous daemon died: re-enqueue. The
			// job resumes from its checkpoint store (if any generation
			// was persisted) and re-scans from scratch otherwise.
			s.jobs[id] = j
			s.queue.Push(j)
			s.cfg.Logf("service: restored %s (tenant %s) into the queue", id, j.tenant)
		default:
			s.cfg.Logf("service: skipping job %s: unreadable result: %v", id, rerr)
			delete(s.keys, j.idemKey)
		}
	}
	return nil
}

// buildJob materializes a job record from its spec: regenerates the
// seeded cohort (deterministic, so fingerprints and partition plans are
// restart-invariant), resolves options, and prices admission.
func (s *Service) buildJob(id string, spec JobSpec) (*job, error) {
	prio, err := ParsePriority(spec.Priority)
	if err != nil {
		return nil, err
	}
	cohort, err := spec.Cohort.Generate()
	if err != nil {
		return nil, err
	}
	if spec.Options.Workers == 0 {
		spec.Options.Workers = s.cfg.JobWorkers
	}
	opt, err := spec.Options.CoverOptions(spec.Cohort.Hits)
	if err != nil {
		return nil, err
	}
	opt, err = opt.Normalized()
	if err != nil {
		return nil, err
	}
	cost, err := EstimateCost(cohort, opt, s.cfg.Device)
	if err != nil {
		return nil, err
	}
	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	return &job{
		id:          id,
		tenant:      tenant,
		priority:    prio,
		spec:        spec,
		dir:         s.jobDir(id),
		cost:        cost,
		state:       StateQueued,
		submittedAt: time.Now(),
		done:        make(chan struct{}),
		cohort:      cohort,
		opt:         opt,
	}, nil
}

// Submit accepts one job. On a result-cache hit the returned status is
// already terminal (StateSucceeded with Result.CachedFrom set) and no
// scan runs; otherwise the job is persisted, queued, and dispatched
// under fair share and admission.
func (s *Service) Submit(spec JobSpec) (*JobStatus, error) {
	st, _, err := s.SubmitIdempotent(spec, "")
	return st, err
}

// SubmitIdempotent is Submit with an optional idempotency key: a retried
// submission carrying the key of an already-accepted job returns that
// job's status (duplicate = true) instead of executing a second time.
// Keys are persisted with the job, so the guarantee survives daemon
// restarts. Admission applies overload protection in order: duplicate
// check (a read — always answered), degraded state, per-tenant rate
// limit, result cache, queue depth, batch shedding.
func (s *Service) SubmitIdempotent(spec JobSpec, idemKey string) (*JobStatus, bool, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	if idemKey != "" {
		if st, dup, err := s.resolveIdempotentLocked(idemKey); dup || err != nil {
			s.mu.Unlock()
			return st, dup, err
		}
	}
	if reason := s.disk.Degraded; reason != "" {
		s.shed.DegradedRejected++
		after := s.drain.retryAfter(s.queue.Len())
		s.mu.Unlock()
		return nil, false, &RetryAfterError{Err: fmt.Errorf("%w: %s", ErrDegraded, reason), After: after}
	}
	s.mu.Unlock()

	tenant := spec.Tenant
	if tenant == "" {
		tenant = "default"
	}
	if ok, wait := s.limiter.allow(tenant); !ok {
		s.mu.Lock()
		s.shed.RateLimited++
		s.mu.Unlock()
		return nil, false, &RetryAfterError{Err: fmt.Errorf("%w: tenant %s", ErrRateLimited, tenant), After: wait}
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, false, ErrClosed
	}
	id := fmt.Sprintf(jobIDPattern, s.nextID)
	s.nextID++
	if idemKey != "" {
		// Reserve the key before releasing the lock so a concurrent
		// duplicate waits for this submission instead of racing it.
		s.keys[idemKey] = id
	}
	s.mu.Unlock()

	j, err := s.buildJob(id, spec)
	if err != nil {
		s.rollbackKey(idemKey, id)
		return nil, false, err
	}
	j.idemKey = idemKey
	if j.cost.GPUs > s.cfg.ClusterGPUs {
		s.rollbackKey(idemKey, id)
		return nil, false, fmt.Errorf("%w: needs %d simulated GPUs, cluster has %d",
			ErrOversized, j.cost.GPUs, s.cfg.ClusterGPUs)
	}
	key := CanonicalKey(j.cohort.Tumor, j.cohort.Normal, j.opt)

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.rollbackKey(idemKey, id)
		return nil, false, ErrClosed
	}
	if cached, from, ok := s.cache.Get(key); ok {
		hit := *cached
		hit.CachedFrom = from
		j.state = StateSucceeded
		j.result = &hit
		j.endedAt = time.Now()
		close(j.done)
		s.jobs[id] = j
		s.cond.Broadcast()
		s.mu.Unlock()
		if err := s.persistJob(j); err != nil {
			return nil, false, err
		}
		s.persistTerminal(j, StateSucceeded, key)
		s.cfg.Logf("service: %s answered from cache (produced by %s)", id, from)
		return j.status(), false, nil
	}
	depth := s.queue.Len()
	if depth >= s.cfg.MaxQueued {
		s.shed.QueueFull++
		after := s.drain.retryAfter(depth)
		s.mu.Unlock()
		s.rollbackKey(idemKey, id)
		return nil, false, &RetryAfterError{Err: ErrQueueFull, After: after}
	}
	if s.cfg.ShedBatchAt > 0 && j.priority == PriorityBatch && depth >= s.cfg.ShedBatchAt {
		s.shed.BatchShed++
		after := s.drain.retryAfter(depth)
		s.mu.Unlock()
		s.rollbackKey(idemKey, id)
		return nil, false, &RetryAfterError{Err: ErrShed, After: after}
	}
	s.jobs[id] = j
	s.cond.Broadcast() // wake duplicate submissions waiting on the key
	s.mu.Unlock()

	if err := s.persistJob(j); err != nil {
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.rollbackKey(idemKey, id)
		return nil, false, err
	}

	s.mu.Lock()
	s.queue.Push(j)
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cfg.Logf("service: queued %s (tenant %s, %s, %d simulated GPUs)",
		id, j.tenant, j.priority, j.cost.GPUs)
	return j.status(), false, nil
}

// resolveIdempotentLocked answers a keyed submission whose key is
// already reserved. Called with s.mu held; may temporarily release it
// while waiting for a concurrent submission with the same key to become
// visible. Returns dup=false with nil error when the key is free.
func (s *Service) resolveIdempotentLocked(idemKey string) (*JobStatus, bool, error) {
	id, ok := s.keys[idemKey]
	if !ok {
		return nil, false, nil
	}
	// A concurrent submission reserved the key but has not inserted the
	// job yet: wait for it to land (or fail and roll the key back).
	for {
		if s.closed {
			return nil, true, ErrClosed
		}
		if cur, still := s.keys[idemKey]; !still {
			// The original submission failed and rolled back; the retry
			// should re-submit.
			return nil, false, nil
		} else if cur != id {
			id = cur
		}
		if j := s.jobs[id]; j != nil {
			return j.status(), true, nil
		}
		s.cond.Wait()
	}
}

// rollbackKey releases an idempotency-key reservation after a failed
// submission, waking any duplicate waiting on it.
func (s *Service) rollbackKey(idemKey, id string) {
	if idemKey == "" {
		return
	}
	s.mu.Lock()
	if s.keys[idemKey] == id {
		delete(s.keys, idemKey)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
}

// persistJob writes the job's spec file (crash point: a spec without a
// result is an in-flight job to a restarted daemon).
func (s *Service) persistJob(j *job) error {
	if err := os.MkdirAll(j.dir, 0o755); err != nil {
		return fmt.Errorf("service: %w", err)
	}
	j.mu.Lock()
	pj := persistedJob{ID: j.id, Spec: j.spec, Canceled: j.userCancel, IdempotencyKey: j.idemKey}
	j.mu.Unlock()
	return writeJSONAtomic(filepath.Join(j.dir, specFileName), pj)
}

// dispatch is the scheduling loop: it starts the fair-share pick whenever
// a job, the admission capacity for it, and the circuit breaker's consent
// are all available. A half-open breaker admits exactly one probe job;
// the probe flag is only taken once a job has actually been picked, so an
// empty queue can never strand the probe slot.
func (s *Service) dispatch() {
	for {
		s.mu.Lock()
		var next *job
		var probe bool
		for {
			if s.closed || s.ctx.Err() != nil {
				s.mu.Unlock()
				return
			}
			var ok bool
			ok, probe = s.brk.allowed()
			if ok {
				next = s.queue.Next(func(j *job) bool { return s.adm.fits(j.cost) })
				if next != nil {
					break
				}
			}
			s.cond.Wait()
		}
		if probe {
			s.brk.beginProbe()
			s.cfg.Logf("service: breaker half-open, %s is the probe job", next.id)
		}
		s.adm.reserve(next.cost)
		s.mu.Unlock()

		s.wg.Add(1)
		go func(j *job) {
			defer s.wg.Done()
			defer func() {
				s.mu.Lock()
				s.adm.release(j.cost)
				s.cond.Broadcast()
				s.mu.Unlock()
			}()
			s.runJob(j)
		}(next)
	}
}

// runJob drives one job through the durable runner.
func (s *Service) runJob(j *job) {
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	j.mu.Lock()
	if j.userCancel || j.state.Terminal() {
		// Canceled between dequeue and start.
		j.mu.Unlock()
		s.finishJob(j, StateCanceled, &JobResult{Error: "canceled before start"})
		return
	}
	j.cancel = cancel
	j.mu.Unlock()
	j.setState(StateRunning)

	store, err := ckptstore.Open(filepath.Join(j.dir, ckptDirName), ckptstore.Options{Retain: s.cfg.Retain})
	if err != nil {
		s.finishJob(j, StateFailed, &JobResult{Error: err.Error()})
		s.brk.onFailure()
		return
	}
	gens, err := store.Generations()
	if err != nil {
		s.finishJob(j, StateFailed, &JobResult{Error: err.Error()})
		s.brk.onFailure()
		return
	}
	hopt := harness.Options{
		Cover: j.opt,
		// The guard turns ENOSPC into degraded-state retries: a full
		// disk stalls the job's checkpoints, it does not fail the job.
		Store:           &guardedStore{s: s, store: store, ctx: ctx, jobID: j.id},
		Resume:          len(gens) > 0,
		CheckpointEvery: s.cfg.CheckpointEvery,
		Deadline:        time.Duration(j.spec.DeadlineSec * float64(time.Second)),
		OnEvent:         func(e harness.Event) { s.onHarnessEvent(j, e) },
		OnProgress:      func(p harness.Progress) { s.onHarnessProgress(j, p) },
	}
	if hopt.Resume {
		s.cfg.Logf("service: %s resuming from generation %d", j.id, gens[len(gens)-1])
	}
	res, err := harness.Run(ctx, j.cohort.Tumor, j.cohort.Normal, hopt)
	if err != nil {
		if ckptstore.IsDiskFull(err) {
			j.mu.Lock()
			userCancel := j.userCancel
			j.mu.Unlock()
			switch {
			case s.ctx.Err() != nil && !userCancel:
				// Shutdown caught the job mid-disk-full: its completed
				// steps are checkpointed (or re-derivable); park it for
				// the next daemon instead of failing it.
				j.setState(StateQueued)
				s.cfg.Logf("service: %s parked at shutdown during disk-full", j.id)
				return
			case userCancel:
				s.finishJob(j, StateCanceled, &JobResult{Error: "canceled while disk full"})
				return
			}
		}
		s.finishJob(j, StateFailed, &JobResult{Error: err.Error()})
		s.brk.onFailure()
		return
	}
	// The backend executed: any non-error outcome counts as backend
	// health for the circuit breaker.
	s.brk.onSuccess()

	result := resultFromHarness(res, j.cohort.GeneSymbols,
		j.cohort.Tumor.Fingerprint(), j.cohort.Normal.Fingerprint(), res.KernelFingerprint)
	j.mu.Lock()
	j.resumed = j.resumed || res.Resumed
	j.progress.ReplayedSteps = res.ReplayedSteps
	userCancel := j.userCancel
	j.mu.Unlock()

	if res.Stop == harness.StopCanceled && !userCancel {
		// The daemon is shutting down: the harness checkpointed the
		// completed steps, so leave the job in flight on disk — the next
		// daemon re-enqueues and resumes it. In-memory state returns to
		// queued for observers that outlive the shutdown call.
		j.setState(StateQueued)
		s.cfg.Logf("service: %s parked at shutdown (generation %d)", j.id, res.PersistedGeneration)
		return
	}
	state := StateForStop(res.Stop)
	if userCancel {
		state = StateCanceled
	}
	s.finishJob(j, state, result)
}

// finishJob records a terminal outcome. Persistence and the cache insert
// happen BEFORE the terminal state transition: closing the job's done
// channel is the signal observers (WaitJob, SSE terminal frame) rely on,
// so everything the outcome implies must already be published when it
// fires.
func (s *Service) finishJob(j *job, state JobState, result *JobResult) {
	j.mu.Lock()
	j.result = result
	j.mu.Unlock()
	key := CanonicalKey(j.cohort.Tumor, j.cohort.Normal, j.opt)
	s.persistTerminal(j, state, key)
	if state == StateSucceeded {
		s.mu.Lock()
		s.cache.Put(key, j.id, result)
		s.mu.Unlock()
	}
	j.setState(state)
	s.drain.completed() // feeds the Retry-After drain-rate estimate
	s.cfg.Logf("service: %s finished %s (exit %d)", j.id, state, state.ExitCode())
}

// persistTerminal publishes the result file; failures are logged, not
// fatal (the in-memory state is authoritative until the next restart).
func (s *Service) persistTerminal(j *job, state JobState, key CacheKey) {
	j.mu.Lock()
	pr := persistedResult{State: state.String(), Key: key, Result: j.result}
	j.mu.Unlock()
	if err := writeJSONAtomic(filepath.Join(j.dir, resultFileName), pr); err != nil {
		s.cfg.Logf("service: persisting %s result: %v", j.id, err)
	}
}

// onHarnessEvent translates supervisor events into job events.
func (s *Service) onHarnessEvent(j *job, e harness.Event) {
	switch e.Kind {
	case harness.EventCheckpoint:
		j.mu.Lock()
		j.progress.Generation = e.Generation
		j.mu.Unlock()
		j.publish(Event{Type: "checkpoint", JobID: j.id, Generation: e.Generation,
			Detail: fmt.Sprintf("step %d", e.Step)})
	case harness.EventResume:
		j.mu.Lock()
		j.resumed = true
		j.mu.Unlock()
		j.publish(Event{Type: "resume", JobID: j.id, Generation: e.Generation})
	case harness.EventRetry:
		j.publish(Event{Type: "retry", JobID: j.id,
			Detail: fmt.Sprintf("partition [%d,%d) attempt %d: %v", e.Partition.Lo, e.Partition.Hi, e.Attempt, e.Err)})
	case harness.EventQuarantine:
		j.publish(Event{Type: "quarantine", JobID: j.id,
			Detail: fmt.Sprintf("partition [%d,%d) after %d attempts: %v", e.Partition.Lo, e.Partition.Hi, e.Attempt, e.Err)})
	}
}

// onHarnessProgress mirrors the per-partition tally into the polling
// state and the event stream.
func (s *Service) onHarnessProgress(j *job, p harness.Progress) {
	j.mu.Lock()
	j.progress.Step = p.Step
	j.progress.DonePartitions = p.Done
	j.progress.TotalPartitions = p.Total
	j.progress.Unscanned = p.Unscanned
	ps := j.progress
	j.mu.Unlock()
	j.publish(Event{Type: "progress", JobID: j.id, Progress: &ps})
}

// Get returns one job's status.
func (s *Service) Get(id string) (*JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	return j.status(), nil
}

// List returns every job (optionally one tenant's), in submission order.
func (s *Service) List(tenant string) []*JobStatus {
	s.mu.Lock()
	all := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if tenant == "" || j.tenant == tenant {
			all = append(all, j)
		}
	}
	s.mu.Unlock()
	sortJobsByID(all)
	out := make([]*JobStatus, len(all))
	for i, j := range all {
		out[i] = j.status()
	}
	return out
}

// Subscribe attaches a pull-based event cursor to a job. afterSeq < 0
// streams from now (history is skipped); afterSeq ≥ 0 resumes after that
// sequence number — the Last-Event-ID contract — replaying retained
// history and summarizing anything already trimmed as a "dropped" frame.
func (s *Service) Subscribe(id string, afterSeq int64) (*Subscription, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	sub := &Subscription{j: j}
	j.mu.Lock()
	if afterSeq < 0 || uint64(afterSeq) > j.seq {
		sub.cursor = j.seq
	} else {
		sub.cursor = uint64(afterSeq)
	}
	j.mu.Unlock()
	return sub, nil
}

// Cancel stops a queued or running job. Terminal jobs return ErrTerminal.
func (s *Service) Cancel(id string) error {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return ErrNotFound
	}
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		s.mu.Unlock()
		return ErrTerminal
	}
	j.userCancel = true
	cancel := j.cancel
	queued := s.queue.Remove(id)
	j.mu.Unlock()
	s.mu.Unlock()

	if queued {
		s.finishJob(j, StateCanceled, &JobResult{Error: "canceled while queued"})
		return nil
	}
	if cancel != nil {
		cancel() // runJob observes userCancel and finishes as canceled
	}
	return nil
}

// Resume re-enqueues a job parked as partial by a per-leg deadline; its
// next leg continues from the checkpoint store.
func (s *Service) Resume(id string) (*JobStatus, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	j, ok := s.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	if j.state != StatePartial {
		j.mu.Unlock()
		return nil, fmt.Errorf("service: job %s is %s, only partial jobs resume: %w", id, j.state, ErrTerminal)
	}
	j.state = StateQueued
	j.result = nil
	j.userCancel = false
	j.done = make(chan struct{})
	j.publishLocked(Event{Type: "state", JobID: j.id, State: StateQueued.String()})
	j.mu.Unlock()
	// Remove the stale terminal file so a crash between here and the next
	// leg's terminal write restores the job as in-flight.
	if err := os.Remove(filepath.Join(j.dir, resultFileName)); err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("service: %w", err)
	}
	s.queue.Push(j)
	s.cond.Signal()
	return j.status(), nil
}

// WaitJob blocks until the job reaches a terminal state (or ctx ends) and
// returns its status.
func (s *Service) WaitJob(ctx context.Context, id string) (*JobStatus, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return nil, ErrNotFound
	}
	j.mu.Lock()
	done := j.done
	j.mu.Unlock()
	select {
	case <-done:
		return j.status(), nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// ShedStats counts admission rejections by overload mechanism.
type ShedStats struct {
	// BatchShed counts batch submissions shed at the watermark.
	BatchShed uint64 `json:"batch_shed,omitempty"`
	// RateLimited counts submissions denied by the tenant token bucket.
	RateLimited uint64 `json:"rate_limited,omitempty"`
	// QueueFull counts submissions denied at the hard depth limit.
	QueueFull uint64 `json:"queue_full,omitempty"`
	// DegradedRejected counts submissions denied while degraded.
	DegradedRejected uint64 `json:"degraded_rejected,omitempty"`
}

// Stats is the operator view.
type Stats struct {
	Queued      int        `json:"queued"`
	Running     int        `json:"running"`
	GPUsInUse   int        `json:"gpus_in_use"`
	GPUCapacity int        `json:"gpu_capacity"`
	Jobs        int        `json:"jobs"`
	Cache       CacheStats `json:"cache"`
	// Engines counts jobs by their requested scan engine ("auto",
	// "dense", "sparse") — the spec-level knob, since the per-instance
	// Auto resolution happens inside the engine after kernelization.
	Engines map[string]int `json:"engines"`
	// Shed, Breaker, and Disk are the resilience-layer counters
	// (docs/RESILIENCE.md).
	Shed    ShedStats     `json:"shed"`
	Breaker BreakerStatus `json:"breaker"`
	Disk    DiskStats     `json:"disk"`
}

// Stats snapshots the queue, admission, cache, and resilience counters.
func (s *Service) Stats() Stats {
	brk := s.brk.status()
	s.mu.Lock()
	defer s.mu.Unlock()
	engines := make(map[string]int, 3)
	for _, j := range s.jobs {
		engines[j.opt.Engine.String()]++
	}
	return Stats{
		Queued:      s.queue.Len(),
		Running:     s.adm.running,
		GPUsInUse:   s.adm.inUse,
		GPUCapacity: s.adm.capacity,
		Jobs:        len(s.jobs),
		Cache:       s.cache.Stats(),
		Engines:     engines,
		Shed:        s.shed,
		Breaker:     brk,
		Disk:        s.disk,
	}
}

// Readiness is the /readyz view: whether the daemon should receive new
// work, and if not, why. Liveness (/healthz) stays separate — a degraded
// daemon is alive (it drains admitted jobs) but not ready.
type Readiness struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`

	QueueDepth int           `json:"queue_depth"`
	MaxQueued  int           `json:"max_queued"`
	Running    int           `json:"running"`
	Breaker    BreakerStatus `json:"breaker"`
	Disk       DiskStats     `json:"disk"`
}

// Readiness reports whether the daemon is accepting work.
func (s *Service) Readiness() Readiness {
	brk := s.brk.status()
	s.mu.Lock()
	defer s.mu.Unlock()
	r := Readiness{
		Ready:      true,
		QueueDepth: s.queue.Len(),
		MaxQueued:  s.cfg.MaxQueued,
		Running:    s.adm.running,
		Breaker:    brk,
		Disk:       s.disk,
	}
	if s.closed {
		r.Ready = false
		r.Reasons = append(r.Reasons, "shutting down")
	}
	if s.disk.Degraded != "" {
		r.Ready = false
		r.Reasons = append(r.Reasons, "degraded: "+s.disk.Degraded)
	}
	if brk.State == "open" {
		r.Ready = false
		r.Reasons = append(r.Reasons, "circuit breaker open")
	}
	if r.QueueDepth >= s.cfg.MaxQueued {
		r.Ready = false
		r.Reasons = append(r.Reasons, "queue full")
	}
	return r
}

// Close stops accepting work, cancels every running job — each
// checkpoints its completed steps and parks for the next daemon — and
// waits for the dispatch loop and executors to drain.
func (s *Service) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancel()
	s.wg.Wait()
	return nil
}
