package service

// Tests for the resilience layer (docs/RESILIENCE.md): overload
// shedding, per-tenant rate limiting, the execution-backend circuit
// breaker, idempotent submission, and the disk guardrails. The unit
// pieces (limiter, drain estimator, breaker) run against an injected
// clock; the end-to-end pieces drive real jobs with failpoints.

import (
	"context"
	"errors"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/failpoint"
)

// fakeClock is an injectable time source for the unit tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1_700_000_000, 0)} }

func TestRateLimiterTokenBucket(t *testing.T) {
	clk := newFakeClock()
	l := newRateLimiter(1, 2, clk.now) // 1 token/s, burst 2

	for i := 0; i < 2; i++ {
		if ok, _ := l.allow("alice"); !ok {
			t.Fatalf("burst submission %d denied", i)
		}
	}
	ok, wait := l.allow("alice")
	if ok {
		t.Fatal("third immediate submission allowed past burst")
	}
	if wait < time.Second {
		t.Fatalf("denial wait = %v, want ≥ 1s", wait)
	}
	// Another tenant has its own bucket.
	if ok, _ := l.allow("bob"); !ok {
		t.Fatal("fresh tenant denied")
	}
	// Tokens accrue with time.
	clk.advance(1500 * time.Millisecond)
	if ok, _ := l.allow("alice"); !ok {
		t.Fatal("submission denied after a token accrued")
	}
	if ok, _ := l.allow("alice"); ok {
		t.Fatal("fractional token spent as a whole one")
	}
	// A zero rate disables limiting entirely.
	open := newRateLimiter(0, 1, clk.now)
	for i := 0; i < 100; i++ {
		if ok, _ := open.allow("alice"); !ok {
			t.Fatal("disabled limiter denied a submission")
		}
	}
}

func TestDrainEstimatorRetryAfter(t *testing.T) {
	clk := newFakeClock()
	d := newDrainEstimator(clk.now)

	// No history: the default per-job estimate, clamped.
	if got := d.retryAfter(1); got != defaultPerJob {
		t.Fatalf("cold retryAfter(1) = %v, want %v", got, defaultPerJob)
	}
	// Completions 100ms apart → perJob ≈ 100ms.
	for i := 0; i < 5; i++ {
		d.completed()
		clk.advance(100 * time.Millisecond)
	}
	if got := d.perJob(); got != 100*time.Millisecond {
		t.Fatalf("perJob = %v, want 100ms", got)
	}
	if got := d.retryAfter(20); got != 2*time.Second {
		t.Fatalf("retryAfter(20) = %v, want 2s", got)
	}
	// Clamps: never below minRetryAfter, never above maxRetryAfter.
	if got := d.retryAfter(1); got != minRetryAfter {
		t.Fatalf("retryAfter(1) = %v, want clamp %v", got, minRetryAfter)
	}
	if got := d.retryAfter(1 << 20); got != maxRetryAfter {
		t.Fatalf("huge depth retryAfter = %v, want clamp %v", got, maxRetryAfter)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newFakeClock()
	b := &breaker{threshold: 3, cooldown: 10 * time.Second, now: clk.now}

	// Closed: failures below the threshold keep it closed.
	for i := 0; i < 2; i++ {
		b.onFailure()
		if ok, _ := b.allowed(); !ok {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	// A success resets the consecutive count.
	b.onSuccess()
	b.onFailure()
	b.onFailure()
	if ok, _ := b.allowed(); !ok {
		t.Fatal("breaker opened after a success reset the streak")
	}
	// The third consecutive failure trips it.
	b.onFailure()
	if ok, _ := b.allowed(); ok {
		t.Fatal("breaker still allowing after the threshold trip")
	}
	if st := b.status(); st.State != "open" || st.Trips != 1 {
		t.Fatalf("status = %+v, want open with 1 trip", st)
	}
	// Cooldown elapses → half-open with exactly one probe slot.
	clk.advance(10 * time.Second)
	ok, probe := b.allowed()
	if !ok || !probe {
		t.Fatalf("allowed() after cooldown = (%v, %v), want a probe", ok, probe)
	}
	b.beginProbe()
	if ok, _ := b.allowed(); ok {
		t.Fatal("second job admitted while the probe is in flight")
	}
	// A failed probe re-opens immediately.
	b.onFailure()
	if ok, _ := b.allowed(); ok {
		t.Fatal("breaker closed after a failed probe")
	}
	if st := b.status(); st.Trips != 2 {
		t.Fatalf("trips = %d, want 2", st.Trips)
	}
	// Next probe succeeds → closed for good.
	clk.advance(10 * time.Second)
	if ok, probe := b.allowed(); !ok || !probe {
		t.Fatal("no probe after the second cooldown")
	}
	b.beginProbe()
	b.onSuccess()
	if ok, probe := b.allowed(); !ok || probe {
		t.Fatalf("allowed() after probe success = (%v, %v), want plain closed", ok, probe)
	}
	if st := b.status(); st.State != "closed" || st.ConsecutiveFailures != 0 {
		t.Fatalf("status = %+v, want closed with streak 0", st)
	}
	// Disabled breaker never blocks and reports so.
	off := &breaker{threshold: -1, now: clk.now}
	off.onFailure()
	off.onFailure()
	if ok, _ := off.allowed(); !ok {
		t.Fatal("disabled breaker blocked dispatch")
	}
	if st := off.status(); st.State != "disabled" {
		t.Fatalf("disabled status = %+v", st)
	}
}

// retryAfterOf unwraps the Retry-After hint a rejection carries.
func retryAfterOf(t *testing.T, err error) time.Duration {
	t.Helper()
	var ra *RetryAfterError
	if !errors.As(err, &ra) {
		t.Fatalf("rejection %v carries no RetryAfterError", err)
	}
	if ra.After < minRetryAfter {
		t.Fatalf("Retry-After %v below the floor %v", ra.After, minRetryAfter)
	}
	return ra.After
}

// TestBatchSheddingAndQueueFull pins the admission ladder: batch work is
// shed at the watermark while normal work still queues, and the hard
// depth limit rejects everything — both with Retry-After hints, and
// neither ever touching an already-accepted job.
func TestBatchSheddingAndQueueFull(t *testing.T) {
	if testing.Short() {
		t.Skip("runs discovery jobs")
	}
	// Slow the scans so the queue holds still while we probe admission.
	if err := failpoint.Enable("harness/partition", "delay(20ms)"); err != nil {
		t.Fatalf("arming delay failpoint: %v", err)
	}
	defer failpoint.DisableAll()

	svc, err := Open(Config{
		DataDir:     t.TempDir(),
		JobWorkers:  2,
		ClusterGPUs: 1, // one job runs at a time; the rest queue
		MaxQueued:   3,
		ShedBatchAt: 2,
		Logf:        t.Logf,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	submit := func(prio string, seed int64) (*JobStatus, error) {
		spec := testSpec()
		spec.Priority = prio
		spec.Cohort.Seed = seed // distinct seeds defeat the result cache
		return svc.Submit(spec)
	}

	// One running + queue up to the batch watermark.
	if _, err := submit("normal", 100); err != nil {
		t.Fatalf("first submission: %v", err)
	}
	for i := int64(0); i < 2; i++ {
		if _, err := submit("normal", 200+i); err != nil {
			t.Fatalf("queueing submission %d: %v", i, err)
		}
	}

	// Depth ≥ ShedBatchAt: batch is shed, normal still queues.
	if _, err := submit("batch", 300); !errors.Is(err, ErrShed) {
		t.Fatalf("batch at watermark: err = %v, want ErrShed", err)
	} else {
		retryAfterOf(t, err)
	}
	if _, err := submit("normal", 301); err != nil {
		t.Fatalf("normal at watermark rejected: %v", err)
	}

	// Depth = MaxQueued: everything is rejected.
	if _, err := submit("urgent", 400); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submission at hard limit: err = %v, want ErrQueueFull", err)
	} else {
		retryAfterOf(t, err)
	}

	st := svc.Stats()
	if st.Shed.BatchShed != 1 || st.Shed.QueueFull != 1 {
		t.Fatalf("shed counters = %+v, want 1 batch shed and 1 queue-full", st.Shed)
	}
	// Every accepted job is still present — shedding is admission-only.
	if got := len(svc.List("")); got != 4 {
		t.Fatalf("%d jobs after shedding, want the 4 accepted", got)
	}
}

func TestTenantRateLimitAtSubmission(t *testing.T) {
	if testing.Short() {
		t.Skip("runs discovery jobs")
	}
	svc, err := Open(Config{
		DataDir:          t.TempDir(),
		JobWorkers:       2,
		TenantRatePerSec: 0.001, // ~17min per token: no accrual during the test
		TenantBurst:      1,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	spec := testSpec()
	if _, err := svc.Submit(spec); err != nil {
		t.Fatalf("first submission: %v", err)
	}
	spec.Cohort.Seed = 12
	_, err = svc.Submit(spec)
	if !errors.Is(err, ErrRateLimited) {
		t.Fatalf("second submission: err = %v, want ErrRateLimited", err)
	}
	retryAfterOf(t, err)
	if n := svc.Stats().Shed.RateLimited; n != 1 {
		t.Fatalf("RateLimited counter = %d, want 1", n)
	}
	// Another tenant is unaffected.
	spec.Tenant = "bob"
	if _, err := svc.Submit(spec); err != nil {
		t.Fatalf("other tenant's submission: %v", err)
	}
}

// TestBreakerTripsOnBackendFailures drives the breaker end to end:
// persistent checkpoint-write failures fail jobs, consecutive failures
// trip the breaker (queued jobs wait instead of burning), and once the
// fault clears the half-open probe closes it and the queue drains.
func TestBreakerTripsOnBackendFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("runs discovery jobs")
	}
	defer failpoint.DisableAll()

	svc, err := Open(Config{
		DataDir:          t.TempDir(),
		JobWorkers:       2,
		ClusterGPUs:      1,
		BreakerThreshold: 2,
		BreakerCooldown:  300 * time.Millisecond,
		Logf:             t.Logf,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	// Queue four jobs, then break the checkpoint path. The spec files are
	// already persisted, so only the running jobs' stores fail.
	var ids []string
	for i := int64(0); i < 4; i++ {
		spec := testSpec()
		spec.Cohort.Seed = 500 + i
		st, err := svc.Submit(spec)
		if err != nil {
			t.Fatalf("submission %d: %v", i, err)
		}
		ids = append(ids, st.ID)
	}
	if err := failpoint.Enable("ckptstore/write", "error"); err != nil {
		t.Fatalf("arming write failpoint: %v", err)
	}

	// Two jobs fail → the breaker opens with ≥2 jobs still queued.
	waitFor(t, 30*time.Second, "breaker open", func() bool {
		return svc.Stats().Breaker.State == "open"
	})
	st := svc.Stats()
	if st.Queued == 0 {
		t.Fatal("breaker opened only after the whole queue burned")
	}

	// Clear the fault: the cooldown elapses, one probe job runs, closes
	// the breaker, and the remaining jobs drain to success.
	failpoint.DisableAll()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	failed := 0
	for _, id := range ids {
		final, err := svc.WaitJob(ctx, id)
		if err != nil {
			t.Fatalf("WaitJob(%s): %v", id, err)
		}
		switch final.State {
		case StateFailed.String():
			failed++
		case StateSucceeded.String():
		default:
			t.Fatalf("job %s ended %s", id, final.State)
		}
	}
	if failed != 2 {
		t.Fatalf("%d jobs failed, want exactly the 2 that tripped the breaker", failed)
	}
	if got := svc.Stats().Breaker; got.State != "closed" || got.Trips != 1 {
		t.Fatalf("final breaker = %+v, want closed after 1 trip", got)
	}
}

func TestIdempotentSubmitDedupesAndSurvivesRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("runs discovery jobs")
	}
	cfg := Config{DataDir: t.TempDir(), JobWorkers: 2, Logf: t.Logf}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	const key = "soak-round-7-client-3"
	st, dup, err := svc.SubmitIdempotent(testSpec(), key)
	if err != nil || dup {
		t.Fatalf("first keyed submission: dup=%v err=%v", dup, err)
	}
	// A retried POST with the same key lands on the same job.
	st2, dup, err := svc.SubmitIdempotent(testSpec(), key)
	if err != nil || !dup || st2.ID != st.ID {
		t.Fatalf("retry: id=%v dup=%v err=%v, want duplicate of %s", st2, dup, err, st.ID)
	}
	if got := len(svc.List("")); got != 1 {
		t.Fatalf("%d jobs after a keyed retry, want 1", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.WaitJob(ctx, st.ID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// The key is persisted with the job: a restarted daemon still dedupes.
	svc2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopening: %v", err)
	}
	defer svc2.Close()
	st3, dup, err := svc2.SubmitIdempotent(testSpec(), key)
	if err != nil || !dup || st3.ID != st.ID {
		t.Fatalf("post-restart retry: id=%v dup=%v err=%v, want duplicate of %s", st3, dup, err, st.ID)
	}
	if st3.State != StateSucceeded.String() {
		t.Fatalf("deduped job reports %s, want the terminal result", st3.State)
	}
}

// TestDiskFullDegradesWithoutFailingInFlight is the issue's storage
// acceptance test: an injected ENOSPC on the checkpoint path flips the
// service into the degraded state — submissions are rejected with
// Retry-After, /readyz turns unready with the reason — while the
// in-flight job parks on the retry loop instead of failing; when space
// returns the service recovers on its own and the job completes
// bit-identically to a fault-free run.
func TestDiskFullDegradesWithoutFailingInFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("runs discovery jobs")
	}
	spec := testSpec()
	want := directRun(t, spec)

	// Slow the scans so the job is reliably mid-flight when the disk
	// "fills".
	if err := failpoint.Enable("harness/partition", "delay(10ms)"); err != nil {
		t.Fatalf("arming delay failpoint: %v", err)
	}
	defer failpoint.DisableAll()

	svc, err := Open(Config{
		DataDir:    t.TempDir(),
		JobWorkers: 2,
		DiskPoll:   50 * time.Millisecond,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	st, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sub, err := svc.Subscribe(st.ID, 0)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	streamCtx, cancelStream := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelStream()
	for {
		e, ok := sub.Next(streamCtx)
		if !ok {
			t.Fatal("stream ended before the first checkpoint")
		}
		if e.Type == "checkpoint" {
			break
		}
	}

	// The disk fills: the next checkpoint write hits ENOSPC.
	if err := failpoint.Enable("ckptstore/write", "diskfull"); err != nil {
		t.Fatalf("arming diskfull failpoint: %v", err)
	}
	waitFor(t, 30*time.Second, "degraded state", func() bool {
		return svc.Stats().Disk.Degraded != ""
	})

	// Degraded: new work is rejected with the reason and a hint...
	_, err = svc.Submit(JobSpec{Tenant: "bob", Cohort: CohortSpec{Code: "BRCA", Genes: 40, Hits: 2, Seed: 77}, Options: OptionsSpec{Workers: 2}})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("submission while degraded: err = %v, want ErrDegraded", err)
	}
	retryAfterOf(t, err)
	rd := svc.Readiness()
	if rd.Ready {
		t.Fatal("Readiness reports ready while degraded")
	}
	if len(rd.Reasons) == 0 || !strings.Contains(rd.Reasons[0], "degraded") {
		t.Fatalf("readiness reasons = %v, want the degraded detail", rd.Reasons)
	}
	// ...but the in-flight job is alive, not failed.
	if cur, err := svc.Get(st.ID); err != nil || cur.State != StateRunning.String() {
		t.Fatalf("in-flight job during disk-full: %+v, %v — must stay running", cur, err)
	}

	// Space returns: the monitor's probe write lands, the degraded state
	// lifts, and the parked checkpoint write goes through.
	failpoint.Disable("ckptstore/write")
	waitFor(t, 30*time.Second, "recovery", func() bool {
		return svc.Stats().Disk.Degraded == ""
	})
	if !svc.Readiness().Ready {
		t.Fatal("Readiness not restored after recovery")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := svc.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if final.State != StateSucceeded.String() {
		t.Fatalf("job survived disk-full but ended %s (%+v)", final.State, final.Result)
	}
	assertMatchesDirect(t, final.Result, want)
}

// TestDiskBudgetGCReclaimsTerminalCheckpoints pins the accountant: over
// budget, the background GC removes terminal jobs' checkpoint stores
// (the result file is the durable artifact) and the degraded state
// clears once usage is back under.
func TestDiskBudgetGCReclaimsTerminalCheckpoints(t *testing.T) {
	if testing.Short() {
		t.Skip("runs discovery jobs")
	}
	cfg := Config{DataDir: t.TempDir(), JobWorkers: 2, Logf: t.Logf}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := svc.Submit(testSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.WaitJob(ctx, st.ID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	total := svc.measureUsage()
	ckptBytes := dirSize(filepath.Join(svc.jobDir(st.ID), ckptDirName))
	if ckptBytes == 0 {
		t.Fatal("terminal job kept no checkpoints; nothing for GC to test")
	}
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen with a budget the checkpoints bust but the spec/result files
	// fit: the first tick must degrade, GC, and recover.
	cfg.DiskBudgetBytes = total - 1
	if cfg.DiskBudgetBytes <= total-ckptBytes {
		t.Fatalf("budget %d not separable from post-GC usage %d", cfg.DiskBudgetBytes, total-ckptBytes)
	}
	cfg.DiskPoll = 50 * time.Millisecond
	svc2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopening: %v", err)
	}
	defer svc2.Close()

	waitFor(t, 30*time.Second, "GC pass", func() bool {
		d := svc2.Stats().Disk
		return d.GCRuns > 0 && d.Degraded == ""
	})
	if n := dirSize(filepath.Join(svc2.jobDir(st.ID), ckptDirName)); n != 0 {
		t.Fatalf("terminal job's checkpoint dir still holds %d bytes after GC", n)
	}
	d := svc2.Stats().Disk
	if d.GCFreedBytes < ckptBytes {
		t.Fatalf("GC accounted %d freed bytes, want ≥ %d", d.GCFreedBytes, ckptBytes)
	}
	if d.UsageBytes > cfg.DiskBudgetBytes {
		t.Fatalf("usage %d still over budget %d after GC", d.UsageBytes, cfg.DiskBudgetBytes)
	}
	// The result is untouched: the job still answers with its outcome.
	if got, err := svc2.Get(st.ID); err != nil || got.Result == nil {
		t.Fatalf("terminal result lost to GC: %+v, %v", got, err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
