package service

import (
	"testing"

	"repro/internal/bitmat"
	"repro/internal/cover"
)

// testMatrices builds a small deterministic tumor/normal pair; variant
// perturbs one bit so fingerprints differ between variants.
func testMatrices(variant int) (*bitmat.Matrix, *bitmat.Matrix) {
	tumor := bitmat.New(8, 16)
	normal := bitmat.New(8, 12)
	for g := 0; g < 8; g++ {
		for s := 0; s < 16; s++ {
			if (g*7+s*3+variant)%5 == 0 {
				tumor.Set(g, s)
			}
		}
		for s := 0; s < 12; s++ {
			if (g*5+s*11)%7 == 0 {
				normal.Set(g, s)
			}
		}
	}
	return tumor, normal
}

func normalizedOpt(t *testing.T, opt cover.Options) cover.Options {
	t.Helper()
	opt.Hits = 2
	norm, err := opt.Normalized()
	if err != nil {
		t.Fatalf("Normalized: %v", err)
	}
	return norm
}

// TestCanonicalKeyDropsExecutionKnobs: worker count and scheduler cannot
// change the result, so they must not fragment the cache.
func TestCanonicalKeyDropsExecutionKnobs(t *testing.T) {
	tumor, normal := testMatrices(0)
	base := normalizedOpt(t, cover.Options{Workers: 1, Scheduler: cover.EquiArea})
	exec := normalizedOpt(t, cover.Options{Workers: 7, Scheduler: cover.EquiDistance})
	if CanonicalKey(tumor, normal, base) != CanonicalKey(tumor, normal, exec) {
		t.Fatal("execution-only knobs (workers, scheduler) changed the cache key")
	}
}

// TestCanonicalKeyDropsEngine: the scan engine returns bit-identical
// covers either way, so dense and sparse submissions of the same cohort
// share one cache entry.
func TestCanonicalKeyDropsEngine(t *testing.T) {
	tumor, normal := testMatrices(0)
	norm := func(e cover.Engine) cover.Options {
		opt, err := cover.Options{Hits: 3, Engine: e}.Normalized()
		if err != nil {
			t.Fatalf("Normalized: %v", err)
		}
		return opt
	}
	dense := CanonicalKey(tumor, normal, norm(cover.EngineDense))
	sparse := CanonicalKey(tumor, normal, norm(cover.EngineSparse))
	auto := CanonicalKey(tumor, normal, norm(cover.EngineAuto))
	if dense != sparse || dense != auto {
		t.Fatal("engine selection fragmented the cache key")
	}
}

// TestCanonicalKeySeparatesKernelizeAndInputs: Kernelize changes the
// observable payload (provenance fingerprint, Evaluated/Pruned split), so
// kernelized and plain runs must occupy distinct entries; and different
// matrices must never collide.
func TestCanonicalKeySeparatesKernelizeAndInputs(t *testing.T) {
	tumor, normal := testMatrices(0)
	plain := normalizedOpt(t, cover.Options{})
	kern := normalizedOpt(t, cover.Options{Kernelize: true})
	if CanonicalKey(tumor, normal, plain) == CanonicalKey(tumor, normal, kern) {
		t.Fatal("kernelized and plain submissions share a cache key")
	}
	tumor2, normal2 := testMatrices(1)
	if CanonicalKey(tumor, normal, plain) == CanonicalKey(tumor2, normal2, plain) {
		t.Fatal("different cohorts share a cache key")
	}
	if tumor.Fingerprint() == tumor2.Fingerprint() {
		t.Fatal("test matrices do not differ; the collision check is vacuous")
	}
}

func completeResult(fp uint64) *JobResult {
	return &JobResult{Covered: 16, Evaluated: 28, TumorFingerprint: fp}
}

// TestCacheHitMissEviction drives the LRU through its lifecycle.
func TestCacheHitMissEviction(t *testing.T) {
	c := newResultCache(2)
	k1 := CacheKey{TumorFP: 1}
	k2 := CacheKey{TumorFP: 2}
	k3 := CacheKey{TumorFP: 3}

	if _, _, ok := c.Get(k1); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(k1, "job-1", completeResult(1))
	c.Put(k2, "job-2", completeResult(2))
	res, from, ok := c.Get(k1)
	if !ok || from != "job-1" || res.TumorFingerprint != 1 {
		t.Fatalf("Get(k1) = %+v from %q ok=%v", res, from, ok)
	}
	// k1 is now most recently used; inserting k3 must evict k2.
	c.Put(k3, "job-3", completeResult(3))
	if _, _, ok := c.Get(k2); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, _, ok := c.Get(k1); !ok {
		t.Fatal("recently used entry was evicted")
	}
	if _, _, ok := c.Get(k3); !ok {
		t.Fatal("newest entry missing")
	}
	st := c.Stats()
	if st.Entries != 2 || st.Capacity != 2 || st.Evictions != 1 {
		t.Fatalf("stats = %+v, want 2 entries, capacity 2, 1 eviction", st)
	}
	if st.Hits != 3 || st.Misses != 2 {
		t.Fatalf("stats = %+v, want 3 hits / 2 misses", st)
	}
}

// TestCacheRejectsIncompleteResults: partial and failed runs are a prefix
// of the answer, not the answer.
func TestCacheRejectsIncompleteResults(t *testing.T) {
	c := newResultCache(4)
	c.Put(CacheKey{TumorFP: 1}, "job-1", &JobResult{Partial: true})
	c.Put(CacheKey{TumorFP: 2}, "job-2", &JobResult{Error: "boom"})
	c.Put(CacheKey{TumorFP: 3}, "job-3", nil)
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("cache accepted %d incomplete results", st.Entries)
	}
}

// TestCacheDisabled: non-positive capacity turns the cache off entirely.
func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1)
	c.Put(CacheKey{TumorFP: 1}, "job-1", completeResult(1))
	if _, _, ok := c.Get(CacheKey{TumorFP: 1}); ok {
		t.Fatal("disabled cache returned a hit")
	}
}
