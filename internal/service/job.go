package service

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/harness"
)

// Priority is a job's scheduling class. Within the daemon, every queued
// job of a higher class starts before any job of a lower one; within a
// class, tenants share starts fairly (see queue.go).
type Priority int

const (
	// PriorityBatch is background work: large sweeps, recomputation.
	PriorityBatch Priority = iota
	// PriorityNormal is the default interactive class.
	PriorityNormal
	// PriorityUrgent jumps every other class.
	PriorityUrgent
)

// String names the class as the HTTP API spells it.
func (p Priority) String() string {
	switch p {
	case PriorityBatch:
		return "batch"
	case PriorityNormal:
		return "normal"
	case PriorityUrgent:
		return "urgent"
	}
	return fmt.Sprintf("Priority(%d)", int(p))
}

// ParsePriority resolves the wire spelling; empty means normal.
func ParsePriority(s string) (Priority, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "normal":
		return PriorityNormal, nil
	case "batch":
		return PriorityBatch, nil
	case "urgent":
		return PriorityUrgent, nil
	}
	return PriorityNormal, fmt.Errorf("service: unknown priority %q (want batch, normal or urgent)", s)
}

// CohortSpec names a seeded synthetic cohort. Generation is deterministic
// in (Code, Genes, Hits, Seed), which is what lets a restarted daemon
// rebuild a job's matrices bit-identically and lets the result cache key
// on the matrix fingerprints.
type CohortSpec struct {
	// Code is the TCGA study code (BRCA, LGG, ...).
	Code string `json:"code"`
	// Genes scales the gene universe; 0 keeps the registry default.
	Genes int `json:"genes,omitempty"`
	// Hits is the combination size the cohort plants (2-4 for the
	// supervised engine).
	Hits int `json:"hits"`
	// Seed seeds the generator.
	Seed int64 `json:"seed"`
}

// Generate builds the cohort. Deterministic: equal specs yield matrices
// with equal fingerprints.
func (c CohortSpec) Generate() (*dataset.Cohort, error) {
	spec, err := dataset.ByCode(c.Code)
	if err != nil {
		return nil, err
	}
	if c.Hits < 2 || c.Hits > 4 {
		return nil, fmt.Errorf("service: cohort hits must be 2-4, got %d", c.Hits)
	}
	spec.Hits = c.Hits
	// The registry's positional-mutation profiles assume the study's
	// native hit count; discovery jobs don't read them.
	spec.Profiled = nil
	if c.Genes > 0 {
		spec = spec.Scaled(c.Genes)
	}
	return dataset.Generate(spec, c.Seed)
}

// OptionsSpec is the wire form of the engine options a submitter may set.
// Everything omitted takes the engine default; Workers is resolved to the
// daemon's per-job worker count at submission so a restarted daemon
// re-runs the job with the identical partition plan.
type OptionsSpec struct {
	Alpha     float64 `json:"alpha,omitempty"`
	Scheme    string  `json:"scheme,omitempty"`
	Scheduler string  `json:"scheduler,omitempty"`
	Workers   int     `json:"workers,omitempty"`
	Kernelize bool    `json:"kernelize,omitempty"`
	// Engine is "auto" (default), "dense" or "sparse" (docs/SPARSE.md).
	// An execution knob: it changes scan speed, never results, so the
	// result cache canonicalizes it away like Workers and Scheduler.
	Engine        string `json:"engine,omitempty"`
	MaxIterations int    `json:"max_iterations,omitempty"`
}

// CoverOptions resolves the wire options against the cohort's hit count.
func (o OptionsSpec) CoverOptions(hits int) (cover.Options, error) {
	opt := cover.Options{
		Hits:          hits,
		Alpha:         o.Alpha,
		Workers:       o.Workers,
		Kernelize:     o.Kernelize,
		MaxIterations: o.MaxIterations,
	}
	switch strings.ToLower(strings.TrimSpace(o.Scheme)) {
	case "", "auto":
		opt.Scheme = cover.SchemeAuto
	case "pair":
		opt.Scheme = cover.SchemePair
	case "2x1":
		opt.Scheme = cover.Scheme2x1
	case "2x2":
		opt.Scheme = cover.Scheme2x2
	case "3x1":
		opt.Scheme = cover.Scheme3x1
	default:
		return opt, fmt.Errorf("service: unknown scheme %q", o.Scheme)
	}
	switch strings.ToUpper(strings.TrimSpace(o.Scheduler)) {
	case "", "EA":
		opt.Scheduler = cover.EquiArea
	case "ED":
		opt.Scheduler = cover.EquiDistance
	default:
		return opt, fmt.Errorf("service: unknown scheduler %q", o.Scheduler)
	}
	engine, err := cover.ParseEngine(strings.ToLower(strings.TrimSpace(o.Engine)))
	if err != nil {
		return opt, err
	}
	opt.Engine = engine
	return opt, nil
}

// JobSpec is one submission. It is persisted verbatim (plus the resolved
// worker count) in the job directory, so a restarted daemon can rebuild
// the exact run.
type JobSpec struct {
	// Tenant is the fair-share accounting identity; empty means
	// "default".
	Tenant string `json:"tenant,omitempty"`
	// Priority is batch, normal (default) or urgent.
	Priority string `json:"priority,omitempty"`
	// Cohort names the seeded input.
	Cohort CohortSpec `json:"cohort"`
	// Options tunes the engine.
	Options OptionsSpec `json:"options"`
	// DeadlineSec, when positive, bounds the job's wall clock per leg;
	// an expired job parks as partial with a checkpoint.
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
}

// ComboResult is one discovered combination in the job result.
type ComboResult struct {
	GeneIDs      []int    `json:"gene_ids"`
	Symbols      []string `json:"symbols,omitempty"`
	F            float64  `json:"f"`
	NewlyCovered int      `json:"newly_covered"`
}

// JobResult is the terminal payload of a job — the service-shaped echo of
// harness.Result, plus cache provenance.
type JobResult struct {
	Combos      []ComboResult `json:"combos"`
	Covered     int           `json:"covered"`
	Uncoverable int           `json:"uncoverable"`
	Evaluated   uint64        `json:"evaluated"`
	Pruned      uint64        `json:"pruned"`
	Unscanned   uint64        `json:"unscanned,omitempty"`
	Partial     bool          `json:"partial,omitempty"`
	Stop        string        `json:"stop,omitempty"`
	ElapsedSec  float64       `json:"elapsed_sec"`

	// TumorFingerprint/NormalFingerprint bind the result to the exact
	// matrices; KernelFingerprint identifies the reduction of a
	// kernelized run.
	TumorFingerprint  uint64 `json:"tumor_fingerprint"`
	NormalFingerprint uint64 `json:"normal_fingerprint"`
	KernelFingerprint uint64 `json:"kernel_fingerprint,omitempty"`

	// CachedFrom, when non-empty, names the job whose run produced this
	// result — the submission was answered from the result cache without
	// scanning.
	CachedFrom string `json:"cached_from,omitempty"`
	// Error carries the failure message of a failed job.
	Error string `json:"error,omitempty"`
}

// resultFromHarness shapes a harness outcome for the API.
func resultFromHarness(res *harness.Result, symbols []string, tumorFP, normalFP, kernelFP uint64) *JobResult {
	out := &JobResult{
		Covered:           res.Covered,
		Uncoverable:       res.Uncoverable,
		Evaluated:         res.Evaluated,
		Pruned:            res.Pruned,
		Unscanned:         res.Unscanned,
		Partial:           res.Partial,
		Stop:              res.Stop.String(),
		ElapsedSec:        res.Elapsed.Seconds(),
		TumorFingerprint:  tumorFP,
		NormalFingerprint: normalFP,
		KernelFingerprint: kernelFP,
	}
	for _, step := range res.Steps {
		ids := step.Combo.GeneIDs()
		c := ComboResult{GeneIDs: ids, F: step.Combo.F, NewlyCovered: step.NewlyCovered}
		for _, id := range ids {
			if id >= 0 && id < len(symbols) {
				c.Symbols = append(c.Symbols, symbols[id])
			}
		}
		out.Combos = append(out.Combos, c)
	}
	return out
}

// ProgressStatus is the polling view of a running job's progress, fed by
// harness.Options.OnProgress.
type ProgressStatus struct {
	// Step is the greedy step being scanned (0-based).
	Step int `json:"step"`
	// DonePartitions/TotalPartitions tally the step's enumeration pass.
	DonePartitions  int `json:"done_partitions"`
	TotalPartitions int `json:"total_partitions"`
	// Unscanned is the cumulative quarantine coverage bound so far.
	Unscanned uint64 `json:"unscanned,omitempty"`
	// ReplayedSteps counts checkpointed steps replayed on resume.
	ReplayedSteps int `json:"replayed_steps,omitempty"`
	// Generation is the newest persisted checkpoint generation.
	Generation uint64 `json:"generation,omitempty"`
}

// JobStatus is the polling view of a job.
type JobStatus struct {
	ID       string          `json:"id"`
	Tenant   string          `json:"tenant"`
	Priority string          `json:"priority"`
	State    string          `json:"state"`
	ExitCode *int            `json:"exit_code,omitempty"` // terminal jobs only
	Spec     JobSpec         `json:"spec"`
	Progress *ProgressStatus `json:"progress,omitempty"`
	Result   *JobResult      `json:"result,omitempty"`
	// Resumed provenance mirrors harness.Result.
	Resumed     bool      `json:"resumed,omitempty"`
	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at"`
	EndedAt     time.Time `json:"ended_at"`
}

// job is the daemon-side record.
type job struct {
	id       string
	tenant   string
	priority Priority
	spec     JobSpec
	dir      string
	cost     Cost
	// cohort and opt are rebuilt deterministically from the spec (at
	// submission or restore); they never touch disk.
	cohort *dataset.Cohort
	opt    cover.Options

	mu          sync.Mutex
	state       JobState
	progress    ProgressStatus
	result      *JobResult
	resumed     bool
	submittedAt time.Time
	startedAt   time.Time
	endedAt     time.Time
	cancel      func()        // non-nil while running
	userCancel  bool          // cancel requested by the submitter
	idemKey     string        // idempotency key the submission carried
	done        chan struct{} // closed on terminal transition

	// Event history ring. Publishing appends (never blocks), trimming
	// drops the oldest frames, and subscribers pull at their own pace —
	// a stalled consumer costs retained frames, never job progress.
	seq      uint64        // last assigned event sequence (1-based)
	events   []Event       // retained events, ascending seq
	firstSeq uint64        // seq of events[0] (when non-empty)
	notify   chan struct{} // closed and replaced on every publish
}

// Event is one job lifecycle or progress notification, streamed over SSE
// and pulled by in-process subscribers.
type Event struct {
	// Type is state, progress, checkpoint, retry, quarantine, resume or
	// dropped.
	Type  string `json:"type"`
	JobID string `json:"job_id"`
	// Seq is the per-job event sequence number (1-based; 0 marks
	// unnumbered snapshot frames). SSE clients resume a broken stream by
	// sending it back as Last-Event-ID.
	Seq uint64 `json:"seq,omitempty"`
	// State accompanies state events.
	State string `json:"state,omitempty"`
	// Progress accompanies progress events.
	Progress *ProgressStatus `json:"progress,omitempty"`
	// Generation accompanies checkpoint/resume events.
	Generation uint64 `json:"generation,omitempty"`
	// Dropped accompanies dropped events: how many frames a slow
	// subscriber lost to history trimming before this point.
	Dropped uint64 `json:"dropped,omitempty"`
	// Detail carries the human-readable tail (retry errors, quarantine
	// ranges).
	Detail string `json:"detail,omitempty"`
}

// status snapshots the job for the API.
func (j *job) status() *JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := &JobStatus{
		ID:          j.id,
		Tenant:      j.tenant,
		Priority:    j.priority.String(),
		State:       j.state.String(),
		Spec:        j.spec,
		Resumed:     j.resumed,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		EndedAt:     j.endedAt,
	}
	if j.state == StateRunning {
		p := j.progress
		st.Progress = &p
	}
	if j.state.Terminal() {
		code := j.state.ExitCode()
		st.ExitCode = &code
		st.Result = j.result
	}
	return st
}

// jobEventHistory bounds the per-job event ring. A subscriber that
// falls further behind than this receives a "dropped" frame accounting
// for the gap, then the retained tail. It is a var so tests can shrink
// it to force drops cheaply.
var jobEventHistory = 512

// publish appends an event to the job's history ring and wakes every
// subscriber. It never blocks: a stalled subscriber cannot delay the
// publisher (the harness progress callback, i.e. job progress itself).
func (j *job) publish(e Event) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.publishLocked(e)
}

func (j *job) publishLocked(e Event) {
	j.seq++
	e.Seq = j.seq
	if len(j.events) == 0 {
		j.firstSeq = e.Seq
	}
	j.events = append(j.events, e)
	if drop := len(j.events) - jobEventHistory; drop > 0 {
		j.events = j.events[drop:]
		j.firstSeq = j.events[0].Seq
	}
	if j.notify != nil {
		close(j.notify)
	}
	j.notify = make(chan struct{})
}

// Subscription is a pull-based cursor over a job's event history. Each
// Next call returns the next retained event at the subscriber's own
// pace; history the subscriber was too slow for is summarized by a
// single "dropped" frame rather than delivered late.
type Subscription struct {
	j      *job
	cursor uint64 // last seq delivered (0 = nothing yet)
}

// Next blocks until an event past the cursor is available, the job's
// stream ends (terminal state event delivered and nothing newer), or
// ctx is done. The second return is false when the stream is over.
func (sub *Subscription) Next(ctx context.Context) (Event, bool) {
	j := sub.j
	for {
		j.mu.Lock()
		if sub.cursor > j.seq {
			// A stale Last-Event-ID from a previous daemon incarnation
			// (sequences reset at restart): clamp to the live stream.
			sub.cursor = j.seq
		}
		if sub.cursor < j.seq {
			if first := j.firstSeq; first > sub.cursor+1 {
				// The ring trimmed past the cursor: account for the gap.
				dropped := first - sub.cursor - 1
				sub.cursor = first - 1
				e := Event{Type: "dropped", JobID: j.id, Seq: sub.cursor, Dropped: dropped}
				j.mu.Unlock()
				return e, true
			}
			e := j.events[sub.cursor+1-j.firstSeq]
			sub.cursor = e.Seq
			j.mu.Unlock()
			return e, true
		}
		if j.state.Terminal() {
			j.mu.Unlock()
			return Event{}, false
		}
		ch := j.notify
		if ch == nil {
			ch = make(chan struct{})
			j.notify = ch
		}
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return Event{}, false
		}
	}
}

// setState transitions the job and publishes the change. Terminal
// transitions stick: once terminal, later transitions are ignored.
func (j *job) setState(s JobState) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() || j.state == s {
		return
	}
	j.state = s
	switch s {
	case StateRunning:
		j.startedAt = time.Now()
	default:
		if s.Terminal() {
			j.endedAt = time.Now()
			close(j.done)
		}
	}
	j.publishLocked(Event{Type: "state", JobID: j.id, State: s.String()})
}

// sortJobsByID orders job records by id (ids are zero-padded, so
// lexicographic order is submission order).
func sortJobsByID(jobs []*job) {
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
}
