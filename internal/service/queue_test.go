package service

import (
	"fmt"
	"testing"
)

// qjob builds a bare queue-level job record.
func qjob(id int, tenant string, prio Priority) *job {
	return &job{id: fmt.Sprintf(jobIDPattern, id), tenant: tenant, priority: prio}
}

func fitsAll(*job) bool { return true }

// drain pops until empty and returns the tenants in start order.
func drain(q *fairQueue) []string {
	var order []string
	for {
		j := q.Next(fitsAll)
		if j == nil {
			return order
		}
		order = append(order, j.tenant)
	}
}

// TestFairShareInterleavesSkewedTenants is the issue's headline scenario:
// tenant A floods the queue, tenant B submits a couple of jobs, and the
// start order interleaves instead of draining A first.
func TestFairShareInterleavesSkewedTenants(t *testing.T) {
	q := newFairQueue()
	id := 0
	for i := 0; i < 8; i++ {
		id++
		q.Push(qjob(id, "alice", PriorityNormal))
	}
	for i := 0; i < 2; i++ {
		id++
		q.Push(qjob(id, "bob", PriorityNormal))
	}
	got := drain(q)
	// Clocks start equal, ties break by name: alice, bob, alice, bob,
	// then alice owns the rest.
	want := []string{"alice", "bob", "alice", "bob", "alice", "alice", "alice", "alice", "alice", "alice"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("start order %v, want %v", got, want)
	}
}

// TestFairShareSkewedSubmissionRates mixes arrival with dispatch: the
// heavy tenant keeps pushing between starts, yet the light tenant is
// never starved for more than one start.
func TestFairShareSkewedSubmissionRates(t *testing.T) {
	q := newFairQueue()
	id := 0
	push := func(tenant string, n int) {
		for i := 0; i < n; i++ {
			id++
			q.Push(qjob(id, tenant, PriorityNormal))
		}
	}
	push("heavy", 4)
	push("light", 1)
	var starts []string
	for round := 0; round < 12; round++ {
		j := q.Next(fitsAll)
		if j == nil {
			break
		}
		starts = append(starts, j.tenant)
		// The heavy tenant submits three more jobs for every start; the
		// light tenant one.
		push("heavy", 3)
		if round%2 == 1 {
			push("light", 1)
		}
	}
	// Count the gap between consecutive light starts: fair share must not
	// let heavy's flood push light's queued job more than one start back.
	gap, maxGap := 0, 0
	seenLight := false
	for _, tenant := range starts {
		if tenant == "light" {
			seenLight = true
			gap = 0
			continue
		}
		if seenLight {
			gap++
			if gap > maxGap {
				maxGap = gap
			}
		}
	}
	if !seenLight {
		t.Fatalf("light tenant never started: %v", starts)
	}
	if maxGap > 1 {
		t.Fatalf("light tenant starved for %d consecutive heavy starts (want ≤1): %v", maxGap, starts)
	}
}

// TestPriorityClassesPreempt verifies class order beats tenant clocks.
func TestPriorityClassesPreempt(t *testing.T) {
	q := newFairQueue()
	q.Push(qjob(1, "batcher", PriorityBatch))
	q.Push(qjob(2, "norm", PriorityNormal))
	q.Push(qjob(3, "rush", PriorityUrgent))
	q.Push(qjob(4, "norm", PriorityNormal))
	want := []string{"rush", "norm", "norm", "batcher"}
	if got := drain(q); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("start order %v, want %v", got, want)
	}
}

// TestIdleTenantCannotBankCredit: a tenant that sat idle while another
// dispatched many jobs is caught up on entry, not handed a burst.
func TestIdleTenantCannotBankCredit(t *testing.T) {
	q := newFairQueue()
	for i := 1; i <= 6; i++ {
		q.Push(qjob(i, "busy", PriorityNormal))
	}
	for i := 0; i < 4; i++ {
		if j := q.Next(fitsAll); j == nil || j.tenant != "busy" {
			t.Fatalf("warmup start %d went to %v", i, j)
		}
	}
	// newcomer enters from idle with clock 0; without catch-up it would
	// own the next 4 starts in a row.
	q.Push(qjob(7, "newcomer", PriorityNormal))
	q.Push(qjob(8, "newcomer", PriorityNormal))
	q.Push(qjob(9, "newcomer", PriorityNormal))
	got := drain(q)
	want := []string{"busy", "newcomer", "busy", "newcomer", "newcomer"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("start order %v, want %v", got, want)
	}
}

// TestHeadOfLineSkipsNonFitting: a head job too big for the remaining
// capacity is skipped in favor of other tenants, without reordering the
// skipped tenant's own FIFO.
func TestHeadOfLineSkipsNonFitting(t *testing.T) {
	q := newFairQueue()
	big := qjob(1, "alice", PriorityNormal)
	big.cost = Cost{GPUs: 8}
	small := qjob(2, "alice", PriorityNormal)
	small.cost = Cost{GPUs: 1}
	other := qjob(3, "bob", PriorityNormal)
	other.cost = Cost{GPUs: 1}
	q.Push(big)
	q.Push(small)
	q.Push(other)

	fitsSmall := func(j *job) bool { return j.cost.GPUs <= 2 }
	j := q.Next(fitsSmall)
	if j == nil || j.id != other.id {
		t.Fatalf("first fitting start = %+v, want bob's job (alice's head is too big, her FIFO must not reorder)", j)
	}
	if j = q.Next(fitsSmall); j != nil {
		t.Fatalf("second start = %+v, want nil: alice's small job is behind her non-fitting head", j)
	}
	// Capacity frees up: alice's head dispatches, then her second job.
	if j = q.Next(fitsAll); j == nil || j.id != big.id {
		t.Fatalf("after capacity freed, start = %+v, want alice's head", j)
	}
	if j = q.Next(fitsAll); j == nil || j.id != small.id {
		t.Fatalf("final start = %+v, want alice's second job", j)
	}
}

// TestRemoveCanceledJob: canceling a queued job removes exactly it.
func TestRemoveCanceledJob(t *testing.T) {
	q := newFairQueue()
	a := qjob(1, "alice", PriorityNormal)
	b := qjob(2, "alice", PriorityNormal)
	q.Push(a)
	q.Push(b)
	if !q.Remove(a.id) {
		t.Fatal("Remove(queued job) = false")
	}
	if q.Remove(a.id) {
		t.Fatal("Remove(already removed) = true")
	}
	if q.Len() != 1 {
		t.Fatalf("Len = %d, want 1", q.Len())
	}
	if j := q.Next(fitsAll); j == nil || j.id != b.id {
		t.Fatalf("Next = %+v, want the surviving job", j)
	}
}
