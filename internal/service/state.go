package service

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/harness"
)

// JobState is a job's lifecycle position. Exactly the states whose
// Terminal() is true are final; everything else can still change.
//
// The terminal states double as the repo-wide exit-code contract: a batch
// CLI leg (cmd/multihit) and a service job are the same run in different
// clothing, so both report their outcome through ExitCode — 0 for a
// complete cover, 1 for a failure, 3 for a first-class early stop
// (deadline, signal, cancellation) whose best-so-far cover was
// checkpointed for a later leg.
type JobState int

const (
	// StateQueued means the job is waiting for fair-share dispatch and
	// admission capacity.
	StateQueued JobState = iota
	// StateRunning means the execution backend is driving harness.Run.
	StateRunning
	// StateSucceeded means the greedy loop ran to its natural end. The
	// result may still carry quarantined ranges (Result.Partial) — a
	// degraded-but-complete cover is a success with a stated bound.
	StateSucceeded
	// StatePartial means the run stopped early (deadline or daemon
	// shutdown) with a checkpointed best-so-far cover; a restarted daemon
	// resumes the job automatically.
	StatePartial
	// StateFailed means the run returned an error (bad spec, persistence
	// failure, injected crash).
	StateFailed
	// StateCanceled means the submitter canceled the job.
	StateCanceled
)

// String names the state as the HTTP API spells it.
func (s JobState) String() string {
	switch s {
	case StateQueued:
		return "queued"
	case StateRunning:
		return "running"
	case StateSucceeded:
		return "succeeded"
	case StatePartial:
		return "partial"
	case StateFailed:
		return "failed"
	case StateCanceled:
		return "canceled"
	}
	return fmt.Sprintf("JobState(%d)", int(s))
}

// ParseState resolves the wire spelling of a state.
func ParseState(s string) (JobState, error) {
	for st := StateQueued; st <= StateCanceled; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return StateFailed, fmt.Errorf("service: unknown state %q", s)
}

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StateSucceeded, StatePartial, StateFailed, StateCanceled:
		return true
	}
	return false
}

// Exit codes of the shared contract. cmd/multihit documents and tests
// against these; the service reports them per job so scripted clients can
// treat a daemon job exactly like a CLI leg.
const (
	// ExitOK is a complete cover.
	ExitOK = 0
	// ExitFailure is an error (also what a usage/IO failure exits with).
	ExitFailure = 1
	// ExitEarlyStop is a deadline/signal/cancel stop with a best-so-far
	// checkpoint — distinct from failure so batch scripts schedule the
	// next leg instead of alerting.
	ExitEarlyStop = 3
)

// ExitCode maps a terminal state to the process exit code of the shared
// 0/1/3 contract. Non-terminal states have no exit code and report
// ExitFailure defensively.
func (s JobState) ExitCode() int {
	switch s {
	case StateSucceeded:
		return ExitOK
	case StatePartial, StateCanceled:
		return ExitEarlyStop
	}
	return ExitFailure
}

// StateForStop maps a harness stop reason to the terminal state of the
// run's outcome — the single place the harness vocabulary is translated
// into the exit-code contract.
func StateForStop(stop harness.Stop) JobState {
	if stop == harness.StopCompleted {
		return StateSucceeded
	}
	return StatePartial
}

// Typed terminal errors. Handlers map these onto HTTP statuses; CLI
// callers onto the exit contract.
var (
	// ErrNotFound means the job id names nothing.
	ErrNotFound = errors.New("service: no such job")
	// ErrQueueFull means admission refused the submission outright: the
	// tenant's queue is at its depth limit.
	ErrQueueFull = errors.New("service: queue full")
	// ErrTerminal means the requested transition (e.g. cancel) targets a
	// job that already reached a terminal state.
	ErrTerminal = errors.New("service: job already terminal")
	// ErrOversized means the job cannot fit the simulated cluster even
	// when it is otherwise idle, so queueing it would wedge the queue.
	ErrOversized = errors.New("service: job exceeds cluster capacity")
	// ErrClosed means the service is shutting down and not accepting
	// work.
	ErrClosed = errors.New("service: shutting down")
	// ErrShed means overload protection rejected a sheddable (batch)
	// submission to preserve headroom for interactive work. The client
	// should retry after the queue drains (the Retry-After hint).
	ErrShed = errors.New("service: overloaded, batch work shed")
	// ErrRateLimited means the tenant exhausted its token bucket.
	ErrRateLimited = errors.New("service: tenant rate limit exceeded")
	// ErrDegraded means the service is in a degraded state (disk budget
	// exhausted or out of space): it keeps draining admitted jobs but
	// accepts no new ones until the condition clears.
	ErrDegraded = errors.New("service: degraded, not admitting")
)

// RetryAfterError decorates a rejection with a drain-rate-derived hint
// for when the client should retry. The HTTP layer surfaces it as a
// Retry-After header; errors.Is/As see through it to the cause.
type RetryAfterError struct {
	// Err is the underlying rejection (ErrShed, ErrRateLimited, ...).
	Err error
	// After is the suggested wait before retrying.
	After time.Duration
}

func (e *RetryAfterError) Error() string {
	return fmt.Sprintf("%v (retry after %s)", e.Err, e.After.Round(time.Second))
}

func (e *RetryAfterError) Unwrap() error { return e.Err }
