package service

// On-disk job layout (docs/SERVICE.md §6). Under the daemon's data
// directory:
//
//	jobs/<id>/spec.json     the submission, with resolved worker count
//	jobs/<id>/result.json   the terminal outcome (absent while in flight)
//	jobs/<id>/ckpt/         the job's generational checkpoint store
//
// Both JSON files publish through ckptstore.WriteFileAtomic, so a crash
// at any instant leaves a job either absent, in-flight (spec without
// result — restart resumes it from its checkpoint store), or terminal.
// Reads are bounded: a corrupt or hostile file cannot drive an unbounded
// allocation.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ckptstore"
)

const (
	jobsDirName    = "jobs"
	specFileName   = "spec.json"
	resultFileName = "result.json"
	ckptDirName    = "ckpt"
	jobIDPattern   = "job-%09d"
	// maxJobFileBytes bounds spec/result reads; both are a few KB in
	// practice.
	maxJobFileBytes = 16 << 20
)

// persistedJob is the spec file's wire form: the submission plus the
// fields Submit resolved (so a restarted daemon re-runs identically).
type persistedJob struct {
	ID   string  `json:"id"`
	Spec JobSpec `json:"spec"`
	// Canceled records a user cancellation observed before the terminal
	// write, so a restart does not resurrect the job.
	Canceled bool `json:"canceled,omitempty"`
	// IdempotencyKey carries the submission's key across restarts so a
	// retried POST still lands on this job instead of re-executing.
	IdempotencyKey string `json:"idempotency_key,omitempty"`
}

// persistedResult is the result file's wire form: the terminal state, the
// result payload, and the cache key — persisted so a restarted daemon
// re-seeds its result cache without regenerating every finished cohort.
type persistedResult struct {
	State  string     `json:"state"`
	Key    CacheKey   `json:"cache_key"`
	Result *JobResult `json:"result"`
}

// terminalState decodes the persisted state, degrading unknown or
// non-terminal spellings (a newer daemon's vocabulary, manual edits) to
// failed rather than resurrecting the job.
func (p persistedResult) terminalState() JobState {
	st, err := ParseState(p.State)
	if err != nil || !st.Terminal() {
		return StateFailed
	}
	return st
}

// jobDir returns the directory of one job id.
func (s *Service) jobDir(id string) string {
	return filepath.Join(s.cfg.DataDir, jobsDirName, id)
}

// writeJSONAtomic marshals v and publishes it crash-safely.
func writeJSONAtomic(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return ckptstore.WriteFileAtomic(path, data, 0o644)
}

// readJSONBounded reads a job file with a hard size cap.
func readJSONBounded(path string, v any) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, maxJobFileBytes+1))
	if err != nil {
		return err
	}
	if len(data) > maxJobFileBytes {
		return fmt.Errorf("service: %s exceeds %d bytes", filepath.Base(path), maxJobFileBytes)
	}
	return json.Unmarshal(data, v)
}

// scanJobDirs lists existing job ids in submission order and returns the
// next free numeric suffix.
func scanJobDirs(dataDir string) (ids []string, next uint64, err error) {
	dir := filepath.Join(dataDir, jobsDirName)
	entries, err := os.ReadDir(dir)
	if os.IsNotExist(err) {
		return nil, 1, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("service: scanning %s: %w", dir, err)
	}
	next = 1
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() || !strings.HasPrefix(name, "job-") {
			continue
		}
		n, perr := strconv.ParseUint(strings.TrimPrefix(name, "job-"), 10, 64)
		if perr != nil {
			continue
		}
		ids = append(ids, name)
		if n >= next {
			next = n + 1
		}
	}
	sort.Strings(ids)
	return ids, next, nil
}
