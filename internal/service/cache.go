package service

// Result cache (docs/SERVICE.md §5).
//
// Discovery is deterministic: the cover a run returns is a pure function
// of the input matrices and the semantic options. The cache key is
// therefore the pair of matrix fingerprints (bitmat.Fingerprint over
// tumor and normal) plus the canonicalized options — exactly the fields
// that can change the result payload. Execution-only knobs (worker
// count, block size, schedulers' partition cuts) are canonicalized away:
// the engine returns the identical cover for any of them. Kernelize
// stays IN the key even though a kernelized run finds the same winners,
// because the payload differs observably — the KernelFingerprint
// provenance and the Evaluated/Pruned split — and because a cached plain
// result must never masquerade as a kernelized one (the
// Kernelize-vs-plain distinction the cache tests pin).
//
// Identical resubmissions are answered from the cache without scanning;
// the entry records the producing job id as provenance (CachedFrom).

import (
	"container/list"

	"repro/internal/bitmat"
	"repro/internal/cover"
)

// CacheKey identifies one result-equivalent class of submissions.
type CacheKey struct {
	TumorFP, NormalFP uint64
	Hits              int
	Alpha             float64
	Scheme            cover.Scheme
	Kernelize         bool
	MaxIterations     int
}

// CanonicalKey builds the cache key for a submission. opt must be
// normalized; fields that cannot change the result are dropped —
// including Engine: the sparse and dense scan paths return bit-identical
// covers (the sparse differential suite pins this), so a dense-engine
// submission is answered by a sparse-engine result and vice versa.
func CanonicalKey(tumor, normal *bitmat.Matrix, opt cover.Options) CacheKey {
	return CacheKey{
		TumorFP:       tumor.Fingerprint(),
		NormalFP:      normal.Fingerprint(),
		Hits:          opt.Hits,
		Alpha:         opt.Alpha,
		Scheme:        opt.Scheme,
		Kernelize:     opt.Kernelize,
		MaxIterations: opt.MaxIterations,
	}
}

// CacheStats counts cache traffic.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Capacity  int    `json:"capacity"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// resultCache is an LRU of terminal job results. Not self-locking: the
// Service's mutex guards it.
type resultCache struct {
	capacity int
	ll       *list.List // front = most recently used
	entries  map[CacheKey]*list.Element
	stats    CacheStats
}

type cacheEntry struct {
	key    CacheKey
	jobID  string // producing job, for CachedFrom provenance
	result *JobResult
}

// newResultCache builds a cache holding up to capacity entries; capacity
// < 1 disables caching (every Get misses, Put drops).
func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		entries:  map[CacheKey]*list.Element{},
	}
}

// Get returns the cached result and its producing job id.
func (c *resultCache) Get(key CacheKey) (*JobResult, string, bool) {
	el, ok := c.entries[key]
	if !ok {
		c.stats.Misses++
		return nil, "", false
	}
	c.stats.Hits++
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return e.result, e.jobID, true
}

// Put stores a terminal result, evicting the least recently used entry
// when full. Partial results are not cached: a resumable or failed run
// is not the answer to the submission, only a prefix of it.
func (c *resultCache) Put(key CacheKey, jobID string, res *JobResult) {
	if c.capacity < 1 || res == nil || res.Partial || res.Error != "" {
		return
	}
	if el, ok := c.entries[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).result = res
		el.Value.(*cacheEntry).jobID = jobID
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: key, jobID: jobID, result: res})
	c.entries[key] = el
	if c.ll.Len() > c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.stats.Evictions++
	}
}

// Stats snapshots the counters.
func (c *resultCache) Stats() CacheStats {
	s := c.stats
	s.Entries = c.ll.Len()
	s.Capacity = c.capacity
	return s
}
