package service

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/gpusim"
)

// estimateFor prices one synthetic cohort.
func estimateFor(t *testing.T, genes, hits int, scheme cover.Scheme) Cost {
	t.Helper()
	spec := CohortSpec{Code: "BRCA", Genes: genes, Hits: hits, Seed: 1}
	cohort, err := spec.Generate()
	if err != nil {
		t.Fatalf("generating cohort: %v", err)
	}
	opt, err := cover.Options{Hits: hits, Scheme: scheme}.Normalized()
	if err != nil {
		t.Fatalf("normalizing options: %v", err)
	}
	cost, err := EstimateCost(cohort, opt, gpusim.V100())
	if err != nil {
		t.Fatalf("EstimateCost: %v", err)
	}
	return cost
}

// TestEstimateCostScalesWithDomain: small pair jobs fit one device; a
// 4-hit job over a big universe demands many, priced by the same
// saturation model the scaling studies use.
func TestEstimateCostScalesWithDomain(t *testing.T) {
	small := estimateFor(t, 40, 2, cover.SchemePair)
	if small.Threads != 40*39/2 {
		t.Fatalf("pair λ-domain = %d, want C(40,2)=780", small.Threads)
	}
	if small.GPUs != 1 {
		t.Fatalf("780-thread job demands %d GPUs, want 1", small.GPUs)
	}
	if small.DeviceSeconds <= 0 {
		t.Fatalf("device seconds = %v, want positive", small.DeviceSeconds)
	}

	big := estimateFor(t, 2000, 4, cover.Scheme3x1)
	sat := uint64(gpusim.V100().SaturationThreads)
	wantGPUs := int((big.Threads + sat - 1) / sat)
	if big.GPUs != wantGPUs {
		t.Fatalf("big job demands %d GPUs, want ceil(%d/%d)=%d", big.GPUs, big.Threads, sat, wantGPUs)
	}
	if big.GPUs <= small.GPUs {
		t.Fatalf("4-hit/2000-gene job (%d GPUs) not pricier than pair job (%d)", big.GPUs, small.GPUs)
	}
}

// TestDevicesFor pins the ceiling semantics of the gpusim helper.
func TestDevicesFor(t *testing.T) {
	d := gpusim.V100()
	sat := uint64(d.SaturationThreads)
	cases := []struct {
		threads uint64
		want    int
	}{
		{0, 1},
		{1, 1},
		{sat, 1},
		{sat + 1, 2},
		{3 * sat, 3},
	}
	for _, tc := range cases {
		if got := d.DevicesFor(tc.threads); got != tc.want {
			t.Fatalf("DevicesFor(%d) = %d, want %d", tc.threads, got, tc.want)
		}
	}
}

// TestAdmissionBookkeeping: reserve/release arithmetic and the fits
// boundary.
func TestAdmissionBookkeeping(t *testing.T) {
	a := admission{capacity: 6}
	j1 := Cost{GPUs: 4}
	j2 := Cost{GPUs: 3}
	j3 := Cost{GPUs: 2}
	if !a.fits(j1) {
		t.Fatal("4 GPUs should fit an idle 6-GPU cluster")
	}
	a.reserve(j1)
	if a.fits(j2) {
		t.Fatal("3 more GPUs oversubscribe 6 with 4 in use")
	}
	if !a.fits(j3) {
		t.Fatal("2 more GPUs fit exactly")
	}
	a.reserve(j3)
	if a.inUse != 6 || a.running != 2 {
		t.Fatalf("inUse=%d running=%d, want 6/2", a.inUse, a.running)
	}
	a.release(j1)
	if !a.fits(j2) {
		t.Fatal("after release, 3 GPUs fit again")
	}
	a.release(j3)
	if a.inUse != 0 || a.running != 0 {
		t.Fatalf("inUse=%d running=%d after full release, want 0/0", a.inUse, a.running)
	}
}
