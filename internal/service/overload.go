package service

// Overload protection (docs/RESILIENCE.md §2). Three independent
// mechanisms guard admission:
//
//   - A shed policy: the queue-depth watermark at which sheddable work
//     (the batch priority class) is rejected with a Retry-After hint,
//     well before the hard MaxQueued limit that rejects everything.
//     Accepted jobs are never shed — shedding happens at admission
//     only, so "no accepted job lost" survives any overload.
//   - Per-tenant token buckets: one tenant flooding submissions runs
//     out of tokens long before it can crowd out the queue.
//   - A circuit breaker around the execution backend: consecutive
//     backend failures trip it open; after a cooldown it half-opens and
//     dispatches exactly one probe job, closing on success and
//     re-opening on failure. While open or probing, queued jobs wait —
//     they are not failed.
//
// All three are deterministic given a clock; tests inject one.

import (
	"sync"
	"time"
)

// tenantBucket is one tenant's token-bucket state.
type tenantBucket struct {
	tokens float64
	last   time.Time
}

// rateLimiter is a per-tenant token bucket. Zero rate disables it.
type rateLimiter struct {
	rate  float64 // tokens per second
	burst float64
	now   func() time.Time

	mu      sync.Mutex
	buckets map[string]*tenantBucket
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	if burst < 1 {
		burst = 1
	}
	return &rateLimiter{rate: rate, burst: float64(burst), now: now, buckets: map[string]*tenantBucket{}}
}

// allow consumes one token for the tenant. When denied it returns the
// wait until the next token accrues.
func (l *rateLimiter) allow(tenant string) (bool, time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[tenant]
	if b == nil {
		b = &tenantBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.rate
	if b.tokens > l.burst {
		b.tokens = l.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	return false, wait
}

// Bounds for the Retry-After hint: never tell a client to hammer
// sub-second, never to go away for more than five minutes.
const (
	minRetryAfter = time.Second
	maxRetryAfter = 5 * time.Minute
	// drainWindow is how many recent completions the estimator keeps.
	drainWindow = 32
	// defaultPerJob seeds the estimate before any job has completed.
	defaultPerJob = 5 * time.Second
)

// drainEstimator tracks recent job completion times to estimate how
// long a queue of a given depth takes to drain — the basis of the
// Retry-After hint on shed responses.
type drainEstimator struct {
	now func() time.Time

	mu     sync.Mutex
	stamps []time.Time // completion times, oldest first, ≤ drainWindow
}

func newDrainEstimator(now func() time.Time) *drainEstimator {
	return &drainEstimator{now: now}
}

// completed records one finished job.
func (d *drainEstimator) completed() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stamps = append(d.stamps, d.now())
	if len(d.stamps) > drainWindow {
		d.stamps = d.stamps[len(d.stamps)-drainWindow:]
	}
}

// perJob estimates the mean seconds between completions.
func (d *drainEstimator) perJob() time.Duration {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.stamps) < 2 {
		return defaultPerJob
	}
	span := d.stamps[len(d.stamps)-1].Sub(d.stamps[0])
	per := span / time.Duration(len(d.stamps)-1)
	if per <= 0 {
		per = time.Millisecond
	}
	return per
}

// retryAfter is the clamped drain-time estimate for a queue of depth n.
func (d *drainEstimator) retryAfter(depth int) time.Duration {
	if depth < 1 {
		depth = 1
	}
	est := time.Duration(depth) * d.perJob()
	if est < minRetryAfter {
		return minRetryAfter
	}
	if est > maxRetryAfter {
		return maxRetryAfter
	}
	return est
}

// breakerState is the circuit breaker's position.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerClosed:
		return "closed"
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is the circuit breaker around the execution backend. A
// threshold ≤ 0 disables it (always closed).
type breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time
	// onOpen fires when the breaker trips, so the owner can schedule a
	// dispatch wake-up for when the cooldown elapses.
	onOpen func(cooldown time.Duration)

	mu          sync.Mutex
	state       breakerState
	consecutive int // consecutive backend failures
	trips       uint64
	openedAt    time.Time
	probing     bool // a half-open probe job is in flight
}

// allowed reports whether dispatch may start a job now, and whether
// that start would be the half-open probe. It transitions open →
// half-open when the cooldown has elapsed, but the probe slot is only
// taken by beginProbe — callers that find no runnable job must not
// consume it.
func (b *breaker) allowed() (ok, probe bool) {
	if b.threshold <= 0 {
		return true, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true, false
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true, true
		}
		return false, false
	default: // half-open
		if b.probing {
			return false, false
		}
		return true, true
	}
}

// beginProbe marks the half-open probe as in flight. Called only after
// a job has actually been picked, so an empty queue cannot strand the
// probe slot.
func (b *breaker) beginProbe() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.probing = true
	b.mu.Unlock()
}

// onSuccess records a backend success; any success closes the breaker.
func (b *breaker) onSuccess() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
	b.mu.Unlock()
}

// onFailure records a backend failure: a failed probe re-opens
// immediately; consecutive failures at the threshold trip a closed
// breaker.
func (b *breaker) onFailure() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.consecutive++
	wasProbe := b.probing
	b.probing = false
	trip := wasProbe || (b.state == breakerClosed && b.consecutive >= b.threshold)
	var cd time.Duration
	if trip {
		b.state = breakerOpen
		b.openedAt = b.now()
		b.trips++
		cd = b.cooldown
	}
	onOpen := b.onOpen
	b.mu.Unlock()
	if trip && onOpen != nil {
		onOpen(cd)
	}
}

// BreakerStatus is the operator view of the circuit breaker.
type BreakerStatus struct {
	// State is "closed", "open", "half-open", or "disabled".
	State string `json:"state"`
	// ConsecutiveFailures counts backend failures since the last success.
	ConsecutiveFailures int `json:"consecutive_failures,omitempty"`
	// Trips counts how many times the breaker has opened.
	Trips uint64 `json:"trips,omitempty"`
	// RetryInSec is how long until an open breaker half-opens.
	RetryInSec float64 `json:"retry_in_sec,omitempty"`
}

// status snapshots the breaker.
func (b *breaker) status() BreakerStatus {
	if b.threshold <= 0 {
		return BreakerStatus{State: "disabled"}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	st := BreakerStatus{
		State:               b.state.String(),
		ConsecutiveFailures: b.consecutive,
		Trips:               b.trips,
	}
	if b.state == breakerOpen {
		if left := b.cooldown - b.now().Sub(b.openedAt); left > 0 {
			st.RetryInSec = left.Seconds()
		}
	}
	return st
}
