package service

// Fair-share job queue (docs/SERVICE.md §3).
//
// Jobs are grouped by priority class, and within a class by tenant.
// Dispatch picks the highest non-empty class; within it, the tenant with
// the lowest virtual start time — a per-tenant counter bumped by one each
// time one of the tenant's jobs starts. A tenant that floods the queue
// therefore advances its own clock past everyone else's and yields the
// next starts to lighter tenants: with tenants A (many jobs) and B (few),
// starts interleave A, B, A, B, ... instead of draining A first.
//
// A tenant returning from idle has its clock caught up to the minimum
// clock of the currently queued tenants, so idle time cannot be banked
// into a burst of back-to-back starts.

import "sort"

// fairQueue is the in-memory queue. Not self-locking: the Service guards
// it with its own mutex (queue mutations and dispatch share one critical
// section).
type fairQueue struct {
	// queued[class][tenant] is the tenant's FIFO within the class.
	queued map[Priority]map[string][]*job
	// clock[tenant] is the tenant's virtual start time.
	clock map[string]uint64
	// depth counts queued jobs across all classes.
	depth int
}

func newFairQueue() *fairQueue {
	return &fairQueue{
		queued: map[Priority]map[string][]*job{},
		clock:  map[string]uint64{},
	}
}

// Len is the number of queued jobs.
func (q *fairQueue) Len() int { return q.depth }

// Push appends the job to its tenant's FIFO. A tenant entering from idle
// is caught up to the lowest queued clock so it cannot bank credit.
func (q *fairQueue) Push(j *job) {
	class := q.queued[j.priority]
	if class == nil {
		class = map[string][]*job{}
		q.queued[j.priority] = class
	}
	if len(class[j.tenant]) == 0 && !q.tenantQueued(j.tenant) {
		if min, ok := q.minQueuedClock(); ok && q.clock[j.tenant] < min {
			q.clock[j.tenant] = min
		}
	}
	class[j.tenant] = append(class[j.tenant], j)
	q.depth++
}

// tenantQueued reports whether the tenant has a queued job in any class.
func (q *fairQueue) tenantQueued(tenant string) bool {
	for _, class := range q.queued {
		if len(class[tenant]) > 0 {
			return true
		}
	}
	return false
}

// minQueuedClock returns the lowest clock among tenants with queued jobs.
func (q *fairQueue) minQueuedClock() (uint64, bool) {
	min, ok := uint64(0), false
	for _, class := range q.queued {
		for tenant, jobs := range class {
			if len(jobs) == 0 {
				continue
			}
			if c := q.clock[tenant]; !ok || c < min {
				min, ok = c, true
			}
		}
	}
	return min, ok
}

// Next returns the job fair-share dispatch would start next for which
// fits(job) is true, removing it from the queue and advancing its
// tenant's clock. It scans classes high to low; within a class, tenants
// in clock order (ties broken by tenant name for determinism); within a
// tenant, FIFO order — but only the tenant's HEAD job is eligible, so a
// tenant's jobs never reorder against each other. A head job that does
// not fit (admission would oversubscribe the simulated cluster) is
// skipped in favor of the next tenant or class, keeping the cluster busy
// without reordering any single tenant's work.
func (q *fairQueue) Next(fits func(*job) bool) *job {
	for class := PriorityUrgent; class >= PriorityBatch; class-- {
		tenants := q.queued[class]
		if len(tenants) == 0 {
			continue
		}
		names := make([]string, 0, len(tenants))
		for tenant, jobs := range tenants {
			if len(jobs) > 0 {
				names = append(names, tenant)
			}
		}
		sort.Slice(names, func(a, b int) bool {
			ca, cb := q.clock[names[a]], q.clock[names[b]]
			if ca != cb {
				return ca < cb
			}
			return names[a] < names[b]
		})
		for _, tenant := range names {
			head := tenants[tenant][0]
			if !fits(head) {
				continue
			}
			tenants[tenant] = tenants[tenant][1:]
			if len(tenants[tenant]) == 0 {
				delete(tenants, tenant)
			}
			q.depth--
			q.clock[tenant]++
			return head
		}
	}
	return nil
}

// Remove deletes a queued job (cancellation), reporting whether it was
// found.
func (q *fairQueue) Remove(id string) bool {
	for _, class := range q.queued {
		for tenant, jobs := range class {
			for i, j := range jobs {
				if j.id == id {
					class[tenant] = append(jobs[:i], jobs[i+1:]...)
					if len(class[tenant]) == 0 {
						delete(class, tenant)
					}
					q.depth--
					return true
				}
			}
		}
	}
	return false
}
