package service

// Admission control (docs/SERVICE.md §4).
//
// Concurrency is not sized by guesswork: each job is priced against the
// same analytic device model the scaling studies use (internal/gpusim,
// internal/cluster). A job's demand is the number of simulated devices
// needed to hold its λ-threads at saturation occupancy, and the daemon
// owns a fixed simulated cluster; a job is dispatched only when its
// demand fits the devices not already reserved by running jobs, so
// concurrent jobs can never oversubscribe the modeled machine. The same
// pricing yields an estimated single-device runtime, reported per job so
// clients can see what they queued.

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/combinat"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/gpusim"
	"repro/internal/sched"
)

// defaultCostIterations is the greedy-step estimate used to price
// unbounded jobs; the paper-scale runs settle in 8-12 iterations.
const defaultCostIterations = 8

// Cost is one job's admission price.
type Cost struct {
	// GPUs is the simulated-device demand reserved while the job runs.
	GPUs int `json:"gpus"`
	// Threads is the λ-domain size of one enumeration pass.
	Threads uint64 `json:"threads"`
	// DeviceSeconds is the modeled single-device busy time for the whole
	// job — an estimate for operators, not a scheduling input.
	DeviceSeconds float64 `json:"device_seconds"`
}

// EstimateCost prices a job on the admission device model. opt must be
// normalized (resolved scheme); the cohort supplies the matrix
// dimensions.
func EstimateCost(c *dataset.Cohort, opt cover.Options, device gpusim.DeviceSpec) (Cost, error) {
	curve, err := admissionCurve(uint64(c.Spec.Genes), opt.Scheme)
	if err != nil {
		return Cost{}, err
	}
	if sched.Overflowed(curve) {
		return Cost{}, fmt.Errorf("service: λ-domain of C(%d, %d) overflows the cost model", c.Spec.Genes, opt.Hits)
	}
	cost := Cost{
		Threads: curve.Threads(),
		GPUs:    device.DevicesFor(curve.Threads()),
	}
	iters := opt.MaxIterations
	if iters <= 0 {
		iters = defaultCostIterations
	}
	w := cluster.Workload{
		Genes:         c.Spec.Genes,
		TumorSamples:  c.Nt(),
		NormalSamples: c.Nn(),
		Scheme:        opt.Scheme,
		Scheduler:     opt.Scheduler,
		Iterations:    iters,
	}
	sec, err := cluster.SingleGPUSeconds(cluster.Spec{Nodes: 1, GPUsPerNode: 1, Device: device}, w)
	if err != nil {
		return Cost{}, err
	}
	cost.DeviceSeconds = sec
	return cost, nil
}

// admissionCurve mirrors the engine's λ-domain curve per scheme (the
// service prices exactly the domain the engine enumerates).
func admissionCurve(genes uint64, s cover.Scheme) (sched.Curve, error) {
	switch s {
	case cover.SchemePair:
		return sched.NewFlat(combinat.PairCount(genes)), nil
	case cover.Scheme2x1:
		return sched.NewTri2x1(genes), nil
	case cover.Scheme2x2:
		return sched.NewTri2x2(genes), nil
	case cover.Scheme3x1:
		return sched.NewTetra3x1(genes), nil
	case cover.Scheme1x3:
		return sched.NewLin1x3(genes), nil
	case cover.Scheme4x1:
		return sched.NewFlat(combinat.QuadCount(genes)), nil
	}
	return nil, fmt.Errorf("service: unresolved scheme %v", s)
}

// admission tracks the simulated cluster's reserved devices. Not
// self-locking: the Service's mutex guards it together with the queue so
// dispatch decisions are atomic.
type admission struct {
	capacity int // total simulated devices
	inUse    int // devices reserved by running jobs
	running  int // running job count
}

// fits reports whether the job's demand fits the idle devices.
func (a *admission) fits(c Cost) bool { return a.inUse+c.GPUs <= a.capacity }

// reserve takes the job's devices.
func (a *admission) reserve(c Cost) {
	a.inUse += c.GPUs
	a.running++
}

// release returns them.
func (a *admission) release(c Cost) {
	a.inUse -= c.GPUs
	a.running--
}
