package service

// HTTP/JSON API (docs/SERVICE.md §2). Thin by design: every handler
// validates, calls one Service method, and encodes; all policy lives in
// the Service. Progress streams as Server-Sent Events so a plain HTTP
// client (curl, the smoke test) can follow a job without long-polling.
//
// Resilience surface (docs/RESILIENCE.md): /healthz is pure liveness,
// /readyz is readiness with detail (degraded disk, open breaker, full
// queue → 503 + JSON body). Overload rejections carry a Retry-After
// header derived from the queue drain rate. Submissions may carry an
// Idempotency-Key header; a retried POST with the same key returns the
// already-accepted job (200) instead of executing twice. Event streams
// honor Last-Event-ID: reconnecting clients resume after the last
// sequence number they saw.

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
)

// maxRequestBytes bounds a submission body.
const maxRequestBytes = 1 << 20

// Handler returns the daemon's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON encodes one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps service errors onto HTTP statuses. Rejections wrapped
// in RetryAfterError additionally carry a Retry-After header.
func writeError(w http.ResponseWriter, err error) {
	var ra *RetryAfterError
	if errors.As(err, &ra) {
		w.Header().Set("Retry-After", strconv.Itoa(int(math.Ceil(ra.After.Seconds()))))
	}
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrRateLimited):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrOversized):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ErrTerminal):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed), errors.Is(err, ErrShed), errors.Is(err, ErrDegraded):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

// handleHealth is pure liveness: the process is up and serving.
func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady is readiness: 200 while the daemon admits work, 503 with
// the reasons (degraded disk, open breaker, full queue, shutdown) while
// it does not. The JSON body is the same either way so operators see
// queue depth and breaker state on every poll.
func (s *Service) handleReady(w http.ResponseWriter, r *http.Request) {
	rd := s.Readiness()
	status := http.StatusOK
	if !rd.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, rd)
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("service: decoding submission: %w", err))
		return
	}
	st, dup, err := s.SubmitIdempotent(spec, r.Header.Get("Idempotency-Key"))
	if err != nil {
		writeError(w, err)
		return
	}
	if dup {
		// The key already named an accepted job: report it, don't re-create.
		writeJSON(w, http.StatusOK, st)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("tenant")))
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	st, err := s.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResume(w http.ResponseWriter, r *http.Request) {
	st, err := s.Resume(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleEvents streams a job's lifecycle as Server-Sent Events: an
// initial state snapshot, then every event the job publishes (progress,
// checkpoint, retry, quarantine, resume, state) until the job reaches a
// terminal state or the client disconnects. Event data is the JSON
// Event; each live frame carries an id: line with the per-job sequence
// number, and a reconnecting client sends it back as Last-Event-ID to
// resume after the frames it already has. A client that fell behind the
// retained history receives one "dropped" frame accounting for the gap.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	afterSeq := int64(-1)
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		n, err := strconv.ParseUint(lei, 10, 63)
		if err != nil {
			writeError(w, fmt.Errorf("service: bad Last-Event-ID %q: %w", lei, err))
			return
		}
		afterSeq = int64(n)
	}
	sub, err := s.Subscribe(id, afterSeq)
	if err != nil {
		writeError(w, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("service: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Snapshot first so a late subscriber knows where the job stands
	// before the live stream picks up. Unnumbered (Seq 0): it is not part
	// of the resumable sequence.
	if st, err := s.Get(id); err == nil {
		writeSSE(w, Event{Type: "state", JobID: id, State: st.State, Progress: st.Progress})
		flusher.Flush()
	}
	for {
		e, ok := sub.Next(r.Context())
		if !ok {
			return
		}
		writeSSE(w, e)
		flusher.Flush()
	}
}

// writeSSE frames one event; numbered frames carry an id: line for
// Last-Event-ID resumption.
func writeSSE(w http.ResponseWriter, e Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	if e.Seq > 0 {
		fmt.Fprintf(w, "id: %d\n", e.Seq)
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
}
