package service

// HTTP/JSON API (docs/SERVICE.md §2). Thin by design: every handler
// validates, calls one Service method, and encodes; all policy lives in
// the Service. Progress streams as Server-Sent Events so a plain HTTP
// client (curl, the smoke test) can follow a job without long-polling.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// maxRequestBytes bounds a submission body.
const maxRequestBytes = 1 << 20

// Handler returns the daemon's HTTP API.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/jobs/{id}/resume", s.handleResume)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	return mux
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// writeJSON encodes one response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeError maps service errors onto HTTP statuses.
func writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrNotFound):
		status = http.StatusNotFound
	case errors.Is(err, ErrQueueFull):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrOversized):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ErrTerminal):
		status = http.StatusConflict
	case errors.Is(err, ErrClosed):
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, apiError{Error: err.Error()})
}

func (s *Service) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Service) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, fmt.Errorf("service: decoding submission: %w", err))
		return
	}
	st, err := s.Submit(spec)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, st)
}

func (s *Service) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.List(r.URL.Query().Get("tenant")))
}

func (s *Service) handleGet(w http.ResponseWriter, r *http.Request) {
	st, err := s.Get(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if err := s.Cancel(id); err != nil {
		writeError(w, err)
		return
	}
	st, err := s.Get(id)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Service) handleResume(w http.ResponseWriter, r *http.Request) {
	st, err := s.Resume(r.PathValue("id"))
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

// handleEvents streams a job's lifecycle as Server-Sent Events: an
// initial state snapshot, then every event the job publishes (progress,
// checkpoint, retry, quarantine, resume, state) until the job reaches a
// terminal state or the client disconnects. Event data is the JSON Event.
func (s *Service) handleEvents(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	ch, cancel, err := s.Subscribe(id)
	if err != nil {
		writeError(w, err)
		return
	}
	defer cancel()
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, fmt.Errorf("service: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Snapshot first so a late subscriber knows where the job stands
	// before the live stream picks up.
	if st, err := s.Get(id); err == nil {
		writeSSE(w, Event{Type: "state", JobID: id, State: st.State, Progress: st.Progress})
		flusher.Flush()
	}
	for {
		select {
		case e, ok := <-ch:
			if !ok {
				return
			}
			writeSSE(w, e)
			flusher.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE frames one event.
func writeSSE(w http.ResponseWriter, e Event) {
	data, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
}
