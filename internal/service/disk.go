package service

// Storage guardrails (docs/RESILIENCE.md §3). A disk-budget accountant
// walks the jobs directory on a poll cadence and, when usage exceeds
// the configured budget, reclaims space in strict safety order:
//
//  1. checkpoint directories of terminal jobs (their result file is the
//     durable artifact; the checkpoints are dead weight),
//  2. old checkpoint generations of live jobs (PruneKeep(1) — the
//     newest generation, which a resume needs, is never touched).
//
// Independently, every checkpoint write goes through guardedStore: an
// ENOSPC (real or injected via the ckptstore/write=diskfull failpoint)
// flips the service into a degraded state — stop admitting, keep
// draining — and the write RETRIES in place until space returns or the
// job's context dies, so an in-flight job survives a full disk instead
// of failing. The monitor probes the disk each tick and lifts the
// degraded state when a probe write lands and usage is back under
// budget.

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/internal/ckptstore"
)

// DefaultDiskPoll is the accountant cadence when Config.DiskPoll is 0.
const DefaultDiskPoll = 2 * time.Second

// DiskStats is the operator view of the storage guardrails.
type DiskStats struct {
	// UsageBytes is the jobs directory's last measured footprint.
	UsageBytes int64 `json:"usage_bytes"`
	// BudgetBytes is the configured cap (0 = unbudgeted).
	BudgetBytes int64 `json:"budget_bytes,omitempty"`
	// Degraded is why admission is stopped ("" = healthy).
	Degraded string `json:"degraded,omitempty"`
	// GCRuns counts background reclamation passes that freed something.
	GCRuns uint64 `json:"gc_runs,omitempty"`
	// GCFreedBytes totals the bytes reclaimed by background GC.
	GCFreedBytes int64 `json:"gc_freed_bytes,omitempty"`
}

// diskMonitor runs the accountant loop: poll usage, GC over budget,
// probe for recovery while degraded.
func (s *Service) diskMonitor() {
	ticker := time.NewTicker(s.cfg.DiskPoll)
	defer ticker.Stop()
	for {
		select {
		case <-s.ctx.Done():
			return
		case <-ticker.C:
		case <-s.gcKick:
		}
		s.diskTick()
	}
}

// kickGC nudges the monitor out of its poll interval (a guarded write
// just hit ENOSPC and wants space reclaimed now).
func (s *Service) kickGC() {
	select {
	case s.gcKick <- struct{}{}:
	default:
	}
}

// diskTick is one accountant pass.
func (s *Service) diskTick() {
	usage := s.measureUsage()
	if s.cfg.DiskBudgetBytes > 0 && usage > s.cfg.DiskBudgetBytes {
		s.enterDegraded(fmt.Sprintf("disk budget exceeded: %d of %d bytes", usage, s.cfg.DiskBudgetBytes))
		freed := s.runGC()
		if freed > 0 {
			usage = s.measureUsage()
		}
	}
	s.mu.Lock()
	s.disk.UsageBytes = usage
	degraded := s.disk.Degraded != ""
	s.mu.Unlock()
	if !degraded {
		return
	}
	// Recovery probe: degraded lifts only when a write lands AND usage is
	// back under budget (when one is set).
	if s.cfg.DiskBudgetBytes > 0 && usage > s.cfg.DiskBudgetBytes {
		return
	}
	if s.probeWrite() {
		s.clearDegraded()
	}
}

// measureUsage walks the jobs directory. Errors under the walk are
// skipped: a file deleted mid-walk must not abort accounting.
func (s *Service) measureUsage() int64 {
	var total int64
	root := filepath.Join(s.cfg.DataDir, jobsDirName)
	_ = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			if path == root {
				return err
			}
			return nil
		}
		if d.IsDir() {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// runGC reclaims space in safety order and returns the bytes freed.
func (s *Service) runGC() int64 {
	var freed int64
	// Phase 1: terminal jobs' checkpoint directories. The result file is
	// the durable artifact; nothing will resume from these stores.
	s.mu.Lock()
	var terminal, live []*job
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state.Terminal() {
			terminal = append(terminal, j)
		} else {
			live = append(live, j)
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	sortJobsByID(terminal) // oldest jobs reclaimed first
	sortJobsByID(live)
	for _, j := range terminal {
		dir := filepath.Join(j.dir, ckptDirName)
		n := dirSize(dir)
		if n == 0 {
			continue
		}
		if err := os.RemoveAll(dir); err == nil {
			freed += n
			s.cfg.Logf("service: gc reclaimed %d bytes of checkpoints from terminal %s", n, j.id)
		}
	}
	// Phase 2: shrink live jobs' retained history to the single newest
	// generation — exactly what a resume needs, nothing more.
	for _, j := range live {
		dir := filepath.Join(j.dir, ckptDirName)
		if dirSize(dir) == 0 {
			continue
		}
		store, err := ckptstore.Open(dir, ckptstore.Options{Retain: s.cfg.Retain})
		if err != nil {
			continue
		}
		n, err := store.PruneKeep(1)
		if err == nil && n > 0 {
			freed += n
			s.cfg.Logf("service: gc pruned %d bytes of old generations from live %s", n, j.id)
		}
	}
	if freed > 0 {
		s.mu.Lock()
		s.disk.GCRuns++
		s.disk.GCFreedBytes += freed
		s.mu.Unlock()
	}
	return freed
}

// dirSize totals the files under dir (0 when absent).
func dirSize(dir string) int64 {
	var total int64
	_ = filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return nil
		}
		if info, ierr := d.Info(); ierr == nil {
			total += info.Size()
		}
		return nil
	})
	return total
}

// probeWrite checks that the data directory accepts a durable write
// again. It goes through the same atomic path as real checkpoints so an
// injected ckptstore/write diskfull failpoint gates it too.
func (s *Service) probeWrite() bool {
	path := filepath.Join(s.cfg.DataDir, ".diskprobe")
	err := ckptstore.WriteFileAtomic(path, []byte("probe"), 0o644)
	_ = os.Remove(path)
	return err == nil
}

// enterDegraded flips the service into the degraded state (idempotent;
// the first reason sticks until recovery).
func (s *Service) enterDegraded(reason string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disk.Degraded != "" {
		return
	}
	s.disk.Degraded = reason
	s.cfg.Logf("service: DEGRADED: %s (admission stopped, draining continues)", reason)
}

// clearDegraded lifts the degraded state.
func (s *Service) clearDegraded() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disk.Degraded == "" {
		return
	}
	s.cfg.Logf("service: recovered from degraded state (%s)", s.disk.Degraded)
	s.disk.Degraded = ""
}

// degradedReason snapshots the degraded state ("" = healthy).
func (s *Service) degradedReason() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.disk.Degraded
}

// guardedStore wraps a job's checkpoint store with the ENOSPC guard: a
// disk-full Save flips the service degraded, kicks GC, and retries in
// place on the poll cadence until space returns or the job's context
// dies. Everything else passes through. It satisfies harness.Store.
type guardedStore struct {
	s     *Service
	store *ckptstore.Store
	ctx   context.Context
	jobID string
}

func (g *guardedStore) Load() (*ckptstore.Snapshot, error) { return g.store.Load() }

func (g *guardedStore) Save(payload []byte) (uint64, error) {
	for attempt := 0; ; attempt++ {
		gen, err := g.store.Save(payload)
		if err == nil {
			if attempt > 0 {
				g.s.cfg.Logf("service: %s checkpoint landed after %d disk-full retries", g.jobID, attempt)
			}
			return gen, nil
		}
		if !ckptstore.IsDiskFull(err) {
			return 0, err
		}
		g.s.enterDegraded(fmt.Sprintf("disk full persisting %s: %v", g.jobID, err))
		g.s.kickGC()
		select {
		case <-g.ctx.Done():
			// Shutdown or cancel while the disk is full: surface the
			// ENOSPC so runJob can park the job instead of failing it.
			return 0, err
		case <-time.After(g.s.cfg.DiskPoll):
		}
	}
}
