package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/failpoint"
	"repro/internal/harness"
)

// testSpec is the canonical small BRCA job the e2e tests submit.
func testSpec() JobSpec {
	return JobSpec{
		Tenant:   "alice",
		Cohort:   CohortSpec{Code: "BRCA", Genes: 40, Hits: 2, Seed: 11},
		Options:  OptionsSpec{Workers: 2},
		Priority: "normal",
	}
}

// directRun computes the ground-truth result with an uninterrupted
// harness run of the same spec.
func directRun(t *testing.T, spec JobSpec) *harness.Result {
	t.Helper()
	cohort, err := spec.Cohort.Generate()
	if err != nil {
		t.Fatalf("generating cohort: %v", err)
	}
	opt, err := spec.Options.CoverOptions(spec.Cohort.Hits)
	if err != nil {
		t.Fatalf("resolving options: %v", err)
	}
	res, err := harness.Run(context.Background(), cohort.Tumor, cohort.Normal, harness.Options{Cover: opt})
	if err != nil {
		t.Fatalf("direct harness run: %v", err)
	}
	return res
}

// assertMatchesDirect pins the issue's acceptance bar: combos, cover, and
// the Evaluated/Pruned work counters of a service job must be
// bit-identical to the uninterrupted direct run.
func assertMatchesDirect(t *testing.T, got *JobResult, want *harness.Result) {
	t.Helper()
	if got == nil {
		t.Fatal("job has no result")
	}
	if got.Error != "" {
		t.Fatalf("job failed: %s", got.Error)
	}
	if len(got.Combos) != len(want.Steps) {
		t.Fatalf("%d combos, want %d", len(got.Combos), len(want.Steps))
	}
	for i, c := range got.Combos {
		ids := want.Steps[i].Combo.GeneIDs()
		if len(c.GeneIDs) != len(ids) {
			t.Fatalf("combo %d has %d genes, want %d", i, len(c.GeneIDs), len(ids))
		}
		for k := range ids {
			if c.GeneIDs[k] != ids[k] {
				t.Fatalf("combo %d gene %d = %d, want %d", i, k, c.GeneIDs[k], ids[k])
			}
		}
		if c.F != want.Steps[i].Combo.F {
			t.Fatalf("combo %d F = %v, want %v (must be bit-identical)", i, c.F, want.Steps[i].Combo.F)
		}
		if c.NewlyCovered != want.Steps[i].NewlyCovered {
			t.Fatalf("combo %d NewlyCovered = %d, want %d", i, c.NewlyCovered, want.Steps[i].NewlyCovered)
		}
	}
	if got.Covered != want.Covered || got.Uncoverable != want.Uncoverable {
		t.Fatalf("cover %d/%d uncoverable, want %d/%d", got.Covered, got.Uncoverable, want.Covered, want.Uncoverable)
	}
	if got.Evaluated != want.Evaluated || got.Pruned != want.Pruned {
		t.Fatalf("work counters Evaluated=%d Pruned=%d, want %d/%d (crash-invariance broken)",
			got.Evaluated, got.Pruned, want.Evaluated, want.Pruned)
	}
	if got.Stop != harness.StopCompleted.String() {
		t.Fatalf("stop = %q, want completed", got.Stop)
	}
}

// TestServiceResumeMatchesDirectRun is the in-process half of the issue's
// acceptance test: submit, stream progress, kill the daemon mid-job,
// restart, and require the resumed job's result bit-identical to an
// uninterrupted harness run — then require an identical resubmission to
// be served from the result cache without scanning, including by a fresh
// daemon that only ever saw the result on disk.
func TestServiceResumeMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second e2e")
	}
	spec := testSpec()
	want := directRun(t, spec)
	if len(want.Steps) < 2 {
		t.Fatalf("test workload finds %d combos; need ≥2 so a mid-job kill lands between steps", len(want.Steps))
	}

	// Slow every partition scan down so the daemon is reliably killed
	// between the first checkpoint and completion.
	if err := failpoint.Enable("harness/partition", "delay(15ms)"); err != nil {
		t.Fatalf("arming delay failpoint: %v", err)
	}
	defer failpoint.DisableAll()

	cfg := Config{DataDir: t.TempDir(), JobWorkers: 2, Logf: t.Logf}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	st, err := svc.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	sub, err := svc.Subscribe(st.ID, 0)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	// Stream until the first persisted checkpoint, collecting progress
	// evidence on the way.
	sawProgress := false
	streamCtx, cancelStream := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancelStream()
stream:
	for {
		e, ok := sub.Next(streamCtx)
		if !ok {
			t.Fatal("event stream ended before the first checkpoint — job finished too fast to test the kill, or no checkpoint within 30s")
		}
		switch e.Type {
		case "progress":
			if e.Progress == nil || e.Progress.TotalPartitions == 0 {
				t.Fatalf("progress event without partition tally: %+v", e)
			}
			sawProgress = true
		case "checkpoint":
			break stream
		}
	}
	if !sawProgress {
		t.Fatal("no per-partition progress event before the first checkpoint")
	}

	// Kill the daemon mid-job; the run parks at its newest generation.
	if err := svc.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := svc.Submit(spec); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}

	// Restart: the job must be re-enqueued, resumed from its checkpoint
	// store, and completed bit-identically.
	svc2, err := Open(cfg)
	if err != nil {
		t.Fatalf("reopening: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := svc2.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatalf("WaitJob: %v", err)
	}
	if final.State != StateSucceeded.String() {
		t.Fatalf("resumed job ended %s (result %+v), want succeeded", final.State, final.Result)
	}
	if !final.Resumed {
		t.Fatal("restarted job did not resume from its checkpoint store")
	}
	assertMatchesDirect(t, final.Result, want)
	if final.ExitCode == nil || *final.ExitCode != ExitOK {
		t.Fatalf("exit code = %v, want %d", final.ExitCode, ExitOK)
	}

	// Identical resubmission: answered from the cache, no scan, terminal
	// at submission, provenance pointing at the producing job.
	before := svc2.Stats()
	st2, err := svc2.Submit(spec)
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st2.State != StateSucceeded.String() {
		t.Fatalf("resubmission state = %s, want immediate succeeded", st2.State)
	}
	if st2.Result == nil || st2.Result.CachedFrom != st.ID {
		t.Fatalf("resubmission CachedFrom = %+v, want %s", st2.Result, st.ID)
	}
	assertMatchesDirect(t, st2.Result, want)
	after := svc2.Stats()
	if after.Cache.Hits != before.Cache.Hits+1 {
		t.Fatalf("cache hits %d → %d, want one new hit", before.Cache.Hits, after.Cache.Hits)
	}
	if err := svc2.Close(); err != nil {
		t.Fatalf("closing second daemon: %v", err)
	}

	// A third daemon never ran the job; its cache is re-seeded from the
	// persisted results, so the resubmission still skips the scan.
	svc3, err := Open(cfg)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer svc3.Close()
	st3, err := svc3.Submit(spec)
	if err != nil {
		t.Fatalf("submit to third daemon: %v", err)
	}
	if st3.State != StateSucceeded.String() || st3.Result == nil || st3.Result.CachedFrom == "" {
		t.Fatalf("restart-seeded cache missed: state=%s result=%+v", st3.State, st3.Result)
	}
	assertMatchesDirect(t, st3.Result, want)
}

// TestKernelizedSubmissionDoesNotHitPlainCache: the same cohort submitted
// with and without Kernelize must run twice — their results differ
// observably (kernel fingerprint, work-counter split).
func TestKernelizedSubmissionDoesNotHitPlainCache(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two discovery jobs")
	}
	cfg := Config{DataDir: t.TempDir(), JobWorkers: 2, Logf: t.Logf}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	plain := testSpec()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := svc.Submit(plain)
	if err != nil {
		t.Fatalf("submit plain: %v", err)
	}
	if _, err := svc.WaitJob(ctx, st.ID); err != nil {
		t.Fatalf("waiting plain: %v", err)
	}

	kern := testSpec()
	kern.Options.Kernelize = true
	st2, err := svc.Submit(kern)
	if err != nil {
		t.Fatalf("submit kernelized: %v", err)
	}
	if st2.State == StateSucceeded.String() {
		t.Fatal("kernelized submission was served from the plain run's cache entry")
	}
	final, err := svc.WaitJob(ctx, st2.ID)
	if err != nil {
		t.Fatalf("waiting kernelized: %v", err)
	}
	if final.Result == nil || final.Result.KernelFingerprint == 0 {
		t.Fatalf("kernelized result has no kernel fingerprint: %+v", final.Result)
	}
	if final.Result.CachedFrom != "" {
		t.Fatal("kernelized run claims cache provenance")
	}
	// Same discovery, distinct provenance: winners agree with the plain
	// run, the cache keeps both entries.
	if st := svc.Stats(); st.Cache.Entries != 2 {
		t.Fatalf("cache holds %d entries, want 2 (plain + kernelized)", st.Cache.Entries)
	}
}

// TestCancelQueuedAndRunning covers both cancellation paths and the
// terminal-cancel exit code.
func TestCancelQueuedAndRunning(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	if err := failpoint.Enable("harness/partition", "delay(10ms)"); err != nil {
		t.Fatalf("arming delay failpoint: %v", err)
	}
	defer failpoint.DisableAll()

	// Capacity 1 GPU: the first job occupies the cluster, the second
	// queues behind it.
	cfg := Config{DataDir: t.TempDir(), JobWorkers: 1, ClusterGPUs: 1, Logf: t.Logf}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	first := testSpec()
	st1, err := svc.Submit(first)
	if err != nil {
		t.Fatalf("submit first: %v", err)
	}
	second := testSpec()
	second.Cohort.Seed = 99 // distinct job, same footprint
	st2, err := svc.Submit(second)
	if err != nil {
		t.Fatalf("submit second: %v", err)
	}

	// The second job is queued behind the first: cancel it there.
	if err := svc.Cancel(st2.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	got, err := svc.Get(st2.ID)
	if err != nil {
		t.Fatalf("get canceled: %v", err)
	}
	if got.State != StateCanceled.String() {
		t.Fatalf("queued cancel → %s, want canceled", got.State)
	}
	if got.ExitCode == nil || *got.ExitCode != ExitEarlyStop {
		t.Fatalf("canceled exit code = %v, want %d", got.ExitCode, ExitEarlyStop)
	}
	if err := svc.Cancel(st2.ID); !errors.Is(err, ErrTerminal) {
		t.Fatalf("double cancel = %v, want ErrTerminal", err)
	}

	// Cancel the running job too.
	if err := svc.Cancel(st1.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := svc.WaitJob(ctx, st1.ID)
	if err != nil {
		t.Fatalf("waiting canceled job: %v", err)
	}
	if final.State != StateCanceled.String() {
		t.Fatalf("running cancel → %s, want canceled", final.State)
	}
}

// TestSubmitValidation covers the admission-side rejections.
func TestSubmitValidation(t *testing.T) {
	cfg := Config{DataDir: t.TempDir(), ClusterGPUs: 1, Logf: t.Logf}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	bad := testSpec()
	bad.Cohort.Hits = 9
	if _, err := svc.Submit(bad); err == nil {
		t.Fatal("submit with hits=9 succeeded")
	}
	badPrio := testSpec()
	badPrio.Priority = "extreme"
	if _, err := svc.Submit(badPrio); err == nil {
		t.Fatal("submit with unknown priority succeeded")
	}
	badScheme := testSpec()
	badScheme.Options.Scheme = "17x3"
	if _, err := svc.Submit(badScheme); err == nil {
		t.Fatal("submit with unknown scheme succeeded")
	}

	// A 4-hit job over the full registry footprint wants more simulated
	// GPUs than this 1-GPU cluster owns — reject at submission, never
	// queue it.
	huge := JobSpec{
		Cohort:  CohortSpec{Code: "BRCA", Genes: 2000, Hits: 4, Seed: 1},
		Options: OptionsSpec{Workers: 1},
	}
	if _, err := svc.Submit(huge); !errors.Is(err, ErrOversized) {
		t.Fatalf("oversized submit = %v, want ErrOversized", err)
	}
}

// TestEngineSubmissionsShareCacheEntry: the scan engine is an execution
// knob, so a sparse-engine resubmission of a cohort first solved with the
// dense engine is answered from the cache without scanning — and /v1/stats
// tallies the jobs by their requested engine either way.
func TestEngineSubmissionsShareCacheEntry(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	cfg := Config{DataDir: t.TempDir(), JobWorkers: 2, Logf: t.Logf}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	dense := JobSpec{
		Tenant:  "alice",
		Cohort:  CohortSpec{Code: "BRCA", Genes: 30, Hits: 3, Seed: 5},
		Options: OptionsSpec{Workers: 2, Engine: "dense"},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	st, err := svc.Submit(dense)
	if err != nil {
		t.Fatalf("submit dense: %v", err)
	}
	if _, err := svc.WaitJob(ctx, st.ID); err != nil {
		t.Fatalf("waiting dense: %v", err)
	}

	sparse := dense
	sparse.Options.Engine = "sparse"
	st2, err := svc.Submit(sparse)
	if err != nil {
		t.Fatalf("submit sparse: %v", err)
	}
	if st2.State != StateSucceeded.String() {
		t.Fatalf("sparse resubmission state = %s, want immediate cache hit", st2.State)
	}
	if st2.Result == nil || st2.Result.CachedFrom != st.ID {
		t.Fatalf("sparse resubmission CachedFrom = %+v, want %s", st2.Result, st.ID)
	}

	stats := svc.Stats()
	if stats.Engines["dense"] != 1 || stats.Engines["sparse"] != 1 {
		t.Fatalf("engine tally = %v, want one dense and one sparse job", stats.Engines)
	}

	bad := dense
	bad.Options.Engine = "gpu"
	if _, err := svc.Submit(bad); err == nil {
		t.Fatal("submit with unknown engine succeeded")
	}
}
