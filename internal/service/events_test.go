package service

// Tests for the pull-based event stream: a stalled subscriber must never
// delay job progress (the issue's SSE slow-consumer guarantee), drops
// are accounted exactly, and Last-Event-ID resumption replays retained
// history.

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"repro/internal/failpoint"
)

// TestStalledSubscriberCannotDelayJob is the slow-consumer acceptance
// test: a subscriber that never reads must not slow the job down, and
// when it finally reads, the frames it lost to history trimming are
// accounted exactly — dropped + delivered = everything published.
func TestStalledSubscriberCannotDelayJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	// A tiny ring forces drops even on a small job.
	oldHist := jobEventHistory
	jobEventHistory = 8
	defer func() { jobEventHistory = oldHist }()

	svc, err := Open(Config{DataDir: t.TempDir(), JobWorkers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	st, err := svc.Submit(testSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	// Subscribe from the very beginning and then stall: no Next call
	// until the job is done.
	sub, err := svc.Subscribe(st.ID, 0)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}

	// The job must finish on the fault-free schedule even though the
	// subscriber never consumed a single frame.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.WaitJob(ctx, st.ID); err != nil {
		t.Fatalf("WaitJob with a stalled subscriber: %v", err)
	}

	// Drain the stalled subscription: one dropped frame summarizing the
	// trimmed history, then the retained tail, then end of stream.
	var dropped, delivered uint64
	var sawDropFrame bool
	for {
		e, ok := sub.Next(ctx)
		if !ok {
			break
		}
		if e.Type == "dropped" {
			if sawDropFrame {
				t.Fatal("more than one dropped frame for a single stall")
			}
			sawDropFrame = true
			dropped = e.Dropped
			continue
		}
		delivered++
	}

	j := svc.jobs[st.ID]
	j.mu.Lock()
	total := j.seq
	j.mu.Unlock()
	if total <= uint64(jobEventHistory) {
		t.Fatalf("job published only %d events; the %d-slot ring never trimmed", total, jobEventHistory)
	}
	if !sawDropFrame {
		t.Fatalf("history trimmed (%d events, ring %d) but no dropped frame", total, jobEventHistory)
	}
	if dropped+delivered != total {
		t.Fatalf("accounting broken: %d dropped + %d delivered != %d published", dropped, delivered, total)
	}
}

// TestSubscriptionResumeReplaysAfterSeq pins the Last-Event-ID contract
// at the Service level: a second subscription starting after sequence N
// replays exactly the retained events past N, and a stale cursor beyond
// the live sequence clamps to "from now".
func TestSubscriptionResumeReplaysAfterSeq(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	svc, err := Open(Config{DataDir: t.TempDir(), JobWorkers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer svc.Close()

	st, err := svc.Submit(testSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.WaitJob(ctx, st.ID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}

	// First pass: read everything, remember the frames.
	sub, err := svc.Subscribe(st.ID, 0)
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	var all []Event
	for {
		e, ok := sub.Next(ctx)
		if !ok {
			break
		}
		all = append(all, e)
	}
	if len(all) < 3 {
		t.Fatalf("job published only %d retained events; need a few to test resume", len(all))
	}

	// Resume after the midpoint: exactly the tail replays, same frames.
	mid := all[len(all)/2]
	resumed, err := svc.Subscribe(st.ID, int64(mid.Seq))
	if err != nil {
		t.Fatalf("resuming Subscribe: %v", err)
	}
	wantTail := all[len(all)/2+1:]
	for i, want := range wantTail {
		got, ok := resumed.Next(ctx)
		if !ok {
			t.Fatalf("resumed stream ended at %d, want %d more frames", i, len(wantTail)-i)
		}
		if got.Seq != want.Seq || got.Type != want.Type {
			t.Fatalf("resumed frame %d = seq %d %q, want seq %d %q", i, got.Seq, got.Type, want.Seq, want.Type)
		}
	}
	if _, ok := resumed.Next(ctx); ok {
		t.Fatal("resumed stream kept going past the original")
	}

	// A cursor beyond the live sequence (stale Last-Event-ID from a
	// previous daemon incarnation) clamps: terminal job → immediate end.
	stale, err := svc.Subscribe(st.ID, int64(all[len(all)-1].Seq)+1000)
	if err != nil {
		t.Fatalf("stale Subscribe: %v", err)
	}
	if e, ok := stale.Next(ctx); ok {
		t.Fatalf("stale cursor replayed %+v, want clamped end of stream", e)
	}
}

// TestHTTPEventStreamResumesWithLastEventID drives the SSE surface: live
// frames carry id: lines, and reconnecting with Last-Event-ID receives
// exactly the frames after it.
func TestHTTPEventStreamResumesWithLastEventID(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	svc, ts := startTestServer(t, Config{JobWorkers: 2})
	st, _ := postJob(t, ts, testSpec())
	if st == nil {
		t.Fatal("submission rejected")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if _, err := svc.WaitJob(ctx, st.ID); err != nil {
		t.Fatalf("WaitJob: %v", err)
	}

	// Last-Event-ID: 0 requests replay from the start of retained history
	// (a bare GET streams from now — pure SSE semantics).
	ids, types := streamSSE(t, ts, st.ID, "0")
	if len(ids) < 3 {
		t.Fatalf("stream carried %d id: lines, need a few to test resume", len(ids))
	}
	// The unnumbered snapshot frame leads, with no id: line.
	if types[0] != "state" {
		t.Fatalf("first frame is %q, want the state snapshot", types[0])
	}

	mid := ids[len(ids)/2]
	resumedIDs, _ := streamSSE(t, ts, st.ID, mid)
	wantTail := ids[len(ids)/2+1:]
	if len(resumedIDs) != len(wantTail) {
		t.Fatalf("resume after id %s replayed %d frames, want %d", mid, len(resumedIDs), len(wantTail))
	}
	for i := range wantTail {
		if resumedIDs[i] != wantTail[i] {
			t.Fatalf("resumed frame %d has id %s, want %s", i, resumedIDs[i], wantTail[i])
		}
	}
}

// streamSSE reads one /events stream to completion, returning the id:
// lines and the event types in order.
func streamSSE(t *testing.T, ts *httptest.Server, jobID, lastEventID string) (ids, types []string) {
	t.Helper()
	u, err := url.Parse(ts.URL + "/v1/jobs/" + jobID + "/events")
	if err != nil {
		t.Fatalf("parsing URL: %v", err)
	}
	req := fmt.Sprintf("GET %s HTTP/1.1\r\nHost: %s\r\n", u.RequestURI(), u.Host)
	if lastEventID != "" {
		req += "Last-Event-ID: " + lastEventID + "\r\n"
	}
	req += "\r\n"
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatalf("dialing: %v", err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(30 * time.Second))
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatalf("writing request: %v", err)
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		case strings.HasPrefix(line, "event: "):
			types = append(types, strings.TrimPrefix(line, "event: "))
		case line == "0": // chunked-encoding terminator: stream over
			return ids, types
		}
	}
	return ids, types
}

// TestStalledHTTPReaderCannotDelayJob is the wire-level half of the
// slow-consumer guarantee: a client that opens /events and then never
// reads a byte must not delay the job. The handler may block writing to
// the dead socket, but job progress is published to the ring, not pushed
// to subscribers, so the job finishes on schedule.
func TestStalledHTTPReaderCannotDelayJob(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	// Generous event volume so the socket buffer pressure is real.
	if err := failpoint.Enable("harness/partition", "delay(2ms)"); err != nil {
		t.Fatalf("arming delay failpoint: %v", err)
	}
	defer failpoint.DisableAll()

	svc, ts := startTestServer(t, Config{JobWorkers: 2})
	st, _ := postJob(t, ts, testSpec())
	if st == nil {
		t.Fatal("submission rejected")
	}

	// Open the stream and go silent: no reads, ever.
	u, _ := url.Parse(ts.URL)
	conn, err := net.Dial("tcp", u.Host)
	if err != nil {
		t.Fatalf("dialing: %v", err)
	}
	defer conn.Close()
	req := fmt.Sprintf("GET /v1/jobs/%s/events HTTP/1.1\r\nHost: %s\r\n\r\n", st.ID, u.Host)
	if _, err := conn.Write([]byte(req)); err != nil {
		t.Fatalf("writing request: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	final, err := svc.WaitJob(ctx, st.ID)
	if err != nil {
		t.Fatalf("job did not finish with a stalled SSE reader attached: %v", err)
	}
	if final.State != StateSucceeded.String() {
		t.Fatalf("job ended %s with a stalled reader, want succeeded", final.State)
	}
}
