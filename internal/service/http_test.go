package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/failpoint"
)

// startTestServer opens a service on a temp dir behind httptest.
func startTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	svc, err := Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// postJob submits a spec over HTTP and decodes the status.
func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) (*JobStatus, *http.Response) {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshaling spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		var apiErr apiError
		_ = json.NewDecoder(resp.Body).Decode(&apiErr)
		return nil, &http.Response{StatusCode: resp.StatusCode, Status: apiErr.Error}
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding job status: %v", err)
	}
	return &st, resp
}

// TestHTTPSubmitPollAndList drives the REST surface end to end.
func TestHTTPSubmitPollAndList(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	_, ts := startTestServer(t, Config{JobWorkers: 2})

	st, _ := postJob(t, ts, testSpec())
	if st == nil {
		t.Fatal("submission rejected")
	}
	if st.ID == "" || st.Tenant != "alice" {
		t.Fatalf("status = %+v", st)
	}

	// Poll to terminal.
	deadline := time.Now().Add(60 * time.Second)
	var final JobStatus
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		err = json.NewDecoder(resp.Body).Decode(&final)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decoding: %v", err)
		}
		if final.ExitCode != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not terminal after 60s: %+v", final)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if final.State != StateSucceeded.String() || *final.ExitCode != ExitOK {
		t.Fatalf("final = %s exit %d, want succeeded/0", final.State, *final.ExitCode)
	}
	if final.Result == nil || len(final.Result.Combos) == 0 {
		t.Fatalf("no combos in result: %+v", final.Result)
	}

	// List with and without the tenant filter.
	for _, q := range []string{"", "?tenant=alice"} {
		resp, err := http.Get(ts.URL + "/v1/jobs" + q)
		if err != nil {
			t.Fatalf("GET list%s: %v", q, err)
		}
		var list []JobStatus
		err = json.NewDecoder(resp.Body).Decode(&list)
		resp.Body.Close()
		if err != nil || len(list) != 1 || list[0].ID != st.ID {
			t.Fatalf("list%s = %+v err=%v", q, list, err)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/jobs?tenant=nobody")
	if err != nil {
		t.Fatalf("GET filtered list: %v", err)
	}
	var none []JobStatus
	err = json.NewDecoder(resp.Body).Decode(&none)
	resp.Body.Close()
	if err != nil || len(none) != 0 {
		t.Fatalf("foreign-tenant list = %+v err=%v", none, err)
	}

	// Stats reflect the run.
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatalf("GET stats: %v", err)
	}
	var stats Stats
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.Jobs != 1 || stats.Cache.Entries != 1 {
		t.Fatalf("stats = %+v err=%v", stats, err)
	}
}

// TestHTTPErrorMapping pins the error → status translation.
func TestHTTPErrorMapping(t *testing.T) {
	_, ts := startTestServer(t, Config{ClusterGPUs: 1})

	resp, err := http.Get(ts.URL + "/v1/jobs/job-999999999")
	if err != nil {
		t.Fatalf("GET missing job: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job → %d, want 404", resp.StatusCode)
	}

	// Oversized → 422.
	huge := JobSpec{Cohort: CohortSpec{Code: "BRCA", Genes: 2000, Hits: 4, Seed: 1}}
	if st, r := postJob(t, ts, huge); st != nil || r.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("oversized → %d (%s), want 422", r.StatusCode, r.Status)
	}

	// Malformed JSON and unknown fields → 400.
	for _, body := range []string{"{not json", `{"cohort":{"code":"BRCA","hits":2},"surprise":1}`} {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST bad body: %v", err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad body %q → %d, want 400", body, resp.StatusCode)
		}
	}

	// Cancel of a missing job → 404.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/job-999999999", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE missing: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel missing → %d, want 404", resp.StatusCode)
	}
}

// TestHTTPEventStream subscribes over SSE and checks the frame protocol:
// a state snapshot first, then progress frames carrying partition
// tallies, then the terminal state that ends the stream.
func TestHTTPEventStream(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	if err := failpoint.Enable("harness/partition", "delay(5ms)"); err != nil {
		t.Fatalf("arming delay: %v", err)
	}
	defer failpoint.DisableAll()
	_, ts := startTestServer(t, Config{JobWorkers: 2})

	st, _ := postJob(t, ts, testSpec())
	if st == nil {
		t.Fatal("submission rejected")
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q, want text/event-stream", ct)
	}

	var sawSnapshot, sawProgress, sawCheckpoint bool
	var lastState string
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		line := scanner.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var e Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
			t.Fatalf("bad SSE data %q: %v", line, err)
		}
		switch e.Type {
		case "state":
			if !sawSnapshot {
				sawSnapshot = true
			}
			lastState = e.State
		case "progress":
			if e.Progress == nil || e.Progress.TotalPartitions == 0 {
				t.Fatalf("progress frame without tally: %+v", e)
			}
			sawProgress = true
		case "checkpoint":
			if e.Generation == 0 {
				t.Fatalf("checkpoint frame without generation: %+v", e)
			}
			sawCheckpoint = true
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatalf("reading stream: %v", err)
	}
	if !sawSnapshot || !sawProgress || !sawCheckpoint {
		t.Fatalf("stream missing frames: snapshot=%v progress=%v checkpoint=%v",
			sawSnapshot, sawProgress, sawCheckpoint)
	}
	if lastState != StateSucceeded.String() {
		t.Fatalf("stream ended at state %q, want succeeded", lastState)
	}
}

// TestStateRoundTrip pins the wire spellings and the parse inverse.
func TestStateRoundTrip(t *testing.T) {
	for st := StateQueued; st <= StateCanceled; st++ {
		got, err := ParseState(st.String())
		if err != nil || got != st {
			t.Fatalf("ParseState(%q) = %v, %v", st.String(), got, err)
		}
	}
	if _, err := ParseState("flying"); err == nil {
		t.Fatal("ParseState accepted an unknown state")
	}
	if fmt.Sprint(StateQueued, StateRunning, StateSucceeded, StatePartial, StateFailed, StateCanceled) !=
		"queued running succeeded partial failed canceled" {
		t.Fatal("state spellings drifted from the documented API")
	}
}
