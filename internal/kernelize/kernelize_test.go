package kernelize

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/reduce"
)

// mat builds a matrix from per-gene sample lists.
func mat(t *testing.T, samples int, rows ...[]int) *bitmat.Matrix {
	t.Helper()
	m := bitmat.New(len(rows), samples)
	for g, row := range rows {
		for _, s := range row {
			m.Set(g, s)
		}
	}
	return m
}

// TestDominanceTable pins the ≥hits-dominators rule on hand-built
// instances, including the twin-gene cases that make the naive "one
// dominator suffices" rule unsound.
func TestDominanceTable(t *testing.T) {
	cases := []struct {
		name    string
		hits    int
		tumor   [][]int // per-gene tumor samples
		normal  [][]int // per-gene normal samples
		dropped []int
	}{
		{
			// Two identical genes at h=2: gene 1 has only ONE smaller
			// dominator, and a combination {0, 1} exists in which no
			// dominator sits outside — neither gene may drop.
			name:    "twins_survive",
			hits:    2,
			tumor:   [][]int{{0, 1}, {0, 1}, {2}},
			normal:  [][]int{{}, {}, {}},
			dropped: nil,
		},
		{
			// Three identical genes at h=2: gene 2 has two surviving
			// smaller dominators, so any combination containing it has a
			// dominator outside — it drops. Gene 1 still survives.
			name:    "triplet_third_drops",
			hits:    2,
			tumor:   [][]int{{0, 1}, {0, 1}, {0, 1}, {2}},
			normal:  [][]int{{}, {}, {}, {}},
			dropped: []int{2},
		},
		{
			// Strict domination at h=2: gene 2's tumor set is a strict
			// subset of genes 0 and 1, and its normal set a strict
			// superset — two dominators, drop.
			name:    "strict_subset_drops",
			hits:    2,
			tumor:   [][]int{{0, 1, 2}, {0, 1, 3}, {0, 1}},
			normal:  [][]int{{}, {}, {0}},
			dropped: []int{2},
		},
		{
			// Same instance at h=3: only two dominators < hits, so the
			// dominated gene must survive.
			name:    "needs_hits_dominators",
			hits:    3,
			tumor:   [][]int{{0, 1, 2}, {0, 1, 3}, {0, 1}, {4}},
			normal:  [][]int{{}, {}, {0}, {}},
			dropped: nil,
		},
		{
			// A dropped gene must not count as a dominator for later
			// genes: 0,1,2 identical (2 drops), gene 3 dominated only by
			// the surviving 0 and 1 plus the dropped 2 — still two
			// SURVIVING dominators, so 3 drops too.
			name:    "survivors_count",
			hits:    2,
			tumor:   [][]int{{0, 1}, {0, 1}, {0, 1}, {0}},
			normal:  [][]int{{}, {}, {}, {}},
			dropped: []int{2, 3},
		},
		{
			// Normal-side direction matters: gene 1's tumor equals gene
			// 0's but its normal set is SMALLER — it is not dominated.
			name:    "better_normal_survives",
			hits:    2,
			tumor:   [][]int{{0, 1}, {0, 1}, {2}},
			normal:  [][]int{{0}, {}, {}},
			dropped: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			samples := 8
			tumor := mat(t, samples, tc.tumor...)
			normal := mat(t, samples, tc.normal...)
			kern, err := ReduceGenes(tumor, normal, tc.hits)
			if err != nil {
				t.Fatal(err)
			}
			if kern.DroppedGenes() != len(tc.dropped) {
				t.Fatalf("dropped %d genes, want %v", kern.DroppedGenes(), tc.dropped)
			}
			kept := make(map[int]bool, len(kern.Keep))
			for _, g := range kern.Keep {
				kept[g] = true
			}
			for _, g := range tc.dropped {
				if kept[g] {
					t.Fatalf("gene %d survived, want dropped (Keep=%v)", g, kern.Keep)
				}
			}
			if kern.Tumor.Genes() != tumor.Genes()-len(tc.dropped) {
				t.Fatalf("kernel has %d genes, want %d",
					kern.Tumor.Genes(), tumor.Genes()-len(tc.dropped))
			}
		})
	}
}

// TestReduceDedupsColumns: Reduce merges duplicate sample columns and the
// weights restore original counts.
func TestReduceDedupsColumns(t *testing.T) {
	// Tumor columns: 0≡1≡2 (gene 0 only), 3≡4 (gene 1 only), 5 (both).
	tumor := mat(t, 6, []int{0, 1, 2, 5}, []int{3, 4, 5})
	normal := mat(t, 4, []int{0, 1}, []int{2})
	kern, err := Reduce(tumor, normal, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kern.Tumor.Samples() != 3 {
		t.Fatalf("tumor deduped to %d columns, want 3", kern.Tumor.Samples())
	}
	if kern.TumorWeights == nil || kern.TumorWeights.Total() != 6 {
		t.Fatalf("tumor weights %+v, want total 6", kern.TumorWeights)
	}
	if got, want := kern.TumorWeights.PopVec(kern.Tumor.Row(0)), 4; got != want {
		t.Fatalf("gene 0 weighted tumor pop %d, want %d", got, want)
	}
	// Normal columns 0≡1 (gene 0), 2 (gene 1), 3 (empty) would dedup to
	// 3 — but 3 of 4 is below the halving break-even, so the adoption
	// guard keeps the side plain (no weighted-popcount overhead).
	if kern.Normal.Samples() != 4 || kern.NormalWeights != nil || kern.NormalCols != nil {
		t.Fatalf("marginal normal dedup adopted: %d cols, weights %+v",
			kern.Normal.Samples(), kern.NormalWeights)
	}
}

func TestRemapAndIndex(t *testing.T) {
	// Genes 0,1,2 identical at h=2 → gene 2 drops; kernel ids 0,1,2 map
	// to originals 0,1,3.
	tumor := mat(t, 8, []int{0, 1}, []int{0, 1}, []int{0, 1}, []int{2, 3})
	normal := mat(t, 2, nil, nil, nil, nil)
	kern, err := ReduceGenes(tumor, normal, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(kern.Keep) != 3 || kern.Keep[2] != 3 {
		t.Fatalf("Keep=%v, want [0 1 3]", kern.Keep)
	}
	c := kern.RemapCombo(reduce.NewCombo2(0.5, 1, 2))
	ids := c.GeneIDs()
	if ids[0] != 1 || ids[1] != 3 {
		t.Fatalf("remapped to %v, want [1 3]", ids)
	}
	if c.F != 0.5 { //lint:allow floatcompare exact passthrough of the score
		t.Fatalf("remap changed F to %g", c.F)
	}
	if kern.RemapCombo(reduce.None) != reduce.None {
		t.Fatal("remap of None is not None")
	}
	for ki, orig := range kern.Keep {
		got, err := kern.KernelIndex(orig)
		if err != nil || got != ki {
			t.Fatalf("KernelIndex(%d)=%d,%v, want %d", orig, got, err, ki)
		}
	}
	if _, err := kern.KernelIndex(2); err == nil {
		t.Fatal("KernelIndex accepted a dropped gene")
	}
}

func TestMapActive(t *testing.T) {
	// Tumor columns 0≡1 and 2≡3 under both genes; kernel keeps 0 and 2.
	tumor := mat(t, 4, []int{0, 1}, []int{2, 3})
	normal := mat(t, 2, nil, nil)
	kern, err := Reduce(tumor, normal, 2)
	if err != nil {
		t.Fatal(err)
	}
	if kern.Tumor.Samples() != 2 {
		t.Fatalf("kernel width %d, want 2", kern.Tumor.Samples())
	}
	active := bitmat.AllOnes(4)
	// Cover group {2,3} — duplicate columns always flip in lockstep.
	active.Clear(2)
	active.Clear(3)
	ka := kern.MapActive(active)
	if ka.Len() != 2 || !ka.Get(0) || ka.Get(1) {
		t.Fatalf("mapped active got %v/%v over %d", ka.Get(0), ka.Get(1), ka.Len())
	}
}

func TestValidation(t *testing.T) {
	tumor := mat(t, 4, []int{0}, []int{1})
	normal := mat(t, 2, nil, nil)
	if _, err := Reduce(tumor, normal, 3); err == nil {
		t.Fatal("accepted more hits than genes")
	}
	if _, err := Reduce(tumor, normal, 1); err == nil {
		t.Fatal("accepted hits < 2")
	}
	short := mat(t, 4, []int{0})
	if _, err := Reduce(tumor, short, 2); err == nil {
		t.Fatal("accepted mismatched gene counts")
	}
}

// naiveBest scores every h-subset the slow way under the engine's total
// order (higher F, ties to the lexicographically smaller tuple) and
// returns the winner's ids and F. tw/nw are per-column multiplicities
// (nil = unweighted).
func naiveBest(tumor, normal *bitmat.Matrix, hits int, tw, nw []int, alpha, denom float64) ([]int, float64) {
	nn := 0
	if nw == nil {
		nn = normal.Samples()
		nw = make([]int, normal.Samples())
		for j := range nw {
			nw[j] = 1
		}
	} else {
		for _, m := range nw {
			nn += m
		}
	}
	if tw == nil {
		tw = make([]int, tumor.Samples())
		for j := range tw {
			tw[j] = 1
		}
	}
	score := func(ids []int) float64 {
		tp, nh := 0, 0
		for s := 0; s < tumor.Samples(); s++ {
			all := true
			for _, g := range ids {
				if !tumor.Get(g, s) {
					all = false
					break
				}
			}
			if all {
				tp += tw[s]
			}
		}
		for s := 0; s < normal.Samples(); s++ {
			all := true
			for _, g := range ids {
				if !normal.Get(g, s) {
					all = false
					break
				}
			}
			if all {
				nh += nw[s]
			}
		}
		return (alpha*float64(tp) + float64(nn-nh)) / denom
	}
	g := tumor.Genes()
	var bestIDs []int
	bestF := -1.0
	ids := make([]int, hits)
	var walk func(pos, lo int)
	walk = func(pos, lo int) {
		if pos == hits {
			f := score(ids)
			if f > bestF { //lint:allow floatcompare test reference comparator
				bestF = f
				bestIDs = append([]int(nil), ids...)
			}
			return
		}
		for i := lo; i <= g-(hits-pos); i++ {
			ids[pos] = i
			walk(pos+1, i+1)
		}
	}
	walk(0, 0)
	return bestIDs, bestF
}

// FuzzKernelize: on random small instances, the optimal combination of
// the kernelized instance — scored with the multiplicity weights and
// remapped to original gene ids — is bit-identical to the original
// instance's optimum.
func FuzzKernelize(f *testing.F) {
	f.Add(int64(1), 6, 10, 6, uint8(2))
	f.Add(int64(2), 8, 16, 8, uint8(3))
	f.Add(int64(3), 7, 5, 3, uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, genes, nt, nn int, hits uint8) {
		h := int(hits)
		if h < 2 || h > 3 {
			return
		}
		if genes < h || genes > 9 || nt < 1 || nt > 24 || nn < 1 || nn > 24 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		tumor := bitmat.New(genes, nt)
		normal := bitmat.New(genes, nn)
		for g := 0; g < genes; g++ {
			for s := 0; s < nt; s++ {
				if rng.Intn(3) == 0 {
					tumor.Set(g, s)
				}
			}
			for s := 0; s < nn; s++ {
				if rng.Intn(4) == 0 {
					normal.Set(g, s)
				}
			}
		}
		const alpha = 0.1
		denom := float64(nt + nn)
		wantIDs, wantF := naiveBest(tumor, normal, h, nil, nil, alpha, denom)

		kern, err := Reduce(tumor, normal, h)
		if err != nil {
			t.Fatal(err)
		}
		var tw, nw []int
		if kern.TumorWeights != nil {
			tw = make([]int, kern.Tumor.Samples())
			for j := range tw {
				tw[j] = kern.TumorWeights.Weight(j)
			}
		}
		if kern.NormalWeights != nil {
			nw = make([]int, kern.Normal.Samples())
			for j := range nw {
				nw[j] = kern.NormalWeights.Weight(j)
			}
		}
		gotKernel, gotF := naiveBest(kern.Tumor, kern.Normal, h, tw, nw, alpha, denom)
		if gotF != wantF { //lint:allow floatcompare identical float expressions must agree exactly
			t.Fatalf("kernel optimum F=%g, original %g", gotF, wantF)
		}
		got := make([]int, len(gotKernel))
		for i, kg := range gotKernel {
			got[i] = kern.Keep[kg]
		}
		for i := range got {
			if got[i] != wantIDs[i] {
				t.Fatalf("kernel winner %v (remapped %v), original %v", gotKernel, got, wantIDs)
			}
		}
	})
}
