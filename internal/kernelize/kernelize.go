// Package kernelize shrinks a multi-hit instance before enumeration.
// Every gene removed from G pays off combinatorially — the h=4 domain is
// C(G, 4) — so the reductions run once up front (and, inside the engine,
// between iterations) and the enumeration scans the smaller instance.
// docs/KERNELIZATION.md gives the safety arguments in full; the short
// form of each reduction:
//
//   - Duplicate-column dedup: two sample columns identical across every
//     gene row are covered by exactly the same combinations forever, so
//     they merge into one column with a multiplicity weight
//     (bitmat.DedupColumns / bitmat.Weights). Weighted counts on the
//     deduped instance equal plain counts on the original exactly.
//
//   - Dominated-gene elimination: gene a is dropped iff at least `hits`
//     SURVIVING genes b < a dominate it — tumor(a) ⊆ tumor(b) and
//     normal(a) ⊇ normal(b). Any combination containing a has at most
//     hits−1 other genes, so some dominator b sits outside it; swapping
//     a → b never lowers F and strictly improves the lexicographic
//     tie-break (b < a), so the full-domain argmax under the engine's
//     total order (higher F, ties to the smaller tuple) never contains a
//     dropped gene. Requiring `hits` dominators is what makes the rule
//     sound under fixed-size combinations: with fewer, the swap target
//     could already occupy a slot of the combination.
//
// Both reductions preserve the winning combination BIT-IDENTICALLY, not
// just its F score; the engine's differential tests pin that.
package kernelize

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/reduce"
)

// Kernel is the outcome of a reduction pass: the shrunken matrices plus
// everything needed to map results back to the original instance.
type Kernel struct {
	// Genes is the ORIGINAL gene count.
	Genes int
	// Keep lists, ascending, the original gene id of each surviving row;
	// len(Keep) == Tumor.Genes().
	Keep []int
	// Tumor and Normal are the reduced matrices: rows selected by Keep,
	// duplicate columns merged.
	Tumor, Normal *bitmat.Matrix
	// TumorWeights / NormalWeights carry the merged columns'
	// multiplicities; nil when that side had no duplicates (all weights 1).
	TumorWeights, NormalWeights *bitmat.Weights
	// TumorCols / NormalCols give each surviving column's original index;
	// nil when that side had no duplicates.
	TumorCols, NormalCols []int
}

// Reduce runs both reductions — column dedup, then dominated-gene
// elimination on the deduped instance — and returns the kernel. The
// inputs are never modified.
func Reduce(tumor, normal *bitmat.Matrix, hits int) (*Kernel, error) {
	k, err := reduceCols(tumor, normal, hits)
	if err != nil {
		return nil, err
	}
	k.dropDominated(hits)
	return k, nil
}

// ReduceGenes runs only the dominated-gene elimination, keeping the
// sample axes (and therefore all counts) unweighted. The distributed
// driver (internal/cluster) uses this form: its per-rank exclusion masks
// index original sample columns.
func ReduceGenes(tumor, normal *bitmat.Matrix, hits int) (*Kernel, error) {
	k := &Kernel{Genes: tumor.Genes(), Tumor: tumor, Normal: normal}
	if err := k.validate(tumor, normal, hits); err != nil {
		return nil, err
	}
	k.dropDominated(hits)
	return k, nil
}

func (k *Kernel) validate(tumor, normal *bitmat.Matrix, hits int) error {
	if tumor.Genes() != normal.Genes() {
		return fmt.Errorf("kernelize: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if hits < 2 {
		return fmt.Errorf("kernelize: hits must be ≥ 2, got %d", hits)
	}
	if tumor.Genes() < hits {
		return fmt.Errorf("kernelize: %d genes cannot form %d-hit combinations",
			tumor.Genes(), hits)
	}
	return nil
}

// reduceCols builds a kernel with both sample axes deduped and the full
// gene set. A side's dedup is adopted only when it at least halves the
// column count: weighted popcounts pay one AND+popcount per multiplicity
// bit plane, so a marginal merge makes every score MORE expensive than
// scanning the duplicates plainly. Halving is the approximate break-even
// for the h=4 fold. The guard is a pure function of the input matrices,
// so a resumed leg rebuilds the identical kernel (same fingerprint).
func reduceCols(tumor, normal *bitmat.Matrix, hits int) (*Kernel, error) {
	k := &Kernel{Genes: tumor.Genes()}
	if err := k.validate(tumor, normal, hits); err != nil {
		return nil, err
	}
	dt, tCols, tMult := bitmat.DedupColumns(tumor)
	if tCols != nil && dt.Samples()*2 <= tumor.Samples() {
		k.TumorCols = tCols
		k.TumorWeights = bitmat.NewWeights(tMult)
	} else {
		dt = tumor
	}
	dn, nCols, nMult := bitmat.DedupColumns(normal)
	if nCols != nil && dn.Samples()*2 <= normal.Samples() {
		k.NormalCols = nCols
		k.NormalWeights = bitmat.NewWeights(nMult)
	} else {
		dn = normal
	}
	k.Tumor, k.Normal = dt, dn
	return k, nil
}

// dropDominated applies the dominated-gene rule to the kernel's current
// matrices and fills Keep. One ascending pass suffices: a gene is dropped
// only against smaller-indexed genes that themselves survived, so
// soundness composes by induction over the drops.
func (k *Kernel) dropDominated(hits int) {
	t, n := k.Tumor, k.Normal
	g := t.Genes()
	tpop := make([]int, g)
	npop := make([]int, g)
	for i := 0; i < g; i++ {
		tpop[i] = t.RowPopCount(i)
		npop[i] = n.RowPopCount(i)
	}
	keep := make([]int, 0, g)
	dropped := 0
	for a := 0; a < g; a++ {
		dominators := 0
		// Only surviving smaller-indexed genes count; popcount filters
		// reject most candidates before the word-level subset sweeps.
		for _, b := range keep {
			if tpop[b] < tpop[a] || npop[b] > npop[a] {
				continue
			}
			if kernelSubset(t.Row(a), t.Row(b)) && kernelSubset(n.Row(b), n.Row(a)) {
				dominators++
				if dominators == hits {
					break
				}
			}
		}
		if dominators >= hits {
			dropped++
			continue
		}
		keep = append(keep, a)
	}
	k.Keep = keep
	if dropped > 0 {
		k.Tumor = t.SelectRows(keep)
		k.Normal = n.SelectRows(keep)
	}
}

// kernelSubset reports a ⊆ b over equal-length packed rows. It is the
// dominance test's hot path and allocates nothing (the allocfree analyzer
// pins that).
func kernelSubset(a, b []uint64) bool {
	for w := range a {
		if a[w]&^b[w] != 0 {
			return false
		}
	}
	return true
}

// IncumbentKeep returns the ascending gene indices whose best-case solo
// score — every active tumor sample the gene touches covered, zero normal
// hits — reaches the incumbent floor, or nil when no gene is droppable.
// The upper bound uses the exact float expression of the engine's scorer,
// (α·tp + tn) / denom, so its monotonicity in tp survives rounding: any
// gene of a combination scoring ≥ floor has ub ≥ floor and is kept. The
// comparison is strict, so equal-F candidates are never dropped and the
// lexicographic tie-break is preserved.
func IncumbentKeep(t *bitmat.Matrix, w *bitmat.Weights, active *bitmat.Vec, alpha, denom float64, nn int, floor float64) []int {
	g := t.Genes()
	aw := active.Words()
	var keep []int
	for i := 0; i < g; i++ {
		var tp int
		if w == nil {
			tp = bitmat.PopAnd2(t.Row(i), aw)
		} else {
			tp = w.PopAnd2(t.Row(i), aw)
		}
		ub := (alpha*float64(tp) + float64(nn)) / denom
		if ub < floor { //lint:allow floatcompare strict bound: dropping on ties would break the lexicographic tie-break
			if keep == nil {
				keep = make([]int, 0, g-1)
				for j := 0; j < i; j++ {
					keep = append(keep, j)
				}
			}
			continue
		}
		if keep != nil {
			keep = append(keep, i)
		}
	}
	return keep
}

// DroppedGenes returns how many genes the reduction removed.
func (k *Kernel) DroppedGenes() int { return k.Genes - len(k.Keep) }

// RemapCombo translates a combination found on the kernel back to
// original gene ids through Keep. Keep is ascending, so the remap
// preserves both the strict order inside a combination and the
// lexicographic order between combinations.
func (k *Kernel) RemapCombo(c reduce.Combo) reduce.Combo {
	for i, g := range c.Genes {
		if g >= 0 {
			c.Genes[i] = int32(k.Keep[g])
		}
	}
	return c
}

// KernelIndex returns the kernel row index of an original gene id, or an
// error when the reduction dropped that gene — which a checkpoint written
// by a correct run never records, so a miss means a corrupt or mismatched
// checkpoint.
func (k *Kernel) KernelIndex(orig int) (int, error) {
	lo, hi := 0, len(k.Keep)
	for lo < hi {
		mid := (lo + hi) / 2
		if k.Keep[mid] < orig {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(k.Keep) && k.Keep[lo] == orig {
		return lo, nil
	}
	return 0, fmt.Errorf("kernelize: gene %d was dropped by the reduction", orig)
}

// MapActive projects an original-width active-sample mask onto the
// kernel's tumor columns. Duplicate columns are always covered together
// (they are identical in every gene row), so the representative's bit
// carries the whole group and weighted popcounts on the projection equal
// plain popcounts on the original mask.
func (k *Kernel) MapActive(orig *bitmat.Vec) *bitmat.Vec {
	if k.TumorCols == nil {
		return orig.Clone()
	}
	out := bitmat.NewVec(k.Tumor.Samples())
	for j, src := range k.TumorCols {
		if orig.Get(src) {
			out.Set(j)
		}
	}
	return out
}

// Fingerprint hashes everything that defines the kernel — original gene
// count, surviving rows and columns, multiplicities (via the reduced
// matrices' contents) — so checkpoints can verify that a resumed leg
// rebuilt the exact same kernel before continuing bit-identically.
func (k *Kernel) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(k.Genes))
	mix(uint64(len(k.Keep)))
	for _, g := range k.Keep {
		mix(uint64(g))
	}
	mixCols := func(cols []int) {
		mix(uint64(len(cols)))
		for _, c := range cols {
			mix(uint64(c))
		}
	}
	mixCols(k.TumorCols)
	mixCols(k.NormalCols)
	mix(k.Tumor.Fingerprint())
	mix(k.Normal.Fingerprint())
	return h
}
