package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cover"
	"repro/internal/dataset"
)

// The end-to-end pipeline: generate, discover, report with gene symbols.
func ExampleDiscover() {
	cohort, err := dataset.Generate(dataset.LGG().Scaled(50), 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	res, err := core.Discover(cohort, cover.Options{Hits: 4, MaxIterations: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Combos[0])
	// Output:
	// IDH1+MUC6+PABPC3+TAS2R46 (F=0.4006, covers 179)
}
