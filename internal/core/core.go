// Package core is the public façade of the multi-hit reproduction: it ties
// the substrates together into the paper's three end-to-end pipelines.
//
//   - Discover runs the weighted-set-cover engine on a cohort and returns
//     the multi-hit combinations with gene symbols attached.
//   - TrainTest splits a cohort 75/25, discovers combinations on the
//     training split and evaluates them as a tumor/normal classifier on the
//     test split (Sec. IV-F).
//   - PanelStudy repeats TrainTest across a panel of cancer types and
//     aggregates sensitivity/specificity — the Fig. 9 experiment.
//
// Scaling and profiling studies live in internal/cluster; this package
// re-exports nothing from them.
package core

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/classify"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/stats"
)

// Combo is one discovered combination with human-readable gene symbols.
type Combo struct {
	// GeneIDs are the matrix row indices, sorted ascending.
	GeneIDs []int
	// Symbols are the corresponding gene symbols.
	Symbols []string
	// F is the weighted-set-cover score at selection time.
	F float64
	// NewlyCovered is the number of tumor samples this combination covered
	// when chosen.
	NewlyCovered int
}

// String renders the combination as "SYM1+SYM2+SYM3 (F=0.93, covers 41)".
func (c Combo) String() string {
	return fmt.Sprintf("%s (F=%.4f, covers %d)",
		strings.Join(c.Symbols, "+"), c.F, c.NewlyCovered)
}

// Result is one cohort's discovery outcome.
type Result struct {
	// Cancer is the cohort's study code.
	Cancer string
	// Combos are the discovered combinations in greedy order.
	Combos []Combo
	// Covered and Uncoverable partition the tumor samples.
	Covered     int
	Uncoverable int
	// Evaluated is the number of combinations scored across iterations.
	Evaluated uint64
	// Engine is the resolved scan engine ("dense" or "sparse") —
	// provenance only; both engines return bit-identical combinations.
	Engine string
	// Elapsed is the discovery wall-clock time.
	Elapsed time.Duration
}

// Discover runs multi-hit discovery on a cohort.
func Discover(c *dataset.Cohort, opt cover.Options) (*Result, error) {
	res, err := cover.Run(c.Tumor, c.Normal, opt)
	if err != nil {
		return nil, fmt.Errorf("core: discovery on %s: %w", c.Spec.Code, err)
	}
	out := &Result{
		Cancer:      c.Spec.Code,
		Covered:     res.Covered,
		Uncoverable: res.Uncoverable,
		Evaluated:   res.Evaluated,
		Engine:      res.Options.Engine.String(),
		Elapsed:     res.Elapsed,
	}
	for _, step := range res.Steps {
		ids := step.Combo.GeneIDs()
		combo := Combo{GeneIDs: ids, F: step.Combo.F, NewlyCovered: step.NewlyCovered}
		for _, id := range ids {
			combo.Symbols = append(combo.Symbols, c.GeneSymbols[id])
		}
		out.Combos = append(out.Combos, combo)
	}
	return out, nil
}

// TrainTestResult is a trained classifier with its held-out evaluation.
type TrainTestResult struct {
	// Cancer is the cohort's study code.
	Cancer string
	// Training is the discovery outcome on the training split.
	Training *Result
	// Eval is the test-split classifier performance.
	Eval classify.Evaluation
	// TrainTumor, TestTumor, TrainNormal, TestNormal record split sizes.
	TrainTumor, TestTumor   int
	TrainNormal, TestNormal int
}

// TrainTest splits the cohort (trainFrac to training), discovers
// combinations on the training split, and evaluates the resulting
// classifier on the test split.
func TrainTest(c *dataset.Cohort, trainFrac float64, splitSeed int64, opt cover.Options) (*TrainTestResult, error) {
	train, test := c.Split(trainFrac, splitSeed)
	if test.Nt() == 0 || test.Nn() == 0 {
		return nil, fmt.Errorf("core: split left an empty test class for %s", c.Spec.Code)
	}
	disc, err := Discover(train, opt)
	if err != nil {
		return nil, err
	}
	if len(disc.Combos) == 0 {
		return nil, fmt.Errorf("core: no combinations discovered for %s", c.Spec.Code)
	}
	var ids [][]int
	for _, combo := range disc.Combos {
		ids = append(ids, combo.GeneIDs)
	}
	cls := classify.FromGeneIDs(ids)
	ev, err := cls.Evaluate(test.Tumor, test.Normal)
	if err != nil {
		return nil, err
	}
	return &TrainTestResult{
		Cancer:      c.Spec.Code,
		Training:    disc,
		Eval:        ev,
		TrainTumor:  train.Nt(),
		TestTumor:   test.Nt(),
		TrainNormal: train.Nn(),
		TestNormal:  test.Nn(),
	}, nil
}

// PanelResult aggregates a multi-cancer study.
type PanelResult struct {
	// PerCancer holds each cancer type's outcome in input order.
	PerCancer []*TrainTestResult
	// MeanSensitivity and MeanSpecificity average the per-cancer points.
	MeanSensitivity float64
	MeanSpecificity float64
	// TotalCombos is the number of combinations discovered across types.
	TotalCombos int
}

// PanelStudy runs TrainTest for every spec, scaling each gene universe to
// genesScale (the full 19 411-gene universe is not enumerable at h = 4 on a
// CPU; the paper needed 6 000 GPUs for that — see DESIGN.md). Seeds are
// derived per cancer type for reproducibility.
func PanelStudy(specs []dataset.Spec, genesScale int, seed int64, opt cover.Options) (*PanelResult, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("core: empty cancer panel")
	}
	out := &PanelResult{}
	var sens, spec []float64
	for i, s := range specs {
		scaled := s
		if genesScale > 0 {
			scaled = s.Scaled(genesScale)
		}
		cohort, err := dataset.Generate(scaled, seed+int64(i)*1000)
		if err != nil {
			return nil, err
		}
		tt, err := TrainTest(cohort, 0.75, seed+int64(i)*1000+1, opt)
		if err != nil {
			return nil, err
		}
		out.PerCancer = append(out.PerCancer, tt)
		out.TotalCombos += len(tt.Training.Combos)
		sens = append(sens, tt.Eval.Sensitivity.Point)
		spec = append(spec, tt.Eval.Specificity.Point)
	}
	out.MeanSensitivity = stats.Mean(sens)
	out.MeanSpecificity = stats.Mean(spec)
	return out, nil
}
