package core

import (
	"strings"
	"testing"

	"repro/internal/cover"
	"repro/internal/dataset"
)

func testSpec() dataset.Spec {
	return dataset.Spec{
		Code: "TST", Name: "test cohort", Genes: 50, TumorSamples: 160, NormalSamples: 140,
		Hits: 4, PlantedCombos: 3, DriverMutProb: 0.9,
		TumorBackground: 0.01, NormalBackground: 0.002,
		NoisyNormalFrac: 0.3, NoisyNormalRate: 0.3,
	}
}

func TestDiscoverAttachesSymbols(t *testing.T) {
	c, err := dataset.Generate(testSpec(), 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Discover(c, cover.Options{Hits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cancer != "TST" {
		t.Fatalf("cancer code %q", res.Cancer)
	}
	if len(res.Combos) == 0 {
		t.Fatal("no combinations discovered")
	}
	for _, combo := range res.Combos {
		if len(combo.GeneIDs) != 4 || len(combo.Symbols) != 4 {
			t.Fatalf("combo %+v malformed", combo)
		}
		for i, id := range combo.GeneIDs {
			if c.GeneSymbols[id] != combo.Symbols[i] {
				t.Fatalf("symbol mismatch for gene %d", id)
			}
		}
		if combo.NewlyCovered <= 0 {
			t.Fatal("combo with no coverage recorded")
		}
	}
	if res.Covered+res.Uncoverable != c.Nt() {
		t.Fatalf("covered %d + uncoverable %d != %d tumors",
			res.Covered, res.Uncoverable, c.Nt())
	}
	s := res.Combos[0].String()
	if !strings.Contains(s, "+") || !strings.Contains(s, "F=") {
		t.Fatalf("Combo.String() = %q", s)
	}
}

func TestDiscoverPropagatesErrors(t *testing.T) {
	c, err := dataset.Generate(testSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Discover(c, cover.Options{Hits: 7}); err == nil {
		t.Fatal("bad options accepted")
	}
}

func TestTrainTestSplitsAndEvaluates(t *testing.T) {
	c, err := dataset.Generate(testSpec(), 13)
	if err != nil {
		t.Fatal(err)
	}
	tt, err := TrainTest(c, 0.75, 5, cover.Options{Hits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if tt.TrainTumor+tt.TestTumor != c.Nt() {
		t.Fatal("tumor split sizes inconsistent")
	}
	if tt.TrainNormal+tt.TestNormal != c.Nn() {
		t.Fatal("normal split sizes inconsistent")
	}
	if tt.TrainTumor != 120 { // 160 × 0.75
		t.Fatalf("train tumors = %d, want 120", tt.TrainTumor)
	}
	// With planted drivers the classifier must clearly beat chance.
	if tt.Eval.Sensitivity.Point < 0.6 {
		t.Errorf("sensitivity %.2f too low", tt.Eval.Sensitivity.Point)
	}
	if tt.Eval.Specificity.Point < 0.7 {
		t.Errorf("specificity %.2f too low", tt.Eval.Specificity.Point)
	}
}

func TestPanelStudyAggregates(t *testing.T) {
	specs := dataset.FourHitCancers()[:3]
	res, err := PanelStudy(specs, 40, 42, cover.Options{Hits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PerCancer) != 3 {
		t.Fatalf("panel has %d entries", len(res.PerCancer))
	}
	if res.TotalCombos <= 0 {
		t.Fatal("no combos counted")
	}
	if res.MeanSensitivity <= 0 || res.MeanSensitivity > 1 {
		t.Fatalf("mean sensitivity %g", res.MeanSensitivity)
	}
	if res.MeanSpecificity <= 0 || res.MeanSpecificity > 1 {
		t.Fatalf("mean specificity %g", res.MeanSpecificity)
	}
	for i, tt := range res.PerCancer {
		if tt.Cancer != specs[i].Code {
			t.Fatalf("panel order mismatch at %d", i)
		}
	}
}

func TestPanelStudyEmpty(t *testing.T) {
	if _, err := PanelStudy(nil, 40, 1, cover.Options{Hits: 4}); err == nil {
		t.Fatal("empty panel accepted")
	}
}

func TestPanelStudyDeterministic(t *testing.T) {
	specs := dataset.FourHitCancers()[:2]
	a, err := PanelStudy(specs, 36, 7, cover.Options{Hits: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := PanelStudy(specs, 36, 7, cover.Options{Hits: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a.MeanSensitivity != b.MeanSensitivity || a.TotalCombos != b.TotalCombos {
		t.Fatal("panel study not deterministic")
	}
}
