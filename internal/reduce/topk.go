package reduce

import "sort"

// TopK accumulates the K best combinations under the same deterministic
// total order as the max reduction. Exploratory analyses often want the
// leading candidates per enumeration pass, not only the argmax the cover
// loop consumes; TopK generalizes every reduction stage to carry K
// records instead of one (at K = 1 it degenerates to Max).
//
// The accumulator is a bounded insertion buffer: Offer is O(K) in the
// worst case but O(1) for the common below-threshold case, which is the
// right trade for the K ≪ block-size regime the kernels run in.
type TopK struct {
	k     int
	items []Combo
}

// NewTopK returns an accumulator holding the best k records.
func NewTopK(k int) *TopK {
	if k <= 0 {
		panic("reduce: TopK needs k ≥ 1")
	}
	return &TopK{k: k}
}

// Offer considers one combination.
func (t *TopK) Offer(c Combo) {
	if c == None {
		return
	}
	n := len(t.items)
	if n == t.k && !c.Better(t.items[n-1]) {
		return // below the current cutoff
	}
	// Find insertion point (descending order, Better first).
	i := sort.Search(n, func(i int) bool { return c.Better(t.items[i]) })
	if n < t.k {
		t.items = append(t.items, Combo{})
	} else {
		n-- // drop the last
	}
	copy(t.items[i+1:], t.items[i:n])
	t.items[i] = c
}

// Merge folds another accumulator's contents in — the cross-worker (and
// cross-rank) combine step.
func (t *TopK) Merge(o *TopK) {
	for _, c := range o.items {
		t.Offer(c)
	}
}

// Items returns the accumulated records, best first. The slice aliases the
// accumulator.
func (t *TopK) Items() []Combo { return t.items }

// K returns the accumulator's capacity.
func (t *TopK) K() int { return t.k }
