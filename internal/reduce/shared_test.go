package reduce

import (
	"math/rand"
	"sync"
	"testing"
)

func TestSortKeyPreservesOrder(t *testing.T) {
	// Every score the engine produces is finite; None's sentinel is -1.
	vals := []float64{-1, -0.5, -0.0001, 0, 0.0001, 0.1, 0.5, 0.999, 1, 2}
	for i := 1; i < len(vals); i++ {
		if sortKey(vals[i-1]) >= sortKey(vals[i]) {
			t.Fatalf("sortKey(%g) = %#x not below sortKey(%g) = %#x",
				vals[i-1], sortKey(vals[i-1]), vals[i], sortKey(vals[i]))
		}
	}
	if sortKey(0) != sortKey(-0.0) {
		t.Fatal("±0 must share one key")
	}
}

func TestSharedBestStartsAtNone(t *testing.T) {
	s := NewSharedBest()
	if s.Best() != None {
		t.Fatalf("fresh incumbent is %v, want None", s.Best())
	}
	// No valid score (F ∈ [0, 1]) is strictly below None's -1, so a fresh
	// incumbent never prunes.
	for _, ub := range []float64{0, 0.5, 1} {
		if s.ShouldPrune(ub) {
			t.Fatalf("fresh incumbent prunes ub=%g", ub)
		}
	}
}

func TestSharedBestPruneIsStrict(t *testing.T) {
	s := NewSharedBest()
	s.Offer(NewCombo2(0.5, 3, 7))
	if !s.ShouldPrune(0.4999) {
		t.Error("ub strictly below the incumbent must prune")
	}
	if s.ShouldPrune(0.5) {
		t.Error("ub equal to the incumbent must NOT prune (tie-break)")
	}
	if s.ShouldPrune(0.6) {
		t.Error("ub above the incumbent must not prune")
	}
}

func TestSharedBestMonotoneAndTieBreak(t *testing.T) {
	s := NewSharedBest()
	hi := NewCombo2(0.7, 5, 9)
	s.Offer(hi)
	s.Offer(NewCombo2(0.3, 0, 1)) // worse F: ignored
	if got := s.Best(); got != hi {
		t.Fatalf("worse offer displaced incumbent: %v", got)
	}
	// Equal F, lexicographically smaller genes: Better prefers it, so the
	// incumbent must move however the offers are ordered.
	lo := NewCombo2(0.7, 2, 3)
	s.Offer(lo)
	want := lo
	if hi.Better(lo) {
		want = hi
	}
	if got := s.Best(); got != want {
		t.Fatalf("tie-break kept %v, want %v", got, want)
	}
	s2 := NewSharedBest()
	s2.Offer(lo)
	s2.Offer(hi)
	if s2.Best() != s.Best() {
		t.Fatalf("offer order changed the incumbent: %v vs %v", s2.Best(), s.Best())
	}
}

func TestSharedBestConcurrentOffersReduceToMax(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 4000
	combos := make([]Combo, n)
	for i := range combos {
		a := rng.Intn(500)
		combos[i] = NewCombo2(float64(rng.Intn(64))/64, a, a+1+rng.Intn(100))
	}
	want := Max(combos)

	s := NewSharedBest()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += 8 {
				s.Offer(combos[i])
				// A reader must never observe an incumbent whose bound
				// would prune the incumbent itself.
				if s.ShouldPrune(s.Best().F) {
					t.Errorf("incumbent strictly dominates itself")
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if got := s.Best(); got != want {
		t.Fatalf("concurrent fold got %v, want %v", got, want)
	}
	if s.ShouldPrune(want.F) || !s.ShouldPrune(want.F-0.001) {
		t.Fatal("final bound inconsistent with winner")
	}
}
