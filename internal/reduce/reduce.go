// Package reduce implements the multi-stage, multi-kernel max-F reduction
// of Sec. III-E.
//
// A naive 4-hit implementation would materialize one {gene₀…gene₃, F}
// record per combination — 20 bytes × C(G, 4) ≈ 24 terabytes for BRCA.
// The paper instead reduces in stages: the maxF kernel keeps one record per
// 512-thread block (24 TB → 47.5 GB), the parallelReduceMax kernel folds a
// GPU's blocks to a single record, each MPI rank returns one 20-byte record
// to rank 0, and rank 0 folds the per-rank records. Every stage is a max
// under the same total order, so the result is exactly the global argmax.
//
// Ties on F break toward the lexicographically smallest gene tuple, making
// every reduction topology — sequential scan, block-then-tree, tournament —
// return the identical record. That determinism is what lets the test suite
// assert parallel == sequential.
package reduce

import (
	"fmt"

	"repro/internal/failpoint"
)

// Combo is one candidate multi-hit combination and its weight: four int32
// gene ids plus a float32 F, 20 bytes — the struct the paper sizes its
// memory budget around. Unused gene slots (for h < 4) hold -1.
type Combo struct {
	// Genes holds the gene ids in strictly increasing order; trailing
	// unused slots are -1.
	Genes [4]int32
	// F is the weighted-set-cover score of the combination.
	F float64
}

// None is the identity element of the max reduction: no combination,
// F below every real score.
var None = Combo{Genes: [4]int32{-1, -1, -1, -1}, F: -1}

// NewCombo builds a Combo from 1–4 gene ids (already sorted ascending).
func NewCombo(f float64, genes ...int) Combo {
	if len(genes) == 0 || len(genes) > 4 {
		panic(fmt.Sprintf("reduce: NewCombo takes 1-4 genes, got %d", len(genes)))
	}
	c := Combo{Genes: [4]int32{-1, -1, -1, -1}, F: f}
	for i, g := range genes {
		if i > 0 && genes[i-1] >= g {
			panic(fmt.Sprintf("reduce: genes not strictly increasing: %v", genes))
		}
		c.Genes[i] = int32(g)
	}
	return c
}

// The fixed-arity constructors below are what the enumeration kernels
// call once per scored combination. Unlike the variadic NewCombo they are
// allocation-free: a variadic call site materializes a []int that escapes
// through NewCombo's diagnostic panic path, which would put one heap
// allocation on the innermost loop of every kernel.

// NewCombo2 builds a 2-hit Combo from genes a < b.
func NewCombo2(f float64, a, b int) Combo {
	if a >= b {
		panic("reduce: genes not strictly increasing")
	}
	return Combo{Genes: [4]int32{int32(a), int32(b), -1, -1}, F: f}
}

// NewCombo3 builds a 3-hit Combo from genes a < b < c.
func NewCombo3(f float64, a, b, c int) Combo {
	if a >= b || b >= c {
		panic("reduce: genes not strictly increasing")
	}
	return Combo{Genes: [4]int32{int32(a), int32(b), int32(c), -1}, F: f}
}

// NewCombo4 builds a 4-hit Combo from genes a < b < c < d.
func NewCombo4(f float64, a, b, c, d int) Combo {
	if a >= b || b >= c || c >= d {
		panic("reduce: genes not strictly increasing")
	}
	return Combo{Genes: [4]int32{int32(a), int32(b), int32(c), int32(d)}, F: f}
}

// String renders the combination as "[3 7 12 19] F=0.8342".
func (c Combo) String() string {
	return fmt.Sprintf("%v F=%.4f", c.GeneIDs(), c.F)
}

// Hits returns the number of genes in the combination.
func (c Combo) Hits() int {
	n := 0
	for _, g := range c.Genes {
		if g >= 0 {
			n++
		}
	}
	return n
}

// GeneIDs returns the used gene ids as a slice.
func (c Combo) GeneIDs() []int {
	ids := make([]int, 0, 4)
	for _, g := range c.Genes {
		if g >= 0 {
			ids = append(ids, int(g))
		}
	}
	return ids
}

// Better reports whether c should win the reduction against o: higher F, or
// equal F and lexicographically smaller gene tuple. None loses to every real
// combination.
func (c Combo) Better(o Combo) bool {
	if c.F != o.F {
		return c.F > o.F
	}
	for i := range c.Genes {
		a, b := c.Genes[i], o.Genes[i]
		if a == b {
			continue
		}
		// A real gene id beats the -1 filler; otherwise smaller id wins.
		if a == -1 {
			return false
		}
		if b == -1 {
			return true
		}
		return a < b
	}
	return false
}

// StrictlyAbove reports whether c's F strictly exceeds the given score.
// It exists so bound-and-prune callers outside this package can compare an
// F against an upper bound without writing a direct float comparison (the
// floatcompare analyzer reserves those for the canonical comparators
// here). Strictness matters: a combination that merely ties a bound could
// still lose the lexicographic tie-break to something under the bound.
func (c Combo) StrictlyAbove(score float64) bool {
	return c.F > score
}

// Max reduces a slice with a sequential scan — the ground-truth topology.
func Max(combos []Combo) Combo {
	best := None
	for _, c := range combos {
		if c.Better(best) {
			best = c
		}
	}
	return best
}

// BlockReduce performs the maxF kernel's single-stage in-block reduction:
// it folds each consecutive blockSize-sized block of records to one winner,
// returning ceil(len/blockSize) records. With blockSize = 512 this is the
// paper's 512× list compression.
func BlockReduce(combos []Combo, blockSize int) []Combo {
	if blockSize <= 0 {
		panic("reduce: block size must be positive")
	}
	if len(combos) == 0 {
		return nil
	}
	out := make([]Combo, 0, (len(combos)+blockSize-1)/blockSize)
	for lo := 0; lo < len(combos); lo += blockSize {
		hi := lo + blockSize
		if hi > len(combos) {
			hi = len(combos)
		}
		out = append(out, Max(combos[lo:hi]))
	}
	return out
}

// TreeReduce performs the parallelReduceMax kernel's multi-stage reduction:
// repeated pairwise halving, the topology a GPU executes across its block
// results. The result equals Max for any input order.
func TreeReduce(combos []Combo) Combo {
	if len(combos) == 0 {
		return None
	}
	buf := make([]Combo, len(combos))
	copy(buf, combos)
	return TreeReduceInPlace(buf)
}

// TreeReduceInPlace is TreeReduce without the defensive copy: the slice is
// folded in place. Callers that own the slice — the cover workers' reusable
// per-partition scratch — avoid one allocation per reduction.
func TreeReduceInPlace(buf []Combo) Combo {
	// Chaos hook into the real reduction path: an armed "reduce/tree"
	// failpoint panics or stalls here, where a crashed reduction rank
	// would (docs/ROBUSTNESS.md).
	failpoint.Hit("reduce/tree")
	if len(buf) == 0 {
		return None
	}
	for n := len(buf); n > 1; {
		half := (n + 1) / 2
		for i := 0; i < n/2; i++ {
			if buf[n-1-i].Better(buf[i]) {
				buf[i] = buf[n-1-i]
			}
		}
		n = half
	}
	return buf[0]
}

// Stages describes a full multi-stage reduction for reporting: the record
// counts surviving each stage.
type Stages struct {
	// Combinations is the number of candidate records before any reduction
	// (one per thread in the 3x1 scheme: each thread already folds its own
	// inner loop, so the pre-block list has C(G, 3) entries — the paper's
	// 1.22e12-entry, 24.34 TB BRCA list).
	Combinations uint64
	// AfterBlock is the per-block survivor count (one per block).
	AfterBlock uint64
	// AfterDevice is the per-GPU survivor count (one per device).
	AfterDevice uint64
	// AfterRank is the per-MPI-rank survivor count (one per rank).
	AfterRank uint64
}

// PlanStages computes the survivor counts for a problem with the given
// pre-reduction record count, block size, devices and ranks — the
// arithmetic behind the paper's 24.3 TB → 47.5 GB → 20 bytes/rank
// narrative.
func PlanStages(records uint64, blockSize, devices, ranks int) Stages {
	if blockSize <= 0 || devices <= 0 || ranks <= 0 {
		panic("reduce: PlanStages arguments must be positive")
	}
	blocks := (records + uint64(blockSize) - 1) / uint64(blockSize)
	return Stages{
		Combinations: records,
		AfterBlock:   blocks,
		AfterDevice:  uint64(devices),
		AfterRank:    uint64(ranks),
	}
}

// BytesPerRecord is the size of one Combo as laid out by the paper's CUDA
// struct (4 × int32 + float32).
const BytesPerRecord = 20

// Bytes returns the storage the given record count occupies at the paper's
// 20-byte record size.
func Bytes(records uint64) uint64 { return records * BytesPerRecord }
