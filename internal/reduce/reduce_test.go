package reduce

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func randomCombos(rng *rand.Rand, n int) []Combo {
	out := make([]Combo, n)
	for i := range out {
		g := rng.Perm(1000)[:4]
		// Sort the four ids.
		for a := 1; a < 4; a++ {
			for b := a; b > 0 && g[b] < g[b-1]; b-- {
				g[b], g[b-1] = g[b-1], g[b]
			}
		}
		// Coarse quantization forces plenty of F ties.
		f := float64(rng.Intn(50)) / 50
		out[i] = NewCombo(f, g...)
	}
	return out
}

func TestNewComboValidation(t *testing.T) {
	c := NewCombo(0.5, 3, 7)
	if c.Hits() != 2 || c.Genes[2] != -1 {
		t.Fatal("2-gene combo malformed")
	}
	if ids := c.GeneIDs(); len(ids) != 2 || ids[0] != 3 || ids[1] != 7 {
		t.Fatalf("GeneIDs = %v", ids)
	}
	for i, fn := range []func(){
		func() { NewCombo(0.5) },
		func() { NewCombo(0.5, 1, 2, 3, 4, 5) },
		func() { NewCombo(0.5, 2, 2) },
		func() { NewCombo(0.5, 5, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestBetterOrdering(t *testing.T) {
	a := NewCombo(0.9, 1, 2, 3, 4)
	b := NewCombo(0.8, 0, 1, 2, 3)
	if !a.Better(b) || b.Better(a) {
		t.Fatal("higher F must win")
	}
	// Equal F: lexicographically smaller genes win.
	c := NewCombo(0.9, 1, 2, 3, 5)
	if !a.Better(c) || c.Better(a) {
		t.Fatal("tie must break to smaller gene tuple")
	}
	// Everything beats None; None never beats anything.
	if !a.Better(None) || None.Better(a) {
		t.Fatal("None ordering wrong")
	}
	if a.Better(a) {
		t.Fatal("a combo must not beat itself")
	}
	// Shorter combos: a 2-hit combo with equal F and equal prefix loses to
	// a 3-hit with smaller... the real gene beats the -1 filler.
	short := NewCombo(0.9, 1, 2)
	long := NewCombo(0.9, 1, 2, 3)
	if !long.Better(short) || short.Better(long) {
		t.Fatal("longer combo with equal prefix should win over filler")
	}
}

func TestBetterIsStrictTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cs := randomCombos(rng, 3)
		a, b, c := cs[0], cs[1], cs[2]
		// Antisymmetry.
		if a.Better(b) && b.Better(a) {
			return false
		}
		// Transitivity.
		if a.Better(b) && b.Better(c) && !a.Better(c) && a != c {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMaxEmpty(t *testing.T) {
	if Max(nil) != None {
		t.Fatal("Max of empty slice should be None")
	}
}

func TestAllTopologiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(3000)
		combos := randomCombos(rng, n)
		want := Max(combos)
		if got := TreeReduce(combos); got != want {
			t.Fatalf("TreeReduce = %+v, want %+v", got, want)
		}
		for _, bs := range []int{1, 7, 512, n, n + 100} {
			blocks := BlockReduce(combos, bs)
			if got := Max(blocks); got != want {
				t.Fatalf("BlockReduce(%d)+Max = %+v, want %+v", bs, got, want)
			}
			if got := TreeReduce(blocks); got != want {
				t.Fatalf("BlockReduce(%d)+TreeReduce = %+v, want %+v", bs, got, want)
			}
		}
	}
}

func TestBlockReduceCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	combos := randomCombos(rng, 1100)
	out := BlockReduce(combos, 512)
	if len(out) != 3 { // ceil(1100/512)
		t.Fatalf("BlockReduce produced %d blocks, want 3", len(out))
	}
	if BlockReduce(nil, 512) != nil {
		t.Fatal("BlockReduce of empty input should be nil")
	}
}

func TestBlockReducePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("BlockReduce with block size 0 did not panic")
		}
	}()
	BlockReduce(randomCombos(rand.New(rand.NewSource(5)), 4), 0)
}

func TestPlanStagesPaperNumbers(t *testing.T) {
	// BRCA, Sec. III-E: one record per 3x1 thread is a list of
	// C(19411, 3) ≈ 1.22e12 entries = 24.34 TB at 20 bytes each; the
	// in-block reduction at block size 512 compresses it to 47.5 GB.
	var threads uint64 = 19411 * 19410 / 2 * 19409 / 3 // C(19411,3)
	if threads < 1.21e12 || threads > 1.23e12 {
		t.Fatalf("thread count %d outside the paper's 1.22e12", threads)
	}
	s := PlanStages(threads, 512, 6000, 1000)
	if tb := float64(Bytes(s.Combinations)) / 1e12; tb < 24.0 || tb > 24.7 {
		t.Fatalf("pre-reduction list = %.2f TB, paper says 24.34 TB", tb)
	}
	if gb := float64(Bytes(s.AfterBlock)) / 1e9; gb < 47.0 || gb > 48.0 {
		t.Fatalf("block-survivor list = %.2f GB, paper says 47.5 GB", gb)
	}
	if s.AfterDevice != 6000 || s.AfterRank != 1000 {
		t.Fatal("device/rank survivor counts wrong")
	}
	if Bytes(s.AfterRank) != 20000 {
		t.Fatal("rank-0 receives 20 bytes per rank")
	}
}

func TestPlanStagesPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("PlanStages with zero ranks did not panic")
		}
	}()
	PlanStages(100, 512, 6, 0)
}

func BenchmarkMax100k(b *testing.B) {
	combos := randomCombos(rand.New(rand.NewSource(6)), 100000)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		Max(combos)
	}
}

func BenchmarkBlockThenTree100k(b *testing.B) {
	combos := randomCombos(rand.New(rand.NewSource(7)), 100000)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		TreeReduce(BlockReduce(combos, 512))
	}
}
