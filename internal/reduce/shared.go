package reduce

import (
	"math"
	"sync"
	"sync/atomic"
)

// SharedBest is a process-wide incumbent for bound-and-prune enumeration:
// the best combination any worker has scored so far, readable during the
// scan. It mirrors the paper's multi-stage reduction — every worker still
// folds its own partition and the partition winners still tree-reduce —
// but additionally publishes a monotonically rising F bound that the
// kernels consult before descending into an inner loop. Because the F
// score is monotone under AND (folding more gene rows can only shrink TP
// and normal hits), a prefix whose upper bound falls strictly below the
// incumbent cannot contain the argmax and may be skipped wholesale.
//
// The bound is stored as a total-order-preserving bit cast of the float64
// (see sortKey), so raising it is a single atomic max and reading it is a
// single atomic load — the fast path adds one load per prune check and no
// locking. The full Combo payload (needed for the tie-break) sits behind a
// mutex that is only taken when a worker actually improves on the bound,
// which happens O(log) times per scan, not O(combinations).
//
// Determinism: pruning consults the bound with a STRICT comparison
// (ShouldPrune), so a subtree is skipped only when every combination in it
// scores strictly below the incumbent's F. Equal-F combinations are never
// skipped — they must still be enumerated so the lexicographic tie-break
// of Better resolves identically however the scan is partitioned or
// interleaved. The shared bound therefore changes how much work a scan
// does, never which combination it returns.
type SharedBest struct {
	// bound is sortKey(best.F): the incumbent's F in a monotonically
	// comparable uint64 encoding.
	bound atomic.Uint64
	mu    sync.Mutex
	best  Combo
}

// sortKey maps a float64 to a uint64 whose unsigned order matches the
// float's numeric order (for all non-NaN values): non-negative floats get
// the sign bit set, negative floats are bitwise inverted. F scores are
// finite — None's is -1 — so the encoding is total here.
func sortKey(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// NewSharedBest returns an incumbent holding None (F = -1), which no real
// score falls below — the first combination offered always lands.
func NewSharedBest() *SharedBest {
	s := &SharedBest{best: None}
	s.bound.Store(sortKey(None.F))
	return s
}

// Offer raises the incumbent to c if c wins under Better. Calls that
// cannot win on F alone return after one atomic load; ties on F take the
// lock so the lexicographic tie-break is applied under mutual exclusion.
func (s *SharedBest) Offer(c Combo) {
	if sortKey(c.F) < s.bound.Load() {
		return
	}
	s.mu.Lock()
	if c.Better(s.best) {
		s.best = c
		s.bound.Store(sortKey(c.F))
	}
	s.mu.Unlock()
}

// ShouldPrune reports whether a subtree whose scores are all ≤ ub is
// strictly dominated by the incumbent. The comparison is strict: a
// subtree that could tie the incumbent's F must still be enumerated,
// because one of its combinations might win the lexicographic tie-break.
func (s *SharedBest) ShouldPrune(ub float64) bool {
	return sortKey(ub) < s.bound.Load()
}

// BoundKey returns a snapshot of the incumbent bound in its sortKey
// encoding, for callers that take many prune decisions against one
// consistent bound (the sparse engine's merge-threshold search): compare
// SortKey(ub) < BoundKey() — exactly ShouldPrune against the snapshot —
// without an atomic load per probe. The bound only rises, so a snapshot
// is always a valid (possibly slightly stale) incumbent: staleness can
// only under-prune, never skip a winner.
func (s *SharedBest) BoundKey() uint64 {
	return s.bound.Load()
}

// SortKey exposes the order-preserving float encoding BoundKey uses.
func SortKey(f float64) uint64 { return sortKey(f) }

// Best returns the current incumbent.
func (s *SharedBest) Best() Combo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.best
}

// SharedBound is the F-only sibling of SharedBest for kernels whose
// combination payload is not a Combo (the 5-hit scan's Combo5 lives in
// package cover). It publishes only the monotonically rising F bound —
// the tie-breaking payload stays in the worker-local fold — so Offer is
// a lock-free atomic max and ShouldPrune a single load. The same strict
// comparison discipline as SharedBest applies: equal-F subtrees are
// never skipped, so pruning changes work done, never the winner.
type SharedBound struct {
	bound atomic.Uint64
}

// NewSharedBound returns a bound holding F = -1, below every real score.
func NewSharedBound() *SharedBound {
	s := &SharedBound{}
	s.bound.Store(sortKey(-1))
	return s
}

// Offer raises the bound to f if it improves it (atomic max).
func (s *SharedBound) Offer(f float64) {
	k := sortKey(f)
	for {
		cur := s.bound.Load()
		if k <= cur {
			return
		}
		if s.bound.CompareAndSwap(cur, k) {
			return
		}
	}
}

// ShouldPrune reports whether a subtree whose scores are all ≤ ub is
// strictly below the bound; strict, so tie-breaks survive pruning.
func (s *SharedBound) ShouldPrune(ub float64) bool {
	return sortKey(ub) < s.bound.Load()
}
