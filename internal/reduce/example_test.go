package reduce_test

import (
	"fmt"

	"repro/internal/reduce"
)

// The multi-stage reduction: block-level survivors feed a tree reduction;
// any topology returns the same winner under the deterministic order.
func ExampleBlockReduce() {
	combos := []reduce.Combo{
		reduce.NewCombo(0.71, 1, 2, 3, 4),
		reduce.NewCombo(0.93, 5, 6, 7, 8),
		reduce.NewCombo(0.88, 0, 9, 10, 11),
		reduce.NewCombo(0.93, 2, 6, 7, 8), // ties on F; smaller tuple wins
	}
	blocks := reduce.BlockReduce(combos, 2) // two 2-wide blocks
	best := reduce.TreeReduce(blocks)
	fmt.Println(len(blocks), best)
	// Output:
	// 2 [2 6 7 8] F=0.9300
}

// PlanStages reproduces the paper's Sec. III-E memory arithmetic.
func ExamplePlanStages() {
	const threads = 1_218_780_100_265 // C(19411, 3)
	s := reduce.PlanStages(threads, 512, 6000, 1000)
	fmt.Printf("%.2f TB -> %.1f GB -> %d B at rank 0\n",
		float64(reduce.Bytes(s.Combinations))/1e12,
		float64(reduce.Bytes(s.AfterBlock))/1e9,
		reduce.Bytes(s.AfterRank))
	// Output:
	// 24.38 TB -> 47.6 GB -> 20000 B at rank 0
}
