// Package report renders the reproduction's tables and series as aligned
// plain text, the form in which cmd/benchreport regenerates every figure
// and table of the paper for EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled, column-aligned text table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// Add appends a row; it panics if the cell count does not match the header.
func (t *Table) Add(cells ...string) {
	if len(cells) != len(t.Columns) {
		panic(fmt.Sprintf("report: row has %d cells, table has %d columns",
			len(cells), len(t.Columns)))
	}
	t.Rows = append(t.Rows, cells)
}

// Addf appends a row of formatted values: each value is rendered with %v
// for strings/ints and %.4g for floats.
func (t *Table) Addf(values ...any) {
	cells := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			cells[i] = fmt.Sprintf("%.4g", x)
		case float32:
			cells[i] = fmt.Sprintf("%.4g", x)
		default:
			cells[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Add(cells...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "**%s**\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		b.WriteString("|")
		for _, c := range cells {
			b.WriteString(" " + c + " |")
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a titled (x, y) sequence rendered as rows plus a sparkline.
type Series struct {
	Title  string
	XLabel string
	YLabel string
	X, Y   []float64
}

// String renders up to 40 evenly sampled points and a sparkline overview.
func (s Series) String() string {
	var b strings.Builder
	if s.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", s.Title)
	}
	fmt.Fprintf(&b, "%s vs %s (%d points)\n", s.YLabel, s.XLabel, len(s.Y))
	if len(s.Y) == 0 {
		return b.String()
	}
	fmt.Fprintf(&b, "spark: %s\n", Sparkline(s.Y, 60))
	n := len(s.Y)
	step := 1
	if n > 40 {
		step = (n + 39) / 40
	}
	for i := 0; i < n; i += step {
		x := float64(i)
		if i < len(s.X) {
			x = s.X[i]
		}
		fmt.Fprintf(&b, "  %-12.6g %.6g\n", x, s.Y[i])
	}
	return b.String()
}

// Sparkline renders values as a fixed-width unicode mini-chart.
func Sparkline(ys []float64, width int) string {
	if len(ys) == 0 || width <= 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	min, max := ys[0], ys[0]
	for _, y := range ys {
		if y < min {
			min = y
		}
		if y > max {
			max = y
		}
	}
	if width > len(ys) {
		width = len(ys)
	}
	var b strings.Builder
	for i := 0; i < width; i++ {
		// Sample the bucket's mean.
		lo := i * len(ys) / width
		hi := (i + 1) * len(ys) / width
		if hi == lo {
			hi = lo + 1
		}
		sum := 0.0
		for _, y := range ys[lo:hi] {
			sum += y
		}
		v := sum / float64(hi-lo)
		idx := 0
		if max > min {
			idx = int((v - min) / (max - min) * float64(len(levels)-1))
		}
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		b.WriteRune(levels[idx])
	}
	return b.String()
}
