package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Scaling", "nodes", "runtime", "efficiency")
	tb.Add("100", "10254.7", "1.000")
	tb.Add("1000", "1211.7", "0.846")
	out := tb.String()
	if !strings.Contains(out, "== Scaling ==") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "nodes") || !strings.Contains(out, "0.846") {
		t.Errorf("table content missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("table has %d lines:\n%s", len(lines), out)
	}
	// Columns align: header and rows share the first column width.
	if !strings.HasPrefix(lines[3], "100 ") {
		t.Errorf("row not aligned: %q", lines[3])
	}
}

func TestTableAddPanicsOnArity(t *testing.T) {
	tb := NewTable("x", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tb.Add("only-one")
}

func TestTableAddf(t *testing.T) {
	tb := NewTable("x", "a", "b", "c")
	tb.Addf("s", 42, 0.123456)
	if tb.Rows[0][2] != "0.1235" {
		t.Fatalf("Addf float formatting = %q", tb.Rows[0][2])
	}
	if tb.Rows[0][1] != "42" {
		t.Fatalf("Addf int formatting = %q", tb.Rows[0][1])
	}
}

func TestSeriesRendering(t *testing.T) {
	s := Series{
		Title:  "Workload",
		XLabel: "thread",
		YLabel: "combinations",
		X:      []float64{0, 1, 2, 3},
		Y:      []float64{10, 7, 4, 1},
	}
	out := s.String()
	if !strings.Contains(out, "Workload") || !strings.Contains(out, "spark:") {
		t.Errorf("series output missing pieces:\n%s", out)
	}
	empty := Series{YLabel: "y", XLabel: "x"}
	if out := empty.String(); !strings.Contains(out, "(0 points)") {
		t.Errorf("empty series output:\n%s", out)
	}
}

func TestSeriesSamplesLongInput(t *testing.T) {
	ys := make([]float64, 1000)
	for i := range ys {
		ys[i] = float64(i)
	}
	s := Series{Y: ys, XLabel: "i", YLabel: "v"}
	lines := strings.Count(s.String(), "\n")
	if lines > 50 {
		t.Fatalf("long series rendered %d lines — should sample", lines)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil, 10) != "" {
		t.Error("empty sparkline should be empty")
	}
	got := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 8)
	if got != "▁▂▃▄▅▆▇█" {
		t.Errorf("ramp sparkline = %q", got)
	}
	flat := Sparkline([]float64{5, 5, 5}, 3)
	if flat != "▁▁▁" {
		t.Errorf("flat sparkline = %q", flat)
	}
	// Width larger than data clamps.
	if got := Sparkline([]float64{1, 2}, 100); len([]rune(got)) != 2 {
		t.Errorf("clamped sparkline = %q", got)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := NewTable("Scaling", "nodes", "eff")
	tb.Add("100", "1.0")
	out := tb.Markdown()
	if !strings.Contains(out, "**Scaling**") {
		t.Error("missing bold title")
	}
	if !strings.Contains(out, "| nodes | eff |") || !strings.Contains(out, "| --- | --- |") {
		t.Errorf("markdown structure wrong:\n%s", out)
	}
	if !strings.Contains(out, "| 100 | 1.0 |") {
		t.Errorf("row missing:\n%s", out)
	}
}
