package sparsemat

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
)

// randomBitmat builds a seeded genes×samples matrix with the given
// per-bit density.
func randomBitmat(t testing.TB, rng *rand.Rand, genes, samples int, density float64) *bitmat.Matrix {
	t.Helper()
	m := bitmat.New(genes, samples)
	for g := 0; g < genes; g++ {
		for s := 0; s < samples; s++ {
			if rng.Float64() < density {
				m.Set(g, s)
			}
		}
	}
	return m
}

func TestFromBitmatRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, density := range []float64{0, 0.01, 0.1, 0.5, 1.0} {
		m := randomBitmat(t, rng, 37, 203, density)
		sm := FromBitmat(m)
		if sm.Genes() != m.Genes() || sm.Samples() != m.Samples() {
			t.Fatalf("shape mismatch: %dx%d vs %dx%d", sm.Genes(), sm.Samples(), m.Genes(), m.Samples())
		}
		nnz := 0
		for g := 0; g < m.Genes(); g++ {
			row := sm.Row(g)
			if len(row) != m.RowPopCount(g) {
				t.Fatalf("density %v row %d: len %d want popcount %d", density, g, len(row), m.RowPopCount(g))
			}
			nnz += len(row)
			prev := int32(-1)
			for _, s := range row {
				if s <= prev {
					t.Fatalf("row %d not strictly sorted: %d after %d", g, s, prev)
				}
				prev = s
				if !m.Get(g, int(s)) {
					t.Fatalf("row %d has spurious sample %d", g, s)
				}
			}
		}
		if sm.NNZ() != nnz {
			t.Fatalf("NNZ %d want %d", sm.NNZ(), nnz)
		}
		want := float64(nnz) / float64(m.Genes()*m.Samples())
		if got := sm.Density(); got != want {
			t.Fatalf("Density %v want %v", got, want)
		}
	}
}

func TestMaxRowLen(t *testing.T) {
	m := bitmat.New(3, 100)
	for s := 0; s < 17; s++ {
		m.Set(1, s*3)
	}
	m.Set(2, 99)
	sm := FromBitmat(m)
	if got := sm.MaxRowLen(); got != 17 {
		t.Fatalf("MaxRowLen %d want 17", got)
	}
}

// oracleCount computes |rows a ∩ b| through the dense path.
func oracleCount(m *bitmat.Matrix, a, b int) int {
	dst := make([]uint64, m.Words())
	return bitmat.AndWordsPop(dst, m.Row(a), m.Row(b))
}

func TestIntersectAgainstDenseOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, density := range []float64{0.005, 0.05, 0.3, 0.9} {
		m := randomBitmat(t, rng, 24, 517, density)
		sm := FromBitmat(m)
		dst := make([]int32, 517)
		for a := 0; a < m.Genes(); a++ {
			for b := a; b < m.Genes(); b++ {
				want := oracleCount(m, a, b)
				if got := IntersectCount(sm.Row(a), sm.Row(b)); got != want {
					t.Fatalf("density %v (%d,%d): IntersectCount %d want %d", density, a, b, got, want)
				}
				out := IntersectInto(dst, sm.Row(a), sm.Row(b))
				if len(out) != want {
					t.Fatalf("density %v (%d,%d): IntersectInto len %d want %d", density, a, b, len(out), want)
				}
				for i, s := range out {
					if !m.Get(a, int(s)) || !m.Get(b, int(s)) {
						t.Fatalf("(%d,%d): spurious element %d at %d", a, b, s, i)
					}
					if i > 0 && out[i-1] >= s {
						t.Fatalf("(%d,%d): output not sorted", a, b)
					}
				}
			}
		}
	}
}

func TestIntersectGallopImbalance(t *testing.T) {
	// One tiny list against one huge list exercises the galloping path;
	// results must match the linear merge exactly.
	rng := rand.New(rand.NewSource(7))
	long := make([]int32, 0, 4000)
	for s := int32(0); s < 8000; s += 2 {
		if rng.Float64() < 0.9 {
			long = append(long, s)
		}
	}
	short := []int32{1, 2, 4, 4093, 7998, 7999}
	want := 0
	for _, v := range short {
		for _, w := range long {
			if v == w {
				want++
			}
		}
	}
	if got := IntersectCount(short, long); got != want {
		t.Fatalf("gallop count %d want %d", got, want)
	}
	if got := IntersectCount(long, short); got != want {
		t.Fatalf("gallop count (swapped) %d want %d", got, want)
	}
	dst := make([]int32, len(short))
	if out := IntersectInto(dst, short, long); len(out) != want {
		t.Fatalf("gallop into %d want %d", len(out), want)
	}
}

func TestIntersectCountWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m := randomBitmat(t, rng, 10, 300, 0.2)
	sm := FromBitmat(m)
	w := make([]int32, 300)
	for i := range w {
		w[i] = int32(1 + rng.Intn(5))
	}
	dst := make([]int32, 300)
	for a := 0; a < m.Genes(); a++ {
		for b := a; b < m.Genes(); b++ {
			out := IntersectInto(dst, sm.Row(a), sm.Row(b))
			want := 0
			for _, s := range out {
				want += int(w[s])
			}
			if got := IntersectCountWeighted(sm.Row(a), sm.Row(b), w); got != want {
				t.Fatalf("(%d,%d): weighted %d want %d", a, b, got, want)
			}
			if got := CountWeighted(out, w); got != want {
				t.Fatalf("(%d,%d): CountWeighted %d want %d", a, b, got, want)
			}
		}
	}
	// Weighted galloping path.
	long := sm.Row(0)
	short := long[:min(2, len(long))]
	want := 0
	for _, s := range short {
		want += int(w[s])
	}
	if len(long) >= gallopRatio*len(short) && len(short) > 0 {
		if got := IntersectCountWeighted(short, long, w); got != want {
			t.Fatalf("weighted gallop %d want %d", got, want)
		}
	}
}

func TestFilterMask(t *testing.T) {
	v := bitmat.NewVec(130)
	keepEven := func(s int) bool { return s%2 == 0 }
	for s := 0; s < 130; s++ {
		if keepEven(s) {
			v.Set(s)
		}
	}
	a := []int32{0, 1, 2, 63, 64, 65, 128, 129}
	dst := make([]int32, len(a))
	out := FilterMask(dst, a, v.Words())
	want := []int32{0, 2, 64, 128}
	if len(out) != len(want) {
		t.Fatalf("FilterMask len %d want %d", len(out), len(want))
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("FilterMask[%d] = %d want %d", i, out[i], want[i])
		}
	}
}

func TestIntersectIntoMaskMin(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	m := randomBitmat(t, rng, 16, 400, 0.15)
	sm := FromBitmat(m)
	mask := bitmat.NewVec(400)
	for s := 0; s < 400; s++ {
		if rng.Float64() < 0.6 {
			mask.Set(s)
		}
	}
	dst := make([]int32, 400)
	scratch := make([]int32, 400)
	for a := 0; a < m.Genes(); a++ {
		for b := a; b < m.Genes(); b++ {
			full := IntersectInto(scratch, sm.Row(a), sm.Row(b))
			unmaskedLen := len(full)
			masked := 0
			for _, s := range full {
				if mask.Get(int(s)) {
					masked++
				}
			}
			for _, minCount := range []int{0, 1, unmaskedLen, unmaskedLen + 1, unmaskedLen + 50} {
				out, ok := IntersectIntoMaskMin(dst, sm.Row(a), sm.Row(b), mask.Words(), minCount)
				if !ok {
					// Short-circuit is only allowed when the masked
					// intersection cannot reach minCount.
					if masked >= minCount {
						t.Fatalf("(%d,%d) minCount=%d: short-circuited but masked size is %d", a, b, minCount, masked)
					}
					continue
				}
				if len(out) != masked {
					t.Fatalf("(%d,%d) minCount=%d: len %d want %d", a, b, minCount, len(out), masked)
				}
			}
			// minCount above the full size must short-circuit (or complete
			// with a count the caller will reject); it must never fabricate
			// elements.
			out, ok := IntersectIntoMaskMin(dst, sm.Row(a), sm.Row(b), nil, unmaskedLen+1)
			if ok && len(out) > unmaskedLen {
				t.Fatalf("(%d,%d): impossible count %d > %d", a, b, len(out), unmaskedLen)
			}
		}
	}
}

func TestGallopTo(t *testing.T) {
	b := []int32{2, 4, 4, 8, 16, 32, 64, 128}
	cases := []struct {
		from int
		v    int32
		want int
	}{
		{0, 0, 0}, {0, 2, 0}, {0, 3, 1}, {0, 5, 3}, {0, 128, 7}, {0, 129, 8},
		{3, 2, 3}, {5, 64, 6}, {8, 1, 8},
	}
	for _, c := range cases {
		if got := gallopTo(b, c.from, c.v); got != c.want {
			t.Fatalf("gallopTo(from=%d, v=%d) = %d want %d", c.from, c.v, got, c.want)
		}
	}
}

// FuzzSparseIntersect pins every sparse intersection primitive to the
// dense bitmat.AndWordsPop oracle on arbitrary bit patterns.
func FuzzSparseIntersect(f *testing.F) {
	f.Add([]byte{0xff, 0x00, 0x13}, []byte{0x0f, 0xf0, 0x13}, 3)
	f.Add([]byte{}, []byte{0x01}, 0)
	f.Add([]byte{0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa, 0xaa},
		[]byte{0x55, 0xff}, 1)
	f.Fuzz(func(t *testing.T, ab, bb []byte, minCount int) {
		const maxBytes = 512
		if len(ab) > maxBytes {
			ab = ab[:maxBytes]
		}
		if len(bb) > maxBytes {
			bb = bb[:maxBytes]
		}
		samples := 8 * maxBytes
		m := bitmat.New(2, samples)
		for i, byteVal := range ab {
			for bit := 0; bit < 8; bit++ {
				if byteVal>>uint(bit)&1 == 1 {
					m.Set(0, i*8+bit)
				}
			}
		}
		for i, byteVal := range bb {
			for bit := 0; bit < 8; bit++ {
				if byteVal>>uint(bit)&1 == 1 {
					m.Set(1, i*8+bit)
				}
			}
		}
		sm := FromBitmat(m)
		want := oracleCount(m, 0, 1)
		if got := IntersectCount(sm.Row(0), sm.Row(1)); got != want {
			t.Fatalf("IntersectCount %d want %d", got, want)
		}
		dst := make([]int32, samples)
		out := IntersectInto(dst, sm.Row(0), sm.Row(1))
		if len(out) != want {
			t.Fatalf("IntersectInto len %d want %d", len(out), want)
		}
		for _, s := range out {
			if !m.Get(0, int(s)) || !m.Get(1, int(s)) {
				t.Fatalf("spurious element %d", s)
			}
		}
		w := make([]int32, samples)
		for i := range w {
			w[i] = int32(i%3 + 1)
		}
		wantW := 0
		for _, s := range out {
			wantW += int(w[s])
		}
		if got := IntersectCountWeighted(sm.Row(0), sm.Row(1), w); got != wantW {
			t.Fatalf("IntersectCountWeighted %d want %d", got, wantW)
		}
		if minCount < 0 {
			minCount = -minCount
		}
		minCount %= samples + 2
		got, ok := IntersectIntoMaskMin(dst, sm.Row(0), sm.Row(1), nil, minCount)
		if !ok && want >= minCount {
			t.Fatalf("short-circuit at minCount=%d but |a∩b|=%d", minCount, want)
		}
		if ok && len(got) != want {
			t.Fatalf("MaskMin len %d want %d", len(got), want)
		}
	})
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
