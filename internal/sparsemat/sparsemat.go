// Package sparsemat implements the sparse counterpart of internal/bitmat:
// a per-gene sorted-sample-index (CSR-style) representation of the same
// gene×sample mutation matrix, plus the intersection kernels the sparse
// scan engine in internal/cover is built on.
//
// Real mutation matrices are extremely sparse — a typical gene row is
// mutated in a few percent of samples — so the dense word sweep pays for
// S/64 words per AND even when almost every word is zero. The sparse path
// stores, per gene, the sorted []int32 of sample columns that carry a
// mutation (one flat backing array, one offset per row), and evaluates a
// combination by merging those lists. A depth-d prefix intersection
// shrinks multiplicatively (≈ densityᵈ·S elements), so the innermost loop
// of a scan touches O(|prefix|) entries instead of O(S/64) words — the
// order-of-magnitude lever the sparsity-driven follow-on work to the
// source paper identifies (see docs/SPARSE.md).
//
// The kernels never materialize bit words: they return intersection sizes
// (optionally weighted by per-column multiplicities, for kernelized
// instances) and can short-circuit a merge as soon as the running count
// plus the remaining potential falls below a caller-supplied minimum —
// the hook internal/cover uses to stop folding a prefix the moment it can
// no longer beat the shared incumbent's prune bound.
package sparsemat

import (
	"fmt"
	"math/bits"

	"repro/internal/bitmat"
)

// Matrix is the CSR-style sparse view of a gene×sample bit matrix: row g's
// sorted sample indices live in idx[rowStart[g]:rowStart[g+1]]. The zero
// value is not usable; construct with FromBitmat.
type Matrix struct {
	genes   int
	samples int
	// rowStart has genes+1 entries; idx is the flat backing array of
	// sorted sample columns, one contiguous run per gene row.
	rowStart []int
	idx      []int32
}

// FromBitmat builds the sparse representation of a packed bit matrix in
// one pass over its words. The result shares nothing with the input.
func FromBitmat(m *bitmat.Matrix) *Matrix {
	g := m.Genes()
	sm := &Matrix{
		genes:    g,
		samples:  m.Samples(),
		rowStart: make([]int, g+1),
	}
	nnz := 0
	for i := 0; i < g; i++ {
		nnz += m.RowPopCount(i)
	}
	sm.idx = make([]int32, nnz)
	pos := 0
	for i := 0; i < g; i++ {
		sm.rowStart[i] = pos
		for w, word := range m.Row(i) {
			base := int32(w * bitmat.WordBits)
			for word != 0 {
				sm.idx[pos] = base + int32(bits.TrailingZeros64(word))
				pos++
				word &= word - 1
			}
		}
	}
	sm.rowStart[g] = pos
	return sm
}

// Genes returns the number of rows.
func (m *Matrix) Genes() int { return m.genes }

// Samples returns the number of logical columns.
func (m *Matrix) Samples() int { return m.samples }

// NNZ returns the total number of stored indices (set bits).
func (m *Matrix) NNZ() int { return len(m.idx) }

// Density returns NNZ divided by the genes×samples capacity, the
// set-bit fraction the Auto engine heuristic keys on.
func (m *Matrix) Density() float64 {
	if m.genes == 0 || m.samples == 0 {
		return 0
	}
	return float64(len(m.idx)) / (float64(m.genes) * float64(m.samples))
}

// MaxRowLen returns the length of the longest row — the scratch-buffer
// bound for prefix intersections.
func (m *Matrix) MaxRowLen() int {
	max := 0
	for g := 0; g < m.genes; g++ {
		if n := m.rowStart[g+1] - m.rowStart[g]; n > max {
			max = n
		}
	}
	return max
}

// Row returns gene g's sorted sample indices. The slice aliases the
// matrix; callers treat it as read-only.
func (m *Matrix) Row(g int) []int32 {
	if g < 0 || g >= m.genes {
		panic(fmt.Sprintf("sparsemat: row %d out of range %d", g, m.genes))
	}
	return m.idx[m.rowStart[g]:m.rowStart[g+1]:m.rowStart[g+1]]
}

// gallopRatio is the length imbalance beyond which intersections switch
// from the linear two-pointer merge to galloping search: binary-probing
// the long list once per short-list element costs |short|·log|long|,
// which beats |short|+|long| when the lists differ by well over the
// log factor. The same constant gates the in-merge gap probe in
// IntersectIntoMaskMin.
const gallopRatio = 16

// IntersectCount returns |a ∩ b| over two sorted index lists.
func IntersectCount(a, b []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopCount(a, b, nil)
	}
	n := 0
	ia, ib := 0, 0
	for ia < len(a) && ib < len(b) {
		av, bv := a[ia], b[ib]
		if av == bv {
			n++
			ia++
			ib++
		} else if av < bv {
			ia++
		} else {
			ib++
		}
	}
	return n
}

// IntersectCountWeighted returns the weighted size of a ∩ b: the sum of
// w[s] over every shared sample s. w is indexed by sample column — the
// flat multiplicity array of a kernelized (column-deduped) instance.
func IntersectCountWeighted(a, b []int32, w []int32) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	if len(a) == 0 {
		return 0
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopCount(a, b, w)
	}
	n := 0
	ia, ib := 0, 0
	for ia < len(a) && ib < len(b) {
		av, bv := a[ia], b[ib]
		if av == bv {
			n += int(w[av])
			ia++
			ib++
		} else if av < bv {
			ia++
		} else {
			ib++
		}
	}
	return n
}

// gallopCount intersects a short sorted list against a much longer one by
// exponential search: for each element of a, gallop forward in b to the
// first candidate ≥ it. The b cursor only moves forward, so the total
// cost is |a|·log(gap) even when the runs cluster. A nil w counts
// matches; otherwise matches accumulate w[sample].
func gallopCount(a, b []int32, w []int32) int {
	n := 0
	ib := 0
	for _, av := range a {
		ib = gallopTo(b, ib, av)
		if ib == len(b) {
			break
		}
		if b[ib] == av {
			if w == nil {
				n++
			} else {
				n += int(w[av])
			}
			ib++
		}
	}
	return n
}

// gallopTo returns the smallest index ≥ from with b[index] ≥ v, galloping
// to bracket the answer then binary-searching the bracket.
func gallopTo(b []int32, from int, v int32) int {
	if from >= len(b) || b[from] >= v {
		return from
	}
	step := 1
	lo := from
	hi := from + step
	for hi < len(b) && b[hi] < v {
		lo = hi
		step <<= 1
		hi = lo + step
	}
	if hi > len(b) {
		hi = len(b)
	}
	// Invariant: b[lo] < v, and either hi == len(b) or b[hi] >= v.
	for lo+1 < hi {
		mid := int(uint(lo+hi) >> 1)
		if b[mid] < v {
			lo = mid
		} else {
			hi = mid
		}
	}
	return hi
}

// maskHas reports whether sample s is set in the packed mask (a
// bitmat.Vec's words).
func maskHas(mask []uint64, s int32) bool {
	return mask[int(s)/bitmat.WordBits]>>(uint(s)%uint(bitmat.WordBits))&1 == 1
}

// CountWeighted returns the weighted size of one list: Σ w[s].
func CountWeighted(list []int32, w []int32) int {
	n := 0
	for _, s := range list {
		n += int(w[s])
	}
	return n
}

// FilterMask writes into dst the elements of a whose bit is set in the
// packed mask (a bitmat.Vec's words) and returns the filled prefix of
// dst, which must have capacity ≥ len(a).
func FilterMask(dst, a []int32, mask []uint64) []int32 {
	n := 0
	for _, s := range a {
		if maskHas(mask, s) {
			dst[n] = s
			n++
		}
	}
	return dst[:n]
}

// IntersectIntoMaskMin writes a ∩ b (optionally filtered by a packed
// sample mask; nil means no filter) into dst and returns the filled
// prefix. dst must have capacity ≥ min(len(a), len(b)) and must not
// alias a or b.
//
// minCount is the short-circuit threshold: whenever the running match
// count plus the merge's remaining potential — min of the unconsumed
// suffix lengths, an upper bound on further matches — falls strictly
// below minCount, the merge stops and returns (nil, false): the
// intersection provably cannot reach minCount. internal/cover derives
// minCount from the shared prune bound (the smallest prefix popcount
// that still beats the incumbent), so a dominated prefix fold stops
// mid-merge instead of walking both lists to the end. minCount ≤ 0 never
// short-circuits. A (prefix, true) return means the merge ran to
// completion; the caller still compares len(prefix) against its
// threshold, because completion only proves the count never became
// unreachable mid-merge, not that it reached minCount. The running count
// is the post-mask count, so with a mask the short-circuit means the
// *masked* intersection cannot reach minCount — exactly the tp quantity
// the caller thresholds.
func IntersectIntoMaskMin(dst, a, b []int32, mask []uint64, minCount int) ([]int32, bool) {
	if len(a) > len(b) {
		a, b = b, a
	}
	if minCount > 0 && len(a) < minCount {
		return nil, false
	}
	if len(b) >= gallopRatio*len(a) {
		return gallopIntoMaskMin(dst, a, b, mask, minCount)
	}
	// The short-circuit condition n + min(remA, remB) < minCount is kept
	// in O(1) per step as cursor limits: remA < minCount−n ⟺ ia > endA,
	// where endA = len(a) − (minCount−n). Each stored match relaxes the
	// limits by one; a merge step past a limit proves the count
	// unreachable. This keeps the hot loop at one bounds compare per
	// cursor instead of recomputing the remaining potential every step.
	n := 0
	ia, ib := 0, 0
	endA, endB := len(a), len(b)
	needed := minCount
	if needed > 0 {
		endA = len(a) - needed + 1
		endB = len(b) - needed + 1
		if endB < 1 {
			return nil, false
		}
	}
	for ia < endA && ib < endB {
		av, bv := a[ia], b[ib]
		if av == bv {
			if mask == nil || maskHas(mask, av) {
				dst[n] = av
				n++
				if needed > 0 {
					needed--
					if endA++; endA > len(a) {
						endA = len(a)
					}
					if endB++; endB > len(b) {
						endB = len(b)
					}
				}
			}
			ia++
			ib++
		} else if av < bv {
			ia++
		} else {
			ib++
		}
	}
	if ia < len(a) && ib < len(b) {
		// Stopped at a limit, not at the end of a list: the masked count
		// can no longer reach minCount.
		return nil, false
	}
	return dst[:n], true
}

// gallopIntoMaskMin is IntersectIntoMaskMin for lopsided pairs: each
// element of the short list a gallops forward in b, so the cost is
// |a|·log(gap) instead of |a|+|b|. The short-circuit bound here is the
// unconsumed remainder of a alone — still an upper bound on further
// matches.
func gallopIntoMaskMin(dst, a, b []int32, mask []uint64, minCount int) ([]int32, bool) {
	n := 0
	ib := 0
	for ia, av := range a {
		if minCount > 0 && n+len(a)-ia < minCount {
			return nil, false
		}
		ib = gallopTo(b, ib, av)
		if ib == len(b) {
			break
		}
		if b[ib] == av {
			if mask == nil || maskHas(mask, av) {
				dst[n] = av
				n++
			}
			ib++
		}
	}
	return dst[:n], true
}

// IntersectInto writes a ∩ b into dst (no mask, no short-circuit) and
// returns the filled prefix. dst must have capacity ≥ min(len(a), len(b)).
func IntersectInto(dst, a, b []int32) []int32 {
	out, _ := IntersectIntoMaskMin(dst, a, b, nil, 0)
	return out
}
