package bitmat

import (
	"math/rand"
	"testing"
)

// naiveWeightedPop scores a word mask against per-sample multiplicities
// the slow way: walk every bit.
func naiveWeightedPop(words []uint64, mult []int) int {
	total := 0
	for j, m := range mult {
		if words[j/WordBits]&(1<<(uint(j)%WordBits)) != 0 {
			total += m
		}
	}
	return total
}

func TestWeightsAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		mult := make([]int, n)
		for j := range mult {
			mult[j] = 1 + rng.Intn(9)
		}
		w := NewWeights(mult)
		if w.Len() != n {
			t.Fatalf("Len=%d, want %d", w.Len(), n)
		}
		wantTotal := 0
		for j, m := range mult {
			wantTotal += m
			if w.Weight(j) != m {
				t.Fatalf("Weight(%d)=%d, want %d", j, w.Weight(j), m)
			}
		}
		if w.Total() != wantTotal {
			t.Fatalf("Total=%d, want %d", w.Total(), wantTotal)
		}

		words := WordsFor(n)
		vecs := make([][]uint64, 5)
		for i := range vecs {
			vecs[i] = make([]uint64, words)
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					vecs[i][j/WordBits] |= 1 << (uint(j) % WordBits)
				}
			}
		}
		if got, want := w.PopVec(vecs[0]), naiveWeightedPop(vecs[0], mult); got != want {
			t.Fatalf("PopVec=%d, want %d", got, want)
		}
		and := func(vs ...[]uint64) []uint64 {
			out := make([]uint64, words)
			copy(out, vs[0])
			for _, v := range vs[1:] {
				for k := range out {
					out[k] &= v[k]
				}
			}
			return out
		}
		if got, want := w.PopAnd2(vecs[0], vecs[1]), naiveWeightedPop(and(vecs[0], vecs[1]), mult); got != want {
			t.Fatalf("PopAnd2=%d, want %d", got, want)
		}
		if got, want := w.PopAnd3(vecs[0], vecs[1], vecs[2]), naiveWeightedPop(and(vecs[0], vecs[1], vecs[2]), mult); got != want {
			t.Fatalf("PopAnd3=%d, want %d", got, want)
		}
		if got, want := w.PopAnd4(vecs[0], vecs[1], vecs[2], vecs[3]), naiveWeightedPop(and(vecs[0], vecs[1], vecs[2], vecs[3]), mult); got != want {
			t.Fatalf("PopAnd4=%d, want %d", got, want)
		}
		if got, want := w.PopAnd5(vecs[0], vecs[1], vecs[2], vecs[3], vecs[4]), naiveWeightedPop(and(vecs...), mult); got != want {
			t.Fatalf("PopAnd5=%d, want %d", got, want)
		}
	}
}

func TestNewWeightsRejectsNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWeights accepted a zero multiplicity")
		}
	}()
	NewWeights([]int{1, 0, 2})
}

// TestDedupColumnsIdentity: a matrix with all-distinct columns comes back
// untouched — same pointer, nil keep, nil multiplicities.
func TestDedupColumnsIdentity(t *testing.T) {
	// Columns carry genes {0}, {1}, {2}, {} — all four distinct.
	m := New(3, 4)
	m.Set(0, 0)
	m.Set(1, 1)
	m.Set(2, 2)
	got, keep, mult := DedupColumns(m)
	if got != m || keep != nil || mult != nil {
		t.Fatalf("distinct columns were rewritten: keep=%v mult=%v", keep, mult)
	}
}

// TestDedupColumnsMerges: duplicate columns collapse to their first
// occurrence with the group size as multiplicity, and weighted popcounts
// on the deduped matrix equal plain popcounts on the original.
func TestDedupColumnsMerges(t *testing.T) {
	// 2 genes × 6 samples; columns by (g0,g1) pattern:
	//   0: (1,0)  1: (1,0)  2: (0,1)  3: (1,0)  4: (0,1)  5: (1,1)
	m := New(2, 6)
	for _, s := range []int{0, 1, 3, 5} {
		m.Set(0, s)
	}
	for _, s := range []int{2, 4, 5} {
		m.Set(1, s)
	}
	orig := m.Clone()
	ded, keep, mult := DedupColumns(m)
	if ded.Samples() != 3 {
		t.Fatalf("deduped to %d columns, want 3", ded.Samples())
	}
	wantKeep := []int{0, 2, 5}
	wantMult := []int{3, 2, 1}
	for i := range wantKeep {
		if keep[i] != wantKeep[i] || mult[i] != wantMult[i] {
			t.Fatalf("keep=%v mult=%v, want %v / %v", keep, mult, wantKeep, wantMult)
		}
	}
	w := NewWeights(mult)
	if w.Total() != orig.Samples() {
		t.Fatalf("weights total %d, want %d", w.Total(), orig.Samples())
	}
	for g := 0; g < 2; g++ {
		if got, want := w.PopVec(ded.Row(g)), orig.RowPopCount(g); got != want {
			t.Fatalf("gene %d: weighted pop %d, want %d", g, got, want)
		}
	}
	if got, want := w.PopAnd2(ded.Row(0), ded.Row(1)), orig.AndPopCount2(0, 1); got != want {
		t.Fatalf("pairwise weighted pop %d, want %d", got, want)
	}
}

// TestDedupColumnsRandomInvariant: on random matrices, every gene subset's
// weighted count on the deduped instance equals the plain count on the
// original.
func TestDedupColumnsRandomInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 30; trial++ {
		genes := 2 + rng.Intn(4) // ComboVec folds at most 5 rows
		samples := 1 + rng.Intn(80)
		m := New(genes, samples)
		for g := 0; g < genes; g++ {
			for s := 0; s < samples; s++ {
				// Coarse density so duplicate columns actually occur.
				if rng.Intn(3) == 0 {
					m.Set(g, s)
				}
			}
		}
		orig := m.Clone()
		ded, keep, mult := DedupColumns(m)
		if keep == nil {
			continue
		}
		w := NewWeights(mult)
		if w.Total() != orig.Samples() {
			t.Fatalf("trial %d: total %d, want %d", trial, w.Total(), orig.Samples())
		}
		buf := make([]uint64, ded.Words())
		obuf := make([]uint64, orig.Words())
		for sub := 1; sub < 1<<genes; sub++ {
			var ids []int
			for g := 0; g < genes; g++ {
				if sub&(1<<g) != 0 {
					ids = append(ids, g)
				}
			}
			ded.ComboVec(buf, ids...)
			orig.ComboVec(obuf, ids...)
			want := 0
			for _, word := range obuf {
				for ; word != 0; word &= word - 1 {
					want++
				}
			}
			if got := w.PopVec(buf); got != want {
				t.Fatalf("trial %d genes %v: weighted %d, plain %d", trial, ids, got, want)
			}
		}
	}
}
