// Package bitmat implements the compressed binary gene×sample matrices that
// feed the multi-hit weighted-set-cover engine.
//
// Each matrix row is one gene; each column is one patient sample; bit (g, s)
// is 1 when sample s carries at least one somatic mutation in gene g. Columns
// are packed 64 per machine word ("64 samples ... grouped into a single
// unsigned long long int", Sec. II-C), giving the paper's 32× memory
// reduction over a byte-per-cell layout and letting a single AND+popcount
// evaluate 64 samples of a gene combination at once.
//
// The package also implements BitSplicing (Sec. III-D): after each iteration
// of the cover loop, the tumor samples just covered are physically spliced
// out of the matrix, shrinking every row and removing their words from all
// subsequent AND chains.
package bitmat

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// WordBits is the number of samples packed into one matrix word.
const WordBits = 64

// WordsFor returns the packed word count covering n samples,
// ceil(n/WordBits). Code outside this package must use it (or WordBits)
// instead of hardcoding 64-bit word arithmetic — the wordwidth analyzer
// enforces that.
func WordsFor(n int) int {
	return (n + WordBits - 1) / WordBits
}

// Matrix is a bit-packed genes×samples binary matrix, row-major with
// ceil(samples/64) words per row. The zero value is not usable; construct
// with New or FromBools.
type Matrix struct {
	genes   int
	samples int
	words   int // words per row
	bits    []uint64
}

// New returns an all-zero matrix with the given dimensions.
func New(genes, samples int) *Matrix {
	if genes < 0 || samples < 0 {
		panic(fmt.Sprintf("bitmat: negative dimensions (%d, %d)", genes, samples))
	}
	w := WordsFor(samples)
	return &Matrix{
		genes:   genes,
		samples: samples,
		words:   w,
		bits:    make([]uint64, genes*w),
	}
}

// FromBools builds a matrix from a dense boolean grid, rows[g][s].
func FromBools(rows [][]bool) *Matrix {
	genes := len(rows)
	samples := 0
	if genes > 0 {
		samples = len(rows[0])
	}
	m := New(genes, samples)
	for g, row := range rows {
		if len(row) != samples {
			panic("bitmat: ragged boolean grid")
		}
		for s, v := range row {
			if v {
				m.Set(g, s)
			}
		}
	}
	return m
}

// Genes returns the number of rows (genes).
func (m *Matrix) Genes() int { return m.genes }

// Samples returns the number of logical columns (samples).
func (m *Matrix) Samples() int { return m.samples }

// Words returns the number of 64-bit words per row.
func (m *Matrix) Words() int { return m.words }

// Set sets bit (g, s) to 1.
func (m *Matrix) Set(g, s int) {
	m.check(g, s)
	m.bits[g*m.words+s/WordBits] |= 1 << (uint(s) % WordBits)
}

// Clear sets bit (g, s) to 0.
func (m *Matrix) Clear(g, s int) {
	m.check(g, s)
	m.bits[g*m.words+s/WordBits] &^= 1 << (uint(s) % WordBits)
}

// Get reports whether bit (g, s) is set.
func (m *Matrix) Get(g, s int) bool {
	m.check(g, s)
	return m.bits[g*m.words+s/WordBits]>>(uint(s)%WordBits)&1 == 1
}

func (m *Matrix) check(g, s int) {
	if g < 0 || g >= m.genes || s < 0 || s >= m.samples {
		panic(fmt.Sprintf("bitmat: index (%d, %d) out of range %d×%d", g, s, m.genes, m.samples))
	}
}

// Row returns the packed words of gene g's row. The slice aliases the
// matrix; callers treat it as read-only. This is the "prefetch" handle used
// by MemOpt1/MemOpt2: the cover kernels grab the rows for the fixed genes
// i, j (and k) once per thread instead of re-indexing the full matrix in the
// innermost loop.
func (m *Matrix) Row(g int) []uint64 {
	if g < 0 || g >= m.genes {
		panic(fmt.Sprintf("bitmat: row %d out of range %d", g, m.genes))
	}
	return m.bits[g*m.words : (g+1)*m.words : (g+1)*m.words]
}

// RowPopCount returns the number of set bits in gene g's row — the number of
// samples mutated in g.
func (m *Matrix) RowPopCount(g int) int {
	n := 0
	for _, w := range m.Row(g) {
		n += bits.OnesCount64(w)
	}
	return n
}

// tailMask returns the mask of valid bits in the final word of a row, or an
// all-ones mask when the sample count is a multiple of 64.
func (m *Matrix) tailMask() uint64 {
	r := uint(m.samples % WordBits)
	if r == 0 {
		return ^uint64(0)
	}
	return 1<<r - 1
}

// AndPopCount2 returns |row(a) ∧ row(b)|: the number of samples mutated in
// both genes.
func (m *Matrix) AndPopCount2(a, b int) int {
	ra, rb := m.Row(a), m.Row(b)
	n := 0
	for w := range ra {
		n += bits.OnesCount64(ra[w] & rb[w])
	}
	return n
}

// AndPopCount3 returns |row(a) ∧ row(b) ∧ row(c)|.
func (m *Matrix) AndPopCount3(a, b, c int) int {
	ra, rb, rc := m.Row(a), m.Row(b), m.Row(c)
	n := 0
	for w := range ra {
		n += bits.OnesCount64(ra[w] & rb[w] & rc[w])
	}
	return n
}

// AndPopCount4 returns |row(a) ∧ row(b) ∧ row(c) ∧ row(d)| — the TP (on the
// tumor matrix) or the complement input to TN (on the normal matrix) for a
// 4-hit combination.
func (m *Matrix) AndPopCount4(a, b, c, d int) int {
	ra, rb, rc, rd := m.Row(a), m.Row(b), m.Row(c), m.Row(d)
	n := 0
	for w := range ra {
		n += bits.OnesCount64(ra[w] & rb[w] & rc[w] & rd[w])
	}
	return n
}

// AndPopCountRows returns the popcount of the AND of pre-fetched packed rows
// with one additional matrix row d. The prefetched slice may hold 1–3 rows;
// this is the innermost operation of the MemOpt kernels.
func (m *Matrix) AndPopCountRows(prefetched [][]uint64, d int) int {
	rd := m.Row(d)
	n := 0
	switch len(prefetched) {
	case 1:
		p0 := prefetched[0]
		for w := range rd {
			n += bits.OnesCount64(p0[w] & rd[w])
		}
	case 2:
		p0, p1 := prefetched[0], prefetched[1]
		for w := range rd {
			n += bits.OnesCount64(p0[w] & p1[w] & rd[w])
		}
	case 3:
		p0, p1, p2 := prefetched[0], prefetched[1], prefetched[2]
		for w := range rd {
			n += bits.OnesCount64(p0[w] & p1[w] & p2[w] & rd[w])
		}
	default:
		panic("bitmat: AndPopCountRows supports 1-3 prefetched rows")
	}
	return n
}

// AndInto writes row(a) ∧ row(b) into dst, which must have length Words().
// Cover kernels use it to fold the fixed (i, j) rows of a thread into one
// buffer so the inner loop ANDs two words per word instead of three
// (MemOpt1+MemOpt2 combined).
func (m *Matrix) AndInto(dst []uint64, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	if len(dst) != len(ra) {
		panic("bitmat: AndInto dst length mismatch")
	}
	for w := range ra {
		dst[w] = ra[w] & rb[w]
	}
}

// AndInto3 writes row(a) ∧ row(b) ∧ row(c) into dst.
func (m *Matrix) AndInto3(dst []uint64, a, b, c int) {
	ra, rb, rc := m.Row(a), m.Row(b), m.Row(c)
	if len(dst) != len(ra) {
		panic("bitmat: AndInto3 dst length mismatch")
	}
	for w := range ra {
		dst[w] = ra[w] & rb[w] & rc[w]
	}
}

// AndPopCountVec returns the popcount of (pre ∧ row(d)), where pre is a
// pre-folded word buffer of length Words().
func (m *Matrix) AndPopCountVec(pre []uint64, d int) int {
	rd := m.Row(d)
	n := 0
	for w := range rd {
		n += bits.OnesCount64(pre[w] & rd[w])
	}
	return n
}

// ComboVec writes the AND of the rows for the given genes into dst and
// returns its popcount. It accepts 1–5 genes.
func (m *Matrix) ComboVec(dst []uint64, genes ...int) int {
	if len(genes) == 0 || len(genes) > 5 {
		panic("bitmat: ComboVec supports 1-5 genes")
	}
	copy(dst, m.Row(genes[0]))
	for _, g := range genes[1:] {
		r := m.Row(g)
		for w := range dst {
			dst[w] &= r[w]
		}
	}
	n := 0
	for _, w := range dst {
		n += bits.OnesCount64(w)
	}
	return n
}

// ComboPopCount returns the number of samples mutated in every one of the
// given genes (1–5 genes).
func (m *Matrix) ComboPopCount(genes ...int) int {
	switch len(genes) {
	case 1:
		return m.RowPopCount(genes[0])
	case 2:
		return m.AndPopCount2(genes[0], genes[1])
	case 3:
		return m.AndPopCount3(genes[0], genes[1], genes[2])
	case 4:
		return m.AndPopCount4(genes[0], genes[1], genes[2], genes[3])
	case 5:
		ra, rb, rc := m.Row(genes[0]), m.Row(genes[1]), m.Row(genes[2])
		rd, re := m.Row(genes[3]), m.Row(genes[4])
		n := 0
		for w := range ra {
			n += bits.OnesCount64(ra[w] & rb[w] & rc[w] & rd[w] & re[w])
		}
		return n
	default:
		panic("bitmat: ComboPopCount supports 1-5 genes")
	}
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := &Matrix{genes: m.genes, samples: m.samples, words: m.words}
	c.bits = make([]uint64, len(m.bits))
	copy(c.bits, m.bits)
	return c
}

// Equal reports whether two matrices have identical dimensions and contents.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.genes != o.genes || m.samples != o.samples {
		return false
	}
	for i := range m.bits {
		if m.bits[i] != o.bits[i] {
			return false
		}
	}
	return true
}

// PopCount returns the total number of set bits across the matrix.
func (m *Matrix) PopCount() int {
	n := 0
	for g := 0; g < m.genes; g++ {
		n += m.RowPopCount(g)
	}
	return n
}

// Density returns the fraction of set bits — the statistic the sparse
// engine's Auto heuristic keys on.
func (m *Matrix) Density() float64 {
	if m.genes == 0 || m.samples == 0 {
		return 0
	}
	return float64(m.PopCount()) / (float64(m.genes) * float64(m.samples))
}

// Splice returns a new matrix with every column whose bit is set in remove
// spliced out, preserving the relative order of the remaining columns. This
// is BitSplicing (Sec. III-D): covered tumor samples leave the matrix
// entirely, so every subsequent AND chain touches fewer words. The remove
// vector must span this matrix's samples.
func (m *Matrix) Splice(remove *Vec) *Matrix {
	if remove.n != m.samples {
		panic(fmt.Sprintf("bitmat: Splice vector spans %d samples, matrix has %d", remove.n, m.samples))
	}
	kept := m.samples - remove.PopCount()
	out := New(m.genes, kept)
	// Precompute, per source word, the compaction of surviving bits using
	// parallel bit extract emulation; per row we then merge the compacted
	// fragments into the destination stream.
	keepMasks := make([]uint64, m.words)
	keepCounts := make([]int, m.words)
	for w := 0; w < m.words; w++ {
		keep := ^remove.bits[w]
		if w == m.words-1 {
			keep &= m.tailMask()
		}
		keepMasks[w] = keep
		keepCounts[w] = bits.OnesCount64(keep)
	}
	for g := 0; g < m.genes; g++ {
		src := m.Row(g)
		dst := out.Row(g)
		bitPos := 0 // next free bit in dst stream
		for w := 0; w < m.words; w++ {
			frag := extractBits(src[w], keepMasks[w])
			nb := keepCounts[w]
			if nb == 0 {
				continue
			}
			word := bitPos / WordBits
			off := uint(bitPos % WordBits)
			dst[word] |= frag << off
			if int(off)+nb > WordBits {
				dst[word+1] |= frag >> (WordBits - off)
			}
			bitPos += nb
		}
	}
	return out
}

// SelectRows returns a new matrix holding the given rows in order — the
// gene-compaction counterpart of Splice. After BitSplicing shrinks the
// sample axis, genes whose remaining tumor row is all-zero can never raise
// TP again; the cover loop drops them by selecting only the live rows (for
// both matrices, with the same index list) and remapping the winner's gene
// ids back through keep. The indices must be valid rows; they are copied
// in the order given, so an ascending keep list preserves the strictly
// increasing gene order the reduction relies on.
func (m *Matrix) SelectRows(keep []int) *Matrix {
	out := New(len(keep), m.samples)
	for i, g := range keep {
		copy(out.Row(i), m.Row(g))
	}
	return out
}

// extractBits compacts the bits of v selected by mask toward the low end
// (a software PEXT).
func extractBits(v, mask uint64) uint64 {
	var out uint64
	var outBit uint
	for mask != 0 {
		low := mask & (^mask + 1) // lowest set bit
		if v&low != 0 {
			out |= 1 << outBit
		}
		outBit++
		mask &^= low
	}
	return out
}

// PopAnd2 returns the popcount of a ∧ b over two equal-length word slices.
// The cover kernels use these free functions to control exactly which rows
// are hoisted ("prefetched") out of their inner loops when reproducing the
// MemOpt ablation.
func PopAnd2(a, b []uint64) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & b[w])
	}
	return n
}

// PopAnd3 returns the popcount of a ∧ b ∧ c.
func PopAnd3(a, b, c []uint64) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & b[w] & c[w])
	}
	return n
}

// PopAnd4 returns the popcount of a ∧ b ∧ c ∧ d.
func PopAnd4(a, b, c, d []uint64) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & b[w] & c[w] & d[w])
	}
	return n
}

// AndWords writes a ∧ b into dst (all equal length).
func AndWords(dst, a, b []uint64) {
	for w := range dst {
		dst[w] = a[w] & b[w]
	}
}

// AndWordsPop writes a ∧ b into dst and returns the popcount of the
// result. The cover kernels fold their loop-invariant prefix rows with
// this instead of AndWords so the prefix tumor count — the input to the
// bound-and-prune upper bound — comes out of the fold for free.
// The loop is unrolled by 4 (scalar tail) so the fold issues four
// independent AND+POPCNT chains per iteration instead of serializing on
// one accumulator — this is the hot instruction of the dense scan, and
// BenchmarkAndWordsPop guards the unroll.
func AndWordsPop(dst, a, b []uint64) int {
	a = a[:len(dst)]
	b = b[:len(dst)]
	n0, n1, n2, n3 := 0, 0, 0, 0
	w := 0
	for ; w+4 <= len(dst); w += 4 {
		v0 := a[w] & b[w]
		v1 := a[w+1] & b[w+1]
		v2 := a[w+2] & b[w+2]
		v3 := a[w+3] & b[w+3]
		dst[w] = v0
		dst[w+1] = v1
		dst[w+2] = v2
		dst[w+3] = v3
		n0 += bits.OnesCount64(v0)
		n1 += bits.OnesCount64(v1)
		n2 += bits.OnesCount64(v2)
		n3 += bits.OnesCount64(v3)
	}
	for ; w < len(dst); w++ {
		v := a[w] & b[w]
		dst[w] = v
		n0 += bits.OnesCount64(v)
	}
	return n0 + n1 + n2 + n3
}

// Vec is a bit-packed vector over samples, used for the active-tumor mask
// and for cover sets.
type Vec struct {
	n    int
	bits []uint64
}

// NewVec returns an all-zero vector spanning n samples.
func NewVec(n int) *Vec {
	if n < 0 {
		panic("bitmat: negative vector length")
	}
	return &Vec{n: n, bits: make([]uint64, WordsFor(n))}
}

// AllOnes returns a vector with every one of its n bits set.
func AllOnes(n int) *Vec {
	v := NewVec(n)
	for i := range v.bits {
		v.bits[i] = ^uint64(0)
	}
	r := uint(n % WordBits)
	if r != 0 && len(v.bits) > 0 {
		v.bits[len(v.bits)-1] = 1<<r - 1
	}
	return v
}

// Len returns the number of samples the vector spans.
func (v *Vec) Len() int { return v.n }

// Words exposes the packed words; callers treat the slice as read-only.
func (v *Vec) Words() []uint64 { return v.bits }

// Set sets bit s.
func (v *Vec) Set(s int) {
	v.check(s)
	v.bits[s/WordBits] |= 1 << (uint(s) % WordBits)
}

// Clear clears bit s.
func (v *Vec) Clear(s int) {
	v.check(s)
	v.bits[s/WordBits] &^= 1 << (uint(s) % WordBits)
}

// Get reports whether bit s is set.
func (v *Vec) Get(s int) bool {
	v.check(s)
	return v.bits[s/WordBits]>>(uint(s)%WordBits)&1 == 1
}

func (v *Vec) check(s int) {
	if s < 0 || s >= v.n {
		panic(fmt.Sprintf("bitmat: vec index %d out of range %d", s, v.n))
	}
}

// PopCount returns the number of set bits.
func (v *Vec) PopCount() int {
	n := 0
	for _, w := range v.bits {
		n += bits.OnesCount64(w)
	}
	return n
}

// AndNot clears in v every bit set in o (v &^= o).
func (v *Vec) AndNot(o *Vec) {
	if v.n != o.n {
		panic("bitmat: AndNot length mismatch")
	}
	for i := range v.bits {
		v.bits[i] &^= o.bits[i]
	}
}

// Or sets in v every bit set in o.
func (v *Vec) Or(o *Vec) {
	if v.n != o.n {
		panic("bitmat: Or length mismatch")
	}
	for i := range v.bits {
		v.bits[i] |= o.bits[i]
	}
}

// And keeps in v only bits also set in o.
func (v *Vec) And(o *Vec) {
	if v.n != o.n {
		panic("bitmat: And length mismatch")
	}
	for i := range v.bits {
		v.bits[i] &= o.bits[i]
	}
}

// AndPopCount returns |v ∧ words| without modifying v; words must have the
// same packed length.
func (v *Vec) AndPopCount(words []uint64) int {
	if len(words) != len(v.bits) {
		panic("bitmat: AndPopCount word length mismatch")
	}
	n := 0
	for i := range v.bits {
		n += bits.OnesCount64(v.bits[i] & words[i])
	}
	return n
}

// Clone returns a deep copy.
func (v *Vec) Clone() *Vec {
	c := &Vec{n: v.n, bits: make([]uint64, len(v.bits))}
	copy(c.bits, v.bits)
	return c
}

// Splice returns a new vector with the columns selected by remove spliced
// out, mirroring Matrix.Splice so an active mask stays aligned with a
// spliced matrix.
func (v *Vec) Splice(remove *Vec) *Vec {
	if remove.n != v.n {
		panic("bitmat: Vec.Splice length mismatch")
	}
	out := NewVec(v.n - remove.PopCount())
	pos := 0
	for s := 0; s < v.n; s++ {
		if remove.Get(s) {
			continue
		}
		if v.Get(s) {
			out.Set(pos)
		}
		pos++
	}
	return out
}

// Fingerprint returns an FNV-1a hash over the matrix dimensions and
// contents, used to bind checkpoints to the exact input they were taken
// from.
func (m *Matrix) Fingerprint() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	mix(uint64(m.genes))
	mix(uint64(m.samples))
	for _, w := range m.bits {
		mix(w)
	}
	return h
}

const matrixMagic = "BMAT1\n"

// WriteTo serializes the matrix in a stable little-endian binary format.
func (m *Matrix) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := io.WriteString(w, matrixMagic)
	total += int64(n)
	if err != nil {
		return total, err
	}
	hdr := make([]byte, 16)
	binary.LittleEndian.PutUint64(hdr[0:], uint64(m.genes))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.samples))
	n, err = w.Write(hdr)
	total += int64(n)
	if err != nil {
		return total, err
	}
	buf := make([]byte, 8*len(m.bits))
	for i, word := range m.bits {
		binary.LittleEndian.PutUint64(buf[8*i:], word)
	}
	n, err = w.Write(buf)
	total += int64(n)
	return total, err
}

// ReadMatrix deserializes a matrix written by WriteTo.
func ReadMatrix(r io.Reader) (*Matrix, error) {
	magic := make([]byte, len(matrixMagic))
	if _, err := io.ReadFull(r, magic); err != nil {
		return nil, fmt.Errorf("bitmat: reading magic: %w", err)
	}
	if string(magic) != matrixMagic {
		return nil, errors.New("bitmat: bad magic")
	}
	hdr := make([]byte, 16)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("bitmat: reading header: %w", err)
	}
	genes := int(binary.LittleEndian.Uint64(hdr[0:]))
	samples := int(binary.LittleEndian.Uint64(hdr[8:]))
	const maxDim = 1 << 26
	if genes < 0 || samples < 0 || genes > maxDim || samples > maxDim {
		return nil, fmt.Errorf("bitmat: implausible dimensions %d×%d", genes, samples)
	}
	m := New(genes, samples)
	buf := make([]byte, 8*len(m.bits))
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, fmt.Errorf("bitmat: reading payload: %w", err)
	}
	for i := range m.bits {
		m.bits[i] = binary.LittleEndian.Uint64(buf[8*i:])
	}
	return m, nil
}
