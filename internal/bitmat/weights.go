package bitmat

import (
	"fmt"
	"math/bits"
)

// Weights carries per-column integer multiplicities for a matrix whose
// duplicate sample columns have been merged (DedupColumns). A weighted
// popcount over the deduped matrix equals the plain popcount over the
// original: column j stands for Weight(j) identical original columns.
//
// The weights are stored as bit planes — plane k holds bit j iff bit k of
// column j's multiplicity is set — so a weighted popcount of a mask m is
// Σₖ 2ᵏ·popcount(m ∧ planeₖ): one AND+popcount sweep per plane instead of
// a per-column scalar loop. Cohort duplicates are few, so the plane count
// ⌈log₂(maxMult+1)⌉ is small (1 plane when every weight is 1).
type Weights struct {
	n      int
	total  int
	planes [][]uint64
}

// NewWeights builds the bit-plane representation of the given per-column
// multiplicities, all of which must be ≥ 1.
func NewWeights(mult []int) *Weights {
	w := &Weights{n: len(mult)}
	maxM := 0
	for j, m := range mult {
		if m < 1 {
			panic(fmt.Sprintf("bitmat: weight %d of column %d must be ≥ 1", m, j))
		}
		w.total += m
		if m > maxM {
			maxM = m
		}
	}
	words := WordsFor(len(mult))
	for k := 0; k < bits.Len(uint(maxM)); k++ {
		plane := make([]uint64, words)
		for j, m := range mult {
			if m>>k&1 == 1 {
				plane[j/WordBits] |= 1 << (uint(j) % WordBits)
			}
		}
		w.planes = append(w.planes, plane)
	}
	return w
}

// Len returns the number of (deduped) columns the weights span.
func (w *Weights) Len() int { return w.n }

// Total returns the sum of all weights — the original column count.
func (w *Weights) Total() int { return w.total }

// Weight returns column j's multiplicity.
func (w *Weights) Weight(j int) int {
	if j < 0 || j >= w.n {
		panic(fmt.Sprintf("bitmat: weight index %d out of range %d", j, w.n))
	}
	m := 0
	for k, plane := range w.planes {
		m |= int(plane[j/WordBits]>>(uint(j)%WordBits)&1) << k
	}
	return m
}

// PopVec returns the weighted popcount of a packed mask: the number of
// ORIGINAL columns the mask's set bits stand for.
func (w *Weights) PopVec(a []uint64) int {
	n := 0
	for k, plane := range w.planes {
		s := 0
		for i := range a {
			s += bits.OnesCount64(a[i] & plane[i])
		}
		n += s << k
	}
	return n
}

// PopAnd2 returns the weighted popcount of a ∧ b.
func (w *Weights) PopAnd2(a, b []uint64) int {
	n := 0
	for k, plane := range w.planes {
		s := 0
		for i := range a {
			s += bits.OnesCount64(a[i] & b[i] & plane[i])
		}
		n += s << k
	}
	return n
}

// PopAnd3 returns the weighted popcount of a ∧ b ∧ c.
func (w *Weights) PopAnd3(a, b, c []uint64) int {
	n := 0
	for k, plane := range w.planes {
		s := 0
		for i := range a {
			s += bits.OnesCount64(a[i] & b[i] & c[i] & plane[i])
		}
		n += s << k
	}
	return n
}

// PopAnd4 returns the weighted popcount of a ∧ b ∧ c ∧ d.
func (w *Weights) PopAnd4(a, b, c, d []uint64) int {
	n := 0
	for k, plane := range w.planes {
		s := 0
		for i := range a {
			s += bits.OnesCount64(a[i] & b[i] & c[i] & d[i] & plane[i])
		}
		n += s << k
	}
	return n
}

// PopAnd5 returns the weighted popcount of a ∧ b ∧ c ∧ d ∧ e.
func (w *Weights) PopAnd5(a, b, c, d, e []uint64) int {
	n := 0
	for k, plane := range w.planes {
		s := 0
		for i := range a {
			s += bits.OnesCount64(a[i] & b[i] & c[i] & d[i] & e[i] & plane[i])
		}
		n += s << k
	}
	return n
}

// PopAnd5 returns the plain popcount of a ∧ b ∧ c ∧ d ∧ e over five
// equal-length word slices — the unweighted counterpart the 4x1 kernel
// uses for its five-row fold.
func PopAnd5(a, b, c, d, e []uint64) int {
	n := 0
	for w := range a {
		n += bits.OnesCount64(a[w] & b[w] & c[w] & d[w] & e[w])
	}
	return n
}

// DedupColumns merges duplicate sample columns: two columns are duplicates
// when they carry identical bits across EVERY gene row, in which case no
// gene combination can ever distinguish them and they contribute to every
// count in lockstep. It returns the deduped matrix (first occurrences, in
// original order), the original column index of each surviving column, and
// each surviving column's multiplicity. When no column repeats it returns
// (m, nil, nil) without copying — the caller treats nil as "identity".
func DedupColumns(m *Matrix) (*Matrix, []int, []int) {
	s := m.Samples()
	g := m.Genes()
	keyLen := (g + 7) / 8
	slots := make(map[string]int, s)
	var keep []int
	var mult []int
	buf := make([]byte, keyLen)
	remove := NewVec(s)
	for j := 0; j < s; j++ {
		for b := range buf {
			buf[b] = 0
		}
		for i := 0; i < g; i++ {
			if m.Get(i, j) {
				buf[i>>3] |= 1 << (uint(i) & 7)
			}
		}
		if idx, ok := slots[string(buf)]; ok {
			mult[idx]++
			remove.Set(j)
			continue
		}
		slots[string(buf)] = len(keep)
		keep = append(keep, j)
		mult = append(mult, 1)
	}
	if len(keep) == s {
		return m, nil, nil
	}
	return m.Splice(remove), keep, mult
}
