package bitmat_test

import (
	"fmt"

	"repro/internal/bitmat"
)

// A combination's TP count is one AND-popcount chain over packed rows.
func ExampleMatrix_ComboPopCount() {
	m := bitmat.New(3, 5) // 3 genes × 5 samples
	// Samples 0 and 3 carry mutations in genes 0 and 2.
	for _, s := range []int{0, 3} {
		m.Set(0, s)
		m.Set(2, s)
	}
	m.Set(1, 1)
	fmt.Println(m.ComboPopCount(0, 2))
	fmt.Println(m.ComboPopCount(0, 1))
	// Output:
	// 2
	// 0
}

// BitSplicing removes covered samples from the matrix entirely, shrinking
// every subsequent AND chain.
func ExampleMatrix_Splice() {
	m := bitmat.New(2, 4)
	m.Set(0, 0)
	m.Set(0, 2)
	m.Set(1, 3)
	covered := bitmat.NewVec(4)
	covered.Set(0)
	covered.Set(2)
	spliced := m.Splice(covered)
	fmt.Println(spliced.Samples(), spliced.Get(1, 1))
	// Output:
	// 2 true
}
