package bitmat

import "testing"

// FuzzSelectRows exercises the gene-compaction remap: for an arbitrary
// matrix and keep list, SelectRows must copy exactly the kept rows in
// order — compacted row i bit-identical to original row keep[i] — so a
// winner found in the compacted space maps back through keep without
// changing a single bit. The keep list is derived from fuzz bytes the way
// the cover loop builds it: ascending, duplicate-free, possibly empty.
func FuzzSelectRows(f *testing.F) {
	f.Add(uint16(7), uint16(70), []byte{0b1010101})
	f.Add(uint16(1), uint16(1), []byte{1})
	f.Add(uint16(14), uint16(130), []byte{0xff, 0x00})
	f.Fuzz(func(t *testing.T, rawG, rawS uint16, pick []byte) {
		genes := 1 + int(rawG)%32
		samples := 1 + int(rawS)%200
		m := New(genes, samples)
		// Deterministic fill derived from the inputs.
		for g := 0; g < genes; g++ {
			for s := g % 7; s < samples; s += 1 + (g+s)%5 {
				m.Set(g, s)
			}
		}
		var keep []int
		for g := 0; g < genes; g++ {
			if len(pick) > 0 && pick[g%len(pick)]&(1<<(g%8)) != 0 {
				keep = append(keep, g)
			}
		}
		out := m.SelectRows(keep)
		if out.Genes() != len(keep) || out.Samples() != samples {
			t.Fatalf("compacted to %d×%d, want %d×%d",
				out.Genes(), out.Samples(), len(keep), samples)
		}
		for i, g := range keep {
			for s := 0; s < samples; s++ {
				if out.Get(i, s) != m.Get(g, s) {
					t.Fatalf("row %d (original %d) differs at sample %d", i, g, s)
				}
			}
			if out.RowPopCount(i) != m.RowPopCount(g) {
				t.Fatalf("row %d popcount drifted", i)
			}
		}
		// The remap is per-row: compacting twice through a sub-keep equals
		// compacting once through the composed index list.
		if len(keep) > 1 {
			sub := []int{0, len(keep) - 1}
			twice := out.SelectRows(sub)
			composed := m.SelectRows([]int{keep[0], keep[len(keep)-1]})
			for i := 0; i < 2; i++ {
				for s := 0; s < samples; s++ {
					if twice.Get(i, s) != composed.Get(i, s) {
						t.Fatalf("composition broken at row %d sample %d", i, s)
					}
				}
			}
		}
	})
}
