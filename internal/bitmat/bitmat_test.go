package bitmat

import (
	"bytes"
	"math/bits"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveMatrix is the boolean ground truth the packed matrix is checked
// against.
type naiveMatrix [][]bool

func randomGrid(rng *rand.Rand, genes, samples int, density float64) naiveMatrix {
	grid := make(naiveMatrix, genes)
	for g := range grid {
		grid[g] = make([]bool, samples)
		for s := range grid[g] {
			grid[g][s] = rng.Float64() < density
		}
	}
	return grid
}

func (n naiveMatrix) comboCount(genes ...int) int {
	if len(n) == 0 {
		return 0
	}
	count := 0
	for s := range n[0] {
		all := true
		for _, g := range genes {
			if !n[g][s] {
				all = false
				break
			}
		}
		if all {
			count++
		}
	}
	return count
}

func TestSetGetClear(t *testing.T) {
	m := New(3, 130) // 130 samples → 3 words, 2-bit tail
	m.Set(0, 0)
	m.Set(1, 64)
	m.Set(2, 129)
	if !m.Get(0, 0) || !m.Get(1, 64) || !m.Get(2, 129) {
		t.Fatal("set bits not visible")
	}
	if m.Get(0, 1) || m.Get(1, 63) || m.Get(2, 128) {
		t.Fatal("unset bits read as set")
	}
	m.Clear(1, 64)
	if m.Get(1, 64) {
		t.Fatal("cleared bit still set")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	m := New(2, 10)
	for _, fn := range []func(){
		func() { m.Get(2, 0) },
		func() { m.Get(0, 10) },
		func() { m.Set(-1, 0) },
		func() { m.Row(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic for out-of-range access")
				}
			}()
			fn()
		}()
	}
}

func TestFromBoolsMatchesGets(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	grid := randomGrid(rng, 17, 201, 0.3)
	m := FromBools(grid)
	for g := range grid {
		for s := range grid[g] {
			if m.Get(g, s) != grid[g][s] {
				t.Fatalf("bit (%d,%d) mismatch", g, s)
			}
		}
	}
}

func TestComboPopCountAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	grid := randomGrid(rng, 20, 150, 0.4)
	m := FromBools(grid)
	for trial := 0; trial < 200; trial++ {
		h := 1 + rng.Intn(5)
		genes := rng.Perm(20)[:h]
		want := grid.comboCount(genes...)
		if got := m.ComboPopCount(genes...); got != want {
			t.Fatalf("ComboPopCount(%v) = %d, want %d", genes, got, want)
		}
	}
}

func TestAndPopCountVariantsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	grid := randomGrid(rng, 12, 300, 0.25)
	m := FromBools(grid)
	buf := make([]uint64, m.Words())
	for trial := 0; trial < 100; trial++ {
		p := rng.Perm(12)
		a, b, c, d := p[0], p[1], p[2], p[3]
		want := grid.comboCount(a, b, c, d)
		if got := m.AndPopCount4(a, b, c, d); got != want {
			t.Fatalf("AndPopCount4 = %d, want %d", got, want)
		}
		// Prefetched-row path (MemOpt1+2 analogue).
		if got := m.AndPopCountRows([][]uint64{m.Row(a), m.Row(b), m.Row(c)}, d); got != want {
			t.Fatalf("AndPopCountRows = %d, want %d", got, want)
		}
		// Folded-buffer path.
		m.AndInto3(buf, a, b, c)
		if got := m.AndPopCountVec(buf, d); got != want {
			t.Fatalf("AndPopCountVec = %d, want %d", got, want)
		}
		if got := m.ComboVec(buf, a, b, c, d); got != want {
			t.Fatalf("ComboVec = %d, want %d", got, want)
		}
	}
}

func TestAndIntoMatchesPair(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	grid := randomGrid(rng, 8, 100, 0.5)
	m := FromBools(grid)
	buf := make([]uint64, m.Words())
	m.AndInto(buf, 2, 5)
	n := 0
	for _, w := range buf {
		n += popcount(w)
	}
	if want := grid.comboCount(2, 5); n != want {
		t.Fatalf("AndInto popcount = %d, want %d", n, want)
	}
}

func popcount(w uint64) int {
	n := 0
	for w != 0 {
		w &= w - 1
		n++
	}
	return n
}

func TestSpliceAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		genes := 1 + rng.Intn(10)
		samples := 1 + rng.Intn(400)
		grid := randomGrid(rng, genes, samples, 0.35)
		m := FromBools(grid)
		remove := NewVec(samples)
		var keptCols []int
		for s := 0; s < samples; s++ {
			if rng.Float64() < 0.3 {
				remove.Set(s)
			} else {
				keptCols = append(keptCols, s)
			}
		}
		out := m.Splice(remove)
		if out.Samples() != len(keptCols) {
			t.Fatalf("spliced to %d samples, want %d", out.Samples(), len(keptCols))
		}
		for g := 0; g < genes; g++ {
			for newS, oldS := range keptCols {
				if out.Get(g, newS) != grid[g][oldS] {
					t.Fatalf("trial %d: spliced bit (%d,%d) != original (%d,%d)",
						trial, g, newS, g, oldS)
				}
			}
		}
	}
}

func TestSpliceAll(t *testing.T) {
	m := New(4, 70)
	m.Set(0, 5)
	out := m.Splice(AllOnes(70))
	if out.Samples() != 0 || out.Genes() != 4 {
		t.Fatalf("splice-all gave %d×%d", out.Genes(), out.Samples())
	}
}

func TestSpliceNone(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	grid := randomGrid(rng, 5, 130, 0.5)
	m := FromBools(grid)
	out := m.Splice(NewVec(130))
	if !out.Equal(m) {
		t.Fatal("splice of empty remove set changed the matrix")
	}
}

func TestSplicePreservesComboCounts(t *testing.T) {
	// Property: for any combination, the count over surviving columns
	// equals the count on the spliced matrix. This is the exact invariant
	// the cover loop relies on after each iteration.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		genes := 4 + rng.Intn(8)
		samples := 1 + rng.Intn(300)
		grid := randomGrid(rng, genes, samples, 0.4)
		m := FromBools(grid)
		remove := NewVec(samples)
		for s := 0; s < samples; s++ {
			if rng.Float64() < 0.4 {
				remove.Set(s)
			}
		}
		spliced := m.Splice(remove)
		p := rng.Perm(genes)
		combo := p[:2+rng.Intn(3)]
		// Count survivors manually.
		want := 0
		for s := 0; s < samples; s++ {
			if remove.Get(s) {
				continue
			}
			all := true
			for _, g := range combo {
				if !grid[g][s] {
					all = false
					break
				}
			}
			if all {
				want++
			}
		}
		return spliced.ComboPopCount(combo...) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestVecOps(t *testing.T) {
	a := NewVec(200)
	b := NewVec(200)
	a.Set(0)
	a.Set(64)
	a.Set(199)
	b.Set(64)
	b.Set(100)
	if a.PopCount() != 3 || b.PopCount() != 2 {
		t.Fatal("popcount wrong")
	}
	c := a.Clone()
	c.And(b)
	if c.PopCount() != 1 || !c.Get(64) {
		t.Fatal("And wrong")
	}
	c = a.Clone()
	c.Or(b)
	if c.PopCount() != 4 {
		t.Fatal("Or wrong")
	}
	c = a.Clone()
	c.AndNot(b)
	if c.PopCount() != 2 || c.Get(64) {
		t.Fatal("AndNot wrong")
	}
}

func TestAllOnesTail(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 127, 128, 200} {
		v := AllOnes(n)
		if v.PopCount() != n {
			t.Errorf("AllOnes(%d).PopCount() = %d", n, v.PopCount())
		}
	}
}

func TestVecSplice(t *testing.T) {
	v := NewVec(10)
	v.Set(1)
	v.Set(5)
	v.Set(9)
	remove := NewVec(10)
	remove.Set(0)
	remove.Set(5)
	out := v.Splice(remove)
	if out.Len() != 8 {
		t.Fatalf("spliced length %d, want 8", out.Len())
	}
	// Old col 1 → new col 0; old col 9 → new col 7; old col 5 removed.
	if !out.Get(0) || !out.Get(7) || out.PopCount() != 2 {
		t.Fatal("Vec.Splice produced wrong bits")
	}
}

func TestVecAndPopCount(t *testing.T) {
	v := AllOnes(130)
	words := make([]uint64, len(v.Words()))
	words[0] = 0xFF
	words[2] = ^uint64(0) // only 2 valid bits in tail, but v masks them
	if got := v.AndPopCount(words); got != 8+2 {
		t.Fatalf("AndPopCount = %d, want 10", got)
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	grid := randomGrid(rng, 23, 307, 0.2)
	m := FromBools(grid)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(m) {
		t.Fatal("round-trip changed the matrix")
	}
}

func TestReadMatrixBadMagic(t *testing.T) {
	if _, err := ReadMatrix(bytes.NewReader([]byte("NOTAMATRIX"))); err == nil {
		t.Fatal("expected error for bad magic")
	}
}

func TestReadMatrixTruncated(t *testing.T) {
	m := New(4, 100)
	var buf bytes.Buffer
	if _, err := m.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadMatrix(bytes.NewReader(raw[:len(raw)-5])); err == nil {
		t.Fatal("expected error for truncated payload")
	}
}

func TestDensity(t *testing.T) {
	m := New(10, 100)
	if m.Density() != 0 {
		t.Fatal("empty matrix density should be 0")
	}
	for s := 0; s < 100; s++ {
		m.Set(0, s)
	}
	if d := m.Density(); d != 0.1 {
		t.Fatalf("density = %g, want 0.1", d)
	}
}

func TestExtractBits(t *testing.T) {
	cases := []struct{ v, mask, want uint64 }{
		{0b1011, 0b1111, 0b1011},
		{0b1011, 0b1010, 0b11},
		{0b1011, 0, 0},
		{^uint64(0), 0x8000000000000001, 0b11},
	}
	for _, c := range cases {
		if got := extractBits(c.v, c.mask); got != c.want {
			t.Errorf("extractBits(%b, %b) = %b, want %b", c.v, c.mask, got, c.want)
		}
	}
}

func BenchmarkAndPopCount4(b *testing.B) {
	rng := rand.New(rand.NewSource(8))
	m := FromBools(randomGrid(rng, 64, 911, 0.3)) // BRCA-sized sample dimension
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.AndPopCount4(n%61, n%61+1, n%61+2, n%61+3)
	}
}

func BenchmarkAndPopCountVecPrefolded(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m := FromBools(randomGrid(rng, 64, 911, 0.3))
	buf := make([]uint64, m.Words())
	m.AndInto3(buf, 0, 1, 2)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.AndPopCountVec(buf, 3+n%60)
	}
}

func BenchmarkSplice(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	m := FromBools(randomGrid(rng, 2000, 911, 0.3))
	remove := NewVec(911)
	for s := 0; s < 911; s += 3 {
		remove.Set(s)
	}
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		m.Splice(remove)
	}
}

func TestFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	grid := randomGrid(rng, 10, 130, 0.3)
	a := FromBools(grid)
	b := FromBools(grid)
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical matrices must share a fingerprint")
	}
	c := a.Clone()
	c.Set(9, 129)
	c.Clear(9, 129)
	if c.Fingerprint() != a.Fingerprint() {
		t.Fatal("set+clear must not change the fingerprint")
	}
	c.Set(0, 0)
	if grid[0][0] {
		c.Clear(0, 0)
	}
	if c.Fingerprint() == a.Fingerprint() {
		t.Fatal("a flipped bit must change the fingerprint")
	}
	// Dimension changes alone change the fingerprint.
	if New(3, 5).Fingerprint() == New(5, 3).Fingerprint() {
		t.Fatal("transposed dimensions must differ")
	}
}

func TestFreeFunctionPopcounts(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	grid := randomGrid(rng, 6, 200, 0.4)
	m := FromBools(grid)
	a, b, c, d := m.Row(0), m.Row(1), m.Row(2), m.Row(3)
	if got, want := PopAnd2(a, b), grid.comboCount(0, 1); got != want {
		t.Fatalf("PopAnd2 = %d, want %d", got, want)
	}
	if got, want := PopAnd3(a, b, c), grid.comboCount(0, 1, 2); got != want {
		t.Fatalf("PopAnd3 = %d, want %d", got, want)
	}
	if got, want := PopAnd4(a, b, c, d), grid.comboCount(0, 1, 2, 3); got != want {
		t.Fatalf("PopAnd4 = %d, want %d", got, want)
	}
	dst := make([]uint64, len(a))
	AndWords(dst, a, b)
	if got, want := PopAnd2(dst, c), grid.comboCount(0, 1, 2); got != want {
		t.Fatalf("AndWords+PopAnd2 = %d, want %d", got, want)
	}
}

func TestVecClearAndChecks(t *testing.T) {
	v := NewVec(70)
	v.Set(69)
	v.Clear(69)
	if v.Get(69) {
		t.Fatal("cleared vec bit still set")
	}
	for _, fn := range []func(){
		func() { v.Get(70) },
		func() { v.Set(-1) },
		func() { NewVec(-1) },
		func() { New(-1, 5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}

func TestVecOpLengthMismatchPanics(t *testing.T) {
	a, b := NewVec(10), NewVec(20)
	for i, fn := range []func(){
		func() { a.And(b) },
		func() { a.Or(b) },
		func() { a.AndNot(b) },
		func() { a.Splice(b) },
		func() { a.AndPopCount(make([]uint64, 5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestEqualDimensionMismatch(t *testing.T) {
	if New(3, 10).Equal(New(3, 11)) || New(3, 10).Equal(New(4, 10)) {
		t.Fatal("Equal ignored dimensions")
	}
	a, b := New(2, 64), New(2, 64)
	a.Set(1, 63)
	if a.Equal(b) {
		t.Fatal("Equal ignored contents")
	}
}

func TestAndPopCountRowsSingleAndPanics(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	grid := randomGrid(rng, 5, 90, 0.5)
	m := FromBools(grid)
	if got, want := m.AndPopCountRows([][]uint64{m.Row(0)}, 1), grid.comboCount(0, 1); got != want {
		t.Fatalf("AndPopCountRows single = %d, want %d", got, want)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for 4 prefetched rows")
		}
	}()
	m.AndPopCountRows([][]uint64{m.Row(0), m.Row(1), m.Row(2), m.Row(3)}, 4)
}

func TestBufferLengthPanics(t *testing.T) {
	m := New(4, 100)
	short := make([]uint64, 1)
	for i, fn := range []func(){
		func() { m.AndInto(short, 0, 1) },
		func() { m.AndInto3(short, 0, 1, 2) },
		func() { m.ComboVec(short) },
		func() { m.ComboVec(short, 0, 1, 2, 3, 0, 1) },
		func() { m.ComboPopCount() },
		func() { m.Splice(NewVec(5)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

// TestAndWordsPopUnrolled pins the unrolled fold to a naive reference on
// lengths straddling every unroll boundary (0..4 remainder tails).
func TestAndWordsPopUnrolled(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for _, words := range []int{0, 1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 64, 127} {
		a := make([]uint64, words)
		b := make([]uint64, words)
		for i := range a {
			a[i] = rng.Uint64()
			b[i] = rng.Uint64()
		}
		dst := make([]uint64, words)
		got := AndWordsPop(dst, a, b)
		want := 0
		for i := range a {
			v := a[i] & b[i]
			if dst[i] != v {
				t.Fatalf("words=%d: dst[%d] = %#x want %#x", words, i, dst[i], v)
			}
			want += bits.OnesCount64(v)
		}
		if got != want {
			t.Fatalf("words=%d: popcount %d want %d", words, got, want)
		}
	}
}

func TestMatrixPopCount(t *testing.T) {
	m := New(5, 130)
	m.Set(0, 0)
	m.Set(0, 129)
	m.Set(4, 64)
	if got := m.PopCount(); got != 3 {
		t.Fatalf("PopCount = %d want 3", got)
	}
}

// BenchmarkAndWordsPop guards the unroll-by-4 fold — the hot instruction
// of the dense scan path (BENCH_9.json's dense baseline).
func BenchmarkAndWordsPop(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	m := FromBools(randomGrid(rng, 64, 911, 0.3))
	dst := make([]uint64, m.Words())
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		AndWordsPop(dst, m.Row(n%63), m.Row(n%63+1))
	}
}
