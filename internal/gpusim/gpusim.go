// Package gpusim models a V100-class GPU executing one partition of the
// multi-hit kernel, producing the performance metrics the paper reads off
// NVPROF: busy time, DRAM read/write throughput, and the warp-stall
// taxonomy (memory dependency / memory throttle / execution dependency).
//
// There is no CUDA in this reproduction, so the device is an analytic
// performance model rather than a cycle simulator. It is driven by the
// exact work and thread counts the schedulers produce (package sched) and
// by one phenomenological nonlinearity observed in the paper's profiles:
// the per-combination cost of a thread grows with the span of distinct
// matrix rows its inner loop streams ("the range of memory accessed by
// threads ... decreases exponentially", Sec. IV-C1). Threads that sweep
// many distinct rows defeat prefetching and request overlap and stall on
// global memory; threads that sweep a handful run at compute-bound speed.
// Because spans vary over orders of magnitude (up to C(G−1−j, 2) under the
// 2x2 scheme), the penalty is logarithmic in the span relative to the
// launch's maximum span, scaled by the kernel's access irregularity:
//
//	penalty(s) = MemPenaltyMax · Irregularity · ln(1+s) / ln(1+SpanCap)
//
// Everything the reproduction reports — the utilization/DRAM-throughput
// anticorrelation of Fig. 6, the flat 3x1 profile of Fig. 7, the
// memory→compute-bound transition, and the strong/weak scaling curves —
// emerges from this mechanism plus deterministic per-device jitter and a
// heavy-tailed straggler term, with constants calibrated against the
// paper's anchor runtimes (see DESIGN.md §2).
package gpusim

import (
	"fmt"
	"math"
)

// DeviceSpec describes one GPU of the simulated cluster.
type DeviceSpec struct {
	// Name identifies the device model.
	Name string
	// SMs is the number of streaming multiprocessors.
	SMs int
	// WarpSize is threads per warp.
	WarpSize int
	// SaturationThreads is the thread count needed to saturate the
	// device's throughput (~512 per SM for these compute-heavy kernels).
	// Jobs with fewer threads execute at proportionally reduced rate —
	// the effect that kills the 1x3 scheme ("a small number of threads
	// (limited parallelization)", Sec. III-A).
	SaturationThreads int
	// BlockSize is threads per block (the reduction width).
	BlockSize int
	// ClockHz is the SM clock.
	ClockHz float64
	// DRAMBandwidth is the peak memory bandwidth in bytes/second.
	DRAMBandwidth float64
	// WordOpsPerCyclePerSM is the sustained AND+popcount word throughput of
	// one SM per cycle when running from cache (compute-bound ceiling).
	WordOpsPerCyclePerSM float64
	// MemPenaltyMax is the maximum slowdown factor added when a partition
	// is fully memory-bound (busy = ideal × (1 + MemPenaltyMax)).
	MemPenaltyMax float64
	// JitterFrac is the amplitude of deterministic per-device runtime
	// noise (DRAM page behavior, clock boost variation). 0 disables.
	JitterFrac float64
	// StragglerScale is the mean of an exponential per-device slowdown
	// tail. Unlike the bounded jitter, its maximum over n devices grows
	// like StragglerScale·ln(n), which is what makes bigger machines lose
	// efficiency even at fixed work per GPU (the weak-scaling decline of
	// Fig. 4b). 0 disables.
	StragglerScale float64
	// TrafficFraction is the share of streamed words that reach DRAM; the
	// rest are served by the L2/texture hierarchy, since thousands of
	// concurrent blocks re-read the same gene rows within a wavefront.
	TrafficFraction float64
}

// V100 returns the device model used throughout the reproduction,
// calibrated so that the paper's anchor runtimes land in band: a 3-hit
// BRCA run on one GPU takes tens of minutes and a 4-hit run days
// (Sec. I: 23 minutes and "over 40 days").
func V100() DeviceSpec {
	return DeviceSpec{
		Name:                 "V100-SXM2-16GB",
		SMs:                  80,
		WarpSize:             32,
		SaturationThreads:    80 * 512,
		BlockSize:            512,
		ClockHz:              1.455e9,
		DRAMBandwidth:        900e9,
		WordOpsPerCyclePerSM: 2.5,
		MemPenaltyMax:        2.1,
		JitterFrac:           0.04,
		StragglerScale:       0.03,
		TrafficFraction:      0.05,
	}
}

// A100 returns a projection model for an A100-SXM4-80GB-class device — a
// what-if the paper's outlook invites (Summit's successor hardware): ~35%
// more SMs, ~2.2× the DRAM bandwidth, and a larger L2 (modeled as a lower
// DRAM traffic fraction). Constants scale the calibrated V100 model; this
// is a projection, not a calibration.
func A100() DeviceSpec {
	d := V100()
	d.Name = "A100-SXM4-80GB"
	d.SMs = 108
	d.SaturationThreads = 108 * 512
	d.ClockHz = 1.41e9
	d.DRAMBandwidth = 2039e9
	d.TrafficFraction = 0.03
	d.MemPenaltyMax = 1.6 // better latency hiding (larger L2, more warps)
	return d
}

// Validate reports the first problem with the spec.
func (d DeviceSpec) Validate() error {
	switch {
	case d.SMs <= 0:
		return fmt.Errorf("gpusim: SMs must be positive")
	case d.ClockHz <= 0:
		return fmt.Errorf("gpusim: ClockHz must be positive")
	case d.DRAMBandwidth <= 0:
		return fmt.Errorf("gpusim: DRAMBandwidth must be positive")
	case d.WordOpsPerCyclePerSM <= 0:
		return fmt.Errorf("gpusim: WordOpsPerCyclePerSM must be positive")
	case d.MemPenaltyMax < 0:
		return fmt.Errorf("gpusim: MemPenaltyMax must be non-negative")
	case d.JitterFrac < 0 || d.JitterFrac > 0.5:
		return fmt.Errorf("gpusim: JitterFrac must be in [0, 0.5]")
	case d.StragglerScale < 0 || d.StragglerScale > 0.5:
		return fmt.Errorf("gpusim: StragglerScale must be in [0, 0.5]")
	case d.TrafficFraction <= 0 || d.TrafficFraction > 1:
		return fmt.Errorf("gpusim: TrafficFraction must be in (0, 1]")
	}
	return nil
}

// Job is one GPU's share of a kernel launch, as cut by the scheduler.
type Job struct {
	// Threads is the number of λ threads assigned.
	Threads uint64
	// Combos is the number of combinations those threads score. Callers
	// pricing from a sched curve pass an exhaustive count, which is an
	// UPPER bound once the engine's bound-and-prune layer is on — the
	// pruned engine evaluates at most this many (docs/PRUNING.md;
	// cluster.Workload.PruneRatio applies an optional discount).
	Combos uint64
	// RowWords is the packed words per gene row summed over the tumor and
	// normal matrices (the words one combination's inner iteration
	// streams).
	RowWords int
	// PrefetchRows is the number of rows each thread prefetches once
	// (h−1 for the production kernels).
	PrefetchRows int
	// DeviceIndex seeds the deterministic jitter; use the GPU's global
	// index in the cluster.
	DeviceIndex int
	// Irregularity in [0, 1] scales the span-driven memory penalty by how
	// scattered the kernel's access pattern is. The 2x2 scheme's depth-2
	// inner loop re-streams and jumps across rows (1.0); the 3x1 scheme's
	// single sequential l-sweep is prefetch-friendly (≈0.1) — this is the
	// "more regular memory access" that makes 3x1 scale (Sec. IV-D).
	Irregularity float64
	// SpanCap is the maximum possible inner-loop span of the launch (G for
	// the 3x1 and 3-hit kernels, C(G−2, 2) for 2x2); it normalizes the
	// logarithmic penalty. Required when Irregularity > 0.
	SpanCap float64
	// ExtraSlowdown multiplies the job's busy time on top of the model's
	// intrinsic jitter and straggler terms. Zero means disabled (treated as
	// 1.0). The cluster fault injector uses it to inflate designated
	// straggler devices beyond the model's natural tail (docs/FAULTS.md).
	ExtraSlowdown float64
}

// Metrics is what the model reports for one job — the quantities NVPROF
// reported for the real runs.
type Metrics struct {
	// BusySeconds is the device's active time.
	BusySeconds float64
	// IdealSeconds is the compute-bound lower bound (no memory penalty,
	// no jitter).
	IdealSeconds float64
	// DRAMBytes is the modeled global-memory traffic.
	DRAMBytes float64
	// DRAMThroughput is DRAMBytes / BusySeconds (bytes/second).
	DRAMThroughput float64
	// MemoryBound reports whether the memory penalty exceeds half its
	// maximum (the Fig. 6 memory-bound/compute-bound distinction).
	MemoryBound bool
	// StallMemDependency, StallMemThrottle and StallExecDependency are the
	// fractions of stalled cycles attributed to each NVPROF category
	// (they sum to 1 when any stall exists).
	StallMemDependency  float64
	StallMemThrottle    float64
	StallExecDependency float64
	// Spread is the job's mean inner-loop row span.
	Spread float64
}

// hash01 returns a deterministic uniform value in (0, 1) for a device index
// and stream (splitmix64 finalizer).
func hash01(index, stream int) float64 {
	z := uint64(index)*0x9e3779b97f4a7c15 + uint64(stream)*0xd1b54a32d192ed03 + 0x2545f4914f6cdd1d
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53)
	if u <= 0 {
		u = 0.5 / float64(1<<53)
	}
	return u
}

// jitter returns a deterministic pseudo-random factor in [−1, 1].
func jitter(index int) float64 {
	return hash01(index, 0)*2 - 1
}

// StragglerTailCap bounds the exponential straggler sample. The raw
// exponential is unbounded — hash01's floor puts its maximum near
// −ln(2⁻⁵⁴) ≈ 37, and a single such device (slowdown 1 + 0.03·37 ≈ 2.1×
// under the V100 model) dominates a small simulation with one absurd
// outlier no real fleet exhibits. The cap is chosen against two
// constraints: an exponential exceeds 12 with probability e⁻¹² ≈ 6×10⁻⁶,
// so the expected maximum over n devices — which grows like ln(n) and
// drives the weak-scaling decline of Fig. 4b — is unaffected up to fleets
// of ~10⁵ GPUs (E[max] ≈ ln(n) + γ ≈ 12 at n ≈ e^11.4); below the cap the
// distribution is untouched. A cap much lower (say 6) would saturate at
// the ~600-device fleets the weak-scaling study simulates and flatten the
// very decline the term exists to produce.
const StragglerTailCap = 12.0

// straggler returns a deterministic exponential slowdown sample with unit
// mean for a device index, truncated at StragglerTailCap.
func straggler(index int) float64 {
	s := -math.Log(hash01(index, 1))
	if s > StragglerTailCap {
		s = StragglerTailCap
	}
	return s
}

// Simulate runs the model for one job.
func (d DeviceSpec) Simulate(job Job) Metrics {
	if err := d.Validate(); err != nil {
		//lint:allow panicfree job specs are validated by cluster.Workload.Validate before the hot loop; this guards direct misuse
		panic(err)
	}
	var m Metrics
	if job.Combos == 0 && job.Threads == 0 {
		return m
	}
	if job.RowWords <= 0 {
		//lint:allow panicfree validated upstream by cluster before the hot loop
		panic("gpusim: Job.RowWords must be positive")
	}
	spread := 0.0
	if job.Threads > 0 {
		spread = float64(job.Combos) / float64(job.Threads)
	}
	m.Spread = spread

	// Word operations: the streaming inner loops plus per-thread prefetch.
	streamWords := float64(job.Combos) * float64(job.RowWords)
	prefetchWords := float64(job.Threads) * float64(job.PrefetchRows) * float64(job.RowWords)
	totalWords := streamWords + prefetchWords

	rate := float64(d.SMs) * d.WordOpsPerCyclePerSM * d.ClockHz // words/sec
	// Occupancy: a job with fewer threads than the device can keep
	// resident runs at proportionally reduced throughput.
	if d.SaturationThreads > 0 && job.Threads > 0 &&
		job.Threads < uint64(d.SaturationThreads) {
		rate *= float64(job.Threads) / float64(d.SaturationThreads)
	}
	m.IdealSeconds = totalWords / rate

	if job.Irregularity < 0 || job.Irregularity > 1 {
		//lint:allow panicfree validated upstream by cluster before the hot loop
		panic("gpusim: Job.Irregularity must be in [0, 1]")
	}
	if job.Irregularity > 0 && job.SpanCap <= 0 {
		//lint:allow panicfree validated upstream by cluster before the hot loop
		panic("gpusim: Job.SpanCap required when Irregularity > 0")
	}
	// Memory penalty: logarithmic in the inner-loop row span relative to
	// the launch's maximum span, scaled by the kernel's access
	// irregularity.
	frac := 0.0
	if job.Irregularity > 0 && spread > 0 {
		frac = math.Log1p(spread) / math.Log1p(job.SpanCap) * job.Irregularity
		if frac > 1 {
			frac = 1
		}
	}
	if job.ExtraSlowdown < 0 {
		//lint:allow panicfree validated upstream by cluster before the hot loop
		panic("gpusim: Job.ExtraSlowdown must be non-negative")
	}
	penalty := d.MemPenaltyMax * frac
	j := 1 + d.JitterFrac*jitter(job.DeviceIndex)
	j *= 1 + d.StragglerScale*straggler(job.DeviceIndex)
	if job.ExtraSlowdown > 0 {
		// Injected straggler inflation: stretches the device like a slow
		// clock, so it scales wait/stall time along with compute.
		j *= job.ExtraSlowdown
	}
	m.BusySeconds = m.IdealSeconds * (1 + penalty) * j
	m.MemoryBound = frac > 0.5

	// DRAM traffic: TrafficFraction of the streamed words reach DRAM (the
	// rest hit in L2 as concurrent blocks re-read the same rows); the span
	// penalty above models latency exposure (scattered row jumps defeat
	// prefetching and request overlap), not traffic reduction. A long-span
	// device therefore moves the same bytes over a longer busy time —
	// achieved throughput falls, which is the Fig. 6 utilization/
	// throughput anticorrelation.
	m.DRAMBytes = 8 * (streamWords + prefetchWords) * d.TrafficFraction
	if m.BusySeconds > 0 {
		m.DRAMThroughput = m.DRAMBytes / m.BusySeconds
		if m.DRAMThroughput > d.DRAMBandwidth {
			// The device cannot exceed its bandwidth: the excess demand
			// lengthens the run instead.
			m.BusySeconds = m.DRAMBytes / d.DRAMBandwidth
			m.DRAMThroughput = d.DRAMBandwidth
		}
	}

	// Stall taxonomy. Stalled cycles are the gap between busy and ideal;
	// they split into NVPROF's three dominant categories: memory
	// dependency scales with the cache-miss fraction, memory throttle
	// with how close demand comes to peak bandwidth, and the remainder is
	// execution dependency (in-thread instruction chains).
	stall := m.BusySeconds - m.IdealSeconds*j
	if stall > 0 {
		bwPressure := math.Min(1, m.DRAMThroughput/d.DRAMBandwidth)
		memDep := frac * (1 - 0.5*bwPressure)
		throttle := frac * 0.5 * bwPressure
		exec := 0.25 * (1 - frac)
		sum := memDep + throttle + exec
		m.StallMemDependency = memDep / sum
		m.StallMemThrottle = throttle / sum
		m.StallExecDependency = exec / sum
	}
	return m
}

// DevicesFor returns how many devices of this spec a launch of n
// λ-threads needs to run at full occupancy — the sizing quantum the
// discovery service's admission controller reserves per job (threads
// below one device's saturation still occupy that whole device). Always
// at least 1.
func (d DeviceSpec) DevicesFor(threads uint64) int {
	if threads == 0 || d.SaturationThreads <= 0 {
		return 1
	}
	sat := uint64(d.SaturationThreads)
	n := threads / sat
	if threads%sat != 0 {
		n++
	}
	const maxInt = int(^uint(0) >> 1)
	if n == 0 {
		return 1
	}
	if n > uint64(maxInt) {
		return maxInt
	}
	return int(n)
}

// Utilization converts per-device busy times into the Fig. 6/7 utilization
// profile: each device's busy time as a fraction of the slowest device's.
func Utilization(busy []float64) []float64 {
	max := 0.0
	for _, b := range busy {
		if b > max {
			max = b
		}
	}
	out := make([]float64, len(busy))
	if max == 0 {
		return out
	}
	for i, b := range busy {
		out[i] = b / max
	}
	return out
}
