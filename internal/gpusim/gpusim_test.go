package gpusim

import (
	"math"
	"testing"
)

func job(threads, combos uint64, idx int) Job {
	return Job{Threads: threads, Combos: combos, RowWords: 29, PrefetchRows: 3,
		DeviceIndex: idx, Irregularity: 1, SpanCap: 200000}
}

func TestValidate(t *testing.T) {
	if err := V100().Validate(); err != nil {
		t.Fatalf("V100 spec invalid: %v", err)
	}
	bad := []func(*DeviceSpec){
		func(d *DeviceSpec) { d.SMs = 0 },
		func(d *DeviceSpec) { d.ClockHz = 0 },
		func(d *DeviceSpec) { d.DRAMBandwidth = -1 },
		func(d *DeviceSpec) { d.WordOpsPerCyclePerSM = 0 },
		func(d *DeviceSpec) { d.MemPenaltyMax = -0.1 },
		func(d *DeviceSpec) { d.JitterFrac = 0.9 },
	}
	for i, mutate := range bad {
		d := V100()
		mutate(&d)
		if d.Validate() == nil {
			t.Errorf("case %d: Validate accepted bad spec", i)
		}
	}
}

func TestEmptyJob(t *testing.T) {
	m := V100().Simulate(Job{})
	if m.BusySeconds != 0 || m.DRAMBytes != 0 {
		t.Fatal("empty job should cost nothing")
	}
}

func TestBadRowWordsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for RowWords=0")
		}
	}()
	V100().Simulate(Job{Threads: 1, Combos: 1})
}

func TestBusyScalesWithWork(t *testing.T) {
	d := V100()
	d.JitterFrac = 0
	a := d.Simulate(job(1000, 1_000_000, 0))
	b := d.Simulate(job(1000, 2_000_000, 0))
	if b.BusySeconds <= a.BusySeconds {
		t.Fatal("doubling combos must increase busy time")
	}
	if b.IdealSeconds <= a.IdealSeconds {
		t.Fatal("ideal time must scale with work")
	}
}

func TestMemoryPenaltyIncreasesWithSpread(t *testing.T) {
	d := V100()
	d.JitterFrac = 0
	const combos = 10_000_000
	// Same combinations spread over many threads (small span) vs few
	// threads (large span): the large-span job must run slower per combo
	// and be flagged memory bound.
	small := d.Simulate(job(combos/4, combos, 0))     // span 4
	large := d.Simulate(job(combos/40000, combos, 0)) // span 40000
	if small.Spread >= large.Spread {
		t.Fatal("spread computation wrong")
	}
	// Compare per-combination busy time; prefetch traffic differs, so
	// normalize by ideal.
	if large.BusySeconds/large.IdealSeconds <= small.BusySeconds/small.IdealSeconds {
		t.Fatal("larger row span must incur a larger memory penalty")
	}
	if !large.MemoryBound {
		t.Fatal("span 40000 of cap 200000 should be memory bound")
	}
	if small.MemoryBound {
		t.Fatal("span 4 should be compute bound")
	}
}

func TestUtilizationThroughputAnticorrelation(t *testing.T) {
	// Fig. 6: across jobs of EQUAL combination counts but shrinking spans
	// (what the EA scheduler hands successive GPUs under the 2x2 scheme),
	// busy time falls while DRAM throughput rises.
	d := V100()
	d.JitterFrac = 0
	const combos = 50_000_000
	spans := []float64{100000, 10000, 1000, 100, 10}
	var busy, tput []float64
	for _, s := range spans {
		m := d.Simulate(job(uint64(combos/s), combos, 0))
		busy = append(busy, m.BusySeconds)
		tput = append(tput, m.DRAMThroughput)
	}
	// Busy time falls with span through the latency-bound region; the very
	// last entry may rise again as per-thread prefetch overhead dominates
	// (the paper's utilization spikes near the end of the GPU range).
	for i := 1; i < len(spans)-1; i++ {
		if busy[i] >= busy[i-1] {
			t.Fatalf("busy time should fall with span: %v", busy)
		}
	}
	// The overlap-friendly (small-span) end achieves far higher DRAM
	// throughput than the latency-bound (large-span) end.
	if tput[len(tput)-2] <= tput[0] {
		t.Fatalf("small spans should out-stream the largest: %v", tput)
	}
	// Pearson correlation between busy and throughput must be negative —
	// the Fig. 6 anticorrelation.
	if corr := pearson(busy, tput); corr >= 0 {
		t.Fatalf("busy/throughput correlation = %.3f, want negative", corr)
	}
}

// pearson computes the correlation coefficient of two equal-length series.
func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	return cov / math.Sqrt(vx*vy)
}

func TestThroughputNeverExceedsBandwidth(t *testing.T) {
	d := V100()
	for _, th := range []uint64{10, 1000, 100000, 10000000} {
		m := d.Simulate(job(th, 100_000_000, 3))
		if m.DRAMThroughput > d.DRAMBandwidth+1 {
			t.Fatalf("throughput %g exceeds bandwidth %g", m.DRAMThroughput, d.DRAMBandwidth)
		}
	}
}

func TestStallFractionsSumToOne(t *testing.T) {
	d := V100()
	for idx, th := range []uint64{100, 10000, 1000000} {
		m := d.Simulate(job(th, 50_000_000, idx))
		sum := m.StallMemDependency + m.StallMemThrottle + m.StallExecDependency
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("stall fractions sum to %g", sum)
		}
		if m.StallMemDependency < 0 || m.StallMemThrottle < 0 || m.StallExecDependency < 0 {
			t.Fatal("negative stall fraction")
		}
	}
}

func TestMemoryBoundJobsStallOnMemory(t *testing.T) {
	d := V100()
	d.JitterFrac = 0
	memBound := d.Simulate(job(100, 10_000_000, 0))        // huge span
	compBound := d.Simulate(job(5_000_000, 10_000_000, 0)) // span 2
	if memBound.StallMemDependency+memBound.StallMemThrottle <
		compBound.StallMemDependency+compBound.StallMemThrottle {
		t.Fatal("memory-bound job should have a larger memory-stall share")
	}
	if compBound.StallExecDependency <= memBound.StallExecDependency {
		t.Fatal("compute-bound job should skew toward execution-dependency stalls")
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	d := V100()
	d.StragglerScale = 0
	a := d.Simulate(job(1000, 1_000_000, 7))
	b := d.Simulate(job(1000, 1_000_000, 7))
	if a != b {
		t.Fatal("same job+index must simulate identically")
	}
	c := d.Simulate(job(1000, 1_000_000, 8))
	if a.BusySeconds == c.BusySeconds {
		t.Fatal("different device indices should jitter differently")
	}
	ratio := c.BusySeconds / a.BusySeconds
	lim := (1 + d.JitterFrac) / (1 - d.JitterFrac)
	if ratio > lim || ratio < 1/lim {
		t.Fatalf("jitter ratio %g outside ±%g band", ratio, d.JitterFrac)
	}
}

func TestJitterZeroMean(t *testing.T) {
	sum := 0.0
	const n = 10000
	for i := 0; i < n; i++ {
		sum += jitter(i)
	}
	if mean := sum / n; math.Abs(mean) > 0.02 {
		t.Fatalf("jitter mean %g too far from 0", mean)
	}
}

func TestUtilizationProfile(t *testing.T) {
	u := Utilization([]float64{10, 5, 2.5, 10})
	want := []float64{1, 0.5, 0.25, 1}
	for i := range want {
		if math.Abs(u[i]-want[i]) > 1e-12 {
			t.Fatalf("Utilization = %v, want %v", u, want)
		}
	}
	if z := Utilization([]float64{0, 0}); z[0] != 0 || z[1] != 0 {
		t.Fatal("all-zero busy should give zero utilization")
	}
}

func TestCalibrationAnchors(t *testing.T) {
	// Paper anchors (Sec. I): 3-hit BRCA on one V100 took 23 minutes; a
	// 4-hit run was estimated at "over 40 days". Those are full greedy
	// runs of roughly a dozen iterations; a single enumeration pass should
	// therefore land at a few minutes (3-hit) and a handful of days
	// (4-hit). The full-run anchors are asserted at the cluster level.
	d := V100()
	d.JitterFrac = 0
	d.StragglerScale = 0
	const g = 19411
	rowWords := (911+63)/64 + (852+63)/64 // tumor + normal words
	// 3-hit: C(G,2) threads, C(G,3) combos.
	threads3 := uint64(g) * (g - 1) / 2
	combos3 := threads3 * (g - 2) / 3
	m3 := d.Simulate(Job{Threads: threads3, Combos: combos3, RowWords: rowWords,
		PrefetchRows: 2, Irregularity: 0.6, SpanCap: g})
	if m3.BusySeconds < 40 || m3.BusySeconds > 700 {
		t.Errorf("3-hit single-GPU pass %.0f s; want minutes-scale (full run ≈ 23 min)", m3.BusySeconds)
	}
	// 4-hit: C(G,3) threads, C(G,4) combos.
	combos4 := combos3 * (g - 3) / 4
	m4 := d.Simulate(Job{Threads: combos3, Combos: combos4, RowWords: rowWords,
		PrefetchRows: 3, Irregularity: 0.12, SpanCap: g})
	days := m4.BusySeconds / 86400
	if days < 2 || days > 30 {
		t.Errorf("4-hit single-GPU pass %.1f days; want days-scale (full run > 40 days)", days)
	}
}

func TestOccupancyPenalty(t *testing.T) {
	d := V100()
	d.JitterFrac = 0
	d.StragglerScale = 0
	// Same total work spread over saturating vs starving thread counts:
	// normalize prefetch out by using PrefetchRows 0.
	full := d.Simulate(Job{Threads: uint64(d.SaturationThreads) * 10,
		Combos: 100_000_000, RowWords: 29})
	starved := d.Simulate(Job{Threads: 3, Combos: 100_000_000, RowWords: 29})
	if starved.IdealSeconds < full.IdealSeconds*1000 {
		t.Fatalf("3 threads should starve the device: %.3g vs %.3g",
			starved.IdealSeconds, full.IdealSeconds)
	}
	// Just above saturation there is no penalty.
	at := d.Simulate(Job{Threads: uint64(d.SaturationThreads),
		Combos: 100_000_000, RowWords: 29})
	if at.IdealSeconds != full.IdealSeconds {
		t.Fatalf("saturated job should run at full rate")
	}
}

func TestStragglerTailCapped(t *testing.T) {
	// The raw exponential reaches ~37 at hash01's floor; the capped sample
	// must never exceed StragglerTailCap, yet the distribution below the
	// cap must be untouched — over 10k devices the expected max of an
	// exponential is ln(10⁴)+γ ≈ 9.8, so the observed max should sit well
	// above 6 (heavy tail intact) and at or below 12 (cap effective).
	max := 0.0
	for i := 0; i < 10000; i++ {
		s := straggler(i)
		if s < 0 {
			t.Fatalf("straggler(%d) = %g, negative", i, s)
		}
		if s > max {
			max = s
		}
	}
	if max > StragglerTailCap {
		t.Fatalf("max straggler sample %g exceeds cap %g", max, StragglerTailCap)
	}
	if max < 6 {
		t.Fatalf("max straggler sample %g — tail too light, distribution damaged", max)
	}
	// Pin the worst-case slowdown factor under the V100 model: the cap
	// bounds it at 1 + 0.03·12 = 1.36.
	d := V100()
	if worst := 1 + d.StragglerScale*max; worst > 1.36 {
		t.Fatalf("worst V100 straggler slowdown %g exceeds 1.36", worst)
	}
}

func TestExtraSlowdownStretchesBusyTime(t *testing.T) {
	d := V100()
	base := d.Simulate(job(1000, 1_000_000, 5))
	j := job(1000, 1_000_000, 5)
	j.ExtraSlowdown = 2.5
	slow := d.Simulate(j)
	if ratio := slow.BusySeconds / base.BusySeconds; math.Abs(ratio-2.5) > 1e-9 {
		t.Fatalf("ExtraSlowdown 2.5 stretched busy time by %g", ratio)
	}
	// Zero means disabled, not a zero-duration job.
	j.ExtraSlowdown = 0
	if again := d.Simulate(j); again != base {
		t.Fatal("ExtraSlowdown 0 must behave as 1.0")
	}
}

func TestExtraSlowdownNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative ExtraSlowdown")
		}
	}()
	j := job(10, 100, 0)
	j.ExtraSlowdown = -1
	V100().Simulate(j)
}

func TestA100ProjectionFasterThanV100(t *testing.T) {
	if err := A100().Validate(); err != nil {
		t.Fatalf("A100 spec invalid: %v", err)
	}
	j := Job{Threads: 1 << 20, Combos: 1 << 30, RowWords: 29, PrefetchRows: 3,
		Irregularity: 0.12, SpanCap: 19411}
	v := V100().Simulate(j)
	a := A100().Simulate(j)
	if a.BusySeconds >= v.BusySeconds {
		t.Fatalf("A100 (%.2fs) not faster than V100 (%.2fs)", a.BusySeconds, v.BusySeconds)
	}
	// The speedup should be bounded by the SM-count × penalty advantage.
	if v.BusySeconds/a.BusySeconds > 3 {
		t.Fatalf("implausible %.1fx generational speedup", v.BusySeconds/a.BusySeconds)
	}
}
