package sched

import (
	"testing"
	"testing/quick"

	"repro/internal/combinat"
)

// brute sums WorkAt over [0, λ) one thread at a time.
func brute(c Curve, lambda uint64) uint64 {
	var sum uint64
	for l := uint64(0); l < lambda; l++ {
		sum += c.WorkAt(l)
	}
	return sum
}

func TestTetra3x1Totals(t *testing.T) {
	for _, g := range []uint64{4, 5, 10, 50, 200} {
		c := NewTetra3x1(g)
		if c.Threads() != combinat.TripleCount(g) {
			t.Fatalf("G=%d: threads = %d, want C(G,3)=%d", g, c.Threads(), combinat.TripleCount(g))
		}
		if c.TotalWork() != combinat.QuadCount(g) {
			t.Fatalf("G=%d: total work = %d, want C(G,4)=%d", g, c.TotalWork(), combinat.QuadCount(g))
		}
	}
}

func TestTri2x2Totals(t *testing.T) {
	for _, g := range []uint64{4, 5, 10, 50, 200} {
		c := NewTri2x2(g)
		if c.Threads() != combinat.PairCount(g) {
			t.Fatalf("G=%d: threads = %d, want C(G,2)", g, c.Threads())
		}
		if c.TotalWork() != combinat.QuadCount(g) {
			t.Fatalf("G=%d: total work = %d, want C(G,4)=%d", g, c.TotalWork(), combinat.QuadCount(g))
		}
	}
}

func TestTri2x1Totals(t *testing.T) {
	for _, g := range []uint64{3, 5, 10, 100} {
		c := NewTri2x1(g)
		if c.Threads() != combinat.PairCount(g) {
			t.Fatalf("G=%d: threads mismatch", g)
		}
		want := combinat.TripleCount(g)
		if c.TotalWork() != want {
			t.Fatalf("G=%d: total work = %d, want C(G,3)=%d", g, c.TotalWork(), want)
		}
	}
}

func TestWorkAtMatchesSemantics(t *testing.T) {
	// 3x1: thread (i,j,k) does G−1−k combinations.
	const g = 23
	c := NewTetra3x1(g)
	for lambda := uint64(0); lambda < c.Threads(); lambda++ {
		_, _, k := combinat.LinearToTriple(lambda)
		if got, want := c.WorkAt(lambda), uint64(g-1)-k; got != want {
			t.Fatalf("3x1 WorkAt(%d) = %d, want %d (k=%d)", lambda, got, want, k)
		}
	}
	// 2x2: thread (i,j) does C(G−1−j, 2) combinations.
	c2 := NewTri2x2(g)
	for lambda := uint64(0); lambda < c2.Threads(); lambda++ {
		_, j := combinat.LinearToPair(lambda)
		if got, want := c2.WorkAt(lambda), combinat.Tri(g-1-j); got != want {
			t.Fatalf("2x2 WorkAt(%d) = %d, want %d (j=%d)", lambda, got, want, j)
		}
	}
}

func TestWorkNonIncreasing(t *testing.T) {
	for _, c := range []Curve{NewTetra3x1(30), NewTri2x2(30), NewTri2x1(30), NewFlat(100)} {
		prev := ^uint64(0)
		for lambda := uint64(0); lambda < c.Threads(); lambda++ {
			w := c.WorkAt(lambda)
			if w > prev {
				t.Fatalf("%s: work increases at λ=%d", c.Name(), lambda)
			}
			prev = w
		}
	}
}

func TestPrefixWorkMatchesBrute(t *testing.T) {
	for _, c := range []Curve{NewTetra3x1(18), NewTri2x2(18), NewTri2x1(18), NewFlat(37)} {
		for lambda := uint64(0); lambda <= c.Threads(); lambda++ {
			if got, want := c.PrefixWork(lambda), brute(c, lambda); got != want {
				t.Fatalf("%s: PrefixWork(%d) = %d, want %d", c.Name(), lambda, got, want)
			}
		}
	}
}

func TestPrefixWorkProperty(t *testing.T) {
	c := NewTetra3x1(19411) // paper scale: must stay O(log G), exact
	f := func(raw uint64) bool {
		lambda := raw % (c.Threads() + 1)
		p := c.PrefixWork(lambda)
		if lambda == c.Threads() {
			return p == c.TotalWork()
		}
		// Prefix plus this thread's work equals the next prefix.
		return p+c.WorkAt(lambda) == c.PrefixWork(lambda+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// mustParts unwraps a partitioner result, failing the test on error. It is
// curried so a multi-value call can be passed directly: mustParts(t)(EquiArea(c, p)).
func mustParts(tb testing.TB) func([]Partition, error) []Partition {
	return func(parts []Partition, err error) []Partition {
		tb.Helper()
		if err != nil {
			tb.Fatal(err)
		}
		return parts
	}
}

func TestEquiDistanceTiles(t *testing.T) {
	c := NewTetra3x1(50)
	for _, p := range []int{1, 2, 7, 30, 100} {
		parts := mustParts(t)(EquiDistance(c, p))
		if len(parts) != p {
			t.Fatalf("ED gave %d parts, want %d", len(parts), p)
		}
		if err := Validate(c, parts); err != nil {
			t.Fatalf("ED(%d): %v", p, err)
		}
	}
}

func TestEquiAreaTiles(t *testing.T) {
	for _, c := range []Curve{NewTetra3x1(50), NewTri2x2(50), NewTri2x1(50), NewFlat(1000)} {
		for _, p := range []int{1, 2, 7, 30, 100} {
			parts := mustParts(t)(EquiArea(c, p))
			if len(parts) != p {
				t.Fatalf("%s EA gave %d parts, want %d", c.Name(), len(parts), p)
			}
			if err := Validate(c, parts); err != nil {
				t.Fatalf("%s EA(%d): %v", c.Name(), p, err)
			}
		}
	}
}

func TestEquiAreaMatchesNaive(t *testing.T) {
	// The O(G) level-table scheduler must place boundaries where the naive
	// per-thread scan places them.
	for _, g := range []uint64{10, 17, 50} {
		for _, p := range []int{2, 5, 30} {
			c := NewTetra3x1(g)
			fast := mustParts(t)(EquiArea(c, p))
			slow := mustParts(t)(NaiveEquiArea(c, p))
			for i := range fast {
				if fast[i] != slow[i] {
					t.Fatalf("G=%d P=%d part %d: fast %+v != naive %+v",
						g, p, i, fast[i], slow[i])
				}
			}
		}
	}
}

func TestEquiAreaBeatsEquiDistance(t *testing.T) {
	// Fig. 3: for the paper's example (G=50, 30 GPUs) the EA imbalance must
	// be dramatically lower than ED's.
	c := NewTetra3x1(50)
	ed := Analyze(c, mustParts(t)(EquiDistance(c, 30)))
	ea := Analyze(c, mustParts(t)(EquiArea(c, 30)))
	if ea.Imbalance > 0.5 {
		t.Fatalf("EA imbalance %.3f — should be near zero", ea.Imbalance)
	}
	if ed.Imbalance < 2*ea.Imbalance+0.5 {
		t.Fatalf("ED imbalance %.3f not clearly worse than EA %.3f", ed.Imbalance, ea.Imbalance)
	}
}

func TestEquiAreaPaperScale(t *testing.T) {
	// G = 19411, 6000 GPUs (1000 Summit nodes): the schedule must compute
	// fast (this whole test runs in well under a second) and balance to
	// within a fraction of a percent.
	c := NewTetra3x1(19411)
	parts := mustParts(t)(EquiArea(c, 6000))
	if err := Validate(c, parts); err != nil {
		t.Fatal(err)
	}
	s := Analyze(c, parts)
	if s.Imbalance > 0.01 {
		t.Fatalf("paper-scale EA imbalance %.5f > 1%%", s.Imbalance)
	}
}

func TestAnalyzeConservation(t *testing.T) {
	c := NewTri2x2(40)
	for _, parts := range [][]Partition{mustParts(t)(EquiDistance(c, 13)), mustParts(t)(EquiArea(c, 13))} {
		s := Analyze(c, parts)
		var sum uint64
		for _, w := range s.PerPart {
			sum += w
		}
		if sum != c.TotalWork() {
			t.Fatalf("partition work sums to %d, want %d", sum, c.TotalWork())
		}
	}
}

func TestValidateCatchesGapsAndOverlaps(t *testing.T) {
	c := NewFlat(100)
	bad := [][]Partition{
		{},
		{{Lo: 0, Hi: 50}},                    // incomplete
		{{Lo: 0, Hi: 60}, {Lo: 50, Hi: 100}}, // overlap
		{{Lo: 0, Hi: 40}, {Lo: 50, Hi: 100}}, // gap
		{{Lo: 10, Hi: 100}},                  // late start
	}
	for i, parts := range bad {
		if Validate(c, parts) == nil {
			t.Errorf("case %d: Validate accepted a malformed partitioning", i)
		}
	}
	if err := Validate(c, []Partition{{0, 100}}); err != nil {
		t.Errorf("Validate rejected a correct partitioning: %v", err)
	}
}

func TestMorePartsThanThreads(t *testing.T) {
	c := NewFlat(3)
	parts := mustParts(t)(EquiArea(c, 10))
	if err := Validate(c, parts); err != nil {
		t.Fatal(err)
	}
	parts = mustParts(t)(EquiDistance(c, 10))
	if err := Validate(c, parts); err != nil {
		t.Fatal(err)
	}
}

func TestCurvePanics(t *testing.T) {
	for i, fn := range []func(){
		func() { NewTetra3x1(3) },
		func() { NewTri2x2(2) },
		func() { NewTri2x1(2) },
		func() { NewFlat(5).WorkAt(5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestPartitionerErrors(t *testing.T) {
	// Bad partition counts come from untrusted flags: errors, not panics.
	if _, err := EquiArea(NewFlat(5), 0); err == nil {
		t.Error("EquiArea with 0 partitions should error")
	}
	if _, err := EquiDistance(NewFlat(5), -1); err == nil {
		t.Error("EquiDistance with -1 partitions should error")
	}
	if _, err := NaiveEquiArea(NewFlat(5), 0); err == nil {
		t.Error("NaiveEquiArea with 0 partitions should error")
	}
}

func BenchmarkEquiAreaPaperScale(b *testing.B) {
	// E14: schedule computation cost at G = 19411, 6000 GPUs.
	for n := 0; n < b.N; n++ {
		c := NewTetra3x1(19411)
		parts := mustParts(b)(EquiArea(c, 6000))
		if len(parts) != 6000 {
			b.Fatal("bad partition count")
		}
	}
}

func BenchmarkNaiveEquiAreaSmall(b *testing.B) {
	// The naive scheduler is O(C(G,3)) — even G=300 shows the gap.
	c := NewTetra3x1(300)
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		mustParts(b)(NaiveEquiArea(c, 30))
	}
}

func TestLin1x3Curve(t *testing.T) {
	for _, g := range []uint64{4, 10, 50} {
		c := NewLin1x3(g)
		if c.Threads() != g {
			t.Fatalf("G=%d: 1x3 must expose exactly G threads, got %d", g, c.Threads())
		}
		if c.TotalWork() != combinat.QuadCount(g) {
			t.Fatalf("G=%d: total work = %d, want C(G,4)", g, c.TotalWork())
		}
		// Thread i does C(G-1-i, 3) combinations.
		for i := uint64(0); i < g; i++ {
			if got, want := c.WorkAt(i), combinat.Tet(g-1-i); got != want {
				t.Fatalf("G=%d: WorkAt(%d) = %d, want %d", g, i, got, want)
			}
		}
	}
}

func TestLin1x3PrefixMatchesBrute(t *testing.T) {
	c := NewLin1x3(17)
	for lambda := uint64(0); lambda <= c.Threads(); lambda++ {
		if got, want := c.PrefixWork(lambda), brute(c, lambda); got != want {
			t.Fatalf("PrefixWork(%d) = %d, want %d", lambda, got, want)
		}
	}
}

func TestLin1x3Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewLin1x3(3) did not panic")
		}
	}()
	NewLin1x3(3)
}

func TestQuad4x1Curve(t *testing.T) {
	for _, g := range []uint64{5, 12, 40} {
		c := NewQuad4x1(g)
		if c.Threads() != combinat.QuadCount(g) {
			t.Fatalf("G=%d: threads = %d, want C(G,4)", g, c.Threads())
		}
		want := combinat.MustBinomial(g, 5)
		if c.TotalWork() != want {
			t.Fatalf("G=%d: total work = %d, want C(G,5)=%d", g, c.TotalWork(), want)
		}
	}
	// Thread (i,j,k,l) does g−1−l iterations.
	c := NewQuad4x1(12)
	for lambda := uint64(0); lambda < c.Threads(); lambda++ {
		_, _, _, l := combinat.LinearToQuad(lambda)
		if got, want := c.WorkAt(lambda), uint64(11)-l; got != want {
			t.Fatalf("WorkAt(%d) = %d, want %d", lambda, got, want)
		}
	}
}

func TestEquiAreaRangeTiles(t *testing.T) {
	for _, c := range []Curve{NewTetra3x1(50), NewTri2x2(50), NewTri2x1(50), NewFlat(1000)} {
		n := c.Threads()
		lo, hi := n/5, n-n/7
		for _, p := range []int{1, 2, 7, 30} {
			parts := mustParts(t)(EquiAreaRange(c, lo, hi, p))
			if len(parts) != p {
				t.Fatalf("%s EAR gave %d parts, want %d", c.Name(), len(parts), p)
			}
			// Contiguous tiling of exactly [lo, hi).
			expect := lo
			for i, part := range parts {
				if part.Lo != expect || part.Hi < part.Lo {
					t.Fatalf("%s EAR(%d) part %d = %+v, want start %d", c.Name(), p, i, part, expect)
				}
				expect = part.Hi
			}
			if expect != hi {
				t.Fatalf("%s EAR(%d) ends at %d, want %d", c.Name(), p, expect, hi)
			}
		}
	}
}

func TestEquiAreaRangeBalancesWork(t *testing.T) {
	// The sub-range split must be as balanced as the full-domain EA split:
	// no partition more than ~2 levels' work above the mean.
	c := NewTetra3x1(60)
	n := c.Threads()
	lo, hi := n/4, 3*n/4
	total := c.PrefixWork(hi) - c.PrefixWork(lo)
	const p = 11
	parts := mustParts(t)(EquiAreaRange(c, lo, hi, p))
	mean := float64(total) / p
	for i, part := range parts {
		w := float64(c.PrefixWork(part.Hi) - c.PrefixWork(part.Lo))
		// One boundary thread's work (≤ G) of slack on either side.
		if w > mean+120 || (w < mean-120 && i < p-1) {
			t.Fatalf("part %d work %g, mean %g — unbalanced", i, w, mean)
		}
	}
}

func TestEquiAreaRangeFullDomainMatchesEquiArea(t *testing.T) {
	c := NewTetra3x1(40)
	for _, p := range []int{1, 3, 9} {
		whole := mustParts(t)(EquiArea(c, p))
		ranged := mustParts(t)(EquiAreaRange(c, 0, c.Threads(), p))
		for i := range whole {
			if whole[i] != ranged[i] {
				t.Fatalf("p=%d part %d: EquiAreaRange over the full domain %+v != EquiArea %+v",
					p, i, ranged[i], whole[i])
			}
		}
	}
}

func TestEquiAreaRangeNaiveFallbackAgrees(t *testing.T) {
	// A non-levels Curve takes the per-thread fallback; wrap a levels curve
	// to force it and compare.
	base := NewTetra3x1(20)
	wrapped := opaqueCurve{base}
	n := base.Threads()
	lo, hi := n/6, n-n/6
	for _, p := range []int{1, 2, 5} {
		fast := mustParts(t)(EquiAreaRange(base, lo, hi, p))
		slow := mustParts(t)(EquiAreaRange(wrapped, lo, hi, p))
		for i := range fast {
			if fast[i] != slow[i] {
				t.Fatalf("p=%d part %d: levels %+v != naive %+v", p, i, fast[i], slow[i])
			}
		}
	}
}

// opaqueCurve hides the *levels concrete type so range partitioning takes
// the naive path.
type opaqueCurve struct{ Curve }

func TestEquiAreaRangeErrors(t *testing.T) {
	c := NewTetra3x1(10)
	if _, err := EquiAreaRange(c, 0, 10, 0); err == nil {
		t.Fatal("p=0 accepted")
	}
	if _, err := EquiAreaRange(c, 10, 5, 3); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := EquiAreaRange(c, 0, c.Threads()+1, 3); err == nil {
		t.Fatal("out-of-domain range accepted")
	}
	// Empty range: p empty partitions.
	parts, err := EquiAreaRange(c, 7, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range parts {
		if part.Lo != 7 || part.Hi != 7 {
			t.Fatalf("empty range gave %+v", part)
		}
	}
}
