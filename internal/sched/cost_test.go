package sched

import (
	"math"
	"testing"
)

func TestEquiCostUnitMatchesEquiArea(t *testing.T) {
	// With the unit cost model, EquiCost must reduce to EquiArea.
	for _, g := range []uint64{10, 50, 200} {
		for _, p := range []int{3, 7, 30} {
			c := NewTetra3x1(g)
			ea := mustParts(t)(EquiArea(c, p))
			ec := mustParts(t)(EquiCost(c, p, UnitCost))
			for i := range ea {
				// Boundaries may differ by the float-vs-integer target
				// rounding, but at most by one thread of one level.
				diff := int64(ea[i].Hi) - int64(ec[i].Hi)
				if diff < -1 || diff > 1 {
					t.Fatalf("G=%d P=%d part %d: EA %+v vs EquiCost %+v",
						g, p, i, ea[i], ec[i])
				}
			}
		}
	}
}

func TestEquiCostTiles(t *testing.T) {
	cost := func(w uint64) float64 {
		return float64(w) * (1 + math.Log1p(float64(w)))
	}
	for _, c := range []Curve{NewTetra3x1(60), NewTri2x2(60), NewLin1x3(60)} {
		for _, p := range []int{1, 2, 13, 100} {
			parts := mustParts(t)(EquiCost(c, p, cost))
			if len(parts) != p {
				t.Fatalf("%s: %d parts, want %d", c.Name(), len(parts), p)
			}
			if err := Validate(c, parts); err != nil {
				t.Fatalf("%s P=%d: %v", c.Name(), p, err)
			}
		}
	}
}

func TestEquiCostBalancesCostNotWork(t *testing.T) {
	// Under a superlinear cost model, EquiCost must balance cost strictly
	// better than EquiArea does, by giving high-cost (large-span) threads
	// less raw work.
	c := NewTri2x2(200)
	cost := func(w uint64) float64 {
		return float64(w) * (1 + 2*math.Log1p(float64(w))/math.Log1p(19700))
	}
	const p = 24
	ea := AnalyzeCost(c, mustParts(t)(EquiArea(c, p)), cost)
	ec := AnalyzeCost(c, mustParts(t)(EquiCost(c, p, cost)), cost)
	if ec.Imbalance >= ea.Imbalance {
		t.Fatalf("EquiCost imbalance %.4f not better than EquiArea %.4f",
			ec.Imbalance, ea.Imbalance)
	}
	if ec.Imbalance > 0.05 {
		t.Fatalf("EquiCost imbalance %.4f too high", ec.Imbalance)
	}
	// And the work split now deliberately deviates from equality.
	workStats := Analyze(c, mustParts(t)(EquiCost(c, p, cost)))
	if workStats.Imbalance < 0.01 {
		t.Fatalf("cost-aware split should trade work balance for cost balance, work imbalance %.4f",
			workStats.Imbalance)
	}
}

func TestEquiCostErrors(t *testing.T) {
	c := NewTetra3x1(10)
	if _, err := EquiCost(c, 0, UnitCost); err == nil {
		t.Error("zero partitions should error")
	}
	if _, err := EquiCost(c, 3, nil); err == nil {
		t.Error("nil cost model should error")
	}
}

func TestAnalyzeCostConservation(t *testing.T) {
	c := NewTetra3x1(40)
	cost := func(w uint64) float64 { return float64(w) + 1 }
	parts := mustParts(t)(EquiCost(c, 9, cost))
	s := AnalyzeCost(c, parts, cost)
	var sum float64
	for _, v := range s.PerPart {
		sum += float64(v)
	}
	// Total cost = Σ threads-per-level × (w+1) = TotalWork + Threads.
	want := float64(c.TotalWork() + c.Threads())
	if math.Abs(sum-want) > float64(len(parts)) {
		t.Fatalf("cost sums to %.0f, want ≈%.0f", sum, want)
	}
}
