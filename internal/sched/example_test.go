package sched_test

import (
	"fmt"

	"repro/internal/sched"
)

// Equi-area scheduling gives every GPU (nearly) the same number of
// combinations even though per-thread workloads differ by orders of
// magnitude.
func ExampleEquiArea() {
	curve := sched.NewTetra3x1(50) // the paper's Fig. 3 example, G = 50
	parts, err := sched.EquiArea(curve, 5)
	if err != nil {
		panic(err)
	}
	for i, p := range parts {
		work := curve.PrefixWork(p.Hi) - curve.PrefixWork(p.Lo)
		fmt.Printf("gpu %d: %5d threads, %d combinations\n", i, p.Size(), work)
	}
	// Output:
	// gpu 0:  1384 threads, 46067 combinations
	// gpu 1:  1873 threads, 46062 combinations
	// gpu 2:  2481 threads, 46055 combinations
	// gpu 3:  3547 threads, 46056 combinations
	// gpu 4: 10315 threads, 46060 combinations
}

// Equi-distance partitioning leaves the first GPU with multiples of the
// average work — the Fig. 3(a) imbalance.
func ExampleEquiDistance() {
	curve := sched.NewTetra3x1(50)
	parts, err := sched.EquiDistance(curve, 5)
	if err != nil {
		panic(err)
	}
	stats := sched.Analyze(curve, parts)
	fmt.Printf("max/mean imbalance: %.2f\n", stats.Imbalance)
	// Output:
	// max/mean imbalance: 1.30
}
