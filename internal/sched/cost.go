package sched

import "fmt"

// CostModel prices one thread's execution given its inner-loop work. The
// plain equi-area scheduler implicitly uses cost(w) = w; a latency-aware
// model adds the span-dependent memory penalty, implementing the paper's
// fourth future-work strategy ("Incorporate memory latency into the
// scheduling algorithm", Sec. V): threads with large spans cost more per
// combination, so a latency-aware split hands them proportionally less
// work.
type CostModel func(work uint64) float64

// UnitCost prices a thread at exactly its work — equivalent to EquiArea.
func UnitCost(work uint64) float64 { return float64(work) }

// EquiCost splits the curve's thread domain into p ranges of (nearly)
// equal total modeled cost. Like EquiArea it exploits the level structure:
// per-level cost is count × cost(work), so boundaries are found without a
// per-thread scan.
func EquiCost(c Curve, p int, cost CostModel) ([]Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: partition count must be positive, got %d", p)
	}
	if cost == nil {
		return nil, fmt.Errorf("sched: nil cost model")
	}
	lv, ok := c.(*levels)
	if !ok {
		return nil, fmt.Errorf("sched: EquiCost requires a level-table curve, got %T", c)
	}
	// The float cost table would mask the wrap silently; refuse like the
	// integer partitioners do.
	if err := checkOverflow(c); err != nil {
		return nil, err
	}
	// Float cumulative cost per level boundary.
	cum := make([]float64, len(lv.work)+1)
	for l, w := range lv.work {
		cum[l+1] = cum[l] + float64(lv.start[l+1]-lv.start[l])*cost(w)
	}
	total := cum[len(cum)-1]

	parts := make([]Partition, p)
	var lo uint64
	for i := 0; i < p; i++ {
		var hi uint64
		if i == p-1 {
			hi = lv.Threads()
		} else {
			target := total * float64(i+1) / float64(p)
			hi = findCostPrefix(lv, cum, cost, target)
			if hi < lo {
				hi = lo
			}
		}
		parts[i] = Partition{Lo: lo, Hi: hi}
		lo = hi
	}
	return parts, nil
}

// findCostPrefix returns the smallest λ whose cost prefix reaches target.
func findCostPrefix(lv *levels, cum []float64, cost CostModel, target float64) uint64 {
	if target <= 0 {
		return 0
	}
	if target >= cum[len(cum)-1] {
		return lv.Threads()
	}
	// Binary search the level containing the target.
	lo, hi := 0, len(lv.work)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid+1] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	perThread := cost(lv.work[lo])
	if perThread <= 0 {
		return lv.start[lo+1]
	}
	need := target - cum[lo]
	n := uint64(need / perThread)
	if float64(n)*perThread < need {
		n++
	}
	lambda := lv.start[lo] + n
	if lambda > lv.start[lo+1] {
		lambda = lv.start[lo+1]
	}
	return lambda
}

// AnalyzeCost computes per-partition modeled cost and its balance.
func AnalyzeCost(c Curve, parts []Partition, cost CostModel) Stats {
	lv, ok := c.(*levels)
	if !ok {
		//lint:allow panicfree programmer error: AnalyzeCost takes partitions already built by EquiCost, which rejected non-level curves
		panic(fmt.Sprintf("sched: AnalyzeCost requires a level-table curve, got %T", c))
	}
	s := Stats{Min: ^uint64(0)}
	var totals []float64
	grand := 0.0
	for _, p := range parts {
		totals = append(totals, costOfRange(lv, p, cost))
		grand += totals[len(totals)-1]
	}
	// Reuse Stats with costs rounded to integers for reporting; Imbalance
	// is computed on the float values.
	maxC, minC := 0.0, -1.0
	for _, t := range totals {
		s.PerPart = append(s.PerPart, uint64(t+0.5))
		if t > maxC {
			maxC = t
		}
		if minC < 0 || t < minC {
			minC = t
		}
	}
	s.Max = uint64(maxC + 0.5)
	s.Min = uint64(minC + 0.5)
	if len(parts) > 0 {
		s.Mean = grand / float64(len(parts))
	}
	if s.Mean > 0 {
		s.Imbalance = maxC/s.Mean - 1
	}
	return s
}

// costOfRange sums cost over the threads of a partition using the level
// table.
func costOfRange(lv *levels, p Partition, cost CostModel) float64 {
	total := 0.0
	for l := 0; l < len(lv.work); l++ {
		lo, hi := lv.start[l], lv.start[l+1]
		if hi <= p.Lo || lo >= p.Hi {
			continue
		}
		if lo < p.Lo {
			lo = p.Lo
		}
		if hi > p.Hi {
			hi = p.Hi
		}
		total += float64(hi-lo) * cost(lv.work[l])
	}
	return total
}
