package sched

import "fmt"

// TwoLevel partitions the thread domain hierarchically, matching Fig. 1's
// Summit abstraction: the equi-area scheduler first cuts the λ-domain
// across MPI ranks (nodes), then cuts each rank's share across its GPUs.
// The result tiles the domain exactly like a flat cut across
// nodes×gpusPerNode devices; the hierarchy exists so each rank can compute
// only its own sub-schedule — on the real machine rank r never needs the
// other ranks' GPU boundaries.
type TwoLevel struct {
	// Nodes is the rank-level partitioning.
	Nodes []Partition
	// PerNode holds each rank's GPU-level partitioning of its range.
	PerNode [][]Partition
}

// NewTwoLevel builds the hierarchical equi-area schedule. Node and GPU
// counts arrive from job specs and CLI flags, so invalid counts are errors.
func NewTwoLevel(c Curve, nodes, gpusPerNode int) (TwoLevel, error) {
	if nodes <= 0 || gpusPerNode <= 0 {
		return TwoLevel{}, fmt.Errorf("sched: TwoLevel needs positive counts, got %d×%d", nodes, gpusPerNode)
	}
	nodeParts, err := EquiArea(c, nodes)
	if err != nil {
		return TwoLevel{}, err
	}
	tl := TwoLevel{Nodes: nodeParts}
	for _, np := range tl.Nodes {
		sub, err := equiAreaWithin(c, np, gpusPerNode)
		if err != nil {
			return TwoLevel{}, err
		}
		tl.PerNode = append(tl.PerNode, sub)
	}
	return tl, nil
}

// equiAreaWithin splits one partition's range into p equal-work pieces.
func equiAreaWithin(c Curve, span Partition, p int) ([]Partition, error) {
	lv, ok := c.(*levels)
	if !ok {
		return nil, fmt.Errorf("sched: TwoLevel requires a level-table curve, got %T", c)
	}
	base := lv.PrefixWork(span.Lo)
	total := lv.PrefixWork(span.Hi) - base
	parts := make([]Partition, p)
	lo := span.Lo
	for i := 0; i < p; i++ {
		var hi uint64
		if i == p-1 {
			hi = span.Hi
		} else {
			target := base + total/uint64(p)*uint64(i+1)
			if r := total % uint64(p); r > 0 {
				target += r * uint64(i+1) / uint64(p)
			}
			hi = lv.findPrefix(target)
			if hi < lo {
				hi = lo
			}
			if hi > span.Hi {
				hi = span.Hi
			}
		}
		parts[i] = Partition{Lo: lo, Hi: hi}
		lo = hi
	}
	return parts, nil
}

// Flatten returns the GPU-level partitions in global device order.
func (tl TwoLevel) Flatten() []Partition {
	var out []Partition
	for _, gp := range tl.PerNode {
		out = append(out, gp...)
	}
	return out
}

// Validate checks that the hierarchy tiles the domain exactly at both
// levels.
func (tl TwoLevel) Validate(c Curve) error {
	if err := Validate(c, tl.Nodes); err != nil {
		return fmt.Errorf("sched: node level: %w", err)
	}
	if len(tl.PerNode) != len(tl.Nodes) {
		return fmt.Errorf("sched: %d per-node schedules for %d nodes",
			len(tl.PerNode), len(tl.Nodes))
	}
	for n, gp := range tl.PerNode {
		expect := tl.Nodes[n].Lo
		for g, p := range gp {
			if p.Lo != expect {
				return fmt.Errorf("sched: node %d gpu %d starts at %d, want %d",
					n, g, p.Lo, expect)
			}
			if p.Hi < p.Lo {
				return fmt.Errorf("sched: node %d gpu %d inverted", n, g)
			}
			expect = p.Hi
		}
		if expect != tl.Nodes[n].Hi {
			return fmt.Errorf("sched: node %d GPUs end at %d, range ends at %d",
				n, expect, tl.Nodes[n].Hi)
		}
	}
	return nil
}
