package sched

import "testing"

// TestQuadCurveOverflowDetected: the BRCA-scale 5-hit domain C(19411, 5)
// ≈ 2.3e19 wraps uint64, as does C(100000, 5) while its C(G, 4) thread
// count still fits — the cumulative-work table must detect the wrap and
// every partitioner must refuse the curve instead of slicing garbage.
func TestQuadCurveOverflowDetected(t *testing.T) {
	c := NewQuad4x1(100000)
	if !Overflowed(c) {
		t.Fatal("C(100000, 5) curve not flagged as overflowed")
	}
	if _, err := EquiArea(c, 8); err == nil {
		t.Fatal("EquiArea partitioned a wrapped curve")
	}
	if _, err := EquiDistance(c, 8); err == nil {
		t.Fatal("EquiDistance partitioned a wrapped curve")
	}
	if _, err := EquiAreaRange(c, 0, c.Threads(), 8); err == nil {
		t.Fatal("EquiAreaRange partitioned a wrapped curve")
	}
	if _, err := NewTwoLevel(c, 4, 6); err == nil {
		t.Fatal("NewTwoLevel partitioned a wrapped curve")
	}
	if _, err := EquiCost(c, 8, UnitCost); err == nil {
		t.Fatal("EquiCost partitioned a wrapped curve")
	}
}

// TestPaperScaleCurvesFit: every ≤4-hit paper-scale curve stays within
// uint64 and partitions cleanly.
func TestPaperScaleCurvesFit(t *testing.T) {
	for name, c := range map[string]Curve{
		"3x1":  NewTetra3x1(19411),
		"2x2":  NewTri2x2(19411),
		"2x1":  NewTri2x1(19411),
		"1x3":  NewLin1x3(19411),
		"flat": NewFlat(1 << 40),
	} {
		if Overflowed(c) {
			t.Fatalf("%s: paper-scale curve flagged as overflowed", name)
		}
		if _, err := EquiArea(c, 64); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}
