// Package sched implements the workload schedulers that balance the
// multi-hit search across GPUs (Sec. III-A–III-C of the paper).
//
// Under every parallelization scheme, thread λ performs an amount of inner-
// loop work that is a non-increasing step function of λ with at most G
// distinct "workload levels" (Fig. 2): in the 3x1 scheme thread (i, j, k)
// runs G−1−k inner iterations, in the 2x2 scheme thread (i, j) runs
// C(G−1−j, 2). A Curve captures that structure.
//
// Two partitioners split the λ-domain across P processors:
//
//   - EquiDistance (ED) gives every processor the same number of threads —
//     the naive split, which under the decaying curve hands the first GPU
//     orders of magnitude more combinations than the last (Fig. 3a).
//   - EquiArea (EA) gives every processor the same area under the workload
//     curve — the paper's scheduler, computed level-by-level in O(G + P)
//     instead of the naive per-thread accumulation over C(G, 3) threads
//     ("tens of hours" → "less than a minute", Sec. III-C).
package sched

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/combinat"
)

// Curve describes a non-increasing per-thread workload over a flat thread
// domain, organized as contiguous levels of equal work.
type Curve interface {
	// Threads returns the λ-domain size.
	Threads() uint64
	// WorkAt returns the inner-loop work (combinations processed) for
	// thread λ.
	WorkAt(lambda uint64) uint64
	// TotalWork returns the sum of WorkAt over all threads.
	TotalWork() uint64
	// PrefixWork returns the total work of threads [0, λ).
	PrefixWork(lambda uint64) uint64
	// Name identifies the curve for reports.
	Name() string
}

// levels is the shared level-table implementation behind every curve: level
// L spans threads [start[L], start[L+1]) each doing work[L] combinations.
type levels struct {
	name  string
	start []uint64 // len nLevels+1; start[nLevels] = Threads()
	work  []uint64 // len nLevels; non-increasing
	cum   []uint64 // len nLevels+1; cum[L] = total work before level L
	// overflow records that the cumulative work table wrapped uint64 —
	// e.g. the 5-hit quad curve at paper G, where C(19411, 5) ≈ 2.3·10¹⁹
	// exceeds 2⁶⁴−1. A wrapped table would silently misplace every
	// equi-area boundary, so the partitioners refuse such curves.
	overflow bool
}

func newLevels(name string, start, work []uint64) *levels {
	if len(start) != len(work)+1 {
		//lint:allow panicfree internal invariant: the curve constructors below are the only callers
		panic("sched: levels start/work length mismatch")
	}
	cum := make([]uint64, len(work)+1)
	overflow := false
	for l, w := range work {
		// Both the per-level product and the running sum can individually
		// wrap (C(l, 3)·w alone exceeds uint64 at large G), so detect with
		// full-width arithmetic rather than after-the-fact monotonicity.
		hi, lo := bits.Mul64(start[l+1]-start[l], w)
		sum, carry := bits.Add64(cum[l], lo, 0)
		if hi != 0 || carry != 0 {
			overflow = true
		}
		cum[l+1] = sum
	}
	return &levels{name: name, start: start, work: work, cum: cum, overflow: overflow}
}

// Overflowed reports whether the curve's cumulative work table wrapped
// uint64. Such a curve still answers Threads/WorkAt correctly, but its
// TotalWork/PrefixWork values are meaningless and every partitioner in
// this package refuses it.
func Overflowed(c Curve) bool {
	lv, ok := c.(*levels)
	return ok && lv.overflow
}

func checkOverflow(c Curve) error {
	if Overflowed(c) {
		return fmt.Errorf("sched: curve %s has a total work exceeding uint64; cannot partition a wrapped domain", c.Name())
	}
	return nil
}

func (lv *levels) Name() string    { return lv.name }
func (lv *levels) Threads() uint64 { return lv.start[len(lv.start)-1] }
func (lv *levels) TotalWork() uint64 {
	return lv.cum[len(lv.cum)-1]
}

// levelOf returns the level containing thread λ by binary search.
func (lv *levels) levelOf(lambda uint64) int {
	lo, hi := 0, len(lv.work)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if lv.start[mid+1] <= lambda {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

func (lv *levels) WorkAt(lambda uint64) uint64 {
	if lambda >= lv.Threads() {
		//lint:allow panicfree API contract like a slice bounds check; λ comes from a validated partition
		panic(fmt.Sprintf("sched: thread %d out of domain %d", lambda, lv.Threads()))
	}
	return lv.work[lv.levelOf(lambda)]
}

func (lv *levels) PrefixWork(lambda uint64) uint64 {
	if lambda == 0 {
		return 0
	}
	if lambda >= lv.Threads() {
		return lv.TotalWork()
	}
	l := lv.levelOf(lambda)
	return lv.cum[l] + (lambda-lv.start[l])*lv.work[l]
}

// findPrefix returns the smallest λ with PrefixWork(λ) ≥ target, in
// O(log G) via the level table.
func (lv *levels) findPrefix(target uint64) uint64 {
	if target == 0 {
		return 0
	}
	total := lv.TotalWork()
	if target >= total {
		return lv.Threads()
	}
	// Binary search the level whose cumulative range contains target.
	lo, hi := 0, len(lv.work)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if lv.cum[mid+1] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w := lv.work[lo]
	if w == 0 {
		return lv.start[lo+1]
	}
	need := target - lv.cum[lo]
	return lv.start[lo] + (need+w-1)/w
}

// NewTetra3x1 returns the workload curve of the 4-hit 3x1 scheme over g
// genes: C(g, 3) threads, thread (i, j, k) doing g−1−k combinations. Level
// index runs over k = 2 … g−2 (k = g−1 threads do zero work and are folded
// into the last level).
func NewTetra3x1(g uint64) Curve {
	if g < 4 {
		//lint:allow panicfree startup assertion: gene counts are validated by the dataset loader before curves are built
		panic(fmt.Sprintf("sched: 3x1 curve needs g ≥ 4, got %d", g))
	}
	var start, work []uint64
	for k := uint64(2); k < g; k++ {
		start = append(start, combinat.Tet(k))
		work = append(work, g-1-k)
	}
	start = append(start, combinat.Tet(g))
	return newLevels(fmt.Sprintf("3x1(G=%d)", g), start, work)
}

// NewTri2x2 returns the workload curve of the 4-hit 2x2 scheme over g
// genes: C(g, 2) threads, thread (i, j) doing C(g−1−j, 2) combinations.
func NewTri2x2(g uint64) Curve {
	if g < 4 {
		//lint:allow panicfree startup assertion: gene counts are validated by the dataset loader before curves are built
		panic(fmt.Sprintf("sched: 2x2 curve needs g ≥ 4, got %d", g))
	}
	var start, work []uint64
	for j := uint64(1); j < g; j++ {
		start = append(start, combinat.Tri(j))
		work = append(work, combinat.Tri(g-1-j))
	}
	start = append(start, combinat.Tri(g))
	return newLevels(fmt.Sprintf("2x2(G=%d)", g), start, work)
}

// NewTri2x1 returns the workload curve of the 3-hit scheme of Algorithm 1:
// C(g, 2) threads, thread (i, j) doing g−1−j inner iterations.
func NewTri2x1(g uint64) Curve {
	if g < 3 {
		//lint:allow panicfree startup assertion: gene counts are validated by the dataset loader before curves are built
		panic(fmt.Sprintf("sched: 2x1 curve needs g ≥ 3, got %d", g))
	}
	var start, work []uint64
	for j := uint64(1); j < g; j++ {
		start = append(start, combinat.Tri(j))
		work = append(work, g-1-j)
	}
	start = append(start, combinat.Tri(g))
	return newLevels(fmt.Sprintf("2x1(G=%d)", g), start, work)
}

// NewFlat returns a uniform curve: n threads of unit work (the 2-hit kernel
// — where each thread evaluates exactly one pair — and the 4x1 scheme over
// C(g, 4) threads).
func NewFlat(n uint64) Curve {
	return newLevels(fmt.Sprintf("flat(N=%d)", n), []uint64{0, n}, []uint64{1})
}

// NewLin1x3 returns the workload curve of the 4-hit 1x3 scheme over g
// genes: only g threads, thread i running a depth-3 nested loop of
// C(g−1−i, 3) combinations. The paper rejects this scheme for its "small
// number of threads (limited parallelization)"; the curve exists so the
// ablation can show exactly how badly it partitions.
func NewLin1x3(g uint64) Curve {
	if g < 4 {
		//lint:allow panicfree startup assertion: gene counts are validated by the dataset loader before curves are built
		panic(fmt.Sprintf("sched: 1x3 curve needs g ≥ 4, got %d", g))
	}
	start := make([]uint64, g+1)
	work := make([]uint64, g)
	for i := uint64(0); i < g; i++ {
		start[i] = i
		work[i] = combinat.Tet(g - 1 - i)
	}
	start[g] = g
	return newLevels(fmt.Sprintf("1x3(G=%d)", g), start, work)
}

// NewQuad4x1 returns the workload curve of the 5-hit "4x1" extension over
// g genes: C(g, 4) threads, thread (i, j, k, l) doing g−1−l inner
// iterations — the 3x1 structure one dimension up (see cover.Run5).
func NewQuad4x1(g uint64) Curve {
	if g < 5 {
		//lint:allow panicfree startup assertion: gene counts are validated by the dataset loader before curves are built
		panic(fmt.Sprintf("sched: 4x1 five-hit curve needs g ≥ 5, got %d", g))
	}
	var start, work []uint64
	for l := uint64(3); l < g; l++ {
		start = append(start, combinat.Quad(l))
		work = append(work, g-1-l)
	}
	start = append(start, combinat.Quad(g))
	return newLevels(fmt.Sprintf("4x1five(G=%d)", g), start, work)
}

// Partition is a half-open thread range [Lo, Hi) assigned to one processor.
type Partition struct {
	Lo, Hi uint64
}

// Size returns the number of threads in the partition.
func (p Partition) Size() uint64 { return p.Hi - p.Lo }

// EquiDistance splits the curve's thread domain into p ranges of (nearly)
// equal thread count — the naive scheduler of Fig. 3(a). The partition count
// is untrusted (it arrives from CLI flags and job specs), so an invalid
// count is an error, not a panic.
func EquiDistance(c Curve, p int) ([]Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: partition count must be positive, got %d", p)
	}
	// ED itself only counts threads, but every consumer of its partitions
	// prices them with PrefixWork — refuse wrapped curves here too so a
	// scheduler choice cannot smuggle a wrapped domain past the check.
	if err := checkOverflow(c); err != nil {
		return nil, err
	}
	n := c.Threads()
	parts := make([]Partition, p)
	var lo uint64
	for i := 0; i < p; i++ {
		hi := n * uint64(i+1) / uint64(p)
		parts[i] = Partition{Lo: lo, Hi: hi}
		lo = hi
	}
	return parts, nil
}

// EquiArea splits the curve's thread domain into p ranges of (nearly) equal
// total work — the paper's scheduler of Fig. 3(b). Boundaries are located
// with the level table in O(p log G); no per-thread scan occurs.
func EquiArea(c Curve, p int) ([]Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: partition count must be positive, got %d", p)
	}
	if err := checkOverflow(c); err != nil {
		return nil, err
	}
	lv, ok := c.(*levels)
	if !ok {
		return naiveEquiArea(c, p)
	}
	total := lv.TotalWork()
	parts := make([]Partition, p)
	var lo uint64
	for i := 0; i < p; i++ {
		var hi uint64
		if i == p-1 {
			hi = lv.Threads()
		} else {
			// Round the cumulative target to the nearest thread whose
			// prefix reaches i+1 shares of the work.
			target := total / uint64(p) * uint64(i+1)
			if r := total % uint64(p); r > 0 {
				target += r * uint64(i+1) / uint64(p)
			}
			hi = lv.findPrefix(target)
			if hi < lo {
				hi = lo
			}
		}
		parts[i] = Partition{Lo: lo, Hi: hi}
		lo = hi
	}
	return parts, nil
}

// EquiAreaRange splits one λ sub-range [lo, hi) of the curve's domain into
// p partitions of (nearly) equal work — the recovery scheduler: when a rank
// dies mid-iteration, the λ-range it owned is re-partitioned across the
// surviving processors with the same level-table machinery EquiArea uses
// for the full domain (O(p log G); no per-thread scan). The returned
// partitions tile [lo, hi) exactly.
func EquiAreaRange(c Curve, lo, hi uint64, p int) ([]Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: partition count must be positive, got %d", p)
	}
	if hi < lo {
		return nil, fmt.Errorf("sched: inverted range [%d, %d)", lo, hi)
	}
	if hi > c.Threads() {
		return nil, fmt.Errorf("sched: range [%d, %d) exceeds domain of %d threads", lo, hi, c.Threads())
	}
	if err := checkOverflow(c); err != nil {
		return nil, err
	}
	lv, ok := c.(*levels)
	if !ok {
		return naiveEquiAreaRange(c, lo, hi, p)
	}
	base := lv.PrefixWork(lo)
	total := lv.PrefixWork(hi) - base
	parts := make([]Partition, p)
	cur := lo
	for i := 0; i < p; i++ {
		var bound uint64
		if i == p-1 {
			bound = hi
		} else {
			target := total / uint64(p) * uint64(i+1)
			if r := total % uint64(p); r > 0 {
				target += r * uint64(i+1) / uint64(p)
			}
			bound = lv.findPrefix(base + target)
			if bound < cur {
				bound = cur
			}
			if bound > hi {
				bound = hi
			}
		}
		parts[i] = Partition{Lo: cur, Hi: bound}
		cur = bound
	}
	return parts, nil
}

// naiveEquiAreaRange is the per-thread fallback for curves without a level
// table; O(hi − lo).
func naiveEquiAreaRange(c Curve, lo, hi uint64, p int) ([]Partition, error) {
	var total uint64
	for lambda := lo; lambda < hi; lambda++ {
		total += c.WorkAt(lambda)
	}
	parts := make([]Partition, 0, p)
	curLo := lo
	var acc uint64
	part := 1
	for lambda := lo; lambda < hi && part < p; lambda++ {
		acc += c.WorkAt(lambda)
		target := total / uint64(p) * uint64(part)
		if r := total % uint64(p); r > 0 {
			target += r * uint64(part) / uint64(p)
		}
		if acc >= target {
			parts = append(parts, Partition{Lo: curLo, Hi: lambda + 1})
			curLo = lambda + 1
			part++
		}
	}
	for len(parts) < p-1 {
		parts = append(parts, Partition{Lo: curLo, Hi: curLo})
	}
	parts = append(parts, Partition{Lo: curLo, Hi: hi})
	return parts, nil
}

// NaiveEquiArea computes the equi-area split by scanning every thread and
// accumulating its work until the per-processor average is reached — the
// approach the paper rejects ("takes tens of hours ... using a single
// node"). It exists as the E14 baseline and for differential testing; it is
// O(Threads) and only usable at small G.
func NaiveEquiArea(c Curve, p int) ([]Partition, error) {
	return naiveEquiArea(c, p)
}

func naiveEquiArea(c Curve, p int) ([]Partition, error) {
	if p <= 0 {
		return nil, fmt.Errorf("sched: partition count must be positive, got %d", p)
	}
	if err := checkOverflow(c); err != nil {
		return nil, err
	}
	total := c.TotalWork()
	parts := make([]Partition, 0, p)
	var lo uint64
	var acc uint64
	n := c.Threads()
	part := 1
	for lambda := uint64(0); lambda < n && part < p; lambda++ {
		acc += c.WorkAt(lambda)
		target := total / uint64(p) * uint64(part)
		if r := total % uint64(p); r > 0 {
			target += r * uint64(part) / uint64(p)
		}
		if acc >= target {
			parts = append(parts, Partition{Lo: lo, Hi: lambda + 1})
			lo = lambda + 1
			part++
		}
	}
	for len(parts) < p-1 {
		parts = append(parts, Partition{Lo: lo, Hi: lo})
	}
	parts = append(parts, Partition{Lo: lo, Hi: n})
	return parts, nil
}

// Stats summarizes the work balance of a partitioning.
type Stats struct {
	// PerPart is the total work assigned to each partition.
	PerPart []uint64
	// Max, Min and Mean are over PerPart.
	Max, Min uint64
	Mean     float64
	// Imbalance is Max/Mean − 1: 0 for a perfect split.
	Imbalance float64
}

// Analyze computes balance statistics for a partitioning of the curve.
func Analyze(c Curve, parts []Partition) Stats {
	s := Stats{Min: math.MaxUint64}
	var total uint64
	for _, p := range parts {
		w := c.PrefixWork(p.Hi) - c.PrefixWork(p.Lo)
		s.PerPart = append(s.PerPart, w)
		total += w
		if w > s.Max {
			s.Max = w
		}
		if w < s.Min {
			s.Min = w
		}
	}
	if len(parts) > 0 {
		s.Mean = float64(total) / float64(len(parts))
	}
	if s.Mean > 0 {
		s.Imbalance = float64(s.Max)/s.Mean - 1
	}
	return s
}

// Validate checks that a partitioning tiles [0, c.Threads()) exactly:
// contiguous, non-overlapping, complete. Returns nil when well-formed.
func Validate(c Curve, parts []Partition) error {
	if len(parts) == 0 {
		return fmt.Errorf("sched: empty partitioning")
	}
	var expect uint64
	for i, p := range parts {
		if p.Lo != expect {
			return fmt.Errorf("sched: partition %d starts at %d, want %d", i, p.Lo, expect)
		}
		if p.Hi < p.Lo {
			return fmt.Errorf("sched: partition %d is inverted [%d, %d)", i, p.Lo, p.Hi)
		}
		expect = p.Hi
	}
	if expect != c.Threads() {
		return fmt.Errorf("sched: partitions end at %d, domain has %d threads", expect, c.Threads())
	}
	return nil
}
