package sched

import (
	"testing"

	"repro/internal/combinat"
)

func TestTwoLevelTilesBothLevels(t *testing.T) {
	for _, g := range []uint64{20, 50, 200} {
		c := NewTetra3x1(g)
		tl, err := NewTwoLevel(c, 5, 6)
		if err != nil {
			t.Fatal(err)
		}
		if err := tl.Validate(c); err != nil {
			t.Fatalf("G=%d: %v", g, err)
		}
		flat := tl.Flatten()
		if len(flat) != 30 {
			t.Fatalf("G=%d: flattened to %d devices, want 30", g, len(flat))
		}
		if err := Validate(c, flat); err != nil {
			t.Fatalf("G=%d flat: %v", g, err)
		}
	}
}

func TestTwoLevelBalancesLikeFlat(t *testing.T) {
	// The hierarchical cut's device-level balance should be comparable to
	// a flat equi-area cut over the same device count.
	c := NewTetra3x1(19411)
	tl, err := NewTwoLevel(c, 100, 6)
	if err != nil {
		t.Fatal(err)
	}
	flat := Analyze(c, mustParts(t)(EquiArea(c, 600)))
	hier := Analyze(c, tl.Flatten())
	if hier.Imbalance > 5*flat.Imbalance+0.01 {
		t.Fatalf("hierarchical imbalance %.5f vs flat %.5f", hier.Imbalance, flat.Imbalance)
	}
	// Node level is exactly equi-area.
	nodeStats := Analyze(c, tl.Nodes)
	if nodeStats.Imbalance > 0.01 {
		t.Fatalf("node-level imbalance %.5f", nodeStats.Imbalance)
	}
	// Work conservation end to end.
	var sum uint64
	for _, w := range hier.PerPart {
		sum += w
	}
	if sum != combinat.QuadCount(19411) {
		t.Fatal("work lost in the hierarchy")
	}
}

func TestTwoLevelErrors(t *testing.T) {
	c := NewTetra3x1(10)
	if _, err := NewTwoLevel(c, 0, 6); err == nil {
		t.Error("zero nodes should error")
	}
	if _, err := NewTwoLevel(c, 3, 0); err == nil {
		t.Error("zero GPUs per node should error")
	}
}

func TestTwoLevelMoreDevicesThanThreads(t *testing.T) {
	c := NewFlat(4)
	tl, err := NewTwoLevel(c, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.Validate(c); err != nil {
		t.Fatal(err)
	}
}
