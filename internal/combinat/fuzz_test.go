package combinat

import "testing"

// FuzzLinearToTriple checks decode/encode bijectivity and ordering at
// arbitrary λ, the property every kernel's thread assignment rests on.
func FuzzLinearToTriple(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1))
	f.Add(TripleCount(19411) - 1)
	f.Add(uint64(1) << 40)
	f.Fuzz(func(t *testing.T, raw uint64) {
		lambda := raw % TripleCount(3_000_000)
		i, j, k := LinearToTriple(lambda)
		if i >= j || j >= k {
			t.Fatalf("λ=%d decoded to unordered (%d,%d,%d)", lambda, i, j, k)
		}
		if got := TripleToLinear(i, j, k); got != lambda {
			t.Fatalf("λ=%d round-tripped to %d", lambda, got)
		}
	})
}

// FuzzLinearToQuad does the same for the 4-simplex map behind the 4x1 and
// 5-hit kernels.
func FuzzLinearToQuad(f *testing.F) {
	f.Add(uint64(0))
	f.Add(QuadCount(19411) - 1)
	f.Fuzz(func(t *testing.T, raw uint64) {
		lambda := raw % QuadCount(100_000)
		i, j, k, l := LinearToQuad(lambda)
		if i >= j || j >= k || k >= l {
			t.Fatalf("λ=%d decoded to unordered (%d,%d,%d,%d)", lambda, i, j, k, l)
		}
		if got := QuadToLinear(i, j, k, l); got != lambda {
			t.Fatalf("λ=%d round-tripped to %d", lambda, got)
		}
	})
}
