package combinat

import (
	"fmt"
	"math"
)

// This file holds the checked narrowing helpers the overflowcheck analyzer
// steers λ consumers toward. Gene coordinates decoded from a λ index are
// bounded by the gene count G and always fit an int, but a raw int(x)
// conversion encodes that assumption invisibly; these helpers assert it.
// Panicking here is the package's usual invariant-assertion style (compare
// PairToLinear), and combinat is deliberately outside the panicfree
// analyzer's scope: it is a leaf index-arithmetic package whose panics are
// the moral equivalent of slice bounds checks.

// ToInt converts a λ-derived value to int, panicking if it does not fit.
// Use it wherever a count or coordinate proven to be small crosses into
// int-indexed code; the panic documents (and enforces) the proof.
func ToInt(u uint64) int {
	if u > math.MaxInt {
		panic(fmt.Sprintf("combinat: value %d overflows int", u))
	}
	return int(u)
}

// PairCoords decodes λ like LinearToPair and returns int coordinates — the
// form the kernels index matrices with.
func PairCoords(lambda uint64) (i, j int) {
	iu, ju := LinearToPair(lambda)
	return ToInt(iu), ToInt(ju)
}

// TripleCoords decodes λ like LinearToTriple and returns int coordinates.
func TripleCoords(lambda uint64) (i, j, k int) {
	iu, ju, ku := LinearToTriple(lambda)
	return ToInt(iu), ToInt(ju), ToInt(ku)
}

// QuadCoords decodes λ like LinearToQuad and returns int coordinates.
func QuadCoords(lambda uint64) (i, j, k, l int) {
	iu, ju, ku, lu := LinearToQuad(lambda)
	return ToInt(iu), ToInt(ju), ToInt(ku), ToInt(lu)
}
