package combinat

import "testing"

// These tests pin the exact agreement range of the paper's closed-form
// float decoders (PaperPairJ, PaperTripleK) against the integer-exact
// decoders, so a future refactor of the float paths cannot silently shrink
// it. The boundary values were found by scanning every level boundary
// (λ = Tri(j), Tri(j+1)−1 and λ = Tet(k), Tet(k+1)−1) plus a binary search
// inside the first divergent level; since the float estimates are monotone
// non-decreasing in λ and the exact coordinate is constant within a level,
// checking the level boundaries covers every λ between them.

func TestPaperPairJAgreementPin(t *testing.T) {
	// PaperPairJ matches the exact decode for every λ up to
	// 9 007 199 321 849 854 — the tail of level j = 2²⁷, right where
	// 2λ + ¼ exhausts float64's 53-bit mantissa — and first diverges at
	// the very next λ.
	const largestAgreeing = 9007199321849854
	const firstDivergent = largestAgreeing + 1

	cases := []struct {
		lambda uint64
		paperJ uint64
		exactJ uint64
	}{
		{0, 1, 1}, // the paper's 1-indexed guess floor(√¼+½) = 1; LinearToPair walks it back
		{1, 2, 2},
		{2, 2, 2},
		{Tri(1000), 1000, 1000},     // level start
		{Tri(1001) - 1, 1000, 1000}, // level end
		{1 << 40, 1482910, 1482910},
		{1 << 52, 94906266, 94906266},
		{Tri(1 << 27), 134217728, 134217728},    // start of the last fully-exact level
		{largestAgreeing, 134217728, 134217728}, // largest λ with exact agreement
		{firstDivergent, 134217729, 134217728},  // float rounds up one level early
	}
	for _, c := range cases {
		if got := PaperPairJ(c.lambda); got != c.paperJ {
			t.Errorf("PaperPairJ(%d) = %d, pinned %d", c.lambda, got, c.paperJ)
		}
		_, j := LinearToPair(c.lambda)
		if j != c.exactJ {
			t.Errorf("LinearToPair(%d) j = %d, pinned %d", c.lambda, j, c.exactJ)
		}
	}

	// Sweep level boundaries below the pinned horizon: exact agreement.
	for _, j := range []uint64{1, 2, 3, 10, 1000, 1 << 10, 1 << 20, 1<<27 - 1} {
		for _, lambda := range []uint64{Tri(j), Tri(j+1) - 1} {
			if pj := PaperPairJ(lambda); pj != j {
				t.Errorf("PaperPairJ(%d) = %d, want %d (level boundary below pinned horizon)", lambda, pj, j)
			}
		}
	}
}

func TestPaperTripleKDriftBandPin(t *testing.T) {
	// PaperTripleK solves the 1-indexed cubic, so it never equals the
	// 0-indexed exact k; its drift sits in the band [−2, −1] from λ = 1 all
	// the way to the top of the uint64-representable tetrahedral domain
	// (level k = 4 801 279; Tet overflows at C(4 801 281, 3)). The fix-up
	// walk in LinearToTriple absorbs the band; this test pins that the band
	// never widens.
	cases := []struct {
		lambda uint64
		paperK uint64
		exactK uint64
	}{
		{1, 1, 3}, // smallest λ: drift −2
		{3, 2, 3}, // level tail: drift −1
		{4, 2, 4},
		{1 << 40, 18754, 18755},
		{Tet(19411), 19409, 19411},             // BRCA domain top boundary
		{TripleCount(19411) - 1, 19409, 19410}, // largest BRCA λ
		{1 << 53, 378076, 378078},              // past float64's integer range
		{Tet(4801279), 4801277, 4801279},       // last decodable level start
		{Tet(4801280) - 1, 4801278, 4801279},   // largest safely decodable λ
	}
	for _, c := range cases {
		if got := PaperTripleK(c.lambda); got != c.paperK {
			t.Errorf("PaperTripleK(%d) = %d, pinned %d", c.lambda, got, c.paperK)
		}
		_, _, k := LinearToTriple(c.lambda)
		if k != c.exactK {
			t.Errorf("LinearToTriple(%d) k = %d, pinned %d", c.lambda, k, c.exactK)
		}
	}

	// Band sweep: at every sampled level boundary across the full domain the
	// drift stays in [−2, −1].
	for _, k := range []uint64{3, 4, 10, 1000, 19411, 378078, 1 << 20, 4000000, 4801278} {
		for _, lambda := range []uint64{Tet(k), Tet(k+1) - 1} {
			_, _, ek := LinearToTriple(lambda)
			pk := PaperTripleK(lambda)
			d := int64(pk) - int64(ek)
			if d < -2 || d > -1 {
				t.Errorf("PaperTripleK(%d) drift %d outside pinned band [-2, -1] (paper %d, exact %d)",
					lambda, d, pk, ek)
			}
		}
	}
}
