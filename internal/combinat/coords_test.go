package combinat

import (
	"math"
	"testing"
)

func TestToInt(t *testing.T) {
	for _, u := range []uint64{0, 1, 19411, math.MaxInt} {
		if got := ToInt(u); uint64(got) != u {
			t.Errorf("ToInt(%d) = %d", u, got)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ToInt(MaxInt+1) should panic")
		}
	}()
	ToInt(uint64(math.MaxInt) + 1)
}

func TestCoordsMatchDecoders(t *testing.T) {
	for _, lambda := range []uint64{0, 1, 2, 100, 99999, 1 << 30} {
		iu, ju := LinearToPair(lambda)
		i, j := PairCoords(lambda)
		if uint64(i) != iu || uint64(j) != ju {
			t.Errorf("PairCoords(%d) = (%d, %d), want (%d, %d)", lambda, i, j, iu, ju)
		}
	}
	for _, lambda := range []uint64{0, 1, 2, 100, 99999, 1 << 30} {
		iu, ju, ku := LinearToTriple(lambda)
		i, j, k := TripleCoords(lambda)
		if uint64(i) != iu || uint64(j) != ju || uint64(k) != ku {
			t.Errorf("TripleCoords(%d) = (%d, %d, %d), want (%d, %d, %d)",
				lambda, i, j, k, iu, ju, ku)
		}
	}
	for _, lambda := range []uint64{0, 1, 2, 100, 99999, 1 << 30} {
		iu, ju, ku, lu := LinearToQuad(lambda)
		i, j, k, l := QuadCoords(lambda)
		if uint64(i) != iu || uint64(j) != ju || uint64(k) != ku || uint64(l) != lu {
			t.Errorf("QuadCoords(%d) = (%d, %d, %d, %d), want (%d, %d, %d, %d)",
				lambda, i, j, k, l, iu, ju, ku, lu)
		}
	}
}
