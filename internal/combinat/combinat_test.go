package combinat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialSmall(t *testing.T) {
	cases := []struct {
		n, k, want uint64
	}{
		{0, 0, 1},
		{1, 0, 1},
		{1, 1, 1},
		{5, 2, 10},
		{10, 3, 120},
		{10, 7, 120},
		{20, 10, 184756},
		{52, 5, 2598960},
		{64, 32, 1832624140942590534},
	}
	for _, c := range cases {
		got, ok := Binomial(c.n, c.k)
		if !ok {
			t.Fatalf("Binomial(%d,%d) reported overflow", c.n, c.k)
		}
		if got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialKGreaterThanN(t *testing.T) {
	if got, _ := Binomial(3, 5); got != 0 {
		t.Errorf("Binomial(3,5) = %d, want 0", got)
	}
}

func TestBinomialPaperScale(t *testing.T) {
	// The paper's BRCA gene count.
	const G = 19411
	c3 := MustBinomial(G, 3)
	c4 := MustBinomial(G, 4)
	// C(19411,3) = 19411*19410*19409/6
	want3 := uint64(19411) * 19410 / 2 * 19409 / 3
	if c3 != want3 {
		t.Errorf("C(G,3) = %d, want %d", c3, want3)
	}
	// Paper Sec. II-B: M ≈ 7e15 for G ≈ 20000; at BRCA's G = 19411 the
	// exact quad count is ~5.9e15.
	if c4 < 5.8e15 || c4 > 6.0e15 {
		t.Errorf("C(G,4) = %d, outside the expected ~5.9e15 band", c4)
	}
	// Pascal identity ties the two together.
	if MustBinomial(G+1, 4) != c4+c3 {
		t.Error("Pascal identity C(G+1,4) = C(G,4)+C(G,3) violated")
	}
}

func TestBinomialOverflowDetected(t *testing.T) {
	if _, ok := Binomial(1<<40, 4); ok {
		t.Error("expected overflow for C(2^40, 4)")
	}
	if _, ok := Binomial(300, 150); ok {
		t.Error("expected overflow for C(300, 150)")
	}
}

func TestMustBinomialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBinomial did not panic on overflow")
		}
	}()
	MustBinomial(300, 150)
}

func TestTriTet(t *testing.T) {
	for k := uint64(0); k < 200; k++ {
		if want := MustBinomial(k, 2); Tri(k) != want {
			t.Fatalf("Tri(%d) = %d, want %d", k, Tri(k), want)
		}
		if want := MustBinomial(k, 3); Tet(k) != want {
			t.Fatalf("Tet(%d) = %d, want %d", k, Tet(k), want)
		}
	}
}

func TestPairRoundTripExhaustive(t *testing.T) {
	const G = 120
	var lambda uint64
	for j := uint64(1); j < G; j++ {
		for i := uint64(0); i < j; i++ {
			if got := PairToLinear(i, j); got != lambda {
				t.Fatalf("PairToLinear(%d,%d) = %d, want %d", i, j, got, lambda)
			}
			gi, gj := LinearToPair(lambda)
			if gi != i || gj != j {
				t.Fatalf("LinearToPair(%d) = (%d,%d), want (%d,%d)", lambda, gi, gj, i, j)
			}
			lambda++
		}
	}
	if lambda != PairCount(G) {
		t.Fatalf("enumerated %d pairs, want C(%d,2)=%d", lambda, G, PairCount(G))
	}
}

func TestTripleRoundTripExhaustive(t *testing.T) {
	const G = 40
	var lambda uint64
	for k := uint64(2); k < G; k++ {
		for j := uint64(1); j < k; j++ {
			for i := uint64(0); i < j; i++ {
				if got := TripleToLinear(i, j, k); got != lambda {
					t.Fatalf("TripleToLinear(%d,%d,%d) = %d, want %d", i, j, k, got, lambda)
				}
				gi, gj, gk := LinearToTriple(lambda)
				if gi != i || gj != j || gk != k {
					t.Fatalf("LinearToTriple(%d) = (%d,%d,%d), want (%d,%d,%d)",
						lambda, gi, gj, gk, i, j, k)
				}
				lambda++
			}
		}
	}
	if lambda != TripleCount(G) {
		t.Fatalf("enumerated %d triples, want C(%d,3)=%d", lambda, G, TripleCount(G))
	}
}

func TestPairRoundTripProperty(t *testing.T) {
	// Bijectivity at arbitrary 64-bit scale: decode then re-encode is the
	// identity, and the decoded pair is strictly ordered.
	f := func(raw uint64) bool {
		lambda := raw % PairCount(1<<31)
		i, j := LinearToPair(lambda)
		return i < j && PairToLinear(i, j) == lambda
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTripleRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		lambda := raw % TripleCount(2_000_000)
		i, j, k := LinearToTriple(lambda)
		return i < j && j < k && TripleToLinear(i, j, k) == lambda
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestTripleDecodeAtPaperScale(t *testing.T) {
	// Spot-check exactness at the paper's BRCA scale, G = 19411, around
	// level boundaries where float cube roots are most fragile.
	const G = 19411
	for k := uint64(G - 5); k < G; k++ {
		for _, lambda := range []uint64{Tet(k), Tet(k) + 1, Tet(k+1) - 1} {
			_, _, gk := LinearToTriple(lambda)
			if lambda < Tet(k+1) && gk != k {
				t.Errorf("LinearToTriple(%d): k = %d, want %d", lambda, gk, k)
			}
		}
	}
}

func TestTripleOrderingMonotone(t *testing.T) {
	// The 3x1 scheduler depends on k being non-decreasing in λ.
	rng := rand.New(rand.NewSource(42))
	prevK := uint64(0)
	var lambdas []uint64
	for n := 0; n < 1000; n++ {
		lambdas = append(lambdas, rng.Uint64()%TripleCount(19411))
	}
	// Sort by insertion into increasing order.
	for i := 1; i < len(lambdas); i++ {
		for j := i; j > 0 && lambdas[j] < lambdas[j-1]; j-- {
			lambdas[j], lambdas[j-1] = lambdas[j-1], lambdas[j]
		}
	}
	for _, l := range lambdas {
		_, _, k := LinearToTriple(l)
		if k < prevK {
			t.Fatalf("k not monotone: λ=%d gives k=%d after k=%d", l, k, prevK)
		}
		prevK = k
	}
}

func TestPaperPairJAccuracy(t *testing.T) {
	// The paper's closed form (with its 1-indexed convention) should land
	// within one step of the exact 0-indexed j for all tested λ.
	for _, lambda := range []uint64{0, 1, 2, 10, 1000, 1 << 20, 1 << 40, 1 << 52} {
		_, j := LinearToPair(lambda)
		pj := PaperPairJ(lambda)
		diff := int64(pj) - int64(j)
		if diff < -1 || diff > 1 {
			t.Errorf("PaperPairJ(%d) = %d, exact j = %d (drift %d)", lambda, pj, j, diff)
		}
	}
}

func TestPaperTripleKAccuracy(t *testing.T) {
	// The Cardano closed form solves the 1-indexed cubic; it must stay
	// within a couple of steps of the exact 0-indexed k even at the top of
	// the BRCA λ-domain — the fix-up walk in LinearToTriple absorbs this.
	const G = 19411
	rng := rand.New(rand.NewSource(7))
	for n := 0; n < 5000; n++ {
		lambda := rng.Uint64() % TripleCount(G)
		_, _, k := LinearToTriple(lambda)
		pk := PaperTripleK(lambda)
		diff := int64(pk) - int64(k)
		if diff < -3 || diff > 3 {
			t.Errorf("PaperTripleK(%d) = %d, exact k = %d (drift %d)", lambda, pk, k, diff)
		}
	}
}

func TestLogExpSqrtIdentity(t *testing.T) {
	// Sec. III-F: the log/exp evaluation of sqrt(729λ²−3) must agree with
	// exact 128-bit arithmetic to float64 precision across the λ range.
	for _, lambda := range []uint64{1, 2, 10, 12345, 1 << 30, 1 << 40, TripleCount(19411) - 1} {
		got := PaperSqrt729(lambda)
		want := ExactSqrt729(lambda)
		rel := math.Abs(got-want) / want
		if rel > 1e-12 {
			t.Errorf("PaperSqrt729(%d) = %g, exact = %g (rel err %g)", lambda, got, want, rel)
		}
	}
}

func TestPairToLinearPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PairToLinear(3,3) did not panic")
		}
	}()
	PairToLinear(3, 3)
}

func TestTripleToLinearPanicsOnBadOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("TripleToLinear(1,5,5) did not panic")
		}
	}()
	TripleToLinear(1, 5, 5)
}

func TestCountHelpers(t *testing.T) {
	if PairCount(20000) != MustBinomial(20000, 2) {
		t.Error("PairCount mismatch")
	}
	if TripleCount(20000) != MustBinomial(20000, 3) {
		t.Error("TripleCount mismatch")
	}
	if QuadCount(20000) != MustBinomial(20000, 4) {
		t.Error("QuadCount mismatch")
	}
}

func BenchmarkLinearToPair(b *testing.B) {
	lambda := PairCount(19411) - 7
	for n := 0; n < b.N; n++ {
		i, j := LinearToPair(lambda)
		if i >= j {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkLinearToTriple(b *testing.B) {
	lambda := TripleCount(19411) - 7
	for n := 0; n < b.N; n++ {
		i, j, k := LinearToTriple(lambda)
		if i >= j || j >= k {
			b.Fatal("bad decode")
		}
	}
}

func BenchmarkPaperTripleK(b *testing.B) {
	lambda := TripleCount(19411) - 7
	var sink uint64
	for n := 0; n < b.N; n++ {
		sink += PaperTripleK(lambda)
	}
	_ = sink
}

func TestQuadRoundTripExhaustive(t *testing.T) {
	const G = 20
	var lambda uint64
	for l := uint64(3); l < G; l++ {
		for k := uint64(2); k < l; k++ {
			for j := uint64(1); j < k; j++ {
				for i := uint64(0); i < j; i++ {
					if got := QuadToLinear(i, j, k, l); got != lambda {
						t.Fatalf("QuadToLinear(%d,%d,%d,%d) = %d, want %d",
							i, j, k, l, got, lambda)
					}
					gi, gj, gk, gl := LinearToQuad(lambda)
					if gi != i || gj != j || gk != k || gl != l {
						t.Fatalf("LinearToQuad(%d) = (%d,%d,%d,%d), want (%d,%d,%d,%d)",
							lambda, gi, gj, gk, gl, i, j, k, l)
					}
					lambda++
				}
			}
		}
	}
	if lambda != QuadCount(G) {
		t.Fatalf("enumerated %d quads, want C(%d,4)=%d", lambda, G, QuadCount(G))
	}
}

func TestQuadRoundTripProperty(t *testing.T) {
	f := func(raw uint64) bool {
		lambda := raw % QuadCount(19411)
		i, j, k, l := LinearToQuad(lambda)
		return i < j && j < k && k < l && QuadToLinear(i, j, k, l) == lambda
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestQuadToLinearPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("QuadToLinear(0,1,2,2) did not panic")
		}
	}()
	QuadToLinear(0, 1, 2, 2)
}

func BenchmarkLinearToQuad(b *testing.B) {
	lambda := QuadCount(19411) - 7
	for n := 0; n < b.N; n++ {
		i, j, k, l := LinearToQuad(lambda)
		if i >= j || j >= k || k >= l {
			b.Fatal("bad decode")
		}
	}
}
