package combinat

import "fmt"

// The combinatorial number system generalizes the triangular/tetrahedral
// maps to any subset size: every h-subset {c₁ < c₂ < … < c_h} has the
// unique rank Σᵢ C(cᵢ, i). The specialized pair/triple/quad maps are the
// h = 2, 3, 4 instances with hand-tuned decoders; Rank/Unrank serve any h
// (and differential-test the specialized maps).

// Rank maps a strictly increasing combination to its linear index.
func Rank(combo []uint64) uint64 {
	var r uint64
	for i, c := range combo {
		if i > 0 && combo[i-1] >= c {
			panic(fmt.Sprintf("combinat: Rank requires a strictly increasing combination, got %v", combo))
		}
		r += MustBinomial(c, uint64(i+1))
	}
	return r
}

// Unrank inverts Rank for subsets of size h: it returns the unique
// strictly increasing combination with the given rank. It panics if h is 0.
func Unrank(rank uint64, h int) []uint64 {
	if h <= 0 {
		panic(fmt.Sprintf("combinat: Unrank needs h ≥ 1, got %d", h))
	}
	combo := make([]uint64, h)
	remaining := rank
	for i := h; i >= 1; i-- {
		// Largest c with C(c, i) ≤ remaining.
		c := greatestBinomialAtMost(remaining, uint64(i))
		combo[i-1] = c
		remaining -= MustBinomial(c, uint64(i))
	}
	return combo
}

// greatestBinomialAtMost returns the largest c with C(c, i) ≤ target.
func greatestBinomialAtMost(target, i uint64) uint64 {
	// Exponential search for an upper bound, then binary search.
	lo, hi := i-1, i
	for {
		v, ok := Binomial(hi, i)
		if !ok || v > target {
			break
		}
		lo = hi
		hi *= 2
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		v, ok := Binomial(mid, i)
		if ok && v <= target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}
