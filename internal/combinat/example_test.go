package combinat_test

import (
	"fmt"

	"repro/internal/combinat"
)

// The linear maps let a flat thread id enumerate ordered tuples without
// nested loops — the core trick behind the paper's kernels.
func ExampleLinearToTriple() {
	// Thread 7 of the 3x1 kernel processes combinations (i, j, k, l) for
	// its fixed triple and all l > k.
	i, j, k := combinat.LinearToTriple(7)
	fmt.Println(i, j, k)
	// Round trip.
	fmt.Println(combinat.TripleToLinear(i, j, k))
	// Output:
	// 0 3 4
	// 7
}

func ExampleBinomial() {
	// The 4-hit search space at the paper's BRCA gene count.
	c, ok := combinat.Binomial(19411, 4)
	fmt.Println(ok, c)
	// C(400000, 4) does not fit in 64 bits.
	_, ok = combinat.Binomial(400000, 4)
	fmt.Println(ok)
	// Output:
	// true 5913521046485780
	// false
}

func ExamplePaperTripleK() {
	// The paper's closed-form decode lands within a step or two of the
	// exact k; LinearToTriple's fix-up walk makes it exact.
	lambda := combinat.Tet(1000) + 5
	_, _, exact := combinat.LinearToTriple(lambda)
	fmt.Println(exact, combinat.PaperTripleK(lambda))
	// Output:
	// 1000 998
}
