// Package combinat provides the combinatorial index arithmetic at the heart
// of the multi-hit weighted-set-cover engine: exact binomial coefficients and
// the bijective "linear thread id" maps between a flat index λ and the upper
// triangular (i < j) or upper tetrahedral (i < j < k) coordinate spaces.
//
// The maps implement Algorithms 1–3 of Dash et al. (IPDPS 2021). A GPU (or a
// goroutine worker standing in for one) is handed a contiguous range of λ
// values; each λ decodes to a unique gene tuple, so no two threads ever
// process the same combination and no thread sits idle on the redundant
// half (or five-sixths) of the full G×G (×G) index cube.
//
// Two decoding strategies are provided:
//
//   - The exact integer decoders (LinearToPair, LinearToTriple) use a
//     floating-point initial guess followed by an integer fix-up loop, and
//     are exact for every index representable in a uint64.
//   - The "paper" float decoders (PaperPairJ, PaperTripleK) reproduce the
//     closed-form floating-point expressions from the paper, including the
//     log/exp evaluation of sqrt(729λ²−3) that avoids 128-bit arithmetic
//     (Sec. III-F). They are used by experiment E13 to quantify how far the
//     raw float estimate drifts from the exact answer at TCGA scale.
package combinat

import (
	"fmt"
	"math"
	"math/bits"
)

// MaxUint64 is the largest value representable in the linear index domain.
const MaxUint64 = math.MaxUint64

// Binomial returns C(n, k) and reports whether the computation overflowed
// uint64. The multiply-then-divide ladder keeps intermediate values exact:
// after step i the accumulator equals C(n, i+1), which is always divisible
// at that point.
func Binomial(n, k uint64) (uint64, bool) {
	if k > n {
		return 0, true
	}
	if k > n-k {
		k = n - k
	}
	var c uint64 = 1
	for i := uint64(0); i < k; i++ {
		// c = c * (n-i) / (i+1), with overflow detection on the multiply.
		hi, lo := bits.Mul64(c, n-i)
		d := i + 1
		if hi >= d {
			return 0, false
		}
		c, _ = bits.Div64(hi, lo, d)
	}
	return c, true
}

// MustBinomial returns C(n, k), panicking on uint64 overflow. It is intended
// for the G ≈ 2·10⁴, h ≤ 4 regime of the paper, where C(20000, 4) ≈ 6.7·10¹⁵
// comfortably fits in 64 bits.
func MustBinomial(n, k uint64) uint64 {
	c, ok := Binomial(n, k)
	if !ok {
		panic(fmt.Sprintf("combinat: C(%d, %d) overflows uint64", n, k))
	}
	return c
}

// Tri returns the triangular number C(k, 2) = k(k−1)/2. The even factor is
// divided out before the multiply so the result is exact whenever it fits.
func Tri(k uint64) uint64 {
	if k%2 == 0 {
		return k / 2 * (k - 1)
	}
	return (k - 1) / 2 * k
}

// Tet returns the tetrahedral number C(k, 3) = k(k−1)(k−2)/6.
func Tet(k uint64) uint64 {
	if k < 3 {
		return 0
	}
	return MustBinomial(k, 3)
}

// PairToLinear maps an ordered pair (i, j) with i < j to its linear index
// λ = C(j, 2) + i. Pairs enumerate in increasing j, then increasing i, which
// makes the per-thread inner-loop workload (a function of j alone in the
// 3-hit kernel) monotone in λ — the property the equi-area scheduler
// exploits.
func PairToLinear(i, j uint64) uint64 {
	if i >= j {
		panic(fmt.Sprintf("combinat: PairToLinear requires i < j, got (%d, %d)", i, j))
	}
	return Tri(j) + i
}

// LinearToPair inverts PairToLinear: it returns the unique (i, j), i < j,
// with λ = C(j, 2) + i. Exact for all λ < C(2³², 2).
func LinearToPair(lambda uint64) (i, j uint64) {
	// Float guess: j ≈ floor(sqrt(2λ + ¼) + ½)  (Algorithm 1, line 2).
	j = uint64(math.Sqrt(2*float64(lambda)+0.25) + 0.5)
	// Integer fix-up: float error is at most a few ulps, so a short walk
	// lands on the unique j with Tri(j) ≤ λ < Tri(j+1).
	for j > 0 && Tri(j) > lambda {
		j--
	}
	for Tri(j+1) <= lambda {
		j++
	}
	return lambda - Tri(j), j
}

// TripleToLinear maps an ordered triple (i, j, k) with i < j < k to its
// linear index λ = C(k, 3) + C(j, 2) + i. Triples enumerate in increasing k,
// then j, then i; in the 4-hit 3x1 kernel the inner-loop trip count G−1−k is
// therefore non-increasing in λ, which yields the discrete "workload levels"
// of Fig. 2.
func TripleToLinear(i, j, k uint64) uint64 {
	if i >= j || j >= k {
		panic(fmt.Sprintf("combinat: TripleToLinear requires i < j < k, got (%d, %d, %d)", i, j, k))
	}
	return Tet(k) + Tri(j) + i
}

// LinearToTriple inverts TripleToLinear: the unique (i, j, k), i < j < k,
// with λ = C(k, 3) + C(j, 2) + i. The initial guess solves the real cubic
// k³ ≈ 6λ; the fix-up walk makes the answer exact for all λ that fit a
// uint64 (covering G well beyond the paper's 19 411 genes).
func LinearToTriple(lambda uint64) (i, j, k uint64) {
	k = uint64(math.Cbrt(6 * float64(lambda)))
	if k < 2 {
		k = 2
	}
	for k > 2 && Tet(k) > lambda {
		k--
	}
	for Tet(k+1) <= lambda {
		k++
	}
	rem := lambda - Tet(k)
	i, j = LinearToPair(rem)
	return i, j, k
}

// PaperPairJ reproduces the paper's closed-form float estimate for the pair
// decode (Algorithm 1, line 2): j = floor(sqrt(¼ + 2λ) + ½). Unlike
// LinearToPair it applies no integer correction; experiment E13 measures its
// drift.
func PaperPairJ(lambda uint64) uint64 {
	return uint64(math.Floor(math.Sqrt(0.25+2*float64(lambda)) + 0.5))
}

// PaperTripleK reproduces the paper's closed-form float estimate for the
// largest coordinate of the triple decode (Algorithm 3, lines 2–3):
//
//	q = cbrt(sqrt(729λ² − 3) + 27λ)
//	k ≈ q / 3^(2/3) + 1 / (3q)^(1/3) − 1
//
// solving the real cubic k(k+1)(k+2)/6 = λ via Cardano's formula (for the
// 1-indexed tetrahedral numbering used in the paper; the result is offset to
// this package's 0-indexed convention by the caller where needed).
func PaperTripleK(lambda uint64) uint64 {
	if lambda == 0 {
		return 0
	}
	a := PaperSqrt729(lambda)
	q := math.Cbrt(a + 27*float64(lambda))
	k := q/math.Cbrt(9) + 1/math.Cbrt(3*q) - 1
	if k < 0 {
		return 0
	}
	return uint64(math.Floor(k))
}

// PaperSqrt729 evaluates A = sqrt(729λ² − 3) without 128-bit arithmetic
// using the paper's log/exp identity (Sec. III-F):
//
//	A = exp(½ · (log(3λ) + log(243λ − 1/λ)))
//
// since 729λ² − 3 = 3λ · (243λ − 1/λ).
func PaperSqrt729(lambda uint64) float64 {
	l := float64(lambda)
	return math.Exp(0.5 * (math.Log(3*l) + math.Log(243*l-1/l)))
}

// ExactSqrt729 evaluates floor(sqrt(729λ² − 3)) with exact 128-bit integer
// arithmetic, as ground truth for E13's accuracy comparison against the
// log/exp evaluation.
func ExactSqrt729(lambda uint64) float64 {
	hi, lo := bits.Mul64(lambda, lambda)
	// 729λ²: multiply the 128-bit square by 729.
	h2, l2 := mulAdd128(hi, lo, 729)
	// Subtract 3.
	if l2 < 3 {
		h2--
	}
	l2 -= 3
	return sqrt128(h2, l2)
}

// mulAdd128 multiplies the 128-bit value (hi, lo) by the small constant m,
// assuming the product fits in 128 bits.
func mulAdd128(hi, lo, m uint64) (uint64, uint64) {
	h1, l1 := bits.Mul64(lo, m)
	_, l2 := bits.Mul64(hi, m)
	return l2 + h1, l1
}

// sqrt128 returns sqrt(hi·2⁶⁴ + lo) as a float64.
func sqrt128(hi, lo uint64) float64 {
	v := float64(hi)*math.Exp2(64) + float64(lo)
	return math.Sqrt(v)
}

// Quad returns the 4-simplex number C(k, 4).
func Quad(k uint64) uint64 {
	if k < 4 {
		return 0
	}
	return MustBinomial(k, 4)
}

// QuadToLinear maps an ordered quadruple (i, j, k, l) with i < j < k < l to
// its linear index λ = C(l, 4) + C(k, 3) + C(j, 2) + i — the thread id of
// the 4x1 scheme, where every thread evaluates exactly one combination.
func QuadToLinear(i, j, k, l uint64) uint64 {
	if i >= j || j >= k || k >= l {
		panic(fmt.Sprintf("combinat: QuadToLinear requires i < j < k < l, got (%d, %d, %d, %d)",
			i, j, k, l))
	}
	return Quad(l) + Tet(k) + Tri(j) + i
}

// LinearToQuad inverts QuadToLinear. The initial guess solves the real
// quartic l⁴ ≈ 24λ; the fix-up walk makes the decode exact for all λ that
// fit a uint64.
func LinearToQuad(lambda uint64) (i, j, k, l uint64) {
	l = uint64(math.Sqrt(math.Sqrt(24 * float64(lambda))))
	if l < 3 {
		l = 3
	}
	for l > 3 && Quad(l) > lambda {
		l--
	}
	for Quad(l+1) <= lambda {
		l++
	}
	rem := lambda - Quad(l)
	i, j, k = LinearToTriple(rem)
	return i, j, k, l
}

// PairCount returns the number of pairs over g genes, C(g, 2) — the λ-domain
// size for the 2x2 scheme.
func PairCount(g uint64) uint64 { return Tri(g) }

// TripleCount returns the number of triples over g genes, C(g, 3) — the
// λ-domain size for the 3x1 scheme.
func TripleCount(g uint64) uint64 { return Tet(g) }

// QuadCount returns the number of 4-combinations over g genes, C(g, 4) — the
// total 4-hit workload in combinations.
func QuadCount(g uint64) uint64 { return MustBinomial(g, 4) }
