package combinat

import (
	"testing"
	"testing/quick"
)

func TestRankUnrankExhaustive(t *testing.T) {
	// For each subset size, enumerate every combination of a small
	// universe and check ranks are sequential in colexicographic order.
	for h := 1; h <= 5; h++ {
		const n = 12
		count := MustBinomial(n, uint64(h))
		seen := make([]bool, count)
		for rank := uint64(0); rank < count; rank++ {
			combo := Unrank(rank, h)
			for i := 1; i < h; i++ {
				if combo[i-1] >= combo[i] {
					t.Fatalf("h=%d rank=%d: %v not increasing", h, rank, combo)
				}
			}
			if combo[h-1] >= n {
				t.Fatalf("h=%d rank=%d: %v escapes the universe", h, rank, combo)
			}
			if got := Rank(combo); got != rank {
				t.Fatalf("h=%d: Rank(Unrank(%d)) = %d", h, rank, got)
			}
			if seen[rank] {
				t.Fatalf("h=%d rank=%d visited twice", h, rank)
			}
			seen[rank] = true
		}
	}
}

func TestRankMatchesSpecializedMaps(t *testing.T) {
	// The combinatorial number system must agree with the hand-tuned
	// pair/triple/quad decoders at arbitrary indices.
	f := func(raw uint64) bool {
		l2 := raw % PairCount(100000)
		i, j := LinearToPair(l2)
		if Rank([]uint64{i, j}) != l2 {
			return false
		}
		l3 := raw % TripleCount(100000)
		a, b, c := LinearToTriple(l3)
		if Rank([]uint64{a, b, c}) != l3 {
			return false
		}
		l4 := raw % QuadCount(50000)
		w, x, y, z := LinearToQuad(l4)
		return Rank([]uint64{w, x, y, z}) == l4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestUnrankPaperScale(t *testing.T) {
	// Round trip at the top of the BRCA 4-hit domain.
	lambda := QuadCount(19411) - 1
	combo := Unrank(lambda, 4)
	if Rank(combo) != lambda {
		t.Fatalf("paper-scale round trip failed: %v", combo)
	}
	if combo[3] != 19410 {
		t.Fatalf("last combination should end at gene G-1, got %v", combo)
	}
}

func TestRankPanics(t *testing.T) {
	for i, fn := range []func(){
		func() { Rank([]uint64{3, 3}) },
		func() { Rank([]uint64{5, 2}) },
		func() { Unrank(0, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUnrank4(b *testing.B) {
	lambda := QuadCount(19411) - 7
	for n := 0; n < b.N; n++ {
		Unrank(lambda, 4)
	}
}
