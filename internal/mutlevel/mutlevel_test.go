package mutlevel

import (
	"strings"
	"testing"

	"repro/internal/cover"
	"repro/internal/dataset"
)

// lggCohort builds an LGG-shaped cohort with full positional profiling.
func lggCohort(t *testing.T, genes int) *dataset.Cohort {
	t.Helper()
	spec := dataset.LGG().Scaled(genes)
	spec.ProfileAll = true
	c, err := dataset.Generate(spec, 42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestExpandShapes(t *testing.T) {
	c := lggCohort(t, 50)
	e, err := Expand(c, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Sites) == 0 {
		t.Fatal("no sites retained")
	}
	if e.Tumor.Genes() != len(e.Sites) || e.Tumor.Samples() != c.Nt() {
		t.Fatalf("tumor matrix %d×%d", e.Tumor.Genes(), e.Tumor.Samples())
	}
	if e.Normal.Samples() != c.Nn() {
		t.Fatal("normal sample dimension wrong")
	}
	if e.DroppedSites == 0 {
		t.Fatal("recurrence filter dropped nothing — passenger scatter missing?")
	}
	// Sites sorted by symbol then position, recurrences consistent.
	for i := 1; i < len(e.Sites); i++ {
		a, b := e.Sites[i-1], e.Sites[i]
		if a.Symbol > b.Symbol || (a.Symbol == b.Symbol && a.Position >= b.Position) {
			t.Fatalf("sites not sorted at %d: %v then %v", i, a, b)
		}
	}
	for row, s := range e.Sites {
		if e.Tumor.RowPopCount(row) != s.TumorRecurrence {
			t.Fatalf("site %s: matrix recurrence %d != %d",
				s.Label(), e.Tumor.RowPopCount(row), s.TumorRecurrence)
		}
		if s.TumorRecurrence < 3 {
			t.Fatalf("site %s below the recurrence threshold", s.Label())
		}
	}
}

func TestExpandRetainsDriversDropsPassengers(t *testing.T) {
	c := lggCohort(t, 50)
	e, err := Expand(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The IDH1 hotspot survives as a high-recurrence site.
	idh1 := e.SiteIndex("IDH1", 132)
	if idh1 < 0 {
		t.Fatal("IDH1:132 missing from the expansion")
	}
	if e.Sites[idh1].TumorRecurrence < 50 {
		t.Fatalf("IDH1:132 recurrence %d — hotspot diluted", e.Sites[idh1].TumorRecurrence)
	}
	// MUC6's passenger scatter leaves no recurrent site.
	for _, s := range e.Sites {
		if s.Symbol == "MUC6" {
			t.Fatalf("passenger site %s survived the recurrence filter", s.Label())
		}
	}
}

func TestMutationLevelDiscoveryNamesTheDriverSites(t *testing.T) {
	// The paper's Sec. V point, executed: gene-level discovery returns the
	// IDH1 combination with its passenger partners; mutation-level
	// discovery returns specific driver sites and excludes passenger
	// scatter entirely.
	c := lggCohort(t, 50)
	e, err := Expand(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cover.Run(e.Tumor, e.Normal, cover.Options{Hits: 4, MaxIterations: 6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("mutation-level discovery found nothing")
	}
	// The top combination must be four hotspot sites drawn from a single
	// planted driver combination — mutation-level discovery names causal
	// sites, not genes-with-any-mutation.
	top := e.Labels(res.Steps[0].Combo.GeneIDs())
	joined := strings.Join(top, "+")
	symbols := map[string]bool{}
	for _, label := range top {
		symbols[strings.Split(label, ":")[0]] = true
		if strings.HasPrefix(label, "MUC6:") {
			t.Fatalf("top combination %s includes passenger MUC6 scatter", joined)
		}
	}
	matched := false
	for _, planted := range c.Planted {
		all := true
		for _, g := range planted {
			if !symbols[c.GeneSymbols[g]] {
				all = false
				break
			}
		}
		if all && len(symbols) == len(planted) {
			matched = true
			break
		}
	}
	if !matched {
		t.Fatalf("top combination %s is not the hotspot sites of one planted combo", joined)
	}
	// The IDH1 combination itself cannot re-form at mutation level: its
	// partners are passengers with no recurrent site — the reason the
	// paper says gene-level combinations mix drivers with passengers. Its
	// tumors are covered only once 2-hit/uncoverable accounting kicks in.
	for _, step := range res.Steps {
		labels := e.Labels(step.Combo.GeneIDs())
		for _, l := range labels {
			if strings.HasPrefix(l, "PABPC3:") || strings.HasPrefix(l, "TAS2R46:") {
				t.Fatalf("passenger scatter %s entered a combination", l)
			}
		}
	}
}

func TestSearchSpaceBlowUp(t *testing.T) {
	c := lggCohort(t, 50)
	e, err := Expand(c, 2)
	if err != nil {
		t.Fatal(err)
	}
	mut, ok := e.SearchSpace(4)
	if !ok {
		t.Fatal("search space overflowed at toy scale")
	}
	gene4 := uint64(50 * 49 * 48 * 47 / 24)
	if mut <= gene4 {
		t.Fatalf("mutation-level space %d should exceed gene-level %d", mut, gene4)
	}
}

func TestExpandValidation(t *testing.T) {
	c := lggCohort(t, 50)
	if _, err := Expand(c, 0); err == nil {
		t.Fatal("accepted minRecurrence 0")
	}
	bare := &dataset.Cohort{Spec: c.Spec}
	if _, err := Expand(bare, 2); err == nil {
		t.Fatal("accepted cohort without positional records")
	}
}

func TestSiteLabel(t *testing.T) {
	s := Site{Symbol: "IDH1", Position: 132}
	if s.Label() != "IDH1:132" {
		t.Fatalf("Label = %q", s.Label())
	}
}

func TestMutationLevelClassifierBeatsGeneLevelSpecificity(t *testing.T) {
	// The Sec. V promise, quantified: classify held-out samples with
	// gene-level vs mutation-level combinations. Mutation-level rules
	// (specific recurrent sites) should not lose specificity, because
	// hypermutated normals scatter across codons and never reassemble a
	// driver-site combination.
	spec := dataset.LGG().Scaled(50)
	spec.ProfileAll = true
	spec.NoisyNormalFrac = 0.4
	spec.NoisyNormalRate = 0.45
	c, err := dataset.Generate(spec, 77)
	if err != nil {
		t.Fatal(err)
	}

	// Gene level: discover and evaluate in-sample (small-scale check).
	geneRes, err := cover.Run(c.Tumor, c.Normal, cover.Options{Hits: 4, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	geneFP := 0
	for _, step := range geneRes.Steps {
		geneFP += c.Normal.ComboPopCount(step.Combo.GeneIDs()...)
	}

	// Mutation level on the same cohort.
	e, err := Expand(c, 4)
	if err != nil {
		t.Fatal(err)
	}
	mutRes, err := cover.Run(e.Tumor, e.Normal, cover.Options{Hits: 4, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	mutFP := 0
	for _, step := range mutRes.Steps {
		mutFP += e.Normal.ComboPopCount(step.Combo.GeneIDs()...)
	}
	if mutFP > geneFP {
		t.Fatalf("mutation-level combinations match %d normals vs gene-level %d — "+
			"site specificity lost", mutFP, geneFP)
	}
}
