// Package mutlevel implements the paper's principal future-work direction
// (Sec. V): searching for combinations of specific *mutations* instead of
// combinations of genes with mutations.
//
// The gene-level algorithm cannot distinguish a driver gene (IDH1, whose
// tumor mutations recur at codon 132) from a large passenger gene (MUC6,
// whose mutations scatter); both rows light up in tumors. At mutation
// level every recurrent site becomes its own matrix row ("IDH1:132"),
// passenger scatter dilutes into non-recurrent sites that the recurrence
// filter drops (the paper's strategy 3, "Limit combinations to the most
// probable oncogenic mutations"), and the discovered combinations name the
// causal sites directly.
//
// The cost is exactly the paper's concern: the site universe M is a large
// multiple of G, and C(M, h) grows with its fourth power — SearchSpace
// quantifies the blow-up that motivated the 27 648-GPU outlook.
package mutlevel

import (
	"fmt"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/dataset"
	"repro/internal/gene"
)

// Site is one mutation-level matrix row: a (gene, codon) pair.
type Site struct {
	// Symbol is the gene symbol.
	Symbol string
	// Position is the amino-acid position.
	Position int
	// TumorRecurrence is the number of tumor samples carrying this exact
	// site.
	TumorRecurrence int
}

// Label renders the site as "IDH1:132".
func (s Site) Label() string { return fmt.Sprintf("%s:%d", s.Symbol, s.Position) }

// Expansion is a cohort re-expressed at mutation level.
type Expansion struct {
	// Sites are the retained matrix rows, sorted by symbol then position.
	Sites []Site
	// Tumor and Normal are the site×sample matrices, with columns in the
	// source cohort's barcode order.
	Tumor  *bitmat.Matrix
	Normal *bitmat.Matrix
	// DroppedSites counts sites excluded by the recurrence filter.
	DroppedSites int
	// Source is the cohort the expansion came from.
	Source *dataset.Cohort
}

// Labels returns the site labels for a list of row ids.
func (e *Expansion) Labels(rows []int) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = e.Sites[r].Label()
	}
	return out
}

// SiteIndex returns the row for a site label's components, or -1.
func (e *Expansion) SiteIndex(symbol string, position int) int {
	for i, s := range e.Sites {
		if s.Symbol == symbol && s.Position == position {
			return i
		}
	}
	return -1
}

// SearchSpace returns C(M, h) for the expansion's site count — the
// combination space the mutation-level search must cover — and whether it
// fit in a uint64.
func (e *Expansion) SearchSpace(hits int) (uint64, bool) {
	return combinat.Binomial(uint64(len(e.Sites)), uint64(hits))
}

// Expand builds the mutation-level view of a cohort from its positional
// mutation records, keeping only sites recurring in at least minRecurrence
// tumor samples. The cohort must carry positional records for the genes of
// interest (generate with Spec.ProfileAll for full coverage); matrix bits
// without records do not appear at mutation level.
func Expand(c *dataset.Cohort, minRecurrence int) (*Expansion, error) {
	if minRecurrence < 1 {
		return nil, fmt.Errorf("mutlevel: minRecurrence must be ≥ 1, got %d", minRecurrence)
	}
	if len(c.Mutations) == 0 {
		return nil, fmt.Errorf("mutlevel: cohort has no positional mutation records "+
			"(generate with ProfileAll) for %s", c.Spec.Code)
	}
	tumorCol := map[string]int{}
	for i, b := range c.TumorBarcodes {
		tumorCol[b] = i
	}
	normalCol := map[string]int{}
	for i, b := range c.NormalBarcodes {
		normalCol[b] = i
	}

	type key struct {
		symbol   string
		position int
	}
	tumorCarriers := map[key][]int{}
	normalCarriers := map[key][]int{}
	for _, m := range c.Mutations {
		k := key{m.GeneSymbol, m.Position}
		switch m.Class {
		case gene.Tumor:
			col, ok := tumorCol[m.SampleBarcode]
			if !ok {
				return nil, fmt.Errorf("mutlevel: unknown tumor barcode %s", m.SampleBarcode)
			}
			tumorCarriers[k] = append(tumorCarriers[k], col)
		case gene.Normal:
			col, ok := normalCol[m.SampleBarcode]
			if !ok {
				return nil, fmt.Errorf("mutlevel: unknown normal barcode %s", m.SampleBarcode)
			}
			normalCarriers[k] = append(normalCarriers[k], col)
		}
	}

	// Retain sites by tumor recurrence (distinct carriers).
	var kept []key
	dropped := 0
	for k, cols := range tumorCarriers {
		if distinct(cols) >= minRecurrence {
			kept = append(kept, k)
		} else {
			dropped++
		}
	}
	// Normal-only sites are never drivers; they count as dropped.
	for k := range normalCarriers {
		if _, ok := tumorCarriers[k]; !ok {
			dropped++
		}
	}
	sort.Slice(kept, func(a, b int) bool {
		if kept[a].symbol != kept[b].symbol {
			return kept[a].symbol < kept[b].symbol
		}
		return kept[a].position < kept[b].position
	})

	e := &Expansion{
		Source:       c,
		DroppedSites: dropped,
		Tumor:        bitmat.New(len(kept), c.Nt()),
		Normal:       bitmat.New(len(kept), c.Nn()),
	}
	for row, k := range kept {
		carriers := tumorCarriers[k]
		e.Sites = append(e.Sites, Site{
			Symbol:          k.symbol,
			Position:        k.position,
			TumorRecurrence: distinct(carriers),
		})
		for _, col := range carriers {
			e.Tumor.Set(row, col)
		}
		for _, col := range normalCarriers[k] {
			e.Normal.Set(row, col)
		}
	}
	return e, nil
}

// distinct counts unique values in a small int slice.
func distinct(xs []int) int {
	seen := map[int]bool{}
	for _, x := range xs {
		seen[x] = true
	}
	return len(seen)
}
