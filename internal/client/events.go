package client

// SSE watching with automatic resume. A Stream follows one job's
// /events feed; when the connection breaks (daemon killed, proxy reset),
// it reconnects with exponential backoff and a Last-Event-ID header
// carrying the last sequence number it saw, so the daemon replays
// exactly the frames the client missed — or a single "dropped" frame
// accounting for anything already trimmed from the retained history.
//
// Numbered frames (Seq > 0) are delivered at most once across any
// number of reconnects. Unnumbered snapshot frames (Seq == 0, the state
// summary each connection opens with) may repeat once per reconnect;
// consumers tracking exact progress should key on Seq.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/service"
)

// Stream is a resumable subscription to one job's events. Not safe for
// concurrent use.
type Stream struct {
	c     *Client
	jobID string

	lastSeq  uint64 // newest numbered frame delivered
	haveSeq  bool
	terminal bool // a terminal state frame has been seen
	done     bool // the stream ended cleanly after a terminal frame

	body    io.ReadCloser
	rd      *bufio.Reader
	callIdx uint64 // jitter coordinate for reconnect backoff
	fails   int    // consecutive failed connect/read cycles
}

// Watch opens a stream over the job's events from now (plus the state
// snapshot each connection leads with). The connection is established
// lazily by the first Next call.
func (c *Client) Watch(jobID string) *Stream {
	return &Stream{c: c, jobID: jobID, callIdx: c.callSeq.Add(1)}
}

// WatchFrom opens a stream resuming after sequence number afterSeq (0
// replays the daemon's whole retained history) — what a restarted
// consumer uses to continue where its predecessor stopped.
func (c *Client) WatchFrom(jobID string, afterSeq uint64) *Stream {
	s := c.Watch(jobID)
	s.lastSeq = afterSeq
	s.haveSeq = true
	return s
}

// Close releases the underlying connection (Next must not be in flight).
func (s *Stream) Close() {
	if s.body != nil {
		_ = s.body.Close()
		s.body = nil
		s.rd = nil
	}
}

// Next returns the next event. It blocks for live streams, reconnects
// transparently on transport failures, and returns io.EOF once the job's
// stream ended after a terminal state frame. Any other returned error is
// permanent (not-found, context expiry, retry budget exhausted).
func (s *Stream) Next(ctx context.Context) (service.Event, error) {
	for {
		if err := ctx.Err(); err != nil {
			return service.Event{}, err
		}
		if s.body == nil {
			if s.done {
				// The stream ended cleanly after a terminal frame; there
				// is nothing left to reconnect for.
				return service.Event{}, io.EOF
			}
			if err := s.connect(ctx); err != nil {
				return service.Event{}, err
			}
		}
		e, err := s.readFrame()
		if err != nil {
			s.Close()
			if s.terminal && errors.Is(err, io.EOF) && !errors.Is(err, io.ErrUnexpectedEOF) {
				// The server finished the response after the terminal
				// frame: the stream is over. A severed connection
				// (unexpected EOF, reset) reconnects instead, even past a
				// terminal snapshot — replayed history may still be owed.
				s.done = true
				return service.Event{}, io.EOF
			}
			// Mid-stream break: reconnect with Last-Event-ID unless the
			// retry budget is spent.
			s.fails++
			if s.fails > s.c.cfg.MaxRetries {
				return service.Event{}, fmt.Errorf("client: event stream for %s broken after %d reconnects: %w", s.jobID, s.fails-1, err)
			}
			wait := s.c.backoff(s.callIdx, s.fails)
			s.c.cfg.Logf("client: event stream for %s broke (%v), reconnecting in %s", s.jobID, err, wait)
			if !sleepCtx(ctx, wait) {
				return service.Event{}, ctx.Err()
			}
			continue
		}
		s.fails = 0
		if e.Seq > 0 {
			s.lastSeq = e.Seq
			s.haveSeq = true
		}
		if e.Type == "state" {
			if st, perr := service.ParseState(e.State); perr == nil && st.Terminal() {
				s.terminal = true
			}
		}
		return e, nil
	}
}

// connect dials the events endpoint, resuming after the newest numbered
// frame already delivered. Connect-level failures consume the same retry
// budget as mid-stream breaks.
func (s *Stream) connect(ctx context.Context) error {
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			s.c.base.JoinPath("/v1/jobs/"+s.jobID+"/events").String(), nil)
		if err != nil {
			return fmt.Errorf("client: %w", err)
		}
		req.Header.Set("Accept", "text/event-stream")
		if s.haveSeq {
			req.Header.Set("Last-Event-ID", strconv.FormatUint(s.lastSeq, 10))
		}
		resp, err := s.c.cfg.HTTPClient.Do(req)
		if err == nil && resp.StatusCode == http.StatusOK {
			s.body = resp.Body
			s.rd = bufio.NewReader(resp.Body)
			return nil
		}
		if err == nil {
			data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
			resp.Body.Close()
			err = apiErrorFrom(resp, data)
		}
		if !retryable(err) {
			return err
		}
		s.fails++
		if s.fails > s.c.cfg.MaxRetries {
			return fmt.Errorf("client: connecting event stream for %s: %w", s.jobID, err)
		}
		wait := s.c.backoff(s.callIdx, s.fails)
		s.c.cfg.Logf("client: event stream connect for %s failed (%v), retrying in %s", s.jobID, err, wait)
		if !sleepCtx(ctx, wait) {
			return ctx.Err()
		}
	}
}

// readFrame parses one SSE frame (id:/event:/data: lines up to a blank
// line) into an Event.
func (s *Stream) readFrame() (service.Event, error) {
	var e service.Event
	var haveData bool
	for {
		line, err := s.rd.ReadString('\n')
		if err != nil {
			return e, err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if haveData {
				return e, nil
			}
			// Keep-alive or leading blank: keep reading.
		case strings.HasPrefix(line, "data: "):
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &e); err != nil {
				return e, fmt.Errorf("decoding event: %w", err)
			}
			haveData = true
		case strings.HasPrefix(line, "id: "):
			// Informational here; the authoritative Seq rides the JSON.
		}
	}
}
