// Package client is the Go client for the multihitd v1 API
// (docs/SERVICE.md §2, docs/RESILIENCE.md §4). It exists so callers —
// the chaos soak (cmd/chaossoak) first among them — can talk to a daemon
// that is being killed, rate-limited, and disk-starved and still get
// exactly-once submission semantics:
//
//   - every call has a per-call timeout and retries transient failures
//     (network errors, 429, 5xx) with exponential backoff and the same
//     deterministic splitmix64 jitter scheme as the harness retry loop,
//     so two soak runs with equal seeds wait identically;
//   - Retry-After hints from the daemon's overload shedding are honored,
//     clamped to the configured backoff ceiling;
//   - Submit always carries an Idempotency-Key (caller-provided or
//     generated), so a retried POST lands on the already-accepted job
//     instead of executing twice — the server persists the key, so this
//     holds across daemon restarts too;
//   - event streams (events.go) reconnect with Last-Event-ID and resume
//     exactly after the frames already seen.
package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/service"
)

// Defaults for Config zero values.
const (
	DefaultTimeout      = 10 * time.Second
	DefaultMaxRetries   = 4
	DefaultBackoffBase  = 100 * time.Millisecond
	DefaultBackoffMax   = 5 * time.Second
	DefaultPollInterval = 100 * time.Millisecond
)

// Config shapes a Client.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTPClient overrides the transport; nil means http.DefaultClient
	// semantics with no client-level timeout (per-call timeouts apply).
	HTTPClient *http.Client
	// Timeout bounds each unary call attempt; 0 means DefaultTimeout.
	// Event streams are exempt (they are long-lived by design).
	Timeout time.Duration
	// MaxRetries is how many times a failed attempt is retried (so a
	// call makes at most 1+MaxRetries attempts); 0 means
	// DefaultMaxRetries, negative disables retries.
	MaxRetries int
	// BackoffBase/BackoffMax shape the retry delays; zero values take
	// the defaults. BackoffMax also caps honored Retry-After hints.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RetrySeed seeds the deterministic backoff jitter (the harness
	// scheme: equal seeds wait identically).
	RetrySeed int64
	// PollInterval paces WaitTerminal's status polls; 0 means
	// DefaultPollInterval.
	PollInterval time.Duration
	// Logf, when non-nil, receives retry/reconnect log lines.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Timeout <= 0 {
		c.Timeout = DefaultTimeout
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = DefaultMaxRetries
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = DefaultBackoffBase
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = DefaultBackoffMax
	}
	if c.PollInterval <= 0 {
		c.PollInterval = DefaultPollInterval
	}
	if c.HTTPClient == nil {
		c.HTTPClient = &http.Client{}
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Client talks to one daemon.
type Client struct {
	cfg  Config
	base *url.URL
	// callSeq numbers unary calls; it is one of the jitter coordinates,
	// so concurrent calls draw from distinct deterministic streams.
	callSeq atomic.Uint64
}

// New builds a client.
func New(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("client: Config.BaseURL is required")
	}
	u, err := url.Parse(cfg.BaseURL)
	if err != nil {
		return nil, fmt.Errorf("client: parsing BaseURL: %w", err)
	}
	if u.Scheme == "" || u.Host == "" {
		return nil, fmt.Errorf("client: BaseURL %q needs a scheme and host", cfg.BaseURL)
	}
	return &Client{cfg: cfg, base: u}, nil
}

// APIError is a non-2xx response the daemon answered with.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Msg is the server's error message.
	Msg string
	// RetryAfter is the server's Retry-After hint (0 when absent).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RetryAfter > 0 {
		return fmt.Sprintf("client: HTTP %d: %s (retry after %s)", e.Status, e.Msg, e.RetryAfter)
	}
	return fmt.Sprintf("client: HTTP %d: %s", e.Status, e.Msg)
}

// IsRetryable reports whether the status is worth retrying: overload
// (429), and server-side conditions that clear with time (5xx — the
// daemon's shed/degraded/shutdown responses are 503).
func (e *APIError) IsRetryable() bool {
	return e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// backoff returns the deterministic, jittered delay before retry
// `attempt` (1-based) of call callIdx — the harness scheme
// (internal/harness/run.go) with (seed, call, attempt) coordinates.
func (c *Client) backoff(callIdx uint64, attempt int) time.Duration {
	d := c.cfg.BackoffBase << (attempt - 1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	u := splitmix64(uint64(c.cfg.RetrySeed)<<32 ^ callIdx<<8 ^ uint64(attempt))
	frac := float64(u>>11) / float64(1<<53)
	d = time.Duration(float64(d) * (0.5 + frac))
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d
}

// retryWait resolves the wait before the next attempt: the jittered
// backoff, stretched to a server Retry-After hint when one was given,
// everything clamped to BackoffMax.
func (c *Client) retryWait(callIdx uint64, attempt int, hint time.Duration) time.Duration {
	d := c.backoff(callIdx, attempt)
	if hint > d {
		d = hint
	}
	if d > c.cfg.BackoffMax {
		d = c.cfg.BackoffMax
	}
	return d
}

// do runs one unary call with retries. Request bodies are byte slices so
// every attempt replays identical bytes. A nil out skips decoding.
func (c *Client) do(ctx context.Context, method, path string, header http.Header, body []byte, out any) (*http.Response, error) {
	callIdx := c.callSeq.Add(1)
	var lastErr error
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			var hint time.Duration
			var apiErr *APIError
			if errors.As(lastErr, &apiErr) {
				hint = apiErr.RetryAfter
			}
			wait := c.retryWait(callIdx, attempt, hint)
			c.cfg.Logf("client: %s %s attempt %d failed (%v), retrying in %s", method, path, attempt, lastErr, wait)
			if !sleepCtx(ctx, wait) {
				return nil, fmt.Errorf("client: %s %s: %w (last error: %v)", method, path, ctx.Err(), lastErr)
			}
		}
		resp, err := c.attempt(ctx, method, path, header, body, out)
		if err == nil {
			return resp, nil
		}
		lastErr = err
		if !retryable(err) || attempt >= c.cfg.MaxRetries {
			return nil, lastErr
		}
	}
}

// attempt is one wire round trip with the per-call timeout.
func (c *Client) attempt(ctx context.Context, method, path string, header http.Header, body []byte, out any) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base.JoinPath(path).String(), rd)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	for k, vs := range header {
		req.Header[k] = vs
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		return nil, apiErrorFrom(resp, data)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			return nil, fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
		}
	}
	return resp, nil
}

// apiErrorFrom shapes a non-2xx response.
func apiErrorFrom(resp *http.Response, data []byte) error {
	var env struct {
		Error string `json:"error"`
	}
	_ = json.Unmarshal(data, &env)
	if env.Error == "" {
		env.Error = strings.TrimSpace(string(data))
	}
	e := &APIError{Status: resp.StatusCode, Msg: env.Error}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.Atoi(ra); err == nil && sec > 0 {
			e.RetryAfter = time.Duration(sec) * time.Second
		}
	}
	return e
}

// retryable classifies an attempt error: network-level failures and
// retryable API statuses are; context expiry and 4xx rejections aren't.
func retryable(err error) bool {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.IsRetryable()
	}
	return true // transport error: connection refused, reset, timeout...
}

// NewIdempotencyKey returns a fresh random submission key.
func NewIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Out of entropy is not a real failure mode; degrade to a
		// time-derived key rather than panicking mid-soak.
		return fmt.Sprintf("key-%d", time.Now().UnixNano())
	}
	return hex.EncodeToString(b[:])
}

// Submit posts one job. idemKey may be empty — a random key is generated
// so the internal retries can never double-submit; pass an explicit key
// to make retries across client restarts land on the same job.
// duplicate reports that the key named an already-accepted job.
func (c *Client) Submit(ctx context.Context, spec service.JobSpec, idemKey string) (st *service.JobStatus, duplicate bool, err error) {
	if idemKey == "" {
		idemKey = NewIdempotencyKey()
	}
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, false, fmt.Errorf("client: marshaling spec: %w", err)
	}
	st = &service.JobStatus{}
	hdr := http.Header{"Idempotency-Key": []string{idemKey}}
	resp, err := c.do(ctx, http.MethodPost, "/v1/jobs", hdr, body, st)
	if err != nil {
		return nil, false, err
	}
	return st, resp.StatusCode == http.StatusOK, nil
}

// Get fetches one job's status.
func (c *Client) Get(ctx context.Context, id string) (*service.JobStatus, error) {
	st := &service.JobStatus{}
	if _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// List fetches every job, optionally one tenant's.
func (c *Client) List(ctx context.Context, tenant string) ([]*service.JobStatus, error) {
	path := "/v1/jobs"
	if tenant != "" {
		path += "?tenant=" + url.QueryEscape(tenant)
	}
	var out []*service.JobStatus
	if _, err := c.do(ctx, http.MethodGet, path, nil, nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel stops a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (*service.JobStatus, error) {
	st := &service.JobStatus{}
	if _, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Resume re-enqueues a partial job for its next leg.
func (c *Client) Resume(ctx context.Context, id string) (*service.JobStatus, error) {
	st := &service.JobStatus{}
	if _, err := c.do(ctx, http.MethodPost, "/v1/jobs/"+id+"/resume", nil, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Stats fetches the operator counters.
func (c *Client) Stats(ctx context.Context) (*service.Stats, error) {
	st := &service.Stats{}
	if _, err := c.do(ctx, http.MethodGet, "/v1/stats", nil, nil, st); err != nil {
		return nil, err
	}
	return st, nil
}

// Healthy reports liveness (one attempt, no retries — health polls must
// not mask an unhealthy daemon behind backoff).
func (c *Client) Healthy(ctx context.Context) bool {
	_, err := c.attempt(ctx, http.MethodGet, "/healthz", nil, nil, nil)
	return err == nil
}

// Readiness fetches /readyz. The returned detail is valid in both cases:
// a 503 still carries the JSON body saying why.
func (c *Client) Readiness(ctx context.Context) (*service.Readiness, error) {
	rd := &service.Readiness{}
	_, err := c.attempt(ctx, http.MethodGet, "/readyz", nil, nil, rd)
	var apiErr *APIError
	if errors.As(err, &apiErr) && apiErr.Status == http.StatusServiceUnavailable {
		// Not ready: re-decode the detail from the error body.
		if jerr := json.Unmarshal([]byte(apiErr.Msg), rd); jerr != nil {
			// The envelope decode already consumed it; fall back to a
			// bare not-ready.
			rd.Ready = false
		}
		return rd, nil
	}
	if err != nil {
		return nil, err
	}
	return rd, nil
}

// WaitTerminal polls until the job reaches a terminal state (the poll
// rides the unary retry machinery, so daemon restarts mid-wait are
// survived transparently).
func (c *Client) WaitTerminal(ctx context.Context, id string) (*service.JobStatus, error) {
	for {
		st, err := c.Get(ctx, id)
		if err != nil {
			return nil, err
		}
		state, perr := service.ParseState(st.State)
		if perr == nil && state.Terminal() {
			return st, nil
		}
		if !sleepCtx(ctx, c.cfg.PollInterval) {
			return nil, ctx.Err()
		}
	}
}

// sleepCtx sleeps for d unless the context is canceled first; it reports
// whether the sleep completed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// splitmix64 is the standard 64-bit mix for the jitter stream — the same
// generator the harness retry loop uses, so a seeded soak's waits are
// reproducible end to end.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
