package client

// Client tests. The unit pieces pin the deterministic backoff; the
// integration pieces run a real service behind a fault-injecting handler
// wrapper: lost POST responses must not double-submit (the
// Idempotency-Key contract) and killed event streams must resume via
// Last-Event-ID without duplicating or losing a numbered frame.

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/service"
)

func testConfig(url string) Config {
	return Config{
		BaseURL:     url,
		Timeout:     10 * time.Second,
		MaxRetries:  5,
		BackoffBase: time.Millisecond,
		BackoffMax:  20 * time.Millisecond,
		RetrySeed:   42,
	}
}

func testSpec() service.JobSpec {
	return service.JobSpec{
		Tenant:  "alice",
		Cohort:  service.CohortSpec{Code: "BRCA", Genes: 40, Hits: 2, Seed: 11},
		Options: service.OptionsSpec{Workers: 2},
	}
}

func TestBackoffDeterministicAndBounded(t *testing.T) {
	a, err := New(testConfig("http://localhost:0"))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	b, _ := New(testConfig("http://localhost:0"))
	seen := map[time.Duration]bool{}
	for call := uint64(1); call <= 4; call++ {
		for attempt := 1; attempt <= 6; attempt++ {
			da, db := a.backoff(call, attempt), b.backoff(call, attempt)
			if da != db {
				t.Fatalf("backoff(%d,%d) diverged across equal seeds: %v vs %v", call, attempt, da, db)
			}
			if da <= 0 || da > a.cfg.BackoffMax {
				t.Fatalf("backoff(%d,%d) = %v outside (0, %v]", call, attempt, da, a.cfg.BackoffMax)
			}
			seen[da] = true
		}
	}
	if len(seen) < 8 {
		t.Fatalf("only %d distinct delays across 24 draws; jitter looks broken", len(seen))
	}
	// A different seed draws a different stream.
	cfg := testConfig("http://localhost:0")
	cfg.RetrySeed = 43
	c, _ := New(cfg)
	same := 0
	for attempt := 1; attempt <= 6; attempt++ {
		if a.backoff(1, attempt) == c.backoff(1, attempt) {
			same++
		}
	}
	if same == 6 {
		t.Fatal("changing RetrySeed never changed the delays")
	}
	// Retry-After hints stretch the wait but never past BackoffMax.
	if got := a.retryWait(1, 1, time.Hour); got != a.cfg.BackoffMax {
		t.Fatalf("retryWait with huge hint = %v, want clamp %v", got, a.cfg.BackoffMax)
	}
	if got := a.retryWait(1, 1, 0); got != a.backoff(1, 1) {
		t.Fatalf("retryWait without hint = %v, want plain backoff %v", got, a.backoff(1, 1))
	}
}

func TestRetriesTransientAndStopsOnPermanent(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if n <= 2 {
			w.Header().Set("Retry-After", "1") // clamped to BackoffMax by the client
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(`{"queued":0,"running":0,"gpus_in_use":0,"gpu_capacity":1,"jobs":0,"cache":{},"engines":{},"shed":{},"breaker":{"state":"closed"},"disk":{"usage_bytes":0}}`))
	}))
	defer ts.Close()

	c, err := New(testConfig(ts.URL))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	start := time.Now()
	if _, err := c.Stats(context.Background()); err != nil {
		t.Fatalf("Stats after transient 503s: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("%d attempts, want 3 (two 503s then success)", got)
	}
	// The 1s Retry-After hints must have been clamped to BackoffMax.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("call took %v; Retry-After hint was not clamped", elapsed)
	}

	// A 404 is permanent: exactly one attempt, typed error.
	calls.Store(0)
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"service: no such job"}`, http.StatusNotFound)
	}))
	defer notFound.Close()
	c2, _ := New(testConfig(notFound.URL))
	_, err = c2.Get(context.Background(), "job-000000099")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound {
		t.Fatalf("Get of missing job: err = %v, want APIError 404", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("%d attempts for a 404, want 1 (no retries on permanent errors)", got)
	}
}

// flakyProxy wraps the real daemon handler with fault injection: it can
// swallow POST responses after the backend processed them (the classic
// lost-ack) and kill event streams mid-flight.
type flakyProxy struct {
	inner http.Handler
	// dropPosts counts down: while positive, a POST /v1/jobs is executed
	// against the backend but its response is replaced with a 502.
	dropPosts atomic.Int64
	// killStreams counts down: while positive, a GET .../events
	// connection is severed after maxStreamBytes of body.
	killStreams    atomic.Int64
	maxStreamBytes int
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch {
	case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs" && p.dropPosts.Add(-1) >= 0:
		// Execute for real, drop the answer on the floor.
		rec := httptest.NewRecorder()
		p.inner.ServeHTTP(rec, r)
		http.Error(w, `{"error":"proxy: upstream response lost"}`, http.StatusBadGateway)
	case r.Method == http.MethodGet && strings.HasSuffix(r.URL.Path, "/events") && p.killStreams.Add(-1) >= 0:
		p.inner.ServeHTTP(&severingWriter{ResponseWriter: w, budget: p.maxStreamBytes}, r)
	default:
		p.inner.ServeHTTP(w, r)
	}
}

// severingWriter aborts the connection once its byte budget is spent,
// simulating a mid-stream network cut.
type severingWriter struct {
	http.ResponseWriter
	budget int
}

func (s *severingWriter) Write(b []byte) (int, error) {
	if len(b) > s.budget {
		panic(http.ErrAbortHandler)
	}
	s.budget -= len(b)
	return s.ResponseWriter.Write(b)
}

func (s *severingWriter) Flush() {
	if f, ok := s.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func startDaemon(t *testing.T, proxy *flakyProxy) (*service.Service, *httptest.Server) {
	t.Helper()
	svc, err := service.Open(service.Config{DataDir: t.TempDir(), JobWorkers: 2, Logf: t.Logf})
	if err != nil {
		t.Fatalf("service.Open: %v", err)
	}
	proxy.inner = svc.Handler()
	ts := httptest.NewServer(proxy)
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts
}

// TestLostSubmitResponseDoesNotDoubleSubmit is the exactly-once
// acceptance test: the backend accepts the job but the client never sees
// the response; the retried POST carries the same Idempotency-Key and
// must land on the already-accepted job.
func TestLostSubmitResponseDoesNotDoubleSubmit(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	proxy := &flakyProxy{}
	proxy.dropPosts.Store(1)
	svc, ts := startDaemon(t, proxy)

	c, err := New(testConfig(ts.URL))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, dup, err := c.Submit(ctx, testSpec(), "")
	if err != nil {
		t.Fatalf("Submit through lossy proxy: %v", err)
	}
	if !dup {
		t.Fatal("retried POST not reported as a duplicate — it executed twice")
	}
	if jobs := svc.List(""); len(jobs) != 1 || jobs[0].ID != st.ID {
		t.Fatalf("daemon holds %d jobs after the lost-ack retry, want exactly %s", len(jobs), st.ID)
	}
	if _, err := c.WaitTerminal(ctx, st.ID); err != nil {
		t.Fatalf("WaitTerminal: %v", err)
	}
}

// TestWatchResumesAcrossStreamCuts pins the SSE resume contract: with
// the proxy severing the first two stream connections, the client must
// still deliver every numbered frame exactly once, in order, and end
// cleanly after the terminal frame.
func TestWatchResumesAcrossStreamCuts(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a discovery job")
	}
	// A budget smaller than the retained history guarantees each kill
	// lands mid-stream, before the terminal frame.
	proxy := &flakyProxy{maxStreamBytes: 150}
	svc, ts := startDaemon(t, proxy)
	_ = svc

	c, err := New(testConfig(ts.URL))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	st, _, err := c.Submit(ctx, testSpec(), "")
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if _, err := c.WaitTerminal(ctx, st.ID); err != nil {
		t.Fatalf("WaitTerminal: %v", err)
	}

	// Sever the first two replay connections mid-stream.
	proxy.killStreams.Store(2)
	stream := c.WatchFrom(st.ID, 0)
	defer stream.Close()
	var seqs []uint64
	sawTerminal := false
	for {
		e, err := stream.Next(ctx)
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if e.Seq > 0 {
			seqs = append(seqs, e.Seq)
		}
		if e.Type == "state" && e.State == "succeeded" {
			sawTerminal = true
		}
	}
	if proxy.killStreams.Load() > 0 {
		t.Fatal("proxy never severed a stream; the test exercised nothing")
	}
	if !sawTerminal {
		t.Fatal("stream ended without the terminal state frame")
	}
	if len(seqs) < 3 {
		t.Fatalf("only %d numbered frames; too few to validate the resume", len(seqs))
	}
	// Exactly once, in order, no gaps. The stream may open with a
	// "dropped" frame when the job outgrew the retained ring — that frame
	// is numbered too, so contiguity covers the whole delivery.
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("frame %d has seq %d after %d (dup, gap, or reorder across reconnects)", i, seqs[i], seqs[i-1])
		}
	}
}
