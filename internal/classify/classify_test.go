package classify

import (
	"math/rand"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/cover"
	"repro/internal/dataset"
	"repro/internal/reduce"
)

func TestPredictSample(t *testing.T) {
	m := bitmat.New(5, 4)
	// Sample 0 carries genes {0,1}; sample 1 carries {0}; sample 2 {2,3};
	// sample 3 nothing.
	m.Set(0, 0)
	m.Set(1, 0)
	m.Set(0, 1)
	m.Set(2, 2)
	m.Set(3, 2)
	c := FromGeneIDs([][]int{{0, 1}, {2, 3}})
	want := []bool{true, false, true, false}
	for s, w := range want {
		if got := c.PredictSample(m, s); got != w {
			t.Errorf("sample %d: predict = %v, want %v", s, got, w)
		}
	}
	if got := c.PredictPositives(m); got != 2 {
		t.Errorf("PredictPositives = %d, want 2", got)
	}
}

func TestPredictPositivesMatchesPerSample(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := bitmat.New(20, 300)
	for g := 0; g < 20; g++ {
		for s := 0; s < 300; s++ {
			if rng.Float64() < 0.3 {
				m.Set(g, s)
			}
		}
	}
	c := FromGeneIDs([][]int{{0, 3, 7}, {2, 5}, {10, 11, 12, 13}})
	slow := 0
	for s := 0; s < 300; s++ {
		if c.PredictSample(m, s) {
			slow++
		}
	}
	if fast := c.PredictPositives(m); fast != slow {
		t.Fatalf("bit-parallel count %d != per-sample count %d", fast, slow)
	}
}

func TestNewFromCombos(t *testing.T) {
	c := New([]reduce.Combo{
		reduce.NewCombo(0.9, 1, 4, 6),
		reduce.NewCombo(0.8, 2, 3),
	})
	if len(c.Combos) != 2 || len(c.Combos[0]) != 3 || len(c.Combos[1]) != 2 {
		t.Fatalf("classifier combos = %v", c.Combos)
	}
}

func TestEvaluatePerfectSplit(t *testing.T) {
	tumor := bitmat.New(4, 10)
	normal := bitmat.New(4, 10)
	for s := 0; s < 10; s++ {
		tumor.Set(0, s)
		tumor.Set(1, s)
	}
	c := FromGeneIDs([][]int{{0, 1}})
	ev, err := c.Evaluate(tumor, normal)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sensitivity.Point != 1 || ev.Specificity.Point != 1 {
		t.Fatalf("perfect split: sens=%g spec=%g", ev.Sensitivity.Point, ev.Specificity.Point)
	}
	if ev.Sensitivity.Lo >= 1 || ev.Sensitivity.Hi != 1 {
		t.Fatal("CI should be sub-unit on the low side")
	}
}

func TestEvaluateErrors(t *testing.T) {
	tumor := bitmat.New(4, 5)
	normal := bitmat.New(4, 5)
	if _, err := (&Classifier{}).Evaluate(tumor, normal); err == nil {
		t.Error("empty classifier accepted")
	}
	c := FromGeneIDs([][]int{{0, 9}})
	if _, err := c.Evaluate(tumor, normal); err == nil {
		t.Error("out-of-range gene accepted")
	}
}

func TestTrainTestPipelineOnSyntheticCohort(t *testing.T) {
	// End-to-end: generate a cohort, train on 75% with the real discovery
	// engine, evaluate on 25%. Sensitivity should be high (driver signal)
	// and specificity should exceed sensitivity's noise floor.
	spec := dataset.Spec{
		Code: "TST", Name: "test", Genes: 50, TumorSamples: 200, NormalSamples: 160,
		Hits: 4, PlantedCombos: 3, DriverMutProb: 0.95,
		TumorBackground: 0.01, NormalBackground: 0.002,
		NoisyNormalFrac: 0.2, NoisyNormalRate: 0.5,
	}
	c, err := dataset.Generate(spec, 77)
	if err != nil {
		t.Fatal(err)
	}
	train, test := c.Split(0.75, 7)

	// Train with the planted ground truth (discovery is exercised in the
	// cover package; here the planted combos isolate classifier behavior).
	cls := FromGeneIDs(c.Planted)
	ev, err := cls.Evaluate(test.Tumor, test.Normal)
	if err != nil {
		t.Fatal(err)
	}
	if ev.Sensitivity.Point < 0.6 {
		t.Errorf("sensitivity %.2f too low for planted drivers", ev.Sensitivity.Point)
	}
	if ev.Specificity.Point < 0.6 {
		t.Errorf("specificity %.2f too low", ev.Specificity.Point)
	}
	if ev.Sensitivity.Lo > ev.Sensitivity.Point || ev.Sensitivity.Hi < ev.Sensitivity.Point {
		t.Error("sensitivity CI does not bracket the point estimate")
	}
	_ = train
}

func TestAttributeFirstMatchWins(t *testing.T) {
	m := bitmat.New(4, 5)
	// Sample 0 matches both combos; samples 1-2 only the second; 3-4 none.
	m.Set(0, 0)
	m.Set(1, 0)
	m.Set(2, 0)
	m.Set(3, 0)
	m.Set(2, 1)
	m.Set(3, 1)
	m.Set(2, 2)
	m.Set(3, 2)
	c := FromGeneIDs([][]int{{0, 1}, {2, 3}})
	a := c.Attribute(m)
	want := []int{0, 1, 1, -1, -1}
	for s, w := range want {
		if a.ComboFor[s] != w {
			t.Fatalf("sample %d attributed to %d, want %d", s, a.ComboFor[s], w)
		}
	}
	if a.Counts[0] != 1 || a.Counts[1] != 2 {
		t.Fatalf("counts = %v", a.Counts)
	}
	// Attribution totals match the positive count.
	total := 0
	for _, n := range a.Counts {
		total += n
	}
	if total != c.PredictPositives(m) {
		t.Fatal("attribution totals disagree with PredictPositives")
	}
}

func TestAttributeMatchesDiscoveryCoverage(t *testing.T) {
	// On a planted cohort, attributing the training matrix with the
	// discovered combinations reproduces each step's cover count.
	spec := dataset.Spec{
		Code: "TST", Name: "t", Genes: 40, TumorSamples: 120, NormalSamples: 100,
		Hits: 4, PlantedCombos: 3, DriverMutProb: 0.95,
		TumorBackground: 0.01, NormalBackground: 0.002,
	}
	cohort, err := dataset.Generate(spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cover.Run(cohort.Tumor, cohort.Normal, cover.Options{Hits: 4})
	if err != nil {
		t.Fatal(err)
	}
	cls := New(res.Combos())
	a := cls.Attribute(cohort.Tumor)
	for i, s := range res.Steps {
		if a.Counts[i] != s.NewlyCovered {
			t.Fatalf("combo %d explains %d samples, discovery covered %d",
				i, a.Counts[i], s.NewlyCovered)
		}
	}
}
