// Package classify evaluates discovered multi-hit combinations as a
// tumor/normal classifier (Sec. IV-F, Fig. 9).
//
// For one cancer type with combinations c₁…cₚ, a sample is classified as a
// tumor sample if it carries mutations in every gene of at least one cᵢ;
// otherwise it is classified as normal. Sensitivity is the fraction of
// tumor samples classified tumor; specificity the fraction of normal
// samples classified normal; both carry Wilson 95% confidence intervals.
package classify

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/reduce"
	"repro/internal/stats"
)

// Classifier is a trained per-cancer-type rule set.
type Classifier struct {
	// Combos are the discovered combinations, each a sorted gene-id list.
	Combos [][]int
}

// New builds a classifier from discovery output.
func New(combos []reduce.Combo) *Classifier {
	c := &Classifier{}
	for _, combo := range combos {
		c.Combos = append(c.Combos, combo.GeneIDs())
	}
	return c
}

// FromGeneIDs builds a classifier from explicit gene-id lists.
func FromGeneIDs(combos [][]int) *Classifier {
	c := &Classifier{}
	for _, ids := range combos {
		cp := make([]int, len(ids))
		copy(cp, ids)
		c.Combos = append(c.Combos, cp)
	}
	return c
}

// PredictSample reports whether sample s of the matrix is classified as a
// tumor sample: it carries all genes of at least one combination.
func (c *Classifier) PredictSample(m *bitmat.Matrix, s int) bool {
	for _, combo := range c.Combos {
		all := true
		for _, g := range combo {
			if !m.Get(g, s) {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// PredictPositives returns the number of samples in the matrix classified
// as tumor, using the bit-parallel path (one AND-chain per combination).
func (c *Classifier) PredictPositives(m *bitmat.Matrix) int {
	if m.Samples() == 0 {
		return 0
	}
	hit := bitmat.NewVec(m.Samples())
	buf := make([]uint64, m.Words())
	for _, combo := range c.Combos {
		if len(combo) == 0 {
			continue
		}
		m.ComboVec(buf, combo...)
		v := bitmat.NewVec(m.Samples())
		copy(v.Words(), buf)
		hit.Or(v)
	}
	return hit.PopCount()
}

// Attribution maps each positively classified sample to the first
// combination that fires for it — the interpretability view: which
// discovered combination "explains" each tumor call.
type Attribution struct {
	// ComboFor maps sample column → index into Combos (-1 for samples
	// classified normal).
	ComboFor []int
	// Counts is how many samples each combination explains.
	Counts []int
}

// Attribute classifies every sample of the matrix and records which
// combination fires first (combination order is the greedy discovery
// order, so attribution mirrors the cover structure).
func (c *Classifier) Attribute(m *bitmat.Matrix) Attribution {
	a := Attribution{
		ComboFor: make([]int, m.Samples()),
		Counts:   make([]int, len(c.Combos)),
	}
	for s := range a.ComboFor {
		a.ComboFor[s] = -1
	}
	buf := make([]uint64, m.Words())
	claimed := bitmat.NewVec(m.Samples())
	for ci, combo := range c.Combos {
		if len(combo) == 0 {
			continue
		}
		m.ComboVec(buf, combo...)
		v := bitmat.NewVec(m.Samples())
		copy(v.Words(), buf)
		v.AndNot(claimed) // first-match-wins
		for s := 0; s < m.Samples(); s++ {
			if v.Get(s) {
				a.ComboFor[s] = ci
				a.Counts[ci]++
			}
		}
		claimed.Or(v)
	}
	return a
}

// Evaluation is the test-set performance of one classifier.
type Evaluation struct {
	// Sensitivity is TP / (TP + FN) over tumor samples, with its CI.
	Sensitivity stats.Interval
	// Specificity is TN / (TN + FP) over normal samples, with its CI.
	Specificity stats.Interval
}

// Evaluate scores the classifier on a tumor and a normal test matrix.
func (c *Classifier) Evaluate(tumor, normal *bitmat.Matrix) (Evaluation, error) {
	if len(c.Combos) == 0 {
		return Evaluation{}, fmt.Errorf("classify: empty classifier")
	}
	for _, combo := range c.Combos {
		for _, g := range combo {
			if g < 0 || g >= tumor.Genes() || g >= normal.Genes() {
				return Evaluation{}, fmt.Errorf("classify: gene id %d outside matrices", g)
			}
		}
	}
	tp := c.PredictPositives(tumor)
	fp := c.PredictPositives(normal)
	return Evaluation{
		Sensitivity: stats.WilsonCI(tp, tumor.Samples()),
		Specificity: stats.WilsonCI(normal.Samples()-fp, normal.Samples()),
	}, nil
}
