// Package maf reads and writes a subset of the Mutation Annotation Format
// (MAF), the tab-separated exchange format in which TCGA distributes
// somatic mutation calls, and summarizes MAF records into the bit-packed
// gene×sample matrices the multi-hit algorithm consumes ("Gene mutation
// data in mutation annotation format (MAF) ... were downloaded from the
// cancer genome atlas (TCGA) and summarized for input to the multi-hit
// algorithm", Sec. III-G).
//
// Only the columns the pipeline needs are modeled: Hugo symbol, sample
// barcode, variant classification and protein position. Unknown columns in
// input files are ignored; silent (synonymous) calls can be filtered during
// summarization, mirroring the paper's use of protein-altering mutations.
package maf

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/bitmat"
)

// Record is one somatic mutation call.
type Record struct {
	// HugoSymbol is the gene symbol.
	HugoSymbol string
	// Barcode is the tumor sample barcode.
	Barcode string
	// Classification is the variant classification, e.g.
	// "Missense_Mutation" or "Silent".
	Classification string
	// ProteinPosition is the amino-acid position of the change; 0 when
	// unknown (e.g. non-coding variants).
	ProteinPosition int
}

// Silent reports whether the record is a synonymous call that the
// summarizer should drop when protein-altering filtering is on.
func (r Record) Silent() bool {
	return strings.EqualFold(r.Classification, "Silent")
}

// header is the column order this package writes and the minimum set it
// requires on read.
var header = []string{
	"Hugo_Symbol",
	"Tumor_Sample_Barcode",
	"Variant_Classification",
	"Protein_position",
}

// Write serializes records as a MAF-style TSV with a header line. Records
// are written in input order.
func Write(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(strings.Join(header, "\t") + "\n"); err != nil {
		return err
	}
	for i, r := range records {
		if r.HugoSymbol == "" || r.Barcode == "" {
			return fmt.Errorf("maf: record %d missing gene symbol or barcode", i)
		}
		pos := ""
		if r.ProteinPosition > 0 {
			pos = strconv.Itoa(r.ProteinPosition)
		}
		cls := r.Classification
		if cls == "" {
			cls = "Missense_Mutation"
		}
		if _, err := fmt.Fprintf(bw, "%s\t%s\t%s\t%s\n", r.HugoSymbol, r.Barcode, cls, pos); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a MAF-style TSV. Header columns may appear in any order and
// extra columns are ignored; lines starting with '#' are comments (TCGA
// MAFs begin with a version pragma).
func Read(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	col := map[string]int{}
	var records []Record
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Split(line, "\t")
		if len(col) == 0 {
			for i, name := range fields {
				col[name] = i
			}
			for _, need := range []string{"Hugo_Symbol", "Tumor_Sample_Barcode"} {
				if _, ok := col[need]; !ok {
					return nil, fmt.Errorf("maf: line %d: missing required column %s", lineNo, need)
				}
			}
			continue
		}
		get := func(name string) string {
			i, ok := col[name]
			if !ok || i >= len(fields) {
				return ""
			}
			return fields[i]
		}
		rec := Record{
			HugoSymbol:     get("Hugo_Symbol"),
			Barcode:        get("Tumor_Sample_Barcode"),
			Classification: get("Variant_Classification"),
		}
		if rec.HugoSymbol == "" || rec.Barcode == "" {
			return nil, fmt.Errorf("maf: line %d: empty gene symbol or barcode", lineNo)
		}
		if p := get("Protein_position"); p != "" {
			// TCGA writes "132/414" (position/length) in some exports;
			// take the leading integer.
			if slash := strings.IndexByte(p, '/'); slash >= 0 {
				p = p[:slash]
			}
			pos, err := strconv.Atoi(p)
			if err != nil || pos < 0 {
				return nil, fmt.Errorf("maf: line %d: bad protein position %q", lineNo, p)
			}
			rec.ProteinPosition = pos
		}
		records = append(records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(col) == 0 {
		return nil, errors.New("maf: no header line")
	}
	return records, nil
}

// Summary is the matrix form of a MAF file: the input the multi-hit
// algorithm takes.
type Summary struct {
	// Genes maps gene symbol → row, in sorted-symbol order.
	Genes []string
	// Samples maps barcode → column, in sorted-barcode order.
	Samples []string
	// Matrix is the bit-packed gene×sample mutation matrix.
	Matrix *bitmat.Matrix
	// Dropped counts records excluded by the silent filter.
	Dropped int
}

// GeneIndex returns the row for a symbol, or -1.
func (s *Summary) GeneIndex(symbol string) int {
	return index(s.Genes, symbol)
}

// SampleIndex returns the column for a barcode, or -1.
func (s *Summary) SampleIndex(barcode string) int {
	return index(s.Samples, barcode)
}

func index(sorted []string, key string) int {
	i := sort.SearchStrings(sorted, key)
	if i < len(sorted) && sorted[i] == key {
		return i
	}
	return -1
}

// Summarize collapses per-mutation records into a binary gene×sample
// matrix: bit (g, s) is set when sample s has at least one (optionally
// non-silent) mutation in gene g. Gene and sample universes are exactly
// those present in the records, in sorted order, so summaries are
// deterministic regardless of record order.
func Summarize(records []Record, dropSilent bool) (*Summary, error) {
	geneSet := map[string]bool{}
	sampleSet := map[string]bool{}
	kept := make([]Record, 0, len(records))
	dropped := 0
	for _, r := range records {
		if dropSilent && r.Silent() {
			dropped++
			continue
		}
		if r.HugoSymbol == "" || r.Barcode == "" {
			return nil, fmt.Errorf("maf: record with empty gene symbol or barcode")
		}
		geneSet[r.HugoSymbol] = true
		sampleSet[r.Barcode] = true
		kept = append(kept, r)
	}
	s := &Summary{Dropped: dropped}
	for g := range geneSet {
		s.Genes = append(s.Genes, g)
	}
	for b := range sampleSet {
		s.Samples = append(s.Samples, b)
	}
	sort.Strings(s.Genes)
	sort.Strings(s.Samples)
	s.Matrix = bitmat.New(len(s.Genes), len(s.Samples))
	for _, r := range kept {
		s.Matrix.Set(s.GeneIndex(r.HugoSymbol), s.SampleIndex(r.Barcode))
	}
	return s, nil
}

// Align re-projects the summary's matrix onto an external gene universe
// (symbol → row), producing a matrix with the given gene dimension and this
// summary's samples. Genes absent from the universe are skipped; the
// returned count reports how many matrix bits were placed. This is how a
// tumor MAF and a normal MAF are brought onto one shared gene axis.
func (s *Summary) Align(universe map[string]int, rows int) (*bitmat.Matrix, int, error) {
	if rows <= 0 {
		return nil, 0, fmt.Errorf("maf: alignment universe has %d rows", rows)
	}
	out := bitmat.New(rows, len(s.Samples))
	placed := 0
	for gi, symbol := range s.Genes {
		row, ok := universe[symbol]
		if !ok {
			continue
		}
		if row < 0 || row >= rows {
			return nil, 0, fmt.Errorf("maf: universe maps %s to row %d of %d", symbol, row, rows)
		}
		for col := 0; col < len(s.Samples); col++ {
			if s.Matrix.Get(gi, col) {
				out.Set(row, col)
				placed++
			}
		}
	}
	return out, placed, nil
}
