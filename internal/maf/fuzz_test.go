package maf

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead checks that arbitrary input never panics the parser and that
// anything it accepts round-trips through Write/Read to the same records.
func FuzzRead(f *testing.F) {
	f.Add("Hugo_Symbol\tTumor_Sample_Barcode\nIDH1\tTCGA-X-T0001\n")
	f.Add("#version 2.4\nHugo_Symbol\tTumor_Sample_Barcode\tProtein_position\nA\tT1\t132/414\n")
	f.Add("Hugo_Symbol\tTumor_Sample_Barcode\tVariant_Classification\nMUC6\tT2\tSilent\n")
	f.Add("")
	f.Add("garbage\nwith\nlines")
	f.Fuzz(func(t *testing.T, input string) {
		records, err := Read(strings.NewReader(input))
		if err != nil {
			return // rejected input is fine; panics are not
		}
		// Accepted records must be structurally sound and survive a
		// round trip (modulo default classification fill-in).
		var buf bytes.Buffer
		if err := Write(&buf, records); err != nil {
			t.Fatalf("Write rejected records Read produced: %v", err)
		}
		again, err := Read(&buf)
		if err != nil {
			t.Fatalf("re-Read failed: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d -> %d", len(records), len(again))
		}
		for i := range records {
			if again[i].HugoSymbol != records[i].HugoSymbol ||
				again[i].Barcode != records[i].Barcode ||
				again[i].ProteinPosition != records[i].ProteinPosition {
				t.Fatalf("record %d changed: %+v -> %+v", i, records[i], again[i])
			}
		}
	})
}
