package maf_test

import (
	"fmt"
	"strings"

	"repro/internal/maf"
)

// Summarize collapses per-mutation MAF records into the binary gene×sample
// matrix the multi-hit algorithm consumes (Sec. III-G).
func ExampleSummarize() {
	input := strings.Join([]string{
		"Hugo_Symbol\tTumor_Sample_Barcode\tVariant_Classification",
		"IDH1\tT1\tMissense_Mutation",
		"IDH1\tT2\tMissense_Mutation",
		"MUC6\tT1\tNonsense_Mutation",
		"TP53\tT2\tSilent",
	}, "\n")
	records, err := maf.Read(strings.NewReader(input))
	if err != nil {
		fmt.Println(err)
		return
	}
	s, err := maf.Summarize(records, true) // drop silent calls
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(s.Genes)
	fmt.Println(s.Samples)
	fmt.Println(s.Matrix.Get(s.GeneIndex("IDH1"), s.SampleIndex("T2")))
	fmt.Println(s.Dropped)
	// Output:
	// [IDH1 MUC6]
	// [T1 T2]
	// true
	// 1
}
