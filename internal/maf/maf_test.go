package maf

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func sample() []Record {
	return []Record{
		{HugoSymbol: "IDH1", Barcode: "TCGA-LGG-T0001", Classification: "Missense_Mutation", ProteinPosition: 132},
		{HugoSymbol: "MUC6", Barcode: "TCGA-LGG-T0001", Classification: "Nonsense_Mutation", ProteinPosition: 88},
		{HugoSymbol: "IDH1", Barcode: "TCGA-LGG-T0002", Classification: "Missense_Mutation", ProteinPosition: 132},
		{HugoSymbol: "TP53", Barcode: "TCGA-LGG-T0003", Classification: "Silent", ProteinPosition: 20},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := sample()
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("record %d: %+v != %+v", i, got[i], want[i])
		}
	}
}

func TestReadHandlesCommentsAndColumnOrder(t *testing.T) {
	input := strings.Join([]string{
		"#version 2.4",
		"Center\tTumor_Sample_Barcode\tProtein_position\tHugo_Symbol\tVariant_Classification",
		"broad\tTCGA-X-T0001\t132/414\tIDH1\tMissense_Mutation",
		"",
		"broad\tTCGA-X-T0002\t\tMUC6\tSilent",
	}, "\n")
	got, err := Read(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
	if got[0].HugoSymbol != "IDH1" || got[0].ProteinPosition != 132 {
		t.Errorf("record 0 = %+v", got[0])
	}
	if got[1].ProteinPosition != 0 || !got[1].Silent() {
		t.Errorf("record 1 = %+v", got[1])
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"#only a comment",
		"NotTheRightColumns\tAtAll\nx\ty",
		"Hugo_Symbol\tTumor_Sample_Barcode\n\tTCGA-X-T0001",
		"Hugo_Symbol\tTumor_Sample_Barcode\tProtein_position\nIDH1\tTCGA-X-T0001\tnotanumber",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: Read accepted malformed input", i)
		}
	}
}

func TestWriteRejectsEmptyFields(t *testing.T) {
	if err := Write(&bytes.Buffer{}, []Record{{HugoSymbol: "", Barcode: "X"}}); err == nil {
		t.Fatal("Write accepted empty gene symbol")
	}
}

func TestSummarize(t *testing.T) {
	s, err := Summarize(sample(), true)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dropped != 1 {
		t.Fatalf("dropped %d silent records, want 1", s.Dropped)
	}
	// Universe: IDH1, MUC6 (TP53 was silent-only), samples T0001, T0002.
	if len(s.Genes) != 2 || len(s.Samples) != 2 {
		t.Fatalf("universe %v × %v", s.Genes, s.Samples)
	}
	if s.GeneIndex("IDH1") < 0 || s.GeneIndex("TP53") != -1 {
		t.Fatal("gene indexing wrong")
	}
	// IDH1 mutated in both samples; MUC6 in T0001 only.
	idh1, muc6 := s.GeneIndex("IDH1"), s.GeneIndex("MUC6")
	c1, c2 := s.SampleIndex("TCGA-LGG-T0001"), s.SampleIndex("TCGA-LGG-T0002")
	if !s.Matrix.Get(idh1, c1) || !s.Matrix.Get(idh1, c2) {
		t.Fatal("IDH1 bits wrong")
	}
	if !s.Matrix.Get(muc6, c1) || s.Matrix.Get(muc6, c2) {
		t.Fatal("MUC6 bits wrong")
	}
}

func TestSummarizeKeepSilent(t *testing.T) {
	s, err := Summarize(sample(), false)
	if err != nil {
		t.Fatal(err)
	}
	if s.Dropped != 0 || len(s.Genes) != 3 || len(s.Samples) != 3 {
		t.Fatalf("keep-silent summary: dropped=%d genes=%v", s.Dropped, s.Genes)
	}
}

func TestSummarizeOrderInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		recs := sample()
		rng.Shuffle(len(recs), func(i, j int) { recs[i], recs[j] = recs[j], recs[i] })
		a, err := Summarize(recs, true)
		if err != nil {
			return false
		}
		b, err := Summarize(sample(), true)
		if err != nil {
			return false
		}
		return a.Matrix.Equal(b.Matrix)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAlign(t *testing.T) {
	s, err := Summarize(sample(), true)
	if err != nil {
		t.Fatal(err)
	}
	// External universe places IDH1 at row 5, omits MUC6.
	universe := map[string]int{"IDH1": 5, "TP53": 0}
	m, placed, err := s.Align(universe, 10)
	if err != nil {
		t.Fatal(err)
	}
	if m.Genes() != 10 || m.Samples() != 2 {
		t.Fatalf("aligned matrix %d×%d", m.Genes(), m.Samples())
	}
	if placed != 2 { // IDH1 in two samples
		t.Fatalf("placed %d bits, want 2", placed)
	}
	if !m.Get(5, 0) || !m.Get(5, 1) {
		t.Fatal("IDH1 bits not at row 5")
	}
	// Out-of-range universe rows are rejected.
	if _, _, err := s.Align(map[string]int{"IDH1": 10}, 10); err == nil {
		t.Fatal("Align accepted out-of-range row")
	}
	if _, _, err := s.Align(universe, 0); err == nil {
		t.Fatal("Align accepted zero-row universe")
	}
}

func TestEndToEndMAFPipeline(t *testing.T) {
	// Write records for two classes, read them back, summarize both onto a
	// shared universe, and check the matrices match the records.
	tumorRecs := []Record{
		{HugoSymbol: "A", Barcode: "T1"}, {HugoSymbol: "B", Barcode: "T1"},
		{HugoSymbol: "A", Barcode: "T2"},
	}
	normalRecs := []Record{
		{HugoSymbol: "B", Barcode: "N1"},
	}
	var tb, nb bytes.Buffer
	if err := Write(&tb, tumorRecs); err != nil {
		t.Fatal(err)
	}
	if err := Write(&nb, normalRecs); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&tb)
	if err != nil {
		t.Fatal(err)
	}
	nr, err := Read(&nb)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := Summarize(tr, true)
	if err != nil {
		t.Fatal(err)
	}
	ns, err := Summarize(nr, true)
	if err != nil {
		t.Fatal(err)
	}
	universe := map[string]int{"A": 0, "B": 1}
	tm, _, err := ts.Align(universe, 2)
	if err != nil {
		t.Fatal(err)
	}
	nm, _, err := ns.Align(universe, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !tm.Get(0, ts.SampleIndex("T1")) || !tm.Get(1, ts.SampleIndex("T1")) ||
		!tm.Get(0, ts.SampleIndex("T2")) || tm.Get(1, ts.SampleIndex("T2")) {
		t.Fatal("tumor matrix wrong")
	}
	if !nm.Get(1, 0) || nm.Get(0, 0) {
		t.Fatal("normal matrix wrong")
	}
}
