package ckptstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/failpoint"
)

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	payload := []byte(`{"version":1,"hits":3}`)
	gen, err := s.Save(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first generation = %d, want 1", gen)
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 1 || !bytes.Equal(snap.Payload, payload) || len(snap.Skipped) != 0 {
		t.Fatalf("loaded %+v", snap)
	}
}

func TestEmptyDirIsErrNoCheckpoint(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if _, err := s.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store load = %v, want ErrNoCheckpoint", err)
	}
}

func TestRetainPrunesOldGenerations(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Retain: 2})
	for i := 0; i < 5; i++ {
		if _, err := s.Save([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := s.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("retained generations %v, want [4 5]", gens)
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 5 || snap.Payload[0] != 4 {
		t.Fatalf("newest = gen %d payload %v", snap.Generation, snap.Payload)
	}
}

func TestReopenContinuesNumbering(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Save([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("b")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	gen, err := s2.Save([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("generation after reopen = %d, want 3", gen)
	}
}

// corrupt mutates the newest generation's file in place.
func corruptNewest(t *testing.T, s *Store, mutate func([]byte) []byte) uint64 {
	t.Helper()
	gens, err := s.Generations()
	if err != nil || len(gens) == 0 {
		t.Fatalf("no generations to corrupt: %v", err)
	}
	newest := gens[len(gens)-1]
	path := s.path(newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return newest
}

func TestCorruptionFallsBackToPreviousGeneration(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated-mid-payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"truncated-mid-frame", func(b []byte) []byte { return b[:headerSize+3] }},
		{"truncated-to-header", func(b []byte) []byte { return b[:headerSize] }},
		{"flipped-crc-byte", func(b []byte) []byte {
			b[headerSize+5] ^= 0xff // inside the stored CRC
			return b
		}},
		{"flipped-payload-byte", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}},
		{"bad-magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}},
		{"bad-format-version", func(b []byte) []byte {
			b[len(magic)] = 99
			return b
		}},
		{"empty-file", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), Options{})
			if _, err := s.Save([]byte("good-old")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Save([]byte("bad-new")); err != nil {
				t.Fatal(err)
			}
			bad := corruptNewest(t, s, tc.mutate)
			snap, err := s.Load()
			if err != nil {
				t.Fatalf("load with corrupt newest: %v", err)
			}
			if snap.Generation != 1 || string(snap.Payload) != "good-old" {
				t.Fatalf("fell back to gen %d payload %q", snap.Generation, snap.Payload)
			}
			if len(snap.Skipped) != 1 || snap.Skipped[0].Generation != bad {
				t.Fatalf("skipped = %+v, want generation %d", snap.Skipped, bad)
			}
			if !errors.Is(snap.Skipped[0].Err, ErrCorrupt) {
				t.Fatalf("skip reason %v does not wrap ErrCorrupt", snap.Skipped[0].Err)
			}
		})
	}
}

func TestAllGenerationsCorruptIsErrCorrupt(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if _, err := s.Save([]byte("only")); err != nil {
		t.Fatal(err)
	}
	corruptNewest(t, s, func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	_, err := s.Load()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("load = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrNoCheckpoint) {
		t.Fatal("corrupt store misreported as empty")
	}
}

func TestTornRenameTempSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Save([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between fsync and rename via the failpoint: the
	// temp file must stay behind, the generation must not exist.
	if err := failpoint.Enable("ckptstore/rename", "error@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	if _, err := s.Save([]byte("torn")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("save under rename failpoint = %v", err)
	}
	temps, _ := filepath.Glob(filepath.Join(dir, "*"+tempExt))
	if len(temps) != 1 {
		t.Fatalf("torn rename left %d temp files, want 1", len(temps))
	}
	// Reopen: the temp is swept, the committed generation still loads,
	// and numbering does not reuse the torn slot's bytes.
	s2 := mustOpen(t, dir, Options{})
	temps, _ = filepath.Glob(filepath.Join(dir, "*"+tempExt))
	if len(temps) != 0 {
		t.Fatalf("open left %d temp files behind", len(temps))
	}
	snap, err := s2.Load()
	if err != nil || string(snap.Payload) != "committed" {
		t.Fatalf("after torn rename: %q, %v", snap.Payload, err)
	}
}

func TestWriteAndSyncFailpointsPropagate(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer failpoint.DisableAll()
	if err := failpoint.Enable("ckptstore/write", "error@1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("x")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("write failpoint: %v", err)
	}
	failpoint.DisableAll()
	if err := failpoint.Enable("ckptstore/sync", "error@1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("x")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("sync failpoint: %v", err)
	}
	failpoint.DisableAll()
	// After the chaos clears, the store works.
	if _, err := s.Save([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if snap, err := s.Load(); err != nil || string(snap.Payload) != "ok" {
		t.Fatalf("post-chaos store broken: %v", err)
	}
}

func TestLoadGenerationAndLoadFailpoint(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 3; i++ {
		if _, err := s.Save([]byte(fmt.Sprintf("gen%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	p, err := s.LoadGeneration(2)
	if err != nil || string(p) != "gen2" {
		t.Fatalf("LoadGeneration(2) = %q, %v", p, err)
	}
	if _, err := s.LoadGeneration(99); err == nil {
		t.Fatal("missing generation loaded")
	}
	defer failpoint.DisableAll()
	// An IO error reading the newest generation degrades to the previous
	// one, same as corruption.
	if err := failpoint.Enable("ckptstore/load", "error@1"); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 2 || len(snap.Skipped) != 1 {
		t.Fatalf("load under IO chaos: gen %d, skipped %v", snap.Generation, snap.Skipped)
	}
}

func TestDiskFullSaveIsDetectable(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer failpoint.DisableAll()
	if err := failpoint.Enable("ckptstore/write", "diskfull@1"); err != nil {
		t.Fatal(err)
	}
	_, err := s.Save([]byte("wont-fit"))
	if err == nil {
		t.Fatal("save under diskfull failpoint succeeded")
	}
	if !IsDiskFull(err) {
		t.Fatalf("save error %v not recognized by IsDiskFull", err)
	}
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("save error %v does not carry injection provenance", err)
	}
	// Space "returns" (window closed): the store recovers in place.
	gen, err := s.Save([]byte("fits-now"))
	if err != nil || gen != 1 {
		t.Fatalf("post-recovery save = gen %d, %v", gen, err)
	}
	if IsDiskFull(err) {
		t.Fatal("nil error reported as disk full")
	}
}

func TestPruneKeepShrinksHistory(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Retain: 5})
	for i := 0; i < 5; i++ {
		if _, err := s.Save([]byte(fmt.Sprintf("gen%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	freed, err := s.PruneKeep(2)
	if err != nil {
		t.Fatal(err)
	}
	if freed <= 0 {
		t.Fatalf("PruneKeep freed %d bytes, want > 0", freed)
	}
	gens, err := s.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("after PruneKeep(2): generations %v, want [4 5]", gens)
	}
	// keep < 1 clamps: the newest generation always survives.
	if _, err := s.PruneKeep(0); err != nil {
		t.Fatal(err)
	}
	gens, _ = s.Generations()
	if len(gens) != 1 || gens[0] != 5 {
		t.Fatalf("after PruneKeep(0): generations %v, want [5]", gens)
	}
	snap, err := s.Load()
	if err != nil || string(snap.Payload) != "gen5" {
		t.Fatalf("newest generation lost by PruneKeep: %v", err)
	}
	// Pruning an already-minimal store is a no-op, not an error.
	if freed, err := s.PruneKeep(3); err != nil || freed != 0 {
		t.Fatalf("no-op PruneKeep freed %d, err %v", freed, err)
	}
}

// TestDegradedOpenAtRetainLimitWithTornTempAndNoSpace pins the worst
// plausible recovery scenario: a store already at its Retain limit whose
// newest generation is corrupt, with a torn temp file stranded by a
// crashed Save, on a disk with zero free space (failpoint-simulated).
// Open must still succeed (the sweep is a delete, not a write), Load
// must fall back to the older generation with Skipped provenance, and
// Save must surface a detectable disk-full error — not a torn file.
func TestDegradedOpenAtRetainLimitWithTornTempAndNoSpace(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{Retain: 2})
	if _, err := s.Save([]byte("older-good")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("newest-bad")); err != nil {
		t.Fatal(err)
	}
	// Strand a torn temp (crash between fsync and rename) ...
	defer failpoint.DisableAll()
	if err := failpoint.Enable("ckptstore/rename", "error@1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("torn")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("save under rename failpoint = %v", err)
	}
	failpoint.DisableAll()
	// ... corrupt the newest visible generation ...
	corruptNewest(t, s, func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b })
	// ... and take away all free space before reopening.
	if err := failpoint.Enable("ckptstore/write", "diskfull"); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{Retain: 2})
	if err != nil {
		t.Fatalf("degraded open failed: %v", err)
	}
	temps, _ := filepath.Glob(filepath.Join(dir, "*"+tempExt))
	if len(temps) != 0 {
		t.Fatalf("open with no free space left %d temp files unswept", len(temps))
	}
	snap, err := s2.Load()
	if err != nil {
		t.Fatalf("degraded load failed: %v", err)
	}
	if string(snap.Payload) != "older-good" || snap.Generation != 1 {
		t.Fatalf("degraded load = gen %d %q, want gen 1 \"older-good\"", snap.Generation, snap.Payload)
	}
	if len(snap.Skipped) != 1 || snap.Skipped[0].Generation != 2 || !errors.Is(snap.Skipped[0].Err, ErrCorrupt) {
		t.Fatalf("skip provenance = %+v", snap.Skipped)
	}
	// Writes on the full disk fail detectably and atomically: no torn
	// generation appears, no temp file survives the failed Save.
	if _, err := s2.Save([]byte("new")); !IsDiskFull(err) {
		t.Fatalf("save on full disk = %v, want disk-full", err)
	}
	gens, _ := s2.Generations()
	if len(gens) != 2 {
		t.Fatalf("failed save changed visible generations: %v", gens)
	}
	// Space returns: the store recovers without reopening, and numbering
	// skips the torn slot.
	failpoint.DisableAll()
	gen, err := s2.Save([]byte("recovered"))
	if err != nil {
		t.Fatalf("post-recovery save: %v", err)
	}
	if gen != 3 {
		t.Fatalf("post-recovery generation = %d, want 3", gen)
	}
	if snap, err := s2.Load(); err != nil || string(snap.Payload) != "recovered" {
		t.Fatalf("post-recovery load = %v", err)
	}
}

func TestOpenValidatesRetain(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{Retain: -1}); err == nil {
		t.Fatal("negative Retain accepted")
	}
}

func TestDecodeRejectsOversizeLength(t *testing.T) {
	// A frame whose length field exceeds MaxPayload must be rejected
	// before any allocation.
	data := Encode([]byte("x"))
	data[headerSize+0] = 0xff
	data[headerSize+1] = 0xff
	data[headerSize+2] = 0xff
	data[headerSize+3] = 0xff
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize length: %v", err)
	}
}

func TestDecodeMultiRecord(t *testing.T) {
	// Decode concatenates multiple framed records (forward compat with
	// streamed appends).
	a, b := Encode([]byte("hello ")), Encode([]byte("world"))
	joined := append(append([]byte{}, a...), b[headerSize:]...)
	payload, err := Decode(joined)
	if err != nil || string(payload) != "hello world" {
		t.Fatalf("multi-record decode = %q, %v", payload, err)
	}
}
