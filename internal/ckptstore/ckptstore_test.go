package ckptstore

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/failpoint"
)

func mustOpen(t *testing.T, dir string, opt Options) *Store {
	t.Helper()
	s, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadRoundtrip(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	payload := []byte(`{"version":1,"hits":3}`)
	gen, err := s.Save(payload)
	if err != nil {
		t.Fatal(err)
	}
	if gen != 1 {
		t.Fatalf("first generation = %d, want 1", gen)
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 1 || !bytes.Equal(snap.Payload, payload) || len(snap.Skipped) != 0 {
		t.Fatalf("loaded %+v", snap)
	}
}

func TestEmptyDirIsErrNoCheckpoint(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if _, err := s.Load(); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("empty store load = %v, want ErrNoCheckpoint", err)
	}
}

func TestRetainPrunesOldGenerations(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{Retain: 2})
	for i := 0; i < 5; i++ {
		if _, err := s.Save([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	gens, err := s.Generations()
	if err != nil {
		t.Fatal(err)
	}
	if len(gens) != 2 || gens[0] != 4 || gens[1] != 5 {
		t.Fatalf("retained generations %v, want [4 5]", gens)
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 5 || snap.Payload[0] != 4 {
		t.Fatalf("newest = gen %d payload %v", snap.Generation, snap.Payload)
	}
}

func TestReopenContinuesNumbering(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Save([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("b")); err != nil {
		t.Fatal(err)
	}
	s2 := mustOpen(t, dir, Options{})
	gen, err := s2.Save([]byte("c"))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 3 {
		t.Fatalf("generation after reopen = %d, want 3", gen)
	}
}

// corrupt mutates the newest generation's file in place.
func corruptNewest(t *testing.T, s *Store, mutate func([]byte) []byte) uint64 {
	t.Helper()
	gens, err := s.Generations()
	if err != nil || len(gens) == 0 {
		t.Fatalf("no generations to corrupt: %v", err)
	}
	newest := gens[len(gens)-1]
	path := s.path(newest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return newest
}

func TestCorruptionFallsBackToPreviousGeneration(t *testing.T) {
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated-mid-payload", func(b []byte) []byte { return b[:len(b)-3] }},
		{"truncated-mid-frame", func(b []byte) []byte { return b[:headerSize+3] }},
		{"truncated-to-header", func(b []byte) []byte { return b[:headerSize] }},
		{"flipped-crc-byte", func(b []byte) []byte {
			b[headerSize+5] ^= 0xff // inside the stored CRC
			return b
		}},
		{"flipped-payload-byte", func(b []byte) []byte {
			b[len(b)-1] ^= 0x01
			return b
		}},
		{"bad-magic", func(b []byte) []byte {
			b[0] = 'X'
			return b
		}},
		{"bad-format-version", func(b []byte) []byte {
			b[len(magic)] = 99
			return b
		}},
		{"empty-file", func(b []byte) []byte { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := mustOpen(t, t.TempDir(), Options{})
			if _, err := s.Save([]byte("good-old")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Save([]byte("bad-new")); err != nil {
				t.Fatal(err)
			}
			bad := corruptNewest(t, s, tc.mutate)
			snap, err := s.Load()
			if err != nil {
				t.Fatalf("load with corrupt newest: %v", err)
			}
			if snap.Generation != 1 || string(snap.Payload) != "good-old" {
				t.Fatalf("fell back to gen %d payload %q", snap.Generation, snap.Payload)
			}
			if len(snap.Skipped) != 1 || snap.Skipped[0].Generation != bad {
				t.Fatalf("skipped = %+v, want generation %d", snap.Skipped, bad)
			}
			if !errors.Is(snap.Skipped[0].Err, ErrCorrupt) {
				t.Fatalf("skip reason %v does not wrap ErrCorrupt", snap.Skipped[0].Err)
			}
		})
	}
}

func TestAllGenerationsCorruptIsErrCorrupt(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	if _, err := s.Save([]byte("only")); err != nil {
		t.Fatal(err)
	}
	corruptNewest(t, s, func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b })
	_, err := s.Load()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("load = %v, want ErrCorrupt", err)
	}
	if errors.Is(err, ErrNoCheckpoint) {
		t.Fatal("corrupt store misreported as empty")
	}
}

func TestTornRenameTempSweptOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if _, err := s.Save([]byte("committed")); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash between fsync and rename via the failpoint: the
	// temp file must stay behind, the generation must not exist.
	if err := failpoint.Enable("ckptstore/rename", "error@1"); err != nil {
		t.Fatal(err)
	}
	defer failpoint.DisableAll()
	if _, err := s.Save([]byte("torn")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("save under rename failpoint = %v", err)
	}
	temps, _ := filepath.Glob(filepath.Join(dir, "*"+tempExt))
	if len(temps) != 1 {
		t.Fatalf("torn rename left %d temp files, want 1", len(temps))
	}
	// Reopen: the temp is swept, the committed generation still loads,
	// and numbering does not reuse the torn slot's bytes.
	s2 := mustOpen(t, dir, Options{})
	temps, _ = filepath.Glob(filepath.Join(dir, "*"+tempExt))
	if len(temps) != 0 {
		t.Fatalf("open left %d temp files behind", len(temps))
	}
	snap, err := s2.Load()
	if err != nil || string(snap.Payload) != "committed" {
		t.Fatalf("after torn rename: %q, %v", snap.Payload, err)
	}
}

func TestWriteAndSyncFailpointsPropagate(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	defer failpoint.DisableAll()
	if err := failpoint.Enable("ckptstore/write", "error@1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("x")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("write failpoint: %v", err)
	}
	failpoint.DisableAll()
	if err := failpoint.Enable("ckptstore/sync", "error@1"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Save([]byte("x")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("sync failpoint: %v", err)
	}
	failpoint.DisableAll()
	// After the chaos clears, the store works.
	if _, err := s.Save([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if snap, err := s.Load(); err != nil || string(snap.Payload) != "ok" {
		t.Fatalf("post-chaos store broken: %v", err)
	}
}

func TestLoadGenerationAndLoadFailpoint(t *testing.T) {
	s := mustOpen(t, t.TempDir(), Options{})
	for i := 0; i < 3; i++ {
		if _, err := s.Save([]byte(fmt.Sprintf("gen%d", i+1))); err != nil {
			t.Fatal(err)
		}
	}
	p, err := s.LoadGeneration(2)
	if err != nil || string(p) != "gen2" {
		t.Fatalf("LoadGeneration(2) = %q, %v", p, err)
	}
	if _, err := s.LoadGeneration(99); err == nil {
		t.Fatal("missing generation loaded")
	}
	defer failpoint.DisableAll()
	// An IO error reading the newest generation degrades to the previous
	// one, same as corruption.
	if err := failpoint.Enable("ckptstore/load", "error@1"); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Generation != 2 || len(snap.Skipped) != 1 {
		t.Fatalf("load under IO chaos: gen %d, skipped %v", snap.Generation, snap.Skipped)
	}
}

func TestOpenValidatesRetain(t *testing.T) {
	if _, err := Open(t.TempDir(), Options{Retain: -1}); err == nil {
		t.Fatal("negative Retain accepted")
	}
}

func TestDecodeRejectsOversizeLength(t *testing.T) {
	// A frame whose length field exceeds MaxPayload must be rejected
	// before any allocation.
	data := Encode([]byte("x"))
	data[headerSize+0] = 0xff
	data[headerSize+1] = 0xff
	data[headerSize+2] = 0xff
	data[headerSize+3] = 0xff
	if _, err := Decode(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("oversize length: %v", err)
	}
}

func TestDecodeMultiRecord(t *testing.T) {
	// Decode concatenates multiple framed records (forward compat with
	// streamed appends).
	a, b := Encode([]byte("hello ")), Encode([]byte("world"))
	joined := append(append([]byte{}, a...), b[headerSize:]...)
	payload, err := Decode(joined)
	if err != nil || string(payload) != "hello world" {
		t.Fatalf("multi-record decode = %q, %v", payload, err)
	}
}
