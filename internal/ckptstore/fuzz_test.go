package ckptstore

import (
	"bytes"
	"testing"
)

// FuzzCheckpointDecode drives arbitrary bytes through Decode (it must
// never panic and never allocate past the input size) and checks the
// Encode/Decode roundtrip on the same bytes treated as a payload.
func FuzzCheckpointDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("MHCK"))
	f.Add(Encode(nil))
	f.Add(Encode([]byte("payload")))
	f.Add(Encode(bytes.Repeat([]byte{0xaa}, 300)))
	trunc := Encode([]byte("truncate me"))
	f.Add(trunc[:len(trunc)-4])
	f.Fuzz(func(t *testing.T, data []byte) {
		if payload, err := Decode(data); err == nil {
			// Whatever decodes must re-encode to something that decodes
			// to the same payload.
			back, err := Decode(Encode(payload))
			if err != nil {
				t.Fatalf("re-encode of decoded payload fails: %v", err)
			}
			if !bytes.Equal(back, payload) {
				t.Fatalf("roundtrip mismatch: %x vs %x", back, payload)
			}
		}
		// Any input is also a valid payload; its frame must roundtrip.
		back, err := Decode(Encode(data))
		if err != nil {
			t.Fatalf("Encode(%d bytes) does not decode: %v", len(data), err)
		}
		if !bytes.Equal(back, data) {
			t.Fatal("payload roundtrip mismatch")
		}
	})
}
