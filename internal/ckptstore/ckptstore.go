// Package ckptstore is a crash-safe, generational, on-disk checkpoint
// store for long-running discovery jobs — the durable half of the answer
// to batch-system walltime limits (the paper notes Summit capped
// sub-100-node jobs at two hours, Sec. IV-A).
//
// Durability contract (see docs/ROBUSTNESS.md):
//
//   - Every Save is atomic: the payload is written to a temp file in the
//     same directory, fsynced, renamed into place, and the directory is
//     fsynced. A crash at any instant leaves either the previous
//     generations intact or the new generation fully visible — never a
//     half-written visible checkpoint. Stale temp files from torn renames
//     are swept by Open.
//   - Every payload is CRC32-framed (Castagnoli) under a versioned magic
//     header, so torn writes and bit rot are detected on read, not
//     silently replayed.
//   - The store retains the newest Retain generations. Load returns the
//     newest generation that decodes cleanly, skipping (and reporting)
//     corrupt ones, so a bad newest file degrades to the previous
//     checkpoint instead of an aborted resume.
//
// The store is payload-agnostic: callers hand it bytes (in this repo, a
// cover.Checkpoint encoding) and get bytes back.
package ckptstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/failpoint"
)

// Typed errors. Load and decode failures wrap these so callers can
// distinguish "nothing to resume" from "something to resume is damaged".
var (
	// ErrNoCheckpoint means the store holds no generations at all.
	ErrNoCheckpoint = errors.New("ckptstore: no checkpoint")
	// ErrCorrupt means a checkpoint file failed CRC, framing, or header
	// validation.
	ErrCorrupt = errors.New("ckptstore: corrupt checkpoint")
)

const (
	// magic starts every checkpoint file.
	magic = "MHCK"
	// formatVersion is the on-disk framing version.
	formatVersion = 1
	// headerSize is magic + version.
	headerSize = len(magic) + 4
	// frameSize is the per-record length + CRC prefix.
	frameSize = 8
	// MaxPayload bounds a single record so a corrupt length field cannot
	// drive a multi-gigabyte allocation.
	MaxPayload = 1 << 30

	// fileExt names checkpoint generations; tempExt marks in-flight
	// writes that a crash may strand.
	fileExt = ".mhc"
	tempExt = ".tmp"
	filePat = "ckpt-%09d" + fileExt
)

// Options configures a Store.
type Options struct {
	// Retain is how many newest generations survive pruning; 0 means
	// DefaultRetain.
	Retain int
}

// DefaultRetain keeps three generations: the incumbent, its predecessor
// (the corruption fallback), and one more for torn-prune safety.
const DefaultRetain = 3

// Store is a directory of numbered checkpoint generations. It is safe
// for concurrent use; Save calls serialize.
type Store struct {
	dir    string
	retain int

	mu      sync.Mutex
	nextGen uint64
}

// Open creates (if needed) the directory, sweeps temp files stranded by
// torn renames, and positions the generation counter after the newest
// existing file.
func Open(dir string, opt Options) (*Store, error) {
	if opt.Retain == 0 {
		opt.Retain = DefaultRetain
	}
	if opt.Retain < 1 {
		return nil, fmt.Errorf("ckptstore: Retain must be positive, got %d", opt.Retain)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	s := &Store{dir: dir, retain: opt.Retain}
	gens, err := s.Generations()
	if err != nil {
		return nil, err
	}
	if n := len(gens); n > 0 {
		s.nextGen = gens[n-1] + 1
	} else {
		s.nextGen = 1
	}
	// A temp file is an interrupted Save: the rename never happened, so
	// the generation it was building does not exist. Sweep it.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), tempExt) {
			_ = os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Generations lists the on-disk generation numbers in ascending order,
// valid or not.
func (s *Store) Generations() ([]uint64, error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	var gens []uint64
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if g, ok := parseGen(e.Name()); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] < gens[j] })
	return gens, nil
}

// parseGen extracts the generation number from a checkpoint file name.
func parseGen(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "ckpt-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, fileExt)
	if !ok {
		return 0, false
	}
	g, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return g, true
}

// path returns the file path of a generation.
func (s *Store) path(gen uint64) string {
	return filepath.Join(s.dir, fmt.Sprintf(filePat, gen))
}

// Save atomically persists a payload as the next generation and prunes
// generations beyond the retain horizon. It returns the generation
// number written. Failpoints: ckptstore/write, ckptstore/sync,
// ckptstore/rename.
func (s *Store) Save(payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("ckptstore: payload %d bytes exceeds MaxPayload", len(payload))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gen := s.nextGen
	if err := WriteFileAtomic(s.path(gen), Encode(payload), 0o644); err != nil {
		return 0, fmt.Errorf("ckptstore: generation %d: %w", gen, err)
	}
	s.nextGen = gen + 1
	s.prune(gen)
	return gen, nil
}

// WriteFileAtomic publishes data at path with the store's full durability
// protocol: write to a same-directory temp file, fsync it, rename into
// place, fsync the directory. A crash at any instant leaves either the old
// path contents or the new — never a torn file. It is the one blessed way
// to write a checkpoint-path file outside the store proper (the durawrite
// analyzer flags raw writes in those packages), so crash-safety lives in
// exactly one place. Failpoints: ckptstore/write, ckptstore/sync,
// ckptstore/rename.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	tmp := path + tempExt
	if err := failpoint.Check("ckptstore/write"); err != nil {
		return fmt.Errorf("writing %s: %w", filepath.Base(path), err)
	}
	if err := os.WriteFile(tmp, data, perm); err != nil {
		return err
	}
	if err := syncFile(tmp); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	if err := failpoint.Check("ckptstore/rename"); err != nil {
		// Simulated crash between fsync and rename: the temp file stays
		// behind, exactly as a real kill would leave it.
		return fmt.Errorf("publishing %s: %w", filepath.Base(path), err)
	}
	if err := os.Rename(tmp, path); err != nil {
		_ = os.Remove(tmp)
		return err
	}
	syncDir(filepath.Dir(path))
	return nil
}

// syncFile fsyncs one file. Failpoint: ckptstore/sync.
func syncFile(path string) error {
	if err := failpoint.Check("ckptstore/sync"); err != nil {
		return fmt.Errorf("syncing %s: %w", filepath.Base(path), err)
	}
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so a rename inside it is durable.
// Best-effort: some filesystems reject directory fsync outright (EINVAL),
// and by this point the renamed file's own bytes are already fsynced — the
// worst a lost directory entry costs is falling back one generation.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()  //lint:allow durawrite best-effort directory fsync; EINVAL on some filesystems and the file itself is already durable
	_ = d.Close() //lint:allow durawrite read-only directory handle; Close after a best-effort Sync has no write to lose
}

// IsDiskFull reports whether an error is an out-of-space failure — a
// real ENOSPC from the filesystem or an injected one from the
// "diskfull" failpoint action. Service layers use it to enter a
// degraded (stop-admitting, keep-draining) state instead of failing
// the job whose write hit the wall.
func IsDiskFull(err error) bool {
	return errors.Is(err, syscall.ENOSPC)
}

// PruneKeep removes all but the newest keep generations, regardless of
// the store's Retain setting. It is the disk-budget GC's hook for
// reclaiming space from a live store: under pressure the accountant
// shrinks retained history first, before touching anything a resume
// would need. keep is clamped to at least 1 — the newest generation is
// never removed. It returns the number of bytes reclaimed.
func (s *Store) PruneKeep(keep int) (int64, error) {
	if keep < 1 {
		keep = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	gens, err := s.Generations()
	if err != nil {
		return 0, err
	}
	var freed int64
	for i := 0; i+keep < len(gens); i++ {
		p := s.path(gens[i])
		if st, err := os.Stat(p); err == nil {
			freed += st.Size()
		}
		if err := os.Remove(p); err != nil && !os.IsNotExist(err) {
			return freed, fmt.Errorf("ckptstore: pruning generation %d: %w", gens[i], err)
		}
	}
	return freed, nil
}

// prune removes generations older than the retain horizon. Best-effort:
// a prune failure never fails the Save that triggered it.
func (s *Store) prune(newest uint64) {
	gens, err := s.Generations()
	if err != nil {
		return
	}
	for _, g := range gens {
		if g+uint64(s.retain) <= newest {
			_ = os.Remove(s.path(g))
		}
	}
}

// CorruptGeneration records a generation Load skipped.
type CorruptGeneration struct {
	// Generation is the skipped generation number.
	Generation uint64
	// Err is why it failed to decode.
	Err error
}

// Snapshot is a successful Load: the newest valid payload plus the
// provenance a resuming caller should report.
type Snapshot struct {
	// Payload is the stored bytes.
	Payload []byte
	// Generation is the generation the payload came from.
	Generation uint64
	// Skipped lists newer generations that were corrupt, newest first.
	Skipped []CorruptGeneration
}

// Load returns the newest generation that decodes cleanly. Corrupt newer
// generations are skipped and reported in the snapshot. With no
// generations on disk it returns ErrNoCheckpoint; with generations on
// disk but none valid it returns an error wrapping ErrCorrupt.
// Failpoint: ckptstore/load.
func (s *Store) Load() (*Snapshot, error) {
	gens, err := s.Generations()
	if err != nil {
		return nil, err
	}
	if len(gens) == 0 {
		return nil, ErrNoCheckpoint
	}
	var skipped []CorruptGeneration
	for i := len(gens) - 1; i >= 0; i-- {
		payload, err := s.LoadGeneration(gens[i])
		if err == nil {
			return &Snapshot{Payload: payload, Generation: gens[i], Skipped: skipped}, nil
		}
		skipped = append(skipped, CorruptGeneration{Generation: gens[i], Err: err})
	}
	return nil, fmt.Errorf("ckptstore: all %d generations invalid (newest: %v): %w",
		len(gens), skipped[0].Err, ErrCorrupt)
}

// maxFileSize bounds a single-record checkpoint file: header, one frame,
// one MaxPayload record. A file larger than this cannot decode to a legal
// single Save, so reading is capped here rather than trusting the file
// length — a corrupt (or hostile) multi-gigabyte file costs one bounded
// read, not an unbounded allocation.
const maxFileSize = int64(headerSize+frameSize) + MaxPayload

// LoadGeneration reads and validates one specific generation.
func (s *Store) LoadGeneration(gen uint64) ([]byte, error) {
	if err := failpoint.Check("ckptstore/load"); err != nil {
		return nil, fmt.Errorf("ckptstore: reading generation %d: %w", gen, err)
	}
	f, err := os.Open(s.path(gen))
	if err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	defer f.Close()
	data, err := io.ReadAll(io.LimitReader(f, maxFileSize+1))
	if err != nil {
		return nil, fmt.Errorf("ckptstore: %w", err)
	}
	if int64(len(data)) > maxFileSize {
		return nil, fmt.Errorf("ckptstore: generation %d: %w: file exceeds %d bytes", gen, ErrCorrupt, maxFileSize)
	}
	payload, err := Decode(data)
	if err != nil {
		return nil, fmt.Errorf("ckptstore: generation %d: %w", gen, err)
	}
	return payload, nil
}

// crcTable is the Castagnoli polynomial, the standard for storage
// checksums.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Encode frames a payload: magic, format version, then one
// length+CRC-framed record. (Decode accepts any number of records and
// concatenates them, so the format can later stream appends.)
func Encode(payload []byte) []byte {
	buf := make([]byte, 0, headerSize+frameSize+len(payload))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, formatVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
	buf = binary.LittleEndian.AppendUint32(buf, crc32.Checksum(payload, crcTable))
	buf = append(buf, payload...)
	return buf
}

// Decode validates a framed checkpoint file and returns the concatenated
// record payloads. Every failure wraps ErrCorrupt. Decode never
// allocates beyond the input size, so a hostile length field cannot
// balloon memory.
func Decode(data []byte) ([]byte, error) {
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte file is shorter than the header", ErrCorrupt, len(data))
	}
	if string(data[:len(magic)]) != magic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrCorrupt, data[:len(magic)])
	}
	ver := binary.LittleEndian.Uint32(data[len(magic):headerSize])
	if ver != formatVersion {
		return nil, fmt.Errorf("%w: format version %d, want %d", ErrCorrupt, ver, formatVersion)
	}
	rest := data[headerSize:]
	if len(rest) == 0 {
		return nil, fmt.Errorf("%w: no records", ErrCorrupt)
	}
	var payload []byte
	for n := 0; len(rest) > 0; n++ {
		if len(rest) < frameSize {
			return nil, fmt.Errorf("%w: record %d: truncated frame (%d trailing bytes)", ErrCorrupt, n, len(rest))
		}
		size := binary.LittleEndian.Uint32(rest[0:4])
		sum := binary.LittleEndian.Uint32(rest[4:8])
		if size > MaxPayload {
			return nil, fmt.Errorf("%w: record %d: length %d exceeds MaxPayload", ErrCorrupt, n, size)
		}
		body := rest[frameSize:]
		if uint64(len(body)) < uint64(size) {
			return nil, fmt.Errorf("%w: record %d: truncated payload (%d of %d bytes)", ErrCorrupt, n, len(body), size)
		}
		record := body[:size]
		if got := crc32.Checksum(record, crcTable); got != sum {
			return nil, fmt.Errorf("%w: record %d: CRC %08x, want %08x", ErrCorrupt, n, got, sum)
		}
		payload = append(payload, record...)
		rest = body[size:]
	}
	return payload, nil
}
