// Package mpisim is an in-process stand-in for the MPI runtime the paper
// uses across Summit nodes: one rank per node, point-to-point messages,
// and the tree collectives (Reduce/Bcast/Barrier/Gather) the multi-hit
// pipeline needs.
//
// Ranks run as goroutines and exchange real payloads over channels, so the
// reduction that funnels each rank's best 20-byte combination to rank 0 is
// actually executed, not merely costed. Alongside the real exchange, every
// rank advances a virtual clock under a latency+bandwidth (LogP-style) cost
// model and keeps a ledger splitting elapsed virtual time into compute and
// communication — the quantities behind Fig. 8's per-rank compute/comm
// breakdown. Virtual time is fully deterministic: it depends only on the
// communication structure, never on goroutine scheduling.
package mpisim

import (
	"fmt"
	"sync"
)

// Params is the communication cost model.
type Params struct {
	// LatencySec is the fixed per-message cost.
	LatencySec float64
	// BandwidthBytes is the link bandwidth in bytes/second.
	BandwidthBytes float64
}

// Summit returns a cost model for Summit's dual-rail EDR InfiniBand
// inter-node fabric.
func Summit() Params {
	return Params{LatencySec: 1.5e-6, BandwidthBytes: 23e9}
}

// message is one in-flight point-to-point transfer.
type message struct {
	from    int
	payload any
	bytes   int
	arrival float64 // receiver-side virtual availability time
}

// World is a set of ranks sharing a communication fabric.
type World struct {
	n      int
	params Params
	inbox  []chan message
	// failed is closed when any rank's body returns an error or panics,
	// releasing every rank blocked in Send/Recv so Run can return instead
	// of deadlocking on messages the dead rank will never send.
	failed   chan struct{}
	failOnce sync.Once
	// failErr is the first error that triggered failOnce — the root cause.
	// Ranks that subsequently abort a Send/Recv produce secondary errors
	// that must not mask it. Written once inside failOnce.Do, read after
	// Run's WaitGroup barrier.
	failErr error
	// killAt is the fault injector's per-rank virtual death time; negative
	// means the rank is not scheduled to fail. See FailRankAt.
	killAt []float64
	// Per-rank ledgers, indexed by rank; each entry is written only by its
	// own rank's goroutine during Run.
	clock   []float64
	compute []float64
	comm    []float64
	wait    []float64
}

// FailureError is the error produced when the fault injector kills a rank
// (see FailRankAt): a simulated node failure at a virtual time, as opposed
// to a program bug. Callers recover it from Run with errors.As to drive
// checkpoint-restart or degraded-mode recovery.
type FailureError struct {
	// Rank is the rank that died.
	Rank int
	// AtSec is the rank's virtual clock at death.
	AtSec float64
}

func (e *FailureError) Error() string {
	return fmt.Sprintf("mpisim: rank %d failed at virtual time %.3fs (injected fault)", e.Rank, e.AtSec)
}

// NewWorld creates a world with n ranks.
func NewWorld(n int, p Params) *World {
	if n <= 0 {
		//lint:allow panicfree constructor assertion on a programmer-supplied constant, like make with a negative size
		panic(fmt.Sprintf("mpisim: world size must be positive, got %d", n))
	}
	w := &World{
		n:       n,
		params:  p,
		failed:  make(chan struct{}),
		inbox:   make([]chan message, n),
		killAt:  make([]float64, n),
		clock:   make([]float64, n),
		compute: make([]float64, n),
		comm:    make([]float64, n),
		wait:    make([]float64, n),
	}
	for i := range w.inbox {
		w.inbox[i] = make(chan message, 256)
	}
	for i := range w.killAt {
		w.killAt[i] = -1
	}
	return w
}

// FailRankAt arms the fault injector: the rank dies — its body is torn down
// with a *FailureError — the moment its virtual clock reaches atSec inside a
// Compute block. The death is deterministic in virtual time: it depends only
// on the rank program, never on goroutine scheduling. Must be called before
// Run.
func (w *World) FailRankAt(rank int, atSec float64) {
	if rank < 0 || rank >= w.n {
		//lint:allow panicfree constructor-time assertion on a programmer-supplied rank, like an index bound
		panic(fmt.Sprintf("mpisim: FailRankAt rank %d out of world size %d", rank, w.n))
	}
	if atSec < 0 {
		//lint:allow panicfree constructor-time assertion on a programmer-supplied time
		panic(fmt.Sprintf("mpisim: FailRankAt negative time %g", atSec))
	}
	w.killAt[rank] = atSec
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.n }

// Clock returns a rank's virtual clock. Valid after Run returns.
func (w *World) Clock(rank int) float64 { return w.clock[rank] }

// ComputeTime returns a rank's accumulated compute time.
func (w *World) ComputeTime(rank int) float64 { return w.compute[rank] }

// CommTime returns a rank's accumulated message-passing time (send costs
// plus the wire time of late-arriving receives). Idle time spent waiting
// for a slower peer's compute is booked separately as WaitTime: Fig. 8's
// observation is that comm overhead proper is hidden under compute
// imbalance.
func (w *World) CommTime(rank int) float64 { return w.comm[rank] }

// WaitTime returns a rank's accumulated idle time: clock advanced while
// blocked on messages that had not yet been sent.
func (w *World) WaitTime(rank int) float64 { return w.wait[rank] }

// MaxClock returns the latest virtual clock across ranks — the simulated
// job runtime.
func (w *World) MaxClock() float64 {
	max := 0.0
	for _, c := range w.clock {
		if c > max {
			max = c
		}
	}
	return max
}

// Run executes body once per rank, concurrently, and waits for all ranks.
// It returns the root-cause error: the first error (or recovered panic)
// that tore the world down. Ranks that subsequently abort a blocked
// Send/Recv because a peer died produce secondary errors, which are never
// returned while a root cause exists — returning errs in rank order would
// let rank 0's "a peer rank failed" panic mask the real failure at a
// higher rank. A World must not be reused after Run.
func (w *World) Run(body func(r *Rank) error) error {
	errs := make([]error, w.n)
	var wg sync.WaitGroup
	for id := 0; id < w.n; id++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					if fe, ok := p.(*FailureError); ok {
						errs[id] = fe
					} else {
						errs[id] = fmt.Errorf("mpisim: rank %d panicked: %v", id, p)
					}
				}
				if errs[id] != nil {
					w.failOnce.Do(func() {
						w.failErr = errs[id]
						close(w.failed)
					})
				}
			}()
			errs[id] = body(&Rank{id: id, w: w})
		}(id)
	}
	wg.Wait()
	if w.failErr != nil {
		return w.failErr
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Rank is one process's handle onto the world.
type Rank struct {
	id      int
	w       *World
	pending []message // out-of-order arrivals awaiting a matching Recv
}

// ID returns this rank's id.
func (r *Rank) ID() int { return r.id }

// Size returns the world size.
func (r *Rank) Size() int { return r.w.n }

// Compute advances this rank's clock by a block of computation. If the
// fault injector armed a death time for this rank (FailRankAt) and the
// block would carry the clock past it, the clock stops at the death time,
// the partial work up to it is booked, and the rank dies with a
// *FailureError.
func (r *Rank) Compute(seconds float64) {
	if seconds < 0 {
		//lint:allow panicfree models MPI_Abort: a malformed rank program tears down the world; World.Run recovers it into an error
		panic("mpisim: negative compute time")
	}
	if k := r.w.killAt[r.id]; k >= 0 && r.w.clock[r.id]+seconds >= k {
		// Book only the work up to the death time; if the clock already
		// passed k inside a collective, die immediately without rewinding.
		spent := k - r.w.clock[r.id]
		if spent < 0 {
			spent = 0
		}
		r.w.clock[r.id] += spent
		r.w.compute[r.id] += spent
		//lint:allow panicfree models a fault-injected node death; recovered by World.Run into *FailureError
		panic(&FailureError{Rank: r.id, AtSec: r.w.clock[r.id]})
	}
	r.w.clock[r.id] += seconds
	r.w.compute[r.id] += seconds
}

// Send transmits payload to another rank. The sender pays
// latency + bytes/bandwidth of virtual time.
func (r *Rank) Send(to int, payload any, bytes int) {
	if to < 0 || to >= r.w.n {
		//lint:allow panicfree models MPI_Abort on an invalid peer; recovered by World.Run
		panic(fmt.Sprintf("mpisim: send to invalid rank %d", to))
	}
	if to == r.id {
		//lint:allow panicfree models MPI_Abort on self-send deadlock; recovered by World.Run
		panic("mpisim: send to self")
	}
	cost := r.w.params.LatencySec
	if r.w.params.BandwidthBytes > 0 {
		cost += float64(bytes) / r.w.params.BandwidthBytes
	}
	r.w.clock[r.id] += cost
	r.w.comm[r.id] += cost
	select {
	case r.w.inbox[to] <- message{from: r.id, payload: payload, bytes: bytes, arrival: r.w.clock[r.id]}:
	case <-r.w.failed:
		//lint:allow panicfree models MPI_Abort propagation from a failed peer; recovered by World.Run
		panic(fmt.Sprintf("mpisim: rank %d aborted send to %d: a peer rank failed", r.id, to))
	}
}

// Recv blocks until a message from the given rank is available and returns
// its payload. Waiting for a not-yet-arrived message advances this rank's
// clock to the message's arrival time; the gap up to the moment the sender
// finished computing is booked as idle wait, and the message's wire time as
// communication.
func (r *Rank) Recv(from int) any {
	if from < 0 || from >= r.w.n {
		//lint:allow panicfree models MPI_Abort on an invalid peer; recovered by World.Run
		panic(fmt.Sprintf("mpisim: recv from invalid rank %d", from))
	}
	msg, ok := r.takePending(from)
	for !ok {
		var m message
		select {
		case m = <-r.w.inbox[r.id]:
		case <-r.w.failed:
			//lint:allow panicfree models MPI_Abort propagation from a failed peer; recovered by World.Run
			panic(fmt.Sprintf("mpisim: rank %d aborted recv from %d: a peer rank failed", r.id, from))
		}
		if m.from == from {
			msg, ok = m, true
		} else {
			r.pending = append(r.pending, m)
		}
	}
	if msg.arrival > r.w.clock[r.id] {
		gap := msg.arrival - r.w.clock[r.id]
		wire := r.w.params.LatencySec
		if r.w.params.BandwidthBytes > 0 {
			wire += float64(msg.bytes) / r.w.params.BandwidthBytes
		}
		if wire > gap {
			wire = gap
		}
		r.w.comm[r.id] += wire
		r.w.wait[r.id] += gap - wire
		r.w.clock[r.id] = msg.arrival
	}
	return msg.payload
}

// takePending removes and returns the oldest pending message from a rank.
func (r *Rank) takePending(from int) (message, bool) {
	for i, m := range r.pending {
		if m.from == from {
			r.pending = append(r.pending[:i], r.pending[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// Reduce folds every rank's value to rank 0 through a binomial tree and
// returns the folded value at rank 0 (other ranks return their partial
// fold). combine must be associative and commutative; bytes is the wire
// size of one value.
func (r *Rank) Reduce(value any, bytes int, combine func(a, b any) any) any {
	acc := value
	for step := 1; step < r.w.n; step <<= 1 {
		if r.id&step != 0 {
			r.Send(r.id-step, acc, bytes)
			return acc
		}
		if r.id+step < r.w.n {
			acc = combine(acc, r.Recv(r.id+step))
		}
	}
	return acc
}

// Bcast distributes rank 0's value to every rank through a binomial tree
// and returns it.
func (r *Rank) Bcast(value any, bytes int) any {
	// Find the highest step at which this rank receives.
	if r.id != 0 {
		step := 1
		for step<<1 <= r.id {
			step <<= 1
		}
		// r.id's parent is r.id − step where step is the highest set bit.
		value = r.Recv(r.id - step)
	}
	// Forward to children: steps above our own high bit.
	low := 1
	if r.id != 0 {
		for low<<1 <= r.id {
			low <<= 1
		}
		low <<= 1
	}
	// Children of rank id in a binomial bcast are id+step for step ≥ low
	// (id 0: all powers of two).
	for step := low; r.id+step < r.w.n; step <<= 1 {
		if r.id&step == 0 {
			r.Send(r.id+step, value, bytes)
		} else {
			break
		}
	}
	return value
}

// Barrier synchronizes all ranks (reduce of an empty token, then a
// broadcast).
func (r *Rank) Barrier() {
	r.Reduce(nil, 0, func(a, b any) any { return nil })
	r.Bcast(nil, 0)
}

// Gather collects every rank's value at rank 0, which receives them in
// rank order; rank 0 returns the full slice (its own value first), other
// ranks return nil.
func (r *Rank) Gather(value any, bytes int) []any {
	if r.id != 0 {
		r.Send(0, value, bytes)
		return nil
	}
	out := make([]any, r.w.n)
	out[0] = value
	for from := 1; from < r.w.n; from++ {
		out[from] = r.Recv(from)
	}
	return out
}

// AllReduce folds every rank's value and distributes the result to all
// ranks.
func (r *Rank) AllReduce(value any, bytes int, combine func(a, b any) any) any {
	folded := r.Reduce(value, bytes, combine)
	return r.Bcast(folded, bytes)
}

// Scatter distributes rank 0's values slice, one element per rank; every
// rank returns its own element. Rank 0's values must have world-size
// length (other ranks pass nil).
func (r *Rank) Scatter(values []any, bytes int) any {
	if r.id == 0 {
		if len(values) != r.w.n {
			//lint:allow panicfree models MPI_Abort on a malformed scatter; recovered by World.Run
			panic(fmt.Sprintf("mpisim: Scatter needs %d values, got %d", r.w.n, len(values)))
		}
		for to := 1; to < r.w.n; to++ {
			r.Send(to, values[to], bytes)
		}
		return values[0]
	}
	return r.Recv(0)
}

// AllGather collects every rank's value at every rank, in rank order
// (gather to rank 0, then broadcast the full slice).
func (r *Rank) AllGather(value any, bytes int) []any {
	gathered := r.Gather(value, bytes)
	out := r.Bcast(gathered, bytes*r.w.n)
	return out.([]any)
}
