package mpisim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/reduce"
)

func params() Params { return Params{LatencySec: 1e-6, BandwidthBytes: 1e9} }

func TestSendRecvPayload(t *testing.T) {
	w := NewWorld(2, params())
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, "hello", 5)
		} else {
			if got := r.Recv(0); got != "hello" {
				t.Errorf("Recv = %v", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestVirtualClockAdvances(t *testing.T) {
	w := NewWorld(2, Params{LatencySec: 1, BandwidthBytes: 100})
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(10)
			r.Send(1, nil, 200) // cost 1 + 200/100 = 3
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Clock(0); got != 13 {
		t.Fatalf("sender clock = %g, want 13", got)
	}
	// Receiver waited from 0 to the arrival at 13.
	if got := w.Clock(1); got != 13 {
		t.Fatalf("receiver clock = %g, want 13", got)
	}
	if w.ComputeTime(0) != 10 || w.CommTime(0) != 3 {
		t.Fatalf("sender ledger = (%g, %g), want (10, 3)",
			w.ComputeTime(0), w.CommTime(0))
	}
	// The receiver's 13 s gap splits into 3 s of wire time (comm) and 10 s
	// of idle wait for the sender's compute.
	if w.CommTime(1) != 3 {
		t.Fatalf("receiver comm = %g, want 3", w.CommTime(1))
	}
	if w.WaitTime(1) != 10 {
		t.Fatalf("receiver wait = %g, want 10", w.WaitTime(1))
	}
}

func TestRecvDoesNotWaitForEarlyMessage(t *testing.T) {
	// If the receiver's clock is already past the arrival time, no wait is
	// booked.
	w := NewWorld(2, Params{LatencySec: 1, BandwidthBytes: 0})
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, nil, 0) // arrival at t=1
		} else {
			r.Compute(50)
			r.Recv(0)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.Clock(1) != 50 || w.CommTime(1) != 0 || w.WaitTime(1) != 0 {
		t.Fatalf("receiver clock=%g comm=%g wait=%g, want 50, 0, 0",
			w.Clock(1), w.CommTime(1), w.WaitTime(1))
	}
}

func TestOutOfOrderRecv(t *testing.T) {
	// Rank 0 receives from 2 first even though 1's message arrives first.
	w := NewWorld(3, params())
	err := w.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			if got := r.Recv(2); got != "two" {
				t.Errorf("Recv(2) = %v", got)
			}
			if got := r.Recv(1); got != "one" {
				t.Errorf("Recv(1) = %v", got)
			}
		case 1:
			r.Send(0, "one", 3)
		case 2:
			r.Send(0, "two", 3)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceComputesGlobalMax(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 8, 33, 100} {
		w := NewWorld(n, params())
		var got atomic.Value
		err := w.Run(func(r *Rank) error {
			mine := reduce.NewCombo(float64(r.ID())/float64(n), r.ID()+1, r.ID()+2)
			folded := r.Reduce(mine, reduce.BytesPerRecord, func(a, b any) any {
				ca, cb := a.(reduce.Combo), b.(reduce.Combo)
				if cb.Better(ca) {
					return cb
				}
				return ca
			})
			if r.ID() == 0 {
				got.Store(folded.(reduce.Combo))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		best := got.Load().(reduce.Combo)
		want := reduce.NewCombo(float64(n-1)/float64(n), n, n+1)
		if best != want {
			t.Fatalf("n=%d: reduce = %+v, want %+v", n, best, want)
		}
	}
}

func TestBcastReachesAllRanks(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 17, 64} {
		w := NewWorld(n, params())
		var count atomic.Int64
		err := w.Run(func(r *Rank) error {
			var v any
			if r.ID() == 0 {
				v = "payload"
			}
			got := r.Bcast(v, 7)
			if got == "payload" {
				count.Add(1)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if int(count.Load()) != n {
			t.Fatalf("n=%d: %d ranks got the broadcast", n, count.Load())
		}
	}
}

func TestAllReduce(t *testing.T) {
	const n = 13
	w := NewWorld(n, params())
	var count atomic.Int64
	err := w.Run(func(r *Rank) error {
		sum := r.AllReduce(r.ID(), 8, func(a, b any) any { return a.(int) + b.(int) })
		if sum == n*(n-1)/2 {
			count.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(count.Load()) != n {
		t.Fatalf("%d ranks saw the correct all-reduce", count.Load())
	}
}

func TestGather(t *testing.T) {
	const n = 9
	w := NewWorld(n, params())
	err := w.Run(func(r *Rank) error {
		got := r.Gather(r.ID()*10, 8)
		if r.ID() == 0 {
			for i, v := range got {
				if v != i*10 {
					t.Errorf("gathered[%d] = %v", i, v)
				}
			}
		} else if got != nil {
			t.Errorf("non-root rank got a gather result")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	// After a barrier, no rank's clock may be earlier than the slowest
	// rank's pre-barrier compute.
	const n = 6
	w := NewWorld(n, params())
	err := w.Run(func(r *Rank) error {
		r.Compute(float64(r.ID()) * 100)
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 0; rank < n; rank++ {
		if w.Clock(rank) < 500 {
			t.Fatalf("rank %d clock %g < slowest compute 500", rank, w.Clock(rank))
		}
	}
}

func TestDeterministicVirtualTime(t *testing.T) {
	run := func() []float64 {
		w := NewWorld(16, params())
		if err := w.Run(func(r *Rank) error {
			r.Compute(float64(r.ID()))
			r.AllReduce(r.ID(), 20, func(a, b any) any {
				if a.(int) > b.(int) {
					return a
				}
				return b
			})
			r.Barrier()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 16)
		for i := range out {
			out[i] = w.Clock(i)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("virtual time not deterministic at rank %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestRankErrorPropagates(t *testing.T) {
	w := NewWorld(2, params())
	err := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			panic("boom")
		}
		r.Send(1, nil, 0)
		return nil
	})
	if err == nil {
		t.Fatal("expected an error from the panicking rank")
	}
}

func TestInvalidOperationsPanic(t *testing.T) {
	w := NewWorld(2, params())
	cases := []func(r *Rank){
		func(r *Rank) { r.Send(5, nil, 0) },
		func(r *Rank) { r.Send(r.ID(), nil, 0) },
		func(r *Rank) { r.Recv(-1) },
		func(r *Rank) { r.Compute(-1) },
	}
	for i, fn := range cases {
		err := w.Run(func(r *Rank) error {
			if r.ID() == 0 {
				fn(r)
			}
			return nil
		})
		if err == nil {
			t.Errorf("case %d: expected error", i)
		}
		w = NewWorld(2, params())
	}
}

func TestNewWorldPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewWorld(0) did not panic")
		}
	}()
	NewWorld(0, params())
}

func TestThousandRankReduce(t *testing.T) {
	// Paper scale: 1000 ranks reducing a 20-byte record to rank 0.
	const n = 1000
	w := NewWorld(n, Summit())
	err := w.Run(func(r *Rank) error {
		r.Compute(1.0)
		r.Reduce(reduce.NewCombo(float64(r.ID()), r.ID()+1, r.ID()+2),
			reduce.BytesPerRecord,
			func(a, b any) any {
				ca, cb := a.(reduce.Combo), b.(reduce.Combo)
				if cb.Better(ca) {
					return cb
				}
				return ca
			})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The 10-deep binomial tree over 20-byte messages costs microseconds;
	// total time should be utterly dominated by the 1 s compute.
	if mc := w.MaxClock(); mc < 1.0 || mc > 1.001 {
		t.Fatalf("max clock = %g, want ≈1.0 (comm hidden)", mc)
	}
}

func TestRankFailureDoesNotDeadlockCollectives(t *testing.T) {
	// Rank 3 dies before joining the barrier; every other rank is blocked
	// inside the collective. Run must return an error rather than hang.
	const n = 8
	w := NewWorld(n, params())
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(r *Rank) error {
			if r.ID() == 3 {
				return fmt.Errorf("injected failure")
			}
			r.Barrier()
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error from the failed rank")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("world deadlocked on a dead rank")
	}
}

func TestRankPanicReleasesBlockedSenders(t *testing.T) {
	// Rank 1 panics without ever receiving; rank 0 is blocked sending into
	// a full inbox... or waiting in Recv. Either way Run must return.
	w := NewWorld(2, params())
	done := make(chan error, 1)
	go func() {
		done <- w.Run(func(r *Rank) error {
			if r.ID() == 1 {
				panic("boom")
			}
			r.Recv(1) // never satisfied
			return nil
		})
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("expected an error")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("world deadlocked after a rank panic")
	}
}

func TestRunReturnsRootCauseError(t *testing.T) {
	// Rank 3 is the only real failure: every other rank is blocked in the
	// barrier and aborts with a secondary "a peer rank failed" panic once
	// failOnce fires. Returning errs in rank order would surface rank 0's
	// secondary abort; Run must return rank 3's root cause instead.
	const n = 8
	root := fmt.Errorf("rank 3 root cause")
	for trial := 0; trial < 20; trial++ {
		w := NewWorld(n, params())
		err := w.Run(func(r *Rank) error {
			if r.ID() == 3 {
				return root
			}
			r.Barrier()
			return nil
		})
		if !errors.Is(err, root) {
			t.Fatalf("trial %d: Run = %v, want the rank-3 root cause", trial, err)
		}
	}
}

func TestFailRankAtReturnsFailureError(t *testing.T) {
	const n = 4
	w := NewWorld(n, params())
	w.FailRankAt(2, 5.0)
	err := w.Run(func(r *Rank) error {
		r.Compute(10)
		r.Barrier()
		return nil
	})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("Run = %v, want *FailureError", err)
	}
	if fe.Rank != 2 || fe.AtSec != 5.0 {
		t.Fatalf("FailureError = %+v, want rank 2 at 5.0s", fe)
	}
	// The dead rank's clock stops exactly at the kill time, with the partial
	// compute up to it booked.
	if w.Clock(2) != 5.0 {
		t.Fatalf("dead rank clock = %g, want 5.0", w.Clock(2))
	}
	if w.ComputeTime(2) != 5.0 {
		t.Fatalf("dead rank compute = %g, want 5.0", w.ComputeTime(2))
	}
}

func TestFailRankAtSplitsComputeBlocks(t *testing.T) {
	// Death in the middle of the second compute block: first block books
	// fully, second books only up to the kill time.
	w := NewWorld(2, params())
	w.FailRankAt(1, 7.5)
	err := w.Run(func(r *Rank) error {
		if r.ID() == 1 {
			r.Compute(5)
			r.Compute(5) // dies 2.5s in
			t.Error("rank 1 survived past its death time")
		}
		return nil
	})
	var fe *FailureError
	if !errors.As(err, &fe) {
		t.Fatalf("Run = %v, want *FailureError", err)
	}
	if w.Clock(1) != 7.5 || w.ComputeTime(1) != 7.5 {
		t.Fatalf("dead rank clock=%g compute=%g, want 7.5, 7.5", w.Clock(1), w.ComputeTime(1))
	}
}

func TestFailRankAtUnarmedWorldRunsClean(t *testing.T) {
	// Negative sentinel means no rank is armed; a fresh world must be
	// unaffected by the fault machinery.
	w := NewWorld(3, params())
	err := w.Run(func(r *Rank) error {
		r.Compute(1)
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFailRankAtValidation(t *testing.T) {
	w := NewWorld(2, params())
	for i, fn := range []func(){
		func() { w.FailRankAt(5, 1.0) },
		func() { w.FailRankAt(-1, 1.0) },
		func() { w.FailRankAt(0, -2.0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: expected panic", i)
				}
			}()
			fn()
		}()
	}
}

func TestScatter(t *testing.T) {
	const n = 7
	w := NewWorld(n, params())
	var count atomic.Int64
	err := w.Run(func(r *Rank) error {
		var values []any
		if r.ID() == 0 {
			for i := 0; i < n; i++ {
				values = append(values, i*100)
			}
		}
		mine := r.Scatter(values, 8)
		if mine == r.ID()*100 {
			count.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(count.Load()) != n {
		t.Fatalf("%d ranks got their scatter element", count.Load())
	}
}

func TestScatterWrongLengthPanicsToError(t *testing.T) {
	w := NewWorld(3, params())
	err := w.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.Scatter([]any{1}, 8) // wrong length
		} else {
			r.Recv(0)
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected an error")
	}
}

func TestAllGather(t *testing.T) {
	const n = 6
	w := NewWorld(n, params())
	var good atomic.Int64
	err := w.Run(func(r *Rank) error {
		all := r.AllGather(r.ID()*10, 8)
		ok := len(all) == n
		for i := 0; ok && i < n; i++ {
			ok = all[i] == i*10
		}
		if ok {
			good.Add(1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if int(good.Load()) != n {
		t.Fatalf("%d ranks saw the full gather", good.Load())
	}
}
