package mpisim_test

import (
	"fmt"

	"repro/internal/mpisim"
)

// Four ranks compute for different durations, then all-reduce their
// maximum under the virtual clock: the collective really executes, and
// every rank's clock advances to the slowest participant's.
func ExampleWorld_Run() {
	w := mpisim.NewWorld(4, mpisim.Params{LatencySec: 0.001, BandwidthBytes: 1e9})
	err := w.Run(func(r *mpisim.Rank) error {
		r.Compute(float64(r.ID()+1) * 10)
		max := r.AllReduce(r.ID(), 8, func(a, b any) any {
			if a.(int) > b.(int) {
				return a
			}
			return b
		})
		if r.ID() == 0 {
			fmt.Println("max rank id:", max)
		}
		return nil
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("rank 0 compute %.0fs, total clock > 40: %v\n",
		w.ComputeTime(0), w.Clock(0) > 40)
	// Output:
	// max rank id: 3
	// rank 0 compute 10s, total clock > 40: true
}
