package cover

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/reduce"
)

// FindTopK returns the k best h-hit combinations of one enumeration pass,
// best first — the exploratory companion to FindBest (researchers often
// want the leading candidates, not only the argmax the cover loop
// consumes). It enumerates the flat rank space of the combinatorial number
// system (combinat.Rank), partitioned evenly across workers, with a
// suffix-fold stack so advancing the fastest coordinate costs one
// AND+popcount per matrix. Exact for any K: unlike the per-thread kernels,
// every combination is offered to the accumulator. Supports h = 2–4.
func FindTopK(tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options, k int) ([]reduce.Combo, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("cover: FindTopK needs k ≥ 1, got %d", k)
	}
	if tumor.Genes() != normal.Genes() {
		return nil, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	g := uint64(tumor.Genes())
	if g < uint64(opt.Hits) {
		return nil, fmt.Errorf("cover: %d genes cannot form %d-hit combinations", g, opt.Hits)
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	total, ok := combinat.Binomial(g, uint64(opt.Hits))
	if !ok {
		return nil, fmt.Errorf("cover: C(%d, %d) overflows uint64", g, opt.Hits)
	}
	workers := opt.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if uint64(workers) > total {
		workers = combinat.ToInt(total)
	}

	accs := make([]*reduce.TopK, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := total * uint64(w) / uint64(workers)
		hi := total * uint64(w+1) / uint64(workers)
		accs[w] = reduce.NewTopK(k)
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(acc *reduce.TopK, lo, hi uint64) {
			defer wg.Done()
			topKRange(tumor, normal, active, opt, acc, lo, hi)
		}(accs[w], lo, hi)
	}
	wg.Wait()
	for _, acc := range accs[1:] {
		accs[0].Merge(acc)
	}
	out := make([]reduce.Combo, len(accs[0].Items()))
	copy(out, accs[0].Items())
	return out, nil
}

// topKRange walks ranks [lo, hi) in colexicographic order, maintaining
// tumor/normal suffix folds: suft[i] holds active ∧ rows(combo[i:]) so the
// fastest coordinate costs one AND+popcount per matrix, and a change at
// position j refolds only levels ≤ j.
func topKRange(tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options, acc *reduce.TopK, lo, hi uint64) {
	h := opt.Hits
	g := uint64(tumor.Genes())
	denom := float64(tumor.Samples() + normal.Samples())
	nn := normal.Samples()

	combo64 := combinat.Unrank(lo, h)
	combo := make([]int, h)
	for i, c := range combo64 {
		combo[i] = combinat.ToInt(c)
	}

	suft := make([][]uint64, h+1)
	sufn := make([][]uint64, h+1)
	for i := 1; i <= h; i++ {
		suft[i] = make([]uint64, tumor.Words())
		sufn[i] = make([]uint64, normal.Words())
	}
	// suft[h] is the active mask; sufn[h] is all-ones (no mask on normals).
	copy(suft[h], active.Words())
	for w := range sufn[h] {
		sufn[h][w] = ^uint64(0)
	}
	// suft[i] = active ∧ rows(combo[i..h-1]); refold(j) rebuilds levels
	// j..1 after combo[j] changes.
	refold := func(from int) {
		for i := from; i >= 1; i-- {
			bitmat.AndWords(suft[i], suft[i+1], tumor.Row(combo[i]))
			bitmat.AndWords(sufn[i], sufn[i+1], normal.Row(combo[i]))
		}
	}
	// Fold everything above the fastest coordinate.
	refold(h - 1)

	for rank := lo; rank < hi; rank++ {
		tp := bitmat.PopAnd2(suft[1], tumor.Row(combo[0]))
		nh := bitmat.PopAnd2(sufn[1], normal.Row(combo[0]))
		f := (opt.Alpha*float64(tp) + float64(nn-nh)) / denom
		acc.Offer(reduce.NewCombo(f, combo...))

		// Advance in colex order: combo[0] fastest.
		combo[0]++
		if combo[0] == combo[1] {
			j := 1
			for ; j < h-1 && combo[j]+1 == combo[j+1]; j++ {
			}
			combo[j]++
			if j == h-1 && uint64(combo[j]) >= g {
				return // domain exhausted (rank == hi-1)
			}
			for i := 0; i < j; i++ {
				combo[i] = i
			}
			refold(j)
		}
	}
}
