package cover

import (
	"math/rand"
	"testing"

	"repro/internal/combinat"
)

// TestRunInvariantsOverRandomInputs hammers Run with random cohorts and
// configurations, asserting the structural invariants every correct
// execution must satisfy regardless of data.
func TestRunInvariantsOverRandomInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 30; trial++ {
		genes := 6 + rng.Intn(10)
		nt := 5 + rng.Intn(60)
		nn := 5 + rng.Intn(60)
		density := 0.1 + rng.Float64()*0.6
		tumor, normal := randomPair(rng.Int63(), genes, nt, nn, density)

		hits := 2 + rng.Intn(3)
		opt := Options{
			Hits:      hits,
			Workers:   1 + rng.Intn(8),
			BlockSize: 1 + rng.Intn(600),
			BitSplice: rng.Intn(2) == 1,
		}
		if rng.Intn(2) == 1 {
			opt.Scheduler = EquiDistance
		}
		res, err := Run(tumor, normal, opt)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}

		// Conservation: covered + uncoverable = Nt.
		if res.Covered+res.Uncoverable != nt {
			t.Fatalf("trial %d: covered %d + uncoverable %d != %d",
				trial, res.Covered, res.Uncoverable, nt)
		}
		// Every step covers at least one new sample; active counts
		// strictly decrease; F values are valid and non-increasing is NOT
		// guaranteed (exclusion changes TP), but they stay in [0, 1].
		prevActive := nt
		for i, s := range res.Steps {
			if s.NewlyCovered <= 0 {
				t.Fatalf("trial %d step %d: non-positive cover", trial, i)
			}
			if s.ActiveAfter != prevActive-s.NewlyCovered {
				t.Fatalf("trial %d step %d: active bookkeeping broken", trial, i)
			}
			prevActive = s.ActiveAfter
			if s.Combo.F < 0 || s.Combo.F > 1 {
				t.Fatalf("trial %d step %d: F = %g out of range", trial, i, s.Combo.F)
			}
			ids := s.Combo.GeneIDs()
			if len(ids) != hits {
				t.Fatalf("trial %d step %d: %d genes, want %d", trial, i, len(ids), hits)
			}
			for j := 1; j < len(ids); j++ {
				if ids[j] <= ids[j-1] {
					t.Fatalf("trial %d step %d: genes not sorted", trial, i)
				}
			}
		}
		// Scanned (evaluated + pruned) is a whole number of full
		// enumeration passes: pruning moves combinations between the two
		// tallies but never loses one (gene compaction counts whole
		// eliminated subspaces as pruned, keeping a compacted pass at
		// exactly C(G,h) scanned).
		per := combinat.MustBinomial(uint64(genes), uint64(hits))
		scanned := res.Evaluated + res.Pruned
		if scanned%per != 0 {
			t.Fatalf("trial %d: scanned %d (evaluated %d + pruned %d) not a multiple of C(%d,%d)=%d",
				trial, scanned, res.Evaluated, res.Pruned, genes, hits, per)
		}
		// Each step is one pass, plus up to one terminal probe pass, plus
		// at most one full-domain rescan per compacted step (the tie-break
		// fallback when the winner's F does not exceed score(0, 0)).
		passes := scanned / per
		if passes < uint64(len(res.Steps)) || passes > 2*uint64(len(res.Steps))+2 {
			t.Fatalf("trial %d: %d passes for %d steps", trial, passes, len(res.Steps))
		}
	}
}

// TestFindBestDeterministicAcrossConfigs cross-checks that every scheduler,
// scheme, worker count and block size yields one identical winner on the
// same random input — the determinism contract stated in the package doc.
func TestFindBestDeterministicAcrossConfigs(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 10; trial++ {
		tumor, normal := randomPair(rng.Int63(), 12+rng.Intn(6), 30, 25, 0.4)
		var configs []Options
		for _, scheme := range []Scheme{Scheme2x2, Scheme3x1, Scheme1x3, Scheme4x1} {
			for _, sch := range []Scheduler{EquiArea, EquiDistance} {
				configs = append(configs, Options{
					Hits: 4, Scheme: scheme, Scheduler: sch,
					Workers: 1 + rng.Intn(10), BlockSize: 1 + rng.Intn(300),
				})
			}
		}
		var want string
		for i, opt := range configs {
			got, _, err := FindBest(tumor, normal, nil, opt)
			if err != nil {
				t.Fatal(err)
			}
			key := got.String()
			if i == 0 {
				want = key
			} else if key != want {
				t.Fatalf("trial %d config %d (%s/%s): %s != %s",
					trial, i, opt.Scheme, opt.Scheduler, key, want)
			}
		}
	}
}
