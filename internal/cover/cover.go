// Package cover implements the paper's primary contribution: the
// approximate weighted-set-cover (WSC) algorithm that discovers multi-hit
// combinations of genes differentiating tumor from normal samples, restructured
// for massively parallel execution.
//
// One iteration of the algorithm (Sec. II-B):
//
//  1. enumerate every h-gene combination and score it with
//     F = (α·TP + TN) / (Nt + Nn), α = 0.1;
//  2. take the combination with maximum F;
//  3. exclude ("cover") the tumor samples containing it;
//
// repeating until every tumor sample is covered. TP is the number of
// still-active tumor samples mutated in all h genes; TN is the number of
// normal samples NOT mutated in all h genes.
//
// The parallel engine reproduces the paper's execution structure on CPU
// cores standing in for GPUs: the combination space is flattened to a
// linear thread id λ through the triangular/tetrahedral maps (package
// combinat), λ-ranges are assigned to workers by the equi-area or
// equi-distance scheduler (package sched), each worker folds its threads'
// scores through per-block single-stage reduction followed by a tree
// reduction (package reduce), and the winners are reduced across workers —
// the same maxF → parallelReduceMax → rank-0 topology as the CUDA/MPI
// implementation. All reductions share one deterministic total order, so
// every scheme, scheduler and worker count returns the identical cover.
package cover

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// DefaultAlpha is the paper's true-positive penalty term α.
const DefaultAlpha = 0.1

// DefaultBlockSize is the paper's CUDA thread-block size, used for the
// in-block reduction stage.
const DefaultBlockSize = 512

// Scheme selects the loop-flattening parallelization scheme (Sec. III-A).
type Scheme int

const (
	// SchemeAuto picks the paper's production scheme for the hit count:
	// flat pairs for h=2, 2x1 for h=3, 3x1 for h=4.
	SchemeAuto Scheme = iota
	// SchemePair is the 2-hit kernel: C(G,2) threads, one combination each.
	SchemePair
	// Scheme2x1 is the 3-hit kernel of Algorithm 1: C(G,2) threads, each
	// running one inner loop over k.
	Scheme2x1
	// Scheme2x2 is the 4-hit kernel of Algorithm 2: C(G,2) threads, each
	// running a depth-2 nested loop over (k, l).
	Scheme2x2
	// Scheme3x1 is the 4-hit kernel of Algorithm 3: C(G,3) threads, each
	// running one inner loop over l.
	Scheme3x1
	// Scheme1x3 is the 4-hit scheme the paper defines but rejects for its
	// limited parallelism: G threads, each running a depth-3 nested loop.
	Scheme1x3
	// Scheme4x1 is the fully flattened 4-hit scheme the paper defines but
	// rejects: C(G,4) threads, one combination each.
	Scheme4x1
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemeAuto:
		return "auto"
	case SchemePair:
		return "pair"
	case Scheme2x1:
		return "2x1"
	case Scheme2x2:
		return "2x2"
	case Scheme3x1:
		return "3x1"
	case Scheme1x3:
		return "1x3"
	case Scheme4x1:
		return "4x1"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// hits returns the hit count a scheme serves.
func (s Scheme) hits() int {
	switch s {
	case SchemePair:
		return 2
	case Scheme2x1:
		return 3
	case Scheme2x2, Scheme3x1, Scheme1x3, Scheme4x1:
		return 4
	}
	return 0
}

// Scheduler selects the λ-range partitioner.
type Scheduler int

const (
	// EquiArea is the paper's scheduler: equal work per worker.
	EquiArea Scheduler = iota
	// EquiDistance is the naive baseline: equal thread count per worker.
	EquiDistance
)

// String returns "EA" or "ED".
func (s Scheduler) String() string {
	if s == EquiDistance {
		return "ED"
	}
	return "EA"
}

// Options configures a discovery run.
type Options struct {
	// Hits is the combination size h (2–4 for the parallel engine).
	Hits int
	// Alpha is the true-positive penalty; 0 means DefaultAlpha.
	Alpha float64
	// Scheme selects the parallelization scheme; SchemeAuto matches Hits.
	Scheme Scheme
	// Workers is the number of parallel workers (virtual GPUs); 0 means
	// GOMAXPROCS.
	Workers int
	// BlockSize is the in-block reduction width; 0 means DefaultBlockSize.
	BlockSize int
	// Scheduler selects EA (default) or ED partitioning.
	Scheduler Scheduler
	// MemOpt1 hoists the row for gene i out of the 3-hit inner loop;
	// MemOpt2 additionally hoists (and pre-folds) the row for gene j.
	// They reproduce the Fig. 5 ablation and apply to the 3-hit kernel;
	// the 2x2/3x1 4-hit kernels always run fully prefetched, as in the
	// paper's production configuration.
	MemOpt1, MemOpt2 bool
	// BitSplice physically splices covered tumor samples out of the matrix
	// after each iteration instead of masking them.
	BitSplice bool
	// MaxIterations bounds the number of combinations reported; 0 means
	// run until every coverable tumor sample is covered.
	MaxIterations int
	// Progress, when non-nil, is called after each iteration with the
	// step just taken — long runs report as they go. The callback runs on
	// the caller's goroutine; the Step is complete except for Elapsed of
	// later steps.
	Progress func(Step)
	// CheckpointEvery, when positive, invokes OnCheckpoint after every
	// CheckpointEvery-th completed iteration with a checkpoint of the run
	// so far. 0 disables the cadence.
	CheckpointEvery int
	// OnCheckpoint receives the cadence checkpoints. It runs on the
	// caller's goroutine; a slow callback lengthens the run. Ignored when
	// CheckpointEvery is 0.
	OnCheckpoint func(*Checkpoint)
}

// withDefaults resolves zero values and validates.
func (o Options) withDefaults() (Options, error) {
	if o.Hits == 0 && o.Scheme != SchemeAuto {
		o.Hits = o.Scheme.hits()
	}
	if o.Hits < 2 || o.Hits > 4 {
		return o, fmt.Errorf("cover: Hits must be 2, 3 or 4, got %d", o.Hits)
	}
	if o.Scheme == SchemeAuto {
		switch o.Hits {
		case 2:
			o.Scheme = SchemePair
		case 3:
			o.Scheme = Scheme2x1
		case 4:
			o.Scheme = Scheme3x1
		}
	}
	if o.Scheme.hits() != o.Hits {
		return o, fmt.Errorf("cover: scheme %s serves %d hits, Options.Hits is %d",
			o.Scheme, o.Scheme.hits(), o.Hits)
	}
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Alpha < 0 {
		return o, fmt.Errorf("cover: Alpha must be non-negative, got %g", o.Alpha)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("cover: Workers must be non-negative, got %d", o.Workers)
	}
	if o.BlockSize == 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.BlockSize < 0 {
		return o, fmt.Errorf("cover: BlockSize must be non-negative, got %d", o.BlockSize)
	}
	if o.CheckpointEvery < 0 {
		return o, fmt.Errorf("cover: CheckpointEvery must be non-negative, got %d", o.CheckpointEvery)
	}
	return o, nil
}

// Step records one iteration of the cover loop.
type Step struct {
	// Combo is the winning combination of the iteration.
	Combo reduce.Combo
	// NewlyCovered is the number of previously-active tumor samples the
	// combination covers.
	NewlyCovered int
	// ActiveAfter is the number of tumor samples still uncovered after
	// this iteration.
	ActiveAfter int
	// Evaluated is the number of combinations scored this iteration.
	Evaluated uint64
	// Elapsed is the wall-clock time of the iteration.
	Elapsed time.Duration
}

// Result is a full discovery run.
type Result struct {
	// Steps lists the chosen combinations in greedy order.
	Steps []Step
	// Covered is the total number of tumor samples covered.
	Covered int
	// Uncoverable is the number of tumor samples no h-combination covers
	// (samples with fewer than h mutated genes can never be covered).
	Uncoverable int
	// Evaluated is the total number of combinations scored.
	Evaluated uint64
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
	// Options echoes the resolved configuration.
	Options Options
}

// Combos returns the chosen combinations in order.
func (r *Result) Combos() []reduce.Combo {
	out := make([]reduce.Combo, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Combo
	}
	return out
}

// Run executes the full greedy cover loop on the given tumor/normal
// matrices. The matrices must share the gene dimension. Run never modifies
// its inputs: BitSplicing operates on an internal copy.
func Run(tumor, normal *bitmat.Matrix, opt Options) (*Result, error) {
	return RunCtx(context.Background(), tumor, normal, opt)
}

// RunCtx is Run with cancellation: the context is threaded down to the
// enumeration workers, which check it before claiming each λ-partition, so
// cancellation latency is one partition rather than a full enumeration
// pass (for 4-hit runs the difference between seconds and days). On
// cancellation the partial result accumulated so far — including the
// combinations evaluated before the cutoff — is returned together with
// the context's error; the caller can checkpoint completed iterations
// (see Checkpoint) and resume later.
func RunCtx(ctx context.Context, tumor, normal *bitmat.Matrix, opt Options) (*Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if tumor.Genes() != normal.Genes() {
		return nil, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if tumor.Genes() < opt.Hits {
		return nil, fmt.Errorf("cover: %d genes cannot form %d-hit combinations",
			tumor.Genes(), opt.Hits)
	}
	if tumor.Samples() == 0 {
		return nil, fmt.Errorf("cover: no tumor samples")
	}

	nt := tumor.Samples()
	res := &Result{Options: opt}
	start := time.Now()

	// Normal-side counts never change across iterations.
	cur := tumor
	active := bitmat.AllOnes(nt) // meaningful only when not splicing
	if opt.BitSplice {
		cur = tumor.Clone()
	}
	coverBuf := make([]uint64, cur.Words())

	for iter := 0; opt.MaxIterations == 0 || iter < opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		remaining := active.PopCount()
		if opt.BitSplice {
			remaining = cur.Samples()
			// The spliced matrix holds only active samples, so the mask
			// passed to the kernels is all-ones at the current width.
			active = bitmat.AllOnes(remaining)
		}
		if remaining == 0 {
			break
		}
		iterStart := time.Now()
		// The denominator stays pinned to the original cohort size so F
		// values remain comparable across iterations whether or not
		// BitSplicing shrinks the working matrix.
		best, evaluated, err := findBest(ctx, cur, active, normal, opt, float64(nt+normal.Samples()))
		res.Evaluated += evaluated
		if err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		if best == reduce.None {
			break
		}

		// Which active tumor samples does the winner cover?
		if len(coverBuf) != cur.Words() {
			coverBuf = make([]uint64, cur.Words())
		}
		covered := cur.ComboVec(coverBuf, best.GeneIDs()...)
		if !opt.BitSplice {
			covered = active.AndPopCount(coverBuf)
		}
		if covered == 0 {
			// The best combination covers nothing: the remaining samples
			// have fewer than h mutated genes and are uncoverable.
			res.Uncoverable = remaining
			break
		}
		res.Covered += covered

		var activeAfter int
		if opt.BitSplice {
			remove := vecFromWords(cur.Samples(), coverBuf)
			cur = cur.Splice(remove)
			activeAfter = cur.Samples()
		} else {
			cov := vecFromWords(nt, coverBuf)
			cov.And(active)
			active.AndNot(cov)
			activeAfter = active.PopCount()
		}

		step := Step{
			Combo:        best,
			NewlyCovered: covered,
			ActiveAfter:  activeAfter,
			Evaluated:    evaluated,
			Elapsed:      time.Since(iterStart),
		}
		res.Steps = append(res.Steps, step)
		if opt.Progress != nil {
			opt.Progress(step)
		}
		if opt.CheckpointEvery > 0 && opt.OnCheckpoint != nil &&
			len(res.Steps)%opt.CheckpointEvery == 0 {
			// Checkpoints bind to the ORIGINAL matrices (not the working
			// splice), so a BitSplice run's checkpoint resumes cleanly in
			// mask mode.
			opt.OnCheckpoint(res.ToCheckpoint(tumor, normal))
		}
		if activeAfter == 0 {
			break
		}
	}
	if res.Uncoverable == 0 {
		if opt.BitSplice {
			res.Uncoverable = cur.Samples()
		} else {
			res.Uncoverable = active.PopCount()
		}
		if opt.MaxIterations > 0 && len(res.Steps) == opt.MaxIterations {
			// Stopped by the iteration cap, not by exhaustion; the
			// remaining samples may still be coverable.
			res.Uncoverable = 0
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// vecFromWords wraps packed words into a Vec of length n.
func vecFromWords(n int, words []uint64) *bitmat.Vec {
	v := bitmat.NewVec(n)
	copy(v.Words(), words)
	return v
}

// FindBest runs a single enumeration pass (one iteration's step 1–2) and
// returns the best combination and the number of combinations evaluated.
// The active vector selects which tumor samples still count toward TP; pass
// nil for all. Exported for benchmarks and the simulator's per-iteration
// accounting.
func FindBest(tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options) (reduce.Combo, uint64, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return reduce.None, 0, err
	}
	if tumor.Genes() != normal.Genes() {
		return reduce.None, 0, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	return findBest(context.Background(), tumor, active, normal, opt,
		float64(tumor.Samples()+normal.Samples()))
}

// FindBestRange runs the scheme kernel over a single λ-range [lo, hi) of
// the combination space and returns that range's best combination and
// evaluated count. It is the per-GPU unit of work in the distributed
// pipeline: each MPI rank calls it for the partitions its GPUs own and
// reduces the results (see internal/cluster). The λ-domain size is
// C(G, 2) for SchemePair/2x1/2x2 and C(G, 3) for 3x1.
func FindBestRange(tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options, lo, hi uint64) (reduce.Combo, uint64, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return reduce.None, 0, err
	}
	if tumor.Genes() != normal.Genes() {
		return reduce.None, 0, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	if hi < lo {
		return reduce.None, 0, fmt.Errorf("cover: inverted range [%d, %d)", lo, hi)
	}
	if lo == hi {
		return reduce.None, 0, nil
	}
	env := &kernelEnv{
		tumor:  tumor,
		normal: normal,
		active: active,
		alpha:  opt.Alpha,
		denom:  float64(tumor.Samples() + normal.Samples()),
		nn:     normal.Samples(),
	}
	best, n := runKernel(context.Background(), env, opt, sched.Partition{Lo: lo, Hi: hi})
	return best, n, nil
}

// findBest partitions the λ-domain, runs the scheme kernel across a worker
// pool, and reduces the winners. The domain is cut into more partitions
// than workers (4× oversubscription) and workers claim them through an
// atomic counter, checking the context before each claim — cancellation
// latency is therefore one partition, not one full pass. On cancellation
// the combinations already evaluated are still counted and the context's
// error is returned. Chunking does not change the result: the reduction is
// a deterministic total order (reduce.Combo.Better), independent of how
// the domain is partitioned.
func findBest(ctx context.Context, tumor *bitmat.Matrix, active *bitmat.Vec, normal *bitmat.Matrix, opt Options, denom float64) (reduce.Combo, uint64, error) {
	g := uint64(tumor.Genes())
	var curve sched.Curve
	switch opt.Scheme {
	case SchemePair:
		curve = sched.NewFlat(combinat.PairCount(g))
	case Scheme2x1:
		curve = sched.NewTri2x1(g)
	case Scheme2x2:
		curve = sched.NewTri2x2(g)
	case Scheme3x1:
		curve = sched.NewTetra3x1(g)
	case Scheme1x3:
		curve = sched.NewLin1x3(g)
	case Scheme4x1:
		curve = sched.NewFlat(combinat.QuadCount(g))
	default:
		// Scheme arrives from CLI flags and config files; an unknown value
		// is untrusted input, not a programmer error.
		return reduce.None, 0, fmt.Errorf("cover: unresolved scheme %v", opt.Scheme)
	}

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	// Oversubscribe: more partitions than workers bounds cancellation
	// latency to a quarter of a worker's share.
	chunks := workers * 4
	var parts []sched.Partition
	var err error
	if opt.Scheduler == EquiDistance {
		parts, err = sched.EquiDistance(curve, chunks)
	} else {
		parts, err = sched.EquiArea(curve, chunks)
	}
	if err != nil {
		return reduce.None, 0, err
	}

	env := &kernelEnv{
		tumor:  tumor,
		normal: normal,
		active: active,
		alpha:  opt.Alpha,
		denom:  denom,
		nn:     normal.Samples(),
	}

	bests := make([]reduce.Combo, len(parts))
	for i := range bests {
		bests[i] = reduce.None
	}
	counts := make([]uint64, len(parts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				if parts[i].Size() == 0 {
					continue
				}
				bests[i], counts[i] = runKernel(ctx, env, opt, parts[i])
			}
		}()
	}
	wg.Wait()

	var total uint64
	for _, c := range counts {
		total += c
	}
	// Rank-0 reduction across workers. On cancellation the reduction over
	// the completed partitions is still returned alongside the error so
	// callers can account the partial work.
	return reduce.Max(bests), total, ctx.Err()
}

// kernelEnv bundles the per-iteration read-only state shared by workers.
type kernelEnv struct {
	tumor  *bitmat.Matrix
	normal *bitmat.Matrix
	active *bitmat.Vec
	alpha  float64
	denom  float64
	nn     int
}

// score computes F from a TP and a normal-side AND count.
func (e *kernelEnv) score(tp, normalHits int) float64 {
	tn := e.nn - normalHits
	return (e.alpha*float64(tp) + float64(tn)) / e.denom
}

// runKernel dispatches the scheme kernel over one λ-partition, folding
// per-thread results through block reduction and a tree reduction, exactly
// mirroring the maxF / parallelReduceMax kernel pair. A canceled context
// skips the partition entirely (one partition is the cancellation
// granularity; the kernels themselves never block).
func runKernel(ctx context.Context, env *kernelEnv, opt Options, part sched.Partition) (reduce.Combo, uint64) {
	if ctx.Err() != nil {
		return reduce.None, 0
	}
	var blockBests []reduce.Combo
	blockBest := reduce.None
	inBlock := 0
	flush := func() {
		if inBlock > 0 {
			blockBests = append(blockBests, blockBest)
			blockBest = reduce.None
			inBlock = 0
		}
	}
	observe := func(c reduce.Combo) {
		if c.Better(blockBest) {
			blockBest = c
		}
		inBlock++
		if inBlock == opt.BlockSize {
			flush()
		}
	}

	var evaluated uint64
	switch opt.Scheme {
	case SchemePair:
		evaluated = kernelPair(env, part, observe)
	case Scheme2x1:
		evaluated = kernel2x1(env, opt, part, observe)
	case Scheme2x2:
		evaluated = kernel2x2(env, part, observe)
	case Scheme3x1:
		evaluated = kernel3x1(env, part, observe)
	case Scheme1x3:
		evaluated = kernel1x3(env, part, observe)
	case Scheme4x1:
		evaluated = kernel4x1(env, part, observe)
	}
	flush()
	return reduce.TreeReduce(blockBests), evaluated
}
