// Package cover implements the paper's primary contribution: the
// approximate weighted-set-cover (WSC) algorithm that discovers multi-hit
// combinations of genes differentiating tumor from normal samples, restructured
// for massively parallel execution.
//
// One iteration of the algorithm (Sec. II-B):
//
//  1. enumerate every h-gene combination and score it with
//     F = (α·TP + TN) / (Nt + Nn), α = 0.1;
//  2. take the combination with maximum F;
//  3. exclude ("cover") the tumor samples containing it;
//
// repeating until every tumor sample is covered. TP is the number of
// still-active tumor samples mutated in all h genes; TN is the number of
// normal samples NOT mutated in all h genes.
//
// The parallel engine reproduces the paper's execution structure on CPU
// cores standing in for GPUs: the combination space is flattened to a
// linear thread id λ through the triangular/tetrahedral maps (package
// combinat), λ-ranges are assigned to workers by the equi-area or
// equi-distance scheduler (package sched), each worker folds its threads'
// scores through per-block single-stage reduction followed by a tree
// reduction (package reduce), and the winners are reduced across workers —
// the same maxF → parallelReduceMax → rank-0 topology as the CUDA/MPI
// implementation. All reductions share one deterministic total order, so
// every scheme, scheduler and worker count returns the identical cover.
package cover

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/failpoint"
	"repro/internal/kernelize"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// DefaultAlpha is the paper's true-positive penalty term α.
const DefaultAlpha = 0.1

// DefaultBlockSize is the paper's CUDA thread-block size, used for the
// in-block reduction stage.
const DefaultBlockSize = 512

// Scheme selects the loop-flattening parallelization scheme (Sec. III-A).
type Scheme int

const (
	// SchemeAuto picks the paper's production scheme for the hit count:
	// flat pairs for h=2, 2x1 for h=3, 3x1 for h=4.
	SchemeAuto Scheme = iota
	// SchemePair is the 2-hit kernel: C(G,2) threads, one combination each.
	SchemePair
	// Scheme2x1 is the 3-hit kernel of Algorithm 1: C(G,2) threads, each
	// running one inner loop over k.
	Scheme2x1
	// Scheme2x2 is the 4-hit kernel of Algorithm 2: C(G,2) threads, each
	// running a depth-2 nested loop over (k, l).
	Scheme2x2
	// Scheme3x1 is the 4-hit kernel of Algorithm 3: C(G,3) threads, each
	// running one inner loop over l.
	Scheme3x1
	// Scheme1x3 is the 4-hit scheme the paper defines but rejects for its
	// limited parallelism: G threads, each running a depth-3 nested loop.
	Scheme1x3
	// Scheme4x1 is the fully flattened 4-hit scheme the paper defines but
	// rejects: C(G,4) threads, one combination each.
	Scheme4x1
)

// String names the scheme as the paper does.
func (s Scheme) String() string {
	switch s {
	case SchemeAuto:
		return "auto"
	case SchemePair:
		return "pair"
	case Scheme2x1:
		return "2x1"
	case Scheme2x2:
		return "2x2"
	case Scheme3x1:
		return "3x1"
	case Scheme1x3:
		return "1x3"
	case Scheme4x1:
		return "4x1"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// hits returns the hit count a scheme serves.
func (s Scheme) hits() int {
	switch s {
	case SchemePair:
		return 2
	case Scheme2x1:
		return 3
	case Scheme2x2, Scheme3x1, Scheme1x3, Scheme4x1:
		return 4
	}
	return 0
}

// prunable reports whether the scheme's kernel has an inner loop a prefix
// bound can skip. The fully flattened pair and 4x1 kernels score exactly
// one combination per thread: nothing is loop-invariant, so there is
// nothing to prune.
func (s Scheme) prunable() bool {
	switch s {
	case Scheme2x1, Scheme2x2, Scheme3x1, Scheme1x3:
		return true
	}
	return false
}

// Scheduler selects the λ-range partitioner.
type Scheduler int

const (
	// EquiArea is the paper's scheduler: equal work per worker.
	EquiArea Scheduler = iota
	// EquiDistance is the naive baseline: equal thread count per worker.
	EquiDistance
)

// String returns "EA" or "ED".
func (s Scheduler) String() string {
	if s == EquiDistance {
		return "ED"
	}
	return "EA"
}

// Options configures a discovery run.
type Options struct {
	// Hits is the combination size h (2–4 for the parallel engine).
	Hits int
	// Alpha is the true-positive penalty; 0 means DefaultAlpha.
	Alpha float64
	// Scheme selects the parallelization scheme; SchemeAuto matches Hits.
	Scheme Scheme
	// Workers is the number of parallel workers (virtual GPUs); 0 means
	// GOMAXPROCS.
	Workers int
	// BlockSize is the in-block reduction width; 0 means DefaultBlockSize.
	BlockSize int
	// Scheduler selects EA (default) or ED partitioning.
	Scheduler Scheduler
	// MemOpt1 hoists the row for gene i out of the 3-hit inner loop;
	// MemOpt2 additionally hoists (and pre-folds) the row for gene j.
	// They reproduce the Fig. 5 ablation and apply to the 3-hit kernel;
	// the 2x2/3x1 4-hit kernels always run fully prefetched, as in the
	// paper's production configuration.
	MemOpt1, MemOpt2 bool
	// BitSplice physically splices covered tumor samples out of the matrix
	// after each iteration instead of masking them.
	BitSplice bool
	// Kernelize shrinks the instance before enumeration
	// (internal/kernelize, docs/KERNELIZATION.md): duplicate sample
	// columns merge into weighted columns, dominated genes leave G, and
	// between iterations genes whose best-case solo score cannot reach
	// the previous winner's re-scored F are dropped for that pass. Every
	// reduction preserves the tie-broken winner bit-identically; dropped
	// combinations count as Pruned, so Scanned stays C(G, h) per pass.
	// Mutually exclusive with BitSplice (the kernel owns the sample axis).
	Kernelize bool
	// Engine selects the scan representation (docs/SPARSE.md):
	// EngineAuto (zero value) measures the instance's density after
	// kernelization and picks per scheme, EngineDense forces the packed
	// bit-matrix kernels, EngineSparse forces the sorted-index merge
	// kernels. Purely an execution knob: winners, Counts, and checkpoints
	// are bit-identical across engines, so checkpoints do not record it
	// and the service result cache canonicalizes it away. Sparse requires
	// a prunable scheme (2x1/2x2/3x1/1x3) and is mutually exclusive with
	// BitSplice (ErrSparseBitSplice).
	Engine Engine
	// NoPrune disables the bound-and-prune layer (docs/PRUNING.md): the
	// process-wide shared incumbent, the kernels' prefix upper-bound
	// checks, and the per-iteration gene compaction of BitSplice runs.
	// Pruning never changes which combinations are returned — only how
	// many are scored — so NoPrune exists for differential testing and for
	// measuring the pruning ratio against an exhaustive scan.
	NoPrune bool
	// MaxIterations bounds the number of combinations reported; 0 means
	// run until every coverable tumor sample is covered.
	MaxIterations int
	// Progress, when non-nil, is called after each iteration with the
	// step just taken — long runs report as they go. The callback runs on
	// the caller's goroutine; the Step is complete except for Elapsed of
	// later steps.
	Progress func(Step)
	// CheckpointEvery, when positive, invokes OnCheckpoint after every
	// CheckpointEvery-th completed iteration with a checkpoint of the run
	// so far. 0 disables the cadence.
	CheckpointEvery int
	// OnCheckpoint receives the cadence checkpoints. It runs on the
	// caller's goroutine; a slow callback lengthens the run. Ignored when
	// CheckpointEvery is 0.
	OnCheckpoint func(*Checkpoint)
}

// withDefaults resolves zero values and validates.
func (o Options) withDefaults() (Options, error) {
	if o.Hits == 0 && o.Scheme != SchemeAuto {
		o.Hits = o.Scheme.hits()
	}
	if o.Hits < 2 || o.Hits > 4 {
		return o, fmt.Errorf("cover: Hits must be 2, 3 or 4, got %d", o.Hits)
	}
	if o.Scheme == SchemeAuto {
		switch o.Hits {
		case 2:
			o.Scheme = SchemePair
		case 3:
			o.Scheme = Scheme2x1
		case 4:
			o.Scheme = Scheme3x1
		}
	}
	if o.Scheme.hits() != o.Hits {
		return o, fmt.Errorf("cover: scheme %s serves %d hits, Options.Hits is %d",
			o.Scheme, o.Scheme.hits(), o.Hits)
	}
	if o.Alpha == 0 {
		o.Alpha = DefaultAlpha
	}
	if o.Alpha < 0 {
		return o, fmt.Errorf("cover: Alpha must be non-negative, got %g", o.Alpha)
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Workers < 0 {
		return o, fmt.Errorf("cover: Workers must be non-negative, got %d", o.Workers)
	}
	if o.BlockSize == 0 {
		o.BlockSize = DefaultBlockSize
	}
	if o.BlockSize < 0 {
		return o, fmt.Errorf("cover: BlockSize must be non-negative, got %d", o.BlockSize)
	}
	if o.CheckpointEvery < 0 {
		return o, fmt.Errorf("cover: CheckpointEvery must be non-negative, got %d", o.CheckpointEvery)
	}
	if o.Kernelize && o.BitSplice {
		return o, fmt.Errorf("cover: Kernelize and BitSplice are mutually exclusive")
	}
	if o.Engine < EngineAuto || o.Engine > EngineSparse {
		return o, fmt.Errorf("cover: unknown engine %d", o.Engine)
	}
	if o.Engine == EngineSparse && o.BitSplice {
		return o, ErrSparseBitSplice
	}
	if o.Engine == EngineSparse && !o.Scheme.sparseCapable() {
		return o, fmt.Errorf("cover: scheme %s has no sparse kernel (only 2x1, 2x2, 3x1 and 1x3 do)", o.Scheme)
	}
	return o, nil
}

// Step records one iteration of the cover loop.
type Step struct {
	// Combo is the winning combination of the iteration.
	Combo reduce.Combo
	// NewlyCovered is the number of previously-active tumor samples the
	// combination covers.
	NewlyCovered int
	// ActiveAfter is the number of tumor samples still uncovered after
	// this iteration.
	ActiveAfter int
	// Evaluated is the number of combinations actually scored this
	// iteration.
	Evaluated uint64
	// Pruned is the number of combinations skipped by bound-and-prune this
	// iteration (including whole gene-compaction eliminations). The sum
	// Evaluated + Pruned is deterministic — it equals the enumeration size
	// of the pass(es) — while the split between the two depends on worker
	// timing: an incumbent that arrives earlier prunes more.
	Pruned uint64
	// Elapsed is the wall-clock time of the iteration.
	Elapsed time.Duration
}

// Result is a full discovery run.
type Result struct {
	// Steps lists the chosen combinations in greedy order.
	Steps []Step
	// Covered is the total number of tumor samples covered.
	Covered int
	// Uncoverable is the number of tumor samples no h-combination covers
	// (samples with fewer than h mutated genes can never be covered).
	Uncoverable int
	// Evaluated is the total number of combinations actually scored.
	Evaluated uint64
	// Pruned is the total number of combinations skipped by
	// bound-and-prune. Evaluated + Pruned is the work an exhaustive run
	// would have done.
	Pruned uint64
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
	// KernelFingerprint identifies the reduction a Kernelize run scanned
	// under (kernelize.Kernel.Fingerprint); zero when Kernelize is off.
	// Checkpoints carry it so resume can verify it rebuilt the same kernel.
	KernelFingerprint uint64
	// Options echoes the resolved configuration.
	Options Options
}

// Combos returns the chosen combinations in order.
func (r *Result) Combos() []reduce.Combo {
	out := make([]reduce.Combo, len(r.Steps))
	for i, s := range r.Steps {
		out[i] = s.Combo
	}
	return out
}

// Run executes the full greedy cover loop on the given tumor/normal
// matrices. The matrices must share the gene dimension. Run never modifies
// its inputs: BitSplicing operates on an internal copy.
func Run(tumor, normal *bitmat.Matrix, opt Options) (*Result, error) {
	return RunCtx(context.Background(), tumor, normal, opt)
}

// RunCtx is Run with cancellation: the context is threaded down to the
// enumeration workers, which check it before claiming each λ-partition, so
// cancellation latency is one partition rather than a full enumeration
// pass (for 4-hit runs the difference between seconds and days). On
// cancellation the partial result accumulated so far — including the
// combinations evaluated before the cutoff — is returned together with
// the context's error; the caller can checkpoint completed iterations
// (see Checkpoint) and resume later.
func RunCtx(ctx context.Context, tumor, normal *bitmat.Matrix, opt Options) (*Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if tumor.Genes() != normal.Genes() {
		return nil, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if tumor.Genes() < opt.Hits {
		return nil, fmt.Errorf("cover: %d genes cannot form %d-hit combinations",
			tumor.Genes(), opt.Hits)
	}
	if tumor.Samples() == 0 {
		return nil, fmt.Errorf("cover: no tumor samples")
	}

	nt := tumor.Samples()
	res := &Result{Options: opt}
	start := time.Now()

	if opt.Kernelize {
		kern, kerr := kernelize.Reduce(tumor, normal, opt.Hits)
		if kerr != nil {
			return nil, kerr
		}
		res.KernelFingerprint = kern.Fingerprint()
		// Auto resolves against the post-kernelization matrices — the ones
		// the kernels actually scan — and the resolved engine lands in
		// res.Options as provenance.
		opt.Engine = ResolveEngine(opt, kern.Tumor, kern.Normal)
		res.Options = opt
		kactive := bitmat.AllOnes(kern.Tumor.Samples())
		err = greedyKernelized(ctx, tumor, normal, kern, kactive, reduce.None, opt, res)
		res.Elapsed = time.Since(start)
		return res, err
	}

	opt.Engine = ResolveEngine(opt, tumor, normal)
	res.Options = opt

	// Normal-side counts never change across iterations.
	cur := tumor
	active := bitmat.AllOnes(nt) // meaningful only when not splicing
	if opt.BitSplice {
		cur = tumor.Clone()
	}
	coverBuf := make([]uint64, cur.Words())

	for iter := 0; opt.MaxIterations == 0 || iter < opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		remaining := active.PopCount()
		if opt.BitSplice {
			remaining = cur.Samples()
			// The spliced matrix holds only active samples, so the mask
			// passed to the kernels is all-ones at the current width.
			active = bitmat.AllOnes(remaining)
		}
		if remaining == 0 {
			break
		}
		iterStart := time.Now()
		// The denominator stays pinned to the original cohort size so F
		// values remain comparable across iterations whether or not
		// BitSplicing shrinks the working matrix.
		denom := float64(nt + normal.Samples())

		// Gene compaction (docs/PRUNING.md): once splicing has removed all
		// tumor samples a gene was mutated in, no combination containing it
		// can have TP > 0, so the search runs on the surviving genes only
		// and every dropped combination counts as pruned.
		searchT, searchN := cur, normal
		var keep []int
		if opt.BitSplice && !opt.NoPrune {
			keep = compactKeep(cur) // nil when no gene can be dropped
			if keep != nil && len(keep) < opt.Hits {
				// Every h-combination would include an all-zero tumor row,
				// so TP = 0 across the board: the remaining samples are
				// uncoverable and the whole pass is pruned.
				d, derr := domainSizeChecked(cur.Genes(), opt.Hits)
				if derr != nil {
					res.Elapsed = time.Since(start)
					return res, derr
				}
				res.Pruned += d
				res.Uncoverable = remaining
				break
			}
			if keep != nil {
				searchT = cur.SelectRows(keep)
				searchN = normal.SelectRows(keep)
			}
		}

		best, cnt, err := findBest(ctx, searchT, active, searchN, nil, nil, opt, denom)
		if err == nil && keep != nil {
			full, ferr := domainSizeChecked(cur.Genes(), opt.Hits)
			if ferr == nil {
				var sub uint64
				sub, ferr = domainSizeChecked(searchT.Genes(), opt.Hits)
				if ferr == nil {
					cnt.Pruned += full - sub
				}
			}
			if ferr != nil {
				res.Evaluated += cnt.Evaluated
				res.Pruned += cnt.Pruned
				res.Elapsed = time.Since(start)
				return res, ferr
			}
			if best != reduce.None && best.StrictlyAbove(float64(normal.Samples())/denom) {
				// The compacted winner's F exceeds score(0, 0), which every
				// dropped-gene combination is capped at, so it wins the full
				// domain outright; remap its gene ids back.
				best = remapCombo(best, keep)
			} else {
				// A dropped-gene combination could tie the compacted winner
				// on F and beat it lexicographically: rescan the full
				// domain so the tie-break is exact.
				var cnt2 Counts
				best, cnt2, err = findBest(ctx, cur, active, normal, nil, nil, opt, denom)
				cnt.Evaluated += cnt2.Evaluated
				cnt.Pruned += cnt2.Pruned
			}
		}
		res.Evaluated += cnt.Evaluated
		res.Pruned += cnt.Pruned
		if err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		if best == reduce.None {
			break
		}

		// Which active tumor samples does the winner cover?
		if len(coverBuf) != cur.Words() {
			coverBuf = make([]uint64, cur.Words())
		}
		covered := cur.ComboVec(coverBuf, best.GeneIDs()...)
		if !opt.BitSplice {
			covered = active.AndPopCount(coverBuf)
		}
		if covered == 0 {
			// The best combination covers nothing: the remaining samples
			// have fewer than h mutated genes and are uncoverable.
			res.Uncoverable = remaining
			break
		}
		res.Covered += covered

		var activeAfter int
		if opt.BitSplice {
			if err := failpoint.Check("cover/splice"); err != nil {
				res.Elapsed = time.Since(start)
				return res, err
			}
			remove := vecFromWords(cur.Samples(), coverBuf)
			cur = cur.Splice(remove)
			activeAfter = cur.Samples()
		} else {
			cov := vecFromWords(nt, coverBuf)
			cov.And(active)
			active.AndNot(cov)
			activeAfter = active.PopCount()
		}

		step := Step{
			Combo:        best,
			NewlyCovered: covered,
			ActiveAfter:  activeAfter,
			Evaluated:    cnt.Evaluated,
			Pruned:       cnt.Pruned,
			Elapsed:      time.Since(iterStart),
		}
		res.Steps = append(res.Steps, step)
		if opt.Progress != nil {
			opt.Progress(step)
		}
		if opt.CheckpointEvery > 0 && opt.OnCheckpoint != nil &&
			len(res.Steps)%opt.CheckpointEvery == 0 {
			// Checkpoints bind to the ORIGINAL matrices (not the working
			// splice), so a BitSplice run's checkpoint resumes cleanly in
			// mask mode.
			opt.OnCheckpoint(res.ToCheckpoint(tumor, normal))
		}
		if activeAfter == 0 {
			break
		}
	}
	if res.Uncoverable == 0 {
		if opt.BitSplice {
			res.Uncoverable = cur.Samples()
		} else {
			res.Uncoverable = active.PopCount()
		}
		if opt.MaxIterations > 0 && len(res.Steps) == opt.MaxIterations {
			// Stopped by the iteration cap, not by exhaustion; the
			// remaining samples may still be coverable.
			res.Uncoverable = 0
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// vecFromWords wraps packed words into a Vec of length n.
func vecFromWords(n int, words []uint64) *bitmat.Vec {
	v := bitmat.NewVec(n)
	copy(v.Words(), words)
	return v
}

// compactKeep returns the ascending gene indices whose tumor rows still
// carry at least one active sample, or nil when no gene can be dropped.
// The keep list stays ascending, so remapping compacted gene ids back
// through it preserves both strict ordering inside a combination and the
// lexicographic order between combinations. The common no-drop iteration
// allocates nothing: the keep slice materializes only after the first
// droppable row is seen.
func compactKeep(tumor *bitmat.Matrix) []int {
	g := tumor.Genes()
	var keep []int
	for i := 0; i < g; i++ {
		if tumor.RowPopCount(i) == 0 {
			if keep == nil {
				keep = make([]int, 0, g-1)
				for j := 0; j < i; j++ {
					keep = append(keep, j)
				}
			}
			continue
		}
		if keep != nil {
			keep = append(keep, i)
		}
	}
	return keep
}

// remapCombo translates a combination found on a compacted matrix back to
// the original gene ids through the keep list.
func remapCombo(c reduce.Combo, keep []int) reduce.Combo {
	for i, g := range c.Genes {
		if g >= 0 {
			c.Genes[i] = int32(keep[g])
		}
	}
	return c
}

// domainSize returns C(genes, hits) — the enumeration size of one full
// pass — with an overflow flag.
func domainSize(genes, hits int) (uint64, bool) {
	return combinat.Binomial(uint64(genes), uint64(hits))
}

// domainSizeChecked is domainSize for callers with an error path: a wrapped
// domain must never be scanned or accounted, so overflow is an error, not a
// silently dropped tally.
func domainSizeChecked(genes, hits int) (uint64, error) {
	d, ok := domainSize(genes, hits)
	if !ok {
		return 0, fmt.Errorf("cover: domain C(%d, %d) overflows uint64", genes, hits)
	}
	return d, nil
}

// Counts tallies the work of an enumeration scan. The total Scanned is
// deterministic — every combination of the domain is either scored or
// provably dominated — while the Evaluated/Pruned split varies run to run
// with more than one worker, because it depends on when the shared
// incumbent rises.
type Counts struct {
	// Evaluated is the number of combinations actually scored.
	Evaluated uint64
	// Pruned is the number of combinations skipped because their prefix's
	// upper bound fell strictly below the shared incumbent.
	Pruned uint64
}

// Scanned returns the combinations accounted for: Evaluated + Pruned,
// which equals the enumeration size of the scanned λ-domain.
func (c Counts) Scanned() uint64 { return c.Evaluated + c.Pruned }

// add accumulates another scan's counts.
func (c *Counts) add(o Counts) {
	c.Evaluated += o.Evaluated
	c.Pruned += o.Pruned
}

// FindBest runs a single enumeration pass (one iteration's step 1–2) and
// returns the best combination and the scan's work counts. The active
// vector selects which tumor samples still count toward TP; pass nil for
// all. Exported for benchmarks and the simulator's per-iteration
// accounting.
func FindBest(tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options) (reduce.Combo, Counts, error) {
	return FindBestCtx(context.Background(), tumor, normal, active, opt)
}

// FindBestCtx is FindBest under a caller-supplied context. Workers observe
// cancellation between partitions, so a cancelled pass returns within one
// partition of work with the partial counts and the context's error —
// the variant iteration drivers (internal/cluster) must call so a cancelled
// campaign stops mid-pass instead of finishing the leg.
func FindBestCtx(ctx context.Context, tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options) (reduce.Combo, Counts, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return reduce.None, Counts{}, err
	}
	if tumor.Genes() != normal.Genes() {
		return reduce.None, Counts{}, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	return findBest(ctx, tumor, active, normal, nil, nil, opt,
		float64(tumor.Samples()+normal.Samples()))
}

// FindBestRange runs the scheme kernel over a single λ-range [lo, hi) of
// the combination space and returns that range's best combination and
// work counts. It is the per-GPU unit of work in the distributed
// pipeline: each MPI rank calls it for the partitions its GPUs own and
// reduces the results (see internal/cluster). The λ-domain size is
// C(G, 2) for SchemePair/2x1/2x2 and C(G, 3) for 3x1. Pruning uses a
// range-local incumbent (distributed callers share no memory), so a lone
// range prunes less than a full FindBest over the same domain — but
// returns the identical winner.
func FindBestRange(tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options, lo, hi uint64) (reduce.Combo, Counts, error) {
	return FindBestRangeCtx(context.Background(), tumor, normal, active, opt, lo, hi)
}

// FindBestRangeCtx is FindBestRange under a caller-supplied context. The
// kernel checks the context at its partition-internal stripe boundaries, so
// a cancelled rank abandons the range within one stripe and returns
// ctx.Err() alongside the partial counts.
func FindBestRangeCtx(ctx context.Context, tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options, lo, hi uint64) (reduce.Combo, Counts, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return reduce.None, Counts{}, err
	}
	if tumor.Genes() != normal.Genes() {
		return reduce.None, Counts{}, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	if hi < lo {
		return reduce.None, Counts{}, fmt.Errorf("cover: inverted range [%d, %d)", lo, hi)
	}
	if lo == hi {
		return reduce.None, Counts{}, nil
	}
	env := newKernelEnv(tumor, normal, active, nil, nil, opt.Alpha,
		float64(tumor.Samples()+normal.Samples()))
	if !opt.NoPrune && opt.Scheme.prunable() {
		env.shared = reduce.NewSharedBest()
	}
	s := newKernelScratch(tumor.Words(), normal.Words())
	if resolveEngine(&opt, tumor, normal) == EngineSparse {
		env.sparse = newSparseEnv(tumor, normal, active, nil, nil)
		s.ensureSparse(env.sparse)
	}
	best, n := runKernel(ctx, env, opt, sched.Partition{Lo: lo, Hi: hi}, s)
	return best, n, ctx.Err()
}

// findBest partitions the λ-domain, runs the scheme kernel across a worker
// pool, and reduces the winners. The domain is cut into more partitions
// than workers (4× oversubscription) and workers claim them through an
// atomic counter, checking the context before each claim — cancellation
// latency is therefore one partition, not one full pass. On cancellation
// the combinations already evaluated are still counted and the context's
// error is returned. Chunking does not change the result: the reduction is
// a deterministic total order (reduce.Combo.Better), independent of how
// the domain is partitioned.
//
// Unless NoPrune is set, the workers share one incumbent (reduce.SharedBest)
// that the kernels raise as they find better combinations and consult to
// skip strictly dominated inner loops. The winner is unaffected: the
// incumbent's F never exceeds the true maximum (it is always some scored
// combination's F), pruning is strict, and the partition holding the true
// winner therefore never skips it — only the Evaluated/Pruned split is
// timing-dependent. Each worker also owns one kernelScratch for its whole
// lifetime, so a pass allocates O(workers) buffers, not O(partitions).
func findBest(ctx context.Context, tumor *bitmat.Matrix, active *bitmat.Vec, normal *bitmat.Matrix, tw, nw *bitmat.Weights, opt Options, denom float64) (reduce.Combo, Counts, error) {
	if err := failpoint.Check("cover/scan"); err != nil {
		return reduce.None, Counts{}, err
	}
	curve, err := schemeCurve(uint64(tumor.Genes()), opt.Scheme)
	if err != nil {
		return reduce.None, Counts{}, err
	}

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	// Oversubscribe: more partitions than workers bounds cancellation
	// latency to a quarter of a worker's share.
	chunks := workers * 4
	var parts []sched.Partition
	if opt.Scheduler == EquiDistance {
		parts, err = sched.EquiDistance(curve, chunks)
	} else {
		parts, err = sched.EquiArea(curve, chunks)
	}
	if err != nil {
		return reduce.None, Counts{}, err
	}

	env := newKernelEnv(tumor, normal, active, tw, nw, opt.Alpha, denom)
	if !opt.NoPrune && opt.Scheme.prunable() {
		env.shared = reduce.NewSharedBest()
	}
	if resolveEngine(&opt, tumor, normal) == EngineSparse {
		env.sparse = newSparseEnv(tumor, normal, active, tw, nw)
	}

	bests := make([]reduce.Combo, len(parts))
	for i := range bests {
		bests[i] = reduce.None
	}
	counts := make([]Counts, len(parts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One scratch per worker for its whole lifetime — the kernels
			// themselves allocate nothing per partition.
			s := newKernelScratch(tumor.Words(), normal.Words())
			if env.sparse != nil {
				s.ensureSparse(env.sparse)
			}
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				if parts[i].Size() == 0 {
					continue
				}
				bests[i], counts[i] = runKernel(ctx, env, opt, parts[i], s)
			}
		}()
	}
	wg.Wait()

	var total Counts
	for _, c := range counts {
		total.add(c)
	}
	// Rank-0 reduction across workers. On cancellation the reduction over
	// the completed partitions is still returned alongside the error so
	// callers can account the partial work.
	return reduce.Max(bests), total, ctx.Err()
}

// kernelEnv bundles the per-iteration read-only state shared by workers,
// plus the one mutable rendezvous point: the shared incumbent (nil when
// pruning is off or the scheme has no inner loop to skip). When the
// instance is kernelized, tw/nw carry the merged sample columns'
// multiplicities and every popcount the kernels take routes through the
// weighted helpers below; with nil weights the helpers compile down to
// the plain word sweeps, so the unkernelized hot path is unchanged.
type kernelEnv struct {
	tumor  *bitmat.Matrix
	normal *bitmat.Matrix
	active *bitmat.Vec
	tw     *bitmat.Weights
	nw     *bitmat.Weights
	alpha  float64
	denom  float64
	nn     int
	shared *reduce.SharedBest
	// sparse, when non-nil, carries the CSR views and routes the prunable
	// schemes through the sparse merge kernels (docs/SPARSE.md).
	sparse *sparseEnv
}

// newKernelEnv builds the worker environment. With normal-side weights the
// TN base is the weighted column total — the ORIGINAL normal sample count —
// so F values match the unkernelized run bit for bit.
func newKernelEnv(tumor, normal *bitmat.Matrix, active *bitmat.Vec, tw, nw *bitmat.Weights, alpha, denom float64) *kernelEnv {
	nn := normal.Samples()
	if nw != nil {
		nn = nw.Total()
	}
	return &kernelEnv{
		tumor:  tumor,
		normal: normal,
		active: active,
		tw:     tw,
		nw:     nw,
		alpha:  alpha,
		denom:  denom,
		nn:     nn,
	}
}

// score computes F from a TP and a normal-side AND count.
func (e *kernelEnv) score(tp, normalHits int) float64 {
	tn := e.nn - normalHits
	return (e.alpha*float64(tp) + float64(tn)) / e.denom
}

// tpop2..tpop5 return the (weighted) tumor-side popcount of the AND of the
// given packed rows; npop2..npop4 the normal-side equivalents.
func (e *kernelEnv) tpop2(a, b []uint64) int {
	if e.tw == nil {
		return bitmat.PopAnd2(a, b)
	}
	return e.tw.PopAnd2(a, b)
}

func (e *kernelEnv) tpop3(a, b, c []uint64) int {
	if e.tw == nil {
		return bitmat.PopAnd3(a, b, c)
	}
	return e.tw.PopAnd3(a, b, c)
}

func (e *kernelEnv) tpop4(a, b, c, d []uint64) int {
	if e.tw == nil {
		return bitmat.PopAnd4(a, b, c, d)
	}
	return e.tw.PopAnd4(a, b, c, d)
}

func (e *kernelEnv) tpop5(a, b, c, d, f []uint64) int {
	if e.tw == nil {
		return bitmat.PopAnd5(a, b, c, d, f)
	}
	return e.tw.PopAnd5(a, b, c, d, f)
}

func (e *kernelEnv) npop2(a, b []uint64) int {
	if e.nw == nil {
		return bitmat.PopAnd2(a, b)
	}
	return e.nw.PopAnd2(a, b)
}

func (e *kernelEnv) npop3(a, b, c []uint64) int {
	if e.nw == nil {
		return bitmat.PopAnd3(a, b, c)
	}
	return e.nw.PopAnd3(a, b, c)
}

func (e *kernelEnv) npop4(a, b, c, d []uint64) int {
	if e.nw == nil {
		return bitmat.PopAnd4(a, b, c, d)
	}
	return e.nw.PopAnd4(a, b, c, d)
}

// tfold stores a ∧ b into dst and returns its (weighted) tumor popcount —
// the weighted counterpart of bitmat.AndWordsPop for hoisted prefixes.
func (e *kernelEnv) tfold(dst, a, b []uint64) int {
	if e.tw == nil {
		return bitmat.AndWordsPop(dst, a, b)
	}
	bitmat.AndWords(dst, a, b)
	return e.tw.PopVec(dst)
}

// nfold is tfold on the normal side.
func (e *kernelEnv) nfold(dst, a, b []uint64) int {
	if e.nw == nil {
		return bitmat.AndWordsPop(dst, a, b)
	}
	bitmat.AndWords(dst, a, b)
	return e.nw.PopVec(dst)
}

// offer publishes a thread-best improvement to the shared incumbent so
// other workers can prune against it.
func (e *kernelEnv) offer(c reduce.Combo) {
	if e.shared != nil {
		e.shared.Offer(c)
	}
}

// prune reports whether a prefix with the given tumor popcount is strictly
// dominated by the incumbent. The prefix's upper bound is the score its
// suffix would reach by losing no tumor sample and hitting no normal —
// score(tpPrefix, 0) — valid because F is monotone under AND and score
// itself is monotone in tp, so float rounding cannot invert the bound.
func (e *kernelEnv) prune(tpPrefix int) bool {
	return e.shared != nil && e.shared.ShouldPrune(e.score(tpPrefix, 0))
}

// prune3 is prune for the unfolded 3-hit paths, which have no prefix
// buffer to harvest a popcount from: it pays one extra three-way popcount
// sweep over the prefix rows.
func (e *kernelEnv) prune3(a, b, c []uint64) bool {
	return e.shared != nil && e.shared.ShouldPrune(e.score(e.tpop3(a, b, c), 0))
}

// runKernel dispatches the scheme kernel over one λ-partition, folding
// per-thread results through block reduction and a tree reduction, exactly
// mirroring the maxF / parallelReduceMax kernel pair. A canceled context
// skips the partition entirely (one partition is the cancellation
// granularity; the kernels themselves never block). The scratch provides
// the kernel's fold buffers and the block-reduction output slice, both
// reused across the calling worker's partitions.
func runKernel(ctx context.Context, env *kernelEnv, opt Options, part sched.Partition, s *kernelScratch) (reduce.Combo, Counts) {
	if ctx.Err() != nil {
		return reduce.None, Counts{}
	}
	// Chaos hook into the real scan path: an armed "cover/kernel"
	// failpoint panics or stalls inside the partition, exactly where an
	// OOM kill or a wedged device would strike (docs/ROBUSTNESS.md).
	failpoint.Hit("cover/kernel")
	blockBests := s.blockBests[:0]
	blockBest := reduce.None
	inBlock := 0
	flush := func() {
		if inBlock > 0 {
			blockBests = append(blockBests, blockBest)
			blockBest = reduce.None
			inBlock = 0
		}
	}
	observe := func(c reduce.Combo) {
		if c.Better(blockBest) {
			blockBest = c
		}
		inBlock++
		if inBlock == opt.BlockSize {
			flush()
		}
	}

	var n Counts
	switch opt.Scheme {
	case SchemePair:
		n.Evaluated = kernelPair(env, part, observe)
	case Scheme2x1:
		if env.sparse != nil {
			n = sparse2x1(env, part, s, observe)
		} else {
			n = kernel2x1(env, opt, part, s, observe)
		}
	case Scheme2x2:
		if env.sparse != nil {
			n = sparse2x2(env, part, s, observe)
		} else {
			n = kernel2x2(env, part, s, observe)
		}
	case Scheme3x1:
		if env.sparse != nil {
			n = sparse3x1(env, part, s, observe)
		} else {
			n = kernel3x1(env, part, s, observe)
		}
	case Scheme1x3:
		if env.sparse != nil {
			n = sparse1x3(env, part, s, observe)
		} else {
			n = kernel1x3(env, part, s, observe)
		}
	case Scheme4x1:
		n.Evaluated = kernel4x1(env, part, observe)
	}
	flush()
	s.blockBests = blockBests
	return reduce.TreeReduceInPlace(blockBests), n
}
