package cover_test

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/cover"
)

// A tiny two-hit discovery: two genes co-mutated in three tumor samples
// and absent from normals form the obvious winning combination.
func ExampleRun() {
	tumor := bitmat.New(4, 5)
	normal := bitmat.New(4, 5)
	for _, s := range []int{0, 1, 2} {
		tumor.Set(0, s)
		tumor.Set(2, s)
	}
	tumor.Set(1, 3) // sample 3 has a lone mutation: uncoverable at h=2
	res, err := cover.Run(tumor, normal, cover.Options{Hits: 2, Workers: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(res.Steps[0].Combo.GeneIDs(), res.Covered, res.Uncoverable)
	// Output:
	// [0 2] 3 2
}

// FindBest runs a single enumeration pass — one iteration's argmax.
func ExampleFindBest() {
	tumor := bitmat.New(3, 4)
	normal := bitmat.New(3, 4)
	tumor.Set(0, 0)
	tumor.Set(1, 0)
	tumor.Set(0, 1)
	tumor.Set(1, 1)
	normal.Set(2, 0)
	best, counts, err := cover.FindBest(tumor, normal, nil, cover.Options{Hits: 2, Workers: 1})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(best.GeneIDs(), counts.Evaluated) // C(3,2) = 3 combinations scored
	// Output:
	// [0 1] 3
}
