package cover

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/dataset"
	"repro/internal/reduce"
)

// randomPair builds random tumor/normal matrices.
func randomPair(seed int64, genes, nt, nn int, density float64) (*bitmat.Matrix, *bitmat.Matrix) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(samples int) *bitmat.Matrix {
		m := bitmat.New(genes, samples)
		for g := 0; g < genes; g++ {
			for s := 0; s < samples; s++ {
				if rng.Float64() < density {
					m.Set(g, s)
				}
			}
		}
		return m
	}
	return mk(nt), mk(nn)
}

func TestFindBestMatchesExhaustive(t *testing.T) {
	for _, tc := range []struct {
		hits   int
		scheme Scheme
	}{
		{2, SchemePair},
		{3, Scheme2x1},
		{4, Scheme2x2},
		{4, Scheme3x1},
		{4, Scheme1x3},
		{4, Scheme4x1},
	} {
		for seed := int64(0); seed < 4; seed++ {
			tumor, normal := randomPair(seed, 14, 40, 35, 0.35)
			want, err := ExhaustiveBest(tumor, normal, nil, tc.hits, 0)
			if err != nil {
				t.Fatal(err)
			}
			got, _, err := FindBest(tumor, normal, nil, Options{
				Hits: tc.hits, Scheme: tc.scheme, Workers: 5, BlockSize: 32,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("hits=%d scheme=%s seed=%d: parallel %+v != exhaustive %+v",
					tc.hits, tc.scheme, seed, got, want)
			}
		}
	}
}

func TestFindBestInvariantToWorkersAndBlocks(t *testing.T) {
	tumor, normal := randomPair(9, 16, 50, 45, 0.3)
	base, _, err := FindBest(tumor, normal, nil, Options{Hits: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		for _, bs := range []int{1, 16, 512} {
			for _, sch := range []Scheduler{EquiArea, EquiDistance} {
				got, _, err := FindBest(tumor, normal, nil, Options{
					Hits: 4, Workers: workers, BlockSize: bs, Scheduler: sch,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got != base {
					t.Fatalf("workers=%d block=%d sched=%s: %+v != %+v",
						workers, bs, sch, got, base)
				}
			}
		}
	}
}

func TestSchemesAgreeOn4Hit(t *testing.T) {
	tumor, normal := randomPair(11, 18, 60, 50, 0.3)
	a, _, err := FindBest(tumor, normal, nil, Options{Hits: 4, Scheme: Scheme3x1, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := FindBest(tumor, normal, nil, Options{Hits: 4, Scheme: Scheme2x2, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("3x1 found %+v, 2x2 found %+v", a, b)
	}
}

func TestMemOptsDoNotChangeResults(t *testing.T) {
	tumor, normal := randomPair(13, 15, 45, 40, 0.35)
	var want reduce.Combo
	for i, opt := range []Options{
		{Hits: 3},
		{Hits: 3, MemOpt1: true},
		{Hits: 3, MemOpt1: true, MemOpt2: true},
		{Hits: 3, MemOpt2: true},
	} {
		got, _, err := FindBest(tumor, normal, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			want = got
			continue
		}
		if got != want {
			t.Fatalf("MemOpt variant %d changed the result: %+v != %+v", i, got, want)
		}
	}
}

func TestEvaluatedCounts(t *testing.T) {
	// Every scheme must account for exactly C(G, h) combinations. With
	// pruning off, all of them are evaluated; with pruning on, the
	// Evaluated/Pruned split moves but the scanned total is conserved.
	tumor, normal := randomPair(17, 12, 30, 30, 0.4)
	for _, tc := range []struct {
		opt  Options
		want uint64
	}{
		{Options{Hits: 2}, 66},                     // C(12,2)
		{Options{Hits: 3}, 220},                    // C(12,3)
		{Options{Hits: 4, Scheme: Scheme3x1}, 495}, // C(12,4)
		{Options{Hits: 4, Scheme: Scheme2x2}, 495},
		{Options{Hits: 4, Scheme: Scheme1x3}, 495},
		{Options{Hits: 4, Scheme: Scheme4x1}, 495},
	} {
		opt := tc.opt
		opt.NoPrune = true
		_, n, err := FindBest(tumor, normal, nil, opt)
		if err != nil {
			t.Fatal(err)
		}
		if n.Evaluated != tc.want || n.Pruned != 0 {
			t.Fatalf("%s NoPrune: evaluated %d (pruned %d), want %d evaluated",
				tc.opt.Scheme, n.Evaluated, n.Pruned, tc.want)
		}
		_, n, err = FindBest(tumor, normal, nil, tc.opt)
		if err != nil {
			t.Fatal(err)
		}
		if n.Scanned() != tc.want {
			t.Fatalf("%s: scanned %d combinations (evaluated %d + pruned %d), want %d",
				tc.opt.Scheme, n.Scanned(), n.Evaluated, n.Pruned, tc.want)
		}
	}
}

func TestRunGreedySequenceMatchesManualGreedy(t *testing.T) {
	// Run's loop must equal a hand-rolled greedy using ExhaustiveBest with
	// explicit masking.
	tumor, normal := randomPair(19, 12, 35, 30, 0.4)
	res, err := Run(tumor, normal, Options{Hits: 3, Workers: 3})
	if err != nil {
		t.Fatal(err)
	}

	active := bitmat.AllOnes(tumor.Samples())
	buf := make([]uint64, tumor.Words())
	for step := 0; step < len(res.Steps); step++ {
		want, err := ExhaustiveBest(tumor, normal, active, 3, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Steps[step].Combo; got != want {
			t.Fatalf("step %d: Run chose %+v, manual greedy %+v", step, got, want)
		}
		tumor.ComboVec(buf, want.GeneIDs()...)
		cov := bitmat.NewVec(tumor.Samples())
		copy(cov.Words(), buf)
		cov.And(active)
		if cov.PopCount() != res.Steps[step].NewlyCovered {
			t.Fatalf("step %d: covered %d, Run reported %d",
				step, cov.PopCount(), res.Steps[step].NewlyCovered)
		}
		active.AndNot(cov)
	}
	if active.PopCount() != res.Uncoverable {
		t.Fatalf("Run reported %d uncoverable, manual greedy leaves %d",
			res.Uncoverable, active.PopCount())
	}
}

func TestBitSpliceEquivalence(t *testing.T) {
	// Splicing covered samples out must choose the same combinations, with
	// the same F values, as masking them.
	for seed := int64(0); seed < 3; seed++ {
		tumor, normal := randomPair(100+seed, 14, 50, 40, 0.35)
		masked, err := Run(tumor, normal, Options{Hits: 3, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		spliced, err := Run(tumor, normal, Options{Hits: 3, Workers: 4, BitSplice: true})
		if err != nil {
			t.Fatal(err)
		}
		if len(masked.Steps) != len(spliced.Steps) {
			t.Fatalf("seed %d: masked ran %d steps, spliced %d",
				seed, len(masked.Steps), len(spliced.Steps))
		}
		for i := range masked.Steps {
			if masked.Steps[i].Combo != spliced.Steps[i].Combo {
				t.Fatalf("seed %d step %d: masked %+v != spliced %+v",
					seed, i, masked.Steps[i].Combo, spliced.Steps[i].Combo)
			}
			if masked.Steps[i].NewlyCovered != spliced.Steps[i].NewlyCovered {
				t.Fatalf("seed %d step %d: cover counts differ", seed, i)
			}
		}
		if masked.Covered != spliced.Covered || masked.Uncoverable != spliced.Uncoverable {
			t.Fatalf("seed %d: totals differ", seed)
		}
	}
}

func TestRunDoesNotMutateInputs(t *testing.T) {
	tumor, normal := randomPair(23, 12, 40, 30, 0.35)
	tc, nc := tumor.Clone(), normal.Clone()
	for _, splice := range []bool{false, true} {
		if _, err := Run(tumor, normal, Options{Hits: 3, BitSplice: splice}); err != nil {
			t.Fatal(err)
		}
		if !tumor.Equal(tc) || !normal.Equal(nc) {
			t.Fatalf("Run(splice=%v) mutated its inputs", splice)
		}
	}
}

func TestRunCoversPlantedCohort(t *testing.T) {
	// On a planted synthetic cohort, the greedy cover should terminate
	// having covered nearly all tumor samples, and its first combination
	// should be a planted driver combination.
	spec := dataset.Spec{
		Code: "TST", Name: "test", Genes: 40, TumorSamples: 150, NormalSamples: 120,
		Hits: 4, PlantedCombos: 3, DriverMutProb: 0.98,
		TumorBackground: 0.01, NormalBackground: 0.002,
	}
	c, err := dataset.Generate(spec, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c.Tumor, c.Normal, Options{Hits: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered < c.Nt()*9/10 {
		t.Fatalf("covered only %d of %d tumor samples", res.Covered, c.Nt())
	}
	firstIDs := res.Steps[0].Combo.GeneIDs()
	found := false
	for _, planted := range c.Planted {
		if len(planted) != len(firstIDs) {
			continue
		}
		same := true
		for i := range planted {
			if planted[i] != firstIDs[i] {
				same = false
				break
			}
		}
		if same {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("first combination %v is not a planted driver combo %v",
			firstIDs, c.Planted)
	}
}

func TestRunMaxIterations(t *testing.T) {
	tumor, normal := randomPair(29, 12, 60, 40, 0.5)
	res, err := Run(tumor, normal, Options{Hits: 2, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) > 2 {
		t.Fatalf("MaxIterations=2 but ran %d steps", len(res.Steps))
	}
}

func TestRunUncoverableSamples(t *testing.T) {
	// Samples with no mutations at all can never be covered; Run must
	// terminate and report them.
	tumor := bitmat.New(8, 10)
	normal := bitmat.New(8, 10)
	// Only samples 0-4 are coverable (mutated in genes 0,1).
	for s := 0; s < 5; s++ {
		tumor.Set(0, s)
		tumor.Set(1, s)
	}
	res, err := Run(tumor, normal, Options{Hits: 2, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covered != 5 {
		t.Fatalf("covered %d, want 5", res.Covered)
	}
	if res.Uncoverable != 5 {
		t.Fatalf("uncoverable %d, want 5", res.Uncoverable)
	}
}

func TestOptionsValidation(t *testing.T) {
	tumor, normal := randomPair(31, 10, 20, 20, 0.3)
	bad := []Options{
		{Hits: 1},
		{Hits: 5},
		{Hits: 3, Scheme: Scheme3x1}, // scheme serves 4 hits
		{Hits: 2, Alpha: -1},
		{Hits: 2, Workers: -1},
		{Hits: 2, BlockSize: -1},
	}
	for i, opt := range bad {
		if _, err := Run(tumor, normal, opt); err == nil {
			t.Errorf("case %d: Run accepted invalid options %+v", i, opt)
		}
		if _, _, err := FindBest(tumor, normal, nil, opt); err == nil {
			t.Errorf("case %d: FindBest accepted invalid options", i)
		}
	}
	// Scheme alone determines hits.
	if _, _, err := FindBest(tumor, normal, nil, Options{Scheme: Scheme2x1}); err != nil {
		t.Errorf("Scheme2x1 without Hits rejected: %v", err)
	}
}

func TestMismatchedGeneDimensions(t *testing.T) {
	tumor, _ := randomPair(37, 10, 20, 20, 0.3)
	_, normal := randomPair(37, 11, 20, 20, 0.3)
	if _, err := Run(tumor, normal, Options{Hits: 2}); err == nil {
		t.Fatal("Run accepted mismatched gene dimensions")
	}
	if _, _, err := FindBest(tumor, normal, nil, Options{Hits: 2}); err == nil {
		t.Fatal("FindBest accepted mismatched gene dimensions")
	}
}

func TestNoTumorSamples(t *testing.T) {
	tumor := bitmat.New(6, 0)
	normal := bitmat.New(6, 5)
	if _, err := Run(tumor, normal, Options{Hits: 2}); err == nil {
		t.Fatal("Run accepted an empty tumor cohort")
	}
}

func TestTooFewGenes(t *testing.T) {
	tumor := bitmat.New(3, 5)
	normal := bitmat.New(3, 5)
	if _, err := Run(tumor, normal, Options{Hits: 4}); err == nil {
		t.Fatal("Run accepted 3 genes for 4-hit discovery")
	}
}

func TestAlphaBias(t *testing.T) {
	// With α = 0 the score ignores TP entirely; a combination absent from
	// normals always wins regardless of tumor coverage. With a large α the
	// high-TP combination wins. This checks the penalty term is wired in.
	tumor := bitmat.New(4, 100)
	normal := bitmat.New(4, 100)
	// Combo (0,1): covers all 100 tumors but also 10 normals.
	for s := 0; s < 100; s++ {
		tumor.Set(0, s)
		tumor.Set(1, s)
	}
	for s := 0; s < 10; s++ {
		normal.Set(0, s)
		normal.Set(1, s)
	}
	// Combo (2,3): covers 5 tumors, no normals.
	for s := 0; s < 5; s++ {
		tumor.Set(2, s)
		tumor.Set(3, s)
	}
	highAlpha, _, err := FindBest(tumor, normal, nil, Options{Hits: 2, Alpha: 10})
	if err != nil {
		t.Fatal(err)
	}
	if got := highAlpha.GeneIDs(); got[0] != 0 || got[1] != 1 {
		t.Fatalf("α=10 chose %v, want [0 1]", got)
	}
	// With a small α the zero-false-positive combos win. (0,2) ties (2,3)
	// on TP=5, TN=100 and wins the lexicographic tie-break.
	lowAlpha, _, err := FindBest(tumor, normal, nil, Options{Hits: 2, Alpha: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if got := lowAlpha.GeneIDs(); got[0] != 0 || got[1] != 2 {
		t.Fatalf("α=0.001 chose %v, want [0 2]", got)
	}
	// The paper's α=0.1 on this construction: combo (0,1) scores
	// (0.1·100+90)/200 = 0.5; the TP=5/TN=100 combos score
	// (0.1·5+100)/200 = 0.5025 and beat it.
	paper, _, err := FindBest(tumor, normal, nil, Options{Hits: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := paper.GeneIDs(); got[0] == 0 && got[1] == 1 {
		t.Fatalf("α=0.1 chose the noisy combo %v", got)
	}
}

func TestExhaustiveBest5(t *testing.T) {
	tumor, normal := randomPair(41, 9, 25, 20, 0.5)
	best, err := ExhaustiveBest5(tumor, normal, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < 5; i++ {
		if best.Genes[i] <= best.Genes[i-1] {
			t.Fatalf("5-hit genes not sorted: %v", best.Genes)
		}
	}
	if best.F < 0 {
		t.Fatal("no 5-hit combination scored")
	}
	if _, err := ExhaustiveBest5(bitmat.New(4, 3), bitmat.New(4, 3), nil, 0); err == nil {
		t.Fatal("ExhaustiveBest5 accepted 4 genes")
	}
}

func TestSchemeString(t *testing.T) {
	for s, want := range map[Scheme]string{
		SchemeAuto: "auto", SchemePair: "pair", Scheme2x1: "2x1",
		Scheme2x2: "2x2", Scheme3x1: "3x1", Scheme(99): "Scheme(99)",
	} {
		if s.String() != want {
			t.Errorf("Scheme.String() = %q, want %q", s.String(), want)
		}
	}
	if EquiArea.String() != "EA" || EquiDistance.String() != "ED" {
		t.Error("Scheduler.String wrong")
	}
}

func TestAllFourHitSchemesAgree(t *testing.T) {
	// All four parallelization schemes of Sec. III-A — including the two
	// the paper rejects — must find the same best combination under any
	// partitioning.
	tumor, normal := randomPair(43, 16, 40, 35, 0.35)
	want, _, err := FindBest(tumor, normal, nil, Options{Hits: 4, Scheme: Scheme3x1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, scheme := range []Scheme{Scheme2x2, Scheme1x3, Scheme4x1} {
		for _, workers := range []int{1, 3, 16} {
			got, n, err := FindBest(tumor, normal, nil, Options{
				Hits: 4, Scheme: scheme, Workers: workers, BlockSize: 64,
			})
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s workers=%d: %+v != %+v", scheme, workers, got, want)
			}
			if n.Scanned() != 1820 { // C(16,4)
				t.Fatalf("%s scanned %d, want C(16,4)=1820", scheme, n.Scanned())
			}
		}
	}
}

func TestScheme1x3LimitedParallelism(t *testing.T) {
	// The 1x3 scheme exposes only G threads: with more workers than genes,
	// the trailing partitions are empty — exactly the paper's reason for
	// rejecting it. The result must still be correct.
	tumor, normal := randomPair(47, 10, 30, 25, 0.4)
	want, _, err := FindBest(tumor, normal, nil, Options{Hits: 4, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := FindBest(tumor, normal, nil, Options{
		Hits: 4, Scheme: Scheme1x3, Workers: 64, // 64 workers, 10 threads
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("1x3 oversubscribed: %+v != %+v", got, want)
	}
}

func TestRun5MatchesExhaustive(t *testing.T) {
	tumor, normal := randomPair(53, 11, 30, 25, 0.45)
	want, err := ExhaustiveBest5(tumor, normal, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		got, n, err := FindBest5(tumor, normal, nil, Options5{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("workers=%d: 5-hit parallel %+v != exhaustive %+v", workers, got, want)
		}
		if n.Scanned() != 462 { // C(11,5)
			t.Fatalf("scanned %d combinations, want C(11,5)=462", n.Scanned())
		}
	}
}

func TestRun5GreedySequence(t *testing.T) {
	tumor, normal := randomPair(59, 11, 30, 25, 0.5)
	res, err := Run5(tumor, normal, Options5{Workers: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Replay against the exhaustive reference with explicit masking.
	active := bitmat.AllOnes(tumor.Samples())
	buf := make([]uint64, tumor.Words())
	for step, s := range res.Steps {
		want, err := ExhaustiveBest5(tumor, normal, active, 0)
		if err != nil {
			t.Fatal(err)
		}
		if s.Combo != want {
			t.Fatalf("step %d: %+v != %+v", step, s.Combo, want)
		}
		tumor.ComboVec(buf, s.Combo.Genes[:]...)
		cov := bitmat.NewVec(tumor.Samples())
		copy(cov.Words(), buf)
		cov.And(active)
		if cov.PopCount() != s.NewlyCovered {
			t.Fatalf("step %d: cover count mismatch", step)
		}
		active.AndNot(cov)
	}
	if active.PopCount() != res.Uncoverable {
		t.Fatalf("uncoverable mismatch: %d vs %d", active.PopCount(), res.Uncoverable)
	}
}

func TestRun5OnPlantedFiveHitCohort(t *testing.T) {
	spec := dataset.Spec{
		Code: "TST5", Name: "five-hit test", Genes: 20, TumorSamples: 80, NormalSamples: 60,
		Hits: 5, PlantedCombos: 2, DriverMutProb: 0.95,
		TumorBackground: 0.01, NormalBackground: 0.002,
	}
	c, err := dataset.Generate(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run5(c.Tumor, c.Normal, Options5{MaxIterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no 5-hit combinations found")
	}
	// The first combination should be a planted 5-hit driver combination.
	first := res.Steps[0].Combo.Genes
	matched := false
	for _, planted := range c.Planted {
		same := len(planted) == 5
		for i := 0; same && i < 5; i++ {
			if planted[i] != first[i] {
				same = false
			}
		}
		if same {
			matched = true
		}
	}
	if !matched {
		t.Fatalf("first 5-hit combination %v is not planted (%v)", first, c.Planted)
	}
}

func TestRun5Validation(t *testing.T) {
	tumor, normal := randomPair(61, 4, 10, 10, 0.5)
	if _, err := Run5(tumor, normal, Options5{}); err == nil {
		t.Fatal("accepted 4 genes for 5-hit")
	}
	t6, _ := randomPair(61, 6, 10, 10, 0.5)
	_, n6 := randomPair(62, 7, 10, 10, 0.5)
	if _, err := Run5(t6, n6, Options5{}); err == nil {
		t.Fatal("accepted mismatched gene dimensions")
	}
	if _, err := Run5(t6, t6.Clone(), Options5{Alpha: -1}); err == nil {
		t.Fatal("accepted negative alpha")
	}
}

func TestRunCtxCancellation(t *testing.T) {
	tumor, normal := randomPair(89, 14, 60, 50, 0.5)
	// A pre-cancelled context returns immediately with no steps.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := RunCtx(ctx, tumor, normal, Options{Hits: 3})
	if err == nil {
		t.Fatal("expected context error")
	}
	if len(res.Steps) != 0 {
		t.Fatalf("cancelled run produced %d steps", len(res.Steps))
	}
	// The partial result is checkpointable and resumable.
	cp := res.ToCheckpoint(tumor, normal)
	full, err := Resume(tumor, normal, Options{Hits: 3}, cp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(tumor, normal, Options{Hits: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Steps) != len(want.Steps) || full.Covered != want.Covered {
		t.Fatal("resume after cancellation diverges from a fresh run")
	}
}

func TestProgressCallback(t *testing.T) {
	tumor, normal := randomPair(91, 12, 40, 30, 0.45)
	var seen []Step
	res, err := Run(tumor, normal, Options{Hits: 3, Progress: func(s Step) {
		seen = append(seen, s)
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(res.Steps) {
		t.Fatalf("progress saw %d steps, result has %d", len(seen), len(res.Steps))
	}
	for i := range seen {
		if seen[i].Combo != res.Steps[i].Combo {
			t.Fatalf("progress step %d differs from result", i)
		}
	}
}

// flipCtx is a context whose Err flips to context.Canceled after a fixed
// number of Err calls — a deterministic stand-in for "cancellation arrives
// mid-iteration". With Workers: 1 the Err call order is fixed: RunCtx's
// loop-top check, then the worker's per-partition claim checks and
// runKernel entry checks, strictly sequentially.
type flipCtx struct {
	context.Context
	calls *atomic.Int64
	after int64
}

func (c *flipCtx) Err() error {
	if c.calls.Add(1) > c.after {
		return context.Canceled
	}
	return nil
}

func TestRunCtxCancellationMidIteration(t *testing.T) {
	// Cancellation lands during iteration 1 of a 4-hit run, after the
	// worker has completed exactly one of the four λ-partitions. RunCtx
	// must return within that partition — a partial Evaluated count, no
	// steps — rather than finishing the full enumeration pass.
	tumor, normal := randomPair(97, 30, 40, 35, 0.4)
	opt := Options{Hits: 4, Workers: 1}

	full, err := Run(tumor, normal, Options{Hits: 4, Workers: 1, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	fullPass := full.Steps[0].Evaluated + full.Steps[0].Pruned

	// Err calls 1–3 (RunCtx loop top, worker claim of partition 0,
	// runKernel entry) see nil; call 4 — the claim of partition 1 — sees
	// the cancellation.
	ctx := &flipCtx{Context: context.Background(), calls: &atomic.Int64{}, after: 3}
	res, err := RunCtx(ctx, tumor, normal, opt)
	if err != context.Canceled {
		t.Fatalf("RunCtx = %v, want context.Canceled", err)
	}
	if len(res.Steps) != 0 {
		t.Fatalf("cancelled mid-iteration yet produced %d steps", len(res.Steps))
	}
	if res.Evaluated == 0 {
		t.Fatal("partition 0 completed before cancellation; its work must be counted")
	}
	if res.Evaluated+res.Pruned >= fullPass {
		t.Fatalf("cancelled run scanned %d of a %d-combination pass — cancellation did not stop within one partition",
			res.Evaluated+res.Pruned, fullPass)
	}
}
