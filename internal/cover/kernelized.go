package cover

import (
	"context"
	"math/bits"
	"time"

	"repro/internal/bitmat"
	"repro/internal/kernelize"
	"repro/internal/reduce"
)

// This file holds the Kernelize=true greedy loop (docs/KERNELIZATION.md).
// The static kernel — duplicate-column dedup plus dominated-gene
// elimination — is built once; each iteration may additionally drop genes
// whose best-case solo score cannot reach the previous winner's re-scored
// F (incumbent-aware dropping, strictly stronger than compactKeep: it
// drops weak rows, not just all-zero ones). Every combination the
// reductions remove is accounted as Pruned, so each completed iteration
// still satisfies Evaluated + Pruned = C(G, h) over the ORIGINAL gene
// count, and winners/steps are recorded in original gene ids — a
// kernelized run is bit-identical to an unkernelized one everywhere a
// caller can observe.

// popWords returns the (weighted) popcount of a packed mask; nil weights
// mean every column counts once.
func popWords(w *bitmat.Weights, words []uint64) int {
	if w == nil {
		n := 0
		for _, x := range words {
			n += bits.OnesCount64(x)
		}
		return n
	}
	return w.PopVec(words)
}

// rescoreKernelized re-scores a static-kernel-space combination against the
// current active mask: the exact F the previous winner would get this
// iteration, used as the incumbent floor for gene dropping. It uses the
// same float expression as kernelEnv.score, so monotonicity arguments
// transfer to the rounded values.
func rescoreKernelized(kern *kernelize.Kernel, kactive *bitmat.Vec, c reduce.Combo, alpha, denom float64, nn int, tbuf, nbuf []uint64) float64 {
	ids := c.GeneIDs()
	t, n := kern.Tumor, kern.Normal
	bitmat.AndWords(tbuf, t.Row(ids[0]), t.Row(ids[1]))
	bitmat.AndWords(nbuf, n.Row(ids[0]), n.Row(ids[1]))
	for _, g := range ids[2:] {
		bitmat.AndWords(tbuf, tbuf, t.Row(g))
		bitmat.AndWords(nbuf, nbuf, n.Row(g))
	}
	bitmat.AndWords(tbuf, tbuf, kactive.Words())
	tp := popWords(kern.TumorWeights, tbuf)
	nh := popWords(kern.NormalWeights, nbuf)
	tn := nn - nh
	return (alpha*float64(tp) + float64(tn)) / denom
}

// greedyKernelized is the greedy cover loop over a reduced instance,
// shared by RunCtx (fresh, prev = reduce.None) and Resume (prev = the
// last replayed winner in static-kernel ids, kactive = the replayed mask
// projected through the kernel). res may already hold replayed steps; the
// loop appends to it and fills Covered/Uncoverable/Evaluated/Pruned, but
// leaves Elapsed to the caller. Checkpoints bind to the ORIGINAL
// matrices, so a kernelized run's checkpoint replays on any engine.
func greedyKernelized(ctx context.Context, tumor, normal *bitmat.Matrix, kern *kernelize.Kernel, kactive *bitmat.Vec, prev reduce.Combo, opt Options, res *Result) error {
	full, err := domainSizeChecked(kern.Genes, opt.Hits)
	if err != nil {
		return err
	}
	kernDomain, err := domainSizeChecked(len(kern.Keep), opt.Hits)
	if err != nil {
		return err
	}
	staticDrop := full - kernDomain

	denom := float64(tumor.Samples() + normal.Samples())
	nn := normal.Samples()
	coverBuf := make([]uint64, kern.Tumor.Words())
	nbuf := make([]uint64, kern.Normal.Words())

	for opt.MaxIterations == 0 || len(res.Steps) < opt.MaxIterations {
		if err := ctx.Err(); err != nil {
			return err
		}
		remaining := popWords(kern.TumorWeights, kactive.Words())
		if remaining == 0 {
			break
		}
		iterStart := time.Now()

		// Incumbent-aware gene dropping: the previous winner re-scored
		// against the shrunken active set is a valid floor, because prev
		// itself is in this pass's domain — the true argmax scores at
		// least floor. A gene whose solo upper bound falls strictly
		// below the floor cannot appear in any combination tying the
		// maximum, so dropping it preserves the tie-broken winner
		// exactly. prev's own genes survive by monotonicity of the
		// shared score expression, so at least h genes always remain.
		searchT, searchN := kern.Tumor, kern.Normal
		var iterKeep []int
		var iterDrop uint64
		if !opt.NoPrune && prev != reduce.None {
			floor := rescoreKernelized(kern, kactive, prev, opt.Alpha, denom, nn, coverBuf, nbuf)
			iterKeep = kernelize.IncumbentKeep(kern.Tumor, kern.TumorWeights, kactive, opt.Alpha, denom, nn, floor)
			if iterKeep != nil {
				if len(iterKeep) < opt.Hits {
					// Fewer than h genes can still matter — with prev's h
					// genes always surviving this cannot happen, but guard
					// the invariant rather than scan a malformed domain.
					iterKeep = nil
				} else {
					sub, err := domainSizeChecked(len(iterKeep), opt.Hits)
					if err != nil {
						return err
					}
					iterDrop = kernDomain - sub
					searchT = kern.Tumor.SelectRows(iterKeep)
					searchN = kern.Normal.SelectRows(iterKeep)
				}
			}
		}

		best, cnt, err := findBest(ctx, searchT, kactive, searchN,
			kern.TumorWeights, kern.NormalWeights, opt, denom)
		if err == nil {
			// Completed pass: reduction-removed combinations count as
			// pruned, keeping Scanned = C(G, h) over the original genes.
			cnt.Pruned += staticDrop + iterDrop
		}
		res.Evaluated += cnt.Evaluated
		res.Pruned += cnt.Pruned
		if err != nil {
			return err
		}
		if best == reduce.None {
			break
		}
		if iterKeep != nil {
			best = remapCombo(best, iterKeep)
		}
		prev = best
		orig := kern.RemapCombo(best)

		kern.Tumor.ComboVec(coverBuf, best.GeneIDs()...)
		cov := vecFromWords(kern.Tumor.Samples(), coverBuf)
		cov.And(kactive)
		covered := popWords(kern.TumorWeights, cov.Words())
		if covered == 0 {
			res.Uncoverable = remaining
			break
		}
		res.Covered += covered
		kactive.AndNot(cov)
		activeAfter := popWords(kern.TumorWeights, kactive.Words())

		step := Step{
			Combo:        orig,
			NewlyCovered: covered,
			ActiveAfter:  activeAfter,
			Evaluated:    cnt.Evaluated,
			Pruned:       cnt.Pruned,
			Elapsed:      time.Since(iterStart),
		}
		res.Steps = append(res.Steps, step)
		if opt.Progress != nil {
			opt.Progress(step)
		}
		if opt.CheckpointEvery > 0 && opt.OnCheckpoint != nil &&
			len(res.Steps)%opt.CheckpointEvery == 0 {
			opt.OnCheckpoint(res.ToCheckpoint(tumor, normal))
		}
		if activeAfter == 0 {
			break
		}
	}
	if res.Uncoverable == 0 {
		res.Uncoverable = popWords(kern.TumorWeights, kactive.Words())
		if opt.MaxIterations > 0 && len(res.Steps) == opt.MaxIterations {
			res.Uncoverable = 0
		}
	}
	return nil
}
