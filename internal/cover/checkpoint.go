package cover

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/bitmat"
	"repro/internal/kernelize"
	"repro/internal/reduce"
)

// Typed checkpoint-rejection errors. Callers (cmd/multihit, the harness)
// match these to turn a bad resume into a one-line diagnostic instead of
// silently starting from scratch.
var (
	// ErrCheckpointVersion means the checkpoint's wire format is not the
	// one this binary writes.
	ErrCheckpointVersion = errors.New("cover: checkpoint version mismatch")
	// ErrFingerprintMismatch means the checkpoint was taken from
	// different input matrices.
	ErrFingerprintMismatch = errors.New("cover: checkpoint fingerprint mismatch")
)

// maxCheckpointBytes bounds ReadCheckpoint's input: a checkpoint is a
// few bytes per greedy step, so 64 MiB is orders of magnitude above any
// legitimate run and cheap insurance against a corrupt or hostile file
// streaming unbounded JSON.
const maxCheckpointBytes = 64 << 20

// A Checkpoint captures a discovery run's progress so it can resume in a
// later job — the practical answer to batch-system walltime limits (the
// paper notes Summit capped sub-100-node jobs at two hours, Sec. IV-A).
// It records the combinations chosen so far plus a fingerprint binding it
// to the exact input matrices; Resume replays the recorded exclusions in
// O(steps) matrix operations and continues the greedy loop, skipping every
// already-completed enumeration pass.
//
// Checkpoints cover the mask-based exclusion mode (Run without BitSplice);
// the spliced matrix is itself derived state that replay reconstructs.
type Checkpoint struct {
	// Version guards the wire format.
	Version int `json:"version"`
	// Hits is the combination size of the interrupted run.
	Hits int `json:"hits"`
	// Alpha is the F-weight penalty in effect.
	Alpha float64 `json:"alpha"`
	// TumorFingerprint and NormalFingerprint bind the checkpoint to its
	// input matrices.
	TumorFingerprint  uint64 `json:"tumor_fingerprint"`
	NormalFingerprint uint64 `json:"normal_fingerprint"`
	// Combos are the chosen combinations in greedy order; NewlyCovered
	// records each combination's cover count for integrity checking.
	Combos       [][]int `json:"combos"`
	NewlyCovered []int   `json:"newly_covered"`
	// Scores records each combination's F value so a resumed leg reports
	// the replayed steps bit-identically. Older checkpoints (same
	// version) omit it; replay then leaves the replayed scores zero.
	Scores []float64 `json:"scores,omitempty"`
	// Evaluated carries the cumulative count of combinations scored;
	// Pruned the cumulative count skipped by bound-and-prune. Older
	// checkpoints (same version) simply carry zero Pruned.
	Evaluated uint64 `json:"evaluated"`
	Pruned    uint64 `json:"pruned,omitempty"`
	// Kernelize records that the run scanned a kernelized instance
	// (Options.Kernelize); KernelFingerprint identifies the exact
	// reduction so a resumed leg can verify it rebuilt the same kernel
	// before continuing bit-identically. Both are zero for unkernelized
	// runs (and absent from their JSON).
	Kernelize         bool   `json:"kernelize,omitempty"`
	KernelFingerprint uint64 `json:"kernel_fingerprint,omitempty"`
}

// checkpointVersion is the current wire format.
const checkpointVersion = 1

// ToCheckpoint converts a (typically MaxIterations-bounded) run's result
// into a resumable checkpoint for the given input matrices.
func (r *Result) ToCheckpoint(tumor, normal *bitmat.Matrix) *Checkpoint {
	cp := &Checkpoint{
		Version:           checkpointVersion,
		Hits:              r.Options.Hits,
		Alpha:             r.Options.Alpha,
		TumorFingerprint:  tumor.Fingerprint(),
		NormalFingerprint: normal.Fingerprint(),
		Evaluated:         r.Evaluated,
		Pruned:            r.Pruned,
		Kernelize:         r.Options.Kernelize,
		KernelFingerprint: r.KernelFingerprint,
	}
	for _, s := range r.Steps {
		cp.Combos = append(cp.Combos, s.Combo.GeneIDs())
		cp.NewlyCovered = append(cp.NewlyCovered, s.NewlyCovered)
		cp.Scores = append(cp.Scores, s.Combo.F)
	}
	return cp
}

// Write serializes the checkpoint as JSON.
func (cp *Checkpoint) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(cp)
}

// ReadCheckpoint deserializes a checkpoint written by Write. The read is
// bounded by maxCheckpointBytes; a version mismatch wraps
// ErrCheckpointVersion, and Combos/NewlyCovered must be the same length.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	var cp Checkpoint
	if err := json.NewDecoder(io.LimitReader(r, maxCheckpointBytes)).Decode(&cp); err != nil {
		return nil, fmt.Errorf("cover: reading checkpoint: %w", err)
	}
	if cp.Version != checkpointVersion {
		return nil, fmt.Errorf("cover: checkpoint version %d, want %d: %w",
			cp.Version, checkpointVersion, ErrCheckpointVersion)
	}
	if len(cp.Combos) != len(cp.NewlyCovered) {
		return nil, fmt.Errorf("cover: checkpoint has %d combos but %d cover counts",
			len(cp.Combos), len(cp.NewlyCovered))
	}
	if len(cp.Scores) != 0 && len(cp.Scores) != len(cp.Combos) {
		return nil, fmt.Errorf("cover: checkpoint has %d combos but %d scores",
			len(cp.Combos), len(cp.Scores))
	}
	return &cp, nil
}

// Resume continues an interrupted run from a checkpoint: the recorded
// combinations are re-applied (and re-verified) without re-enumerating
// their iterations, then the greedy loop continues to completion (or to
// opt.MaxIterations, counted from the beginning, for another bounded leg).
// The matrices must be the ones the checkpoint was taken from; BitSplice
// must be off.
func Resume(tumor, normal *bitmat.Matrix, opt Options, cp *Checkpoint) (*Result, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if opt.BitSplice {
		return nil, fmt.Errorf("cover: Resume supports mask-based exclusion; disable BitSplice")
	}
	res, active, err := Replay(tumor, normal, opt, cp)
	if err != nil {
		return nil, err
	}
	if opt.Kernelize {
		// Rebuild the reduction deterministically from the same inputs and
		// verify it matches the one the interrupted run scanned under —
		// only then is the continued leg guaranteed bit-identical.
		kern, err := kernelize.Reduce(tumor, normal, opt.Hits)
		if err != nil {
			return nil, err
		}
		fp := kern.Fingerprint()
		if cp.KernelFingerprint != 0 && fp != cp.KernelFingerprint {
			return nil, fmt.Errorf("cover: rebuilt kernel fingerprint %#x, checkpoint has %#x: %w",
				fp, cp.KernelFingerprint, ErrFingerprintMismatch)
		}
		res.KernelFingerprint = fp
		kactive := kern.MapActive(active)
		// Seed the incumbent-drop floor from the last replayed winner,
		// mapped into static-kernel ids — exactly the prev a fresh run
		// would hold entering this iteration.
		prev := reduce.None
		if len(res.Steps) > 0 {
			prev = res.Steps[len(res.Steps)-1].Combo
			for i, g := range prev.Genes {
				if g < 0 {
					continue
				}
				ki, err := kern.KernelIndex(int(g))
				if err != nil {
					return nil, fmt.Errorf("cover: replayed combo is outside the kernel: %w", err)
				}
				prev.Genes[i] = int32(ki)
			}
		}
		if err := greedyKernelized(context.Background(), tumor, normal, kern, kactive, prev, opt, res); err != nil {
			return nil, err
		}
		return res, nil
	}
	// Continue the greedy loop from the replayed state.
	if err := continueGreedy(tumor, normal, opt, active, res); err != nil {
		return nil, err
	}
	return res, nil
}

// replayCombo rebuilds a Combo record from gene ids; the F score of a
// replayed step is not recomputed (it scored against a historical active
// mask) and is reported as 0.
func replayCombo(ids []int) reduce.Combo {
	c := reduce.Combo{Genes: [4]int32{-1, -1, -1, -1}}
	for i, g := range ids {
		c.Genes[i] = int32(g)
	}
	return c
}

// continueGreedy runs the mask-based greedy loop from an arbitrary state,
// appending to res. Shared by Resume (and equivalent to Run's non-splice
// path).
func continueGreedy(tumor, normal *bitmat.Matrix, opt Options, active *bitmat.Vec, res *Result) error {
	denom := float64(tumor.Samples() + normal.Samples())
	buf := make([]uint64, tumor.Words())
	for opt.MaxIterations == 0 || len(res.Steps) < opt.MaxIterations {
		remaining := active.PopCount()
		if remaining == 0 {
			return nil
		}
		best, cnt, err := findBest(context.Background(), tumor, active, normal, nil, nil, opt, denom)
		if err != nil {
			return err
		}
		res.Evaluated += cnt.Evaluated
		res.Pruned += cnt.Pruned
		if best == reduce.None {
			return nil
		}
		tumor.ComboVec(buf, best.GeneIDs()...)
		cov := bitmat.NewVec(tumor.Samples())
		copy(cov.Words(), buf)
		cov.And(active)
		newly := cov.PopCount()
		if newly == 0 {
			res.Uncoverable = remaining
			return nil
		}
		active.AndNot(cov)
		res.Covered += newly
		res.Steps = append(res.Steps, Step{
			Combo:        best,
			NewlyCovered: newly,
			ActiveAfter:  active.PopCount(),
			Evaluated:    cnt.Evaluated,
			Pruned:       cnt.Pruned,
		})
	}
	// Stopped by the iteration cap; remaining samples may be coverable.
	return nil
}
