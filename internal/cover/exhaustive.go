package cover

import (
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/reduce"
)

// ExhaustiveBest enumerates every h-hit combination with plain nested loops
// and returns the best-scoring one under the same deterministic order the
// parallel engine uses. It is the sequential reference implementation
// (Sec. II-B as originally run on a single CPU): O(G^h), intended for
// differential testing and tiny problems. Supports h = 2…4; use
// ExhaustiveBest5 for the paper's future-work hit count. The active vector
// selects the tumor samples counting toward TP; nil means all.
func ExhaustiveBest(tumor, normal *bitmat.Matrix, active *bitmat.Vec, hits int, alpha float64) (reduce.Combo, error) {
	if hits < 2 || hits > 4 {
		return reduce.None, fmt.Errorf("cover: ExhaustiveBest supports 2-4 hits, got %d", hits)
	}
	if tumor.Genes() != normal.Genes() {
		return reduce.None, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	env := &kernelEnv{
		tumor:  tumor,
		normal: normal,
		active: active,
		alpha:  alpha,
		denom:  float64(tumor.Samples() + normal.Samples()),
		nn:     normal.Samples(),
	}
	g := tumor.Genes()
	aw := active.Words()
	best := reduce.None
	consider := func(c reduce.Combo) {
		if c.Better(best) {
			best = c
		}
	}
	switch hits {
	case 2:
		for i := 0; i < g-1; i++ {
			for j := i + 1; j < g; j++ {
				tp := bitmat.PopAnd3(aw, tumor.Row(i), tumor.Row(j))
				nh := bitmat.PopAnd2(normal.Row(i), normal.Row(j))
				consider(reduce.NewCombo(env.score(tp, nh), i, j))
			}
		}
	case 3:
		for i := 0; i < g-2; i++ {
			for j := i + 1; j < g-1; j++ {
				for k := j + 1; k < g; k++ {
					tp := bitmat.PopAnd4(aw, tumor.Row(i), tumor.Row(j), tumor.Row(k))
					nh := bitmat.PopAnd3(normal.Row(i), normal.Row(j), normal.Row(k))
					consider(reduce.NewCombo(env.score(tp, nh), i, j, k))
				}
			}
		}
	case 4:
		tbuf := make([]uint64, tumor.Words())
		nbuf := make([]uint64, normal.Words())
		for i := 0; i < g-3; i++ {
			for j := i + 1; j < g-2; j++ {
				for k := j + 1; k < g-1; k++ {
					bitmat.AndWords(tbuf, aw, tumor.Row(i))
					bitmat.AndWords(tbuf, tbuf, tumor.Row(j))
					bitmat.AndWords(tbuf, tbuf, tumor.Row(k))
					bitmat.AndWords(nbuf, normal.Row(i), normal.Row(j))
					bitmat.AndWords(nbuf, nbuf, normal.Row(k))
					for l := k + 1; l < g; l++ {
						tp := bitmat.PopAnd2(tbuf, tumor.Row(l))
						nh := bitmat.PopAnd2(nbuf, normal.Row(l))
						consider(reduce.NewCombo(env.score(tp, nh), i, j, k, l))
					}
				}
			}
		}
	}
	return best, nil
}

// Combo5 is a 5-hit combination, used only by the sequential reference (the
// paper's future-work hit count; the parallel engine and its 20-byte record
// stop at h = 4).
type Combo5 struct {
	Genes [5]int
	F     float64
}

// ExhaustiveBest5 enumerates every 5-hit combination sequentially. Ties
// break to the lexicographically smallest gene tuple.
func ExhaustiveBest5(tumor, normal *bitmat.Matrix, active *bitmat.Vec, alpha float64) (Combo5, error) {
	if tumor.Genes() != normal.Genes() {
		return Combo5{}, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if alpha == 0 {
		alpha = DefaultAlpha
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	g := tumor.Genes()
	if g < 5 {
		return Combo5{}, fmt.Errorf("cover: %d genes cannot form 5-hit combinations", g)
	}
	aw := active.Words()
	denom := float64(tumor.Samples() + normal.Samples())
	nn := normal.Samples()
	best := Combo5{F: -1}
	tbuf := make([]uint64, tumor.Words())
	nbuf := make([]uint64, normal.Words())
	for i := 0; i < g-4; i++ {
		for j := i + 1; j < g-3; j++ {
			for k := j + 1; k < g-2; k++ {
				for m := k + 1; m < g-1; m++ {
					bitmat.AndWords(tbuf, aw, tumor.Row(i))
					bitmat.AndWords(tbuf, tbuf, tumor.Row(j))
					bitmat.AndWords(tbuf, tbuf, tumor.Row(k))
					bitmat.AndWords(tbuf, tbuf, tumor.Row(m))
					bitmat.AndWords(nbuf, normal.Row(i), normal.Row(j))
					bitmat.AndWords(nbuf, nbuf, normal.Row(k))
					bitmat.AndWords(nbuf, nbuf, normal.Row(m))
					for l := m + 1; l < g; l++ {
						tp := bitmat.PopAnd2(tbuf, tumor.Row(l))
						tn := nn - bitmat.PopAnd2(nbuf, normal.Row(l))
						f := (alpha*float64(tp) + float64(tn)) / denom
						if c := (Combo5{Genes: [5]int{i, j, k, m, l}, F: f}); better5(c, best) {
							best = c
						}
					}
				}
			}
		}
	}
	return best, nil
}
