package cover

import (
	"testing"

	"repro/internal/dataset"
)

// benchSparseEngines times FindBest under the dense and sparse engines on
// one seeded cohort — the per-cell guard behind the BENCH_9.json sweep
// (cmd/benchreport -exp sparse runs the full table with the Auto side).
func benchSparseEngines(b *testing.B, code string, genes, hits int, scheme Scheme) {
	spec, err := dataset.ByCode(code)
	if err != nil {
		b.Fatal(err)
	}
	spec.Hits = hits
	spec = spec.Scaled(genes)
	c, err := dataset.Generate(spec, 42)
	if err != nil {
		b.Fatal(err)
	}
	for _, eng := range []Engine{EngineDense, EngineSparse} {
		b.Run(eng.String(), func(b *testing.B) {
			opt := Options{Hits: hits, Scheme: scheme, Engine: eng, Workers: 1}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := FindBest(c.Tumor, c.Normal, nil, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkSparseEngine pins one cell from each side of the occupancy
// crossover (see sparseCrossover): ACC 2x1 sits at ~1.4 set samples per
// row where the merge kernels win, BRCA 2x1 at ~16 where the dense word
// fold wins, and LGG 3x1 at ~6.5 where prefix reuse makes the sparse
// cascade the headline case. Both engines must stay allocation-free per
// op (allocs land in per-pass setup, pinned by allocfree as well).
func BenchmarkSparseEngine(b *testing.B) {
	b.Run("ACC240h3_2x1", func(b *testing.B) { benchSparseEngines(b, "ACC", 240, 3, Scheme2x1) })
	b.Run("BRCA240h3_2x1", func(b *testing.B) { benchSparseEngines(b, "BRCA", 240, 3, Scheme2x1) })
	b.Run("LGG200h4_3x1", func(b *testing.B) { benchSparseEngines(b, "LGG", 200, 4, Scheme3x1) })
}
