package cover

// This file is the engine surface the supervised runner
// (internal/harness) is built on: a deterministic partition plan for one
// enumeration pass, a single-partition scan that can be retried in
// isolation, and a checkpoint replay that rebuilds mid-run state without
// re-enumerating. docs/ROBUSTNESS.md describes the layer end to end.

import (
	"context"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// Normalized resolves the zero values of an Options (scheme from hits,
// default alpha/workers/block size) and validates it — the same
// resolution Run applies. The supervised runner normalizes once so the
// options it records in checkpoints and results are the resolved ones.
func (o Options) Normalized() (Options, error) {
	return o.withDefaults()
}

// schemeCurve builds the λ-domain work curve of one enumeration pass.
// Shared by findBest and PartitionPlan so the supervised runner scans
// exactly the domain the in-process engine would.
func schemeCurve(genes uint64, s Scheme) (sched.Curve, error) {
	switch s {
	case SchemePair:
		return sched.NewFlat(combinat.PairCount(genes)), nil
	case Scheme2x1:
		return sched.NewTri2x1(genes), nil
	case Scheme2x2:
		return sched.NewTri2x2(genes), nil
	case Scheme3x1:
		return sched.NewTetra3x1(genes), nil
	case Scheme1x3:
		return sched.NewLin1x3(genes), nil
	case Scheme4x1:
		return sched.NewFlat(combinat.QuadCount(genes)), nil
	}
	// Scheme arrives from CLI flags and config files; an unknown value
	// is untrusted input, not a programmer error.
	return nil, fmt.Errorf("cover: unresolved scheme %v", s)
}

// PartitionPlan cuts one enumeration pass over a genes-wide matrix into
// chunks λ-ranges using the configured scheduler. The plan depends only
// on (genes, scheme, scheduler, chunks) — it is identical across
// processes and across resumed legs, which is what lets a supervisor
// retry or quarantine individual ranges and still reproduce an
// uninterrupted run exactly.
func PartitionPlan(genes int, opt Options, chunks int) ([]sched.Partition, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	if genes < opt.Hits {
		return nil, fmt.Errorf("cover: %d genes cannot form %d-hit combinations", genes, opt.Hits)
	}
	if chunks < 1 {
		return nil, fmt.Errorf("cover: partition plan needs at least 1 chunk, got %d", chunks)
	}
	curve, err := schemeCurve(uint64(genes), opt.Scheme)
	if err != nil {
		return nil, err
	}
	if opt.Scheduler == EquiDistance {
		return sched.EquiDistance(curve, chunks)
	}
	return sched.EquiArea(curve, chunks)
}

// ScanPartition scores one λ-partition of one enumeration pass and
// returns the partition's best combination and exact work counts. denom
// pins the F denominator (pass the ORIGINAL cohort size so scores stay
// comparable when a BitSplice working matrix has shrunk; pass
// tumor.Samples()+normal.Samples() otherwise).
//
// shared, when non-nil, is a cross-partition incumbent the scan prunes
// against and raises; it never changes which combination wins, only the
// Evaluated/Pruned split. Pass nil for a partition-local incumbent —
// then the scan is a pure function of (matrices, options, partition),
// which makes its counts deterministic and makes the partition safely
// retryable after a mid-scan crash.
func ScanPartition(tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options, part sched.Partition, denom float64, shared *reduce.SharedBest) (reduce.Combo, Counts, error) {
	return ScanPartitionWeighted(tumor, normal, active, nil, nil, opt, part, denom, shared)
}

// ScanPartitionWeighted is ScanPartition over a kernelized instance: tw/nw
// carry the merged sample columns' multiplicities (nil means unweighted)
// and every popcount the kernels take is weighted accordingly, so the
// scores — and therefore the winner and the counts — equal the
// unkernelized scan's exactly. The supervised runner calls this form when
// Options.Kernelize is on.
func ScanPartitionWeighted(tumor, normal *bitmat.Matrix, active *bitmat.Vec, tw, nw *bitmat.Weights, opt Options, part sched.Partition, denom float64, shared *reduce.SharedBest) (reduce.Combo, Counts, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return reduce.None, Counts{}, err
	}
	if tumor.Genes() != normal.Genes() {
		return reduce.None, Counts{}, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if part.Hi < part.Lo {
		return reduce.None, Counts{}, fmt.Errorf("cover: inverted range [%d, %d)", part.Lo, part.Hi)
	}
	if denom <= 0 {
		return reduce.None, Counts{}, fmt.Errorf("cover: denominator must be positive, got %g", denom)
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	if part.Size() == 0 {
		return reduce.None, Counts{}, nil
	}
	env := newKernelEnv(tumor, normal, active, tw, nw, opt.Alpha, denom)
	if !opt.NoPrune && opt.Scheme.prunable() {
		if shared != nil {
			env.shared = shared
		} else {
			env.shared = reduce.NewSharedBest()
		}
	}
	s := newKernelScratch(tumor.Words(), normal.Words())
	if resolveEngine(&opt, tumor, normal) == EngineSparse {
		// The CSR rebuild is per call here; the supervised runner resolves
		// the engine once per run (harness.Run), so an Auto job does not
		// flip engines between partitions of one pass.
		env.sparse = newSparseEnv(tumor, normal, active, tw, nw)
		s.ensureSparse(env.sparse)
	}
	best, n := runKernel(context.Background(), env, opt, part, s)
	return best, n, nil
}

// Replay rebuilds an interrupted run's state from a checkpoint: every
// recorded combination is re-applied to a fresh active mask (and
// re-verified against its recorded cover count) in O(steps) matrix
// operations, with no enumeration. It returns the partial Result and the
// active mask the next greedy iteration should scan under. Resume is
// Replay followed by the greedy loop; the supervised runner
// (internal/harness) replays and then supervises its own loop.
func Replay(tumor, normal *bitmat.Matrix, opt Options, cp *Checkpoint) (*Result, *bitmat.Vec, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, nil, err
	}
	if cp.Hits != opt.Hits {
		return nil, nil, fmt.Errorf("cover: checkpoint is a %d-hit run, options say %d", cp.Hits, opt.Hits)
	}
	if cp.Alpha != opt.Alpha {
		return nil, nil, fmt.Errorf("cover: checkpoint used α=%g, options say %g", cp.Alpha, opt.Alpha)
	}
	if cp.Kernelize != opt.Kernelize {
		// The replayed steps are engine-independent (original gene ids,
		// original sample counts), but resume promises a continuation
		// bit-identical to the uninterrupted run — which pins the engine
		// mode, like Hits and Alpha. Reject the mismatch instead of
		// silently switching reduction regimes mid-run.
		return nil, nil, fmt.Errorf("cover: checkpoint kernelize=%v, options say %v",
			cp.Kernelize, opt.Kernelize)
	}
	if cp.TumorFingerprint != tumor.Fingerprint() || cp.NormalFingerprint != normal.Fingerprint() {
		return nil, nil, fmt.Errorf("cover: checkpoint fingerprint (tumor %016x, normal %016x) does not match these matrices: %w",
			cp.TumorFingerprint, cp.NormalFingerprint, ErrFingerprintMismatch)
	}
	if len(cp.Combos) != len(cp.NewlyCovered) {
		return nil, nil, fmt.Errorf("cover: checkpoint has %d combos but %d cover counts",
			len(cp.Combos), len(cp.NewlyCovered))
	}
	if len(cp.Scores) != 0 && len(cp.Scores) != len(cp.Combos) {
		return nil, nil, fmt.Errorf("cover: checkpoint has %d combos but %d scores",
			len(cp.Combos), len(cp.Scores))
	}

	res := &Result{Options: opt, Evaluated: cp.Evaluated, Pruned: cp.Pruned}
	active := bitmat.AllOnes(tumor.Samples())
	buf := make([]uint64, tumor.Words())
	for i, ids := range cp.Combos {
		if len(ids) != opt.Hits {
			return nil, nil, fmt.Errorf("cover: checkpoint combo %d has %d genes, want %d",
				i, len(ids), opt.Hits)
		}
		for _, g := range ids {
			if g < 0 || g >= tumor.Genes() {
				return nil, nil, fmt.Errorf("cover: checkpoint combo %d references gene %d of %d",
					i, g, tumor.Genes())
			}
		}
		tumor.ComboVec(buf, ids...)
		cov := bitmat.NewVec(tumor.Samples())
		copy(cov.Words(), buf)
		cov.And(active)
		newly := cov.PopCount()
		if newly != cp.NewlyCovered[i] {
			return nil, nil, fmt.Errorf("cover: checkpoint combo %d covers %d samples on replay, recorded %d",
				i, newly, cp.NewlyCovered[i])
		}
		active.AndNot(cov)
		res.Covered += newly
		combo := replayCombo(ids)
		if len(cp.Scores) > 0 {
			combo.F = cp.Scores[i]
		}
		res.Steps = append(res.Steps, Step{
			Combo:        combo,
			NewlyCovered: newly,
			ActiveAfter:  active.PopCount(),
		})
	}
	return res, active, nil
}
