package cover

import (
	"errors"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/reduce"
	"repro/internal/sched"
	"repro/internal/sparsemat"
)

// Engine selects the scan representation (docs/SPARSE.md). It is an
// execution knob, not a semantic one: both engines produce bit-identical
// winners, Counts, and checkpoints, so Engine appears in neither
// Checkpoint nor the service result-cache key — a run checkpointed under
// one engine resumes under the other.
type Engine int

const (
	// EngineAuto picks per instance: post-kernelization, the scan
	// matrices' mean row occupancy (set samples per gene row) is compared
	// against the scheme's measured crossover (BENCH_9.json) and the
	// cheaper engine wins.
	EngineAuto Engine = iota
	// EngineDense always runs the packed bit-matrix kernels.
	EngineDense
	// EngineSparse always runs the sorted-index merge kernels. Only the
	// prunable schemes (2x1, 2x2, 3x1, 1x3) have sparse kernels; Pair and
	// 4x1 have no loop-invariant prefix worth merging and stay dense.
	EngineSparse
)

// String returns "auto", "dense" or "sparse".
func (e Engine) String() string {
	switch e {
	case EngineDense:
		return "dense"
	case EngineSparse:
		return "sparse"
	}
	return "auto"
}

// ParseEngine parses "auto", "dense" or "sparse" (the CLI/service spec
// spelling); the empty string means EngineAuto.
func ParseEngine(s string) (Engine, error) {
	switch s {
	case "", "auto":
		return EngineAuto, nil
	case "dense":
		return EngineDense, nil
	case "sparse":
		return EngineSparse, nil
	}
	return EngineAuto, fmt.Errorf("cover: unknown engine %q (want auto, dense or sparse)", s)
}

// ErrSparseBitSplice rejects Engine=Sparse combined with BitSplice: the
// sparse path has no word splice (covered samples are masked out of the
// merge instead), so the combination is a configuration error, mirroring
// the Kernelize∧BitSplice rejection.
var ErrSparseBitSplice = errors.New("cover: Engine=Sparse and BitSplice are mutually exclusive (the sparse path has no word splice)")

// sparseCapable reports whether the scheme has a sparse kernel. The set
// coincides with prunable(): a scheme with no loop-invariant prefix has
// neither a bound to check nor a prefix list worth materializing.
func (s Scheme) sparseCapable() bool { return s.prunable() }

// sparseCrossover returns the break-even mean row occupancy — set
// samples per gene row, density×samples — below which Auto goes sparse
// for the given scheme. Occupancy, not raw density, is the quantity the
// engines actually trade on: a merge step costs a few times a dense
// word AND-popcount, and a prefix merge walks ~2×occupancy elements
// while the dense fold walks samples/64 words regardless of how empty
// they are. The constants come from the BENCH_9.json dense-vs-sparse
// sweep (cmd/benchreport -exp sparse): at 2x1, ACC cohorts (~1.4
// set samples per row) run ~25% faster sparse while BRCA at ~10 already
// loses 2× to the unrolled dense fold; the 4-hit schemes tolerate more
// occupancy because the deeper nests reuse each merged prefix across a
// longer inner cascade — LGG 3x1 at ~6.5 runs 3× faster sparse, BRCA
// 4-hit cells at ~43 lose badly.
func sparseCrossover(s Scheme) float64 {
	switch s {
	case Scheme2x1:
		return 4
	case Scheme2x2, Scheme3x1, Scheme1x3:
		return 12
	}
	return 0
}

// SparseCrossover exposes the scheme's break-even mean row occupancy for
// reporting (cmd/benchreport writes it next to the measured dense/sparse
// ns/op in BENCH_9.json); 0 means the scheme has no sparse kernel.
func SparseCrossover(s Scheme) float64 { return sparseCrossover(s) }

// ResolveEngine resolves EngineAuto against the actual scan matrices —
// for kernelized runs the post-reduction matrices, which is why callers
// resolve after kernelization. A non-Auto engine is returned unchanged;
// Auto falls back to dense whenever the sparse path is structurally
// unavailable (BitSplice, non-sparse-capable scheme), otherwise it
// compares the matrices' mean row occupancy against the scheme
// crossover.
func ResolveEngine(opt Options, tumor, normal *bitmat.Matrix) Engine {
	if opt.Engine != EngineAuto {
		return opt.Engine
	}
	if opt.BitSplice || !opt.Scheme.sparseCapable() {
		return EngineDense
	}
	rows := float64(tumor.Genes() + normal.Genes())
	if rows == 0 {
		return EngineDense
	}
	meanRow := float64(tumor.PopCount()+normal.PopCount()) / rows
	if meanRow < sparseCrossover(opt.Scheme) {
		return EngineSparse
	}
	return EngineDense
}

// resolveEngine resolves opt.Engine in place against the matrices about
// to be scanned — the safety net for the scan entry points not reached
// through RunCtx (FindBestCtx, FindBestRangeCtx, ScanPartition).
func resolveEngine(opt *Options, tumor, normal *bitmat.Matrix) Engine {
	opt.Engine = ResolveEngine(*opt, tumor, normal)
	return opt.Engine
}

// sparseEnv is the sparse-engine sibling of the dense matrices in
// kernelEnv: CSR views of the same tumor/normal instance, flattened
// per-column weights (nil when the instance is unweighted), and the
// active-sample mask in packed form (nil when every sample is active).
// findBest builds one per pass, so a kernelized run's per-iteration
// SelectRows rebuild gets a fresh CSR of exactly the surviving genes.
type sparseEnv struct {
	t, n   *sparsemat.Matrix
	tw, nw []int32
	mask   []uint64
	// tRows/nRows cache the per-gene row slices so the kernels' inner
	// loops index an array instead of calling Row, whose range check
	// (with its panic path) stops it inlining.
	tRows, nRows [][]int32
	// tMax/nMax bound the per-worker scratch lists.
	tMax, nMax int
}

// newSparseEnv converts one pass's scan state to sparse form. The O(G·W)
// conversion is paid once per pass and is negligible next to the scan.
func newSparseEnv(tumor, normal *bitmat.Matrix, active *bitmat.Vec, tw, nw *bitmat.Weights) *sparseEnv {
	sp := &sparseEnv{
		t: sparsemat.FromBitmat(tumor),
		n: sparsemat.FromBitmat(normal),
	}
	sp.tMax = sp.t.MaxRowLen()
	sp.nMax = sp.n.MaxRowLen()
	sp.tRows = make([][]int32, sp.t.Genes())
	for g := range sp.tRows {
		sp.tRows[g] = sp.t.Row(g)
	}
	sp.nRows = make([][]int32, sp.n.Genes())
	for g := range sp.nRows {
		sp.nRows[g] = sp.n.Row(g)
	}
	if active.PopCount() != active.Len() {
		sp.mask = active.Words()
	}
	sp.tw = flattenWeights(tw, tumor.Samples())
	sp.nw = flattenWeights(nw, normal.Samples())
	return sp
}

// flattenWeights expands the bit-plane weight encoding into one int32 per
// column, the random-access form the merge kernels sum over.
func flattenWeights(w *bitmat.Weights, samples int) []int32 {
	if w == nil {
		return nil
	}
	out := make([]int32, samples)
	for j := 0; j < samples; j++ {
		out[j] = int32(w.Weight(j))
	}
	return out
}

// ensureSparse sizes the worker scratch's index lists for the pass's
// sparse environment. Called once per worker at setup (never inside a
// kernel, which must stay allocation-free).
func (s *kernelScratch) ensureSparse(sp *sparseEnv) {
	if len(s.st1) < sp.tMax {
		s.st1 = make([]int32, sp.tMax)
		s.st2 = make([]int32, sp.tMax)
		s.st3 = make([]int32, sp.tMax)
	}
	if len(s.sn2) < sp.nMax {
		s.sn2 = make([]int32, sp.nMax)
		s.sn3 = make([]int32, sp.nMax)
	}
}

// sparseMinTP returns the smallest tumor count whose prefix upper bound
// still survives the shared incumbent — the merge short-circuit
// threshold. A prefix prunes iff its tp is strictly below the returned
// value, because score(tp, 0) is monotone in tp: the threshold search
// and the dense engine's per-prefix prune(tp) call therefore take
// identical decisions against the same bound. cap is the largest
// achievable count; a return of cap+1 means even a lossless prefix is
// dominated and the merge can be skipped outright. With no incumbent the
// threshold is 0 and nothing short-circuits.
//
// The threshold depends only on the bound, not on the prefix, so each
// worker memoizes it in its scratch keyed by the bound's sortKey
// snapshot: the steady-state cost per prefix is one atomic load and one
// compare — the same as the dense engine's prune(tp) — and the search
// itself reruns only the O(log) times per scan the incumbent improves.
func (e *kernelEnv) sparseMinTP(s *kernelScratch, cap int) int {
	if e.shared == nil {
		return 0
	}
	bound := e.shared.BoundKey()
	if !s.spBoundOK || bound != s.spBoundKey {
		s.spTPStar = e.solveSparseMinTP(bound)
		s.spBoundKey = bound
		s.spBoundOK = true
	}
	if s.spTPStar > cap {
		return cap + 1
	}
	return s.spTPStar
}

// solveSparseMinTP binary-searches the smallest tp whose upper bound
// score(tp, 0) is not strictly below the bound snapshot. The search is
// cap-independent (the hi limit is far above any achievable count) so
// the result can be memoized across prefixes and clamped per call.
func (e *kernelEnv) solveSparseMinTP(bound uint64) int {
	lo, hi := 0, 1<<31
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if reduce.SortKey(e.score(mid, 0)) < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// sparsePrefixT folds two tumor rows under the active mask into dst and
// reports the surviving list and whether the prefix is dominated — the
// sparse counterpart of the dense tfold+prune pair. Unweighted instances
// short-circuit the merge at the incumbent-derived threshold; weighted
// instances merge fully (an element count does not bound a weighted
// count) and threshold the weighted sum exactly as the dense engine
// does.
func (e *kernelEnv) sparsePrefixT(s *kernelScratch, dst, a, b []int32) ([]int32, bool) {
	sp := e.sparse
	if sp.tw == nil {
		cap := len(a)
		if len(b) < cap {
			cap = len(b)
		}
		minTP := e.sparseMinTP(s, cap)
		if minTP > cap {
			return nil, true
		}
		out, ok := sparsemat.IntersectIntoMaskMin(dst, a, b, sp.mask, minTP)
		if !ok {
			return nil, true
		}
		return out, len(out) < minTP
	}
	out, _ := sparsemat.IntersectIntoMaskMin(dst, a, b, sp.mask, 0)
	return out, e.prune(sparsemat.CountWeighted(out, sp.tw))
}

// sparsePrefixNext deepens an already-masked prefix list by one more
// tumor row, with the same domination contract as sparsePrefixT.
func (e *kernelEnv) sparsePrefixNext(s *kernelScratch, dst, prev, row []int32) ([]int32, bool) {
	sp := e.sparse
	if sp.tw == nil {
		cap := len(prev)
		if len(row) < cap {
			cap = len(row)
		}
		minTP := e.sparseMinTP(s, cap)
		if minTP > cap {
			return nil, true
		}
		out, ok := sparsemat.IntersectIntoMaskMin(dst, prev, row, nil, minTP)
		if !ok {
			return nil, true
		}
		return out, len(out) < minTP
	}
	out, _ := sparsemat.IntersectIntoMaskMin(dst, prev, row, nil, 0)
	return out, e.prune(sparsemat.CountWeighted(out, sp.tw))
}

// sparseRow1 masks a single tumor row — the depth-1 prefix of the 1x3
// scheme — with the same domination contract as sparsePrefixT.
func (e *kernelEnv) sparseRow1(dst, row []int32) ([]int32, bool) {
	sp := e.sparse
	var out []int32
	if sp.mask == nil {
		out = row
	} else {
		out = sparsemat.FilterMask(dst, row, sp.mask)
	}
	if sp.tw == nil {
		return out, e.prune(len(out))
	}
	return out, e.prune(sparsemat.CountWeighted(out, sp.tw))
}

// stpop returns the (weighted) tumor count of prefix ∩ row — the sparse
// tpop2 over an already-masked prefix list.
func (e *kernelEnv) stpop(prefix, row []int32) int {
	if e.sparse.tw == nil {
		return sparsemat.IntersectCount(prefix, row)
	}
	return sparsemat.IntersectCountWeighted(prefix, row, e.sparse.tw)
}

// snpop is stpop on the normal side.
func (e *kernelEnv) snpop(prefix, row []int32) int {
	if e.sparse.nw == nil {
		return sparsemat.IntersectCount(prefix, row)
	}
	return sparsemat.IntersectCountWeighted(prefix, row, e.sparse.nw)
}

// The sparse kernels below mirror their dense siblings in kernels.go
// step for step: identical λ traversal, identical observe() cadence
// (including the reduce.None observations of pruned threads, which keep
// block boundaries and therefore the tie-broken reduction identical),
// identical Evaluated increments, and identical Pruned subtree credits.
// The only difference is the representation: prefixes are merged sample
// lists instead of folded words, and the prune decision comes from the
// merge threshold (sparseMinTP) instead of a popcount — the decisions
// coincide, see docs/SPARSE.md for the argument. MemOpt1/MemOpt2 do not
// apply: the sparse path is always fully hoisted, and the prefix tp that
// drives pruning is the same in every dense MemOpt variant.

// sparse2x1 is the sparse 3-hit kernel: thread (i, j) merges its tumor
// and normal prefixes once and intersects row k against them.
func sparse2x1(env *kernelEnv, part sched.Partition, s *kernelScratch, observe func(reduce.Combo)) Counts {
	sp := env.sparse
	g := sp.t.Genes()
	var n Counts

	i, j := combinat.PairCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		tlist, pruned := env.sparsePrefixT(s, s.st2, sp.tRows[i], sp.tRows[j])
		if pruned {
			n.Pruned += uint64(g - j - 1)
		} else {
			nlist := sparsemat.IntersectInto(s.sn2, sp.nRows[i], sp.nRows[j])
			for k := j + 1; k < g; k++ {
				tp := env.stpop(tlist, sp.tRows[k])
				nh := env.snpop(nlist, sp.nRows[k])
				if c := reduce.NewCombo3(env.score(tp, nh), i, j, k); c.Better(best) {
					best = c
					env.offer(c)
				}
				n.Evaluated++
			}
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
		}
	}
	return n
}

// sparse2x2 is the sparse 4-hit 2x2 kernel: thread (i, j) runs the
// depth-2 nest over (k, l), deepening the merged prefix at each level.
func sparse2x2(env *kernelEnv, part sched.Partition, s *kernelScratch, observe func(reduce.Combo)) Counts {
	sp := env.sparse
	g := sp.t.Genes()
	var n Counts

	i, j := combinat.PairCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		tlist2, pruned := env.sparsePrefixT(s, s.st2, sp.tRows[i], sp.tRows[j])
		if pruned {
			n.Pruned += choose2(g - j - 1)
			observe(best)
			i++
			if i == j {
				i, j = 0, j+1
			}
			continue
		}
		nlist2 := sparsemat.IntersectInto(s.sn2, sp.nRows[i], sp.nRows[j])
		for k := j + 1; k < g-1; k++ {
			tlist3, pruned := env.sparsePrefixNext(s, s.st3, tlist2, sp.tRows[k])
			if pruned {
				n.Pruned += uint64(g - k - 1)
				continue
			}
			nlist3 := sparsemat.IntersectInto(s.sn3, nlist2, sp.nRows[k])
			for l := k + 1; l < g; l++ {
				tp := env.stpop(tlist3, sp.tRows[l])
				nh := env.snpop(nlist3, sp.nRows[l])
				if c := reduce.NewCombo4(env.score(tp, nh), i, j, k, l); c.Better(best) {
					best = c
					env.offer(c)
				}
				n.Evaluated++
			}
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
		}
	}
	return n
}

// sparse1x3 is the sparse 4-hit 1x3 kernel: thread i runs the full
// depth-3 nest, with the masked row-i list hoisted across it.
func sparse1x3(env *kernelEnv, part sched.Partition, s *kernelScratch, observe func(reduce.Combo)) Counts {
	sp := env.sparse
	g := sp.t.Genes()
	var n Counts

	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		i := combinat.ToInt(lambda)
		best := reduce.None
		tlist1, pruned := env.sparseRow1(s.st1, sp.tRows[i])
		if pruned {
			n.Pruned += choose3(g - i - 1)
			observe(best)
			continue
		}
		for j := i + 1; j < g-2; j++ {
			tlist2, pruned := env.sparsePrefixNext(s, s.st2, tlist1, sp.tRows[j])
			if pruned {
				n.Pruned += choose2(g - j - 1)
				continue
			}
			nlist2 := sparsemat.IntersectInto(s.sn2, sp.nRows[i], sp.nRows[j])
			for k := j + 1; k < g-1; k++ {
				tlist3, pruned := env.sparsePrefixNext(s, s.st3, tlist2, sp.tRows[k])
				if pruned {
					n.Pruned += uint64(g - k - 1)
					continue
				}
				nlist3 := sparsemat.IntersectInto(s.sn3, nlist2, sp.nRows[k])
				for l := k + 1; l < g; l++ {
					tp := env.stpop(tlist3, sp.tRows[l])
					nh := env.snpop(nlist3, sp.nRows[l])
					if c := reduce.NewCombo4(env.score(tp, nh), i, j, k, l); c.Better(best) {
						best = c
						env.offer(c)
					}
					n.Evaluated++
				}
			}
		}
		observe(best)
	}
	return n
}

// sparse3x1 is the sparse 4-hit 3x1 kernel: thread (i, j, k) merges its
// three fixed rows and intersects row l against them. The dense kernel
// has a single prune point after folding all three rows; the sparse
// cascade may already refuse at the (i, j) merge, which is the same
// decision — the depth-3 count never exceeds the depth-2 count, so a
// dominated (i, j) implies the dense depth-3 check would have pruned
// too, and the subtree credit (g−k−1) is identical either way.
func sparse3x1(env *kernelEnv, part sched.Partition, s *kernelScratch, observe func(reduce.Combo)) Counts {
	sp := env.sparse
	g := sp.t.Genes()
	var n Counts

	i, j, k := combinat.TripleCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		tlist2, pruned := env.sparsePrefixT(s, s.st2, sp.tRows[i], sp.tRows[j])
		if !pruned {
			var tlist3 []int32
			tlist3, pruned = env.sparsePrefixNext(s, s.st3, tlist2, sp.tRows[k])
			if !pruned {
				nlist2 := sparsemat.IntersectInto(s.sn2, sp.nRows[i], sp.nRows[j])
				nlist3 := sparsemat.IntersectInto(s.sn3, nlist2, sp.nRows[k])
				for l := k + 1; l < g; l++ {
					tp := env.stpop(tlist3, sp.tRows[l])
					nh := env.snpop(nlist3, sp.nRows[l])
					if c := reduce.NewCombo4(env.score(tp, nh), i, j, k, l); c.Better(best) {
						best = c
						env.offer(c)
					}
					n.Evaluated++
				}
			}
		}
		if pruned {
			n.Pruned += uint64(g - k - 1)
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
			if j == k {
				i, j, k = 0, 1, k+1
			}
		}
	}
	return n
}
