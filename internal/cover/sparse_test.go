package cover

import (
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/dataset"
)

// TestSparseFindBestMatchesDense is the engine-differential core: on
// seeded BRCA/LGG/ACC cohorts, for every sparse-capable scheme and both
// 1 and 4 workers, the sparse engine returns the bit-identical winner as
// the dense engine and the exhaustive reference. With one worker the
// scan is deterministic, so the Evaluated/Pruned split — not just the
// total — must match the dense engine exactly.
func TestSparseFindBestMatchesDense(t *testing.T) {
	cohorts := []*dataset.Cohort{
		pruneCohort(t, dataset.BRCA(), 26, 7),
		pruneCohort(t, dataset.LGG(), 24, 11),
		pruneCohort(t, dataset.ACC(), 22, 19),
	}
	schemes := []Options{
		{Hits: 3, Scheme: Scheme2x1},
		{Hits: 4, Scheme: Scheme2x2},
		{Hits: 4, Scheme: Scheme3x1},
		{Hits: 4, Scheme: Scheme1x3},
	}
	for ci, c := range cohorts {
		for _, base := range schemes {
			exact, err := ExhaustiveBest(c.Tumor, c.Normal, nil, base.Hits, DefaultAlpha)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 4} {
				dense := base
				dense.Workers = workers
				dense.Engine = EngineDense
				dBest, dCnt, err := FindBest(c.Tumor, c.Normal, nil, dense)
				if err != nil {
					t.Fatal(err)
				}
				sparse := base
				sparse.Workers = workers
				sparse.Engine = EngineSparse
				sBest, sCnt, err := FindBest(c.Tumor, c.Normal, nil, sparse)
				if err != nil {
					t.Fatal(err)
				}
				if sBest != dBest || sBest != exact {
					t.Fatalf("cohort %d %s workers=%d: sparse %v dense %v exhaustive %v",
						ci, base.Scheme, workers, sBest, dBest, exact)
				}
				if sCnt.Scanned() != dCnt.Scanned() {
					t.Fatalf("cohort %d %s workers=%d: sparse scanned %d, dense %d",
						ci, base.Scheme, workers, sCnt.Scanned(), dCnt.Scanned())
				}
				if workers == 1 && sCnt != dCnt {
					t.Fatalf("cohort %d %s: deterministic counts differ: sparse %+v dense %+v",
						ci, base.Scheme, sCnt, dCnt)
				}
				if workers == 1 && sCnt.Pruned == 0 {
					// The merge short-circuit must actually fire on these
					// planted cohorts or the sparse bound layer is dead code.
					t.Fatalf("cohort %d %s: sparse pruning never fired", ci, base.Scheme)
				}
			}
		}
	}
}

// TestSparseRunMatchesDense pins the full greedy loop across engines —
// mask mode and kernelized, with the per-iteration checkpoint stream
// marshaled and compared byte for byte, so harness resume artifacts are
// provably engine-independent.
func TestSparseRunMatchesDense(t *testing.T) {
	cohorts := []*dataset.Cohort{
		pruneCohort(t, dataset.BRCA(), 22, 3),
		pruneCohort(t, dataset.ACC(), 20, 23),
	}
	for ci, c := range cohorts {
		for _, hits := range []int{3, 4} {
			for _, kernelize := range []bool{false, true} {
				runOne := func(engine Engine) (*Result, [][]byte) {
					var cps [][]byte
					res, err := Run(c.Tumor, c.Normal, Options{
						Hits: hits, Workers: 1, Kernelize: kernelize, Engine: engine,
						CheckpointEvery: 1,
						OnCheckpoint: func(cp *Checkpoint) {
							b, err := json.Marshal(cp)
							if err != nil {
								t.Fatal(err)
							}
							cps = append(cps, b)
						},
					})
					if err != nil {
						t.Fatal(err)
					}
					return res, cps
				}
				dres, dcps := runOne(EngineDense)
				sres, scps := runOne(EngineSparse)

				dCombos, sCombos := dres.Combos(), sres.Combos()
				if len(dCombos) != len(sCombos) {
					t.Fatalf("cohort %d hits=%d kern=%v: %d vs %d steps",
						ci, hits, kernelize, len(sCombos), len(dCombos))
				}
				for i := range dCombos {
					if sCombos[i] != dCombos[i] {
						t.Fatalf("cohort %d hits=%d kern=%v step %d: sparse %v dense %v",
							ci, hits, kernelize, i, sCombos[i], dCombos[i])
					}
				}
				if sres.Covered != dres.Covered || sres.Uncoverable != dres.Uncoverable {
					t.Fatalf("cohort %d hits=%d kern=%v: totals differ", ci, hits, kernelize)
				}
				// Single worker ⇒ the whole work accounting is deterministic
				// and must be engine-invariant, split included.
				if sres.Evaluated != dres.Evaluated || sres.Pruned != dres.Pruned {
					t.Fatalf("cohort %d hits=%d kern=%v: counts sparse %d/%d dense %d/%d",
						ci, hits, kernelize, sres.Evaluated, sres.Pruned, dres.Evaluated, dres.Pruned)
				}
				if len(dcps) != len(scps) {
					t.Fatalf("cohort %d hits=%d kern=%v: %d vs %d checkpoints",
						ci, hits, kernelize, len(scps), len(dcps))
				}
				for i := range dcps {
					if string(scps[i]) != string(dcps[i]) {
						t.Fatalf("cohort %d hits=%d kern=%v: checkpoint %d bytes differ:\nsparse: %s\ndense:  %s",
							ci, hits, kernelize, i, scps[i], dcps[i])
					}
				}
				// Provenance: the resolved engine is echoed in the result.
				if sres.Options.Engine != EngineSparse || dres.Options.Engine != EngineDense {
					t.Fatalf("cohort %d hits=%d kern=%v: engine provenance sparse=%v dense=%v",
						ci, hits, kernelize, sres.Options.Engine, dres.Options.Engine)
				}
			}
		}
	}
}

// TestSparseRangeMatchesDense pins the distributed unit of work
// (FindBestRange) across engines on a λ sub-range.
func TestSparseRangeMatchesDense(t *testing.T) {
	c := pruneCohort(t, dataset.BRCA(), 24, 13)
	base := Options{Hits: 4, Scheme: Scheme3x1}
	for _, rng := range [][2]uint64{{0, 500}, {300, 1100}} {
		d := base
		d.Engine = EngineDense
		dBest, dCnt, err := FindBestRange(c.Tumor, c.Normal, nil, d, rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		s := base
		s.Engine = EngineSparse
		sBest, sCnt, err := FindBestRange(c.Tumor, c.Normal, nil, s, rng[0], rng[1])
		if err != nil {
			t.Fatal(err)
		}
		if sBest != dBest || sCnt != dCnt {
			t.Fatalf("range %v: sparse %v %+v, dense %v %+v", rng, sBest, sCnt, dBest, dCnt)
		}
	}
}

// TestEngineValidation pins the Options-level rejections: Sparse∧BitSplice
// is the typed ErrSparseBitSplice, prefix-free schemes have no sparse
// kernel, and unknown engine values are refused.
func TestEngineValidation(t *testing.T) {
	c := pruneCohort(t, dataset.BRCA(), 18, 1)
	_, err := Run(c.Tumor, c.Normal, Options{Hits: 3, Engine: EngineSparse, BitSplice: true})
	if !errors.Is(err, ErrSparseBitSplice) {
		t.Fatalf("Sparse+BitSplice: got %v, want ErrSparseBitSplice", err)
	}
	for _, scheme := range []Scheme{SchemePair, Scheme4x1} {
		_, _, err := FindBest(c.Tumor, c.Normal, nil, Options{
			Hits: scheme.hits(), Scheme: scheme, Engine: EngineSparse,
		})
		if err == nil {
			t.Fatalf("scheme %s accepted Engine=Sparse", scheme)
		}
	}
	if _, _, err := FindBest(c.Tumor, c.Normal, nil, Options{Hits: 3, Engine: Engine(99)}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestResolveEngineAuto exercises the density heuristic's structural
// gates and both sides of the crossover.
func TestResolveEngineAuto(t *testing.T) {
	c := pruneCohort(t, dataset.BRCA(), 20, 9)
	norm := func(o Options) Options {
		o.Workers = 1
		n, err := o.Normalized()
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	// The crossovers are mean-row-occupancy thresholds (set samples per
	// gene row, see sparseCrossover); constructed instances pin both
	// sides of each band deterministically.
	mk := func(genes, samples, perRow int) *bitmat.Matrix {
		m := bitmat.New(genes, samples)
		for g := 0; g < genes; g++ {
			for b := 0; b < perRow; b++ {
				m.Set(g, (g*perRow+b)%samples)
			}
		}
		return m
	}
	st, sn := mk(40, 640, 1), mk(40, 640, 1) // one set sample per row
	opt := norm(Options{Hits: 3})
	if got := ResolveEngine(opt, st, sn); got != EngineSparse {
		t.Fatalf("low-occupancy auto = %v, want sparse", got)
	}
	// The crossover band is scheme-dependent: at eight set samples per
	// row the 2x1 scan stays dense while the deeper 3x1 cascade, which
	// reuses each merged prefix across a longer inner loop, goes sparse.
	mt, mn := mk(40, 640, 8), mk(40, 640, 8)
	if got := ResolveEngine(norm(Options{Hits: 3}), mt, mn); got != EngineDense {
		t.Fatalf("mid-density 2x1 auto = %v, want dense", got)
	}
	if got := ResolveEngine(norm(Options{Hits: 4, Scheme: Scheme3x1}), mt, mn); got != EngineSparse {
		t.Fatalf("mid-density 3x1 auto = %v, want sparse", got)
	}
	// Structural gates: BitSplice and prefix-free schemes force dense.
	opt = norm(Options{Hits: 3, BitSplice: true})
	if got := ResolveEngine(opt, c.Tumor, c.Normal); got != EngineDense {
		t.Fatalf("BitSplice auto = %v, want dense", got)
	}
	opt = norm(Options{Hits: 2})
	if got := ResolveEngine(opt, c.Tumor, c.Normal); got != EngineDense {
		t.Fatalf("pair-scheme auto = %v, want dense", got)
	}
	// A saturated matrix sits above the crossover.
	full := pruneCohort(t, dataset.BRCA(), 20, 9)
	for g := 0; g < full.Tumor.Genes(); g++ {
		for s := 0; s < full.Tumor.Samples(); s++ {
			full.Tumor.Set(g, s)
		}
	}
	opt = norm(Options{Hits: 3})
	if got := ResolveEngine(opt, full.Tumor, c.Normal); got != EngineDense {
		t.Fatalf("saturated auto = %v, want dense", got)
	}
	// Explicit engines pass through untouched.
	opt = norm(Options{Hits: 3, Engine: EngineDense})
	if got := ResolveEngine(opt, c.Tumor, c.Normal); got != EngineDense {
		t.Fatalf("explicit dense resolved to %v", got)
	}
}

// TestEngineStringParse round-trips the CLI/service spellings.
func TestEngineStringParse(t *testing.T) {
	for _, e := range []Engine{EngineAuto, EngineDense, EngineSparse} {
		got, err := ParseEngine(e.String())
		if err != nil || got != e {
			t.Fatalf("round-trip %v: got %v, %v", e, got, err)
		}
	}
	if e, err := ParseEngine(""); err != nil || e != EngineAuto {
		t.Fatalf("empty engine: got %v, %v", e, err)
	}
	if _, err := ParseEngine("gpu"); err == nil {
		t.Fatal("ParseEngine accepted garbage")
	}
}
