package cover

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/reduce"
)

func TestFindTopKMatchesBruteForce(t *testing.T) {
	for _, hits := range []int{2, 3, 4} {
		for seed := int64(0); seed < 3; seed++ {
			tumor, normal := randomPair(200+seed, 12, 40, 35, 0.4)
			// Brute force: score everything via ExhaustiveBest machinery by
			// collecting per-combination scores with FindTopK at k = C(G,h).
			full, err := FindTopK(tumor, normal, nil, Options{Hits: hits, Workers: 1}, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			// The full list must be sorted and complete.
			counts := map[int]int{2: 66, 3: 220, 4: 495}
			if len(full) != counts[hits] {
				t.Fatalf("hits=%d: enumerated %d combos, want %d", hits, len(full), counts[hits])
			}
			for i := 1; i < len(full); i++ {
				if full[i].Better(full[i-1]) {
					t.Fatalf("hits=%d: list not sorted at %d", hits, i)
				}
			}
			// Top-1 equals FindBest.
			best, _, err := FindBest(tumor, normal, nil, Options{Hits: hits})
			if err != nil {
				t.Fatal(err)
			}
			if full[0] != best {
				t.Fatalf("hits=%d: top-1 %+v != FindBest %+v", hits, full[0], best)
			}
			// Top-K with several K and worker counts equals the prefix.
			for _, k := range []int{1, 5, 17} {
				for _, workers := range []int{1, 3, 8} {
					got, err := FindTopK(tumor, normal, nil,
						Options{Hits: hits, Workers: workers}, k)
					if err != nil {
						t.Fatal(err)
					}
					want := full
					if len(want) > k {
						want = want[:k]
					}
					if len(got) != len(want) {
						t.Fatalf("hits=%d k=%d w=%d: got %d combos", hits, k, workers, len(got))
					}
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("hits=%d k=%d w=%d pos=%d: %+v != %+v",
								hits, k, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

func TestFindTopKValidation(t *testing.T) {
	tumor, normal := randomPair(1, 10, 20, 20, 0.4)
	if _, err := FindTopK(tumor, normal, nil, Options{Hits: 3}, 0); err == nil {
		t.Error("accepted k=0")
	}
	_, other := randomPair(1, 11, 20, 20, 0.4)
	if _, err := FindTopK(tumor, other, nil, Options{Hits: 3}, 5); err == nil {
		t.Error("accepted mismatched matrices")
	}
	if _, err := FindTopK(tumor, normal, nil, Options{Hits: 9}, 5); err == nil {
		t.Error("accepted bad hit count")
	}
}

func TestTopKAccumulator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	acc := reduce.NewTopK(5)
	var all []reduce.Combo
	for i := 0; i < 300; i++ {
		p := rng.Perm(100)[:2]
		if p[0] > p[1] {
			p[0], p[1] = p[1], p[0]
		}
		c := reduce.NewCombo(float64(rng.Intn(40))/40, p[0], p[1])
		all = append(all, c)
		acc.Offer(c)
	}
	acc.Offer(reduce.None) // ignored
	sort.Slice(all, func(a, b int) bool { return all[a].Better(all[b]) })
	// Deduplicate nothing — Offer keeps duplicates; compare directly.
	items := acc.Items()
	if len(items) != 5 {
		t.Fatalf("accumulator holds %d items", len(items))
	}
	for i := 0; i < 5; i++ {
		if items[i] != all[i] {
			t.Fatalf("pos %d: %+v != %+v", i, items[i], all[i])
		}
	}
	// Merge: two halves equal the whole.
	a, b := reduce.NewTopK(5), reduce.NewTopK(5)
	for i, c := range all {
		if i%2 == 0 {
			a.Offer(c)
		} else {
			b.Offer(c)
		}
	}
	a.Merge(b)
	for i := 0; i < 5; i++ {
		if a.Items()[i] != all[i] {
			t.Fatalf("merged pos %d mismatch", i)
		}
	}
}
