package cover

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// The paper stops at h = 4 and notes that every additional hit multiplies
// the search space by ~(G−h)/h (Sec. V). This file extends the engine to
// h = 5 with the natural continuation of the 3x1 scheme — a "4x1" layout
// where thread λ decodes to the quadruple (i, j, k, l) through the
// 4-simplex map and runs one inner loop over m — so the reproduction can
// execute the paper's next step at reduced scale. The 20-byte Combo record
// holds only four gene ids, so 5-hit results use the wider Combo5.

// better5 is the deterministic total order for 5-hit records: higher F,
// ties to the lexicographically smaller gene tuple. It is the one canonical
// comparator for Combo5 — every other 5-hit ordering must route through it,
// which is exactly what the floatcompare analyzer enforces.
func better5(a, b Combo5) bool {
	if a.F != b.F { //lint:allow floatcompare canonical 5-hit total order; all other comparisons route through better5
		return a.F > b.F
	}
	for i := range a.Genes {
		if a.Genes[i] != b.Genes[i] {
			return a.Genes[i] < b.Genes[i]
		}
	}
	return false
}

// none5 is the identity element of the 5-hit reduction.
var none5 = Combo5{Genes: [5]int{-1, -1, -1, -1, -1}, F: -1}

// Result5 is a full 5-hit discovery run.
type Result5 struct {
	// Steps lists the chosen combinations with their newly covered counts.
	Steps []struct {
		Combo        Combo5
		NewlyCovered int
	}
	// Covered and Uncoverable partition the tumor samples.
	Covered     int
	Uncoverable int
	// Evaluated counts scored combinations; Pruned counts combinations
	// skipped by bound-and-prune. Per completed pass their sum equals the
	// λ-domain C(G, 5) — the same Counts.Scanned invariant the h ≤ 4
	// engine keeps — so crash-invariance properties extend to 5-hit.
	Evaluated uint64
	Pruned    uint64
	// Elapsed is the total wall-clock time.
	Elapsed time.Duration
}

// Options5 configures a 5-hit run.
type Options5 struct {
	// Alpha is the true-positive penalty; 0 means DefaultAlpha.
	Alpha float64
	// Workers is the parallel worker count; 0 means GOMAXPROCS.
	Workers int
	// MaxIterations bounds the combinations reported; 0 means exhaustive.
	MaxIterations int
	// NoPrune disables the shared F bound and the prefix upper-bound
	// checks, for differential testing; the winner never changes either way.
	NoPrune bool
}

// Run5 executes the greedy 5-hit cover. The λ-domain is C(G, 4) quadruple
// threads partitioned equi-area (each thread's work is G−1−l, the same
// discrete-level structure as 3x1 one dimension up).
func Run5(tumor, normal *bitmat.Matrix, opt Options5) (*Result5, error) {
	return Run5Ctx(context.Background(), tumor, normal, opt)
}

// Run5Ctx is Run5 under a context: cancellation is observed between
// enumeration passes and between partitions within a pass, so a cancelled
// 5-hit campaign stops within one partition of work.
func Run5Ctx(ctx context.Context, tumor, normal *bitmat.Matrix, opt Options5) (*Result5, error) {
	if tumor.Genes() != normal.Genes() {
		return nil, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if tumor.Genes() < 5 {
		return nil, fmt.Errorf("cover: %d genes cannot form 5-hit combinations", tumor.Genes())
	}
	if tumor.Samples() == 0 {
		return nil, fmt.Errorf("cover: no tumor samples")
	}
	if opt.Alpha == 0 {
		opt.Alpha = DefaultAlpha
	}
	if opt.Alpha < 0 {
		return nil, fmt.Errorf("cover: Alpha must be non-negative, got %g", opt.Alpha)
	}
	if opt.Workers == 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if opt.Workers < 0 {
		return nil, fmt.Errorf("cover: Workers must be non-negative, got %d", opt.Workers)
	}

	res := &Result5{}
	start := time.Now()
	active := bitmat.AllOnes(tumor.Samples())
	buf := make([]uint64, tumor.Words())
	for iter := 0; opt.MaxIterations == 0 || iter < opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			res.Elapsed = time.Since(start)
			return res, err
		}
		remaining := active.PopCount()
		if remaining == 0 {
			break
		}
		best, n, err := findBest5(ctx, tumor, normal, active, opt)
		res.Evaluated += n.Evaluated
		res.Pruned += n.Pruned
		if err != nil {
			// Mirror RunCtx: the partial result — completed steps plus the
			// work counted before the cutoff — comes back with the error.
			res.Elapsed = time.Since(start)
			return res, err
		}
		if best.Genes[0] < 0 { // the none5 sentinel: no combination found
			break
		}
		tumor.ComboVec(buf, best.Genes[:]...)
		cov := bitmat.NewVec(tumor.Samples())
		copy(cov.Words(), buf)
		cov.And(active)
		newly := cov.PopCount()
		if newly == 0 {
			res.Uncoverable = remaining
			break
		}
		active.AndNot(cov)
		res.Covered += newly
		res.Steps = append(res.Steps, struct {
			Combo        Combo5
			NewlyCovered int
		}{best, newly})
		if active.PopCount() == 0 {
			break
		}
	}
	if res.Uncoverable == 0 {
		res.Uncoverable = active.PopCount()
		if opt.MaxIterations > 0 && len(res.Steps) == opt.MaxIterations {
			res.Uncoverable = 0
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// FindBest5 runs one enumeration pass and returns the best 5-hit
// combination and the pass's work counts — Scanned() equals the λ-domain
// C(G, 5). Exported for tests and benchmarks.
func FindBest5(tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options5) (Combo5, Counts, error) {
	if tumor.Genes() != normal.Genes() {
		return none5, Counts{}, fmt.Errorf("cover: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if opt.Alpha == 0 {
		opt.Alpha = DefaultAlpha
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	if active == nil {
		active = bitmat.AllOnes(tumor.Samples())
	}
	return findBest5(context.Background(), tumor, normal, active, opt)
}

// quadCurve builds the 5-hit workload curve: C(g, 4) threads at levels
// indexed by the largest coordinate l, each thread doing g−1−l inner
// iterations.
func quadCurve(g uint64) sched.Curve {
	return sched.NewQuad4x1(g)
}

// findBest5 partitions the quad domain across workers and reduces. Like
// findBest, the domain is oversubscribed 4× and workers claim partitions
// through an atomic counter, checking the context before each claim —
// cancellation latency is one partition. Each worker owns one pair of fold
// buffers for its whole lifetime, so a pass allocates O(workers) scratch
// and the kernel itself allocates nothing (the allocfree analyzer pins
// that). Unless NoPrune is set the workers share an F-only bound
// (reduce.SharedBound): a quadruple prefix whose upper bound falls
// strictly below it skips its whole m loop, which lands in Counts.Pruned.
func findBest5(ctx context.Context, tumor, normal *bitmat.Matrix, active *bitmat.Vec, opt Options5) (Combo5, Counts, error) {
	g := uint64(tumor.Genes())
	curve := quadCurve(g)
	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	parts, err := sched.EquiArea(curve, workers*4)
	if err != nil {
		return none5, Counts{}, err
	}

	denom := float64(tumor.Samples() + normal.Samples())
	nn := normal.Samples()
	var shared *reduce.SharedBound
	if !opt.NoPrune {
		shared = reduce.NewSharedBound()
	}

	bests := make([]Combo5, len(parts))
	for w := range bests {
		bests[w] = none5
	}
	counts := make([]Counts, len(parts))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := scratch5{
				tbuf: make([]uint64, tumor.Words()),
				nbuf: make([]uint64, normal.Words()),
			}
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(parts) {
					return
				}
				if parts[i].Size() == 0 {
					continue
				}
				bests[i], counts[i] = kernel4x1five(tumor, normal, active, opt.Alpha, denom, nn, shared, parts[i], s)
			}
		}()
	}
	wg.Wait()
	best := none5
	var total Counts
	for w := range bests {
		total.add(counts[w])
		if better5(bests[w], best) {
			best = bests[w]
		}
	}
	return best, total, ctx.Err()
}

// scratch5 is one worker's fold buffers, allocated once per worker so the
// kernel stays allocation-free.
type scratch5 struct {
	tbuf []uint64
	nbuf []uint64
}

// kernel4x1five: thread (i, j, k, l) runs one inner loop over m, with the
// four fixed rows (and the active mask) pre-folded into the caller-owned
// scratch. When shared is non-nil the quadruple prefix's upper bound —
// its tumor popcount with zero normal hits, the same float expression the
// inner loop scores with, so rounding cannot invert the bound — is
// checked before the normal-side folds and the m loop; a strictly
// dominated prefix prunes its g−1−l combinations wholesale.
func kernel4x1five(tm, nm *bitmat.Matrix, active *bitmat.Vec, alpha, denom float64, nn int, shared *reduce.SharedBound, part sched.Partition, s scratch5) (Combo5, Counts) {
	g := tm.Genes()
	aw := active.Words()
	tbuf := s.tbuf
	nbuf := s.nbuf
	best := none5
	var n Counts

	i, j, k, l := combinat.QuadCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		bitmat.AndWords(tbuf, aw, tm.Row(i))
		bitmat.AndWords(tbuf, tbuf, tm.Row(j))
		bitmat.AndWords(tbuf, tbuf, tm.Row(k))
		tp4 := bitmat.AndWordsPop(tbuf, tbuf, tm.Row(l))
		ub := (alpha*float64(tp4) + float64(nn)) / denom
		if shared != nil && shared.ShouldPrune(ub) {
			n.Pruned += uint64(g - 1 - l)
		} else {
			bitmat.AndWords(nbuf, nm.Row(i), nm.Row(j))
			bitmat.AndWords(nbuf, nbuf, nm.Row(k))
			bitmat.AndWords(nbuf, nbuf, nm.Row(l))
			for m := l + 1; m < g; m++ {
				tp := bitmat.PopAnd2(tbuf, tm.Row(m))
				tn := nn - bitmat.PopAnd2(nbuf, nm.Row(m))
				f := (alpha*float64(tp) + float64(tn)) / denom
				c := Combo5{Genes: [5]int{i, j, k, l, m}, F: f}
				if better5(c, best) {
					best = c
					if shared != nil {
						shared.Offer(f)
					}
				}
				n.Evaluated++
			}
		}
		i++
		if i == j {
			i, j = 0, j+1
			if j == k {
				j, k = 1, k+1
				if k == l {
					k, l = 2, l+1
				}
			}
		}
	}
	return best, n
}
