package cover

import (
	"bytes"
	"testing"

	"repro/internal/bitmat"
	"repro/internal/dataset"
	"repro/internal/reduce"
)

// TestKernelizedRunMatchesPlain is the tentpole differential guarantee:
// on seeded BRCA and LGG cohorts, the kernelized greedy cover is
// bit-identical to the plain engine — same combinations in the same
// order, same cover counts, and the same scanned total per step, because
// the kernel's removed work is credited to Pruned.
func TestKernelizedRunMatchesPlain(t *testing.T) {
	cohorts := []*dataset.Cohort{
		pruneCohort(t, dataset.BRCA(), 26, 7),
		pruneCohort(t, dataset.LGG(), 24, 11),
	}
	for ci, c := range cohorts {
		for _, hits := range []int{2, 3, 4} {
			full, ok := domainSize(c.Tumor.Genes(), hits)
			if !ok {
				t.Fatal("test domain overflows")
			}
			ref, err := Run(c.Tumor, c.Normal, Options{Hits: hits, Workers: 3})
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 7} {
				got, err := Run(c.Tumor, c.Normal, Options{
					Hits: hits, Workers: workers, Kernelize: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				if got.KernelFingerprint == 0 {
					t.Fatalf("cohort %d hits=%d: kernel fingerprint not recorded", ci, hits)
				}
				if len(got.Steps) != len(ref.Steps) {
					t.Fatalf("cohort %d hits=%d workers=%d: %d steps, want %d",
						ci, hits, workers, len(got.Steps), len(ref.Steps))
				}
				for i := range ref.Steps {
					w, g := ref.Steps[i], got.Steps[i]
					wids, gids := w.Combo.GeneIDs(), g.Combo.GeneIDs()
					for j := range wids {
						if wids[j] != gids[j] {
							t.Fatalf("cohort %d hits=%d workers=%d step %d: %v, want %v",
								ci, hits, workers, i, gids, wids)
						}
					}
					if g.Combo.F != w.Combo.F { //lint:allow floatcompare identical float expressions must agree exactly
						t.Fatalf("cohort %d hits=%d workers=%d step %d: F=%v, want %v",
							ci, hits, workers, i, g.Combo.F, w.Combo.F)
					}
					if g.NewlyCovered != w.NewlyCovered || g.ActiveAfter != w.ActiveAfter {
						t.Fatalf("cohort %d hits=%d workers=%d step %d: cover %d/%d, want %d/%d",
							ci, hits, workers, i, g.NewlyCovered, g.ActiveAfter, w.NewlyCovered, w.ActiveAfter)
					}
					if g.Evaluated+g.Pruned != full {
						t.Fatalf("cohort %d hits=%d workers=%d step %d: scanned %d, want C(G,h)=%d",
							ci, hits, workers, i, g.Evaluated+g.Pruned, full)
					}
				}
				if got.Covered != ref.Covered || got.Uncoverable != ref.Uncoverable {
					t.Fatalf("cohort %d hits=%d workers=%d: totals %d/%d, want %d/%d",
						ci, hits, workers, got.Covered, got.Uncoverable, ref.Covered, ref.Uncoverable)
				}
				if got.Evaluated+got.Pruned != ref.Evaluated+ref.Pruned {
					t.Fatalf("cohort %d hits=%d workers=%d: scanned %d, want %d",
						ci, hits, workers, got.Evaluated+got.Pruned, ref.Evaluated+ref.Pruned)
				}
				if got.Evaluated >= ref.Evaluated+ref.Pruned && hits >= 3 {
					// The kernel must actually shrink something on these
					// planted cohorts or the pass is dead code.
					t.Fatalf("cohort %d hits=%d: kernelized run evaluated the full domain", ci, hits)
				}
			}
		}
	}
}

// TestKernelizedResumeMatchesUninterrupted: a kernelized run interrupted
// mid-cover and resumed from its checkpoint replays into the identical
// continuation — the checkpoint pins the kernel by fingerprint and the
// resumed leg rebuilds it deterministically.
func TestKernelizedResumeMatchesUninterrupted(t *testing.T) {
	c := pruneCohort(t, dataset.BRCA(), 30, 7)
	opt := Options{Hits: 3, Workers: 4, Kernelize: true}
	full, err := Run(c.Tumor, c.Normal, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Steps) < 4 {
		t.Fatalf("need ≥4 steps to split, got %d", len(full.Steps))
	}

	partialOpt := opt
	partialOpt.MaxIterations = 2
	partial, err := Run(c.Tumor, c.Normal, partialOpt)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := partial.ToCheckpoint(c.Tumor, c.Normal).Write(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.Kernelize || cp.KernelFingerprint == 0 {
		t.Fatalf("checkpoint kernelize=%v fingerprint=%x; the kernel was not recorded",
			cp.Kernelize, cp.KernelFingerprint)
	}
	resumed, err := Resume(c.Tumor, c.Normal, opt, cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Steps) != len(full.Steps) {
		t.Fatalf("resumed %d steps, uninterrupted %d", len(resumed.Steps), len(full.Steps))
	}
	for i := range full.Steps {
		wantIDs := full.Steps[i].Combo.GeneIDs()
		gotIDs := resumed.Steps[i].Combo.GeneIDs()
		for j := range wantIDs {
			if wantIDs[j] != gotIDs[j] {
				t.Fatalf("step %d: resumed %v != full %v", i, gotIDs, wantIDs)
			}
		}
		if resumed.Steps[i].NewlyCovered != full.Steps[i].NewlyCovered {
			t.Fatalf("step %d: cover counts differ", i)
		}
	}
	if resumed.Covered != full.Covered || resumed.Uncoverable != full.Uncoverable {
		t.Fatal("totals differ after resume")
	}
	if resumed.Evaluated+resumed.Pruned != full.Evaluated+full.Pruned {
		t.Fatalf("cumulative scanned %d, want %d",
			resumed.Evaluated+resumed.Pruned, full.Evaluated+full.Pruned)
	}
}

// TestReplayRejectsKernelizeMismatch: a checkpoint written by one engine
// mode must not be resumed under the other — resume promises a
// bit-identical continuation, which pins the mode like Hits and Alpha.
func TestReplayRejectsKernelizeMismatch(t *testing.T) {
	c := pruneCohort(t, dataset.LGG(), 20, 5)
	for _, kernelized := range []bool{false, true} {
		opt := Options{Hits: 2, Workers: 2, Kernelize: kernelized, MaxIterations: 1}
		partial, err := Run(c.Tumor, c.Normal, opt)
		if err != nil {
			t.Fatal(err)
		}
		cp := partial.ToCheckpoint(c.Tumor, c.Normal)
		flipped := opt
		flipped.Kernelize = !kernelized
		flipped.MaxIterations = 0
		if _, err := Resume(c.Tumor, c.Normal, flipped, cp); err == nil {
			t.Fatalf("kernelize=%v checkpoint resumed under kernelize=%v", kernelized, !kernelized)
		}
	}
}

// TestKernelizeBitSpliceRejected: the two exclusion regimes are mutually
// exclusive — a kernel's merged columns cannot be spliced per-sample.
func TestKernelizeBitSpliceRejected(t *testing.T) {
	tumor, normal := randomPair(31, 9, 20, 16, 0.3)
	if _, err := Run(tumor, normal, Options{Hits: 2, Kernelize: true, BitSplice: true}); err == nil {
		t.Fatal("Kernelize+BitSplice accepted")
	}
}

// TestCompactKeepNilAndRemap pins the compactKeep contract after the
// satellite rewrite: nil when every row survives (the caller skips the
// rebuild entirely), an explicit ascending keep otherwise — and
// remapCombo through an explicit identity keep is the identity, so the
// two forms can never remap a winner differently.
func TestCompactKeepNilAndRemap(t *testing.T) {
	dense := bitmat.New(4, 8)
	for g := 0; g < 4; g++ {
		dense.Set(g, g)
	}
	if keep := compactKeep(dense); keep != nil {
		t.Fatalf("compactKeep on a dense matrix returned %v, want nil", keep)
	}

	sparse := bitmat.New(4, 8)
	sparse.Set(0, 0)
	sparse.Set(2, 1)
	sparse.Set(3, 2)
	keep := compactKeep(sparse)
	want := []int{0, 2, 3}
	if len(keep) != len(want) {
		t.Fatalf("compactKeep=%v, want %v", keep, want)
	}
	for i := range want {
		if keep[i] != want[i] {
			t.Fatalf("compactKeep=%v, want %v", keep, want)
		}
	}

	combo := reduce.NewCombo2(0.25, 1, 2)
	identity := []int{0, 1, 2, 3}
	if got := remapCombo(combo, identity); got != combo {
		t.Fatalf("identity remap changed %v to %v", combo, got)
	}
	remapped := remapCombo(combo, keep)
	ids := remapped.GeneIDs()
	if ids[0] != 2 || ids[1] != 3 {
		t.Fatalf("remapped ids %v, want [2 3]", ids)
	}
}

// TestFindBest5OverflowRejected: at G where the 5-hit λ-domain C(G, 5)
// wraps uint64, the partitioners must refuse rather than scan a wrapped
// domain (C(100000, 5) ≈ 8.3e22; the C(G, 4) thread count still fits).
func TestFindBest5OverflowRejected(t *testing.T) {
	const genes = 100000
	tumor := bitmat.New(genes, 4)
	normal := bitmat.New(genes, 4)
	tumor.Set(0, 0)
	if _, _, err := FindBest5(tumor, normal, nil, Options5{Workers: 1}); err == nil {
		t.Fatal("FindBest5 accepted a wrapped λ-domain")
	}
	if _, err := Run5(tumor, normal, Options5{Workers: 1}); err == nil {
		t.Fatal("Run5 accepted a wrapped λ-domain")
	}
}
