package cover

import (
	"testing"

	"repro/internal/combinat"
	"repro/internal/dataset"
	"repro/internal/reduce"
)

// pruneCohort generates a small seeded cohort from a registry spec — the
// differential tests run the real generator pipeline, not randomPair's
// uniform noise, so planted combinations give the bound something to prune
// against.
func pruneCohort(t *testing.T, spec dataset.Spec, genes int, seed int64) *dataset.Cohort {
	t.Helper()
	c, err := dataset.Generate(spec.Scaled(genes), seed)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestPrunedFindBestMatchesExhaustive is the core differential guarantee:
// on seeded BRCA and LGG cohorts, the pruned FindBest returns the
// bit-identical winner as the NoPrune scan and as the exhaustive.go
// reference, for every scheme and several worker counts — and the pruned
// scan accounts for exactly the combinations the exhaustive scan scores.
func TestPrunedFindBestMatchesExhaustive(t *testing.T) {
	cohorts := []*dataset.Cohort{
		pruneCohort(t, dataset.BRCA(), 26, 7),
		pruneCohort(t, dataset.LGG(), 24, 11),
	}
	schemes := []struct {
		opt Options
	}{
		{Options{Hits: 2, Scheme: SchemePair}},
		{Options{Hits: 3, Scheme: Scheme2x1}},
		{Options{Hits: 3, Scheme: Scheme2x1, MemOpt1: true}},
		{Options{Hits: 3, Scheme: Scheme2x1, MemOpt1: true, MemOpt2: true}},
		{Options{Hits: 4, Scheme: Scheme2x2}},
		{Options{Hits: 4, Scheme: Scheme3x1}},
		{Options{Hits: 4, Scheme: Scheme1x3}},
		{Options{Hits: 4, Scheme: Scheme4x1}},
	}
	for ci, c := range cohorts {
		for _, sc := range schemes {
			exact, err := ExhaustiveBest(c.Tumor, c.Normal, nil, sc.opt.Hits, DefaultAlpha)
			if err != nil {
				t.Fatal(err)
			}
			ref := sc.opt
			ref.Workers = 1
			ref.NoPrune = true
			unpruned, refCnt, err := FindBest(c.Tumor, c.Normal, nil, ref)
			if err != nil {
				t.Fatal(err)
			}
			if unpruned != exact {
				t.Fatalf("cohort %d %s: NoPrune %v != exhaustive %v",
					ci, sc.opt.Scheme, unpruned, exact)
			}
			if refCnt.Pruned != 0 {
				t.Fatalf("cohort %d %s: NoPrune scan pruned %d combinations",
					ci, sc.opt.Scheme, refCnt.Pruned)
			}
			for _, workers := range []int{1, 2, 7} {
				opt := sc.opt
				opt.Workers = workers
				pruned, cnt, err := FindBest(c.Tumor, c.Normal, nil, opt)
				if err != nil {
					t.Fatal(err)
				}
				if pruned != exact {
					t.Fatalf("cohort %d %s workers=%d: pruned %v != exhaustive %v",
						ci, sc.opt.Scheme, workers, pruned, exact)
				}
				if cnt.Scanned() != refCnt.Evaluated {
					t.Fatalf("cohort %d %s workers=%d: scanned %d (evaluated %d + pruned %d), want %d",
						ci, sc.opt.Scheme, workers, cnt.Scanned(), cnt.Evaluated, cnt.Pruned, refCnt.Evaluated)
				}
				if opt.Scheme.prunable() && workers == 1 && cnt.Pruned == 0 {
					// Single-worker scans are deterministic; on these planted
					// cohorts the bound must actually fire or the layer is
					// dead code.
					t.Fatalf("cohort %d %s: pruning never fired", ci, sc.opt.Scheme)
				}
			}
		}
	}
}

// TestPrunedRunMatchesNoPrune asserts the greedy loop's full output —
// the discovered combinations, in order — is bit-identical with and
// without pruning, in both exclusion modes, including the gene-compaction
// path that BitSplice enables.
func TestPrunedRunMatchesNoPrune(t *testing.T) {
	cohorts := []*dataset.Cohort{
		pruneCohort(t, dataset.BRCA(), 22, 3),
		pruneCohort(t, dataset.LGG(), 20, 5),
	}
	for ci, c := range cohorts {
		for _, hits := range []int{2, 3, 4} {
			for _, splice := range []bool{false, true} {
				ref, err := Run(c.Tumor, c.Normal, Options{
					Hits: hits, Workers: 3, BitSplice: splice, NoPrune: true,
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := Run(c.Tumor, c.Normal, Options{
					Hits: hits, Workers: 3, BitSplice: splice,
				})
				if err != nil {
					t.Fatal(err)
				}
				wantCombos, gotCombos := ref.Combos(), got.Combos()
				if len(wantCombos) != len(gotCombos) {
					t.Fatalf("cohort %d hits=%d splice=%v: %d steps, want %d",
						ci, hits, splice, len(gotCombos), len(wantCombos))
				}
				for i := range wantCombos {
					if gotCombos[i] != wantCombos[i] {
						t.Fatalf("cohort %d hits=%d splice=%v step %d: %v != %v",
							ci, hits, splice, i, gotCombos[i], wantCombos[i])
					}
				}
				if got.Covered != ref.Covered || got.Uncoverable != ref.Uncoverable {
					t.Fatalf("cohort %d hits=%d splice=%v: totals differ", ci, hits, splice)
				}
				if ref.Pruned != 0 {
					t.Fatalf("cohort %d hits=%d splice=%v: NoPrune run pruned %d",
						ci, hits, splice, ref.Pruned)
				}
			}
		}
	}
}

// TestFindBestRangePrunedPartitioning checks the distributed unit of work:
// disjoint pruned ranges reduce to the full-domain winner, and their
// scanned counts tile the domain exactly (range-local incumbents prune
// less than a shared one, never differently).
func TestFindBestRangePrunedPartitioning(t *testing.T) {
	c := pruneCohort(t, dataset.BRCA(), 24, 13)
	opt := Options{Hits: 4, Scheme: Scheme3x1}
	want, cnt, err := FindBest(c.Tumor, c.Normal, nil, Options{Hits: 4, Scheme: Scheme3x1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// FindBestRange's [lo, hi) is over the λ thread domain — C(G, 3)
	// for Scheme3x1 — while Counts tallies scored combinations.
	lambda := combinat.MustBinomial(uint64(c.Tumor.Genes()), 3)
	domain := cnt.Scanned()
	for _, cuts := range []int{1, 3, 8} {
		best := reduce.None
		var total Counts
		size := lambda / uint64(cuts)
		for i := 0; i < cuts; i++ {
			lo := uint64(i) * size
			hi := lo + size
			if i == cuts-1 {
				hi = lambda
			}
			got, n, err := FindBestRange(c.Tumor, c.Normal, nil, opt, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			if got.Better(best) {
				best = got
			}
			total.Evaluated += n.Evaluated
			total.Pruned += n.Pruned
		}
		if best != want {
			t.Fatalf("cuts=%d: reduced winner %v != full-domain %v", cuts, best, want)
		}
		if total.Scanned() != domain {
			t.Fatalf("cuts=%d: ranges scanned %d combinations, domain has %d",
				cuts, total.Scanned(), domain)
		}
	}
}

// TestNoPruneRangeMatchesPruned pins FindBestRange's NoPrune escape hatch:
// same winner, full evaluation, zero pruned.
func TestNoPruneRangeMatchesPruned(t *testing.T) {
	c := pruneCohort(t, dataset.LGG(), 22, 17)
	opt := Options{Hits: 3, Scheme: Scheme2x1, MemOpt1: true, MemOpt2: true}
	want, cnt, err := FindBest(c.Tumor, c.Normal, nil, Options{
		Hits: 3, Scheme: Scheme2x1, MemOpt1: true, MemOpt2: true, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	off := opt
	off.NoPrune = true
	lambda := combinat.PairCount(uint64(c.Tumor.Genes()))
	got, n, err := FindBestRange(c.Tumor, c.Normal, nil, off, 0, lambda)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("NoPrune range winner %v != pruned %v", got, want)
	}
	if n.Pruned != 0 || n.Evaluated != cnt.Scanned() {
		t.Fatalf("NoPrune range counts %+v, want %d evaluated / 0 pruned", n, cnt.Scanned())
	}
}

// TestCompactionDropsGenes drives the splice loop until compaction has
// something to drop, then asserts the remapped winners still carry
// original gene ids (monotone, in range) and the conservation invariant
// holds per step.
func TestCompactionDropsGenes(t *testing.T) {
	c := pruneCohort(t, dataset.BRCA(), 18, 29)
	res, err := Run(c.Tumor, c.Normal, Options{Hits: 3, Workers: 2, BitSplice: true})
	if err != nil {
		t.Fatal(err)
	}
	g := c.Tumor.Genes()
	for i, s := range res.Steps {
		ids := s.Combo.GeneIDs()
		for j, id := range ids {
			if id < 0 || id >= g {
				t.Fatalf("step %d: gene id %d out of range %d", i, id, g)
			}
			if j > 0 && ids[j-1] >= id {
				t.Fatalf("step %d: gene ids not strictly increasing: %v", i, ids)
			}
		}
	}
	ref, err := Run(c.Tumor, c.Normal, Options{Hits: 3, Workers: 2, BitSplice: true, NoPrune: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ref.Steps {
		if res.Steps[i].Combo != ref.Steps[i].Combo {
			t.Fatalf("step %d: compacted %v != NoPrune %v", i, res.Steps[i].Combo, ref.Steps[i].Combo)
		}
	}
}
