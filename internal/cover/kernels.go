package cover

import (
	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// The kernels below are the Go counterparts of the paper's CUDA maxF
// kernels. Each is handed a contiguous λ-range (one worker's partition),
// decodes the starting coordinates once with the combinat maps, and then
// advances coordinates incrementally — the same traversal order a GPU
// thread grid realizes, at sequential-scan cost. observe() is called once
// per thread with the thread's best combination over its inner loop(s);
// the caller folds those through block and tree reduction.
//
// Bound-and-prune (docs/PRUNING.md): when env.shared carries an incumbent,
// each kernel computes the tumor popcount of its pre-folded prefix and
// asks whether the prefix's upper bound — the score the suffix would reach
// if it lost no tumor sample and hit no normal sample — still falls
// strictly below the incumbent's F. If so the remaining nested loop(s)
// are skipped and their combination count lands in Counts.Pruned, so
// Evaluated + Pruned always equals the partition's full enumeration size.
// The upper bound is computed by the same env.score the full evaluation
// uses, so float rounding cannot break its monotonicity.

// kernelScratch is one worker's reusable buffer space. The kernels
// previously allocated their fold buffers per partition call, which a
// multi-iteration Run multiplies into O(partitions × iterations)
// allocations; each worker now allocates one scratch for its lifetime.
type kernelScratch struct {
	// t1 holds the hoisted active ∧ row(i) fold of the 1x3 kernel; t2/t3
	// hold depth-2/depth-3 tumor prefix folds; n2/n3 the normal-side ones.
	t1, t2, t3 []uint64
	n2, n3     []uint64
	// st1/st2/st3 and sn2/sn3 are the sparse engine's prefix index lists
	// (tumor depth-1/2/3 and normal depth-2/3 merges). They stay nil on
	// dense passes and are sized by ensureSparse at worker setup.
	st1, st2, st3 []int32
	sn2, sn3      []int32
	// spBoundKey/spTPStar memoize sparseMinTP's threshold: the smallest
	// surviving tumor count only changes when the shared bound rises, so
	// each worker re-solves it on a bound change and otherwise answers
	// prefix prune queries with one atomic load and one compare.
	spBoundKey uint64
	spTPStar   int
	spBoundOK  bool
	// blockBests is runKernel's reusable block-reduction output.
	blockBests []reduce.Combo
}

// newKernelScratch sizes the buffers for the given matrices.
func newKernelScratch(tumorWords, normalWords int) *kernelScratch {
	return &kernelScratch{
		t1: make([]uint64, tumorWords),
		t2: make([]uint64, tumorWords),
		t3: make([]uint64, tumorWords),
		n2: make([]uint64, normalWords),
		n3: make([]uint64, normalWords),
	}
}

// choose2 returns C(n, 2) for the pruned-combination accounting.
func choose2(n int) uint64 {
	if n < 2 {
		return 0
	}
	return uint64(n) * uint64(n-1) / 2
}

// choose3 returns C(n, 3).
func choose3(n int) uint64 {
	if n < 3 {
		return 0
	}
	return uint64(n) * uint64(n-1) / 2 * uint64(n-2) / 3
}

// kernelPair scores one 2-hit combination per thread. There is no inner
// loop to skip, so the pair kernel never prunes.
func kernelPair(env *kernelEnv, part sched.Partition, observe func(reduce.Combo)) uint64 {
	tm, nm := env.tumor, env.normal
	aw := env.active.Words()
	i, j := combinat.PairCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		tp := env.tpop3(aw, tm.Row(i), tm.Row(j))
		nh := env.npop2(nm.Row(i), nm.Row(j))
		observe(reduce.NewCombo2(env.score(tp, nh), i, j))
		i++
		if i == j {
			i, j = 0, j+1
		}
	}
	return part.Size()
}

// kernel2x1 is the 3-hit kernel (Algorithm 1): thread (i, j) loops over
// k = j+1 … G−1. The MemOpt flags control how much of the thread-invariant
// state is hoisted out of the inner loop, reproducing the Fig. 5 ablation:
//
//	no opts:  rows i, j and k are fetched from the matrix on every k;
//	MemOpt1:  the rows for gene i are fetched once per thread;
//	MemOpt2:  the rows for genes i and j are fetched once per thread and
//	          pre-folded (together with the active mask) into one buffer,
//	          halving the word traffic of the inner loop.
//
// Every variant checks the (i, j) prefix bound before entering the k loop;
// under MemOpt2 the prefix popcount falls out of the fold for free, the
// unfolded variants pay one extra popcount sweep per thread.
func kernel2x1(env *kernelEnv, opt Options, part sched.Partition, s *kernelScratch, observe func(reduce.Combo)) Counts {
	tm, nm := env.tumor, env.normal
	g := tm.Genes()
	aw := env.active.Words()
	tbuf, nbuf := s.t2, s.n2
	var n Counts

	i, j := combinat.PairCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		switch {
		case opt.MemOpt2:
			// Pre-fold active ∧ row(i) ∧ row(j) once per thread.
			bitmat.AndWords(tbuf, aw, tm.Row(i))
			tp2 := env.tfold(tbuf, tbuf, tm.Row(j))
			if env.prune(tp2) {
				n.Pruned += uint64(g - j - 1)
				break
			}
			bitmat.AndWords(nbuf, nm.Row(i), nm.Row(j))
			for k := j + 1; k < g; k++ {
				tp := env.tpop2(tbuf, tm.Row(k))
				nh := env.npop2(nbuf, nm.Row(k))
				if c := reduce.NewCombo3(env.score(tp, nh), i, j, k); c.Better(best) {
					best = c
					env.offer(c)
				}
				n.Evaluated++
			}
		case opt.MemOpt1:
			ti, ni := tm.Row(i), nm.Row(i)
			if env.prune3(aw, ti, tm.Row(j)) {
				n.Pruned += uint64(g - j - 1)
				break
			}
			for k := j + 1; k < g; k++ {
				tp := env.tpop4(aw, ti, tm.Row(j), tm.Row(k))
				nh := env.npop3(ni, nm.Row(j), nm.Row(k))
				if c := reduce.NewCombo3(env.score(tp, nh), i, j, k); c.Better(best) {
					best = c
					env.offer(c)
				}
				n.Evaluated++
			}
		default:
			if env.prune3(aw, tm.Row(i), tm.Row(j)) {
				n.Pruned += uint64(g - j - 1)
				break
			}
			for k := j + 1; k < g; k++ {
				tp := env.tpop4(aw, tm.Row(i), tm.Row(j), tm.Row(k))
				nh := env.npop3(nm.Row(i), nm.Row(j), nm.Row(k))
				if c := reduce.NewCombo3(env.score(tp, nh), i, j, k); c.Better(best) {
					best = c
					env.offer(c)
				}
				n.Evaluated++
			}
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
		}
	}
	return n
}

// kernel2x2 is the 4-hit kernel of Algorithm 2: thread (i, j) runs the
// depth-2 nested loop over (k, l). Fully prefetched, as in the paper's
// production configuration. Pruning checks both fold levels: a dominated
// (i, j) prefix skips the whole C(G−j−1, 2) nest, a dominated (i, j, k)
// prefix skips its l loop.
func kernel2x2(env *kernelEnv, part sched.Partition, s *kernelScratch, observe func(reduce.Combo)) Counts {
	tm, nm := env.tumor, env.normal
	g := tm.Genes()
	aw := env.active.Words()
	tbuf2, nbuf2 := s.t2, s.n2
	tbuf3, nbuf3 := s.t3, s.n3
	var n Counts

	i, j := combinat.PairCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		bitmat.AndWords(tbuf2, aw, tm.Row(i))
		tp2 := env.tfold(tbuf2, tbuf2, tm.Row(j))
		if env.prune(tp2) {
			n.Pruned += choose2(g - j - 1)
			observe(best)
			i++
			if i == j {
				i, j = 0, j+1
			}
			continue
		}
		bitmat.AndWords(nbuf2, nm.Row(i), nm.Row(j))
		for k := j + 1; k < g-1; k++ {
			tp3 := env.tfold(tbuf3, tbuf2, tm.Row(k))
			if env.prune(tp3) {
				n.Pruned += uint64(g - k - 1)
				continue
			}
			bitmat.AndWords(nbuf3, nbuf2, nm.Row(k))
			for l := k + 1; l < g; l++ {
				tp := env.tpop2(tbuf3, tm.Row(l))
				nh := env.npop2(nbuf3, nm.Row(l))
				if c := reduce.NewCombo4(env.score(tp, nh), i, j, k, l); c.Better(best) {
					best = c
					env.offer(c)
				}
				n.Evaluated++
			}
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
		}
	}
	return n
}

// kernel1x3 is the 4-hit 1x3 scheme: thread i runs the full depth-3 nested
// loop over (j, k, l). The paper rejects it — only G threads exist — but it
// completes the scheme ablation. λ is simply the outer index i. The
// active ∧ row(i) fold is invariant across the whole nest, so it is hoisted
// into a one-time prefix buffer per thread (it was previously recomputed
// on every j), and pruning checks all three fold depths.
func kernel1x3(env *kernelEnv, part sched.Partition, s *kernelScratch, observe func(reduce.Combo)) Counts {
	tm, nm := env.tumor, env.normal
	g := tm.Genes()
	aw := env.active.Words()
	t1 := s.t1
	tbuf2, nbuf2 := s.t2, s.n2
	tbuf3, nbuf3 := s.t3, s.n3
	var n Counts

	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		i := combinat.ToInt(lambda)
		best := reduce.None
		tp1 := env.tfold(t1, aw, tm.Row(i))
		if env.prune(tp1) {
			n.Pruned += choose3(g - i - 1)
			observe(best)
			continue
		}
		for j := i + 1; j < g-2; j++ {
			tp2 := env.tfold(tbuf2, t1, tm.Row(j))
			if env.prune(tp2) {
				n.Pruned += choose2(g - j - 1)
				continue
			}
			bitmat.AndWords(nbuf2, nm.Row(i), nm.Row(j))
			for k := j + 1; k < g-1; k++ {
				tp3 := env.tfold(tbuf3, tbuf2, tm.Row(k))
				if env.prune(tp3) {
					n.Pruned += uint64(g - k - 1)
					continue
				}
				bitmat.AndWords(nbuf3, nbuf2, nm.Row(k))
				for l := k + 1; l < g; l++ {
					tp := env.tpop2(tbuf3, tm.Row(l))
					nh := env.npop2(nbuf3, nm.Row(l))
					if c := reduce.NewCombo4(env.score(tp, nh), i, j, k, l); c.Better(best) {
						best = c
						env.offer(c)
					}
					n.Evaluated++
				}
			}
		}
		observe(best)
	}
	return n
}

// kernel4x1 is the fully flattened 4-hit scheme: one thread per
// combination, λ decoded through the 4-simplex map. The paper rejects it
// for its "astronomically large" thread count; here it pays the fold of
// all four rows on every combination because nothing is loop-invariant —
// and with no loop-invariant prefix there is nothing to prune either.
func kernel4x1(env *kernelEnv, part sched.Partition, observe func(reduce.Combo)) uint64 {
	tm, nm := env.tumor, env.normal
	aw := env.active.Words()
	i, j, k, l := combinat.QuadCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		tp := env.tpop5(aw, tm.Row(i), tm.Row(j), tm.Row(k), tm.Row(l))
		nh := env.npop4(nm.Row(i), nm.Row(j), nm.Row(k), nm.Row(l))
		observe(reduce.NewCombo4(env.score(tp, nh), i, j, k, l))
		// Advance (i, j, k, l) in λ order: i fastest, then j, k, l.
		i++
		if i == j {
			i, j = 0, j+1
			if j == k {
				j, k = 1, k+1
				if k == l {
					k, l = 2, l+1
				}
			}
		}
	}
	return part.Size()
}

// kernel3x1 is the 4-hit kernel of Algorithm 3: thread (i, j, k) runs one
// inner loop over l = k+1 … G−1, with the three fixed rows pre-folded. A
// dominated (i, j, k) prefix skips both the normal-side fold and the
// entire l loop.
func kernel3x1(env *kernelEnv, part sched.Partition, s *kernelScratch, observe func(reduce.Combo)) Counts {
	tm, nm := env.tumor, env.normal
	g := tm.Genes()
	aw := env.active.Words()
	tbuf, nbuf := s.t2, s.n2
	var n Counts

	i, j, k := combinat.TripleCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		bitmat.AndWords(tbuf, aw, tm.Row(i))
		bitmat.AndWords(tbuf, tbuf, tm.Row(j))
		tp3 := env.tfold(tbuf, tbuf, tm.Row(k))
		if env.prune(tp3) {
			n.Pruned += uint64(g - k - 1)
		} else {
			bitmat.AndWords(nbuf, nm.Row(i), nm.Row(j))
			bitmat.AndWords(nbuf, nbuf, nm.Row(k))
			for l := k + 1; l < g; l++ {
				tp := env.tpop2(tbuf, tm.Row(l))
				nh := env.npop2(nbuf, nm.Row(l))
				if c := reduce.NewCombo4(env.score(tp, nh), i, j, k, l); c.Better(best) {
					best = c
					env.offer(c)
				}
				n.Evaluated++
			}
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
			if j == k {
				i, j, k = 0, 1, k+1
			}
		}
	}
	return n
}
