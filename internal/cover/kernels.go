package cover

import (
	"math/bits"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// The kernels below are the Go counterparts of the paper's CUDA maxF
// kernels. Each is handed a contiguous λ-range (one worker's partition),
// decodes the starting coordinates once with the combinat maps, and then
// advances coordinates incrementally — the same traversal order a GPU
// thread grid realizes, at sequential-scan cost. observe() is called once
// per thread with the thread's best combination over its inner loop(s);
// the caller folds those through block and tree reduction.

// kernelPair scores one 2-hit combination per thread.
func kernelPair(env *kernelEnv, part sched.Partition, observe func(reduce.Combo)) uint64 {
	tm, nm := env.tumor, env.normal
	aw := env.active.Words()
	i, j := combinat.PairCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		tp := bitmat.PopAnd3(aw, tm.Row(i), tm.Row(j))
		nh := bitmat.PopAnd2(nm.Row(i), nm.Row(j))
		observe(reduce.NewCombo(env.score(tp, nh), i, j))
		i++
		if i == j {
			i, j = 0, j+1
		}
	}
	return part.Size()
}

// kernel2x1 is the 3-hit kernel (Algorithm 1): thread (i, j) loops over
// k = j+1 … G−1. The MemOpt flags control how much of the thread-invariant
// state is hoisted out of the inner loop, reproducing the Fig. 5 ablation:
//
//	no opts:  rows i, j and k are fetched from the matrix on every k;
//	MemOpt1:  the rows for gene i are fetched once per thread;
//	MemOpt2:  the rows for genes i and j are fetched once per thread and
//	          pre-folded (together with the active mask) into one buffer,
//	          halving the word traffic of the inner loop.
func kernel2x1(env *kernelEnv, opt Options, part sched.Partition, observe func(reduce.Combo)) uint64 {
	tm, nm := env.tumor, env.normal
	g := tm.Genes()
	aw := env.active.Words()
	tbuf := make([]uint64, tm.Words())
	nbuf := make([]uint64, nm.Words())
	var evaluated uint64

	i, j := combinat.PairCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		switch {
		case opt.MemOpt2:
			// Pre-fold active ∧ row(i) ∧ row(j) once per thread.
			bitmat.AndWords(tbuf, aw, tm.Row(i))
			bitmat.AndWords(tbuf, tbuf, tm.Row(j))
			bitmat.AndWords(nbuf, nm.Row(i), nm.Row(j))
			for k := j + 1; k < g; k++ {
				tp := bitmat.PopAnd2(tbuf, tm.Row(k))
				nh := bitmat.PopAnd2(nbuf, nm.Row(k))
				if c := reduce.NewCombo(env.score(tp, nh), i, j, k); c.Better(best) {
					best = c
				}
				evaluated++
			}
		case opt.MemOpt1:
			ti, ni := tm.Row(i), nm.Row(i)
			for k := j + 1; k < g; k++ {
				tp := bitmat.PopAnd4(aw, ti, tm.Row(j), tm.Row(k))
				nh := bitmat.PopAnd3(ni, nm.Row(j), nm.Row(k))
				if c := reduce.NewCombo(env.score(tp, nh), i, j, k); c.Better(best) {
					best = c
				}
				evaluated++
			}
		default:
			for k := j + 1; k < g; k++ {
				tp := bitmat.PopAnd4(aw, tm.Row(i), tm.Row(j), tm.Row(k))
				nh := bitmat.PopAnd3(nm.Row(i), nm.Row(j), nm.Row(k))
				if c := reduce.NewCombo(env.score(tp, nh), i, j, k); c.Better(best) {
					best = c
				}
				evaluated++
			}
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
		}
	}
	return evaluated
}

// kernel2x2 is the 4-hit kernel of Algorithm 2: thread (i, j) runs the
// depth-2 nested loop over (k, l). Fully prefetched, as in the paper's
// production configuration.
func kernel2x2(env *kernelEnv, part sched.Partition, observe func(reduce.Combo)) uint64 {
	tm, nm := env.tumor, env.normal
	g := tm.Genes()
	aw := env.active.Words()
	tbuf2 := make([]uint64, tm.Words())
	nbuf2 := make([]uint64, nm.Words())
	tbuf3 := make([]uint64, tm.Words())
	nbuf3 := make([]uint64, nm.Words())
	var evaluated uint64

	i, j := combinat.PairCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		bitmat.AndWords(tbuf2, aw, tm.Row(i))
		bitmat.AndWords(tbuf2, tbuf2, tm.Row(j))
		bitmat.AndWords(nbuf2, nm.Row(i), nm.Row(j))
		for k := j + 1; k < g-1; k++ {
			bitmat.AndWords(tbuf3, tbuf2, tm.Row(k))
			bitmat.AndWords(nbuf3, nbuf2, nm.Row(k))
			for l := k + 1; l < g; l++ {
				tp := bitmat.PopAnd2(tbuf3, tm.Row(l))
				nh := bitmat.PopAnd2(nbuf3, nm.Row(l))
				if c := reduce.NewCombo(env.score(tp, nh), i, j, k, l); c.Better(best) {
					best = c
				}
				evaluated++
			}
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
		}
	}
	return evaluated
}

// kernel1x3 is the 4-hit 1x3 scheme: thread i runs the full depth-3 nested
// loop over (j, k, l). The paper rejects it — only G threads exist — but it
// completes the scheme ablation. λ is simply the outer index i.
func kernel1x3(env *kernelEnv, part sched.Partition, observe func(reduce.Combo)) uint64 {
	tm, nm := env.tumor, env.normal
	g := tm.Genes()
	aw := env.active.Words()
	tbuf2 := make([]uint64, tm.Words())
	nbuf2 := make([]uint64, nm.Words())
	tbuf3 := make([]uint64, tm.Words())
	nbuf3 := make([]uint64, nm.Words())
	var evaluated uint64

	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		i := combinat.ToInt(lambda)
		best := reduce.None
		for j := i + 1; j < g-2; j++ {
			bitmat.AndWords(tbuf2, aw, tm.Row(i))
			bitmat.AndWords(tbuf2, tbuf2, tm.Row(j))
			bitmat.AndWords(nbuf2, nm.Row(i), nm.Row(j))
			for k := j + 1; k < g-1; k++ {
				bitmat.AndWords(tbuf3, tbuf2, tm.Row(k))
				bitmat.AndWords(nbuf3, nbuf2, nm.Row(k))
				for l := k + 1; l < g; l++ {
					tp := bitmat.PopAnd2(tbuf3, tm.Row(l))
					nh := bitmat.PopAnd2(nbuf3, nm.Row(l))
					if c := reduce.NewCombo(env.score(tp, nh), i, j, k, l); c.Better(best) {
						best = c
					}
					evaluated++
				}
			}
		}
		observe(best)
	}
	return evaluated
}

// kernel4x1 is the fully flattened 4-hit scheme: one thread per
// combination, λ decoded through the 4-simplex map. The paper rejects it
// for its "astronomically large" thread count; here it pays the fold of
// all four rows on every combination because nothing is loop-invariant.
func kernel4x1(env *kernelEnv, part sched.Partition, observe func(reduce.Combo)) uint64 {
	tm, nm := env.tumor, env.normal
	aw := env.active.Words()
	i, j, k, l := combinat.QuadCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		tp := 0
		{
			ti, tj, tk, tl := tm.Row(i), tm.Row(j), tm.Row(k), tm.Row(l)
			for w := range ti {
				tp += bits.OnesCount64(aw[w] & ti[w] & tj[w] & tk[w] & tl[w])
			}
		}
		nh := nm.AndPopCount4(i, j, k, l)
		observe(reduce.NewCombo(env.score(tp, nh), i, j, k, l))
		// Advance (i, j, k, l) in λ order: i fastest, then j, k, l.
		i++
		if i == j {
			i, j = 0, j+1
			if j == k {
				j, k = 1, k+1
				if k == l {
					k, l = 2, l+1
				}
			}
		}
	}
	return part.Size()
}

// kernel3x1 is the 4-hit kernel of Algorithm 3: thread (i, j, k) runs one
// inner loop over l = k+1 … G−1, with the three fixed rows pre-folded.
func kernel3x1(env *kernelEnv, part sched.Partition, observe func(reduce.Combo)) uint64 {
	tm, nm := env.tumor, env.normal
	g := tm.Genes()
	aw := env.active.Words()
	tbuf := make([]uint64, tm.Words())
	nbuf := make([]uint64, nm.Words())
	var evaluated uint64

	i, j, k := combinat.TripleCoords(part.Lo)
	for lambda := part.Lo; lambda < part.Hi; lambda++ {
		best := reduce.None
		bitmat.AndWords(tbuf, aw, tm.Row(i))
		bitmat.AndWords(tbuf, tbuf, tm.Row(j))
		bitmat.AndWords(tbuf, tbuf, tm.Row(k))
		bitmat.AndWords(nbuf, nm.Row(i), nm.Row(j))
		bitmat.AndWords(nbuf, nbuf, nm.Row(k))
		for l := k + 1; l < g; l++ {
			tp := bitmat.PopAnd2(tbuf, tm.Row(l))
			nh := bitmat.PopAnd2(nbuf, nm.Row(l))
			if c := reduce.NewCombo(env.score(tp, nh), i, j, k, l); c.Better(best) {
				best = c
			}
			evaluated++
		}
		observe(best)
		i++
		if i == j {
			i, j = 0, j+1
			if j == k {
				i, j, k = 0, 1, k+1
			}
		}
	}
	return evaluated
}
