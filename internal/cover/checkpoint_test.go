package cover

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func TestCheckpointResumeMatchesUninterrupted(t *testing.T) {
	tumor, normal := randomPair(71, 14, 60, 50, 0.4)
	full, err := Run(tumor, normal, Options{Hits: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Steps) < 4 {
		t.Skipf("need ≥4 steps to split, got %d", len(full.Steps))
	}

	// Interrupt after 2 iterations, checkpoint, round-trip through JSON,
	// resume.
	partial, err := Run(tumor, normal, Options{Hits: 3, Workers: 4, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := partial.ToCheckpoint(tumor, normal).Write(&buf); err != nil {
		t.Fatal(err)
	}
	cp, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := Resume(tumor, normal, Options{Hits: 3, Workers: 4}, cp)
	if err != nil {
		t.Fatal(err)
	}

	if len(resumed.Steps) != len(full.Steps) {
		t.Fatalf("resumed %d steps, uninterrupted %d", len(resumed.Steps), len(full.Steps))
	}
	for i := range full.Steps {
		wantIDs := full.Steps[i].Combo.GeneIDs()
		gotIDs := resumed.Steps[i].Combo.GeneIDs()
		for j := range wantIDs {
			if wantIDs[j] != gotIDs[j] {
				t.Fatalf("step %d: resumed %v != full %v", i, gotIDs, wantIDs)
			}
		}
		if resumed.Steps[i].NewlyCovered != full.Steps[i].NewlyCovered {
			t.Fatalf("step %d: cover counts differ", i)
		}
	}
	if resumed.Covered != full.Covered || resumed.Uncoverable != full.Uncoverable {
		t.Fatal("totals differ after resume")
	}
	// The resumed run skipped the first two enumeration passes, but the
	// checkpoint carried their counts, so the cumulative scanned totals
	// agree. (Only the scanned sum is deterministic: with pruning on, the
	// Evaluated/Pruned split varies with worker timing.)
	if resumed.Evaluated+resumed.Pruned != full.Evaluated+full.Pruned {
		t.Fatalf("cumulative scanned %d, want %d",
			resumed.Evaluated+resumed.Pruned, full.Evaluated+full.Pruned)
	}
}

func TestCheckpointRejectsWrongInputs(t *testing.T) {
	tumor, normal := randomPair(73, 12, 40, 30, 0.4)
	partial, err := Run(tumor, normal, Options{Hits: 3, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	cp := partial.ToCheckpoint(tumor, normal)

	// Different matrices.
	otherT, otherN := randomPair(74, 12, 40, 30, 0.4)
	if _, err := Resume(otherT, otherN, Options{Hits: 3}, cp); err == nil {
		t.Error("accepted mismatched matrices")
	}
	// Different hit count.
	if _, err := Resume(tumor, normal, Options{Hits: 2}, cp); err == nil {
		t.Error("accepted mismatched hit count")
	}
	// Different alpha.
	if _, err := Resume(tumor, normal, Options{Hits: 3, Alpha: 0.5}, cp); err == nil {
		t.Error("accepted mismatched alpha")
	}
	// BitSplice not supported.
	if _, err := Resume(tumor, normal, Options{Hits: 3, BitSplice: true}, cp); err == nil {
		t.Error("accepted BitSplice")
	}
	// Tampered cover count.
	bad := *cp
	bad.NewlyCovered = append([]int{}, cp.NewlyCovered...)
	bad.NewlyCovered[0]++
	if _, err := Resume(tumor, normal, Options{Hits: 3}, &bad); err == nil {
		t.Error("accepted tampered cover count")
	}
	// Out-of-range gene.
	bad2 := *cp
	bad2.Combos = [][]int{{0, 1, 99}}
	bad2.NewlyCovered = []int{1}
	if _, err := Resume(tumor, normal, Options{Hits: 3}, &bad2); err == nil {
		t.Error("accepted out-of-range gene id")
	}
}

func TestReadCheckpointErrors(t *testing.T) {
	if _, err := ReadCheckpoint(strings.NewReader("not json")); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ReadCheckpoint(strings.NewReader(`{"version": 99}`)); err == nil {
		t.Error("accepted unknown version")
	}
	if _, err := ReadCheckpoint(strings.NewReader(
		`{"version": 1, "combos": [[1,2]], "newly_covered": []}`)); err == nil {
		t.Error("accepted inconsistent lengths")
	}
}

func TestCheckpointTypedErrors(t *testing.T) {
	// The load-failure modes callers branch on (the CLI reports them, the
	// harness surfaces them) are typed, not just message strings.
	if _, err := ReadCheckpoint(strings.NewReader(`{"version": 99}`)); !errors.Is(err, ErrCheckpointVersion) {
		t.Errorf("unknown version error = %v, want ErrCheckpointVersion", err)
	}
	tumor, normal := randomPair(73, 12, 40, 30, 0.4)
	partial, err := Run(tumor, normal, Options{Hits: 3, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	cp := partial.ToCheckpoint(tumor, normal)
	otherT, otherN := randomPair(74, 12, 40, 30, 0.4)
	if _, err := Resume(otherT, otherN, Options{Hits: 3}, cp); !errors.Is(err, ErrFingerprintMismatch) {
		t.Errorf("mismatched matrices error = %v, want ErrFingerprintMismatch", err)
	}
}

func TestReadCheckpointBoundsInput(t *testing.T) {
	// A checkpoint stream larger than the decode bound must fail cleanly
	// instead of buffering without limit. A valid header followed by an
	// endless field exercises the io.LimitReader cut-off.
	huge := strings.NewReader(`{"version": 1, "combos": [` + strings.Repeat("[1,2],", 1<<20))
	r := io.MultiReader(huge, neverEnding('['))
	if _, err := ReadCheckpoint(r); err == nil {
		t.Error("accepted an unbounded checkpoint stream")
	}
}

// neverEnding is an infinite reader of one repeated byte.
type neverEnding byte

func (b neverEnding) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(b)
	}
	return len(p), nil
}

func TestResumeFromEmptyCheckpoint(t *testing.T) {
	// Resuming from a zero-step checkpoint equals a fresh run.
	tumor, normal := randomPair(79, 12, 40, 30, 0.4)
	empty := (&Result{Options: Options{Hits: 3, Alpha: DefaultAlpha}}).ToCheckpoint(tumor, normal)
	resumed, err := Resume(tumor, normal, Options{Hits: 3}, empty)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(tumor, normal, Options{Hits: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Steps) != len(fresh.Steps) || resumed.Covered != fresh.Covered {
		t.Fatal("empty-checkpoint resume differs from a fresh run")
	}
}

func TestMultiLegCheckpointing(t *testing.T) {
	// Three walltime-limited legs (2 iterations each) must reach the same
	// final cover as one uninterrupted run.
	tumor, normal := randomPair(83, 13, 50, 40, 0.45)
	full, err := Run(tumor, normal, Options{Hits: 3})
	if err != nil {
		t.Fatal(err)
	}
	partial, err := Run(tumor, normal, Options{Hits: 3, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for leg := 0; leg < 5; leg++ {
		cp := partial.ToCheckpoint(tumor, normal)
		cap := len(partial.Steps) + 2
		partial, err = Resume(tumor, normal, Options{Hits: 3, MaxIterations: cap}, cp)
		if err != nil {
			t.Fatal(err)
		}
		if len(partial.Steps) >= len(full.Steps) {
			break
		}
	}
	// Final leg: run to completion.
	cp := partial.ToCheckpoint(tumor, normal)
	final, err := Resume(tumor, normal, Options{Hits: 3}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(final.Steps) != len(full.Steps) || final.Covered != full.Covered {
		t.Fatalf("multi-leg result differs: %d steps vs %d", len(final.Steps), len(full.Steps))
	}
}

func TestCheckpointResumeFromBitSpliceRun(t *testing.T) {
	// A checkpoint taken from a BitSplice run binds to the ORIGINAL
	// matrices (the splice is derived state), so it must resume in mask
	// mode and converge to the same cover as an uninterrupted mask run.
	tumor, normal := randomPair(79, 14, 60, 50, 0.4)
	full, err := Run(tumor, normal, Options{Hits: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Steps) < 3 {
		t.Skipf("need ≥3 steps to split, got %d", len(full.Steps))
	}
	partial, err := Run(tumor, normal, Options{Hits: 3, BitSplice: true, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	cp := partial.ToCheckpoint(tumor, normal)
	resumed, err := Resume(tumor, normal, Options{Hits: 3}, cp)
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed.Steps) != len(full.Steps) || resumed.Covered != full.Covered {
		t.Fatalf("resume from a spliced run: %d steps / %d covered, want %d / %d",
			len(resumed.Steps), resumed.Covered, len(full.Steps), full.Covered)
	}
	for i := range full.Steps {
		if resumed.Steps[i].Combo.GeneIDs()[0] != full.Steps[i].Combo.GeneIDs()[0] ||
			resumed.Steps[i].NewlyCovered != full.Steps[i].NewlyCovered {
			t.Fatalf("step %d diverges: %v vs %v", i, resumed.Steps[i], full.Steps[i])
		}
	}
}

func TestCheckpointCadenceCallback(t *testing.T) {
	tumor, normal := randomPair(71, 14, 60, 50, 0.4)
	var cps []*Checkpoint
	res, err := Run(tumor, normal, Options{
		Hits:            3,
		CheckpointEvery: 2,
		OnCheckpoint:    func(cp *Checkpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	want := len(res.Steps) / 2
	if len(cps) != want {
		t.Fatalf("cadence 2 over %d steps took %d checkpoints, want %d",
			len(res.Steps), len(cps), want)
	}
	for i, cp := range cps {
		if got := len(cp.Combos); got != (i+1)*2 {
			t.Fatalf("checkpoint %d records %d combos, want %d", i, got, (i+1)*2)
		}
	}
	// The last cadence checkpoint resumes to the full result.
	if len(cps) > 0 {
		resumed, err := Resume(tumor, normal, Options{Hits: 3}, cps[len(cps)-1])
		if err != nil {
			t.Fatal(err)
		}
		if len(resumed.Steps) != len(res.Steps) || resumed.Covered != res.Covered {
			t.Fatal("resume from a cadence checkpoint diverges")
		}
	}
}

func TestCheckpointEveryNegativeRejected(t *testing.T) {
	tumor, normal := randomPair(71, 10, 20, 20, 0.4)
	if _, err := Run(tumor, normal, Options{Hits: 3, CheckpointEvery: -1}); err == nil {
		t.Fatal("negative CheckpointEvery accepted")
	}
}

func TestCheckpointCadenceUnderBitSplice(t *testing.T) {
	// Cadence checkpoints taken DURING a splice run must each resume
	// against the original matrices.
	tumor, normal := randomPair(83, 13, 50, 40, 0.45)
	full, err := Run(tumor, normal, Options{Hits: 3})
	if err != nil {
		t.Fatal(err)
	}
	var cps []*Checkpoint
	_, err = Run(tumor, normal, Options{
		Hits:            3,
		BitSplice:       true,
		CheckpointEvery: 1,
		OnCheckpoint:    func(cp *Checkpoint) { cps = append(cps, cp) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cps) == 0 {
		t.Fatal("no cadence checkpoints taken")
	}
	for i, cp := range cps {
		resumed, err := Resume(tumor, normal, Options{Hits: 3}, cp)
		if err != nil {
			t.Fatalf("checkpoint %d does not resume: %v", i, err)
		}
		if len(resumed.Steps) != len(full.Steps) || resumed.Covered != full.Covered {
			t.Fatalf("checkpoint %d resume diverges from the mask run", i)
		}
	}
}
