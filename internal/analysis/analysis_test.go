package analysis_test

import (
	"go/ast"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// loadDemo loads the demo fixture package.
func loadDemo(t *testing.T) (*load.Loader, []*load.Package) {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	root, err := load.FindModuleRoot(abs)
	if err != nil {
		t.Fatal(err)
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	loader.FixtureDir = filepath.Join(abs, "src")
	pkg, err := loader.LoadDir(filepath.Join(abs, "src", "demo"), "demo")
	if err != nil {
		t.Fatal(err)
	}
	return loader, []*load.Package{pkg}
}

// funcDecls indexes the fixture's top-level functions by name.
func funcDecls(pkgs []*load.Package) map[string]*ast.FuncDecl {
	out := make(map[string]*ast.FuncDecl)
	for _, f := range pkgs[0].Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				out[fd.Name.Name] = fd
			}
		}
	}
	return out
}

// TestRunSortsDedupsAndSuppresses pins the diagnostic pipeline: exact
// duplicates collapse to one, output is sorted by position regardless of
// report order, and //lint:allow suppressions filter by analyzer name.
func TestRunSortsDedupsAndSuppresses(t *testing.T) {
	loader, pkgs := loadDemo(t)
	a := &analysis.Analyzer{
		Name: "dupes",
		Doc:  "reports out of order with duplicates for the Run plumbing test",
		Run: func(pass *analysis.Pass) error {
			decls := funcDecls(pkgs)
			pass.Reportf(decls["B"].Pos(), "finding in B")
			pass.Reportf(decls["A"].Pos(), "finding in A")
			pass.Reportf(decls["A"].Pos(), "finding in A")
			pass.Reportf(decls["C"].Body.List[0].Pos(), "finding in C")
			return nil
		},
	}
	res, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (dup collapsed, suppression honored): %+v",
			len(res.Diagnostics), res.Diagnostics)
	}
	if res.Diagnostics[0].Message != "finding in A" || res.Diagnostics[1].Message != "finding in B" {
		t.Errorf("diagnostics not in source order: %q, %q",
			res.Diagnostics[0].Message, res.Diagnostics[1].Message)
	}
	if p, q := res.Diagnostics[0].Pos, res.Diagnostics[1].Pos; p.Line >= q.Line {
		t.Errorf("positions not ascending: line %d then %d", p.Line, q.Line)
	}
}

// TestRunSuppressionIsPerAnalyzer pins that a //lint:allow names one
// analyzer: a different analyzer reporting on the same line is not silenced.
func TestRunSuppressionIsPerAnalyzer(t *testing.T) {
	loader, pkgs := loadDemo(t)
	a := &analysis.Analyzer{
		Name: "other",
		Doc:  "reports on the line suppressed for dupes",
		Run: func(pass *analysis.Pass) error {
			pass.Reportf(funcDecls(pkgs)["C"].Body.List[0].Pos(), "finding in C")
			return nil
		},
	}
	res, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 1 {
		t.Fatalf("got %d diagnostics, want 1 (suppression is for dupes, not other): %+v",
			len(res.Diagnostics), res.Diagnostics)
	}
}

// TestRunScopeAndExclude pins the package filter: a Scope that does not
// match the package's path tail skips it, as does a matching Exclude.
func TestRunScopeAndExclude(t *testing.T) {
	loader, pkgs := loadDemo(t)
	ran := ""
	mk := func(name string, scope, exclude []string) *analysis.Analyzer {
		return &analysis.Analyzer{
			Name:    name,
			Doc:     "records whether it ran",
			Scope:   scope,
			Exclude: exclude,
			Run: func(pass *analysis.Pass) error {
				ran += name + ";"
				return nil
			},
		}
	}
	_, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{
		mk("inscope", []string{"demo"}, nil),
		mk("offscope", []string{"elsewhere"}, nil),
		mk("excluded", nil, []string{"demo"}),
		mk("unscoped", nil, nil),
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != "inscope;unscoped;" {
		t.Errorf("ran = %q, want %q", ran, "inscope;unscoped;")
	}
}
