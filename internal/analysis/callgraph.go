package analysis

import (
	"go/ast"
	"go/types"
)

// This file is the lightweight call-graph layer the interprocedural
// analyzers share. It is deliberately minimal: one node per declared
// function or method of the package under analysis, one edge per statically
// resolvable call. Calls through function values, interface methods, and
// builtins have no edge — each analyzer documents how it treats the
// resulting blind spots (allocfree and ctxflow both choose not to guess).

// FuncNode is one declared function or method of the package under
// analysis, with its statically resolvable callees.
type FuncNode struct {
	// Obj is the function's type-checker object — the key facts attach to.
	Obj *types.Func
	// Decl is the syntax, body included.
	Decl *ast.FuncDecl
	// Callees lists the resolved targets of every call in the body, in
	// source order, possibly with repeats. Targets may be declared in this
	// package (an intra-package edge) or imported (the fact boundary).
	Callees []*Call
}

// Call is one statically resolved call site.
type Call struct {
	// Site is the call expression.
	Site *ast.CallExpr
	// Fn is the resolved target.
	Fn *types.Func
}

// CallGraph builds the package-local call graph: every function and method
// declared by the pass's package, each with its resolved call sites. The
// map is keyed by the function object; iterate deterministically via
// pass.Files order using Decl positions if needed.
func (p *Pass) CallGraph() map[*types.Func]*FuncNode {
	nodes := make(map[*types.Func]*FuncNode)
	for _, file := range p.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			node := &FuncNode{Obj: fn, Decl: fd}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if target := Callee(p.TypesInfo, call); target != nil {
					node.Callees = append(node.Callees, &Call{Site: call, Fn: target})
				}
				return true
			})
			nodes[fn] = node
		}
	}
	return nodes
}

// SortedFuncs returns the call graph's nodes in source order, for
// deterministic iteration.
func SortedFuncs(nodes map[*types.Func]*FuncNode) []*FuncNode {
	out := make([]*FuncNode, 0, len(nodes))
	for _, n := range nodes {
		out = append(out, n)
	}
	// Positions within one package's FileSet are totally ordered.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Decl.Pos() < out[j-1].Decl.Pos(); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// ReceiverOrParamContext reports whether the function takes a
// context.Context anywhere in its signature (receiver excluded).
func ReceiverOrParamContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if IsContextType(params.At(i).Type()) {
			return true
		}
	}
	return false
}
