// Package overflowcheck enforces the engine's overflow invariant: the
// tetrahedral λ-maps of Algorithms 1–3 are only exact while every binomial
// computation is checked for uint64 overflow, and λ-derived magnitudes must
// not be narrowed to int without going through a checked conversion.
//
// Two rules:
//
//  1. A call to an internal/combinat function returning (uint64, bool) —
//     Binomial and any future Tri/Tet-style checked API — must not discard
//     the bool: assigning it to the blank identifier or dropping the whole
//     result silently bypasses overflow detection.
//  2. In packages that consume λ values (those importing internal/combinat),
//     a raw conversion int(x) of a uint64 expression is flagged: on 32-bit
//     platforms, or for λ-domain sizes beyond 2⁶³, the conversion silently
//     truncates. Use combinat.ToInt (checked) or the int-returning decoders
//     (combinat.PairCoords and friends).
//
// internal/combinat itself is exempt: it is the one package allowed to own
// raw index arithmetic, and its tests pin the exactness.
package overflowcheck

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags discarded overflow flags and unchecked uint64→int narrowing
// of λ-derived values.
var Analyzer = &analysis.Analyzer{
	Name: "overflowcheck",
	Doc:  "flags discarded combinat overflow flags and raw uint64→int conversions of λ-derived values",
	// internal/combinat is the one package allowed raw index arithmetic.
	Exclude: []string{"combinat"},
	Run:     run,
}

func run(pass *analysis.Pass) error {
	importsCombinat := false
	for _, imp := range pass.Pkg.Imports() {
		if analysis.PathTail(imp.Path()) == "combinat" {
			importsCombinat = true
			break
		}
	}

	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					if fn := checkedCombinatFunc(pass.TypesInfo, call); fn != nil {
						pass.Reportf(call.Pos(),
							"result of combinat.%s discarded, including its overflow flag", fn.Name())
					}
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.CallExpr:
				if importsCombinat {
					checkConversion(pass, n)
				}
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `v, _ := combinat.Binomial(...)`-style assignments that
// blank out the overflow flag.
func checkAssign(pass *analysis.Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 || len(assign.Lhs) != 2 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := checkedCombinatFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	if id, ok := assign.Lhs[1].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(assign.Pos(),
			"overflow flag of combinat.%s assigned to the blank identifier; handle it or use a checked wrapper", fn.Name())
	}
}

// checkedCombinatFunc returns the called combinat function if it has the
// (uint64, bool) checked-arithmetic shape, else nil.
func checkedCombinatFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fn := analysis.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || analysis.PathTail(fn.Pkg().Path()) != "combinat" {
		return nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() != 2 {
		return nil
	}
	if !isBasic(sig.Results().At(0).Type(), types.Uint64) || !isBasic(sig.Results().At(1).Type(), types.Bool) {
		return nil
	}
	return fn
}

// checkConversion flags int(x) where x is a uint64 expression.
func checkConversion(pass *analysis.Pass, call *ast.CallExpr) {
	if len(call.Args) != 1 {
		return
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok || !tv.IsType() || !isBasic(tv.Type, types.Int) {
		return
	}
	at, ok := pass.TypesInfo.Types[call.Args[0]]
	if !ok || at.Type == nil || !isBasic(at.Type, types.Uint64) {
		return
	}
	pass.Reportf(call.Pos(),
		"raw uint64→int conversion of a λ-derived value; use combinat.ToInt or an int-returning decoder")
}

// isBasic reports whether t's underlying type is the given basic kind.
func isBasic(t types.Type, kind types.BasicKind) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == kind
}
