package overflowcheck_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/overflowcheck"
)

func TestOverflowcheck(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), overflowcheck.Analyzer,
		"overflow", "overflowok")
}
