// Package overflow exercises both overflowcheck rules: discarded overflow
// flags from checked combinat arithmetic, and raw uint64→int narrowing in a
// package that consumes λ values.
package overflow

import "repro/internal/combinat"

func discards(g uint64) {
	combinat.Binomial(g, 4) // want `result of combinat.Binomial discarded`
}

func blanks(g uint64) uint64 {
	n, _ := combinat.Binomial(g, 3) // want `overflow flag of combinat.Binomial assigned to the blank identifier`
	return n
}

func narrows(lambda uint64) int {
	i, _, _ := combinat.TripleCoords(lambda)
	_ = int(lambda) // want `raw uint64→int conversion`
	return i
}

func checked(g uint64) (uint64, error) {
	// Handling the flag is the approved pattern: no diagnostic.
	n, ok := combinat.Binomial(g, 4)
	if !ok {
		return 0, errOverflow
	}
	// The checked narrowing helper is equally clean.
	_ = combinat.ToInt(n)
	return n, nil
}

var errOverflow = error(nil)

func suppressed(g uint64) {
	//lint:allow overflowcheck fixture asserts suppression keeps this silent
	combinat.Binomial(g, 4)
}
