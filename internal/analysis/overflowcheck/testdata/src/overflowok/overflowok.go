// Package overflowok is the clean fixture: it never imports combinat, so
// even raw uint64→int conversions are outside the λ-consumer rule.
package overflowok

func plainNarrow(x uint64) int {
	return int(x)
}

func plainDivide(x uint64) uint64 {
	return x / 2
}
