// Package ctxflow machine-checks the cancellation invariant of the
// long-running scan path: a loop that drives long-running enumeration must
// observe its context, or a cancelled campaign keeps burning node-hours
// until the current (multi-hour) leg finishes on its own. The durable
// runner's whole design — checkpoint, cancel, resume — assumes every layer
// above the kernels yields within one partition of work.
//
// The check is interprocedural, built on two facts:
//
//   - LongRunning marks a function whose call amounts to a partition-or-more
//     of enumeration work. It is seeded by name in packages with import-path
//     tail "cover" (the kernel entry points and the scan drivers: FindBest,
//     FindBestCtx, FindBestRange, FindBestRangeCtx, Run, RunCtx,
//     ScanPartition) and propagates to any function that statically calls a
//     LongRunning function.
//   - CtxAware marks a function that takes a context.Context parameter and
//     observes it: its body references ctx.Done() or ctx.Err(), or passes
//     the context on to a CtxAware callee.
//
// In the scoped packages (cover, cluster, harness — the layers that loop
// over scan legs), every for/range loop whose body statically calls a
// LongRunning function must observe cancellation inside the loop: reference
// Done() or Err() on a context, or pass a context to a CtxAware callee. A
// loop that does neither cannot be stopped between iterations and is
// flagged.
//
// The kernels' own candidate loops are deliberately out of reach: they call
// no LongRunning function, so the analyzer does not flag them — the
// cancellation granularity of this engine is one partition (Sec. III-F),
// and per-candidate ctx checks would put a branch in the innermost loop.
// Function literals are scanned as their own scope: a loop inside a worker
// closure must observe cancellation itself, not rely on a check elsewhere
// in the enclosing function.
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// LongRunning marks a function whose call is a partition-or-more of
// enumeration work.
type LongRunning struct{}

// AFact marks LongRunning as a fact.
func (*LongRunning) AFact() {}

func (*LongRunning) String() string { return "long-running" }

// CtxAware marks a function that observes the context it is given.
type CtxAware struct{}

// AFact marks CtxAware as a fact.
func (*CtxAware) AFact() {}

func (*CtxAware) String() string { return "ctx-aware" }

// Analyzer flags loops that drive long-running enumeration without
// observing a context.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "flags loops driving long-running enumeration that never observe ctx.Done/ctx.Err",
	// Facts must be computed for every package; reporting is limited to
	// the looping layers via the scope check in run.
	FactTypes: []analysis.Fact{new(LongRunning), new(CtxAware)},
	Run:       run,
}

// reportScope lists the package tails whose loops are checked.
var reportScope = map[string]bool{
	"cover":     true,
	"cluster":   true,
	"harness":   true,
	"kernelize": true,
	"service":   true,
	"client":    true,
	"chaossoak": true,
}

// longRunningSeeds are the cover functions seeded as LongRunning by name
// (besides the ^kernel entry points). The sparse merge kernels are
// partition-sized work like their dense ^kernel siblings; the other
// sparse* helpers are per-prefix and deliberately not seeded.
var longRunningSeeds = map[string]bool{
	"FindBest":         true,
	"FindBestCtx":      true,
	"FindBestRange":    true,
	"FindBestRangeCtx": true,
	"Run":              true,
	"RunCtx":           true,
	"ScanPartition":    true,
	"sparse2x1":        true,
	"sparse2x2":        true,
	"sparse1x3":        true,
	"sparse3x1":        true,
}

func run(pass *analysis.Pass) error {
	graph := pass.CallGraph()

	longRunning := computeLongRunning(pass, graph)
	ctxAware := computeCtxAware(pass, graph)

	for _, node := range analysis.SortedFuncs(graph) {
		if longRunning[node.Obj] {
			pass.ExportObjectFact(node.Obj, &LongRunning{})
		}
		if ctxAware[node.Obj] {
			pass.ExportObjectFact(node.Obj, &CtxAware{})
		}
	}

	if !reportScope[analysis.PathTail(pass.Pkg.Path())] {
		return nil
	}
	for _, node := range analysis.SortedFuncs(graph) {
		checkScope(pass, node.Decl.Body, longRunning, ctxAware)
	}
	return nil
}

// isLongRunning consults the local fixpoint set and the fact table.
func isLongRunning(pass *analysis.Pass, local map[*types.Func]bool, fn *types.Func) bool {
	if local[fn] {
		return true
	}
	var fact LongRunning
	return pass.ImportObjectFact(fn, &fact)
}

// isCtxAware consults the local fixpoint set and the fact table.
func isCtxAware(pass *analysis.Pass, local map[*types.Func]bool, fn *types.Func) bool {
	if local[fn] {
		return true
	}
	var fact CtxAware
	return pass.ImportObjectFact(fn, &fact)
}

// computeLongRunning seeds by name in cover-tail packages and propagates to
// callers to a fixpoint.
func computeLongRunning(pass *analysis.Pass, graph map[*types.Func]*analysis.FuncNode) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	if analysis.PathTail(pass.Pkg.Path()) == "cover" {
		for fn := range graph {
			if strings.HasPrefix(fn.Name(), "kernel") || longRunningSeeds[fn.Name()] {
				out[fn] = true
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range graph {
			if out[fn] {
				continue
			}
			for _, call := range node.Callees {
				if isLongRunning(pass, out, call.Fn) {
					out[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// computeCtxAware marks functions with a context parameter that observe it
// directly or forward it to a CtxAware callee, to a fixpoint.
func computeCtxAware(pass *analysis.Pass, graph map[*types.Func]*analysis.FuncNode) map[*types.Func]bool {
	out := make(map[*types.Func]bool)
	for fn, node := range graph {
		if analysis.ReceiverOrParamContext(fn) && observesCtx(pass, node.Decl.Body) {
			out[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, node := range graph {
			if out[fn] || !analysis.ReceiverOrParamContext(fn) {
				continue
			}
			for _, call := range node.Callees {
				if isCtxAware(pass, out, call.Fn) && passesContext(pass, call.Site) {
					out[fn] = true
					changed = true
					break
				}
			}
		}
	}
	return out
}

// observesCtx reports whether the node references Done or Err on a
// context-typed expression.
func observesCtx(pass *analysis.Pass, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		if t := pass.TypesInfo.TypeOf(sel.X); t != nil && analysis.IsContextType(t) {
			found = true
			return false
		}
		return true
	})
	return found
}

// passesContext reports whether the call passes a context-typed argument.
func passesContext(pass *analysis.Pass, call *ast.CallExpr) bool {
	for _, arg := range call.Args {
		if t := pass.TypesInfo.TypeOf(arg); t != nil && analysis.IsContextType(t) {
			return true
		}
	}
	return false
}

// checkScope walks one function scope (or function-literal scope) and flags
// its unobservant long-running loops. Nested function literals are checked
// as separate scopes and skipped here.
func checkScope(pass *analysis.Pass, body *ast.BlockStmt, longRunning, ctxAware map[*types.Func]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkScope(pass, n.Body, longRunning, ctxAware)
			return false
		case *ast.ForStmt:
			checkLoop(pass, n.Body, longRunning, ctxAware)
		case *ast.RangeStmt:
			checkLoop(pass, n.Body, longRunning, ctxAware)
		}
		return true
	})
}

// checkLoop flags the loop if its body calls a LongRunning function but
// never observes a context.
func checkLoop(pass *analysis.Pass, body *ast.BlockStmt, longRunning, ctxAware map[*types.Func]bool) {
	var culprit *types.Func
	var site ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if culprit != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil && isLongRunning(pass, longRunning, fn) {
			culprit, site = fn, call
			return false
		}
		return true
	})
	if culprit == nil {
		return
	}
	if observesCtx(pass, body) {
		return
	}
	// Passing a context to a ctx-aware callee inside the loop also counts:
	// the callee yields on cancellation for us.
	handled := false
	ast.Inspect(body, func(n ast.Node) bool {
		if handled {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := analysis.Callee(pass.TypesInfo, call); fn != nil &&
			isCtxAware(pass, ctxAware, fn) && passesContext(pass, call) {
			handled = true
			return false
		}
		return true
	})
	if handled {
		return
	}
	pass.Reportf(site.Pos(),
		"loop drives long-running %s but never observes ctx.Done/ctx.Err; thread a context through so a cancelled campaign stops between partitions", culprit.Name())
}
