// Package cover is a fixture seeding the LongRunning facts (the
// FindBest-family names and the ^kernel entry points) and the CtxAware
// fact, and exercising the loop check in the scan-driver layer itself.
package cover

import "context"

// kernelScan is LongRunning by the ^kernel seed; its own candidate loop
// calls nothing long-running and stays unflagged by design.
func kernelScan(xs []uint64) uint64 {
	var acc uint64
	for _, x := range xs {
		acc += x
	}
	return acc
}

// FindBest is a seeded scan driver.
func FindBest(xs []uint64) uint64 { // wantfact `ctxflow: long-running`
	return kernelScan(xs)
}

// FindBestCtx is seeded LongRunning and CtxAware: it observes ctx.Err.
func FindBestCtx(ctx context.Context, xs []uint64) (uint64, error) { // wantfact `ctxflow: long-running` `ctxflow: ctx-aware`
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return kernelScan(xs), nil
}

// Run loops over scan legs with no context anywhere: flagged.
func Run(xs []uint64, iters int) uint64 {
	var best uint64
	for i := 0; i < iters; i++ {
		v := FindBest(xs) // want `loop drives long-running FindBest but never observes ctx\.Done/ctx\.Err`
		if v > best {
			best = v
		}
	}
	return best
}

// RunCtx observes cancellation between legs: clean.
func RunCtx(ctx context.Context, xs []uint64, iters int) (uint64, error) {
	var best uint64
	for i := 0; i < iters; i++ {
		if err := ctx.Err(); err != nil {
			return best, err
		}
		if v := FindBest(xs); v > best {
			best = v
		}
	}
	return best, nil
}

// RunForward never touches ctx.Done/ctx.Err itself but hands the context to
// a CtxAware callee each iteration, which yields on cancellation for it:
// clean.
func RunForward(ctx context.Context, xs []uint64, iters int) uint64 {
	var best uint64
	for i := 0; i < iters; i++ {
		v, err := FindBestCtx(ctx, xs)
		if err != nil {
			return best
		}
		if v > best {
			best = v
		}
	}
	return best
}

// Launch shows that a worker closure is its own scope: the loop inside must
// observe cancellation itself, no matter what the enclosing function does.
func Launch(ctx context.Context, xs []uint64, iters int) {
	_ = ctx.Err()
	go func() {
		for i := 0; i < iters; i++ {
			FindBest(xs) // want `loop drives long-running FindBest but never observes ctx\.Done/ctx\.Err`
		}
	}()
}
