// Package cluster is a fixture consuming the cover fixture's LongRunning
// and CtxAware facts across the package boundary.
package cluster

import (
	"context"

	"cover"
)

// Discover loops over legs without observing cancellation: flagged through
// the imported LongRunning fact.
func Discover(xs []uint64, iters int) uint64 {
	var best uint64
	for i := 0; i < iters; i++ {
		if v := cover.FindBest(xs); v > best { // want `loop drives long-running FindBest but never observes ctx\.Done/ctx\.Err`
			best = v
		}
	}
	return best
}

// DiscoverCtx forwards the context to the ctx-aware driver: clean, through
// the imported CtxAware fact.
func DiscoverCtx(ctx context.Context, xs []uint64, iters int) (uint64, error) {
	var best uint64
	for i := 0; i < iters; i++ {
		v, err := cover.FindBestCtx(ctx, xs)
		if err != nil {
			return best, err
		}
		if v > best {
			best = v
		}
	}
	return best, nil
}

// benchLoop is deliberately unstoppable and says so.
func benchLoop(xs []uint64, iters int) {
	for i := 0; i < iters; i++ {
		cover.FindBest(xs) //lint:allow ctxflow benchmark fixture loops to completion on purpose
	}
}
