// Package wordwidth enforces the bit-packing invariant of Sec. II-C: the
// compressed matrices pack exactly 64 samples per machine word, and every
// piece of packing arithmetic belongs inside internal/bitmat. Hardcoded
// word-width constants elsewhere (x/64, x%64, x&63, x>>6, x<<6) duplicate
// the layout and silently break if the word width ever changes (for example
// a 32-bit accelerator backend or a SIMD repack); such call sites should use
// bitmat.WordBits, bitmat.WordsFor, or a bitmat accessor instead. Direct
// indexing of a Words() slice outside bitmat is flagged for the same reason:
// the word/bit split is bitmat's private layout.
package wordwidth

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags hardcoded 64-bit word-packing arithmetic and direct Words()
// indexing outside internal/bitmat.
var Analyzer = &analysis.Analyzer{
	Name: "wordwidth",
	Doc:  "flags hardcoded 64-samples-per-word packing arithmetic outside internal/bitmat",
	// internal/bitmat owns the word/bit layout.
	Exclude: []string{"bitmat"},
	Run:     run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				checkBinary(pass, n)
			case *ast.IndexExpr:
				checkWordsIndex(pass, n)
			}
			return true
		})
	}
	return nil
}

// packingOps maps suspicious operators to the literal that marks them as
// word-packing arithmetic.
var packingOps = map[token.Token]int64{
	token.QUO: 64, // x / 64: word index
	token.REM: 64, // x % 64: bit offset
	token.AND: 63, // x & 63: bit offset
	token.SHR: 6,  // x >> 6: word index
	token.SHL: 6,  // x << 6: word count → samples
}

// checkBinary flags integer expressions of the form x op <packing literal>.
func checkBinary(pass *analysis.Pass, expr *ast.BinaryExpr) {
	lit, ok := packingOps[expr.Op]
	if !ok || !analysis.IsIntLiteral(pass.TypesInfo, expr.Y, lit) {
		return
	}
	if tv, ok := pass.TypesInfo.Types[expr.X]; !ok || tv.Type == nil || !isInteger(tv.Type) {
		return
	}
	pass.Reportf(expr.Pos(),
		"hardcoded word-packing arithmetic (%s %d); use bitmat.WordBits/bitmat.WordsFor or keep the layout inside internal/bitmat",
		expr.Op, lit)
}

// checkWordsIndex flags expr.Words()[i] outside bitmat.
func checkWordsIndex(pass *analysis.Pass, idx *ast.IndexExpr) {
	call, ok := ast.Unparen(idx.X).(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Words" {
		return
	}
	pass.Reportf(idx.Pos(),
		"direct indexing of a Words() slice leaks the word/bit split; use a bitmat accessor")
}

// isInteger reports whether t's underlying type is an integer.
func isInteger(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
