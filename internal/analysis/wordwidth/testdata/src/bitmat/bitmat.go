// Package bitmat stands in for internal/bitmat: the one package allowed to
// own the word/bit layout, so nothing here is flagged.
package bitmat

func wordIndex(s int) int   { return s / 64 }
func bitOffset(s int) int   { return s % 64 }
func shift(s uint64) uint64 { return s >> 6 }
