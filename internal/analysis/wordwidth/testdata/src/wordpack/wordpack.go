// Package wordpack exercises the wordwidth rules: hardcoded 64-bit packing
// arithmetic and direct Words() indexing outside internal/bitmat.
package wordpack

type vec struct {
	bits []uint64
}

func (v *vec) Words() []uint64 { return v.bits }

func wordIndex(s int) int {
	return s / 64 // want `hardcoded word-packing arithmetic \(/ 64\)`
}

func bitOffset(s int) int {
	return s % 64 // want `hardcoded word-packing arithmetic \(% 64\)`
}

func maskOffset(s uint64) uint64 {
	return s & 63 // want `hardcoded word-packing arithmetic \(& 63\)`
}

func shiftIndex(s uint64) uint64 {
	return s >> 6 // want `hardcoded word-packing arithmetic \(>> 6\)`
}

func peek(v *vec, w int) uint64 {
	return v.Words()[w] // want `direct indexing of a Words\(\) slice`
}

// Unrelated arithmetic with other constants stays silent.
func clean(s int) int {
	return s/32 + s%7
}

// Floating-point division by 64 is not packing arithmetic.
func cleanFloat(x float64) float64 {
	return x / 64
}

func suppressed(s int) int {
	//lint:allow wordwidth fixture asserts suppression keeps this silent
	return s / 64
}
