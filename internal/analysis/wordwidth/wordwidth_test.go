package wordwidth_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wordwidth"
)

func TestWordwidth(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), wordwidth.Analyzer,
		"wordpack", "bitmat")
}
