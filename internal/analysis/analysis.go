// Package analysis is a self-contained, standard-library-only counterpart of
// golang.org/x/tools/go/analysis, hosting the multihitvet analyzers that
// machine-check the engine's domain invariants:
//
//   - overflowcheck: the tetrahedral λ-maps are only exact while uint64
//     arithmetic is overflow-checked, so the ok flag of combinat.Binomial-style
//     APIs must not be discarded and λ-derived values must not be narrowed to
//     int without a check.
//   - wordwidth: bit-packed matrices assume 64 samples per word; packing
//     arithmetic belongs inside internal/bitmat.
//   - floatcompare: the maxF reduction is only deterministic across partition
//     counts when every F comparison goes through the canonical tie-break.
//   - goroleak: worker goroutines must signal completion on every return path.
//   - panicfree: the long-running cluster path returns errors, it does not
//     panic.
//   - allocfree: nothing reachable from the kernel scan entry points heap-
//     allocates (protects the zero-alloc bound-and-prune engine).
//   - ctxflow: loops driving long-running enumeration observe their context.
//   - durawrite: checkpoint-path file IO routes through ckptstore's atomic
//     publish, with checked Close/Sync and bounded reads.
//   - atomicguard: state accessed via sync/atomic is never accessed plainly.
//
// The last four are interprocedural: analyzers export typed Facts about the
// functions and objects of one package (see Fact) and consume them while
// analyzing dependent packages. Run therefore visits packages in dependency
// (package-DAG) order, and the lightweight per-package call graph in
// callgraph.go gives analyzers the local edges to propagate facts over.
//
// The environment this repository builds in has no network access, so the
// x/tools module cannot be fetched; the subset of its API the analyzers need
// (Analyzer, Pass, facts, diagnostics, an analysistest harness) is
// implemented here instead, backed by the source loader in
// internal/analysis/load.
//
// Diagnostics are suppressed by a comment on the flagged line or the line
// directly above it:
//
//	//lint:allow <analyzer> <reason>
//
// The reason is free text and mandatory by convention: a suppression records
// why an invariant assertion is intentional.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis/load"
)

// An Analyzer is one named check. It sees each package once, in dependency
// order, and may export facts about the package's objects for later passes
// over dependent packages to consume (see Fact).
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Scope, when non-empty, restricts the analyzer to packages whose
	// import-path tail is listed. Analyzers that export or consume facts
	// usually leave Scope empty — they must see every package to build
	// their interprocedural tables — and restrict reporting themselves.
	Scope []string
	// Exclude lists import-path tails the analyzer skips; it applies after
	// Scope. The package that owns an invariant is typically excluded from
	// the check that enforces it everywhere else.
	Exclude []string
	// FactTypes lists prototype values of every Fact type the analyzer may
	// export; exporting an undeclared type panics. Empty for analyzers
	// that use no facts.
	FactTypes []Fact
	// Run applies the check to one package, reporting findings via the pass.
	Run func(*Pass) error
}

// appliesTo reports whether the analyzer runs on a package path.
func (a *Analyzer) appliesTo(path string) bool {
	tail := PathTail(path)
	for _, t := range a.Exclude {
		if t == tail {
			return false
		}
	}
	if len(a.Scope) == 0 {
		return true
	}
	for _, t := range a.Scope {
		if t == tail {
			return true
		}
	}
	return false
}

// A Pass presents one package to one analyzer.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file of the package.
	Fset *token.FileSet
	// Files are the package's parsed source files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the type-checker's tables for the files.
	TypesInfo *types.Info

	diags *[]Diagnostic
	facts *factStore
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, already resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s (%s)", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
}

// Result is the outcome of one Run: the surviving diagnostics plus the fact
// table the analyzers built, which analysistest's "wantfact" assertions
// inspect.
type Result struct {
	// Diagnostics are the unsuppressed findings, deduplicated and sorted
	// by position.
	Diagnostics []Diagnostic

	facts *factStore
}

// Run applies every analyzer to every package in dependency (package-DAG)
// order — so facts an analyzer exports while visiting a package are visible
// when it later visits the package's dependents — and returns the
// diagnostics that are not suppressed by //lint:allow comments,
// deduplicated and sorted by position.
//
// Ordering is deterministic: dependencies before dependents, ties broken by
// import path (load.DAGSort). Analyzers run in the order given within each
// package. Duplicate diagnostics (same analyzer, position, and message) are
// reported once — an analyzer revisiting a shared call site through two
// entry points must not double-report it.
func Run(fset *token.FileSet, pkgs []*load.Package, analyzers []*Analyzer) (*Result, error) {
	res := &Result{facts: newFactStore()}
	var diags []Diagnostic
	for _, pkg := range load.DAGSort(pkgs) {
		allowed := suppressions(fset, pkg.Files)
		var raw []Diagnostic
		for _, a := range analyzers {
			if !a.appliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				diags:     &raw,
				facts:     res.facts,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range raw {
			if !allowed[lineKey{d.Pos.Filename, d.Pos.Line}][d.Analyzer] {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	res.Diagnostics = dedup(diags)
	return res, nil
}

// dedup collapses exact duplicates in a sorted diagnostic list.
func dedup(diags []Diagnostic) []Diagnostic {
	out := diags[:0]
	for i, d := range diags {
		if i > 0 && d == diags[i-1] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// lineKey addresses one source line.
type lineKey struct {
	file string
	line int
}

// suppressions indexes the //lint:allow comments of a package: a comment on
// line N suppresses the named analyzers on lines N and N+1, so both
// same-line and line-above placements work.
func suppressions(fset *token.FileSet, files []*ast.File) map[lineKey]map[string]bool {
	out := make(map[lineKey]map[string]bool)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:allow")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, name := range strings.Split(fields[0], ",") {
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := lineKey{pos.Filename, line}
						if out[k] == nil {
							out[k] = make(map[string]bool)
						}
						out[k][name] = true
					}
				}
			}
		}
	}
	return out
}

// PathTail returns the last element of an import path: the conventional
// package directory name the analyzers scope themselves by ("combinat",
// "bitmat", "reduce", ...). Scoping by tail lets analysistest fixtures stand
// in for the real packages.
func PathTail(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Callee resolves the function or method called by call, or nil for calls of
// function values, conversions, and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// IsIntLiteral reports whether expr is the integer literal with the given
// value.
func IsIntLiteral(info *types.Info, expr ast.Expr, value int64) bool {
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.Value == nil {
		return false
	}
	if lit, ok := ast.Unparen(expr).(*ast.BasicLit); !ok || lit.Kind != token.INT {
		return false
	}
	v, exact := constantInt64(tv)
	return exact && v == value
}

// constantInt64 extracts an exact int64 from a constant value.
func constantInt64(tv types.TypeAndValue) (int64, bool) {
	if tv.Value == nil {
		return 0, false
	}
	s := tv.Value.ExactString()
	var v int64
	_, err := fmt.Sscanf(s, "%d", &v)
	return v, err == nil
}
