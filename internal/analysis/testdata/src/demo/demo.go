// Package demo is a fixture for the analysis.Run plumbing tests: the test
// analyzer reports findings on A, B, and C out of source order, with an
// exact duplicate, and C's site carries a suppression.
package demo

func A() int { return 1 }

func B() int { return 2 }

func C() int {
	return 3 //lint:allow dupes deliberate suppression exercised by the Run test
}
