package durawrite_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/durawrite"
)

func TestDurawrite(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), durawrite.Analyzer,
		"ckptstore", "multihit")
}
