// Package ckptstore is a fixture standing in for the real store: the
// publish function exports the DurableWriter fact that the multihit
// fixture's diagnostics name, and raw write APIs inside this package are
// the implementation rather than a violation.
package ckptstore

import (
	"io"
	"os"
)

// WriteFileAtomic is the blessed publish: temp file, fsync, rename.
func WriteFileAtomic(path string, data []byte) error { // wantfact `durawrite: durable-writer`
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	f, err := os.OpenFile(tmp, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	err = f.Sync()
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

// load is bounded: ReadAll through LimitReader passes, and a deferred Close
// on a read-only handle is idiomatic.
func load(path string, max int64) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(io.LimitReader(f, max))
}

// sloppySync drops errors even though this is the durability layer: rules 2
// and 3 apply inside ckptstore too.
func sloppySync(f *os.File, path string) ([]byte, error) {
	f.Sync()                 // want `Sync error discarded on the checkpoint path`
	_ = f.Close()            // want `Close error discarded on the checkpoint path`
	return os.ReadFile(path) // want `unbounded os\.ReadFile on the checkpoint path`
}
