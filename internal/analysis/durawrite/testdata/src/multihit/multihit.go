// Package multihit is a fixture for the consumer-side rules: raw writes
// are flagged with the fact-carrying writer names, write handles must not
// defer their Close, and reads must be bounded.
package multihit

import (
	"io"
	"os"

	"ckptstore"
)

// saveRaw bypasses the publish protocol; the diagnostic names the imported
// fact-carrying writer.
func saveRaw(path string, data []byte) error {
	return os.WriteFile(path, data, 0o644) // want `raw os\.WriteFile on the checkpoint path; route the write through ckptstore's atomic publish \(WriteFileAtomic\)`
}

// saveCreate opens a write handle and defers the Close, discarding the
// flush error.
func saveCreate(path string, data []byte) error {
	f, err := os.Create(path) // want `raw os\.Create on the checkpoint path`
	if err != nil {
		return err
	}
	defer f.Close() // want `deferred Close on a write handle discards the flush error`
	_, err = f.Write(data)
	return err
}

// save routes through the durable writer: clean.
func save(path string, data []byte) error {
	return ckptstore.WriteFileAtomic(path, data)
}

// loadAll reads without a bound.
func loadAll(path string) ([]byte, error) {
	return os.ReadFile(path) // want `unbounded os\.ReadFile on the checkpoint path`
}

// loadBounded caps the read: clean.
func loadBounded(f *os.File, max int64) ([]byte, error) {
	return io.ReadAll(io.LimitReader(f, max))
}

// loadLegacy keeps a justified unbounded read under a suppression.
func loadLegacy(path string) ([]byte, error) {
	return os.ReadFile(path) //lint:allow durawrite fixture asserts suppression keeps this silent
}
