// Package durawrite machine-checks the durability invariant of the
// checkpoint path (Sec. IV-B of the runner design, docs/INVARIANTS.md): a
// checkpoint either exists completely on disk or not at all. That only
// holds when every checkpoint write goes through ckptstore's atomic publish
// — write to a temp file, fsync the file, rename into place, fsync the
// directory — and when no write or close error is silently dropped (a
// failed Close on a buffered write is a failed write).
//
// Within the scoped packages (ckptstore, cover, harness, multihit,
// service, multihitd — the layers that produce or consume checkpoint
// files and the daemon's durable job specs/results), three rules:
//
//  1. Raw file-creation APIs (os.Create, os.WriteFile, os.OpenFile) outside
//     internal/ckptstore are flagged: the checkpoint path has exactly one
//     blessed writer. ckptstore itself is where the temp+fsync+rename dance
//     lives, so its own use of those APIs is the implementation, not a
//     violation. The analyzer exports a DurableWriter fact for the
//     ckptstore functions that perform the rename publish, and names them
//     in the diagnostic so the fix is self-evident.
//  2. A discarded Close or Sync error on an *os.File — a bare `f.Close()`
//     statement, `_ = f.Close()`, or a `defer f.Close()` on a handle opened
//     for writing — is flagged. (A deferred Close on a read-only handle is
//     idiomatic and allowed.)
//  3. An unbounded read (io.ReadAll, os.ReadFile) is flagged: checkpoint
//     frames carry a length header with a hard cap, and a truncated or
//     corrupted header must not make the reader attempt an absurd
//     allocation. Bound the read with io.LimitReader or read into a sized
//     buffer.
//
// Everything here is intentionally syntactic and local except the
// DurableWriter fact; the value of the analyzer is that the checkpoint
// write protocol cannot regress silently in any of the packages that
// touch checkpoint or job-state bytes.
package durawrite

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// DurableWriter marks a ckptstore function that performs the atomic
// temp+fsync+rename publish.
type DurableWriter struct{}

// AFact marks DurableWriter as a fact.
func (*DurableWriter) AFact() {}

func (*DurableWriter) String() string { return "durable-writer" }

// Analyzer flags checkpoint-path file IO that bypasses the atomic publish
// protocol or drops write errors.
var Analyzer = &analysis.Analyzer{
	Name: "durawrite",
	Doc:  "flags checkpoint-path file IO bypassing ckptstore's atomic publish, discarded Close/Sync errors, and unbounded reads",
	// The packages that produce or consume checkpoint files, plus the
	// discovery daemon whose job specs/results share the same durability
	// contract.
	Scope:     []string{"ckptstore", "cover", "harness", "multihit", "service", "multihitd", "client", "chaossoak"},
	FactTypes: []analysis.Fact{new(DurableWriter)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	inCkptstore := analysis.PathTail(pass.Pkg.Path()) == "ckptstore"
	if inCkptstore {
		exportDurableWriters(pass)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd, inCkptstore)
		}
	}
	return nil
}

// exportDurableWriters marks the ckptstore functions containing the rename
// publish step.
func exportDurableWriters(pass *analysis.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			renames := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn := analysis.Callee(pass.TypesInfo, call); isPkgFunc(fn, "os", "Rename") {
					renames = true
				}
				return true
			})
			if !renames {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				pass.ExportObjectFact(obj, &DurableWriter{})
			}
		}
	}
}

// checkFunc applies the three rules to one function body.
func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl, inCkptstore bool) {
	// writeHandles collects the *os.File variables this function opened
	// for writing, so rule 2 can tell a write-side defer Close from a
	// harmless read-side one.
	writeHandles := make(map[types.Object]bool)
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if assign, ok := n.(*ast.AssignStmt); ok {
			recordWriteHandles(pass, assign, writeHandles)
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkRawWrite(pass, n, inCkptstore)
			checkUnboundedRead(pass, n)
		case *ast.ExprStmt:
			// Bare `f.Close()` / `f.Sync()` statement.
			if call, ok := n.X.(*ast.CallExpr); ok {
				if name, ok := discardedFileCall(pass, call); ok {
					pass.Reportf(call.Pos(),
						"%s error discarded on the checkpoint path; a failed %s is a failed write — check it", name, name)
				}
			}
		case *ast.AssignStmt:
			// `_ = f.Close()` discards just as silently.
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name != "_" || i >= len(n.Rhs) {
					continue
				}
				if call, ok := n.Rhs[i].(*ast.CallExpr); ok {
					if name, ok := discardedFileCall(pass, call); ok {
						pass.Reportf(call.Pos(),
							"%s error discarded on the checkpoint path; a failed %s is a failed write — check it", name, name)
					}
				}
			}
		case *ast.DeferStmt:
			if name, ok := discardedFileCall(pass, n.Call); ok && name == "Close" {
				if recv := receiverObject(pass, n.Call); recv != nil && writeHandles[recv] {
					pass.Reportf(n.Pos(),
						"deferred Close on a write handle discards the flush error; close explicitly after the last write and check it")
				}
			}
			return false // the deferred call itself was just handled
		}
		return true
	})
}

// recordWriteHandles notes variables assigned from a write-mode open.
func recordWriteHandles(pass *analysis.Pass, assign *ast.AssignStmt, out map[types.Object]bool) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	writeOpen := isPkgFunc(fn, "os", "Create") ||
		(isPkgFunc(fn, "os", "OpenFile") && len(call.Args) >= 2 && mentionsWriteFlag(call.Args[1]))
	if !writeOpen {
		return
	}
	id, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		out[obj] = true
	} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
		out[obj] = true
	}
}

// mentionsWriteFlag reports whether the flag expression references a
// writing open mode.
func mentionsWriteFlag(expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "O_WRONLY", "O_RDWR", "O_APPEND", "O_CREATE", "O_TRUNC":
				found = true
			}
		}
		return true
	})
	return found
}

// checkRawWrite flags raw file-creation APIs outside ckptstore.
func checkRawWrite(pass *analysis.Pass, call *ast.CallExpr, inCkptstore bool) {
	if inCkptstore {
		return
	}
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	var raw string
	switch {
	case isPkgFunc(fn, "os", "Create"):
		raw = "os.Create"
	case isPkgFunc(fn, "os", "WriteFile"):
		raw = "os.WriteFile"
	case isPkgFunc(fn, "os", "OpenFile") && len(call.Args) >= 2 && mentionsWriteFlag(call.Args[1]):
		raw = "os.OpenFile(...write...)"
	default:
		return
	}
	pass.Reportf(call.Pos(),
		"raw %s on the checkpoint path; route the write through ckptstore's atomic publish (%s) so a crash cannot leave a torn file",
		raw, durableWriterNames(pass))
}

// durableWriterNames lists the fact-carrying ckptstore entry points for the
// diagnostic, or a generic hint when none are in scope (fixtures).
func durableWriterNames(pass *analysis.Pass) string {
	var names []string
	for _, of := range pass.AllObjectFacts() {
		if _, ok := of.Fact.(*DurableWriter); ok && ast.IsExported(of.Obj.Name()) {
			names = append(names, of.Obj.Name())
		}
	}
	if len(names) == 0 {
		return "temp+fsync+rename"
	}
	return strings.Join(names, ", ")
}

// checkUnboundedRead flags io.ReadAll and os.ReadFile. io.ReadAll whose
// argument is a direct io.LimitReader(...) call is the sanctioned bounded
// pattern and passes.
func checkUnboundedRead(pass *analysis.Pass, call *ast.CallExpr) {
	fn := analysis.Callee(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	var what string
	switch {
	case isPkgFunc(fn, "io", "ReadAll"):
		if len(call.Args) == 1 {
			if inner, ok := call.Args[0].(*ast.CallExpr); ok {
				if lr := analysis.Callee(pass.TypesInfo, inner); lr != nil && isPkgFunc(lr, "io", "LimitReader") {
					return
				}
			}
		}
		what = "io.ReadAll"
	case isPkgFunc(fn, "os", "ReadFile"):
		what = "os.ReadFile"
	default:
		return
	}
	pass.Reportf(call.Pos(),
		"unbounded %s on the checkpoint path; a corrupt length header must not drive the allocation — bound it with io.LimitReader or a sized buffer", what)
}

// discardedFileCall reports whether call is Close or Sync on an *os.File
// whose error result is being discarded by the caller context.
func discardedFileCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if sel.Sel.Name != "Close" && sel.Sel.Name != "Sync" {
		return "", false
	}
	t := pass.TypesInfo.TypeOf(sel.X)
	if t == nil || !isOSFile(t) {
		return "", false
	}
	return sel.Sel.Name, true
}

// receiverObject resolves the object of a method call's receiver variable.
func receiverObject(pass *analysis.Pass, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.Uses[id]
}

// isOSFile reports whether t is *os.File (or os.File).
func isOSFile(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "File" && obj.Pkg() != nil && obj.Pkg().Path() == "os"
}

// isPkgFunc reports whether fn is the named function of the named package.
func isPkgFunc(fn *types.Func, pkg, name string) bool {
	return fn != nil && fn.Name() == name && fn.Pkg() != nil && fn.Pkg().Path() == pkg
}
