// Package reader imports state and must not touch its counter plainly: the
// Atomic fact crosses the package boundary.
package reader

import (
	"sync/atomic"

	"state"
)

// Snapshot loads through the API: clean.
func Snapshot() uint64 {
	return atomic.LoadUint64(&state.Hits)
}

// Racy reads the imported counter plainly.
func Racy() uint64 {
	return state.Hits // want `plain access to Hits, which is accessed via sync/atomic`
}

// allowed keeps a deliberate plain read under a suppression (a seqlock-style
// reader would justify it like this).
func allowed() uint64 {
	return state.Hits //lint:allow atomicguard fixture asserts suppression keeps this silent
}
