// Package state declares a counter accessed through the function-style
// sync/atomic API; the exported Atomic fact makes plain access in dependent
// packages a finding.
package state

import "sync/atomic"

// Hits is atomically updated; every access must go through sync/atomic.
var Hits uint64 // wantfact `atomicguard: atomic`

// Bump adds one atomically.
func Bump() {
	atomic.AddUint64(&Hits, 1)
}

// Peek reads the counter plainly in the declaring package itself.
func Peek() uint64 {
	return Hits // want `plain access to Hits, which is accessed via sync/atomic`
}

// Sample reads it through the API: clean.
func Sample() uint64 {
	return atomic.LoadUint64(&Hits)
}
