// Package atomicguard machine-checks the mixed-access invariant of the
// shared-incumbent reduction (Sec. III-D): an object accessed through the
// function-style sync/atomic API must never also be accessed with a plain
// read or write. A plain load racing an atomic store is a data race the
// race detector only catches when a test happens to interleave it; in the
// shared-best bound it silently weakens pruning (a stale bound admits
// candidates) or, worse, publishes a torn best record.
//
// The engine's own answer to this invariant is the typed atomic API
// (atomic.Uint64 and friends, as in reduce.SharedBest), which makes mixed
// access unrepresentable — so a clean tree is the expected steady state,
// and this analyzer exists to catch the regression where someone reaches
// for atomic.AddUint64(&counter, 1) on a field that other code reads
// plainly.
//
// The check is interprocedural: while analyzing the package that declares
// an object, every `&obj` passed to a sync/atomic function exports an
// Atomic fact for the object. Any later package (and the rest of the
// declaring package) that reads or writes the object outside a sync/atomic
// call argument is flagged. The declaring package is analyzed first
// (dependency order), so the one blind spot is a dependent package
// performing the only atomic access on an imported object while the
// declaring package reads it plainly — the fact cannot flow backwards;
// keeping atomics next to the declaration is the convention that closes
// the gap.
package atomicguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Atomic marks an object accessed through the function-style sync/atomic
// API.
type Atomic struct{}

// AFact marks Atomic as a fact.
func (*Atomic) AFact() {}

func (*Atomic) String() string { return "atomic" }

// Analyzer flags plain accesses to objects that are elsewhere accessed via
// sync/atomic.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicguard",
	Doc:       "flags plain reads/writes of objects accessed via function-style sync/atomic",
	FactTypes: []analysis.Fact{new(Atomic)},
	Run:       run,
}

func run(pass *analysis.Pass) error {
	// Pass 1: find every `&obj` argument of a sync/atomic call; those
	// object uses are sanctioned, and the objects join the atomic set.
	local := make(map[types.Object]bool)
	sanctioned := make(map[*ast.Ident]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := analysis.Callee(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				unary, ok := ast.Unparen(arg).(*ast.UnaryExpr)
				if !ok || unary.Op != token.AND {
					continue
				}
				obj, id := addressedObject(pass, unary.X)
				if obj == nil {
					continue
				}
				local[obj] = true
				sanctioned[id] = true
			}
			return true
		})
	}

	// Export facts for own-package objects; objects of other packages
	// (rare: atomics on an imported variable) stay in the local set for
	// this pass only.
	exported := make(map[types.Object]bool)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil || !local[obj] || exported[obj] || obj.Pkg() != pass.Pkg {
				return true
			}
			exported[obj] = true
			pass.ExportObjectFact(obj, &Atomic{})
			return true
		})
	}

	// Pass 2: every other use of an atomic object — local set or imported
	// fact — is a plain access.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if sanctioned[id] {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				return true
			}
			if _, isVar := obj.(*types.Var); !isVar {
				return true
			}
			if !isAtomicObject(pass, local, obj) {
				return true
			}
			pass.Reportf(id.Pos(),
				"plain access to %s, which is accessed via sync/atomic; every access must go through the atomic API (or migrate to a typed atomic, which makes mixed access impossible)", obj.Name())
			return true
		})
	}
	return nil
}

// isAtomicObject consults the local set and the fact table.
func isAtomicObject(pass *analysis.Pass, local map[types.Object]bool, obj types.Object) bool {
	if local[obj] {
		return true
	}
	var fact Atomic
	return pass.ImportObjectFact(obj, &fact)
}

// addressedObject resolves &x or &s.f to the variable or field object and
// the identifier naming it.
func addressedObject(pass *analysis.Pass, expr ast.Expr) (types.Object, *ast.Ident) {
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e], e
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel], e.Sel
	}
	return nil, nil
}
