// Package load parses and type-checks the module's packages from source so
// the multihitvet analyzers can run with full type information without any
// dependency outside the standard library.
//
// The container building this repository has no module proxy access, so the
// usual golang.org/x/tools/go/packages loader is unavailable. This loader
// covers exactly what the analyzers need instead: it discovers every package
// under the module root, parses the non-test files with comments (the
// //lint:allow suppression syntax lives in comments), topologically
// type-checks module-internal imports itself, and delegates standard-library
// imports to the compiler's source importer.
package load

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	// Path is the import path ("repro/internal/cover", or the fixture name
	// for analysistest packages).
	Path string
	// Name is the package name from the source files.
	Name string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test source files, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info holds the type-checker's expression/object tables.
	Info *types.Info
}

// Loader loads packages for one module. It memoizes by import path, so a
// package shared by several roots is checked once — which also means every
// package in a run shares one type-checker universe: an object imported by
// a dependent package IS the object of the defining package, the identity
// the analysis fact store relies on.
type Loader struct {
	// Fset is the file set shared by every loaded package.
	Fset *token.FileSet

	// FixtureDir, when set, resolves otherwise-unknown single-element
	// import paths against <FixtureDir>/<path> before falling back to the
	// standard library. analysistest sets it to its testdata/src directory
	// so fixture packages can import sibling fixtures — the way a fixture
	// "cover" package imports a fixture "bitmat" package to exercise
	// cross-package facts.
	FixtureDir string

	root    string // module root directory
	modPath string // module path from go.mod
	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader for the module rooted at root (the directory
// holding go.mod).
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		root:    root,
		modPath: modPath,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// ModulePath returns the module path from go.mod.
func (l *Loader) ModulePath() string { return l.modPath }

// FindModuleRoot walks up from dir to the nearest directory containing
// go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("load: no go.mod above %s", dir)
		}
		dir = parent
	}
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("load: no module directive in %s", gomod)
}

// LoadAll discovers and loads every package under the module root, sorted by
// import path. Directories named testdata, hidden directories, and
// directories without non-test Go files are skipped.
func (l *Loader) LoadAll() ([]*Package, error) {
	var paths []string
	err := filepath.WalkDir(l.root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(l.root, path)
		if err != nil {
			return err
		}
		ip := l.modPath
		if rel != "." {
			ip = l.modPath + "/" + filepath.ToSlash(rel)
		}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Import(p)
		if err != nil {
			return nil, fmt.Errorf("load: %s: %w", p, err)
		}
		out = append(out, l.pkgs[pkg.Path()])
	}
	return out, nil
}

// hasGoFiles reports whether dir directly contains at least one non-test Go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && isSourceFile(e.Name()) {
			return true
		}
	}
	return false
}

// isSourceFile reports whether name is a non-test Go source file.
func isSourceFile(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// LoadDir loads the single package in dir under the given import path. It is
// used by analysistest, whose fixture packages live outside the module tree
// but may import module packages (which resolve against the module root).
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	return l.check(dir, path)
}

// Import implements types.Importer: module-internal paths are loaded from
// source under the module root, fixture-sibling paths (see FixtureDir)
// from the fixture tree, and everything else goes to the standard
// library's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modPath || strings.HasPrefix(path, l.modPath+"/") {
		if pkg, ok := l.pkgs[path]; ok {
			return pkg.Types, nil
		}
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modPath), "/")
		dir := filepath.Join(l.root, filepath.FromSlash(rel))
		pkg, err := l.check(dir, path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	if l.FixtureDir != "" && !strings.Contains(path, "/") {
		if dir := filepath.Join(l.FixtureDir, path); hasGoFiles(dir) {
			if pkg, ok := l.pkgs[path]; ok {
				return pkg.Types, nil
			}
			pkg, err := l.check(dir, path)
			if err != nil {
				return nil, err
			}
			return pkg.Types, nil
		}
	}
	return l.std.Import(path)
}

// DAGSort orders packages dependencies-first: a package appears after every
// package in the slice it (transitively) imports. Ties — packages with no
// ordering constraint between them — break by import path, so the order is
// deterministic for any input permutation. Imports outside the given slice
// impose no constraint. The input is not modified.
//
// This is the order analysis.Run visits packages in, so facts exported
// while analyzing a dependency are always on the table before any dependent
// is analyzed.
func DAGSort(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	// indegree counts in-set imports; dependents lists reverse edges.
	indegree := make(map[string]int, len(pkgs))
	dependents := make(map[string][]string, len(pkgs))
	for _, p := range pkgs {
		indegree[p.Path] += 0
		for _, imp := range p.Types.Imports() {
			if _, ok := byPath[imp.Path()]; ok {
				indegree[p.Path]++
				dependents[imp.Path()] = append(dependents[imp.Path()], p.Path)
			}
		}
	}
	var ready []string
	for path, d := range indegree {
		if d == 0 {
			ready = append(ready, path)
		}
	}
	sort.Strings(ready)
	out := make([]*Package, 0, len(pkgs))
	for len(ready) > 0 {
		path := ready[0]
		ready = ready[1:]
		out = append(out, byPath[path])
		var freed []string
		for _, dep := range dependents[path] {
			indegree[dep]--
			if indegree[dep] == 0 {
				freed = append(freed, dep)
			}
		}
		if len(freed) > 0 {
			ready = append(ready, freed...)
			sort.Strings(ready)
		}
	}
	// A cycle is impossible for type-checked Go packages, but stay total:
	// append whatever remains, by path.
	if len(out) < len(pkgs) {
		var rest []string
		for path, d := range indegree {
			if d > 0 {
				rest = append(rest, path)
			}
		}
		sort.Strings(rest)
		for _, path := range rest {
			out = append(out, byPath[path])
		}
	}
	return out
}

// check parses and type-checks one directory as the package at path.
func (l *Loader) check(dir, path string) (*Package, error) {
	if l.loading[path] {
		return nil, fmt.Errorf("load: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !isSourceFile(e.Name()) {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("load: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, err
	}
	pkg := &Package{
		Path:  path,
		Name:  tpkg.Name(),
		Dir:   dir,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}
