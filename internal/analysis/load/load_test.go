package load_test

import (
	"testing"

	"repro/internal/analysis/load"
)

// loadSet loads the named module packages through one loader (one shared
// type universe, as analysis.Run requires).
func loadSet(t *testing.T, paths ...string) []*load.Package {
	t.Helper()
	root, err := load.FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*load.Package
	for _, p := range paths {
		tp, err := loader.Import(p)
		if err != nil {
			t.Fatalf("loading %s: %v", p, err)
		}
		pkg, err := loader.LoadDir("", p)
		if err != nil || pkg.Types != tp {
			t.Fatalf("memoized package for %s not returned (err %v)", p, err)
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs
}

// index maps each package to its position in the sorted order.
func index(pkgs []*load.Package) map[string]int {
	out := make(map[string]int, len(pkgs))
	for i, p := range pkgs {
		out[p.Path] = i
	}
	return out
}

// TestDAGSortDependenciesFirst pins the property analysis.Run relies on for
// fact flow: every package sorts after everything in the set it imports —
// bitmat and sched before cover, cover before cluster.
func TestDAGSortDependenciesFirst(t *testing.T) {
	pkgs := loadSet(t,
		"repro/internal/cluster",
		"repro/internal/cover",
		"repro/internal/bitmat",
		"repro/internal/sched",
	)
	idx := index(load.DAGSort(pkgs))
	for _, dep := range []struct{ before, after string }{
		{"repro/internal/bitmat", "repro/internal/cover"},
		{"repro/internal/sched", "repro/internal/cover"},
		{"repro/internal/cover", "repro/internal/cluster"},
		{"repro/internal/bitmat", "repro/internal/cluster"},
	} {
		if idx[dep.before] >= idx[dep.after] {
			t.Errorf("%s sorted at %d, after its dependent %s at %d",
				dep.before, idx[dep.before], dep.after, idx[dep.after])
		}
	}
}

// TestDAGSortDeterministic pins the tie-break: any input permutation yields
// the identical order, and unordered packages break ties by path.
func TestDAGSortDeterministic(t *testing.T) {
	fwd := loadSet(t,
		"repro/internal/bitmat",
		"repro/internal/sched",
		"repro/internal/cover",
		"repro/internal/cluster",
	)
	rev := []*load.Package{fwd[3], fwd[2], fwd[1], fwd[0]}
	a, b := load.DAGSort(fwd), load.DAGSort(rev)
	for i := range a {
		if a[i].Path != b[i].Path {
			t.Fatalf("order differs at %d: %s vs %s", i, a[i].Path, b[i].Path)
		}
	}
	// bitmat and sched have no constraint between them: path order decides.
	idx := index(a)
	if idx["repro/internal/bitmat"] >= idx["repro/internal/sched"] {
		t.Errorf("tie not broken by path: bitmat at %d, sched at %d",
			idx["repro/internal/bitmat"], idx["repro/internal/sched"])
	}
}
