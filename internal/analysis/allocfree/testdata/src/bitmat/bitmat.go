// Package bitmat is a fixture standing in for the real word-wise hot layer:
// entry points by name prefix (AndWords, PopAnd*), plus an injected
// allocating helper whose Allocates fact the cover fixture consumes across
// the package boundary.
package bitmat

// AndWords is a clean entry point: a pure word loop allocates nothing.
func AndWords(dst, a, b []uint64) {
	for i := range dst {
		dst[i] = a[i] & b[i]
	}
}

// Grow is the injected allocation. It is not an entry point itself, but it
// is kernel-reachable: PopAndGrow below and the cover fixture's kernel both
// call it, so the append must surface at every reachable report site.
func Grow(dst []uint64, w uint64) []uint64 { // wantfact `allocfree: allocates: append`
	return append(dst, w) // want `append on the kernel scan path`
}

// PopAndGrow is an entry point reaching Grow's append through an
// intra-package call edge.
func PopAndGrow(dst []uint64, w uint64) int {
	dst = Grow(dst, w)
	return len(dst)
}
