// Package cover is a fixture for the kernel-side reporting: entry points
// are the ^kernel functions, and the imported bitmat fixture supplies the
// cross-package Allocates facts.
package cover

import (
	"fmt"
	"math"
	"sort"

	"bitmat"
)

// kernelClean calls only vetted and allowlisted callees: no findings.
func kernelClean(dst, a, b []uint64) float64 {
	bitmat.AndWords(dst, a, b)
	return math.Sqrt(float64(len(dst)))
}

// kernelGrow reaches the injected append through the imported fact.
func kernelGrow(dst []uint64, w uint64) int {
	buf := bitmat.Grow(dst, w) // want `calls bitmat\.Grow, which allocates: append`
	return len(buf)
}

// kernelMake allocates directly.
func kernelMake(n int) []uint64 {
	buf := make([]uint64, n) // want `make on the kernel scan path`
	return buf
}

// kernelSort calls into a stdlib package outside the allowlist.
func kernelSort(xs []int) {
	sort.Ints(xs) // want `calls sort\.Ints, which is outside the alloc-free allowlist`
}

// kernelGuard formats only on the dying path: panic arguments are cold and
// exempt.
func kernelGuard(n int) int {
	if n < 0 {
		panic(fmt.Sprintf("negative count %d", n))
	}
	return n
}

// kernelScratch carries a justified one-time allocation.
func kernelScratch(n int) []uint64 {
	return make([]uint64, n) //lint:allow allocfree one-time scratch setup outside the per-candidate loop
}

// setup allocates freely: not an entry point, so it is never reported here
// (its Allocates fact is still exported for dependent packages).
func setup(n int) []uint64 {
	return make([]uint64, n)
}
