// Package allocfree machine-checks the zero-allocation invariant of the
// bound-and-prune engine (Sec. III-C): nothing reachable from a kernel scan
// entry point may heap-allocate. The kernels evaluate billions of candidate
// combinations per partition; a single allocation on that path turns into
// gigabytes per second of garbage and collapses the measured
// combinations/second by an order of magnitude. The benchmark suite pins
// allocs/op, but only for the configurations it runs — this analyzer pins
// the property for every kernel-reachable function on every change.
//
// The check is interprocedural. While visiting each package (in dependency
// order, see analysis.Run) the analyzer decides per function whether any
// allocation is reachable from its body and exports an Allocates fact for
// the ones that do. When it later visits a package containing entry points,
// a call edge into a function carrying the fact is a finding, with the
// fact's reason in the message.
//
// Entry points:
//
//   - in a package with import-path tail "cover": every function whose name
//     begins with "kernel" (kernelPair, kernel2x1, ... kernel4x1five);
//   - in a package with tail "bitmat": the hot word-wise operations, by name
//     prefix (PopAnd*, AndWords*, AndPop*, AndInto*, ComboPop*, ComboVec,
//     RowPopCount).
//
// Direct allocations recognized in a body: make, new, append; slice and map
// composite literals; taking the address of a composite literal; function
// literals (closure allocation); go statements; string concatenation;
// string<->[]byte/[]rune conversions; and calls to variadic functions
// without a spread argument (the argument slice). Calls resolve through the
// package call graph: an intra-package callee is analyzed transitively, a
// module-internal callee is consulted via its fact, and a standard-library
// callee is allowed only from a short allowlist (math, math/bits, sync,
// sync/atomic, unsafe) known not to allocate.
//
// Cold paths are exempt: the arguments of a panic call are skipped, since a
// kernel that is about to die may format its last words. Dynamic calls
// (function values, interface methods) have no edge and are not chased;
// kernels receive their observe callback as a function value, and the
// callback's allocations are charged to whoever built it.
package allocfree

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Allocates is the fact exported for every function from which a heap
// allocation is reachable.
type Allocates struct {
	// Why describes the nearest allocation, e.g. "append" or
	// "calls bitmat.New, which allocates".
	Why string
}

// AFact marks Allocates as a fact.
func (*Allocates) AFact() {}

func (a *Allocates) String() string { return "allocates: " + a.Why }

// Vetted is the package fact exported for every package the analyzer has
// visited. A cross-package callee whose package carries it and which has no
// Allocates fact is known clean; a callee in an unvetted package is trusted
// only via the stdlib allowlist.
type Vetted struct{}

// AFact marks Vetted as a fact.
func (*Vetted) AFact() {}

func (*Vetted) String() string { return "vetted" }

// Analyzer flags heap allocations reachable from kernel scan entry points.
var Analyzer = &analysis.Analyzer{
	Name: "allocfree",
	Doc:  "flags heap allocations reachable from the kernel scan entry points in cover and bitmat",
	// No Scope: the analyzer must see every package to export Allocates
	// facts; reporting is restricted to entry-point packages below.
	FactTypes: []analysis.Fact{new(Allocates), new(Vetted)},
	Run:       run,
}

// stdlibAllowed lists the standard-library packages kernels may call into:
// none of their functions allocate.
var stdlibAllowed = map[string]bool{
	"math":        true,
	"math/bits":   true,
	"sync":        true,
	"sync/atomic": true,
	"unsafe":      true,
}

// site is one reason a function allocates.
type site struct {
	pos token.Pos
	why string
}

// fnInfo is the per-function allocation summary built for the package under
// analysis.
type fnInfo struct {
	node *analysis.FuncNode
	// direct allocation sites in the body.
	direct []site
	// calls to callees known (by fact or allowlist) to allocate.
	badCalls []site
	// intra-package call edges, for the transitive fixpoint.
	intra []*types.Func
	// allocates is the fixpoint result.
	allocates bool
	// why is the first reason, for the exported fact.
	why string
}

func run(pass *analysis.Pass) error {
	graph := pass.CallGraph()
	infos := make(map[*types.Func]*fnInfo, len(graph))
	for _, node := range analysis.SortedFuncs(graph) {
		info := &fnInfo{node: node}
		scanDirect(pass, node.Decl.Body, info)
		cold := coldRanges(pass, node.Decl.Body)
		for _, call := range node.Callees {
			if cold.contains(call.Site.Pos()) {
				continue // inside panic arguments: the dying path may format
			}
			classifyCall(pass, call, info)
		}
		infos[node.Obj] = info
	}

	// Fixpoint over intra-package edges: a caller of an allocating function
	// allocates.
	for _, info := range infos {
		if len(info.direct) > 0 {
			info.allocates = true
			info.why = info.direct[0].why
		} else if len(info.badCalls) > 0 {
			info.allocates = true
			info.why = info.badCalls[0].why
		}
	}
	for changed := true; changed; {
		changed = false
		for _, info := range infos {
			if info.allocates {
				continue
			}
			for _, callee := range info.intra {
				if ci := infos[callee]; ci != nil && ci.allocates {
					info.allocates = true
					info.why = fmt.Sprintf("calls %s, which allocates", callee.Name())
					changed = true
					break
				}
			}
		}
	}

	for _, node := range analysis.SortedFuncs(graph) {
		if info := infos[node.Obj]; info.allocates {
			pass.ExportObjectFact(node.Obj, &Allocates{Why: info.why})
		}
	}
	pass.ExportPackageFact(&Vetted{})

	// Reporting: walk the intra-package closure of each entry point and
	// report every allocation site and allocating call edge reached.
	// analysis.Run dedups sites shared by several entry points.
	for _, node := range analysis.SortedFuncs(graph) {
		if !isEntryPoint(pass.Pkg.Path(), node.Obj) {
			continue
		}
		reportReachable(pass, infos, node.Obj, make(map[*types.Func]bool))
	}
	return nil
}

// reportReachable reports the allocation sites of fn and everything
// reachable from it within the package.
func reportReachable(pass *analysis.Pass, infos map[*types.Func]*fnInfo, fn *types.Func, seen map[*types.Func]bool) {
	if seen[fn] {
		return
	}
	seen[fn] = true
	info := infos[fn]
	if info == nil {
		return
	}
	for _, s := range info.direct {
		pass.Reportf(s.pos, "%s on the kernel scan path; hoist it out of the per-candidate loop or into scratch set up before the scan", s.why)
	}
	for _, s := range info.badCalls {
		pass.Reportf(s.pos, "%s on the kernel scan path", s.why)
	}
	for _, callee := range info.intra {
		reportReachable(pass, infos, callee, seen)
	}
}

// isEntryPoint reports whether fn is a kernel scan entry point of the
// package at path.
func isEntryPoint(path string, fn *types.Func) bool {
	switch analysis.PathTail(path) {
	case "cover":
		// The sparse merge kernels (sparse2x1 ... sparse3x1) and their
		// prefix helpers share the dense kernels' invariant: setup
		// (newSparseEnv, ensureSparse) may allocate, the scan may not.
		return strings.HasPrefix(fn.Name(), "kernel") ||
			strings.HasPrefix(fn.Name(), "sparse") ||
			strings.HasPrefix(fn.Name(), "solveSparse")
	case "kernelize":
		// kernelSubset is the dominance pass's inner word sweep — it runs
		// O(G²) times per reduction and must stay allocation-free like the
		// scan kernels it feeds.
		return strings.HasPrefix(fn.Name(), "kernel")
	case "bitmat":
		for _, prefix := range []string{"PopAnd", "AndWords", "AndPop", "AndInto", "ComboPop", "ComboVec", "RowPopCount"} {
			if strings.HasPrefix(fn.Name(), prefix) {
				return true
			}
		}
	case "sparsemat":
		// The merge kernels the sparse scan engine is built on; FromBitmat
		// and the sizing accessors are per-pass setup and exempt.
		for _, prefix := range []string{"Intersect", "Count", "Filter", "gallop", "Row"} {
			if strings.HasPrefix(fn.Name(), prefix) {
				return true
			}
		}
	}
	return false
}

// classifyCall records an intra-package edge or, for cross-package callees,
// whether the callee is known to allocate.
func classifyCall(pass *analysis.Pass, call *analysis.Call, info *fnInfo) {
	fn := call.Fn
	pkg := fn.Pkg()
	if pkg == nil {
		return // builtins are handled by scanDirect
	}
	if pkg == pass.Pkg {
		info.intra = append(info.intra, fn)
		return
	}
	var fact Allocates
	if pass.ImportObjectFact(fn, &fact) {
		info.badCalls = append(info.badCalls, site{call.Site.Pos(),
			fmt.Sprintf("calls %s.%s, which %s", pkg.Name(), fn.Name(), fact.String())})
		return
	}
	// A vetted callee (its package was analyzed earlier in dependency
	// order) without a fact is known clean. Anything else is trusted only
	// via the stdlib allowlist. Interface methods resolve here too: they
	// have no analyzed body, so an interface method of an unvetted package
	// is flagged rather than guessed at.
	var vetted Vetted
	if pass.ImportPackageFact(pkg, &vetted) || stdlibAllowed[pkg.Path()] {
		return
	}
	info.badCalls = append(info.badCalls, site{call.Site.Pos(),
		fmt.Sprintf("calls %s.%s, which is outside the alloc-free allowlist", pkg.Name(), fn.Name())})
}

// scanDirect records the direct allocations in body, skipping panic
// arguments (cold path) — nested function literals are themselves
// allocations and their bodies are charged to the closure, so they are
// still walked.
func scanDirect(pass *analysis.Pass, body *ast.BlockStmt, info *fnInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(pass.TypesInfo, n); ok {
				switch name {
				case "make", "new", "append":
					info.direct = append(info.direct, site{n.Pos(), name})
				case "panic":
					return false // cold: don't charge the last words
				}
				return true
			}
			if isAllocatingConversion(pass.TypesInfo, n) {
				info.direct = append(info.direct, site{n.Pos(), "string/slice conversion"})
				return true
			}
			if fn := analysis.Callee(pass.TypesInfo, n); fn != nil {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Variadic() &&
					!n.Ellipsis.IsValid() && len(n.Args) >= sig.Params().Len() {
					info.direct = append(info.direct, site{n.Pos(),
						fmt.Sprintf("variadic call of %s (argument slice)", fn.Name())})
				}
			}
		case *ast.CompositeLit:
			switch pass.TypesInfo.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				info.direct = append(info.direct, site{n.Pos(), "slice literal"})
			case *types.Map:
				info.direct = append(info.direct, site{n.Pos(), "map literal"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					info.direct = append(info.direct, site{n.Pos(), "&composite literal"})
				}
			}
		case *ast.FuncLit:
			info.direct = append(info.direct, site{n.Pos(), "function literal (closure)"})
		case *ast.GoStmt:
			info.direct = append(info.direct, site{n.Pos(), "go statement"})
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if t, ok := pass.TypesInfo.TypeOf(n).Underlying().(*types.Basic); ok && t.Info()&types.IsString != 0 {
					info.direct = append(info.direct, site{n.Pos(), "string concatenation"})
				}
			}
		}
		return true
	})
}

// posRanges is a set of half-open source ranges.
type posRanges []struct{ lo, hi token.Pos }

func (r posRanges) contains(p token.Pos) bool {
	for _, rng := range r {
		if p >= rng.lo && p < rng.hi {
			return true
		}
	}
	return false
}

// coldRanges collects the argument ranges of panic calls in body — the one
// place formatting and allocation are tolerated, because the goroutine is
// about to die.
func coldRanges(pass *analysis.Pass, body *ast.BlockStmt) posRanges {
	var out posRanges
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := builtinName(pass.TypesInfo, call); ok && name == "panic" {
			out = append(out, struct{ lo, hi token.Pos }{call.Lparen, call.Rparen})
			return false
		}
		return true
	})
	return out
}

// builtinName returns the name of the builtin a call invokes, if any.
func builtinName(info *types.Info, call *ast.CallExpr) (string, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}

// isAllocatingConversion reports whether call is a conversion between string
// and []byte/[]rune, which copies.
func isAllocatingConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return false
	}
	to := tv.Type.Underlying()
	from := info.TypeOf(call.Args[0])
	if from == nil {
		return false
	}
	return (isString(to) && isByteOrRuneSlice(from.Underlying())) ||
		(isByteOrRuneSlice(to) && isString(from.Underlying()))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune || e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}
