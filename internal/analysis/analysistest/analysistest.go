// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixture source, mirroring
// the golang.org/x/tools/go/analysis/analysistest convention:
//
//	combinat.MustBinomial(n, 4) // want `MustBinomial`
//
// A "want" comment holds one or more back-quoted or double-quoted regular
// expressions; each must match a distinct diagnostic reported on that line,
// and every diagnostic must be matched by some expectation. Fixture packages
// live under <testdata>/src/<name> and are loaded with import path <name>,
// so an analyzer scoped by package-path tail can be pointed at an in-scope
// or out-of-scope fixture by directory name alone. Fixtures may import the
// real module's packages (for example repro/internal/combinat) and each
// other — a fixture "cover" package importing a fixture "bitmat" package is
// how the cross-package fact flow is exercised. List dependency fixtures
// before their dependents in Run's names (Run analyzes in DAG order either
// way, but every named fixture is loaded and checked).
//
// Facts are asserted the same way, on the line of the declaration they
// attach to:
//
//	func leak(dst []uint64) []uint64 { // wantfact `allocates`
//
// Each "wantfact" pattern must match a distinct fact exported on an object
// declared on that line (matched against "analyzer: <fact>", where <fact>
// is the fact's String/print form), and every exported fact on a line
// bearing at least one wantfact comment must be matched. Facts on lines
// without wantfact comments are not an error — analyzers export many
// incidental facts — so fixtures opt lines into exhaustive checking by
// annotating them.
//
// //lint:allow suppressions are honored, so fixtures can also assert that a
// suppressed violation stays silent (the suppression fixtures of the
// analysis package's own tests pin this).
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// TestData returns the testdata directory of the caller's package.
func TestData() string {
	return "testdata"
}

// Run loads each fixture package from <testdata>/src/<name> and applies the
// analyzer, failing the test on any mismatch between reported diagnostics
// and // want expectations, or between exported facts and // wantfact
// expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, names ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	root, err := load.FindModuleRoot(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader.FixtureDir = filepath.Join(abs, "src")
	var pkgs []*load.Package
	for _, name := range names {
		pkg, err := loader.LoadDir(filepath.Join(abs, "src", filepath.FromSlash(name)), name)
		if err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	res, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	checkDiagnostics(t, loader.Fset, pkgs, res.Diagnostics)
	checkFacts(t, loader.Fset, pkgs, res.ObjectFacts())
}

// checkDiagnostics matches reported diagnostics against // want comments.
func checkDiagnostics(t *testing.T, fset *token.FileSet, pkgs []*load.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectExpectations(t, fset, pkgs, "want ")
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		if !matchWant(wants[k], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", posString(d.Pos.Filename, d.Pos.Line), d.Message, d.Analyzer)
		}
	}
	reportUnmatched(t, wants, "diagnostic")
}

// checkFacts matches exported object facts against // wantfact comments.
// Only lines carrying at least one wantfact comment are checked
// exhaustively; facts elsewhere are ignored.
func checkFacts(t *testing.T, fset *token.FileSet, pkgs []*load.Package, facts []analysis.ObjectFact) {
	t.Helper()
	wants := collectExpectations(t, fset, pkgs, "wantfact ")
	if len(wants) == 0 {
		return
	}
	inFixture := make(map[string]bool)
	for _, pkg := range pkgs {
		inFixture[pkg.Types.Path()] = true
	}
	for _, f := range facts {
		if f.Obj.Pkg() == nil || !inFixture[f.Obj.Pkg().Path()] {
			continue
		}
		pos := fset.Position(f.Obj.Pos())
		k := lineKey{pos.Filename, pos.Line}
		if _, annotated := wants[k]; !annotated {
			continue
		}
		msg := fmt.Sprintf("%s: %v", f.Analyzer, f.Fact)
		if !matchWant(wants[k], msg) {
			t.Errorf("%s: unexpected fact on %s: %s", posString(pos.Filename, pos.Line), f.Obj.Name(), msg)
		}
	}
	reportUnmatched(t, wants, "fact")
}

// reportUnmatched fails the test for every expectation nothing matched.
func reportUnmatched(t *testing.T, wants map[lineKey][]*want, kind string) {
	t.Helper()
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no %s matching %q", posString(k.file, k.line), kind, w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// matchWant marks and reports the first unmatched expectation on the line
// that matches msg.
func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantPattern extracts quoted regexps from a want comment body.
var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectExpectations parses the fixture files' expectation comments with
// the given marker ("want " or "wantfact ").
func collectExpectations(t *testing.T, fset *token.FileSet, pkgs []*load.Package, marker string) map[lineKey][]*want {
	t.Helper()
	out := make(map[lineKey][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, marker)
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					k := lineKey{pos.Filename, pos.Line}
					for _, q := range wantPattern.FindAllString(rest, -1) {
						expr := q[1 : len(q)-1]
						if q[0] == '"' {
							expr = strings.ReplaceAll(expr, `\"`, `"`)
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad %s pattern %q: %v", posString(k.file, k.line), strings.TrimSpace(marker), expr, err)
						}
						out[k] = append(out[k], &want{re: re})
					}
				}
			}
		}
	}
	return out
}

func posString(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
