// Package analysistest runs an analyzer over fixture packages and checks its
// diagnostics against expectations written in the fixture source, mirroring
// the golang.org/x/tools/go/analysis/analysistest convention:
//
//	combinat.MustBinomial(n, 4) // want `MustBinomial`
//
// A "want" comment holds one or more back-quoted or double-quoted regular
// expressions; each must match a distinct diagnostic reported on that line,
// and every diagnostic must be matched by some expectation. Fixture packages
// live under <testdata>/src/<name> and are loaded with import path <name>,
// so an analyzer scoped by package-path tail can be pointed at an in-scope
// or out-of-scope fixture by directory name alone. Fixtures may import the
// real module's packages (for example repro/internal/combinat).
//
// //lint:allow suppressions are honored, so fixtures can also assert that a
// suppressed violation stays silent.
package analysistest

import (
	"fmt"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/load"
)

// TestData returns the testdata directory of the caller's package.
func TestData() string {
	return "testdata"
}

// Run loads each fixture package from <testdata>/src/<name> and applies the
// analyzer, failing the test on any mismatch between reported diagnostics
// and // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, names ...string) {
	t.Helper()
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	root, err := load.FindModuleRoot(abs)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	loader, err := load.NewLoader(root)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	var pkgs []*load.Package
	for _, name := range names {
		pkg, err := loader.LoadDir(filepath.Join(abs, "src", filepath.FromSlash(name)), name)
		if err != nil {
			t.Fatalf("analysistest: loading fixture %s: %v", name, err)
		}
		pkgs = append(pkgs, pkg)
	}
	diags, err := analysis.Run(loader.Fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}

	wants := collectWants(t, loader.Fset, pkgs)
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		if !matchWant(wants[k], d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s (%s)", posString(d.Pos.Filename, d.Pos.Line), d.Message, d.Analyzer)
		}
	}
	for k, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: no diagnostic matching %q", posString(k.file, k.line), w.re.String())
			}
		}
	}
}

type lineKey struct {
	file string
	line int
}

type want struct {
	re      *regexp.Regexp
	matched bool
}

// matchWant marks and reports the first unmatched expectation on the line
// that matches msg.
func matchWant(ws []*want, msg string) bool {
	for _, w := range ws {
		if !w.matched && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

// wantPattern extracts quoted regexps from a want comment body.
var wantPattern = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses the // want comments of the fixture files.
func collectWants(t *testing.T, fset *token.FileSet, pkgs []*load.Package) map[lineKey][]*want {
	t.Helper()
	out := make(map[lineKey][]*want)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					rest, ok := strings.CutPrefix(text, "want ")
					if !ok {
						continue
					}
					pos := fset.Position(c.Pos())
					k := lineKey{pos.Filename, pos.Line}
					for _, q := range wantPattern.FindAllString(rest, -1) {
						expr := q[1 : len(q)-1]
						if q[0] == '"' {
							expr = strings.ReplaceAll(expr, `\"`, `"`)
						}
						re, err := regexp.Compile(expr)
						if err != nil {
							t.Fatalf("%s: bad want pattern %q: %v", posString(k.file, k.line), expr, err)
						}
						out[k] = append(out[k], &want{re: re})
					}
				}
			}
		}
	}
	return out
}

func posString(file string, line int) string {
	return fmt.Sprintf("%s:%d", file, line)
}
