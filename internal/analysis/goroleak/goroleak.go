// Package goroleak guards the engine's concurrent surface: every worker
// goroutine launched by the parallel packages (internal/cover, cluster,
// mpisim, gpusim, harness, service) must signal completion on every
// return path, or a WaitGroup.Wait / channel receive upstream blocks
// forever and the long-running cluster path wedges mid-iteration.
//
// Two conservative, syntactic rules over `go func` literals in the scoped
// packages:
//
//  1. A goroutine body with no completion signal at all — no deferred
//     WaitGroup.Done, no channel send or close, no context cancel — is
//     flagged: nothing upstream can ever learn it finished.
//  2. A body that calls Done without defer while also containing a return
//     statement is flagged: the early return skips the signal.
//
// The check is an approximation (it does not trace every control-flow
// path), so a deliberately detached goroutine carries a
// //lint:allow goroleak suppression naming its lifecycle owner.
package goroleak

import (
	"go/ast"

	"repro/internal/analysis"
)

// Analyzer flags worker goroutines that can finish without signaling.
var Analyzer = &analysis.Analyzer{
	Name: "goroleak",
	Doc:  "flags go func literals in the parallel packages lacking a completion signal on every return path",
	// The packages whose goroutines feed WaitGroups and channels on the
	// long-running cluster path, plus the discovery daemon's dispatcher
	// and per-job workers.
	Scope: []string{"cover", "cluster", "mpisim", "gpusim", "harness", "service", "client", "chaossoak"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := g.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			checkBody(pass, g, lit.Body)
			return true
		})
	}
	return nil
}

// signals summarizes the completion signals found in one goroutine body.
type signals struct {
	deferredDone bool // defer wg.Done() / defer close(ch) / defer cancel()
	bareDone     bool // wg.Done() outside a defer
	send         bool // ch <- v or close(ch)
	cancel       bool // cancel() / ctx cancellation call
	returns      int  // return statements in this body
}

// checkBody applies the two rules to one goroutine body.
func checkBody(pass *analysis.Pass, g *ast.GoStmt, body *ast.BlockStmt) {
	var s signals
	scan(body, false, &s)
	switch {
	case !s.deferredDone && !s.bareDone && !s.send && !s.cancel:
		pass.Reportf(g.Pos(),
			"goroutine has no completion signal (WaitGroup.Done, channel send/close, or cancel); a waiter blocks forever")
	case s.bareDone && !s.deferredDone && s.returns > 0:
		pass.Reportf(g.Pos(),
			"WaitGroup.Done is not deferred and the goroutine has early returns; a skipped Done deadlocks the Wait")
	}
}

// scan walks one function body collecting signals. Nested function literals
// that are merely defined (not deferred) and nested go statements are
// skipped: their bodies signal for themselves, not for this goroutine.
func scan(n ast.Node, inDefer bool, s *signals) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			// Reached only via non-defer paths (defers are handled below).
			return false
		case *ast.DeferStmt:
			scanDeferred(m, s)
			return false
		case *ast.SendStmt:
			s.send = true
		case *ast.ReturnStmt:
			s.returns++
		case *ast.CallExpr:
			classifyCall(m, inDefer, s)
		}
		return true
	})
}

// scanDeferred records signals made by a defer statement, including defers
// of function literals whose bodies signal.
func scanDeferred(d *ast.DeferStmt, s *signals) {
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		scan(lit.Body, true, s)
		return
	}
	classifyCall(d.Call, true, s)
}

// classifyCall records a Done/close/cancel call.
func classifyCall(call *ast.CallExpr, inDefer bool, s *signals) {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		switch fun.Sel.Name {
		case "Done":
			if inDefer {
				s.deferredDone = true
			} else {
				s.bareDone = true
			}
		case "Cancel":
			s.cancel = true
		}
	case *ast.Ident:
		switch fun.Name {
		case "close":
			if inDefer {
				s.deferredDone = true
			} else {
				s.send = true
			}
		case "cancel":
			s.cancel = true
		}
	}
}
