// Package cluster stands in for internal/cluster — inside the goroleak
// scope — and exercises both rules plus the approved patterns.
package cluster

import (
	"sync"
	"sync/atomic"
)

func leaky(n int) {
	results := make([]int, n)
	for i := 0; i < n; i++ {
		go func(i int) { // want `goroutine has no completion signal`
			results[i] = i * i
		}(i)
	}
}

func earlyReturn(wg *sync.WaitGroup, xs []int) {
	for _, x := range xs {
		wg.Add(1)
		go func(x int) { // want `WaitGroup.Done is not deferred and the goroutine has early returns`
			if x < 0 {
				return
			}
			work(x)
			wg.Done()
		}(x)
	}
}

func deferredDone(wg *sync.WaitGroup, xs []int) {
	for _, x := range xs {
		wg.Add(1)
		go func(x int) {
			defer wg.Done()
			if x < 0 {
				return
			}
			work(x)
		}(x)
	}
}

func channelSend(xs []int) <-chan int {
	out := make(chan int, len(xs))
	for _, x := range xs {
		go func(x int) {
			out <- x * x
		}(x)
	}
	return out
}

func deferredClose(xs []int) <-chan int {
	out := make(chan int)
	go func() {
		defer close(out)
		for _, x := range xs {
			work(x)
		}
	}()
	return out
}

// workerPool mirrors cover.findBest's reworked pool: each worker defers
// Done first, allocates its own reusable scratch once, then claims
// partitions through an atomic counter with early returns on exhaustion
// and cancellation. The deferred Done covers every return path, so the
// pool is clean under both rules.
func workerPool(parts []int, cancelled <-chan struct{}) {
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			scratch := make([]uint64, 128)
			for {
				select {
				case <-cancelled:
					return
				default:
				}
				i := next.Add(1) - 1
				if i >= int64(len(parts)) {
					return
				}
				work(parts[i] + len(scratch))
			}
		}()
	}
	wg.Wait()
}

func detached() {
	//lint:allow goroleak fixture asserts a suppressed detached goroutine stays silent
	go func() {
		for {
			work(0)
		}
	}()
}

func work(int) {}
