// Package offpath is outside the goroleak scope: even a signal-free
// goroutine stays silent here.
package offpath

func fireAndForget() {
	go func() {
		_ = 1 + 1
	}()
}
