// Package harness stands in for internal/harness — the supervised
// runner is inside the goroleak scope because its partition workers feed
// a WaitGroup the greedy loop blocks on every step.
package harness

import (
	"sync"
	"sync/atomic"
)

// supervisedPool pins the supervisor's recover-and-retry worker pattern:
// Done is deferred before any work, partitions are claimed through an
// atomic counter, and the per-partition recover lives in a helper the
// worker calls — not in the goroutine body — so every return path
// (exhaustion, cancellation, repeated failure) still signals. Clean
// under both rules.
func supervisedPool(parts []int, cancelled <-chan struct{}) {
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-cancelled:
					return
				default:
				}
				i := next.Add(1) - 1
				if i >= int64(len(parts)) {
					return
				}
				for attempt := 0; attempt <= 2; attempt++ {
					if scanOnce(parts[i]) == nil {
						break
					}
				}
			}
		}()
	}
	wg.Wait()
}

// scanOnce converts a scan panic into an error for the retry loop.
func scanOnce(part int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = asError(rec)
		}
	}()
	work(part)
	return nil
}

// fireAndForgetRetry is the broken variant: moving the retry loop into a
// bare goroutine drops the completion signal, so the supervisor can
// return while partitions are still being scanned.
func fireAndForgetRetry(parts []int) {
	for _, p := range parts {
		go func(p int) { // want `goroutine has no completion signal`
			for attempt := 0; attempt <= 2; attempt++ {
				if scanOnce(p) == nil {
					return
				}
			}
		}(p)
	}
}

// lateDone is the other broken variant: Done after the retry loop with
// an early return on success skips the signal.
func lateDone(wg *sync.WaitGroup, parts []int) {
	for _, p := range parts {
		wg.Add(1)
		go func(p int) { // want `WaitGroup.Done is not deferred and the goroutine has early returns`
			if scanOnce(p) == nil {
				return
			}
			work(p)
			wg.Done()
		}(p)
	}
}

func work(int) {}

func asError(any) error { return nil }
