// Package floatcompare enforces the determinism invariant of Sec. III-E: the
// multi-stage maxF reduction returns the identical record under every
// reduction topology only because all comparisons share one canonical total
// order — higher F, ties broken toward the lexicographically smallest gene
// tuple (reduce.Combo.Better). A direct ==, <, or > on an F score outside
// internal/reduce reintroduces topology-dependent winners: two combinations
// with equal F would be ordered by enumeration position, which changes with
// the partition count.
//
// The analyzer flags any comparison operator whose operand selects a
// float64 field named F — the score field of reduce.Combo and cover.Combo5.
// A deliberate canonical comparator (there is exactly one per record type)
// carries a //lint:allow floatcompare suppression.
package floatcompare

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer flags direct F-score comparisons outside internal/reduce.
var Analyzer = &analysis.Analyzer{
	Name: "floatcompare",
	Doc:  "flags direct F-score float comparisons outside internal/reduce that break cross-partition determinism",
	// internal/reduce owns the one canonical comparator.
	Exclude: []string{"reduce"},
	Run:     run,
}

// comparisons are the operators that impose an order.
var comparisons = map[token.Token]bool{
	token.EQL: true, token.NEQ: true,
	token.LSS: true, token.GTR: true,
	token.LEQ: true, token.GEQ: true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			expr, ok := n.(*ast.BinaryExpr)
			if !ok || !comparisons[expr.Op] {
				return true
			}
			if isFScore(pass.TypesInfo, expr.X) || isFScore(pass.TypesInfo, expr.Y) {
				pass.Reportf(expr.Pos(),
					"direct %s comparison of an F score; use the canonical tie-breaking comparator (reduce.Combo.Better) so every reduction topology agrees",
					expr.Op)
			}
			return true
		})
	}
	return nil
}

// isFScore reports whether expr selects a float64 field named F.
func isFScore(info *types.Info, expr ast.Expr) bool {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "F" {
		return false
	}
	tv, ok := info.Types[sel]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
