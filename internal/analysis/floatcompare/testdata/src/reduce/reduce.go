// Package reduce stands in for internal/reduce: the home of the canonical
// comparator, exempt from the floatcompare rule.
package reduce

type combo struct {
	F     float64
	Genes [4]int32
}

// better is the canonical tie-breaking order — direct F comparisons are the
// point here, and the analyzer skips this package.
func better(a, b combo) bool {
	if a.F != b.F {
		return a.F > b.F
	}
	for i := range a.Genes {
		if a.Genes[i] != b.Genes[i] {
			return a.Genes[i] < b.Genes[i]
		}
	}
	return false
}

// shouldPrune mirrors reduce.SharedBest.ShouldPrune: the strict bound
// consultation is part of the canonical order and lives only in this
// package — callers ask the incumbent, they do not compare scores.
func shouldPrune(upperBound float64, incumbent combo) bool {
	return upperBound < incumbent.F
}
