// Package fscore exercises the floatcompare rule: direct comparisons of an
// F score field outside the canonical comparator in internal/reduce.
package fscore

type combo struct {
	F     float64
	Genes [4]int32
}

func worseEq(a, b combo) bool {
	return a.F == b.F // want `direct == comparison of an F score`
}

func worseGt(a, b combo) bool {
	return a.F > b.F // want `direct > comparison of an F score`
}

func worseLt(x float64, b combo) bool {
	return x < b.F // want `direct < comparison of an F score`
}

// Comparing non-F fields is fine.
func cleanGenes(a, b combo) bool {
	return a.Genes[0] < b.Genes[0]
}

// An F field that is not a float is not a score.
type labeled struct{ F string }

func cleanString(a, b labeled) bool {
	return a.F == b.F
}

// A bound-and-prune decision written as a raw comparison against the
// incumbent's score is exactly the bug the rule exists for: prune
// strictness is part of the canonical order, so the decision must route
// through internal/reduce (SharedBest.ShouldPrune / Combo.StrictlyAbove),
// never reimplement it at the call site.
func worsePruneBound(upperBound float64, incumbent combo) bool {
	return upperBound < incumbent.F // want `direct < comparison of an F score`
}

func suppressed(a, b combo) bool {
	return a.F > b.F //lint:allow floatcompare fixture asserts suppression keeps this silent
}
