package floatcompare_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/floatcompare"
)

func TestFloatcompare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), floatcompare.Analyzer,
		"fscore", "reduce")
}
