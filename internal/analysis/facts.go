package analysis

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"
)

// A Fact is a typed datum one analyzer attaches to a function, variable, or
// package while analyzing the package that declares it, and consumes while
// analyzing packages that depend on it. Facts are what turn the per-package
// lints into interprocedural invariant checks: allocfree exports "this
// function allocates" from internal/bitmat and consults it at the call sites
// inside internal/cover's kernels; ctxflow exports "this callee observes its
// context"; atomicguard exports "this object is accessed atomically".
//
// Facts are in-memory only — the whole module is analyzed in one process, in
// dependency order (see Run), so no serialization is needed. A Fact type
// must be declared in the exporting Analyzer's FactTypes, and should
// implement fmt.Stringer so analysistest "wantfact" assertions can match it.
type Fact interface {
	// AFact marks the type as a fact; it has no behavior.
	AFact()
}

// ObjectFact pairs an object with one fact attached to it.
type ObjectFact struct {
	// Analyzer is the name of the analyzer that exported the fact.
	Analyzer string
	// Obj is the object the fact describes.
	Obj types.Object
	// Fact is the fact value.
	Fact Fact
}

// PackageFact pairs a package with one fact attached to it.
type PackageFact struct {
	// Analyzer is the name of the analyzer that exported the fact.
	Analyzer string
	// Pkg is the package the fact describes.
	Pkg *types.Package
	// Fact is the fact value.
	Fact Fact
}

// objKey addresses the facts one analyzer attached to one object.
type objKey struct {
	analyzer string
	obj      types.Object
}

// pkgKey addresses the facts one analyzer attached to one package.
type pkgKey struct {
	analyzer string
	pkg      *types.Package
}

// factStore is the run-wide fact table. Packages are analyzed in
// dependency order and share one type-checker universe (one load.Loader),
// so an object imported by a dependent package is the identical
// types.Object the defining package exported facts on.
type factStore struct {
	object map[objKey][]Fact
	pkg    map[pkgKey][]Fact
}

func newFactStore() *factStore {
	return &factStore{
		object: make(map[objKey][]Fact),
		pkg:    make(map[pkgKey][]Fact),
	}
}

// declared reports whether the analyzer declared f's dynamic type in its
// FactTypes.
func declared(a *Analyzer, f Fact) bool {
	t := reflect.TypeOf(f)
	for _, proto := range a.FactTypes {
		if reflect.TypeOf(proto) == t {
			return true
		}
	}
	return false
}

// ExportObjectFact attaches a fact to obj on behalf of the pass's analyzer.
// The object must be declared in the package under analysis (facts about
// other packages' objects belong to their own pass), and the fact's type
// must be declared in the analyzer's FactTypes.
func (p *Pass) ExportObjectFact(obj types.Object, f Fact) {
	if obj == nil {
		panic("analysis: ExportObjectFact on nil object")
	}
	if obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("analysis: %s exports a fact about %v, which %s does not declare",
			p.Analyzer.Name, obj, p.Pkg.Path()))
	}
	if !declared(p.Analyzer, f) {
		panic(fmt.Sprintf("analysis: %s exports undeclared fact type %T", p.Analyzer.Name, f))
	}
	k := objKey{p.Analyzer.Name, obj}
	p.facts.object[k] = append(p.facts.object[k], f)
}

// ImportObjectFact copies into ptr the fact of ptr's dynamic type attached
// to obj by this pass's analyzer (in this or an earlier-analyzed package),
// reporting whether one was found. ptr must be a non-nil pointer to a
// declared fact type — the same contract as x/tools.
func (p *Pass) ImportObjectFact(obj types.Object, ptr Fact) bool {
	if obj == nil {
		return false
	}
	return importFact(p.facts.object[objKey{p.Analyzer.Name, obj}], ptr)
}

// ExportPackageFact attaches a fact to the package under analysis.
func (p *Pass) ExportPackageFact(f Fact) {
	if !declared(p.Analyzer, f) {
		panic(fmt.Sprintf("analysis: %s exports undeclared fact type %T", p.Analyzer.Name, f))
	}
	k := pkgKey{p.Analyzer.Name, p.Pkg}
	p.facts.pkg[k] = append(p.facts.pkg[k], f)
}

// ImportPackageFact copies into ptr the fact of ptr's dynamic type attached
// to pkg by this pass's analyzer, reporting whether one was found.
func (p *Pass) ImportPackageFact(pkg *types.Package, ptr Fact) bool {
	return importFact(p.facts.pkg[pkgKey{p.Analyzer.Name, pkg}], ptr)
}

// importFact copies the first fact whose dynamic type matches *ptr into ptr.
func importFact(facts []Fact, ptr Fact) bool {
	v := reflect.ValueOf(ptr)
	if v.Kind() != reflect.Pointer || v.IsNil() {
		panic(fmt.Sprintf("analysis: ImportFact target %T is not a non-nil pointer", ptr))
	}
	for _, f := range facts {
		fv := reflect.ValueOf(f)
		if fv.Type() == v.Type() {
			v.Elem().Set(fv.Elem())
			return true
		}
		// Prototype exported by value, imported through a pointer.
		if fv.Type() == v.Type().Elem() {
			v.Elem().Set(fv)
			return true
		}
	}
	return false
}

// AllObjectFacts returns every object fact exported by this pass's analyzer
// so far, across all packages already analyzed, sorted by object position.
func (p *Pass) AllObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, facts := range p.facts.object {
		if k.analyzer != p.Analyzer.Name {
			continue
		}
		for _, f := range facts {
			out = append(out, ObjectFact{Analyzer: k.analyzer, Obj: k.obj, Fact: f})
		}
	}
	sortObjectFacts(out)
	return out
}

// sortObjectFacts orders facts by object position then analyzer, giving
// deterministic iteration over the map-backed store.
func sortObjectFacts(facts []ObjectFact) {
	sort.Slice(facts, func(i, j int) bool {
		a, b := facts[i], facts[j]
		if a.Obj.Pos() != b.Obj.Pos() {
			return a.Obj.Pos() < b.Obj.Pos()
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return fmt.Sprint(a.Fact) < fmt.Sprint(b.Fact)
	})
}

// ObjectFacts returns every object fact exported during the run, across all
// analyzers, sorted by object position. It is the hook analysistest's
// "wantfact" assertions and debugging tools read the fact table through.
func (r *Result) ObjectFacts() []ObjectFact {
	var out []ObjectFact
	for k, facts := range r.facts.object {
		for _, f := range facts {
			out = append(out, ObjectFact{Analyzer: k.analyzer, Obj: k.obj, Fact: f})
		}
	}
	sortObjectFacts(out)
	return out
}

// PackageFacts returns every package fact exported during the run, sorted
// by package path then analyzer.
func (r *Result) PackageFacts() []PackageFact {
	var out []PackageFact
	for k, facts := range r.facts.pkg {
		for _, f := range facts {
			out = append(out, PackageFact{Analyzer: k.analyzer, Pkg: k.pkg, Fact: f})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pkg.Path() != b.Pkg.Path() {
			return a.Pkg.Path() < b.Pkg.Path()
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}
