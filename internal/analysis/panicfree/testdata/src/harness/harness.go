// Package harness stands in for internal/harness — the supervised
// runner exists to SURVIVE panics, so it must not originate any: a panic
// in the supervisor kills the whole campaign the per-partition recover
// was protecting.
package harness

// scanOnce is the approved recover-and-retry shape: recovering and
// converting to an error is clean — only originating a panic is flagged.
func scanOnce(part int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			err = asError(rec)
		}
	}()
	scan(part)
	return nil
}

// validateOptions is the broken shape: supervisor configuration comes
// from flags and env vars, so rejecting it must be an error return.
func validateOptions(retries int) {
	if retries < 0 {
		panic("harness: negative MaxRetries") // want `panic on the long-running cluster path`
	}
}

// rethrow pins that re-panicking a foreign recover value — the pattern
// that keeps real bugs loud while injected faults are retried — needs an
// explicit suppression naming why.
func rethrow(part int) (err error) {
	defer func() {
		if rec := recover(); rec != nil {
			//lint:allow panicfree non-injected panics are programmer errors and must stay loud
			panic(rec)
		}
	}()
	scan(part)
	return nil
}

func scan(int) {}

func asError(any) error { return nil }
