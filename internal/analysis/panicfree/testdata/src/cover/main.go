// This fixture sits at an in-scope import path ("cover") but declares
// package main: the entry-point exemption must win, so its panic stays
// silent — a CLI's process is its own failure domain.
package main

func main() {
	if 1 < 0 {
		panic("unreachable")
	}
}
