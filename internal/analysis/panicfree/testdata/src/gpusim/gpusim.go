// Package gpusim stands in for internal/gpusim — library code on the
// long-running cluster path, where panics must be suppressions-only.
package gpusim

import "repro/internal/combinat"

func validate(rowWords int) {
	if rowWords <= 0 {
		panic("gpusim: RowWords must be positive") // want `panic on the long-running cluster path`
	}
}

func domainSize(g uint64) uint64 {
	return combinat.MustBinomial(g, 4) // want `combinat.MustBinomial panics on overflow`
}

func checkedDomainSize(g uint64) (uint64, bool) {
	return combinat.Binomial(g, 4)
}

func invariant(words int) {
	if words < 0 {
		//lint:allow panicfree fixture asserts a justified invariant assertion stays silent
		panic("gpusim: negative word count")
	}
}
