package panicfree_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/panicfree"
)

func TestPanicfree(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), panicfree.Analyzer,
		"gpusim", "cover", "harness")
}
