// Package panicfree protects the long-running cluster path: a panic inside
// the orchestration layer (internal/cluster, cover, sched, mpisim, gpusim)
// tears down a multi-hour, multi-rank campaign that an error return would
// have let the driver retry, checkpoint, or skip. Library code on that path
// returns errors; panics are reserved for invariant assertions that indicate
// a programmer error, and each such site carries a
// //lint:allow panicfree <reason> suppression.
//
// Two rules inside the scoped packages (package main and test files are
// exempt):
//
//  1. Any call to the builtin panic is flagged.
//  2. Any call to combinat.MustBinomial (or any combinat Must* wrapper) is
//     flagged: it panics on uint64 overflow of a binomial that untrusted
//     input sizes can drive arbitrarily high; use combinat.Binomial and
//     propagate the ok flag as an error.
//
// The leaf data-structure packages (combinat, bitmat, reduce) are outside
// the scope by design: their panics assert index invariants the same way a
// slice bounds check does, and converting them to error returns would put
// branch overhead in the innermost kernels. docs/INVARIANTS.md records this
// boundary.
package panicfree

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer flags panics and Must-wrappers in the long-running library path.
var Analyzer = &analysis.Analyzer{
	Name: "panicfree",
	Doc:  "flags panic and combinat.Must* calls in library code on the long-running cluster path",
	// The cluster-path packages that must return errors instead of
	// panicking.
	Scope: []string{"cluster", "cover", "sched", "mpisim", "gpusim", "harness"},
	Run:   run,
}

func run(pass *analysis.Pass) error {
	// Scope selects the cluster path; main packages within it stay exempt
	// (a driver may die loudly).
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if isBuiltinPanic(pass.TypesInfo, call) {
				pass.Reportf(call.Pos(),
					"panic on the long-running cluster path; return an error, or //lint:allow panicfree <reason> for an invariant assertion")
				return true
			}
			if fn := analysis.Callee(pass.TypesInfo, call); fn != nil &&
				fn.Pkg() != nil && analysis.PathTail(fn.Pkg().Path()) == "combinat" &&
				strings.HasPrefix(fn.Name(), "Must") {
				pass.Reportf(call.Pos(),
					"combinat.%s panics on overflow; use the checked variant and propagate an error", fn.Name())
			}
			return true
		})
	}
	return nil
}

// isBuiltinPanic reports whether call invokes the predeclared panic.
func isBuiltinPanic(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
