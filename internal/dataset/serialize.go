package dataset

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/bitmat"
	"repro/internal/gene"
)

// cohortHeader is the JSON-encoded metadata written ahead of the binary
// matrices: everything in a Cohort except the bit matrices themselves.
type cohortHeader struct {
	Version        int             `json:"version"`
	Spec           Spec            `json:"spec"`
	GeneSymbols    []string        `json:"gene_symbols"`
	TumorBarcodes  []string        `json:"tumor_barcodes"`
	NormalBarcodes []string        `json:"normal_barcodes"`
	Planted        [][]int         `json:"planted"`
	Mutations      []gene.Mutation `json:"mutations"`
}

const cohortVersion = 1

// Save serializes the full cohort — spec, gene symbols, barcodes, planted
// ground truth, positional mutation records and both bit matrices — to a
// single stream. Load restores it exactly.
func (c *Cohort) Save(w io.Writer) error {
	hdr := cohortHeader{
		Version:        cohortVersion,
		Spec:           c.Spec,
		GeneSymbols:    c.GeneSymbols,
		TumorBarcodes:  c.TumorBarcodes,
		NormalBarcodes: c.NormalBarcodes,
		Planted:        c.Planted,
		Mutations:      c.Mutations,
	}
	blob, err := json.Marshal(hdr)
	if err != nil {
		return fmt.Errorf("dataset: encoding cohort header: %w", err)
	}
	// Length-prefixed JSON header, then the two matrices.
	if _, err := fmt.Fprintf(w, "COHORT1 %d\n", len(blob)); err != nil {
		return err
	}
	if _, err := w.Write(blob); err != nil {
		return err
	}
	if _, err := c.Tumor.WriteTo(w); err != nil {
		return fmt.Errorf("dataset: writing tumor matrix: %w", err)
	}
	if _, err := c.Normal.WriteTo(w); err != nil {
		return fmt.Errorf("dataset: writing normal matrix: %w", err)
	}
	return nil
}

// Load restores a cohort written by Save.
func Load(r io.Reader) (*Cohort, error) {
	var size int
	if _, err := fmt.Fscanf(r, "COHORT1 %d\n", &size); err != nil {
		return nil, fmt.Errorf("dataset: bad cohort magic: %w", err)
	}
	const maxHeader = 1 << 30
	if size <= 0 || size > maxHeader {
		return nil, fmt.Errorf("dataset: implausible header size %d", size)
	}
	blob := make([]byte, size)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("dataset: reading cohort header: %w", err)
	}
	var hdr cohortHeader
	if err := json.Unmarshal(blob, &hdr); err != nil {
		return nil, fmt.Errorf("dataset: decoding cohort header: %w", err)
	}
	if hdr.Version != cohortVersion {
		return nil, fmt.Errorf("dataset: cohort version %d, want %d", hdr.Version, cohortVersion)
	}
	tumor, err := bitmat.ReadMatrix(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading tumor matrix: %w", err)
	}
	normal, err := bitmat.ReadMatrix(r)
	if err != nil {
		return nil, fmt.Errorf("dataset: reading normal matrix: %w", err)
	}
	c := &Cohort{
		Spec:           hdr.Spec,
		GeneSymbols:    hdr.GeneSymbols,
		Tumor:          tumor,
		Normal:         normal,
		TumorBarcodes:  hdr.TumorBarcodes,
		NormalBarcodes: hdr.NormalBarcodes,
		Planted:        hdr.Planted,
		Mutations:      hdr.Mutations,
	}
	// Structural consistency between header and matrices.
	if len(c.GeneSymbols) != tumor.Genes() || tumor.Genes() != normal.Genes() {
		return nil, fmt.Errorf("dataset: cohort header names %d genes, matrices have %d/%d",
			len(c.GeneSymbols), tumor.Genes(), normal.Genes())
	}
	if len(c.TumorBarcodes) != tumor.Samples() || len(c.NormalBarcodes) != normal.Samples() {
		return nil, fmt.Errorf("dataset: barcode counts do not match matrix columns")
	}
	return c, nil
}
