package dataset

import (
	"bytes"
	"testing"

	"repro/internal/gene"
)

// small returns a fast-to-generate spec for unit tests.
func small() Spec {
	s := defaultRates()
	s.Code, s.Name = "TST", "test cohort"
	s.Genes, s.TumorSamples, s.NormalSamples = 60, 120, 100
	s.PlantedCombos = 3
	return s
}

func TestGenerateShapes(t *testing.T) {
	c, err := Generate(small(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tumor.Genes() != 60 || c.Tumor.Samples() != 120 {
		t.Fatalf("tumor matrix %d×%d", c.Tumor.Genes(), c.Tumor.Samples())
	}
	if c.Normal.Genes() != 60 || c.Normal.Samples() != 100 {
		t.Fatalf("normal matrix %d×%d", c.Normal.Genes(), c.Normal.Samples())
	}
	if len(c.TumorBarcodes) != 120 || len(c.NormalBarcodes) != 100 {
		t.Fatal("barcode counts wrong")
	}
	if len(c.GeneSymbols) != 60 {
		t.Fatal("gene symbol count wrong")
	}
	if len(c.Planted) != 3 {
		t.Fatalf("planted %d combos, want 3", len(c.Planted))
	}
	for _, combo := range c.Planted {
		if len(combo) != 4 {
			t.Fatalf("planted combo size %d, want 4", len(combo))
		}
		for i := 1; i < len(combo); i++ {
			if combo[i] <= combo[i-1] {
				t.Fatal("planted combo not strictly sorted")
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(small(), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(small(), 99)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Tumor.Equal(b.Tumor) || !a.Normal.Equal(b.Normal) {
		t.Fatal("same seed produced different matrices")
	}
	c, err := Generate(small(), 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Tumor.Equal(c.Tumor) {
		t.Fatal("different seeds produced identical tumor matrices")
	}
}

func TestPlantedCombosDisjoint(t *testing.T) {
	c, err := Generate(small(), 5)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, combo := range c.Planted {
		for _, g := range combo {
			if seen[g] {
				t.Fatalf("gene %d appears in two planted combos", g)
			}
			seen[g] = true
		}
	}
}

func TestPlantedSignalDominatesBackground(t *testing.T) {
	// Tumor samples assigned to the first (most popular) combo should make
	// that combo's full-AND count far exceed any random 4-gene set's.
	c, err := Generate(small(), 7)
	if err != nil {
		t.Fatal(err)
	}
	first := c.Planted[0]
	planted := c.Tumor.ComboPopCount(first...)
	if planted < c.Nt()/4 {
		t.Fatalf("first planted combo covers only %d of %d tumors", planted, c.Nt())
	}
	// Normal samples should rarely carry the full combo.
	inNormal := c.Normal.ComboPopCount(first...)
	if inNormal > c.Nn()/3 {
		t.Fatalf("planted combo present in %d of %d normals — too noisy", inNormal, c.Nn())
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	bad := []func(*Spec){
		func(s *Spec) { s.Genes = 0 },
		func(s *Spec) { s.TumorSamples = 0 },
		func(s *Spec) { s.NormalSamples = -1 },
		func(s *Spec) { s.Hits = 1 },
		func(s *Spec) { s.Hits = 6 },
		func(s *Spec) { s.PlantedCombos = 0 },
		func(s *Spec) { s.Genes = 8; s.PlantedCombos = 3 }, // 3*4 > 8
		func(s *Spec) { s.DriverMutProb = 0 },
		func(s *Spec) { s.DriverMutProb = 1.5 },
	}
	for i, mutate := range bad {
		s := small()
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted a bad spec", i)
		}
		if _, err := Generate(s, 1); err == nil {
			t.Errorf("case %d: Generate accepted a bad spec", i)
		}
	}
}

func TestScaled(t *testing.T) {
	s := BRCA()
	r := s.Scaled(100)
	if r.Genes != 100 {
		t.Fatal("Scaled did not resize genes")
	}
	if r.TumorSamples != s.TumorSamples {
		t.Fatal("Scaled changed sample counts")
	}
	if err := r.Validate(); err != nil {
		t.Fatalf("scaled spec invalid: %v", err)
	}
	// Scaling below the planted-combo footprint shrinks the combo count.
	tiny := s.Scaled(10)
	if tiny.PlantedCombos*tiny.Hits > 10 && tiny.PlantedCombos > 1 {
		t.Fatal("Scaled left an infeasible combo count")
	}
}

func TestRegistry(t *testing.T) {
	specs := FourHitCancers()
	if len(specs) != 11 {
		t.Fatalf("registry has %d four-hit cancers, want 11", len(specs))
	}
	for _, s := range specs {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Code, err)
		}
		if s.Hits != 4 {
			t.Errorf("%s: Hits = %d, want 4", s.Code, s.Hits)
		}
	}
	brca := BRCA()
	if brca.Genes != 19411 || brca.TumorSamples != 911 {
		t.Error("BRCA must match the paper: G=19411, 911 tumor samples")
	}
	lgg := LGG()
	if lgg.TumorSamples != 532 || lgg.NormalSamples != 329 {
		t.Error("LGG must match the paper: 532 tumor / 329 normal samples")
	}
	if len(lgg.Profiled) != 4 {
		t.Error("LGG should profile the four genes of its top combination")
	}
	acc := ACC()
	for _, s := range specs {
		if s.Code != "ACC" && s.TumorSamples < acc.TumorSamples {
			t.Errorf("%s smaller than ACC — ACC must be the smallest dataset", s.Code)
		}
	}
}

func TestByCode(t *testing.T) {
	if s, err := ByCode("BRCA"); err != nil || s.Code != "BRCA" {
		t.Fatalf("ByCode(BRCA) = %v, %v", s.Code, err)
	}
	if s, err := ByCode("LGG"); err != nil || s.Code != "LGG" {
		t.Fatalf("ByCode(LGG) = %v, %v", s.Code, err)
	}
	if _, err := ByCode("NOPE"); err == nil {
		t.Fatal("ByCode accepted an unknown code")
	}
}

func TestSplitSizes(t *testing.T) {
	c, err := Generate(small(), 11)
	if err != nil {
		t.Fatal(err)
	}
	train, test := c.Split(0.75, 42)
	if train.Nt()+test.Nt() != c.Nt() {
		t.Fatal("tumor samples lost in split")
	}
	if train.Nn()+test.Nn() != c.Nn() {
		t.Fatal("normal samples lost in split")
	}
	if train.Nt() != 90 { // 120 * 0.75
		t.Fatalf("train tumors = %d, want 90", train.Nt())
	}
	if train.Nn() != 75 { // 100 * 0.75
		t.Fatalf("train normals = %d, want 75", train.Nn())
	}
	// Barcodes must partition without overlap.
	seen := map[string]bool{}
	for _, b := range append(append([]string{}, train.TumorBarcodes...), test.TumorBarcodes...) {
		if seen[b] {
			t.Fatalf("barcode %s in both splits", b)
		}
		seen[b] = true
	}
}

func TestSplitPreservesColumns(t *testing.T) {
	c, err := Generate(small(), 13)
	if err != nil {
		t.Fatal(err)
	}
	train, test := c.Split(0.75, 1)
	// Reconstruct each original tumor column from whichever split holds it.
	colOf := map[string]int{}
	for s, b := range c.TumorBarcodes {
		colOf[b] = s
	}
	checkSplit := func(part *Cohort) {
		for s, b := range part.TumorBarcodes {
			orig := colOf[b]
			for g := 0; g < c.Tumor.Genes(); g++ {
				if part.Tumor.Get(g, s) != c.Tumor.Get(g, orig) {
					t.Fatalf("split corrupted column %s at gene %d", b, g)
				}
			}
		}
	}
	checkSplit(train)
	checkSplit(test)
}

func TestSplitPanicsOnBadFrac(t *testing.T) {
	c, err := Generate(small(), 17)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Split(1.0) did not panic")
		}
	}()
	c.Split(1.0, 1)
}

func TestProfiledGenesLGG(t *testing.T) {
	lgg := LGG().Scaled(80)
	c, err := Generate(lgg, 3)
	if err != nil {
		t.Fatal(err)
	}
	idh1 := c.GeneID("IDH1")
	muc6 := c.GeneID("MUC6")
	if idh1 < 0 || muc6 < 0 {
		t.Fatal("profiled genes missing from cohort")
	}
	// Both must ride the first planted combination.
	inFirst := func(id int) bool {
		for _, g := range c.Planted[0] {
			if g == id {
				return true
			}
		}
		return false
	}
	if !inFirst(idh1) || !inFirst(muc6) {
		t.Fatal("IDH1/MUC6 not planted in the first combination")
	}
	// IDH1 tumor mutations concentrate at R132; normals carry almost none.
	th := gene.HistogramPositions(c.Mutations, "IDH1", gene.Tumor)
	pos, pct := th.PeakPosition()
	if pos != 132 || pct < 50 {
		t.Fatalf("IDH1 tumor peak = (%d, %.1f%%), want a dominant peak at 132", pos, pct)
	}
	// Normals carry far fewer IDH1 mutations and show no positional
	// hotspot — the Fig. 10 driver signature.
	nh := gene.HistogramPositions(c.Mutations, "IDH1", gene.Normal)
	if nh.Total > th.Total/2 {
		t.Fatalf("IDH1 normal mutations %d vs tumor %d — should be rarer", nh.Total, th.Total)
	}
	if _, npct := nh.PeakPosition(); npct > 30 {
		t.Fatalf("IDH1 normal peak %.1f%% — normals should be flat", npct)
	}
	// MUC6 scatters: no dominant hotspot, and mutations appear in normals.
	mh := gene.HistogramPositions(c.Mutations, "MUC6", gene.Tumor)
	if _, mpct := mh.PeakPosition(); mpct > 25 {
		t.Fatalf("MUC6 tumor peak %.1f%% — passenger gene should be flat", mpct)
	}
	mn := gene.HistogramPositions(c.Mutations, "MUC6", gene.Normal)
	if mn.Total == 0 {
		t.Fatal("MUC6 should mutate in normal samples too")
	}
}

func TestGeneIDUnknown(t *testing.T) {
	c, err := Generate(small(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if c.GeneID("NOSUCHGENE") != -1 {
		t.Fatal("GeneID should return -1 for unknown symbols")
	}
}

func TestMutationsFollowSplit(t *testing.T) {
	lgg := LGG().Scaled(80)
	c, err := Generate(lgg, 19)
	if err != nil {
		t.Fatal(err)
	}
	train, test := c.Split(0.75, 2)
	if len(train.Mutations)+len(test.Mutations) != len(c.Mutations) {
		t.Fatalf("mutations lost: %d + %d != %d",
			len(train.Mutations), len(test.Mutations), len(c.Mutations))
	}
	inTrain := map[string]bool{}
	for _, b := range train.TumorBarcodes {
		inTrain[b] = true
	}
	for _, b := range train.NormalBarcodes {
		inTrain[b] = true
	}
	for _, m := range train.Mutations {
		if !inTrain[m.SampleBarcode] {
			t.Fatalf("train mutation references foreign sample %s", m.SampleBarcode)
		}
	}
}

func TestCohortSaveLoadRoundTrip(t *testing.T) {
	lgg := LGG().Scaled(60)
	lgg.ProfileAll = true
	orig, err := Generate(lgg, 31)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Tumor.Equal(orig.Tumor) || !got.Normal.Equal(orig.Normal) {
		t.Fatal("matrices changed in round trip")
	}
	if len(got.GeneSymbols) != len(orig.GeneSymbols) ||
		got.GeneSymbols[0] != orig.GeneSymbols[0] {
		t.Fatal("gene symbols changed")
	}
	if len(got.Planted) != len(orig.Planted) {
		t.Fatal("planted truth changed")
	}
	if len(got.Mutations) != len(orig.Mutations) {
		t.Fatal("mutation records changed")
	}
	if got.Spec.Code != "LGG" || got.Spec.DriverMutProb != orig.Spec.DriverMutProb {
		t.Fatal("spec changed")
	}
	if got.TumorBarcodes[5] != orig.TumorBarcodes[5] {
		t.Fatal("barcodes changed")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	c, err := Generate(small(), 1)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Save(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	cases := map[string][]byte{
		"garbage":        []byte("not a cohort at all"),
		"truncated":      raw[:len(raw)/2],
		"bad magic":      append([]byte("COHORTX"), raw[7:]...),
		"version tamper": bytes.Replace(raw, []byte(`"version":1`), []byte(`"version":9`), 1),
	}
	for name, data := range cases {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: Load accepted corrupt input", name)
		}
	}
}
