package dataset

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/gene"
	"repro/internal/maf"
)

// ExportMAF writes the cohort's mutations of one sample class as MAF
// records: one record per set matrix bit, with amino-acid positions for
// profiled genes (from the cohort's positional records) and position 0
// (unknown) elsewhere. The output round-trips through FromMAF.
func (c *Cohort) ExportMAF(w io.Writer, class gene.SampleClass) error {
	m, barcodes := c.Tumor, c.TumorBarcodes
	if class == gene.Normal {
		m, barcodes = c.Normal, c.NormalBarcodes
	}
	// Positional records for profiled genes, keyed by (symbol, barcode);
	// each key's positions are consumed in order.
	type key struct{ symbol, barcode string }
	positions := map[key][]int{}
	for _, mut := range c.Mutations {
		if mut.Class != class {
			continue
		}
		k := key{mut.GeneSymbol, mut.SampleBarcode}
		positions[k] = append(positions[k], mut.Position)
	}
	var records []maf.Record
	for g := 0; g < m.Genes(); g++ {
		symbol := c.GeneSymbols[g]
		for s := 0; s < m.Samples(); s++ {
			if !m.Get(g, s) {
				continue
			}
			rec := maf.Record{
				HugoSymbol:     symbol,
				Barcode:        barcodes[s],
				Classification: "Missense_Mutation",
			}
			k := key{symbol, barcodes[s]}
			if ps := positions[k]; len(ps) > 0 {
				rec.ProteinPosition = ps[0]
				positions[k] = ps[1:]
			}
			records = append(records, rec)
		}
	}
	return maf.Write(w, records)
}

// FromMAF builds a cohort from tumor and normal MAF streams, mirroring the
// paper's ingestion path: records are summarized per class, then aligned
// onto the union gene universe (sorted symbols). Silent calls are dropped.
// The resulting cohort has no planted ground truth; Spec carries only the
// shape.
//
// As with real MAF files, a sample appears only if it has at least one
// non-silent mutation call — all-wild-type samples need an external
// manifest the format does not carry, so cohort sizes can shrink relative
// to the export source.
func FromMAF(code string, tumor, normal io.Reader) (*Cohort, error) {
	tr, err := maf.Read(tumor)
	if err != nil {
		return nil, fmt.Errorf("dataset: tumor MAF: %w", err)
	}
	nr, err := maf.Read(normal)
	if err != nil {
		return nil, fmt.Errorf("dataset: normal MAF: %w", err)
	}
	ts, err := maf.Summarize(tr, true)
	if err != nil {
		return nil, err
	}
	ns, err := maf.Summarize(nr, true)
	if err != nil {
		return nil, err
	}
	// Union gene universe, sorted.
	set := map[string]bool{}
	for _, g := range ts.Genes {
		set[g] = true
	}
	for _, g := range ns.Genes {
		set[g] = true
	}
	var symbols []string
	for g := range set {
		symbols = append(symbols, g)
	}
	sort.Strings(symbols)
	universe := make(map[string]int, len(symbols))
	for i, g := range symbols {
		universe[g] = i
	}
	tm, _, err := ts.Align(universe, len(symbols))
	if err != nil {
		return nil, err
	}
	nm, _, err := ns.Align(universe, len(symbols))
	if err != nil {
		return nil, err
	}
	c := &Cohort{
		Spec: Spec{
			Code:          code,
			Name:          code + " (from MAF)",
			Genes:         len(symbols),
			TumorSamples:  tm.Samples(),
			NormalSamples: nm.Samples(),
			Hits:          4,
			PlantedCombos: 1, // placeholder: no ground truth in real data
			DriverMutProb: 1,
		},
		GeneSymbols:    symbols,
		Tumor:          tm,
		Normal:         nm,
		TumorBarcodes:  ts.Samples,
		NormalBarcodes: ns.Samples,
	}
	// Re-attach positional records for downstream Fig. 10-style analyses.
	for _, r := range tr {
		if r.Silent() || r.ProteinPosition == 0 {
			continue
		}
		c.Mutations = append(c.Mutations, gene.Mutation{
			GeneSymbol:    r.HugoSymbol,
			SampleBarcode: r.Barcode,
			Class:         gene.Tumor,
			Position:      r.ProteinPosition,
		})
	}
	for _, r := range nr {
		if r.Silent() || r.ProteinPosition == 0 {
			continue
		}
		c.Mutations = append(c.Mutations, gene.Mutation{
			GeneSymbol:    r.HugoSymbol,
			SampleBarcode: r.Barcode,
			Class:         gene.Normal,
			Position:      r.ProteinPosition,
		})
	}
	return c, nil
}
