package dataset_test

import (
	"fmt"

	"repro/internal/dataset"
)

// Generate builds a cohort with planted driver combinations; the paper's
// named cohorts come from the registry with their stated sample counts.
func ExampleGenerate() {
	spec := dataset.LGG().Scaled(60) // paper-shape cohort, CPU-enumerable genes
	cohort, err := dataset.Generate(spec, 42)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println(cohort.Nt(), cohort.Nn(), len(cohort.Planted))
	// The IDH1 combination is planted first (the paper's top LGG combo).
	for _, g := range cohort.Planted[0] {
		fmt.Print(cohort.GeneSymbols[g], " ")
	}
	fmt.Println()
	// Output:
	// 532 329 5
	// IDH1 MUC6 PABPC3 TAS2R46
}

// Split produces the paper's 75/25 train/test partition.
func ExampleCohort_Split() {
	cohort, err := dataset.Generate(dataset.ACC().Scaled(40), 1)
	if err != nil {
		fmt.Println(err)
		return
	}
	train, test := cohort.Split(0.75, 7)
	fmt.Println(train.Nt(), test.Nt(), train.Nn(), test.Nn())
	// Output:
	// 69 23 64 21
}
