// Package dataset generates and manipulates synthetic TCGA-like cohorts for
// the multi-hit reproduction.
//
// The paper consumes somatic mutation calls (Mutect2 MAF files) for 31 TCGA
// cancer types, 11 of which were previously estimated to require four or
// more hits. That data is access-controlled, so this package substitutes a
// parameterized generator that preserves the structure the algorithm and its
// evaluation depend on:
//
//   - tumor samples carry a planted h-hit driver combination (each gene of
//     the assigned combination mutated with high probability) plus sparse
//     passenger background;
//   - normal samples carry background only, except for a "noisy" fraction
//     with elevated mutation burden that produces the false positives behind
//     the paper's ~90% (not 100%) specificity;
//   - designated profiled genes emit MAF-like per-mutation amino-acid
//     positions, with hotspot genes (IDH1 R132) concentrating tumor
//     mutations at one codon while passenger genes (MUC6) scatter uniformly.
//
// Cohort sample counts for the named cancer types follow the numbers the
// paper states (BRCA: 911 tumors; LGG: 532 tumors / 329 normals; ACC is the
// smallest); counts the paper does not state are plausible TCGA-scale
// values.
package dataset

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/bitmat"
	"repro/internal/gene"
)

// ProfiledGene describes a gene for which the generator emits MAF-like
// mutation records with amino-acid positions.
type ProfiledGene struct {
	// Symbol is the gene symbol, e.g. "IDH1".
	Symbol string
	// Codons is the protein length in amino acids.
	Codons int
	// HotspotPos, when non-zero, is the codon at which tumor mutations
	// concentrate.
	HotspotPos int
	// HotspotFrac is the fraction of tumor mutations landing on HotspotPos.
	HotspotFrac float64
	// InFirstCombo forces the gene into the first planted combination, so
	// the discovery pipeline surfaces it (IDH1 appears in LGG's top 4-hit
	// combination in the paper).
	InFirstCombo bool
	// ExtraBackground is an additional per-sample mutation rate applied to
	// this gene in both classes, on top of the cohort background. Large
	// passenger genes like MUC6 mutate frequently in tumor and normal
	// tissue alike; this is what makes their Fig. 10 profiles flat and
	// class-symmetric.
	ExtraBackground float64
}

// Spec parameterizes one synthetic cancer-type cohort.
type Spec struct {
	// Code is the TCGA study abbreviation, e.g. "BRCA".
	Code string
	// Name is the long cancer-type name.
	Name string
	// Genes is the number of genes G (matrix rows).
	Genes int
	// TumorSamples and NormalSamples are the cohort sizes Nt and Nn.
	TumorSamples  int
	NormalSamples int
	// Hits is the estimated number of hits h for this cancer type.
	Hits int
	// PlantedCombos is the number of driver combinations planted.
	PlantedCombos int
	// DriverMutProb is the probability that a tumor sample carries its
	// assigned driver combination in full; otherwise it carries only two
	// of the combination's genes (a partial carrier, usually uncoverable
	// at h = 4). This is the knob that sets classifier sensitivity.
	DriverMutProb float64
	// TumorBackground and NormalBackground are per-gene passenger mutation
	// rates.
	TumorBackground  float64
	NormalBackground float64
	// NoisyNormalFrac is the fraction of normal samples with elevated
	// mutation burden; NoisyNormalRate is their per-driver-gene rate.
	NoisyNormalFrac float64
	NoisyNormalRate float64
	// FirstComboWeight scales the first planted combination's popularity
	// relative to the default decay (0 means 1.0). Cohorts whose top
	// combination is a named anchor (LGG's IDH1 combination) use it to
	// make the anchor decisively the greedy's first pick.
	FirstComboWeight float64
	// Profiled lists genes that emit positional mutation records.
	Profiled []ProfiledGene
	// ProfileAll emits positional records for every gene, not just the
	// Profiled list: driver-path mutations land on a per-gene hotspot
	// codon, passenger/background mutations scatter uniformly. This feeds
	// the mutation-level analysis of Sec. V (searching combinations of
	// specific mutations instead of genes with mutations).
	ProfileAll bool
}

// Validate reports the first structural problem with the spec, or nil.
func (s Spec) Validate() error {
	switch {
	case s.Genes <= 0:
		return fmt.Errorf("dataset %s: Genes must be positive, got %d", s.Code, s.Genes)
	case s.TumorSamples <= 0:
		return fmt.Errorf("dataset %s: TumorSamples must be positive, got %d", s.Code, s.TumorSamples)
	case s.NormalSamples <= 0:
		return fmt.Errorf("dataset %s: NormalSamples must be positive, got %d", s.Code, s.NormalSamples)
	case s.Hits < 2 || s.Hits > 5:
		return fmt.Errorf("dataset %s: Hits must be in [2,5], got %d", s.Code, s.Hits)
	case s.PlantedCombos <= 0:
		return fmt.Errorf("dataset %s: PlantedCombos must be positive, got %d", s.Code, s.PlantedCombos)
	case s.PlantedCombos*s.Hits > s.Genes:
		return fmt.Errorf("dataset %s: %d disjoint %d-hit combos need %d genes, have %d",
			s.Code, s.PlantedCombos, s.Hits, s.PlantedCombos*s.Hits, s.Genes)
	case s.DriverMutProb <= 0 || s.DriverMutProb > 1:
		return fmt.Errorf("dataset %s: DriverMutProb out of (0,1]: %g", s.Code, s.DriverMutProb)
	}
	return nil
}

// Scaled returns a copy of the spec with the gene universe resized to g,
// keeping cohort sizes and rates. Experiments that actually enumerate
// C(G, h) combinations on a CPU use scaled-down universes; experiments that
// only need workload arithmetic (scheduling, the cluster model) use the
// paper-scale G.
func (s Spec) Scaled(g int) Spec {
	out := s
	out.Genes = g
	for out.PlantedCombos*out.Hits > g && out.PlantedCombos > 1 {
		out.PlantedCombos--
	}
	return out
}

// Cohort is one generated cancer-type dataset.
type Cohort struct {
	// Spec records the generation parameters.
	Spec Spec
	// GeneSymbols maps gene id → symbol.
	GeneSymbols []string
	// Tumor and Normal are the bit-packed gene×sample matrices.
	Tumor  *bitmat.Matrix
	Normal *bitmat.Matrix
	// TumorBarcodes and NormalBarcodes label the matrix columns.
	TumorBarcodes  []string
	NormalBarcodes []string
	// Planted holds the ground-truth driver combinations (sorted gene ids).
	Planted [][]int
	// Mutations holds MAF-like records for the spec's profiled genes.
	Mutations []gene.Mutation
}

// Nt returns the number of tumor samples.
func (c *Cohort) Nt() int { return c.Tumor.Samples() }

// Nn returns the number of normal samples.
func (c *Cohort) Nn() int { return c.Normal.Samples() }

// Generate builds a cohort from the spec with a deterministic seed.
func Generate(spec Spec, seed int64) (*Cohort, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	c := &Cohort{
		Spec:        spec,
		GeneSymbols: make([]string, spec.Genes),
		Tumor:       bitmat.New(spec.Genes, spec.TumorSamples),
		Normal:      bitmat.New(spec.Genes, spec.NormalSamples),
	}
	for g := range c.GeneSymbols {
		c.GeneSymbols[g] = fmt.Sprintf("G%05d", g)
	}

	// Assign profiled genes to fixed ids (after the shuffle-free naming so
	// ids stay deterministic): profiled genes take the highest ids, except
	// those forced into the first planted combination.
	profiledID := map[string]int{}
	nextHigh := spec.Genes - 1
	for _, p := range spec.Profiled {
		if p.InFirstCombo {
			continue
		}
		profiledID[p.Symbol] = nextHigh
		c.GeneSymbols[nextHigh] = p.Symbol
		nextHigh--
	}

	// Plant disjoint driver combinations over a shuffled driver pool drawn
	// from the low ids (excluding the high ids just reserved).
	pool := rng.Perm(nextHigh + 1)
	idx := 0
	for n := 0; n < spec.PlantedCombos; n++ {
		combo := make([]int, spec.Hits)
		copy(combo, pool[idx:idx+spec.Hits])
		idx += spec.Hits
		sort.Ints(combo)
		c.Planted = append(c.Planted, combo)
	}
	// Force-in profiled genes that must ride the first combination.
	slot := 0
	for _, p := range spec.Profiled {
		if !p.InFirstCombo {
			continue
		}
		if slot >= spec.Hits {
			return nil, fmt.Errorf("dataset %s: more InFirstCombo genes than hits", spec.Code)
		}
		id := c.Planted[0][slot]
		profiledID[p.Symbol] = id
		c.GeneSymbols[id] = p.Symbol
		slot++
	}

	// Combination popularity: mildly decaying weights so the greedy cover
	// peels combinations in a realistic big-to-small order while every
	// combination keeps enough carriers for its F score to beat clean
	// zero-TP noise combinations (0.1·TP must exceed the training FP the
	// noisy normals induce — see the α discussion in Sec. II-B).
	weights := make([]float64, spec.PlantedCombos)
	totalW := 0.0
	for i := range weights {
		weights[i] = 1 / (1 + 0.15*float64(i))
		if i == 0 && spec.FirstComboWeight > 0 {
			weights[i] *= spec.FirstComboWeight
		}
		totalW += weights[i]
	}
	pickCombo := func() int {
		r := rng.Float64() * totalW
		for i, w := range weights {
			if r < w {
				return i
			}
			r -= w
		}
		return spec.PlantedCombos - 1
	}

	// Tumor samples: assigned driver combination (full or partial) plus
	// passenger background. Bits set through the driver path are recorded
	// so ProfileAll can place them on hotspot codons.
	var driverBit map[int]bool
	if spec.ProfileAll {
		driverBit = map[int]bool{}
	}
	markDriver := func(g, s int) {
		c.Tumor.Set(g, s)
		if driverBit != nil {
			driverBit[g*spec.TumorSamples+s] = true
		}
	}
	for s := 0; s < spec.TumorSamples; s++ {
		c.TumorBarcodes = append(c.TumorBarcodes, gene.Barcode(spec.Code, gene.Tumor, s))
		combo := c.Planted[pickCombo()]
		if rng.Float64() < spec.DriverMutProb {
			for _, g := range combo {
				markDriver(g, s)
			}
		} else {
			perm := rng.Perm(len(combo))
			for _, idx := range perm[:2] {
				markDriver(combo[idx], s)
			}
		}
		for g := 0; g < spec.Genes; g++ {
			if rng.Float64() < spec.TumorBackground {
				c.Tumor.Set(g, s)
			}
		}
	}

	// Normal samples: background, with a noisy subpopulation whose driver-
	// pool genes mutate at an elevated rate.
	driverPool := map[int]bool{}
	for _, combo := range c.Planted {
		for _, g := range combo {
			driverPool[g] = true
		}
	}
	for s := 0; s < spec.NormalSamples; s++ {
		c.NormalBarcodes = append(c.NormalBarcodes, gene.Barcode(spec.Code, gene.Normal, s))
		noisy := rng.Float64() < spec.NoisyNormalFrac
		for g := 0; g < spec.Genes; g++ {
			rate := spec.NormalBackground
			if noisy && driverPool[g] {
				rate = spec.NoisyNormalRate
			}
			if rng.Float64() < rate {
				c.Normal.Set(g, s)
			}
		}
	}

	// Positional mutation records for profiled genes, after applying any
	// per-gene extra background so the records reflect the final matrices.
	for _, p := range spec.Profiled {
		id, ok := profiledID[p.Symbol]
		if !ok {
			continue
		}
		if p.ExtraBackground > 0 {
			for s := 0; s < spec.TumorSamples; s++ {
				if rng.Float64() < p.ExtraBackground {
					c.Tumor.Set(id, s)
				}
			}
			for s := 0; s < spec.NormalSamples; s++ {
				if rng.Float64() < p.ExtraBackground {
					c.Normal.Set(id, s)
				}
			}
		}
		emit := func(m *bitmat.Matrix, barcodes []string, class gene.SampleClass) {
			for s := 0; s < m.Samples(); s++ {
				if !m.Get(id, s) {
					continue
				}
				pos := 1 + rng.Intn(p.Codons)
				if class == gene.Tumor && p.HotspotPos > 0 && rng.Float64() < p.HotspotFrac {
					pos = p.HotspotPos
				}
				c.Mutations = append(c.Mutations, gene.Mutation{
					GeneSymbol:    p.Symbol,
					SampleBarcode: barcodes[s],
					Class:         class,
					Position:      pos,
				})
			}
		}
		emit(c.Tumor, c.TumorBarcodes, gene.Tumor)
		emit(c.Normal, c.NormalBarcodes, gene.Normal)
	}

	// ProfileAll: positional records for every remaining gene. Driver-path
	// bits concentrate on a per-gene hotspot codon (drivers recur at the
	// same site); background and normal mutations scatter uniformly.
	if spec.ProfileAll {
		explicit := map[string]bool{}
		for _, p := range spec.Profiled {
			explicit[p.Symbol] = true
		}
		const hotspotFrac = 0.85
		for g := 0; g < spec.Genes; g++ {
			symbol := c.GeneSymbols[g]
			if explicit[symbol] {
				continue
			}
			codons := 200 + rng.Intn(1800)
			hotspot := 1 + rng.Intn(codons)
			for s := 0; s < spec.TumorSamples; s++ {
				if !c.Tumor.Get(g, s) {
					continue
				}
				pos := 1 + rng.Intn(codons)
				if driverBit[g*spec.TumorSamples+s] && rng.Float64() < hotspotFrac {
					pos = hotspot
				}
				c.Mutations = append(c.Mutations, gene.Mutation{
					GeneSymbol:    symbol,
					SampleBarcode: c.TumorBarcodes[s],
					Class:         gene.Tumor,
					Position:      pos,
				})
			}
			for s := 0; s < spec.NormalSamples; s++ {
				if !c.Normal.Get(g, s) {
					continue
				}
				c.Mutations = append(c.Mutations, gene.Mutation{
					GeneSymbol:    symbol,
					SampleBarcode: c.NormalBarcodes[s],
					Class:         gene.Normal,
					Position:      1 + rng.Intn(codons),
				})
			}
		}
	}
	return c, nil
}

// GeneID returns the id for a gene symbol, or -1 if absent.
func (c *Cohort) GeneID(symbol string) int {
	for id, s := range c.GeneSymbols {
		if s == symbol {
			return id
		}
	}
	return -1
}

// Split partitions the cohort's samples into a training cohort with
// approximately trainFrac of each class and a test cohort with the rest,
// using a deterministic shuffle. Mutation records follow their samples.
func (c *Cohort) Split(trainFrac float64, seed int64) (train, test *Cohort) {
	if trainFrac <= 0 || trainFrac >= 1 {
		panic(fmt.Sprintf("dataset: trainFrac must be in (0,1), got %g", trainFrac))
	}
	rng := rand.New(rand.NewSource(seed))
	tumorTrain := pickSet(rng, c.Nt(), trainFrac)
	normalTrain := pickSet(rng, c.Nn(), trainFrac)

	train = c.subset(tumorTrain, normalTrain, true)
	test = c.subset(tumorTrain, normalTrain, false)
	return train, test
}

// pickSet returns a membership mask selecting round(n·frac) indices.
func pickSet(rng *rand.Rand, n int, frac float64) []bool {
	k := int(float64(n)*frac + 0.5)
	perm := rng.Perm(n)
	mask := make([]bool, n)
	for _, i := range perm[:k] {
		mask[i] = true
	}
	return mask
}

// subset extracts the samples where mask membership equals keep.
func (c *Cohort) subset(tumorMask, normalMask []bool, keep bool) *Cohort {
	out := &Cohort{
		Spec:        c.Spec,
		GeneSymbols: c.GeneSymbols,
		Planted:     c.Planted,
	}
	selectCols := func(m *bitmat.Matrix, barcodes []string, mask []bool) (*bitmat.Matrix, []string) {
		remove := bitmat.NewVec(m.Samples())
		var kept []string
		for s := 0; s < m.Samples(); s++ {
			if mask[s] == keep {
				kept = append(kept, barcodes[s])
			} else {
				remove.Set(s)
			}
		}
		return m.Splice(remove), kept
	}
	out.Tumor, out.TumorBarcodes = selectCols(c.Tumor, c.TumorBarcodes, tumorMask)
	out.Normal, out.NormalBarcodes = selectCols(c.Normal, c.NormalBarcodes, normalMask)

	want := map[string]bool{}
	for _, b := range out.TumorBarcodes {
		want[b] = true
	}
	for _, b := range out.NormalBarcodes {
		want[b] = true
	}
	for _, m := range c.Mutations {
		if want[m.SampleBarcode] {
			out.Mutations = append(out.Mutations, m)
		}
	}
	out.Spec.TumorSamples = out.Tumor.Samples()
	out.Spec.NormalSamples = out.Normal.Samples()
	return out
}
