package dataset

import "fmt"

// The registry mirrors the paper's study population. The paper names four
// cohorts and their roles explicitly — BRCA (largest, 911 tumor samples,
// G = 19411, used for all scaling studies), ACC (smallest, used for the
// Fig. 6 utilization profile), ESCA (the 2x2 scheme's worst scaling case)
// and LGG (532 tumor / 329 normal samples, whose top 4-hit combination
// IDH1+MUC6+PABPC3+TAS2R46 anchors the Fig. 10 driver-vs-passenger
// analysis) — and states that 11 cancer types previously estimated to
// require four or more hits were studied. The remaining codes and all
// unstated sample counts are plausible TCGA-scale stand-ins.

// defaultRates returns a Spec pre-filled with the generator's baseline
// noise model; callers override cohort-specific fields.
func defaultRates() Spec {
	return Spec{
		Hits:             4,
		PlantedCombos:    6,
		DriverMutProb:    0.84,
		TumorBackground:  0.010,
		NormalBackground: 0.002,
		NoisyNormalFrac:  0.35,
		NoisyNormalRate:  0.35,
	}
}

// FourHitCancers returns the 11 cancer-type specs used for the 4-hit study
// (Fig. 9), in a stable order.
func FourHitCancers() []Spec {
	mk := func(code, name string, genes, nt, nn int, driverProb float64, combos int) Spec {
		s := defaultRates()
		s.Code, s.Name = code, name
		s.Genes, s.TumorSamples, s.NormalSamples = genes, nt, nn
		s.DriverMutProb = driverProb
		s.PlantedCombos = combos
		return s
	}
	lgg := mk("LGG", "brain lower grade glioma", 19133, 532, 329, 0.86, 5)
	lgg.FirstComboWeight = 2.0
	lgg.Profiled = []ProfiledGene{
		{Symbol: "IDH1", Codons: 414, HotspotPos: 132, HotspotFrac: 0.75, InFirstCombo: true},
		{Symbol: "MUC6", Codons: 2439, InFirstCombo: true, ExtraBackground: 0.06},
		{Symbol: "PABPC3", Codons: 631, InFirstCombo: true},
		{Symbol: "TAS2R46", Codons: 309, InFirstCombo: true},
	}
	return []Spec{
		mk("ACC", "adrenocortical carcinoma", 18739, 92, 85, 0.82, 3),
		mk("BLCA", "bladder urothelial carcinoma", 19548, 412, 300, 0.84, 7),
		mk("COAD", "colon adenocarcinoma", 19804, 406, 350, 0.88, 6),
		mk("ESCA", "esophageal carcinoma", 19212, 184, 150, 0.82, 4),
		mk("GBM", "glioblastoma multiforme", 19361, 390, 300, 0.85, 6),
		mk("HNSC", "head and neck squamous cell carcinoma", 19686, 509, 400, 0.84, 6),
		mk("KIRC", "kidney renal clear cell carcinoma", 19098, 370, 320, 0.90, 5),
		lgg,
		mk("LIHC", "liver hepatocellular carcinoma", 19257, 374, 300, 0.79, 6),
		mk("LUAD", "lung adenocarcinoma", 19873, 566, 480, 0.83, 8),
		mk("STAD", "stomach adenocarcinoma", 19655, 439, 350, 0.82, 7),
	}
}

// BRCA returns the breast invasive carcinoma spec: the paper's largest
// dataset (911 tumor samples, G = 19411), used for every scaling study even
// though BRCA itself was estimated to need only two–three hits.
func BRCA() Spec {
	s := defaultRates()
	s.Code, s.Name = "BRCA", "breast invasive carcinoma"
	s.Genes, s.TumorSamples, s.NormalSamples = 19411, 911, 852
	s.PlantedCombos = 8
	return s
}

// ACC returns the adrenocortical carcinoma spec, the smallest dataset, used
// for the Fig. 6 per-GPU utilization profile.
func ACC() Spec {
	for _, s := range FourHitCancers() {
		if s.Code == "ACC" {
			return s
		}
	}
	panic("dataset: ACC missing from registry")
}

// LGG returns the brain lower grade glioma spec with its profiled genes.
func LGG() Spec {
	for _, s := range FourHitCancers() {
		if s.Code == "LGG" {
			return s
		}
	}
	panic("dataset: LGG missing from registry")
}

// ByCode returns the spec with the given TCGA study code (including BRCA),
// or an error listing the known codes.
func ByCode(code string) (Spec, error) {
	if code == "BRCA" {
		return BRCA(), nil
	}
	known := ""
	for _, s := range FourHitCancers() {
		if s.Code == code {
			return s, nil
		}
		known += " " + s.Code
	}
	return Spec{}, fmt.Errorf("dataset: unknown cancer code %q (known: BRCA%s)", code, known)
}
