package dataset

import (
	"bytes"
	"testing"

	"repro/internal/gene"
)

func TestExportMAFAndFromMAFRoundTrip(t *testing.T) {
	// Generate a cohort, export both classes as MAF, re-ingest, and check
	// the mutation structure is preserved (the gene axis is re-sorted and
	// all-zero genes drop out, so compare via symbols).
	lgg := LGG().Scaled(50)
	orig, err := Generate(lgg, 23)
	if err != nil {
		t.Fatal(err)
	}
	var tumorMAF, normalMAF bytes.Buffer
	if err := orig.ExportMAF(&tumorMAF, gene.Tumor); err != nil {
		t.Fatal(err)
	}
	if err := orig.ExportMAF(&normalMAF, gene.Normal); err != nil {
		t.Fatal(err)
	}

	got, err := FromMAF("LGG", &tumorMAF, &normalMAF)
	if err != nil {
		t.Fatal(err)
	}
	if got.Nt() != orig.Nt() {
		t.Fatalf("tumor samples %d, want %d", got.Nt(), orig.Nt())
	}
	// Every original bit must survive, addressed by symbol and barcode.
	newCol := map[string]int{}
	for s, b := range got.TumorBarcodes {
		newCol[b] = s
	}
	for g := 0; g < orig.Tumor.Genes(); g++ {
		symbol := orig.GeneSymbols[g]
		ng := got.GeneID(symbol)
		for s := 0; s < orig.Tumor.Samples(); s++ {
			if !orig.Tumor.Get(g, s) {
				continue
			}
			if ng < 0 {
				t.Fatalf("gene %s lost in round trip", symbol)
			}
			ns, ok := newCol[orig.TumorBarcodes[s]]
			if !ok || !got.Tumor.Get(ng, ns) {
				t.Fatalf("bit (%s, %s) lost in round trip", symbol, orig.TumorBarcodes[s])
			}
		}
	}
	// Total bit counts equal (no spurious extra bits).
	origBits, gotBits := 0, 0
	for g := 0; g < orig.Tumor.Genes(); g++ {
		origBits += orig.Tumor.RowPopCount(g)
	}
	for g := 0; g < got.Tumor.Genes(); g++ {
		gotBits += got.Tumor.RowPopCount(g)
	}
	if origBits != gotBits {
		t.Fatalf("tumor bits %d → %d after round trip", origBits, gotBits)
	}
	// Positional records for IDH1 survive re-ingestion.
	th := gene.HistogramPositions(got.Mutations, "IDH1", gene.Tumor)
	if pos, pct := th.PeakPosition(); pos != 132 || pct < 50 {
		t.Fatalf("IDH1 hotspot lost: peak %.1f%% at %d", pct, pos)
	}
}

func TestFromMAFRejectsGarbage(t *testing.T) {
	good := bytes.NewBufferString("Hugo_Symbol\tTumor_Sample_Barcode\nA\tT1\n")
	bad := bytes.NewBufferString("not a maf")
	if _, err := FromMAF("X", bad, good); err == nil {
		t.Fatal("FromMAF accepted garbage tumor stream")
	}
	good2 := bytes.NewBufferString("Hugo_Symbol\tTumor_Sample_Barcode\nA\tT1\n")
	bad2 := bytes.NewBufferString("")
	if _, err := FromMAF("X", good2, bad2); err == nil {
		t.Fatal("FromMAF accepted empty normal stream")
	}
}

func TestFromMAFDiscoveryEndToEnd(t *testing.T) {
	// A tiny hand-built MAF pair where the 2-hit combination {A, B} covers
	// both tumors and no normals.
	tumor := bytes.NewBufferString(
		"Hugo_Symbol\tTumor_Sample_Barcode\n" +
			"A\tT1\nB\tT1\nA\tT2\nB\tT2\nC\tT2\n")
	normal := bytes.NewBufferString(
		"Hugo_Symbol\tTumor_Sample_Barcode\n" +
			"A\tN1\nC\tN2\n")
	c, err := FromMAF("TOY", tumor, normal)
	if err != nil {
		t.Fatal(err)
	}
	if c.Spec.Genes != 3 || c.Nt() != 2 || c.Nn() != 2 {
		t.Fatalf("cohort shape %d genes, %d/%d samples", c.Spec.Genes, c.Nt(), c.Nn())
	}
	a, b := c.GeneID("A"), c.GeneID("B")
	if c.Tumor.AndPopCount2(a, b) != 2 {
		t.Fatal("combination {A,B} should cover both tumors")
	}
	if c.Normal.AndPopCount2(a, b) != 0 {
		t.Fatal("combination {A,B} should cover no normals")
	}
}
