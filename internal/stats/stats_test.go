package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean = %g", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Fatal("single-element stddev should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.138089935) > 1e-8 {
		t.Fatalf("StdDev = %g", got)
	}
}

func TestMinMax(t *testing.T) {
	if lo, hi := MinMax(nil); lo != 0 || hi != 0 {
		t.Fatal("empty MinMax should be (0,0)")
	}
	lo, hi := MinMax([]float64{3, -1, 7, 2})
	if lo != -1 || hi != 7 {
		t.Fatalf("MinMax = (%g, %g)", lo, hi)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect correlation = %g", got)
	}
	yn := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yn); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect anticorrelation = %g", got)
	}
	if got := Pearson(x, []float64{3, 3, 3, 3, 3}); got != 0 {
		t.Fatalf("constant series correlation = %g", got)
	}
	if Pearson(nil, nil) != 0 {
		t.Fatal("empty correlation should be 0")
	}
}

func TestPearsonPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Pearson([]float64{1}, []float64{1, 2})
}

func TestWilsonCIKnownValues(t *testing.T) {
	// 83/100: interval ≈ [74.5%, 89.0%].
	iv := WilsonCI(83, 100)
	if math.Abs(iv.Point-0.83) > 1e-12 {
		t.Fatalf("point = %g", iv.Point)
	}
	if math.Abs(iv.Lo-0.7449) > 0.005 || math.Abs(iv.Hi-0.8901) > 0.005 {
		t.Fatalf("CI = [%.4f, %.4f], want ≈[0.745, 0.890]", iv.Lo, iv.Hi)
	}
	// Degenerate cases stay in [0, 1].
	if iv := WilsonCI(0, 10); iv.Lo != 0 || iv.Hi <= 0 {
		t.Fatalf("WilsonCI(0,10) = %+v", iv)
	}
	if iv := WilsonCI(10, 10); iv.Hi != 1 || iv.Lo >= 1 {
		t.Fatalf("WilsonCI(10,10) = %+v", iv)
	}
	if iv := WilsonCI(0, 0); iv.Lo != 0 || iv.Hi != 1 {
		t.Fatalf("WilsonCI(0,0) = %+v", iv)
	}
}

func TestWilsonCIProperties(t *testing.T) {
	f := func(rawK, rawN uint16) bool {
		n := int(rawN%500) + 1
		k := int(rawK) % (n + 1)
		iv := WilsonCI(k, n)
		return iv.Lo >= 0 && iv.Hi <= 1 && iv.Lo <= iv.Point && iv.Point <= iv.Hi
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestWilsonCIWidthShrinksWithN(t *testing.T) {
	small := WilsonCI(8, 10)
	large := WilsonCI(800, 1000)
	if large.Hi-large.Lo >= small.Hi-small.Lo {
		t.Fatal("CI width should shrink with sample size")
	}
}

func TestWilsonCIPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for k > n")
		}
	}()
	WilsonCI(5, 3)
}

func TestPercent(t *testing.T) {
	if got := Percent(0.832); got != "83.2%" {
		t.Fatalf("Percent = %q", got)
	}
}
