// Package stats provides the small statistical toolkit the evaluation
// needs: summary statistics, binomial confidence intervals for the
// classifier's sensitivity/specificity error bars (Fig. 9), and the
// correlation used to assert the utilization/DRAM-throughput relationship
// of Fig. 6.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (n−1 denominator), or 0 for
// fewer than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMax returns the extrema, or (0, 0) for an empty slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Pearson returns the correlation coefficient of two equal-length series.
// It panics on mismatched lengths and returns 0 when either series is
// constant.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) {
		panic(fmt.Sprintf("stats: Pearson length mismatch %d vs %d", len(x), len(y)))
	}
	if len(x) == 0 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Interval is a proportion with its confidence bounds, all in [0, 1].
type Interval struct {
	Point             float64
	Lo, Hi            float64
	Level             float64 // e.g. 0.95
	Successes, Trials int
}

// WilsonCI returns the Wilson score interval for k successes in n trials at
// the 95% level — the error bars of Fig. 9. For n = 0 it returns the full
// [0, 1] interval.
func WilsonCI(k, n int) Interval {
	if k < 0 || n < 0 || k > n {
		panic(fmt.Sprintf("stats: WilsonCI(%d, %d) invalid", k, n))
	}
	iv := Interval{Level: 0.95, Successes: k, Trials: n}
	if n == 0 {
		iv.Hi = 1
		return iv
	}
	const z = 1.959963984540054 // 97.5th percentile of the standard normal
	p := float64(k) / float64(n)
	iv.Point = p
	nf := float64(n)
	denom := 1 + z*z/nf
	center := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	iv.Lo = math.Max(0, center-half)
	iv.Hi = math.Min(1, center+half)
	// Guard the floating-point edges at k = 0 and k = n, where the
	// analytic bound coincides with the point estimate.
	iv.Lo = math.Min(iv.Lo, p)
	iv.Hi = math.Max(iv.Hi, p)
	return iv
}

// Percent formats a proportion as a percentage string, e.g. "83.2%".
func Percent(p float64) string { return fmt.Sprintf("%.1f%%", 100*p) }
