package cluster

import (
	"testing"

	"repro/internal/cover"
	"repro/internal/dataset"
)

// TestKernelizedDiscoverMatchesCoverRun: the distributed pipeline over
// the gene-axis kernel finds the identical greedy cover as the plain
// single-machine engine — winners remapped to original gene ids, and the
// kernel's dropped combinations credited to Pruned so each step still
// accounts the full λ-domain.
func TestKernelizedDiscoverMatchesCoverRun(t *testing.T) {
	spec := dataset.Spec{
		Code: "TST", Name: "test", Genes: 24, TumorSamples: 80, NormalSamples: 70,
		Hits: 3, PlantedCombos: 3, DriverMutProb: 0.95,
		TumorBackground: 0.02, NormalBackground: 0.005,
	}
	c, err := dataset.Generate(spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, hits := range []int{2, 3, 4} {
		plain := cover.Options{Hits: hits, Workers: 2}
		want, err := cover.Run(c.Tumor, c.Normal, plain)
		if err != nil {
			t.Fatal(err)
		}
		kopt := plain
		kopt.Kernelize = true
		for _, nodes := range []int{1, 3} {
			got, err := Discover(Summit(nodes), c.Tumor, c.Normal, kopt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Steps) != len(want.Steps) {
				t.Fatalf("hits=%d nodes=%d: %d steps, want %d",
					hits, nodes, len(got.Steps), len(want.Steps))
			}
			for i := range want.Steps {
				if got.Steps[i].Combo != want.Steps[i].Combo {
					t.Fatalf("hits=%d nodes=%d step %d: %+v != %+v",
						hits, nodes, i, got.Steps[i].Combo, want.Steps[i].Combo)
				}
				if got.Steps[i].NewlyCovered != want.Steps[i].NewlyCovered {
					t.Fatalf("hits=%d nodes=%d step %d: cover counts differ", hits, nodes, i)
				}
				gotScan := got.Steps[i].Evaluated + got.Steps[i].Pruned
				wantScan := want.Steps[i].Evaluated + want.Steps[i].Pruned
				if gotScan != wantScan {
					t.Fatalf("hits=%d nodes=%d step %d: scanned %d, want %d",
						hits, nodes, i, gotScan, wantScan)
				}
			}
			if got.Covered != want.Covered || got.Uncoverable != want.Uncoverable {
				t.Fatalf("hits=%d nodes=%d: totals differ", hits, nodes)
			}
		}
	}
}

// TestWorkloadKernelGenes pins the KernelGenes pricing axis: the curve
// shrinks with the kernel, validation bounds the field, and 0 keeps the
// exhaustive axis.
func TestWorkloadKernelGenes(t *testing.T) {
	w := BRCA4Hit(cover.Scheme3x1)
	full, err := w.curve()
	if err != nil {
		t.Fatal(err)
	}
	w.KernelGenes = w.Genes / 2
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	reduced, err := w.curve()
	if err != nil {
		t.Fatal(err)
	}
	if reduced.TotalWork() >= full.TotalWork() {
		t.Fatalf("kernelized curve work %d not below exhaustive %d",
			reduced.TotalWork(), full.TotalWork())
	}
	if w.spanCap() >= float64(w.Genes) {
		t.Fatalf("span cap %.0f not reduced below G=%d", w.spanCap(), w.Genes)
	}

	w.KernelGenes = w.Genes + 1
	if err := w.Validate(); err == nil {
		t.Fatal("KernelGenes > Genes accepted")
	}
	w.KernelGenes = 2
	if err := w.Validate(); err == nil {
		t.Fatal("KernelGenes below the 4-hit floor accepted")
	}
	w.KernelGenes = 0
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
}
