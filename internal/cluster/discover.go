package cluster

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/cover"
	"repro/internal/gpusim"
	"repro/internal/kernelize"
	"repro/internal/mpisim"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// DiscoverResult is the outcome of a distributed discovery run.
type DiscoverResult struct {
	// Steps lists the chosen combinations in greedy order with their
	// newly-covered counts.
	Steps []cover.Step
	// Covered is the total number of tumor samples covered.
	Covered int
	// Uncoverable is the count of tumor samples no combination covers.
	Uncoverable int
	// VirtualSeconds is the modeled job time under the virtual clock.
	VirtualSeconds float64
	// PruningRatio is the measured fraction of the scanned combination
	// space that bound-and-prune skipped: Pruned / (Evaluated + Pruned)
	// over the whole run, every enumeration pass included. Zero when
	// pruning is disabled (or never fired). The virtual clock does NOT
	// apply this discount — the device model prices the sched curve's
	// full combination count, an upper bound; see Workload.PruneRatio for
	// the opt-in pricing discount.
	PruningRatio float64
	// Ranks is the per-rank compute/communication ledger.
	Ranks []RankReport
	// Recovery reports fault-injection and recovery accounting; nil for
	// fault-free runs (see DiscoverFaults).
	Recovery *Recovery
}

// discoverPerNode builds the hierarchical λ-domain schedule for a machine
// of nodes ranks × gpn GPUs: ranks split the domain, then each rank splits
// its share across its GPUs (Fig. 1). Under equi-distance both levels
// split by thread count; otherwise both levels split equi-area.
func discoverPerNode(curve sched.Curve, scheduler cover.Scheduler, nodes, gpn int) ([][]sched.Partition, error) {
	if scheduler == cover.EquiDistance {
		nodeParts, err := sched.EquiDistance(curve, nodes)
		if err != nil {
			return nil, err
		}
		var perNode [][]sched.Partition
		for _, np := range nodeParts {
			sub, err := sched.EquiDistance(sched.NewFlat(np.Size()), gpn)
			if err != nil {
				return nil, err
			}
			var shifted []sched.Partition
			for _, p := range sub {
				shifted = append(shifted, sched.Partition{Lo: np.Lo + p.Lo, Hi: np.Lo + p.Hi})
			}
			perNode = append(perNode, shifted)
		}
		return perNode, nil
	}
	tl, err := sched.NewTwoLevel(curve, nodes, gpn)
	if err != nil {
		return nil, err
	}
	return tl.PerNode, nil
}

// Discover runs the full greedy cover distributed across the simulated
// cluster: each MPI rank executes the real kernels over its GPUs' λ
// partitions, per-rank winners are reduced to rank 0 and broadcast, and
// every rank updates its active-sample mask identically. The discovered
// cover is bit-for-bit the one cover.Run finds on a single machine; the
// virtual clock prices each rank's GPU work with the device model.
//
// Every rank holds the full input matrices (as on Summit, where the
// compressed inputs are small); only the 20-byte winners cross the fabric.
func Discover(spec Spec, tumor, normal *bitmat.Matrix, opt cover.Options) (*DiscoverResult, error) {
	return DiscoverCtx(context.Background(), spec, tumor, normal, opt)
}

// DiscoverCtx is Discover under a caller-supplied context. Every rank
// checks the context at each iteration and each per-GPU scan observes it
// between partitions (cover.FindBestRangeCtx), so a cancelled campaign
// stops within one partition of kernel work instead of finishing the
// multi-iteration cover.
func DiscoverCtx(ctx context.Context, spec Spec, tumor, normal *bitmat.Matrix, opt cover.Options) (*DiscoverResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if tumor.Genes() != normal.Genes() {
		return nil, fmt.Errorf("cluster: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if tumor.Samples() == 0 {
		return nil, fmt.Errorf("cluster: no tumor samples")
	}
	if opt.BitSplice {
		return nil, fmt.Errorf("cluster: Discover uses mask-based exclusion; disable BitSplice")
	}

	// Resolve scheme/hits defaults through a FindBestRange dry run.
	if _, _, err := cover.FindBestRange(tumor, normal, nil, opt, 0, 0); err != nil {
		return nil, err
	}

	// Under Kernelize the ranks scan a gene-axis reduction (dominated-gene
	// elimination only — the sample axis is untouched, so the active masks
	// and exclusion vectors keep indexing original columns and the scores
	// stay exact without weights). Every rank derives the same kernel from
	// the same matrices; winners are remapped to original gene ids before
	// the exclusion, and the dropped genes' combinations are credited to
	// Pruned so Evaluated+Pruned still tallies C(G, h) per pass.
	scanT, scanN := tumor, normal
	var kern *kernelize.Kernel
	var staticDrop uint64
	if opt.Kernelize {
		var kerr error
		kern, kerr = kernelize.ReduceGenes(tumor, normal, opt.Hits)
		if kerr != nil {
			return nil, kerr
		}
		scanT, scanN = kern.Tumor, kern.Normal
		full, ok := combinat.Binomial(uint64(tumor.Genes()), uint64(opt.Hits))
		if !ok {
			return nil, fmt.Errorf("cluster: domain C(%d, %d) overflows uint64",
				tumor.Genes(), opt.Hits)
		}
		kd, ok := combinat.Binomial(uint64(scanT.Genes()), uint64(opt.Hits))
		if !ok {
			return nil, fmt.Errorf("cluster: kernel domain C(%d, %d) overflows uint64",
				scanT.Genes(), opt.Hits)
		}
		staticDrop = full - kd
	}

	w := Workload{
		Genes:         tumor.Genes(),
		TumorSamples:  tumor.Samples(),
		NormalSamples: normal.Samples(),
		Scheme:        opt.Scheme,
		Scheduler:     opt.Scheduler,
		Iterations:    1,
	}
	if kern != nil {
		w.KernelGenes = scanT.Genes()
	}
	if w.Scheme == cover.SchemeAuto {
		switch opt.Hits {
		case 2:
			w.Scheme = cover.SchemePair
		case 3:
			w.Scheme = cover.Scheme2x1
		default:
			w.Scheme = cover.Scheme3x1
		}
	}
	curve, err := w.curve()
	if err != nil {
		return nil, err
	}
	// Hierarchical schedule, as on the real machine.
	perNode, err := discoverPerNode(curve, opt.Scheduler, spec.Nodes, spec.GPUsPerNode)
	if err != nil {
		return nil, err
	}
	rowWords := w.words(tumor.Samples())
	prefetch := w.prefetchRows()
	irr := w.irregularity()
	spanCap := w.spanCap()

	res := &DiscoverResult{}
	var mu sync.Mutex // guards res writes from rank 0
	var grand cover.Counts
	sumCounts := func(a, b any) any {
		x, y := a.(cover.Counts), b.(cover.Counts)
		return cover.Counts{Evaluated: x.Evaluated + y.Evaluated, Pruned: x.Pruned + y.Pruned}
	}

	world := mpisim.NewWorld(spec.Nodes, spec.Comm)
	err = world.Run(func(r *mpisim.Rank) error {
		active := bitmat.AllOnes(tumor.Samples())
		buf := make([]uint64, tumor.Words())
		for iter := 0; opt.MaxIterations == 0 || iter < opt.MaxIterations; iter++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if active.PopCount() == 0 {
				break
			}
			// Each of this rank's GPUs evaluates its partition.
			local := reduce.None
			var counts cover.Counts
			busiest := 0.0
			for d := 0; d < spec.GPUsPerNode; d++ {
				g := r.ID()*spec.GPUsPerNode + d
				part := perNode[r.ID()][d]
				best, n, err := cover.FindBestRangeCtx(ctx, scanT, scanN, active, opt, part.Lo, part.Hi)
				if err != nil {
					return err
				}
				if best.Better(local) {
					local = best
				}
				counts.Evaluated += n.Evaluated
				counts.Pruned += n.Pruned
				m := spec.Device.Simulate(gpusim.Job{
					Threads:      part.Size(),
					Combos:       curve.PrefixWork(part.Hi) - curve.PrefixWork(part.Lo),
					RowWords:     rowWords,
					PrefetchRows: prefetch,
					Irregularity: irr,
					SpanCap:      spanCap,
					DeviceIndex:  g,
				})
				if m.BusySeconds > busiest {
					busiest = m.BusySeconds
				}
			}
			r.Compute(busiest + spec.IterOverheadSec)

			folded := r.Reduce(local, reduce.BytesPerRecord, combineCombo)
			winner := r.Bcast(folded, reduce.BytesPerRecord).(reduce.Combo)
			// The work tally is a Counts pair now — 16 bytes on the wire
			// instead of the old 8-byte evaluated sum.
			evalSum := r.Reduce(counts, 2*8, sumCounts)
			total := r.Bcast(evalSum, 2*8).(cover.Counts)
			// The kernel's dropped genes are pruned work on every pass.
			total.Pruned += staticDrop
			if r.ID() == 0 {
				mu.Lock()
				grand.Evaluated += total.Evaluated
				grand.Pruned += total.Pruned
				mu.Unlock()
			}

			if winner == reduce.None {
				break
			}
			if kern != nil {
				// Remap to original gene ids before the exclusion — every
				// rank applies the same deterministic map, so the masks
				// stay identical across the world.
				winner = kern.RemapCombo(winner)
			}
			// Every rank applies the identical exclusion.
			tumor.ComboVec(buf, winner.GeneIDs()...)
			cov := bitmat.NewVec(tumor.Samples())
			copy(cov.Words(), buf)
			cov.And(active)
			newly := cov.PopCount()
			if newly == 0 {
				if r.ID() == 0 {
					res.Uncoverable = active.PopCount()
				}
				break
			}
			active.AndNot(cov)
			if r.ID() == 0 {
				mu.Lock()
				res.Steps = append(res.Steps, cover.Step{
					Combo:        winner,
					NewlyCovered: newly,
					ActiveAfter:  active.PopCount(),
					Evaluated:    total.Evaluated,
					Pruned:       total.Pruned,
				})
				res.Covered += newly
				mu.Unlock()
			}
		}
		if r.ID() == 0 && res.Uncoverable == 0 {
			res.Uncoverable = active.PopCount()
			if opt.MaxIterations > 0 && len(res.Steps) == opt.MaxIterations {
				res.Uncoverable = 0
			}
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.VirtualSeconds = spec.StartupSec + world.MaxClock()
	if scanned := grand.Scanned(); scanned > 0 {
		res.PruningRatio = float64(grand.Pruned) / float64(scanned)
	}
	for n := 0; n < spec.Nodes; n++ {
		res.Ranks = append(res.Ranks, RankReport{
			Rank:       n,
			ComputeSec: world.ComputeTime(n),
			CommSec:    world.CommTime(n),
			WaitSec:    world.WaitTime(n),
		})
	}
	return res, nil
}
