package cluster

import (
	"math"
	"testing"

	"repro/internal/cover"
	"repro/internal/dataset"
)

func TestSpecValidate(t *testing.T) {
	if err := Summit(100).Validate(); err != nil {
		t.Fatalf("Summit spec invalid: %v", err)
	}
	bad := []func(*Spec){
		func(s *Spec) { s.Nodes = 0 },
		func(s *Spec) { s.GPUsPerNode = 0 },
		func(s *Spec) { s.IterOverheadSec = -1 },
		func(s *Spec) { s.Device.SMs = 0 },
	}
	for i, mutate := range bad {
		s := Summit(10)
		mutate(&s)
		if s.Validate() == nil {
			t.Errorf("case %d: Validate accepted bad spec", i)
		}
	}
	if Summit(100).GPUs() != 600 {
		t.Fatal("100 Summit nodes must expose 600 GPUs")
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := BRCA4Hit(cover.Scheme3x1).Validate(); err != nil {
		t.Fatalf("BRCA workload invalid: %v", err)
	}
	if err := ACC4Hit(cover.Scheme2x2).Validate(); err != nil {
		t.Fatalf("ACC workload invalid: %v", err)
	}
	bad := []func(*Workload){
		func(w *Workload) { w.Genes = 2 },
		func(w *Workload) { w.TumorSamples = 0 },
		func(w *Workload) { w.Iterations = 0 },
		func(w *Workload) { w.SpliceShrink = 1.0 },
		func(w *Workload) { w.Scheme = cover.SchemeAuto },
	}
	for i, mutate := range bad {
		w := BRCA4Hit(cover.Scheme3x1)
		mutate(&w)
		if w.Validate() == nil {
			t.Errorf("case %d: Validate accepted bad workload", i)
		}
	}
}

func TestSimulateSmall(t *testing.T) {
	rep, err := Simulate(Summit(4), BRCA4Hit(cover.Scheme3x1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RuntimeSec <= 0 {
		t.Fatal("non-positive runtime")
	}
	if len(rep.GPUMetrics) != 24 || len(rep.Utilization) != 24 {
		t.Fatalf("expected 24 GPU records, got %d", len(rep.GPUMetrics))
	}
	if len(rep.Ranks) != 4 {
		t.Fatalf("expected 4 rank reports, got %d", len(rep.Ranks))
	}
	// Exactly one GPU defines the critical path.
	sawFull := false
	for _, u := range rep.Utilization {
		if u < 0 || u > 1 {
			t.Fatalf("utilization %g out of range", u)
		}
		if u == 1 {
			sawFull = true
		}
	}
	if !sawFull {
		t.Fatal("no GPU at 100% utilization")
	}
	for _, r := range rep.Ranks {
		if r.ComputeSec <= 0 {
			t.Fatalf("rank %d has no compute time", r.Rank)
		}
	}
}

func TestSimulateDeterministic(t *testing.T) {
	a, err := Simulate(Summit(3), ACC4Hit(cover.Scheme3x1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(Summit(3), ACC4Hit(cover.Scheme3x1))
	if err != nil {
		t.Fatal(err)
	}
	if a.RuntimeSec != b.RuntimeSec {
		t.Fatalf("simulation not deterministic: %g vs %g", a.RuntimeSec, b.RuntimeSec)
	}
}

func TestStrongScalingPaperBands(t *testing.T) {
	// Fig. 4(a): BRCA 4-hit, 3x1 scheme, 100→1000 nodes. The paper reports
	// 80.96–97.96% per-point efficiency, 84.18% at 1000 nodes, and a
	// 90.14% average over 200–1000 nodes.
	pts, err := StrongScaling(BRCA4Hit(cover.Scheme3x1),
		[]int{100, 200, 300, 400, 500, 600, 700, 800, 900, 1000})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].Efficiency != 1 {
		t.Fatal("baseline efficiency must be 1")
	}
	sum := 0.0
	for i, p := range pts {
		if i == 0 {
			continue
		}
		if p.Efficiency >= pts[i-1].Efficiency {
			t.Errorf("efficiency not monotone at %d nodes", p.Nodes)
		}
		if p.Efficiency < 0.78 || p.Efficiency > 0.99 {
			t.Errorf("N=%d: efficiency %.3f outside the paper band [0.80, 0.98]",
				p.Nodes, p.Efficiency)
		}
		if p.RuntimeSec >= pts[i-1].RuntimeSec {
			t.Errorf("runtime not decreasing at %d nodes", p.Nodes)
		}
		sum += p.Efficiency
	}
	avg := sum / float64(len(pts)-1)
	if math.Abs(avg-0.9014) > 0.03 {
		t.Errorf("average efficiency %.4f; paper reports 0.9014", avg)
	}
	last := pts[len(pts)-1].Efficiency
	if math.Abs(last-0.8418) > 0.03 {
		t.Errorf("1000-node efficiency %.4f; paper reports 0.8418", last)
	}
}

func TestWeakScalingPaperBands(t *testing.T) {
	// Fig. 4(b): first-iteration weak scaling, 100→500 nodes; the paper
	// reports a 94.6% average over 200–500 nodes.
	w := BRCA4Hit(cover.Scheme3x1)
	pts, err := WeakScaling(w, []int{100, 200, 300, 400, 500})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i, p := range pts {
		if i == 0 {
			if p.Efficiency != 1 {
				t.Fatal("baseline weak efficiency must be 1")
			}
			continue
		}
		if p.Efficiency > 1.0001 {
			t.Errorf("N=%d: weak efficiency %.3f > 1", p.Nodes, p.Efficiency)
		}
		sum += p.Efficiency
	}
	avg := sum / float64(len(pts)-1)
	if math.Abs(avg-0.946) > 0.04 {
		t.Errorf("average weak efficiency %.4f; paper reports 0.946", avg)
	}
}

func TestEquiAreaBeatsEquiDistanceRuntime(t *testing.T) {
	// Sec. IV-B: on the 2x2 scheme at 100 nodes the EA scheduler ran BRCA
	// in 4607 s vs 13943 s under ED — a ≈3× speedup. The model should show
	// a multiple-fold gap in the same direction.
	w := BRCA4Hit(cover.Scheme2x2)
	ea, err := Simulate(Summit(100), w)
	if err != nil {
		t.Fatal(err)
	}
	w.Scheduler = cover.EquiDistance
	ed, err := Simulate(Summit(100), w)
	if err != nil {
		t.Fatal(err)
	}
	ratio := ed.RuntimeSec / ea.RuntimeSec
	if ratio < 2 || ratio > 10 {
		t.Errorf("ED/EA runtime ratio %.2f; paper reports ≈3", ratio)
	}
}

func TestSchemeUtilizationShapes(t *testing.T) {
	// Fig. 6 vs Fig. 7: the 2x2 scheme shows a broad utilization decline
	// across GPUs; the 3x1 scheme stays balanced.
	spread := func(scheme cover.Scheme, w Workload) float64 {
		rep, err := Simulate(Summit(100), w)
		if err != nil {
			t.Fatal(err)
		}
		min := 2.0
		for _, u := range rep.Utilization {
			if u < min {
				min = u
			}
		}
		return 1 - min // utilization range
	}
	u2x2 := spread(cover.Scheme2x2, ACC4Hit(cover.Scheme2x2))
	u3x1 := spread(cover.Scheme3x1, BRCA4Hit(cover.Scheme3x1))
	if u2x2 < 0.3 {
		t.Errorf("2x2 utilization range %.3f — expected a broad decline", u2x2)
	}
	if u3x1 > 0.35 {
		t.Errorf("3x1 utilization range %.3f — expected a balanced profile", u3x1)
	}
	if u3x1 >= u2x2 {
		t.Errorf("3x1 range %.3f not tighter than 2x2 range %.3f", u3x1, u2x2)
	}
}

func TestFig6MemoryComputeTransition(t *testing.T) {
	// Fig. 6: under the 2x2 scheme, early GPUs are memory bound and late
	// GPUs compute bound, with DRAM throughput anticorrelated with busy
	// time in between.
	rep, err := Simulate(Summit(100), ACC4Hit(cover.Scheme2x2))
	if err != nil {
		t.Fatal(err)
	}
	first := rep.GPUMetrics[0]
	last := rep.GPUMetrics[len(rep.GPUMetrics)-1]
	if !first.MemoryBound {
		t.Error("first GPU should be memory bound")
	}
	// Toward the end of the GPU range the profile transitions toward
	// compute bound: smaller effective spans, higher achieved DRAM
	// throughput, and a stall mix shifting from memory to execution
	// dependency.
	if last.Spread >= first.Spread {
		t.Error("late GPUs should have smaller inner-loop spans")
	}
	if last.DRAMThroughput <= first.DRAMThroughput {
		t.Error("late GPUs should achieve higher DRAM throughput")
	}
	if last.StallExecDependency <= first.StallExecDependency {
		t.Error("late GPUs should skew toward execution-dependency stalls")
	}
	if last.StallMemDependency+last.StallMemThrottle >=
		first.StallMemDependency+first.StallMemThrottle {
		t.Error("late GPUs should stall less on memory")
	}
}

func TestFig8CommunicationHidden(t *testing.T) {
	// Fig. 8: with per-rank 20-byte reductions, message-passing overhead
	// is hidden by compute imbalance — comm is a vanishing fraction.
	rep, err := Simulate(Summit(64), BRCA4Hit(cover.Scheme3x1))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rep.Ranks {
		if r.CommSec > 0.05*r.ComputeSec {
			t.Fatalf("rank %d comm %.3fs vs compute %.1fs — comm should be hidden",
				r.Rank, r.CommSec, r.ComputeSec)
		}
	}
}

func TestSingleGPUSpeedup(t *testing.T) {
	// Sec. I: ≈7192× speedup on 6000 GPUs vs one GPU, and a single-GPU
	// 4-hit runtime of "over 40 days". The model should reproduce the
	// days-scale single-GPU estimate and a >3000× speedup.
	w := BRCA4Hit(cover.Scheme3x1)
	single, err := SingleGPUSeconds(Summit(1), w)
	if err != nil {
		t.Fatal(err)
	}
	days := single / 86400
	if days < 40 || days > 90 {
		t.Errorf("single-GPU 4-hit estimate %.1f days; paper says over 40", days)
	}
	pts, err := StrongScaling(w, []int{100, 1000})
	if err != nil {
		t.Fatal(err)
	}
	speedup := single / pts[1].RuntimeSec
	if speedup < 3000 || speedup > 9000 {
		t.Errorf("6000-GPU speedup %.0f×; paper estimates 7192×", speedup)
	}
}

func TestScalingInputValidation(t *testing.T) {
	if _, err := StrongScaling(BRCA4Hit(cover.Scheme3x1), nil); err == nil {
		t.Error("StrongScaling accepted empty node list")
	}
	if _, err := WeakScaling(BRCA4Hit(cover.Scheme3x1), nil); err == nil {
		t.Error("WeakScaling accepted empty node list")
	}
	bad := BRCA4Hit(cover.Scheme3x1)
	bad.Iterations = 0
	if _, err := Simulate(Summit(2), bad); err == nil {
		t.Error("Simulate accepted bad workload")
	}
	if _, err := Simulate(Spec{}, BRCA4Hit(cover.Scheme3x1)); err == nil {
		t.Error("Simulate accepted bad spec")
	}
	if _, err := SingleGPUSeconds(Summit(1), bad); err == nil {
		t.Error("SingleGPUSeconds accepted bad workload")
	}
}

func TestDiscoverMatchesCoverRun(t *testing.T) {
	// The distributed pipeline must find the identical greedy cover as the
	// single-machine engine, for multiple hit counts and node counts.
	spec := dataset.Spec{
		Code: "TST", Name: "test", Genes: 24, TumorSamples: 80, NormalSamples: 70,
		Hits: 3, PlantedCombos: 3, DriverMutProb: 0.95,
		TumorBackground: 0.02, NormalBackground: 0.005,
	}
	spec.Hits = 3
	c, err := dataset.Generate(spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	for _, hits := range []int{2, 3, 4} {
		opt := cover.Options{Hits: hits, Workers: 2}
		want, err := cover.Run(c.Tumor, c.Normal, opt)
		if err != nil {
			t.Fatal(err)
		}
		for _, nodes := range []int{1, 3, 5} {
			got, err := Discover(Summit(nodes), c.Tumor, c.Normal, opt)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Steps) != len(want.Steps) {
				t.Fatalf("hits=%d nodes=%d: %d steps, want %d",
					hits, nodes, len(got.Steps), len(want.Steps))
			}
			for i := range want.Steps {
				if got.Steps[i].Combo != want.Steps[i].Combo {
					t.Fatalf("hits=%d nodes=%d step %d: %+v != %+v",
						hits, nodes, i, got.Steps[i].Combo, want.Steps[i].Combo)
				}
				if got.Steps[i].NewlyCovered != want.Steps[i].NewlyCovered {
					t.Fatalf("hits=%d nodes=%d step %d: cover counts differ", hits, nodes, i)
				}
				// The Evaluated/Pruned split depends on the partitioning (and
				// worker timing); only the scanned total is deterministic.
				gotScan := got.Steps[i].Evaluated + got.Steps[i].Pruned
				wantScan := want.Steps[i].Evaluated + want.Steps[i].Pruned
				if gotScan != wantScan {
					t.Fatalf("hits=%d nodes=%d step %d: scanned %d, want %d",
						hits, nodes, i, gotScan, wantScan)
				}
			}
			if got.Covered != want.Covered || got.Uncoverable != want.Uncoverable {
				t.Fatalf("hits=%d nodes=%d: totals differ", hits, nodes)
			}
			if got.VirtualSeconds <= 0 {
				t.Fatal("no virtual time accounted")
			}
		}
	}
}

func TestDiscoverRejectsBadInput(t *testing.T) {
	spec := dataset.Spec{
		Code: "TST", Name: "t", Genes: 12, TumorSamples: 10, NormalSamples: 10,
		Hits: 2, PlantedCombos: 1, DriverMutProb: 0.9,
		TumorBackground: 0.05, NormalBackground: 0.01,
	}
	c, err := dataset.Generate(spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Discover(Summit(2), c.Tumor, c.Normal,
		cover.Options{Hits: 2, BitSplice: true}); err == nil {
		t.Error("Discover accepted BitSplice")
	}
	if _, err := Discover(Summit(2), c.Tumor, c.Normal,
		cover.Options{Hits: 9}); err == nil {
		t.Error("Discover accepted bad hit count")
	}
	if _, err := Discover(Spec{}, c.Tumor, c.Normal,
		cover.Options{Hits: 2}); err == nil {
		t.Error("Discover accepted bad spec")
	}
}

func TestDiscoverMaxIterations(t *testing.T) {
	spec := dataset.Spec{
		Code: "TST", Name: "t", Genes: 16, TumorSamples: 40, NormalSamples: 30,
		Hits: 2, PlantedCombos: 3, DriverMutProb: 0.95,
		TumorBackground: 0.05, NormalBackground: 0.01,
	}
	c, err := dataset.Generate(spec, 3)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Discover(Summit(2), c.Tumor, c.Normal,
		cover.Options{Hits: 2, MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Steps) != 1 {
		t.Fatalf("MaxIterations=1 but ran %d steps", len(got.Steps))
	}
}

func TestSimulateRejectedSchemes(t *testing.T) {
	// The 1x3 and 4x1 schemes are modelable: 1x3 must be catastrophically
	// slower (G threads cannot occupy 600 GPUs), 4x1 pays per-combination
	// prefetch.
	base := BRCA4Hit(cover.Scheme3x1)
	base.Iterations = 1
	base.SpliceShrink = 0
	run := func(s cover.Scheme) float64 {
		w := base
		w.Scheme = s
		rep, err := Simulate(Summit(100), w)
		if err != nil {
			t.Fatal(err)
		}
		return rep.RuntimeSec
	}
	t3x1 := run(cover.Scheme3x1)
	t1x3 := run(cover.Scheme1x3)
	t4x1 := run(cover.Scheme4x1)
	if t1x3 < 100*t3x1 {
		t.Errorf("1x3 (%.0fs) should be orders of magnitude slower than 3x1 (%.0fs)", t1x3, t3x1)
	}
	if t4x1 < 1.5*t3x1 {
		t.Errorf("4x1 (%.0fs) should pay a clear prefetch penalty over 3x1 (%.0fs)", t4x1, t3x1)
	}
}

func TestLatencyAwareImprovesBalance(t *testing.T) {
	// Sec. V strategy 4: cost-weighted partitioning must tighten the 2x2
	// utilization profile relative to plain equi-area.
	w := ACC4Hit(cover.Scheme2x2)
	plain, err := Simulate(Summit(100), w)
	if err != nil {
		t.Fatal(err)
	}
	w.LatencyAware = true
	aware, err := Simulate(Summit(100), w)
	if err != nil {
		t.Fatal(err)
	}
	rangeOf := func(u []float64) float64 {
		min := 2.0
		for _, v := range u {
			if v < min {
				min = v
			}
		}
		return 1 - min
	}
	if rangeOf(aware.Utilization) >= rangeOf(plain.Utilization) {
		t.Errorf("latency-aware range %.3f not tighter than plain %.3f",
			rangeOf(aware.Utilization), rangeOf(plain.Utilization))
	}
	if aware.RuntimeSec > plain.RuntimeSec*1.01 {
		t.Errorf("latency-aware runtime %.0f worse than plain %.0f",
			aware.RuntimeSec, plain.RuntimeSec)
	}
}

func TestSpanOfWorkInversions(t *testing.T) {
	// spanOfWork must invert each scheme's work-per-thread function.
	w := BRCA4Hit(cover.Scheme2x2)
	// 2x2: work = C(span, 2).
	for _, span := range []uint64{2, 10, 1000} {
		work := span * (span - 1) / 2
		got := w.spanOfWork(work)
		if got < float64(span)-1 || got > float64(span)+1 {
			t.Errorf("2x2 spanOfWork(C(%d,2)) = %.2f", span, got)
		}
	}
	w.Scheme = cover.Scheme1x3
	// 1x3: work = C(span, 3) ≈ span³/6.
	got := w.spanOfWork(161700) // C(100,3)
	if got < 97 || got > 103 {
		t.Errorf("1x3 spanOfWork(C(100,3)) = %.2f", got)
	}
	w.Scheme = cover.Scheme3x1
	if w.spanOfWork(42) != 42 {
		t.Error("3x1 spanOfWork should be identity")
	}
}

func TestWeakScalingLatencyAwarePath(t *testing.T) {
	w := ACC4Hit(cover.Scheme2x2)
	w.LatencyAware = true
	pts, err := WeakScaling(w, []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 || pts[0].Efficiency != 1 {
		t.Fatalf("weak scaling malformed: %+v", pts)
	}
}

func TestSimulatePairAnd2x1Schemes(t *testing.T) {
	// The 2-hit and 3-hit workloads are also modelable.
	for _, s := range []cover.Scheme{cover.SchemePair, cover.Scheme2x1} {
		w := BRCA4Hit(s)
		w.Iterations = 2
		rep, err := Simulate(Summit(4), w)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if rep.RuntimeSec <= 0 {
			t.Fatalf("%s: non-positive runtime", s)
		}
	}
}

func TestIterationTimelineShrinksUnderSplicing(t *testing.T) {
	w := BRCA4Hit(cover.Scheme3x1)
	rep, err := Simulate(Summit(4), w)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Iterations) != w.Iterations {
		t.Fatalf("timeline has %d entries, want %d", len(rep.Iterations), w.Iterations)
	}
	first, last := rep.Iterations[0], rep.Iterations[len(rep.Iterations)-1]
	if first.TumorRemaining != w.TumorSamples {
		t.Fatalf("first iteration sees %d tumors, want %d", first.TumorRemaining, w.TumorSamples)
	}
	if last.TumorRemaining >= first.TumorRemaining {
		t.Fatal("splicing should shrink the remaining tumor count")
	}
	if last.MaxBusySec >= first.MaxBusySec {
		t.Fatal("later iterations should be cheaper (fewer matrix words)")
	}
	if last.RowWords >= first.RowWords {
		t.Fatal("row words should shrink across iterations")
	}
}

func TestCampaignPanelStudy(t *testing.T) {
	rep, err := RunCampaign(Campaign{Nodes: 100}, dataset.FourHitCancers())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Jobs) != 11 {
		t.Fatalf("campaign priced %d jobs, want 11", len(rep.Jobs))
	}
	var sum float64
	var acc, brcaLike float64
	for _, j := range rep.Jobs {
		if j.RuntimeSec <= 0 || j.NodeHours <= 0 {
			t.Fatalf("%s: non-positive cost", j.Cancer)
		}
		sum += j.RuntimeSec
		if j.Cancer == "ACC" {
			acc = j.RuntimeSec
		}
		if j.Cancer == "LUAD" {
			brcaLike = j.RuntimeSec
		}
	}
	if rep.TotalSec != sum {
		t.Fatal("campaign total does not sum its jobs")
	}
	// The smallest cohort must be the cheapest job per combination pass;
	// with fewer samples AND fewer iterations ACC is strictly cheaper than
	// the large LUAD cohort.
	if acc >= brcaLike {
		t.Fatalf("ACC (%.0fs) should cost less than LUAD (%.0fs)", acc, brcaLike)
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := RunCampaign(Campaign{Nodes: 0}, dataset.FourHitCancers()); err == nil {
		t.Error("accepted zero nodes")
	}
	if _, err := RunCampaign(Campaign{Nodes: 10}, nil); err == nil {
		t.Error("accepted empty panel")
	}
}
