// Package cluster models a Summit-like machine — nodes of six V100-class
// GPUs driven by one MPI rank each (Fig. 1) — and runs the multi-hit
// pipeline on it in two modes:
//
//   - Simulate executes the performance model at paper scale: the real
//     schedulers cut the real workload curves into per-GPU jobs, gpusim
//     prices each job, and mpisim plays the rank-level reduction under the
//     virtual clock. This regenerates the scaling and profiling figures
//     (Fig. 4, 6, 7, 8 and the ED-vs-EA runtimes) without CUDA hardware.
//
//   - Discover executes the actual algorithm distributed across simulated
//     ranks at reduced scale: every rank runs the real kernels on its λ
//     partitions and the winning combination is reduced to rank 0 and
//     broadcast, iteration by iteration — functionally identical to
//     cover.Run, as the tests assert.
package cluster

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/bitmat"
	"repro/internal/combinat"
	"repro/internal/cover"
	"repro/internal/gpusim"
	"repro/internal/mpisim"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// Spec describes the machine.
type Spec struct {
	// Nodes is the node count; each node hosts one MPI rank.
	Nodes int
	// GPUsPerNode is 6 on Summit.
	GPUsPerNode int
	// Device is the per-GPU performance model.
	Device gpusim.DeviceSpec
	// Comm is the inter-node fabric cost model.
	Comm mpisim.Params
	// IterOverheadSec is the fixed per-iteration, per-rank cost: kernel
	// launches, device synchronization, schedule broadcast, host-device
	// staging.
	IterOverheadSec float64
	// StartupSec is the one-time job cost: MPI init, input distribution,
	// schedule computation.
	StartupSec float64
}

// Summit returns the machine model used throughout the reproduction.
func Summit(nodes int) Spec {
	return Spec{
		Nodes:           nodes,
		GPUsPerNode:     6,
		Device:          gpusim.V100(),
		Comm:            mpisim.Summit(),
		IterOverheadSec: 7.0,
		StartupSec:      60.0,
	}
}

// Validate reports the first problem with the spec.
func (s Spec) Validate() error {
	switch {
	case s.Nodes <= 0:
		return fmt.Errorf("cluster: Nodes must be positive, got %d", s.Nodes)
	case s.GPUsPerNode <= 0:
		return fmt.Errorf("cluster: GPUsPerNode must be positive, got %d", s.GPUsPerNode)
	case s.IterOverheadSec < 0 || s.StartupSec < 0:
		return fmt.Errorf("cluster: overheads must be non-negative")
	}
	return s.Device.Validate()
}

// GPUs returns the total device count.
func (s Spec) GPUs() int { return s.Nodes * s.GPUsPerNode }

// Workload describes one cancer-type run for the performance model.
type Workload struct {
	// Genes is G.
	Genes int
	// TumorSamples and NormalSamples size the matrix rows in words.
	TumorSamples  int
	NormalSamples int
	// Scheme is the parallelization scheme (2x2 or 3x1 for 4-hit).
	Scheme cover.Scheme
	// Scheduler selects EA (default) or ED partitioning.
	Scheduler cover.Scheduler
	// Iterations is the number of cover-loop iterations to model.
	Iterations int
	// SpliceShrink is the fraction of remaining tumor samples covered
	// (and spliced out) per iteration; 0 disables shrinking.
	SpliceShrink float64
	// LatencyAware switches the equi-area scheduler to the cost-weighted
	// variant that folds the device model's span-dependent memory penalty
	// into the partition targets — the paper's fourth future-work strategy
	// ("Incorporate memory latency into the scheduling algorithm", Sec. V).
	// Ignored when Scheduler is EquiDistance.
	LatencyAware bool
	// PruneRatio discounts each partition's combination count by the given
	// fraction before pricing, modeling the engine's bound-and-prune layer
	// (docs/PRUNING.md). The sched curve's count is an UPPER bound — it is
	// what an exhaustive scan would evaluate — and pruning only removes
	// work, so any value in [0, 1) keeps the model conservative-to-exact.
	// 0 (the default) prices the exhaustive upper bound. Measure a real
	// run's ratio with DiscoverResult.PruningRatio.
	PruneRatio float64
	// KernelGenes, when positive, is the gene count left after the
	// kernelization pass (docs/KERNELIZATION.md): the workload curve and
	// span cap are built over this reduced axis, pricing the enumeration
	// the kernelized engine actually runs. 0 means no kernelization —
	// price over Genes. Measure a real instance's shrink with
	// kernelize.Reduce, or estimate with simscale -kernelize.
	KernelGenes int
}

// BRCA4Hit returns the paper's principal scaling workload: 4-hit discovery
// on breast invasive carcinoma (G = 19411, 911 tumor / 852 normal samples).
func BRCA4Hit(scheme cover.Scheme) Workload {
	return Workload{
		Genes:         19411,
		TumorSamples:  911,
		NormalSamples: 852,
		Scheme:        scheme,
		Iterations:    12,
		SpliceShrink:  0.45,
	}
}

// ACC4Hit returns the smallest dataset's workload (Fig. 6).
func ACC4Hit(scheme cover.Scheme) Workload {
	return Workload{
		Genes:         18739,
		TumorSamples:  92,
		NormalSamples: 85,
		Scheme:        scheme,
		Iterations:    8,
		SpliceShrink:  0.45,
	}
}

// Validate reports the first problem with the workload.
func (w Workload) Validate() error {
	switch {
	case w.Genes < 4:
		return fmt.Errorf("cluster: Genes must be ≥ 4, got %d", w.Genes)
	case w.TumorSamples <= 0 || w.NormalSamples <= 0:
		return fmt.Errorf("cluster: sample counts must be positive")
	case w.Iterations <= 0:
		return fmt.Errorf("cluster: Iterations must be positive")
	case w.SpliceShrink < 0 || w.SpliceShrink >= 1:
		return fmt.Errorf("cluster: SpliceShrink must be in [0, 1)")
	case w.PruneRatio < 0 || w.PruneRatio >= 1:
		return fmt.Errorf("cluster: PruneRatio must be in [0, 1)")
	case w.KernelGenes < 0 || w.KernelGenes > w.Genes:
		return fmt.Errorf("cluster: KernelGenes must be in [0, Genes], got %d", w.KernelGenes)
	case w.KernelGenes > 0 && w.KernelGenes < 4:
		return fmt.Errorf("cluster: KernelGenes must be ≥ 4, got %d", w.KernelGenes)
	}
	switch w.Scheme {
	case cover.Scheme2x2, cover.Scheme3x1, cover.Scheme2x1, cover.SchemePair,
		cover.Scheme1x3, cover.Scheme4x1:
		return nil
	}
	return fmt.Errorf("cluster: unsupported scheme %s", w.Scheme)
}

// genesEff is the gene count the enumeration actually runs over: the
// kernelized axis when KernelGenes is set, G otherwise.
func (w Workload) genesEff() int {
	if w.KernelGenes > 0 {
		return w.KernelGenes
	}
	return w.Genes
}

// curve builds the workload curve for the scheme.
func (w Workload) curve() (sched.Curve, error) {
	g := uint64(w.genesEff())
	switch w.Scheme {
	case cover.SchemePair:
		return sched.NewFlat(combinat.PairCount(g)), nil
	case cover.Scheme2x1:
		return sched.NewTri2x1(g), nil
	case cover.Scheme2x2:
		return sched.NewTri2x2(g), nil
	case cover.Scheme3x1:
		return sched.NewTetra3x1(g), nil
	case cover.Scheme1x3:
		return sched.NewLin1x3(g), nil
	case cover.Scheme4x1:
		return sched.NewFlat(combinat.QuadCount(g)), nil
	}
	// Workloads arrive from job specs; an unknown scheme is bad input,
	// not a programmer error.
	return nil, fmt.Errorf("cluster: unsupported scheme %v", w.Scheme)
}

// prefetchRows returns the per-thread prefetch row count for the scheme.
func (w Workload) prefetchRows() int {
	switch w.Scheme {
	case cover.SchemePair:
		return 2
	case cover.Scheme2x1, cover.Scheme2x2:
		return 2
	case cover.Scheme3x1, cover.Scheme1x3:
		return 3
	case cover.Scheme4x1:
		// Nothing is loop-invariant: every combination folds all four
		// rows from scratch.
		return 4
	}
	return 0
}

// irregularity returns the scheme's memory-access irregularity for the
// device model: the 2x2 scheme's depth-2 inner loop scatters across rows,
// the 3x1 and 3-hit kernels stream a single sequential sweep.
func (w Workload) irregularity() float64 {
	switch w.Scheme {
	case cover.SchemePair:
		return 0
	case cover.Scheme2x1:
		return 0.6
	case cover.Scheme2x2:
		return 1.0
	case cover.Scheme3x1:
		return 0.12
	case cover.Scheme1x3:
		// Same sequential l-sweep in its innermost loop as 3x1.
		return 0.12
	case cover.Scheme4x1:
		return 0
	}
	return 0
}

// spanCap returns the maximum possible inner-loop span for the scheme,
// normalizing the device model's logarithmic memory penalty.
func (w Workload) spanCap() float64 {
	switch w.Scheme {
	case cover.Scheme2x1, cover.Scheme3x1, cover.Scheme1x3:
		return float64(w.genesEff())
	case cover.Scheme2x2:
		g := uint64(w.genesEff())
		return float64(combinat.Tri(g - 2))
	}
	return 1
}

// spanOfWork inverts the scheme's work-per-thread function to recover the
// thread's inner-loop row span from its work (w = span for the single-loop
// kernels, C(span, 2) for 2x2, C(span, 3) for 1x3).
func (w Workload) spanOfWork(work uint64) float64 {
	v := float64(work)
	switch w.Scheme {
	case cover.Scheme2x2:
		return (1 + math.Sqrt(1+8*v)) / 2
	case cover.Scheme1x3:
		return math.Cbrt(6 * v)
	default:
		return v
	}
}

// costModel prices one thread under the device's span penalty, for the
// latency-aware scheduler.
func (w Workload) costModel(d gpusim.DeviceSpec) sched.CostModel {
	irr := w.irregularity()
	spanCap := w.spanCap()
	return func(work uint64) float64 {
		if work == 0 {
			return 0
		}
		frac := math.Log1p(w.spanOfWork(work)) / math.Log1p(spanCap) * irr
		if frac > 1 {
			frac = 1
		}
		return float64(work) * (1 + d.MemPenaltyMax*frac)
	}
}

// partitions cuts the curve for the machine according to the workload's
// scheduler configuration.
func (w Workload) partitions(curve sched.Curve, spec Spec) ([]sched.Partition, error) {
	return w.partitionsN(curve, spec.Device, spec.GPUs())
}

// partitionsN cuts the curve for an arbitrary GPU count — the machine may
// be degraded below its nominal size after a rank failure (see faults.go).
func (w Workload) partitionsN(curve sched.Curve, d gpusim.DeviceSpec, gpus int) ([]sched.Partition, error) {
	switch {
	case w.Scheduler == cover.EquiDistance:
		return sched.EquiDistance(curve, gpus)
	case w.LatencyAware:
		return sched.EquiCost(curve, gpus, w.costModel(d))
	default:
		return sched.EquiArea(curve, gpus)
	}
}

// combosAfterPruning discounts an exhaustive combination count by the
// workload's modeled pruning ratio. The curve's count stays the pricing
// upper bound at the default ratio of 0.
func (w Workload) combosAfterPruning(combos uint64) uint64 {
	if w.PruneRatio <= 0 {
		return combos
	}
	return uint64(float64(combos) * (1 - w.PruneRatio))
}

// jobFor builds the device-model job for one partition. extraSlowdown is
// the fault injector's straggler inflation (0 when disabled).
func (w Workload) jobFor(curve sched.Curve, part sched.Partition, rowWords, device int, extraSlowdown float64) gpusim.Job {
	return gpusim.Job{
		Threads:       part.Size(),
		Combos:        w.combosAfterPruning(curve.PrefixWork(part.Hi) - curve.PrefixWork(part.Lo)),
		RowWords:      rowWords,
		PrefetchRows:  w.prefetchRows(),
		Irregularity:  w.irregularity(),
		SpanCap:       w.spanCap(),
		DeviceIndex:   device,
		ExtraSlowdown: extraSlowdown,
	}
}

// words returns the packed words per gene row across both matrices for the
// given remaining tumor sample count.
func (w Workload) words(tumorSamples int) int {
	return bitmat.WordsFor(tumorSamples) + bitmat.WordsFor(w.NormalSamples)
}

// RankReport is one MPI rank's virtual-time ledger (Fig. 8).
type RankReport struct {
	Rank       int
	ComputeSec float64
	// CommSec is message-passing time proper (sends plus wire time).
	CommSec float64
	// WaitSec is idle time blocked on slower peers — the imbalance that
	// "hides" the communication in Fig. 8.
	WaitSec float64
}

// IterationReport is one cover-loop iteration's modeled execution.
type IterationReport struct {
	// Iteration is the 0-based loop index.
	Iteration int
	// TumorRemaining is the uncovered tumor-sample count entering the
	// iteration (BitSplicing shrinks the matrices accordingly).
	TumorRemaining int
	// RowWords is the packed words per gene row this iteration streams.
	RowWords int
	// MaxBusySec is the slowest GPU's kernel time — the iteration's
	// critical path.
	MaxBusySec float64
	// CriticalGPU is the index of that GPU.
	CriticalGPU int
}

// Report is the outcome of one simulated run.
type Report struct {
	// Spec and Workload echo the configuration.
	Spec     Spec
	Workload Workload
	// RuntimeSec is the simulated job runtime including startup.
	RuntimeSec float64
	// GPUMetrics holds the first iteration's per-GPU model output, indexed
	// by global GPU id (Fig. 6/7 input).
	GPUMetrics []gpusim.Metrics
	// Utilization is each GPU's first-iteration busy time relative to the
	// slowest GPU.
	Utilization []float64
	// Ranks holds the per-rank compute/communication split.
	Ranks []RankReport
	// Iterations is the per-iteration timeline: BitSplicing makes later
	// iterations cheaper as covered samples leave the matrices.
	Iterations []IterationReport
	// Recovery reports the fault-injection and recovery accounting; nil for
	// fault-free runs (see SimulateFaults).
	Recovery *Recovery
	// PruningRatio echoes Workload.PruneRatio: the modeled fraction of the
	// sched curve's combination count discounted before pricing. The curve
	// is an upper bound on the engine's actual work once bound-and-prune is
	// on (docs/PRUNING.md); 0 means the exhaustive bound was priced.
	PruningRatio float64
}

// Simulate prices a full run of the workload on the machine.
func Simulate(spec Spec, w Workload) (*Report, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	gpus := spec.GPUs()
	rep := &Report{Spec: spec, Workload: w, PruningRatio: w.PruneRatio}

	// Per-iteration node compute times: nodes × iterations.
	nodeBusy := make([][]float64, w.Iterations)
	curve, err := w.curve()
	if err != nil {
		return nil, err
	}
	parts, err := w.partitions(curve, spec)
	if err != nil {
		return nil, err
	}

	tumorLeft := w.TumorSamples
	for iter := 0; iter < w.Iterations; iter++ {
		rowWords := w.words(tumorLeft)
		busy := make([]float64, gpus)
		if iter == 0 {
			rep.GPUMetrics = make([]gpusim.Metrics, gpus)
		}
		// Devices are independent; price them on all cores. Results land
		// in index-addressed slices, so the output stays deterministic.
		parallelFor(gpus, func(g int) {
			m := spec.Device.Simulate(w.jobFor(curve, parts[g], rowWords, g, 0))
			busy[g] = m.BusySeconds
			if iter == 0 {
				rep.GPUMetrics[g] = m
			}
		})
		if iter == 0 {
			rep.Utilization = gpusim.Utilization(busy)
		}
		nb := make([]float64, spec.Nodes)
		for n := 0; n < spec.Nodes; n++ {
			for d := 0; d < spec.GPUsPerNode; d++ {
				if b := busy[n*spec.GPUsPerNode+d]; b > nb[n] {
					nb[n] = b
				}
			}
		}
		nodeBusy[iter] = nb
		maxBusy, critical := 0.0, 0
		for g, bsec := range busy {
			if bsec > maxBusy {
				maxBusy, critical = bsec, g
			}
		}
		rep.Iterations = append(rep.Iterations, IterationReport{
			Iteration:      iter,
			TumorRemaining: tumorLeft,
			RowWords:       rowWords,
			MaxBusySec:     maxBusy,
			CriticalGPU:    critical,
		})
		if w.SpliceShrink > 0 {
			tumorLeft = int(float64(tumorLeft) * (1 - w.SpliceShrink))
			if tumorLeft < 1 {
				tumorLeft = 1
			}
		}
	}

	// Play the rank-level protocol under the virtual clock: compute, reduce
	// the per-rank 20-byte winner to rank 0, broadcast the exclusion set.
	world := mpisim.NewWorld(spec.Nodes, spec.Comm)
	err = world.Run(func(r *mpisim.Rank) error {
		for iter := 0; iter < w.Iterations; iter++ {
			r.Compute(nodeBusy[iter][r.ID()] + spec.IterOverheadSec)
			r.Reduce(reduce.None, reduce.BytesPerRecord, combineCombo)
			r.Bcast(reduce.None, reduce.BytesPerRecord)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep.RuntimeSec = spec.StartupSec + world.MaxClock()
	for n := 0; n < spec.Nodes; n++ {
		rep.Ranks = append(rep.Ranks, RankReport{
			Rank:       n,
			ComputeSec: world.ComputeTime(n),
			CommSec:    world.CommTime(n),
			WaitSec:    world.WaitTime(n),
		})
	}
	return rep, nil
}

// combineCombo is the Better-based max for mpisim reductions.
func combineCombo(a, b any) any {
	ca, cb := a.(reduce.Combo), b.(reduce.Combo)
	if cb.Better(ca) {
		return cb
	}
	return ca
}

// ScalingPoint is one node count's outcome in a scaling study.
type ScalingPoint struct {
	Nodes      int
	RuntimeSec float64
	// Efficiency is relative to the study's baseline (first point).
	Efficiency float64
}

// StrongScaling simulates the workload at each node count and reports
// strong-scaling efficiency relative to the first count:
// eff(N) = T(N₀)·N₀ / (T(N)·N) — Fig. 4(a).
func StrongScaling(w Workload, nodeCounts []int) ([]ScalingPoint, error) {
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("cluster: no node counts")
	}
	var out []ScalingPoint
	for _, n := range nodeCounts {
		rep, err := Simulate(Summit(n), w)
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{Nodes: n, RuntimeSec: rep.RuntimeSec})
	}
	base := out[0]
	for i := range out {
		out[i].Efficiency = base.RuntimeSec * float64(base.Nodes) /
			(out[i].RuntimeSec * float64(out[i].Nodes))
	}
	return out, nil
}

// WeakScaling fixes the per-GPU workload at the baseline node count's
// first-iteration share and grows the machine: every added GPU re-runs one
// of the baseline jobs, so ideal scaling would hold runtime constant —
// Fig. 4(b). Deviations come from jitter extremes over more devices and
// from the deeper reduction tree.
func WeakScaling(w Workload, nodeCounts []int) ([]ScalingPoint, error) {
	if len(nodeCounts) == 0 {
		return nil, fmt.Errorf("cluster: no node counts")
	}
	if err := w.Validate(); err != nil {
		return nil, err
	}
	baseSpec := Summit(nodeCounts[0])
	if err := baseSpec.Validate(); err != nil {
		return nil, err
	}
	baseGPUs := baseSpec.GPUs()
	curve, err := w.curve()
	if err != nil {
		return nil, err
	}
	parts, err := w.partitions(curve, baseSpec)
	if err != nil {
		return nil, err
	}
	rowWords := w.words(w.TumorSamples)
	prefetch := w.prefetchRows()
	irr := w.irregularity()
	cap := w.spanCap()

	var out []ScalingPoint
	for _, n := range nodeCounts {
		spec := Summit(n)
		gpus := spec.GPUs()
		busy := make([]float64, gpus)
		parallelFor(gpus, func(g int) {
			part := parts[g%baseGPUs]
			job := gpusim.Job{
				Threads:      part.Size(),
				Combos:       w.combosAfterPruning(curve.PrefixWork(part.Hi) - curve.PrefixWork(part.Lo)),
				RowWords:     rowWords,
				PrefetchRows: prefetch,
				Irregularity: irr,
				SpanCap:      cap,
				DeviceIndex:  g,
			}
			busy[g] = spec.Device.Simulate(job).BusySeconds
		})
		nodeBusy := make([]float64, spec.Nodes)
		for node := 0; node < spec.Nodes; node++ {
			for d := 0; d < spec.GPUsPerNode; d++ {
				if b := busy[node*spec.GPUsPerNode+d]; b > nodeBusy[node] {
					nodeBusy[node] = b
				}
			}
		}
		world := mpisim.NewWorld(spec.Nodes, spec.Comm)
		err := world.Run(func(r *mpisim.Rank) error {
			r.Compute(nodeBusy[r.ID()] + spec.IterOverheadSec)
			r.Reduce(reduce.None, reduce.BytesPerRecord, combineCombo)
			r.Bcast(reduce.None, reduce.BytesPerRecord)
			return nil
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{Nodes: n, RuntimeSec: world.MaxClock()})
	}
	base := out[0]
	for i := range out {
		out[i].Efficiency = base.RuntimeSec / out[i].RuntimeSec
	}
	return out, nil
}

// SingleGPUSeconds prices the whole workload on one device — the
// denominator of the paper's 7192× speedup estimate.
func SingleGPUSeconds(spec Spec, w Workload) (float64, error) {
	if err := spec.Validate(); err != nil {
		return 0, err
	}
	if err := w.Validate(); err != nil {
		return 0, err
	}
	curve, err := w.curve()
	if err != nil {
		return 0, err
	}
	total := 0.0
	tumorLeft := w.TumorSamples
	for iter := 0; iter < w.Iterations; iter++ {
		job := gpusim.Job{
			Threads:      curve.Threads(),
			Combos:       w.combosAfterPruning(curve.TotalWork()),
			RowWords:     w.words(tumorLeft),
			PrefetchRows: w.prefetchRows(),
			DeviceIndex:  0,
		}
		total += spec.Device.Simulate(job).BusySeconds + spec.IterOverheadSec
		if w.SpliceShrink > 0 {
			tumorLeft = int(float64(tumorLeft) * (1 - w.SpliceShrink))
			if tumorLeft < 1 {
				tumorLeft = 1
			}
		}
	}
	return total, nil
}

// parallelFor runs fn(0..n-1) across GOMAXPROCS goroutines.
func parallelFor(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
