package cluster

import (
	"reflect"
	"testing"

	"repro/internal/cover"
	"repro/internal/dataset"
)

// sameCover reports whether two step sequences describe the same
// discovered cover. The Evaluated/Pruned split is not compared directly —
// it depends on the domain partitioning and worker timing — only its
// deterministic sum (the scanned total), alongside every other field.
func sameCover(a, b []cover.Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Combo != y.Combo || x.NewlyCovered != y.NewlyCovered ||
			x.ActiveAfter != y.ActiveAfter ||
			x.Evaluated+x.Pruned != y.Evaluated+y.Pruned {
			return false
		}
	}
	return true
}

func TestFaultPlanValidation(t *testing.T) {
	cases := []FaultPlan{
		{MTBFSec: -1},
		{StragglerFrac: 1.5},
		{StragglerFrac: 0.1, StragglerFactor: 0.5},
		{CheckpointEvery: -1},
		{CheckpointCostSec: -1},
		{RescheduleSec: -1},
		{Policy: RecoveryPolicy(99)},
		{Failures: []RankFailure{{Rank: 8, AtSec: 1}}},
		{Failures: []RankFailure{{Rank: 0, AtSec: -1}}},
	}
	for i, p := range cases {
		if err := p.Validate(4); err == nil {
			t.Errorf("case %d: plan %+v validated", i, p)
		}
	}
	ok := FaultPlan{
		Seed: 7, MTBFSec: 3600, StragglerFrac: 0.05, StragglerFactor: 3,
		Policy: PolicyDegrade, CheckpointEvery: 2, CheckpointCostSec: 1,
		RescheduleSec: 5, Failures: []RankFailure{{Rank: 3, AtSec: 10}},
	}
	if err := ok.Validate(4); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

func TestSimulateFaultsEmptyPlanMatchesSimulate(t *testing.T) {
	// With nothing injected the fault path must be a pure pass-through:
	// same runtime, same ledgers, a zeroed Recovery section.
	spec := Summit(4)
	w := BRCA4Hit(cover.Scheme3x1)
	want, err := Simulate(spec, w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateFaults(spec, w, FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if got.RuntimeSec != want.RuntimeSec {
		t.Fatalf("empty plan changed runtime: %g != %g", got.RuntimeSec, want.RuntimeSec)
	}
	if !reflect.DeepEqual(got.Ranks, want.Ranks) {
		t.Fatal("empty plan changed rank ledgers")
	}
	if !reflect.DeepEqual(got.Utilization, want.Utilization) {
		t.Fatal("empty plan changed utilization")
	}
	rec := got.Recovery
	if rec == nil {
		t.Fatal("fault run missing Recovery section")
	}
	if rec.FailuresInjected != 0 || rec.StragglersInjected != 0 ||
		rec.RestartCount != 0 || rec.MakeupPasses != 0 {
		t.Fatalf("empty plan injected something: %+v", rec)
	}
	if rec.OverheadSec != 0 || rec.FaultFreeRuntimeSec != want.RuntimeSec {
		t.Fatalf("empty plan has overhead: %+v", rec)
	}
	if rec.SurvivingRanks != spec.Nodes {
		t.Fatalf("surviving ranks %d, want %d", rec.SurvivingRanks, spec.Nodes)
	}
}

// midRunFailure places a death halfway through the fault-free run's
// post-startup virtual time, guaranteeing it lands inside an iteration.
func midRunFailure(t *testing.T, spec Spec, w Workload, rank int) RankFailure {
	t.Helper()
	base, err := Simulate(spec, w)
	if err != nil {
		t.Fatal(err)
	}
	return RankFailure{Rank: rank, AtSec: (base.RuntimeSec - spec.StartupSec) / 2}
}

func TestSimulateFaultsDeterministic(t *testing.T) {
	// Acceptance: same seed, same plan → bit-identical Report, including
	// MTBF-sampled deaths and straggler selection.
	spec := Summit(4)
	w := BRCA4Hit(cover.Scheme3x1)
	plan := FaultPlan{
		Seed:              42,
		Failures:          []RankFailure{midRunFailure(t, spec, w, 2)},
		MTBFSec:           8 * 3600,
		StragglerFrac:     0.10,
		StragglerFactor:   2.0,
		Policy:            PolicyRestart,
		CheckpointEvery:   2,
		CheckpointCostSec: 0.5,
	}
	a, err := SimulateFaults(spec, w, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateFaults(spec, w, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault-injected simulation not deterministic:\n%+v\nvs\n%+v", a.Recovery, b.Recovery)
	}
	if a.Recovery.FailuresInjected == 0 {
		t.Fatal("planned failure never fired")
	}
}

func TestSimulateFaultsRestartBooksOverhead(t *testing.T) {
	spec := Summit(4)
	w := BRCA4Hit(cover.Scheme3x1)
	plan := FaultPlan{
		Failures:          []RankFailure{midRunFailure(t, spec, w, 1)},
		Policy:            PolicyRestart,
		CheckpointEvery:   2,
		CheckpointCostSec: 0.25,
	}
	rep, err := SimulateFaults(spec, w, plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := rep.Recovery
	if rec.RestartCount != 1 || rec.FailuresInjected != 1 {
		t.Fatalf("expected one restart from one failure: %+v", rec)
	}
	if rec.SurvivingRanks != spec.Nodes {
		t.Fatal("restart must keep the full allocation")
	}
	if rec.CheckpointsTaken == 0 {
		t.Fatal("cadence checkpoints never taken")
	}
	if rec.OverheadSec <= 0 {
		t.Fatalf("restart overhead %g not positive", rec.OverheadSec)
	}
	if got := rep.RuntimeSec - rec.FaultFreeRuntimeSec; got != rec.OverheadSec {
		t.Fatalf("overhead %g inconsistent with runtimes (%g)", rec.OverheadSec, got)
	}
	// Restart replays at least the failure's virtual time plus a fresh
	// startup; checkpoints bound the recomputed iterations.
	if rec.OverheadSec < spec.StartupSec {
		t.Fatalf("overhead %g below a bare startup %g", rec.OverheadSec, spec.StartupSec)
	}
	if rec.RecomputedIterations >= w.Iterations {
		t.Fatalf("checkpoint at cadence %d failed to bound recompute: %d of %d iterations",
			plan.CheckpointEvery, rec.RecomputedIterations, w.Iterations)
	}
}

func TestSimulateFaultsDegradeShrinksMachine(t *testing.T) {
	spec := Summit(4)
	w := BRCA4Hit(cover.Scheme3x1)
	plan := FaultPlan{
		Failures:      []RankFailure{midRunFailure(t, spec, w, 0)},
		Policy:        PolicyDegrade,
		RescheduleSec: 5,
	}
	rep, err := SimulateFaults(spec, w, plan)
	if err != nil {
		t.Fatal(err)
	}
	rec := rep.Recovery
	if rec.SurvivingRanks != spec.Nodes-1 {
		t.Fatalf("surviving ranks %d, want %d", rec.SurvivingRanks, spec.Nodes-1)
	}
	if rec.MakeupPasses != 1 {
		t.Fatalf("makeup passes %d, want 1", rec.MakeupPasses)
	}
	if rec.RestartCount != 0 {
		t.Fatal("degrade must not restart")
	}
	if rec.OverheadSec <= 0 {
		t.Fatalf("degraded run overhead %g not positive", rec.OverheadSec)
	}
}

func discoverFixture(t *testing.T) (*dataset.Cohort, cover.Options) {
	t.Helper()
	spec := dataset.Spec{
		Code: "TST", Name: "test", Genes: 24, TumorSamples: 80, NormalSamples: 70,
		Hits: 3, PlantedCombos: 3, DriverMutProb: 0.95,
		TumorBackground: 0.02, NormalBackground: 0.005,
	}
	c, err := dataset.Generate(spec, 21)
	if err != nil {
		t.Fatal(err)
	}
	return c, cover.Options{Hits: 3, Workers: 2}
}

func TestDiscoverFaultsRecoversIdenticalCombos(t *testing.T) {
	// Acceptance criterion: restart-from-checkpoint (and degrade) produce
	// gene combinations identical to the fault-free run on the fixture.
	c, opt := discoverFixture(t)
	spec := Summit(3)
	want, err := Discover(spec, c.Tumor, c.Normal, opt)
	if err != nil {
		t.Fatal(err)
	}
	fail := RankFailure{Rank: 1, AtSec: (want.VirtualSeconds - spec.StartupSec) / 2}
	for _, tc := range []struct {
		name string
		plan FaultPlan
	}{
		{"Restart", FaultPlan{
			Failures: []RankFailure{fail}, Policy: PolicyRestart,
			CheckpointEvery: 1, CheckpointCostSec: 0.5,
		}},
		{"Degrade", FaultPlan{
			Failures: []RankFailure{fail}, Policy: PolicyDegrade, RescheduleSec: 5,
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, err := DiscoverFaults(spec, c.Tumor, c.Normal, opt, tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			if !sameCover(got.Steps, want.Steps) {
				t.Fatalf("recovered steps differ from fault-free run:\n%+v\nvs\n%+v",
					got.Steps, want.Steps)
			}
			if got.Covered != want.Covered || got.Uncoverable != want.Uncoverable {
				t.Fatal("recovered totals differ from fault-free run")
			}
			rec := got.Recovery
			if rec == nil || rec.FailuresInjected != 1 {
				t.Fatalf("failure never fired: %+v", rec)
			}
			if rec.OverheadSec <= 0 {
				t.Fatalf("recovery overhead %g not positive", rec.OverheadSec)
			}
			if got.VirtualSeconds <= want.VirtualSeconds {
				t.Fatal("faulted run not slower than fault-free run")
			}
			switch tc.plan.Policy {
			case PolicyRestart:
				if rec.RestartCount != 1 || rec.SurvivingRanks != spec.Nodes {
					t.Fatalf("restart accounting wrong: %+v", rec)
				}
			case PolicyDegrade:
				if rec.MakeupPasses != 1 || rec.SurvivingRanks != spec.Nodes-1 {
					t.Fatalf("degrade accounting wrong: %+v", rec)
				}
			}
		})
	}
}

func TestDiscoverFaultsEmptyPlanMatchesDiscover(t *testing.T) {
	c, opt := discoverFixture(t)
	spec := Summit(3)
	want, err := Discover(spec, c.Tumor, c.Normal, opt)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DiscoverFaults(spec, c.Tumor, c.Normal, opt, FaultPlan{})
	if err != nil {
		t.Fatal(err)
	}
	if got.VirtualSeconds != want.VirtualSeconds {
		t.Fatalf("empty plan changed virtual time: %g != %g",
			got.VirtualSeconds, want.VirtualSeconds)
	}
	if !sameCover(got.Steps, want.Steps) {
		t.Fatal("empty plan changed the discovered cover")
	}
	if got.Recovery.OverheadSec != 0 {
		t.Fatalf("empty plan has overhead %g", got.Recovery.OverheadSec)
	}
}

func TestDiscoverFaultsDeterministic(t *testing.T) {
	c, opt := discoverFixture(t)
	spec := Summit(3)
	plan := FaultPlan{
		Seed: 9, MTBFSec: 2 * 3600, StragglerFrac: 0.2, StragglerFactor: 1.5,
		Policy: PolicyDegrade, RescheduleSec: 3,
	}
	a, err := DiscoverFaults(spec, c.Tumor, c.Normal, opt, plan)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DiscoverFaults(spec, c.Tumor, c.Normal, opt, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("fault-injected discovery not deterministic:\n%+v\nvs\n%+v",
			a.Recovery, b.Recovery)
	}
}

func TestCampaignFaultsDeterministicAndAccounted(t *testing.T) {
	// The --faults campaign mode: per-job sub-seeds keep the panel
	// reproducible end to end, and the report aggregates recovery costs.
	c := Campaign{
		Nodes: 8,
		Faults: &FaultPlan{
			Seed:              11,
			MTBFSec:           2000, // short enough that several jobs see a death
			StragglerFrac:     0.05,
			StragglerFactor:   2,
			Policy:            PolicyRestart,
			CheckpointEvery:   3,
			CheckpointCostSec: 0.5,
		},
	}
	specs := dataset.FourHitCancers()
	a, err := RunCampaign(c, specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunCampaign(c, specs)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("fault campaign not deterministic")
	}
	if len(a.Jobs) != len(specs) {
		t.Fatalf("campaign priced %d jobs, want %d", len(a.Jobs), len(specs))
	}
	var overhead float64
	var failures int
	for _, j := range a.Jobs {
		if j.Recovery == nil {
			t.Fatalf("%s: fault campaign job missing recovery section", j.Cancer)
		}
		overhead += j.Recovery.OverheadSec
		failures += j.Recovery.FailuresInjected
	}
	if a.TotalOverheadSec != overhead || a.TotalFailures != failures {
		t.Fatal("campaign totals do not sum their jobs' recovery sections")
	}
	if a.TotalFailures == 0 {
		t.Fatal("MTBF 2000s over the panel injected no failures; deterministic plan expected some")
	}
	clean, err := RunCampaign(Campaign{Nodes: 8}, specs)
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalSec <= clean.TotalSec {
		t.Fatal("faulted campaign not slower than fault-free campaign")
	}
	if clean.TotalFailures != 0 || clean.TotalOverheadSec != 0 {
		t.Fatal("fault-free campaign reports recovery costs")
	}
}
