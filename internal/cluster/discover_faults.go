package cluster

// DiscoverFaults: the real distributed greedy cover under injected rank
// deaths (docs/FAULTS.md). The discovered combinations must be — and the
// tests assert they are — bit-for-bit identical to the fault-free Discover
// run under both recovery policies:
//
//   - PolicyRestart replays iterations from the latest checkpoint; the
//     greedy is deterministic in the active mask, so the replay recomputes
//     the very same winners.
//   - PolicyDegrade finishes the in-flight iteration by re-cutting the
//     dead rank's λ-range across the survivors (sched.EquiAreaRange) and
//     reducing the same total-order winner; every subsequent iteration
//     runs the full domain on the shrunken machine.
//
// The winners themselves are computed once, host-side, by replaying
// Discover's per-iteration semantics with full-domain FindBest — the
// result every fault-free rank program converges to. The leg worlds price
// the virtual time of reaching it: each leg runs the alive machine with at
// most one armed failure, and recovery bookings stitch the legs together.
// Arming a single failure per leg keeps the run deterministic — with two
// armed ranks the recovered root cause would race in real time.

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/bitmat"
	"repro/internal/cover"
	"repro/internal/mpisim"
	"repro/internal/reduce"
	"repro/internal/sched"
)

// hostGreedy is the authoritative greedy outcome plus the number of
// iterations the distributed world executes to reach it (including a
// terminal probe iteration that finds no coverable winner).
type hostGreedy struct {
	steps       []cover.Step
	covered     int
	uncoverable int
	worldIters  int
	counts      cover.Counts
}

// runHostGreedy replays Discover's per-iteration loop with full-domain
// enumeration. Full-domain Scanned (Evaluated + Pruned) equals the sum
// over any partitioning, so the steps match Discover's on every
// deterministic field; the Evaluated/Pruned split depends on how early
// the shared incumbent rises, which differs between a full-domain scan
// and per-range scans with range-local incumbents.
func runHostGreedy(ctx context.Context, tumor, normal *bitmat.Matrix, opt cover.Options) (*hostGreedy, error) {
	active := bitmat.AllOnes(tumor.Samples())
	buf := make([]uint64, tumor.Words())
	hg := &hostGreedy{}
	for iter := 0; opt.MaxIterations == 0 || iter < opt.MaxIterations; iter++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if active.PopCount() == 0 {
			break
		}
		winner, cnt, err := cover.FindBestCtx(ctx, tumor, normal, active, opt)
		if err != nil {
			return nil, err
		}
		hg.worldIters++
		hg.counts.Evaluated += cnt.Evaluated
		hg.counts.Pruned += cnt.Pruned
		if winner == reduce.None {
			break
		}
		tumor.ComboVec(buf, winner.GeneIDs()...)
		cov := bitmat.NewVec(tumor.Samples())
		copy(cov.Words(), buf)
		cov.And(active)
		newly := cov.PopCount()
		if newly == 0 {
			hg.uncoverable = active.PopCount()
			break
		}
		active.AndNot(cov)
		hg.steps = append(hg.steps, cover.Step{
			Combo:        winner,
			NewlyCovered: newly,
			ActiveAfter:  active.PopCount(),
			Evaluated:    cnt.Evaluated,
			Pruned:       cnt.Pruned,
		})
		hg.covered += newly
	}
	if hg.uncoverable == 0 {
		hg.uncoverable = active.PopCount()
		if opt.MaxIterations > 0 && len(hg.steps) == opt.MaxIterations {
			hg.uncoverable = 0
		}
	}
	return hg, nil
}

// discoverBusiest prices each alive rank's per-iteration compute block:
// the busiest of its GPUs over their λ partitions. In mask mode the job is
// identical every iteration, so one pricing serves the whole leg. Device
// indices are physical so injected stragglers survive machine shrinks.
func discoverBusiest(spec Spec, w Workload, plan FaultPlan, curve sched.Curve,
	perNode [][]sched.Partition, alive []int, rowWords int, withFaults bool) []float64 {
	gpn := spec.GPUsPerNode
	busiest := make([]float64, len(alive))
	parallelFor(len(alive), func(ai int) {
		for d := 0; d < gpn; d++ {
			phys := alive[ai]*gpn + d
			extra := 0.0
			if withFaults {
				extra = plan.stragglerSlowdown(phys)
			}
			m := spec.Device.Simulate(w.jobFor(curve, perNode[ai][d], rowWords, phys, extra))
			if m.BusySeconds > busiest[ai] {
				busiest[ai] = m.BusySeconds
			}
		}
	})
	return busiest
}

// runDiscoverLeg plays iterations [progress, totalIters) of the
// distributed greedy on a world of len(busiest) ranks, reproducing
// Discover's per-iteration collective pattern (combo reduce/bcast plus the
// evaluated-count reduce/bcast). With armedIdx ≥ 0 the rank dies at relFail
// seconds of virtual time; the returned entered counter then reports how
// many leg iterations its Compute reached — deterministic, because the
// armed rank's own trajectory up to its death is scheduling-independent.
func runDiscoverLeg(spec Spec, plan FaultPlan, busiest []float64,
	progress, totalIters, armedIdx int, relFail float64) (*mpisim.World, int, error) {
	world := mpisim.NewWorld(len(busiest), spec.Comm)
	if armedIdx >= 0 {
		world.FailRankAt(armedIdx, relFail)
	}
	entered := 0
	sumCounts := func(a, b any) any {
		x, y := a.(cover.Counts), b.(cover.Counts)
		return cover.Counts{Evaluated: x.Evaluated + y.Evaluated, Pruned: x.Pruned + y.Pruned}
	}
	err := world.Run(func(r *mpisim.Rank) error {
		for it := progress; it < totalIters; it++ {
			if r.ID() == armedIdx {
				entered = it - progress + 1
			}
			block := busiest[r.ID()] + spec.IterOverheadSec
			if plan.CheckpointEvery > 0 && (it+1)%plan.CheckpointEvery == 0 {
				block += plan.CheckpointCostSec
			}
			r.Compute(block)
			folded := r.Reduce(reduce.None, reduce.BytesPerRecord, combineCombo)
			r.Bcast(folded, reduce.BytesPerRecord)
			// Mirror Discover's 16-byte Counts tally collective so both
			// paths price identical traffic.
			evalSum := r.Reduce(cover.Counts{}, 2*8, sumCounts)
			r.Bcast(evalSum, 2*8)
		}
		return nil
	})
	return world, entered, err
}

// DiscoverFaults runs Discover under the fault plan. The returned Steps
// are identical to the fault-free run's under either recovery policy;
// VirtualSeconds carries the recovery overhead and Recovery itemises it.
// An empty plan reproduces Discover's virtual time exactly.
func DiscoverFaults(spec Spec, tumor, normal *bitmat.Matrix, opt cover.Options, plan FaultPlan) (*DiscoverResult, error) {
	return DiscoverFaultsCtx(context.Background(), spec, tumor, normal, opt, plan)
}

// DiscoverFaultsCtx is DiscoverFaults under a caller-supplied context: the
// host-side greedy replay (the only real kernel work in this path) observes
// cancellation between iterations and between partitions.
func DiscoverFaultsCtx(ctx context.Context, spec Spec, tumor, normal *bitmat.Matrix, opt cover.Options, plan FaultPlan) (*DiscoverResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := plan.Validate(spec.Nodes); err != nil {
		return nil, err
	}
	if tumor.Genes() != normal.Genes() {
		return nil, fmt.Errorf("cluster: tumor has %d genes, normal has %d",
			tumor.Genes(), normal.Genes())
	}
	if tumor.Samples() == 0 {
		return nil, fmt.Errorf("cluster: no tumor samples")
	}
	if opt.BitSplice {
		return nil, fmt.Errorf("cluster: DiscoverFaults uses mask-based exclusion; disable BitSplice")
	}
	if _, _, err := cover.FindBestRange(tumor, normal, nil, opt, 0, 0); err != nil {
		return nil, err
	}

	w := Workload{
		Genes:         tumor.Genes(),
		TumorSamples:  tumor.Samples(),
		NormalSamples: normal.Samples(),
		Scheme:        opt.Scheme,
		Scheduler:     opt.Scheduler,
		Iterations:    1,
	}
	if w.Scheme == cover.SchemeAuto {
		switch opt.Hits {
		case 2:
			w.Scheme = cover.SchemePair
		case 3:
			w.Scheme = cover.Scheme2x1
		default:
			w.Scheme = cover.Scheme3x1
		}
	}
	curve, err := w.curve()
	if err != nil {
		return nil, err
	}
	rowWords := w.words(tumor.Samples())
	gpn := spec.GPUsPerNode

	hg, err := runHostGreedy(ctx, tumor, normal, opt)
	if err != nil {
		return nil, err
	}

	// Fault-free anchor: the pristine machine, no stragglers, no
	// checkpoint cost — Discover's own virtual time.
	fullNodes := make([]int, spec.Nodes)
	for i := range fullNodes {
		fullNodes[i] = i
	}
	fullPerNode, err := discoverPerNode(curve, opt.Scheduler, spec.Nodes, gpn)
	if err != nil {
		return nil, err
	}
	cleanBusiest := discoverBusiest(spec, w, plan, curve, fullPerNode, fullNodes, rowWords, false)
	cleanWorld, _, err := runDiscoverLeg(spec, FaultPlan{}, cleanBusiest, 0, hg.worldIters, -1, 0)
	if err != nil {
		return nil, err
	}
	faultFree := spec.StartupSec + cleanWorld.MaxClock()

	rec := &Recovery{
		Policy:              plan.Policy,
		StragglersInjected:  plan.countStragglers(spec.GPUs()),
		FaultFreeRuntimeSec: faultFree,
	}
	pending := plan.plannedFailures(spec.Nodes)

	alive := fullNodes
	ledger := make([]RankReport, spec.Nodes)
	for n := range ledger {
		ledger[n].Rank = n
	}
	elapsed := 0.0
	progress := 0
	for progress < hg.worldIters {
		perNode := fullPerNode
		if len(alive) != spec.Nodes {
			perNode, err = discoverPerNode(curve, opt.Scheduler, len(alive), gpn)
			if err != nil {
				return nil, err
			}
		}
		busiest := discoverBusiest(spec, w, plan, curve, perNode, alive, rowWords, true)

		armed, armedIdx, haveFailure := armFailure(pending, alive)
		rel := 0.0
		if haveFailure {
			rel = armed.AtSec - elapsed
			if rel < 0 {
				rel = 0
			}
		} else {
			armedIdx = -1
		}
		world, entered, runErr := runDiscoverLeg(spec, plan, busiest, progress, hg.worldIters, armedIdx, rel)
		if runErr == nil {
			elapsed += world.MaxClock()
			for ai, phys := range alive {
				ledger[phys].ComputeSec += world.ComputeTime(ai)
				ledger[phys].CommSec += world.CommTime(ai)
				ledger[phys].WaitSec += world.WaitTime(ai)
			}
			if plan.CheckpointEvery > 0 {
				for it := progress; it < hg.worldIters; it++ {
					if (it+1)%plan.CheckpointEvery == 0 {
						rec.CheckpointsTaken++
						rec.CheckpointCostSec += plan.CheckpointCostSec
					}
				}
			}
			progress = hg.worldIters
			break
		}
		var fe *mpisim.FailureError
		if !errors.As(runErr, &fe) {
			return nil, runErr
		}
		inflight := progress + entered - 1
		tFail := fe.AtSec
		rec.FailuresInjected++
		rec.Failures = append(rec.Failures, RankFailure{Rank: alive[armedIdx], AtSec: elapsed + tFail})
		pending = dropFailure(pending, armed)
		if plan.CheckpointEvery > 0 {
			for it := progress; it < inflight; it++ {
				if (it+1)%plan.CheckpointEvery == 0 {
					rec.CheckpointsTaken++
					rec.CheckpointCostSec += plan.CheckpointCostSec
				}
			}
		}

		switch plan.Policy {
		case PolicyRestart:
			elapsed += tFail + spec.StartupSec
			restartFrom := 0
			if plan.CheckpointEvery > 0 {
				restartFrom = inflight / plan.CheckpointEvery * plan.CheckpointEvery
			}
			crit := 0.0
			for _, b := range busiest {
				if b > crit {
					crit = b
				}
			}
			rec.RecomputedIterations += inflight - restartFrom
			rec.RecomputedWorkSec += float64(inflight-restartFrom) * (crit + spec.IterOverheadSec)
			rec.RestartCount++
			progress = restartFrom
		case PolicyDegrade:
			survivors := make([]int, 0, len(alive)-1)
			for ai, phys := range alive {
				if ai != armedIdx {
					survivors = append(survivors, phys)
				}
			}
			if len(survivors) == 0 {
				return nil, fmt.Errorf("cluster: all ranks failed; nothing left to degrade onto")
			}
			// The in-flight iteration's partial results die with the
			// collective: survivors redo their own λ-ranges, then run a
			// makeup pass over the dead rank's range, re-cut equi-area
			// across their GPUs.
			redo := 0.0
			for ai := range alive {
				if ai == armedIdx {
					continue
				}
				if b := busiest[ai]; b > redo {
					redo = b
				}
			}
			lo := perNode[armedIdx][0].Lo
			hi := perNode[armedIdx][gpn-1].Hi
			mkParts, err := sched.EquiAreaRange(curve, lo, hi, len(survivors)*gpn)
			if err != nil {
				return nil, err
			}
			mkBusy := make([]float64, len(mkParts))
			parallelFor(len(mkParts), func(gi int) {
				phys := survivors[gi/gpn]*gpn + gi%gpn
				job := w.jobFor(curve, mkParts[gi], rowWords, phys, plan.stragglerSlowdown(phys))
				mkBusy[gi] = spec.Device.Simulate(job).BusySeconds
			})
			makeup := 0.0
			for _, b := range mkBusy {
				if b > makeup {
					makeup = b
				}
			}
			elapsed += tFail + plan.RescheduleSec + redo + makeup + spec.IterOverheadSec
			rec.MakeupPasses++
			rec.RecomputedIterations++
			rec.RecomputedWorkSec += redo + makeup
			if plan.CheckpointEvery > 0 && (inflight+1)%plan.CheckpointEvery == 0 {
				rec.CheckpointsTaken++
				rec.CheckpointCostSec += plan.CheckpointCostSec
			}
			progress = inflight + 1
			alive = survivors
		}
	}

	rec.SurvivingRanks = len(alive)
	res := &DiscoverResult{
		Steps:          hg.steps,
		Covered:        hg.covered,
		Uncoverable:    hg.uncoverable,
		VirtualSeconds: spec.StartupSec + elapsed,
		Ranks:          ledger,
		Recovery:       rec,
	}
	if scanned := hg.counts.Scanned(); scanned > 0 {
		res.PruningRatio = float64(hg.counts.Pruned) / float64(scanned)
	}
	rec.OverheadSec = res.VirtualSeconds - faultFree
	return res, nil
}
